# Empty dependencies file for bench_thm3_cheat_probability.
# This may be replaced when dependencies are built.
