file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_cheat_probability.dir/bench/bench_thm3_cheat_probability.cpp.o"
  "CMakeFiles/bench_thm3_cheat_probability.dir/bench/bench_thm3_cheat_probability.cpp.o.d"
  "bench_thm3_cheat_probability"
  "bench_thm3_cheat_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_cheat_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
