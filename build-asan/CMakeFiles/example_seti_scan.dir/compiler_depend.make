# Empty compiler generated dependencies file for example_seti_scan.
# This may be replaced when dependencies are built.
