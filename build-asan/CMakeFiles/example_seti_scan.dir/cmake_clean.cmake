file(REMOVE_RECURSE
  "CMakeFiles/example_seti_scan.dir/examples/seti_scan.cpp.o"
  "CMakeFiles/example_seti_scan.dir/examples/seti_scan.cpp.o.d"
  "example_seti_scan"
  "example_seti_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_seti_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
