# Empty compiler generated dependencies file for bench_verify_throughput.
# This may be replaced when dependencies are built.
