file(REMOVE_RECURSE
  "CMakeFiles/bench_verify_throughput.dir/bench/bench_verify_throughput.cpp.o"
  "CMakeFiles/bench_verify_throughput.dir/bench/bench_verify_throughput.cpp.o.d"
  "bench_verify_throughput"
  "bench_verify_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verify_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
