file(REMOVE_RECURSE
  "CMakeFiles/bench_commit_throughput.dir/bench/bench_commit_throughput.cpp.o"
  "CMakeFiles/bench_commit_throughput.dir/bench/bench_commit_throughput.cpp.o.d"
  "bench_commit_throughput"
  "bench_commit_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
