# Empty dependencies file for bench_commit_throughput.
# This may be replaced when dependencies are built.
