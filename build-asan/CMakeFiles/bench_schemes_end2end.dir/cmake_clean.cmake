file(REMOVE_RECURSE
  "CMakeFiles/bench_schemes_end2end.dir/bench/bench_schemes_end2end.cpp.o"
  "CMakeFiles/bench_schemes_end2end.dir/bench/bench_schemes_end2end.cpp.o.d"
  "bench_schemes_end2end"
  "bench_schemes_end2end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schemes_end2end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
