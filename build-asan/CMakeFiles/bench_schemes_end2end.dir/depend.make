# Empty dependencies file for bench_schemes_end2end.
# This may be replaced when dependencies are built.
