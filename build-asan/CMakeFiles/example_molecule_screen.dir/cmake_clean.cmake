file(REMOVE_RECURSE
  "CMakeFiles/example_molecule_screen.dir/examples/molecule_screen.cpp.o"
  "CMakeFiles/example_molecule_screen.dir/examples/molecule_screen.cpp.o.d"
  "example_molecule_screen"
  "example_molecule_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_molecule_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
