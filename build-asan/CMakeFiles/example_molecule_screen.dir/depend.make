# Empty dependencies file for example_molecule_screen.
# This may be replaced when dependencies are built.
