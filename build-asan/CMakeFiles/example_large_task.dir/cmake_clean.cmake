file(REMOVE_RECURSE
  "CMakeFiles/example_large_task.dir/examples/large_task.cpp.o"
  "CMakeFiles/example_large_task.dir/examples/large_task.cpp.o.d"
  "example_large_task"
  "example_large_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_large_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
