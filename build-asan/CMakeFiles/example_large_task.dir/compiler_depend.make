# Empty compiler generated dependencies file for example_large_task.
# This may be replaced when dependencies are built.
