# Empty dependencies file for bench_hash.
# This may be replaced when dependencies are built.
