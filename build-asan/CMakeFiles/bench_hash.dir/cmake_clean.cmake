file(REMOVE_RECURSE
  "CMakeFiles/bench_hash.dir/bench/bench_hash.cpp.o"
  "CMakeFiles/bench_hash.dir/bench/bench_hash.cpp.o.d"
  "bench_hash"
  "bench_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
