# Empty dependencies file for bench_reputation.
# This may be replaced when dependencies are built.
