file(REMOVE_RECURSE
  "CMakeFiles/bench_reputation.dir/bench/bench_reputation.cpp.o"
  "CMakeFiles/bench_reputation.dir/bench/bench_reputation.cpp.o.d"
  "bench_reputation"
  "bench_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
