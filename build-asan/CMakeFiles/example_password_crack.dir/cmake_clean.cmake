file(REMOVE_RECURSE
  "CMakeFiles/example_password_crack.dir/examples/password_crack.cpp.o"
  "CMakeFiles/example_password_crack.dir/examples/password_crack.cpp.o.d"
  "example_password_crack"
  "example_password_crack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_password_crack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
