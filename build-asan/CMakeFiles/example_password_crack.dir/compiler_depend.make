# Empty compiler generated dependencies file for example_password_crack.
# This may be replaced when dependencies are built.
