# Empty dependencies file for bench_cbs_protocol.
# This may be replaced when dependencies are built.
