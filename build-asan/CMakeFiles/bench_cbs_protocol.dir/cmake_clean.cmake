file(REMOVE_RECURSE
  "CMakeFiles/bench_cbs_protocol.dir/bench/bench_cbs_protocol.cpp.o"
  "CMakeFiles/bench_cbs_protocol.dir/bench/bench_cbs_protocol.cpp.o.d"
  "bench_cbs_protocol"
  "bench_cbs_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cbs_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
