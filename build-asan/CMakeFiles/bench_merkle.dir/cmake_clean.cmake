file(REMOVE_RECURSE
  "CMakeFiles/bench_merkle.dir/bench/bench_merkle.cpp.o"
  "CMakeFiles/bench_merkle.dir/bench/bench_merkle.cpp.o.d"
  "bench_merkle"
  "bench_merkle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
