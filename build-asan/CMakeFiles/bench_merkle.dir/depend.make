# Empty dependencies file for bench_merkle.
# This may be replaced when dependencies are built.
