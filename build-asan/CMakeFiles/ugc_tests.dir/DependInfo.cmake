
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "CMakeFiles/ugc_tests.dir/tests/analysis_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/analysis_test.cpp.o.d"
  "/root/repo/tests/batch_proof_test.cpp" "CMakeFiles/ugc_tests.dir/tests/batch_proof_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/batch_proof_test.cpp.o.d"
  "/root/repo/tests/batched_cbs_test.cpp" "CMakeFiles/ugc_tests.dir/tests/batched_cbs_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/batched_cbs_test.cpp.o.d"
  "/root/repo/tests/cbs_test.cpp" "CMakeFiles/ugc_tests.dir/tests/cbs_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/cbs_test.cpp.o.d"
  "/root/repo/tests/cheating_test.cpp" "CMakeFiles/ugc_tests.dir/tests/cheating_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/cheating_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "CMakeFiles/ugc_tests.dir/tests/common_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/common_test.cpp.o.d"
  "/root/repo/tests/core_task_test.cpp" "CMakeFiles/ugc_tests.dir/tests/core_task_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/core_task_test.cpp.o.d"
  "/root/repo/tests/crypto_test.cpp" "CMakeFiles/ugc_tests.dir/tests/crypto_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/crypto_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "CMakeFiles/ugc_tests.dir/tests/engine_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/engine_test.cpp.o.d"
  "/root/repo/tests/flat_merkle_test.cpp" "CMakeFiles/ugc_tests.dir/tests/flat_merkle_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/flat_merkle_test.cpp.o.d"
  "/root/repo/tests/geometry_test.cpp" "CMakeFiles/ugc_tests.dir/tests/geometry_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/geometry_test.cpp.o.d"
  "/root/repo/tests/golden_test.cpp" "CMakeFiles/ugc_tests.dir/tests/golden_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/golden_test.cpp.o.d"
  "/root/repo/tests/grid_test.cpp" "CMakeFiles/ugc_tests.dir/tests/grid_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/grid_test.cpp.o.d"
  "/root/repo/tests/malicious_test.cpp" "CMakeFiles/ugc_tests.dir/tests/malicious_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/malicious_test.cpp.o.d"
  "/root/repo/tests/merkle_test.cpp" "CMakeFiles/ugc_tests.dir/tests/merkle_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/merkle_test.cpp.o.d"
  "/root/repo/tests/nicbs_test.cpp" "CMakeFiles/ugc_tests.dir/tests/nicbs_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/nicbs_test.cpp.o.d"
  "/root/repo/tests/parallel_for_test.cpp" "CMakeFiles/ugc_tests.dir/tests/parallel_for_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/parallel_for_test.cpp.o.d"
  "/root/repo/tests/properties_test.cpp" "CMakeFiles/ugc_tests.dir/tests/properties_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/properties_test.cpp.o.d"
  "/root/repo/tests/pump_golden_test.cpp" "CMakeFiles/ugc_tests.dir/tests/pump_golden_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/pump_golden_test.cpp.o.d"
  "/root/repo/tests/reputation_test.cpp" "CMakeFiles/ugc_tests.dir/tests/reputation_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/reputation_test.cpp.o.d"
  "/root/repo/tests/ringer_test.cpp" "CMakeFiles/ugc_tests.dir/tests/ringer_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/ringer_test.cpp.o.d"
  "/root/repo/tests/sampling_test.cpp" "CMakeFiles/ugc_tests.dir/tests/sampling_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/sampling_test.cpp.o.d"
  "/root/repo/tests/scheme_registry_test.cpp" "CMakeFiles/ugc_tests.dir/tests/scheme_registry_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/scheme_registry_test.cpp.o.d"
  "/root/repo/tests/scheme_session_test.cpp" "CMakeFiles/ugc_tests.dir/tests/scheme_session_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/scheme_session_test.cpp.o.d"
  "/root/repo/tests/sequential_test.cpp" "CMakeFiles/ugc_tests.dir/tests/sequential_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/sequential_test.cpp.o.d"
  "/root/repo/tests/to_string_test.cpp" "CMakeFiles/ugc_tests.dir/tests/to_string_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/to_string_test.cpp.o.d"
  "/root/repo/tests/verify_path_test.cpp" "CMakeFiles/ugc_tests.dir/tests/verify_path_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/verify_path_test.cpp.o.d"
  "/root/repo/tests/wire_test.cpp" "CMakeFiles/ugc_tests.dir/tests/wire_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/wire_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "CMakeFiles/ugc_tests.dir/tests/workloads_test.cpp.o" "gcc" "CMakeFiles/ugc_tests.dir/tests/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/ugc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
