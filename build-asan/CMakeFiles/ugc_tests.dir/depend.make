# Empty dependencies file for ugc_tests.
# This may be replaced when dependencies are built.
