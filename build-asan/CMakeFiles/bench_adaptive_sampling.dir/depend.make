# Empty dependencies file for bench_adaptive_sampling.
# This may be replaced when dependencies are built.
