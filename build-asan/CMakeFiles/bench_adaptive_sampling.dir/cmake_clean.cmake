file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_sampling.dir/bench/bench_adaptive_sampling.cpp.o"
  "CMakeFiles/bench_adaptive_sampling.dir/bench/bench_adaptive_sampling.cpp.o.d"
  "bench_adaptive_sampling"
  "bench_adaptive_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
