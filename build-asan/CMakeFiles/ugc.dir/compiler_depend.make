# Empty compiler generated dependencies file for ugc.
# This may be replaced when dependencies are built.
