
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/hex.cpp" "CMakeFiles/ugc.dir/src/common/hex.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/common/hex.cpp.o.d"
  "/root/repo/src/common/parallel.cpp" "CMakeFiles/ugc.dir/src/common/parallel.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/common/parallel.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/ugc.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "CMakeFiles/ugc.dir/src/core/analysis.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/analysis.cpp.o.d"
  "/root/repo/src/core/cbs.cpp" "CMakeFiles/ugc.dir/src/core/cbs.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/cbs.cpp.o.d"
  "/root/repo/src/core/cheating.cpp" "CMakeFiles/ugc.dir/src/core/cheating.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/cheating.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "CMakeFiles/ugc.dir/src/core/engine.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/engine.cpp.o.d"
  "/root/repo/src/core/nicbs.cpp" "CMakeFiles/ugc.dir/src/core/nicbs.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/nicbs.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "CMakeFiles/ugc.dir/src/core/protocol.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/protocol.cpp.o.d"
  "/root/repo/src/core/retry_attacker.cpp" "CMakeFiles/ugc.dir/src/core/retry_attacker.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/retry_attacker.cpp.o.d"
  "/root/repo/src/core/ringer.cpp" "CMakeFiles/ugc.dir/src/core/ringer.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/ringer.cpp.o.d"
  "/root/repo/src/core/sampling.cpp" "CMakeFiles/ugc.dir/src/core/sampling.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/sampling.cpp.o.d"
  "/root/repo/src/core/scheme_config.cpp" "CMakeFiles/ugc.dir/src/core/scheme_config.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/scheme_config.cpp.o.d"
  "/root/repo/src/core/sequential.cpp" "CMakeFiles/ugc.dir/src/core/sequential.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/sequential.cpp.o.d"
  "/root/repo/src/core/task.cpp" "CMakeFiles/ugc.dir/src/core/task.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/task.cpp.o.d"
  "/root/repo/src/core/verification.cpp" "CMakeFiles/ugc.dir/src/core/verification.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/core/verification.cpp.o.d"
  "/root/repo/src/crypto/hash_function.cpp" "CMakeFiles/ugc.dir/src/crypto/hash_function.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/crypto/hash_function.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "CMakeFiles/ugc.dir/src/crypto/hmac.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/iterated_hash.cpp" "CMakeFiles/ugc.dir/src/crypto/iterated_hash.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/crypto/iterated_hash.cpp.o.d"
  "/root/repo/src/crypto/md5.cpp" "CMakeFiles/ugc.dir/src/crypto/md5.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/crypto/md5.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "CMakeFiles/ugc.dir/src/crypto/sha1.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/crypto/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "CMakeFiles/ugc.dir/src/crypto/sha256.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/sha_ni.cpp" "CMakeFiles/ugc.dir/src/crypto/sha_ni.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/crypto/sha_ni.cpp.o.d"
  "/root/repo/src/grid/broker.cpp" "CMakeFiles/ugc.dir/src/grid/broker.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/grid/broker.cpp.o.d"
  "/root/repo/src/grid/latency.cpp" "CMakeFiles/ugc.dir/src/grid/latency.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/grid/latency.cpp.o.d"
  "/root/repo/src/grid/network.cpp" "CMakeFiles/ugc.dir/src/grid/network.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/grid/network.cpp.o.d"
  "/root/repo/src/grid/participant_node.cpp" "CMakeFiles/ugc.dir/src/grid/participant_node.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/grid/participant_node.cpp.o.d"
  "/root/repo/src/grid/reputation.cpp" "CMakeFiles/ugc.dir/src/grid/reputation.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/grid/reputation.cpp.o.d"
  "/root/repo/src/grid/simulation.cpp" "CMakeFiles/ugc.dir/src/grid/simulation.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/grid/simulation.cpp.o.d"
  "/root/repo/src/grid/supervisor_node.cpp" "CMakeFiles/ugc.dir/src/grid/supervisor_node.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/grid/supervisor_node.cpp.o.d"
  "/root/repo/src/merkle/batch_proof.cpp" "CMakeFiles/ugc.dir/src/merkle/batch_proof.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/merkle/batch_proof.cpp.o.d"
  "/root/repo/src/merkle/partial_tree.cpp" "CMakeFiles/ugc.dir/src/merkle/partial_tree.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/merkle/partial_tree.cpp.o.d"
  "/root/repo/src/merkle/proof.cpp" "CMakeFiles/ugc.dir/src/merkle/proof.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/merkle/proof.cpp.o.d"
  "/root/repo/src/merkle/streaming_builder.cpp" "CMakeFiles/ugc.dir/src/merkle/streaming_builder.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/merkle/streaming_builder.cpp.o.d"
  "/root/repo/src/merkle/tree.cpp" "CMakeFiles/ugc.dir/src/merkle/tree.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/merkle/tree.cpp.o.d"
  "/root/repo/src/scheme/cbs_scheme.cpp" "CMakeFiles/ugc.dir/src/scheme/cbs_scheme.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/scheme/cbs_scheme.cpp.o.d"
  "/root/repo/src/scheme/exchange.cpp" "CMakeFiles/ugc.dir/src/scheme/exchange.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/scheme/exchange.cpp.o.d"
  "/root/repo/src/scheme/message.cpp" "CMakeFiles/ugc.dir/src/scheme/message.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/scheme/message.cpp.o.d"
  "/root/repo/src/scheme/nicbs_scheme.cpp" "CMakeFiles/ugc.dir/src/scheme/nicbs_scheme.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/scheme/nicbs_scheme.cpp.o.d"
  "/root/repo/src/scheme/registry.cpp" "CMakeFiles/ugc.dir/src/scheme/registry.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/scheme/registry.cpp.o.d"
  "/root/repo/src/scheme/ringer_scheme.cpp" "CMakeFiles/ugc.dir/src/scheme/ringer_scheme.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/scheme/ringer_scheme.cpp.o.d"
  "/root/repo/src/scheme/upload_schemes.cpp" "CMakeFiles/ugc.dir/src/scheme/upload_schemes.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/scheme/upload_schemes.cpp.o.d"
  "/root/repo/src/wire/codec.cpp" "CMakeFiles/ugc.dir/src/wire/codec.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/wire/codec.cpp.o.d"
  "/root/repo/src/wire/messages.cpp" "CMakeFiles/ugc.dir/src/wire/messages.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/wire/messages.cpp.o.d"
  "/root/repo/src/workloads/factoring.cpp" "CMakeFiles/ugc.dir/src/workloads/factoring.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/workloads/factoring.cpp.o.d"
  "/root/repo/src/workloads/keysearch.cpp" "CMakeFiles/ugc.dir/src/workloads/keysearch.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/workloads/keysearch.cpp.o.d"
  "/root/repo/src/workloads/lucas_lehmer.cpp" "CMakeFiles/ugc.dir/src/workloads/lucas_lehmer.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/workloads/lucas_lehmer.cpp.o.d"
  "/root/repo/src/workloads/molecule_screen.cpp" "CMakeFiles/ugc.dir/src/workloads/molecule_screen.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/workloads/molecule_screen.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "CMakeFiles/ugc.dir/src/workloads/registry.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/signal_scan.cpp" "CMakeFiles/ugc.dir/src/workloads/signal_scan.cpp.o" "gcc" "CMakeFiles/ugc.dir/src/workloads/signal_scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
