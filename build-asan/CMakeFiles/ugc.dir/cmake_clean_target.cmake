file(REMOVE_RECURSE
  "libugc.a"
)
