file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_leaf_mode.dir/bench/bench_ablation_leaf_mode.cpp.o"
  "CMakeFiles/bench_ablation_leaf_mode.dir/bench/bench_ablation_leaf_mode.cpp.o.d"
  "bench_ablation_leaf_mode"
  "bench_ablation_leaf_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_leaf_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
