# Empty compiler generated dependencies file for bench_fig3_storage_tradeoff.
# This may be replaced when dependencies are built.
