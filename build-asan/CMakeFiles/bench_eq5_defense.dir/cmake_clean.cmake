file(REMOVE_RECURSE
  "CMakeFiles/bench_eq5_defense.dir/bench/bench_eq5_defense.cpp.o"
  "CMakeFiles/bench_eq5_defense.dir/bench/bench_eq5_defense.cpp.o.d"
  "bench_eq5_defense"
  "bench_eq5_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq5_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
