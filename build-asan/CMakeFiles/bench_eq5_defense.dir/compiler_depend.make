# Empty compiler generated dependencies file for bench_eq5_defense.
# This may be replaced when dependencies are built.
