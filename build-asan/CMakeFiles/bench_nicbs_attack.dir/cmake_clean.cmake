file(REMOVE_RECURSE
  "CMakeFiles/bench_nicbs_attack.dir/bench/bench_nicbs_attack.cpp.o"
  "CMakeFiles/bench_nicbs_attack.dir/bench/bench_nicbs_attack.cpp.o.d"
  "bench_nicbs_attack"
  "bench_nicbs_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nicbs_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
