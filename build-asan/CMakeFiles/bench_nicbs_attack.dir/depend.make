# Empty dependencies file for bench_nicbs_attack.
# This may be replaced when dependencies are built.
