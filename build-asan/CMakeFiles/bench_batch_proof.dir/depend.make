# Empty dependencies file for bench_batch_proof.
# This may be replaced when dependencies are built.
