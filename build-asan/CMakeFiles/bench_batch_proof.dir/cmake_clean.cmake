file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_proof.dir/bench/bench_batch_proof.cpp.o"
  "CMakeFiles/bench_batch_proof.dir/bench/bench_batch_proof.cpp.o.d"
  "bench_batch_proof"
  "bench_batch_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
