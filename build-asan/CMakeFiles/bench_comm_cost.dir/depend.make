# Empty dependencies file for bench_comm_cost.
# This may be replaced when dependencies are built.
