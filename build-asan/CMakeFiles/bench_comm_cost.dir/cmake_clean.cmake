file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_cost.dir/bench/bench_comm_cost.cpp.o"
  "CMakeFiles/bench_comm_cost.dir/bench/bench_comm_cost.cpp.o.d"
  "bench_comm_cost"
  "bench_comm_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
