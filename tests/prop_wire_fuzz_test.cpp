// Fuzz-style robustness properties for the wire decoders: every message
// type round-trips bit-exactly, and truncated or bit-flipped encodings of
// any message must either throw WireError or decode to *some* message —
// never crash, never throw anything else, never read out of bounds (the
// ASan/UBSan CI leg runs this same suite). The view decoders get the same
// treatment, including arena reuse across hostile inputs.

#include <gtest/gtest.h>

#include "prop.h"
#include "wire/codec.h"
#include "wire/messages.h"

namespace ugc {
namespace {

using proptest::Failure;
using proptest::Property;
using proptest::gen_pick;
using proptest::gen_range;
using proptest::prop_check;

// ----------------------------------------------------- message generation

Bytes gen_bytes(Rng& rng, std::size_t max_len) {
  return rng.bytes(gen_range(rng, 0, max_len));
}

SampleProof gen_sample_proof(Rng& rng) {
  SampleProof proof;
  proof.index = LeafIndex{gen_range(rng, 0, 1 << 20)};
  proof.result = gen_bytes(rng, 48);
  const std::uint64_t height = gen_range(rng, 0, 6);
  for (std::uint64_t i = 0; i < height; ++i) {
    proof.siblings.push_back(gen_bytes(rng, 32));
  }
  return proof;
}

// One random message of every variant, chosen uniformly.
Message gen_message(Rng& rng) {
  const TaskId task{gen_range(rng, 1, 1 << 16)};
  switch (rng.uniform(18)) {
    case 0: {
      TaskAssignment m;
      m.task = task;
      m.domain_begin = gen_range(rng, 0, 1 << 20);
      m.domain_end = m.domain_begin + gen_range(rng, 1, 1 << 10);
      m.workload = rng.bernoulli(0.5) ? "test" : "keysearch";
      m.workload_seed = rng.next();
      m.scheme.kind = static_cast<SchemeKind>(rng.uniform(5));
      if (rng.bernoulli(0.3)) {
        m.scheme.name = "custom+scheme";
      }
      if (rng.bernoulli(0.5)) {
        // Exercise the trailing pipeline section about half the time, so
        // both the legacy and the extended assignment layouts get fuzzed.
        m.scheme.pipeline.epochs = gen_range(rng, 2, 64);
        m.scheme.pipeline.samples_per_epoch = gen_range(rng, 1, 16);
        m.scheme.pipeline.max_inflight = gen_range(rng, 1, 4);
        m.scheme.pipeline.window_epochs = gen_range(rng, 1, 8);
      }
      const std::uint64_t images = gen_range(rng, 0, 3);
      for (std::uint64_t i = 0; i < images; ++i) {
        m.ringer_images.push_back(gen_bytes(rng, 32));
      }
      return m;
    }
    case 1:
      return Commitment{task, gen_range(rng, 0, 1 << 20), gen_bytes(rng, 32)};
    case 2: {
      SampleChallenge m{task, {}};
      const std::uint64_t count = gen_range(rng, 0, 12);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.samples.push_back(LeafIndex{gen_range(rng, 0, 1 << 20)});
      }
      return m;
    }
    case 3: {
      ProofResponse m{task, {}};
      const std::uint64_t count = gen_range(rng, 0, 6);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.proofs.push_back(gen_sample_proof(rng));
      }
      return m;
    }
    case 4: {
      NiCbsProof m;
      m.commitment =
          Commitment{task, gen_range(rng, 0, 1 << 20), gen_bytes(rng, 32)};
      m.response.task = task;
      const std::uint64_t count = gen_range(rng, 0, 4);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.response.proofs.push_back(gen_sample_proof(rng));
      }
      return m;
    }
    case 5: {
      ResultsUpload m{task, {}};
      const std::uint64_t count = gen_range(rng, 0, 16);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.results.push_back(gen_bytes(rng, 24));
      }
      return m;
    }
    case 6: {
      ScreenerReport m{task, {}};
      const std::uint64_t count = gen_range(rng, 0, 4);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.hits.push_back(
            ScreenerHit{rng.next(), concat("hit:", rng.uniform(1000))});
      }
      return m;
    }
    case 7: {
      RingerReport m{task, {}};
      const std::uint64_t count = gen_range(rng, 0, 6);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.found_inputs.push_back(rng.next());
      }
      return m;
    }
    case 8: {
      Verdict m;
      m.task = task;
      m.status = static_cast<VerdictStatus>(rng.uniform(5));
      if (rng.bernoulli(0.5)) {
        m.failed_sample = LeafIndex{gen_range(rng, 0, 1 << 20)};
      }
      m.detail = rng.bernoulli(0.5) ? "some detail" : "";
      return m;
    }
    case 9: {
      Hello m;
      m.protocol = static_cast<std::uint16_t>(gen_range(rng, 0, 1 << 16));
      m.agent = rng.bernoulli(0.5) ? concat("agent-", rng.uniform(1000)) : "";
      return m;
    }
    case 10: {
      HelloChallenge m;
      m.protocol = static_cast<std::uint16_t>(gen_range(rng, 0, 1 << 16));
      m.nonce = gen_bytes(rng, gen_range(rng, 0, 48));
      return m;
    }
    case 11: {
      HelloProof m;
      m.protocol = static_cast<std::uint16_t>(gen_range(rng, 0, 1 << 16));
      m.agent = rng.bernoulli(0.5) ? concat("agent-", rng.uniform(1000)) : "";
      m.public_key = gen_bytes(rng, gen_range(rng, 0, 48));
      m.mac = gen_bytes(rng, 32);
      return m;
    }
    case 12: {
      BatchProofResponse m;
      m.task = task;
      const std::uint64_t count = gen_range(rng, 0, 6);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.results.emplace_back(LeafIndex{gen_range(rng, 0, 1 << 20)},
                               gen_bytes(rng, 24));
      }
      const std::uint64_t siblings = gen_range(rng, 0, 8);
      for (std::uint64_t i = 0; i < siblings; ++i) {
        m.siblings.push_back(gen_bytes(rng, 32));
      }
      return m;
    }
    case 13: {
      EpochCommitment m;
      m.task = task;
      m.epoch = gen_range(rng, 0, 63);
      m.epoch_count = gen_range(rng, 1, 64);
      m.commitment =
          Commitment{task, gen_range(rng, 0, 1 << 20), gen_bytes(rng, 32)};
      return m;
    }
    case 14: {
      EpochChallenge m{task, gen_range(rng, 0, 63), {}};
      const std::uint64_t count = gen_range(rng, 0, 12);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.samples.push_back(LeafIndex{gen_range(rng, 0, 1 << 20)});
      }
      return m;
    }
    case 15: {
      EpochProofResponse m;
      m.task = task;
      m.epoch = gen_range(rng, 0, 63);
      m.response.task = task;
      const std::uint64_t count = gen_range(rng, 0, 6);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.response.proofs.push_back(gen_sample_proof(rng));
      }
      return m;
    }
    case 16:
      return EpochAck{task, gen_range(rng, 0, 1ULL << 40)};
    default:
      return EpochResume{task, gen_range(rng, 0, 1ULL << 40)};
  }
}

// Decode must end in exactly two ways on hostile bytes: WireError or a
// value. Anything else (crash, other exception type) is a defect.
Failure decode_gracefully(BytesView data) {
  try {
    (void)decode_message(data);
  } catch (const WireError&) {
    // fine: rejected cleanly
  } catch (const std::exception& e) {
    return concat("decode threw non-WireError: ", e.what());
  }
  return {};
}

// --------------------------------------------------------------- round-trip

struct FuzzCase {
  Message message;
  std::uint64_t mutation_seed = 0;
};

Property<FuzzCase> fuzz_property(const std::string& name) {
  Property<FuzzCase> prop;
  prop.name = name;
  prop.gen = [](Rng& rng) {
    FuzzCase c;
    c.message = gen_message(rng);
    c.mutation_seed = rng.next();
    return c;
  };
  prop.show = [](const FuzzCase& c) {
    return concat("type=", to_string(message_type(c.message)),
                  " mutation_seed=", c.mutation_seed);
  };
  return prop;
}

TEST(PropWireFuzz, prop_every_message_type_round_trips_bit_exactly) {
  prop_check(fuzz_property("encode/decode round-trip is the identity"),
             [](const FuzzCase& c) -> Failure {
               const Bytes encoded = encode_message(c.message);
               const Message decoded = decode_message(encoded);
               if (!(decoded == c.message)) {
                 return concat("round-trip mismatch for ",
                               to_string(message_type(c.message)));
               }
               // The capacity-reusing encoder must emit identical bytes.
               Bytes reused(64, 0xab);
               encode_message_into(c.message, reused);
               if (reused != encoded) {
                 return "encode_message_into diverged from encode_message";
               }
               return {};
             });
}

TEST(PropWireFuzz, prop_truncated_encodings_reject_gracefully) {
  prop_check(
      fuzz_property("every truncation throws WireError or decodes"),
      [](const FuzzCase& c) -> Failure {
        const Bytes encoded = encode_message(c.message);
        for (std::size_t len = 0; len < encoded.size(); ++len) {
          if (Failure f = decode_gracefully(BytesView(encoded).first(len))) {
            return concat("prefix of ", len, " bytes: ", *f);
          }
        }
        return {};
      });
}

TEST(PropWireFuzz, prop_bit_flipped_encodings_reject_gracefully) {
  prop_check(
      fuzz_property("bit flips throw WireError or decode to junk"),
      [](const FuzzCase& c) -> Failure {
        const Bytes encoded = encode_message(c.message);
        if (encoded.empty()) {
          return {};
        }
        Rng rng(c.mutation_seed);
        for (int flip = 0; flip < 64; ++flip) {
          Bytes mutated = encoded;
          const std::uint64_t flips = 1 + rng.uniform(8);
          for (std::uint64_t b = 0; b < flips; ++b) {
            const std::uint64_t bit = rng.uniform(mutated.size() * 8);
            mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          }
          if (Failure f = decode_gracefully(mutated)) {
            return f;
          }
        }
        return {};
      });
}

// ------------------------------------------------------------ view decoders

Failure view_decode_gracefully(BytesView data, MessageType type,
                               WireViewArena& arena) {
  try {
    if (type == MessageType::kProofResponse) {
      (void)decode_proof_response_view(data, arena);
    } else {
      (void)decode_batch_proof_response_view(data, arena);
    }
  } catch (const WireError&) {
    // fine
  } catch (const std::exception& e) {
    return concat("view decode threw non-WireError: ", e.what());
  }
  return {};
}

TEST(PropWireFuzz, prop_view_decoders_survive_truncation_and_flips) {
  Property<FuzzCase> prop;
  prop.name = "proof view decoders reject hostile bytes cleanly";
  prop.gen = [](Rng& rng) {
    FuzzCase c;
    if (rng.bernoulli(0.5)) {
      ProofResponse m{TaskId{gen_range(rng, 1, 1000)}, {}};
      const std::uint64_t count = gen_range(rng, 0, 6);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.proofs.push_back(gen_sample_proof(rng));
      }
      c.message = m;
    } else {
      BatchProofResponse m;
      m.task = TaskId{gen_range(rng, 1, 1000)};
      const std::uint64_t count = gen_range(rng, 0, 6);
      for (std::uint64_t i = 0; i < count; ++i) {
        m.results.emplace_back(LeafIndex{gen_range(rng, 0, 1 << 20)},
                               gen_bytes(rng, 24));
      }
      c.message = m;
    }
    c.mutation_seed = rng.next();
    return c;
  };
  prop.show = [](const FuzzCase& c) {
    return concat("type=", to_string(message_type(c.message)),
                  " mutation_seed=", c.mutation_seed);
  };

  // One arena reused across every hostile input: a rejected decode must not
  // poison the next one.
  WireViewArena arena;
  prop_check(prop, [&arena](const FuzzCase& c) -> Failure {
    const MessageType type = message_type(c.message);
    const Bytes encoded = encode_message(c.message);
    for (std::size_t len = 0; len < encoded.size(); ++len) {
      if (Failure f = view_decode_gracefully(BytesView(encoded).first(len),
                                             type, arena)) {
        return concat("prefix of ", len, " bytes: ", *f);
      }
    }
    Rng rng(c.mutation_seed);
    for (int flip = 0; flip < 32; ++flip) {
      Bytes mutated = encoded;
      const std::uint64_t bit = rng.uniform(mutated.size() * 8);
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      if (Failure f = view_decode_gracefully(mutated, type, arena)) {
        return f;
      }
    }
    // After all that abuse the arena still decodes a clean message.
    try {
      if (type == MessageType::kProofResponse) {
        const ProofResponseView view =
            decode_proof_response_view(encoded, arena);
        const auto& original = std::get<ProofResponse>(c.message);
        if (view.proofs.size() != original.proofs.size()) {
          return "arena decode lost proofs after hostile inputs";
        }
      } else {
        const BatchProofResponseView view =
            decode_batch_proof_response_view(encoded, arena);
        const auto& original = std::get<BatchProofResponse>(c.message);
        if (view.results.size() != original.results.size()) {
          return "arena decode lost results after hostile inputs";
        }
      }
    } catch (const WireError& e) {
      return concat("clean message failed to view-decode: ", e.what());
    }
    return {};
  });
}

// ----------------------------------------------------- scheme envelope too

TEST(PropWireFuzz, prop_scheme_envelope_round_trips_and_rejects_grid_types) {
  prop_check(
      fuzz_property("scheme envelope round-trips; grid-only types throw"),
      [](const FuzzCase& c) -> Failure {
        const auto scheme_message = to_scheme_message(c.message);
        if (!scheme_message.has_value()) {
          // Grid-only type: the scheme decoder must refuse its envelope.
          try {
            (void)decode_scheme_message(encode_message(c.message));
            return concat(to_string(message_type(c.message)),
                          " decoded as scheme traffic");
          } catch (const WireError&) {
            return {};
          }
        }
        const Bytes encoded = encode_scheme_message(*scheme_message);
        const SchemeMessage decoded = decode_scheme_message(encoded);
        if (!(to_message(decoded) == c.message)) {
          return "scheme round-trip mismatch";
        }
        return {};
      });
}

}  // namespace
}  // namespace ugc
