#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "net/frame.h"
#include "net/timer_wheel.h"
#include "wire/codec.h"
#include "wire/messages.h"

namespace ugc {
namespace {

using net::FrameDecoder;
using net::FrameError;
using net::append_frame;
using net::kFrameHeaderSize;

Bytes frame_of(BytesView payload) {
  Bytes out;
  append_frame(payload, out);
  return out;
}

TEST(Frame, AppendFramePrefixesLittleEndianLength) {
  const Bytes framed = frame_of(to_bytes("abc"));
  ASSERT_EQ(framed.size(), kFrameHeaderSize + 3);
  EXPECT_EQ(framed[0], 3u);
  EXPECT_EQ(framed[1], 0u);
  EXPECT_EQ(framed[2], 0u);
  EXPECT_EQ(framed[3], 0u);
  EXPECT_EQ(framed[4], 'a');
}

TEST(Frame, AppendFrameDoesNotClearItsBuffer) {
  Bytes out = to_bytes("prefix");
  append_frame(to_bytes("x"), out);
  EXPECT_EQ(out.size(), 6 + kFrameHeaderSize + 1);
}

TEST(Frame, AppendFrameRejectsOversizedPayload) {
  Bytes out;
  const Bytes payload(128, 0xaa);
  EXPECT_THROW(append_frame(payload, out, 127), FrameError);
}

TEST(Frame, RoundTripSingleFrame) {
  FrameDecoder decoder;
  decoder.feed(frame_of(to_bytes("hello frame")));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(to_string(*payload), "hello frame");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.bytes_pending(), 0u);
}

TEST(Frame, PartialReadsAcrossEveryBoundary) {
  // Two frames, fed one byte at a time: the decoder must reassemble both
  // regardless of where recv() happened to split the stream.
  Bytes stream = frame_of(to_bytes("first"));
  append_frame(to_bytes("second, longer payload"), stream);

  FrameDecoder decoder;
  std::vector<std::string> frames;
  for (const std::uint8_t byte : stream) {
    decoder.feed(BytesView(&byte, 1));
    while (const auto payload = decoder.next()) {
      frames.push_back(to_string(*payload));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "first");
  EXPECT_EQ(frames[1], "second, longer payload");
  EXPECT_EQ(decoder.bytes_pending(), 0u);
}

TEST(Frame, SeveralFramesInOneFeed) {
  Bytes stream;
  for (int i = 0; i < 5; ++i) {
    append_frame(to_bytes(concat("frame-", i)), stream);
  }
  FrameDecoder decoder;
  decoder.feed(stream);
  for (int i = 0; i < 5; ++i) {
    const auto payload = decoder.next();
    ASSERT_TRUE(payload.has_value()) << "frame " << i;
    EXPECT_EQ(to_string(*payload), concat("frame-", i));
  }
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Frame, EmptyPayloadIsAValidFrame) {
  // Framing carries zero-length payloads; rejecting nonsense bytes is the
  // wire codec's job (decode_message throws on an empty buffer).
  FrameDecoder decoder;
  decoder.feed(frame_of({}));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
  EXPECT_THROW(decode_message(*payload), WireError);
}

TEST(Frame, OversizedLengthRejectedAtTheHeader) {
  // The hostile header alone must poison the stream — before any of the
  // announced payload arrives, so a peer cannot make us reserve 4 GiB.
  FrameDecoder decoder(1024);
  Bytes header{0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW(decoder.feed(header), FrameError);
  EXPECT_TRUE(decoder.poisoned());
  // A poisoned stream stays dead: resynchronization is impossible.
  EXPECT_THROW(decoder.feed(to_bytes("x")), FrameError);
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(Frame, OversizedLengthRejectedMidStream) {
  FrameDecoder decoder(64);
  Bytes stream = frame_of(to_bytes("ok"));
  stream.push_back(0xff);  // start of a hostile header
  stream.push_back(0xff);
  stream.push_back(0xff);
  stream.push_back(0x7f);
  decoder.feed(stream);
  // The good frame decodes; the hostile header then kills the stream.
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(to_string(*payload), "ok");
  EXPECT_THROW(decoder.next(), FrameError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(Frame, ExactCapLengthIsAccepted) {
  FrameDecoder decoder(8);
  decoder.feed(frame_of(Bytes(8, 0x11)));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(payload->size(), 8u);
}

TEST(Frame, MidFrameDisconnectLeavesBytesPending) {
  // A peer dying mid-frame (or mid-header) must be detectable: the decoder
  // reports the truncated tail instead of silently swallowing it.
  const Bytes framed = frame_of(to_bytes("truncated in flight"));

  for (std::size_t cut = 1; cut < framed.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(BytesView(framed).first(cut));
    EXPECT_FALSE(decoder.next().has_value()) << "cut at " << cut;
    EXPECT_EQ(decoder.bytes_pending(), cut) << "cut at " << cut;
  }
}

TEST(Frame, PendingDropsToZeroOnlyAfterACompleteFrame) {
  const Bytes framed = frame_of(to_bytes("abc"));
  FrameDecoder decoder;
  decoder.feed(BytesView(framed).first(framed.size() - 1));
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed(BytesView(framed).last(1));
  ASSERT_TRUE(decoder.next().has_value());
  EXPECT_EQ(decoder.bytes_pending(), 0u);
}

TEST(Frame, ViewsValidUntilNextFeed) {
  // next() views alias the internal buffer across next() calls within one
  // feed; a later feed() may compact and invalidate them (documented).
  Bytes stream = frame_of(to_bytes("aa"));
  append_frame(to_bytes("bb"), stream);
  FrameDecoder decoder;
  decoder.feed(stream);
  const auto first = decoder.next();
  const auto second = decoder.next();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(to_string(*first), "aa");
  EXPECT_EQ(to_string(*second), "bb");
}

// ------------------------------------------------------------- timer wheel

TEST(TimerWheel, FiresAtTheDeadline) {
  net::TimerWheel wheel(10);
  const auto id = wheel.schedule(0, 50);
  std::vector<net::TimerWheel::TimerId> fired;
  wheel.advance(40, fired);
  EXPECT_TRUE(fired.empty());
  wheel.advance(60, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], id);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, CancelDisarms) {
  net::TimerWheel wheel(10);
  const auto id = wheel.schedule(0, 30);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));
  std::vector<net::TimerWheel::TimerId> fired;
  wheel.advance(1000, fired);
  EXPECT_TRUE(fired.empty());
}

TEST(TimerWheel, ZeroDelayFiresOnNextAdvanceNotReentrantly) {
  net::TimerWheel wheel(10);
  wheel.schedule(100, 0);
  std::vector<net::TimerWheel::TimerId> fired;
  wheel.advance(100, fired);
  EXPECT_TRUE(fired.empty());  // clamped to one tick ahead
  wheel.advance(120, fired);
  EXPECT_EQ(fired.size(), 1u);
}

TEST(TimerWheel, LongDelaysSurviveWheelLaps) {
  // A deadline far beyond slot_count * tick hashes into a slot the cursor
  // passes many times; it must fire only on the right lap.
  net::TimerWheel wheel(1, 8);  // tiny wheel: 8 ms horizon
  const auto id = wheel.schedule(0, 100);
  std::vector<net::TimerWheel::TimerId> fired;
  for (std::uint64_t t = 0; t < 100; t += 7) {
    wheel.advance(t, fired);
    EXPECT_TRUE(fired.empty()) << "at " << t;
  }
  wheel.advance(101, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], id);
}

TEST(TimerWheel, NextDeadlineTracksEarliestTimer) {
  net::TimerWheel wheel(10);
  EXPECT_FALSE(wheel.next_deadline_ms().has_value());
  wheel.schedule(0, 200);
  const auto late = wheel.next_deadline_ms();
  wheel.schedule(0, 50);
  const auto early = wheel.next_deadline_ms();
  ASSERT_TRUE(late.has_value());
  ASSERT_TRUE(early.has_value());
  EXPECT_LT(*early, *late);
}

TEST(TimerWheel, CancelRacingExpiryNeitherFiresNorDoubleCounts) {
  net::TimerWheel wheel(10);
  std::vector<net::TimerWheel::TimerId> fired;
  // Cancel at the brink: the cursor is one tick short of the deadline.
  const auto id = wheel.schedule(0, 50);
  wheel.advance(49, fired);
  EXPECT_TRUE(fired.empty());
  EXPECT_TRUE(wheel.cancel(id));
  wheel.advance(500, fired);
  EXPECT_TRUE(fired.empty());
  // The mirror race: expiry wins, the late cancel must report "too late"
  // (the transport relies on this to know a wakeup already happened).
  const auto late = wheel.schedule(500, 30);
  wheel.advance(540, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], late);
  EXPECT_FALSE(wheel.cancel(late)) << "a fired timer is spent";
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, MultiLapTimerSurvivesCancellationOfItsSlotMate) {
  // Two timers hashing into nearby slots of a tiny wheel, many laps out;
  // cancelling one must not disturb the other's lap accounting.
  net::TimerWheel wheel(1, 4);  // 4ms horizon: everything below laps
  std::vector<net::TimerWheel::TimerId> fired;
  const auto keep = wheel.schedule(0, 37);
  const auto drop = wheel.schedule(0, 41);
  EXPECT_TRUE(wheel.cancel(drop));
  for (std::uint64_t t = 0; t <= 36; ++t) {
    wheel.advance(t, fired);
    EXPECT_TRUE(fired.empty()) << "at " << t;
  }
  wheel.advance(38, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], keep);
  wheel.advance(500, fired);
  EXPECT_EQ(fired.size(), 1u) << "the cancelled slot-mate must stay dead";
}

TEST(TimerWheel, ReArmedQuiescenceFiresExactlyOncePerStallEpisode) {
  // The transport's quiescence pattern: one armed timer per stall episode,
  // firing exactly once however long time keeps advancing afterwards, and
  // re-armed only when the next episode begins.
  net::TimerWheel wheel(10);
  std::vector<net::TimerWheel::TimerId> fired;
  std::size_t episodes = 0;
  auto id = wheel.schedule(0, 100);
  for (std::uint64_t t = 0; t <= 2000; t += 10) {
    wheel.advance(t, fired);
    if (!fired.empty()) {
      ASSERT_EQ(fired.size(), 1u) << "at " << t;
      EXPECT_EQ(fired[0], id);
      ++episodes;
      fired.clear();
      if (episodes < 3) {
        id = wheel.schedule(t, 100);  // the next stall episode begins
      }
    }
  }
  EXPECT_EQ(episodes, 3u) << "three armed episodes, three firings, no more";
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, ManyTimersAllFireExactlyOnce) {
  net::TimerWheel wheel(5, 16);
  std::vector<net::TimerWheel::TimerId> expected;
  for (std::uint64_t i = 0; i < 100; ++i) {
    expected.push_back(wheel.schedule(0, 10 + i * 13));
  }
  std::vector<net::TimerWheel::TimerId> fired;
  for (std::uint64_t t = 0; t <= 10 + 99 * 13 + 5; t += 3) {
    wheel.advance(t, fired);
  }
  std::sort(fired.begin(), fired.end());
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(wheel.armed(), 0u);
}

}  // namespace
}  // namespace ugc
