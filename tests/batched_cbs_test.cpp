// Batched-CBS extension: the interactive protocol with merged
// authentication paths (CbsConfig::use_batch_proofs). Everything the plain
// protocol guarantees must hold, with smaller responses.

#include <gtest/gtest.h>

#include "core/cbs.h"
#include "grid/simulation.h"
#include "test_util.h"

namespace ugc {
namespace {

using ugc::testing::make_test_task;

std::shared_ptr<const ResultVerifier> verifier_for(const Task& task) {
  return std::make_shared<RecomputeVerifier>(task.f);
}

struct BatchedCase {
  std::uint64_t n;
  std::size_t m;
  LeafMode leaf_mode;
  unsigned storage_height;
};

class BatchedCbsSweep : public ::testing::TestWithParam<BatchedCase> {};

TEST_P(BatchedCbsSweep, HonestParticipantAccepted) {
  const auto [n, m, leaf_mode, ell] = GetParam();
  const Task task = make_test_task(n);
  CbsConfig config;
  config.sample_count = m;
  config.use_batch_proofs = true;
  config.tree.leaf_mode = leaf_mode;
  config.tree.storage_subtree_height = ell;

  const CbsRunResult result = run_cbs_exchange(
      task, config, make_honest_policy(), verifier_for(task), 3);
  EXPECT_TRUE(result.verdict.accepted()) << result.verdict.detail;
  // One batched reconstruction replaces m individual ones.
  EXPECT_EQ(result.supervisor_metrics.roots_reconstructed, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BatchedCbsSweep,
    ::testing::Values(BatchedCase{1, 1, LeafMode::kRaw, 0},
                      BatchedCase{16, 8, LeafMode::kRaw, 0},
                      BatchedCase{33, 10, LeafMode::kRaw, 0},
                      BatchedCase{64, 33, LeafMode::kRaw, 0},
                      BatchedCase{64, 16, LeafMode::kHashed, 0},
                      BatchedCase{100, 8, LeafMode::kRaw, 3},  // §3.3 storage
                      BatchedCase{257, 14, LeafMode::kHashed, 4}));

TEST(BatchedCbs, CheaterStillCaught) {
  const Task task = make_test_task(256);
  CbsConfig config;
  config.sample_count = 33;
  config.use_batch_proofs = true;
  const CbsRunResult result = run_cbs_exchange(
      task, config, make_semi_honest_cheater({0.3, 0.0, 9}),
      verifier_for(task), 4);
  EXPECT_FALSE(result.verdict.accepted());
}

TEST(BatchedCbs, LateComputedResultIsRootMismatch) {
  // Theorem 2's attack against the batched variant.
  const Task task = make_test_task(64);
  CbsConfig config;
  config.sample_count = 8;
  config.use_batch_proofs = true;
  CbsParticipant cheater(task, config,
                         make_semi_honest_cheater({0.0, 0.0, 5}));
  CbsSupervisor supervisor(task, config, verifier_for(task), Rng(6));
  const SampleChallenge challenge = supervisor.challenge(cheater.commit());
  BatchProofResponse response = cheater.respond_batched(challenge);
  for (auto& [index, result] : response.results) {
    result = task.f->evaluate(task.domain.input(index));
  }
  const Verdict verdict = supervisor.verify_batched(response);
  EXPECT_FALSE(verdict.accepted());
  EXPECT_EQ(verdict.status, VerdictStatus::kRootMismatch);
}

TEST(BatchedCbs, MalformedResponsesRejected) {
  const Task task = make_test_task(64);
  CbsConfig config;
  config.sample_count = 8;
  config.use_batch_proofs = true;
  CbsParticipant participant(task, config, make_honest_policy());
  CbsSupervisor supervisor(task, config, verifier_for(task), Rng(8));
  const SampleChallenge challenge = supervisor.challenge(participant.commit());
  const BatchProofResponse good = participant.respond_batched(challenge);

  {
    BatchProofResponse bad = good;
    bad.results.pop_back();
    EXPECT_EQ(supervisor.verify_batched(bad).status,
              VerdictStatus::kMalformed);
  }
  {
    BatchProofResponse bad = good;
    bad.task = TaskId{42};
    EXPECT_EQ(supervisor.verify_batched(bad).status,
              VerdictStatus::kMalformed);
  }
  {
    BatchProofResponse bad = good;
    bad.siblings.pop_back();
    EXPECT_FALSE(supervisor.verify_batched(bad).accepted());
  }
  {
    BatchProofResponse bad = good;
    if (bad.results.size() >= 2) {
      std::swap(bad.results[0], bad.results[1]);
      EXPECT_EQ(supervisor.verify_batched(bad).status,
                VerdictStatus::kMalformed);
    }
  }
}

TEST(BatchedCbs, ResponseIsSmallerThanIndependentPaths) {
  const Task task = make_test_task(1 << 12);
  CbsConfig config;
  config.sample_count = 64;

  CbsParticipant plain(task, config, make_honest_policy());
  CbsSupervisor plain_supervisor(task, config, verifier_for(task), Rng(11));
  const SampleChallenge challenge =
      plain_supervisor.challenge(plain.commit());
  const std::size_t independent =
      plain.respond(challenge).payload_bytes();
  const std::size_t batched =
      plain.respond_batched(challenge).payload_bytes();
  EXPECT_LT(batched, independent);
}

TEST(BatchedCbs, GridEndToEnd) {
  GridConfig config;
  config.domain_end = 1 << 10;
  config.workload = "keysearch";
  config.workload_seed = 5;
  config.participant_count = 4;
  config.seed = 7;
  config.scheme.kind = SchemeKind::kCbs;
  config.scheme.cbs.sample_count = 20;
  config.scheme.cbs.use_batch_proofs = true;
  config.cheaters = {{1, 0.4, 0.0, 0}};

  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.cheater_tasks_rejected, 1u);
  EXPECT_EQ(result.honest_tasks_rejected, 0u);
  ASSERT_EQ(result.hits.size(), 1u);

  // And it really moves fewer bytes than the unbatched wire protocol.
  GridConfig unbatched = config;
  unbatched.scheme.cbs.use_batch_proofs = false;
  const GridRunResult plain = run_grid_simulation(unbatched);
  EXPECT_LT(result.network.total_bytes, plain.network.total_bytes);
}

TEST(BatchedCbs, WireRoundTrip) {
  BatchProofResponse response;
  response.task = TaskId{5};
  response.results = {{LeafIndex{1}, to_bytes("r1")},
                      {LeafIndex{9}, to_bytes("r9")}};
  response.siblings = {to_bytes("s0"), to_bytes("s1"), Bytes{}};
  const Message decoded = decode_message(encode_message(Message{response}));
  ASSERT_TRUE(std::holds_alternative<BatchProofResponse>(decoded));
  EXPECT_EQ(std::get<BatchProofResponse>(decoded), response);
}

TEST(BatchedCbs, SchemeConfigFlagSurvivesWire) {
  TaskAssignment assignment;
  assignment.task = TaskId{1};
  assignment.domain_end = 8;
  assignment.workload = "test";
  assignment.scheme.cbs.use_batch_proofs = true;
  const Message decoded =
      decode_message(encode_message(Message{assignment}));
  EXPECT_TRUE(
      std::get<TaskAssignment>(decoded).scheme.cbs.use_batch_proofs);
}

}  // namespace
}  // namespace ugc
