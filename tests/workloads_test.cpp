#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "core/cheating.h"
#include "core/ringer.h"
#include "workloads/factoring.h"
#include "workloads/keysearch.h"
#include "workloads/lucas_lehmer.h"
#include "workloads/molecule_screen.h"
#include "workloads/registry.h"
#include "workloads/signal_scan.h"

namespace ugc {
namespace {

// ------------------------------------------------------------- keysearch

TEST(KeySearch, DeterministicFixedWidth) {
  const KeySearchFunction f(4, 7);
  EXPECT_EQ(f.evaluate(100), f.evaluate(100));
  EXPECT_NE(f.evaluate(100), f.evaluate(101));
  EXPECT_EQ(f.evaluate(100).size(), KeySearchFunction::kResultSize);
}

TEST(KeySearch, WorkFactorChangesOutput) {
  const KeySearchFunction light(1, 7);
  const KeySearchFunction heavy(16, 7);
  EXPECT_NE(light.evaluate(5), heavy.evaluate(5));
}

TEST(KeySearch, WorkFactorValidation) {
  EXPECT_THROW(KeySearchFunction(0, 1), Error);
}

TEST(KeySearch, ScreenerFindsOnlyTheSecret) {
  const KeySearchScenario scenario = make_keysearch_scenario(0, 4096, 11);
  EXPECT_LT(scenario.secret_key, 4096u);

  std::size_t hits = 0;
  for (std::uint64_t x = 0; x < 4096; ++x) {
    if (scenario.screener->screen(x, scenario.f->evaluate(x)).has_value()) {
      EXPECT_EQ(x, scenario.secret_key);
      ++hits;
    }
  }
  EXPECT_EQ(hits, 1u);
}

TEST(KeySearch, ScenarioIsSeedDeterministic) {
  const auto a = make_keysearch_scenario(0, 1 << 16, 3);
  const auto b = make_keysearch_scenario(0, 1 << 16, 3);
  EXPECT_EQ(a.secret_key, b.secret_key);
  const auto c = make_keysearch_scenario(0, 1 << 16, 4);
  EXPECT_NE(a.secret_key, c.secret_key);  // overwhelmingly likely
}

TEST(KeySearch, OneWaySuitsRingerScheme) {
  // The ringer baseline requires a one-way f; keysearch provides it.
  const KeySearchScenario scenario = make_keysearch_scenario(500, 756, 13);
  const Task task =
      Task::make(TaskId{1}, Domain(500, 756), scenario.f, scenario.screener);
  const RingerSupervisor supervisor(task, {6, 17});
  RingerParticipant participant(task, supervisor.planted_images(),
                                make_honest_policy());
  EXPECT_TRUE(supervisor.verify(participant.scan()).accepted);
}

// ------------------------------------------------------------ signal scan

TEST(SignalScan, Deterministic) {
  SignalScanFunction::Params params;
  params.noise_seed = 5;
  const SignalScanFunction f(params);
  EXPECT_EQ(f.evaluate(42), f.evaluate(42));
  EXPECT_NE(f.evaluate(42), f.evaluate(43));
  EXPECT_EQ(f.evaluate(42).size(), SignalScanFunction::kResultSize);
}

TEST(SignalScan, InjectedBlocksScoreFarAboveNoise) {
  SignalScanFunction::Params params;
  params.noise_seed = 9;
  const SignalScanFunction f(params);

  std::uint64_t worst_signal = ~std::uint64_t{0};
  std::uint64_t best_noise = 0;
  std::size_t signal_blocks = 0;
  for (std::uint64_t x = 0; x < 512; ++x) {
    const std::uint64_t score = SignalScanFunction::score_of(f.evaluate(x));
    if (f.has_signal(x)) {
      ++signal_blocks;
      worst_signal = std::min(worst_signal, score);
    } else {
      best_noise = std::max(best_noise, score);
    }
  }
  ASSERT_GT(signal_blocks, 0u);  // ~512/64 = 8 expected
  ASSERT_LT(signal_blocks, 64u);
  // Complete separation with a wide margin around the registry threshold.
  EXPECT_GT(worst_signal, best_noise * 2);
  EXPECT_GT(worst_signal, std::uint64_t{98304});
  EXPECT_LT(best_noise, std::uint64_t{98304});
}

TEST(SignalScan, ScreenerMatchesGroundTruth) {
  SignalScanFunction::Params params;
  params.noise_seed = 21;
  const SignalScanFunction f(params);
  const SignalScreener screener(98304);
  for (std::uint64_t x = 0; x < 256; ++x) {
    const bool reported = screener.screen(x, f.evaluate(x)).has_value();
    EXPECT_EQ(reported, f.has_signal(x)) << "block " << x;
  }
}

TEST(SignalScan, ParamValidation) {
  SignalScanFunction::Params params;
  params.block_samples = 4;
  EXPECT_THROW(SignalScanFunction{params}, Error);
  params = {};
  params.templates = 0;
  EXPECT_THROW(SignalScanFunction{params}, Error);
}

TEST(SignalScan, ShortResultIsNotScreened) {
  const SignalScreener screener(1);
  EXPECT_EQ(screener.screen(0, Bytes{1, 2}), std::nullopt);
}

// -------------------------------------------------------- molecule screen

TEST(MoleculeScreen, DeterministicFixedWidth) {
  const MoleculeScreenFunction f({});
  EXPECT_EQ(f.evaluate(7), f.evaluate(7));
  EXPECT_NE(f.evaluate(7), f.evaluate(8));
  EXPECT_EQ(f.evaluate(7).size(), MoleculeScreenFunction::kResultSize);
}

TEST(MoleculeScreen, ReceptorSeedChangesScores) {
  const MoleculeScreenFunction a({32, 16, 1});
  const MoleculeScreenFunction b({32, 16, 2});
  EXPECT_NE(a.evaluate(7), b.evaluate(7));
}

TEST(MoleculeScreen, StrongBindersAreRareButExist) {
  const MoleculeScreenFunction f({});
  const BindingScreener screener(36000);
  std::size_t hits = 0;
  for (std::uint64_t x = 0; x < 500; ++x) {
    if (screener.screen(x, f.evaluate(x)).has_value()) {
      ++hits;
    }
  }
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, 250u);  // "interesting" must be the exception
}

TEST(MoleculeScreen, ParamValidation) {
  EXPECT_THROW(MoleculeScreenFunction({2, 16, 1}), Error);
  EXPECT_THROW(MoleculeScreenFunction({32, 0, 1}), Error);
}

// ---------------------------------------------------------- Lucas–Lehmer

TEST(LucasLehmer, KnownMersennePrimeExponents) {
  for (std::uint64_t p : {2u, 3u, 5u, 7u, 13u, 17u, 19u, 31u, 61u}) {
    EXPECT_TRUE(LucasLehmerFunction::mersenne_is_prime(p)) << "p=" << p;
  }
}

TEST(LucasLehmer, KnownCompositeMersenneNumbers) {
  for (std::uint64_t p : {11u, 23u, 29u, 37u, 41u, 43u, 47u, 53u, 59u}) {
    EXPECT_FALSE(LucasLehmerFunction::mersenne_is_prime(p)) << "p=" << p;
  }
}

TEST(LucasLehmer, NonPrimeExponentsRejectedImmediately) {
  for (std::uint64_t p : {0u, 1u, 4u, 6u, 9u, 15u, 21u, 100u}) {
    EXPECT_FALSE(LucasLehmerFunction::mersenne_is_prime(p)) << "p=" << p;
  }
}

TEST(LucasLehmer, OversizedExponentsRejected) {
  EXPECT_FALSE(LucasLehmerFunction::mersenne_is_prime(64));
  EXPECT_FALSE(LucasLehmerFunction::mersenne_is_prime(89));  // prime M_89, >64 bits
}

TEST(LucasLehmer, FunctionAndScreenerAgree) {
  const LucasLehmerFunction f;
  const MersenneScreener screener;
  for (std::uint64_t p = 0; p < 70; ++p) {
    const Bytes result = f.evaluate(p);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0] == 1, LucasLehmerFunction::mersenne_is_prime(p));
    EXPECT_EQ(screener.screen(p, result).has_value(), result[0] == 1);
  }
}

// -------------------------------------------------------------- factoring

TEST(IsPrimeU64, SmallValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_FALSE(is_prime_u64(91));   // 7 × 13
  EXPECT_FALSE(is_prime_u64(561));  // Carmichael
}

TEST(IsPrimeU64, LargeValues) {
  EXPECT_TRUE(is_prime_u64((std::uint64_t{1} << 61) - 1));  // M61
  EXPECT_FALSE(is_prime_u64((std::uint64_t{1} << 61) - 3));
  EXPECT_TRUE(is_prime_u64(18446744073709551557ULL));  // largest u64 prime
}

TEST(Factoring, EvaluateReturnsSortedPrimeFactors) {
  const FactoringFunction f({16, 3});
  for (std::uint64_t x = 0; x < 20; ++x) {
    const Bytes result = f.evaluate(x);
    const auto [p, q] = FactoringFunction::factors_of(result);
    EXPECT_LE(p, q);
    EXPECT_TRUE(is_prime_u64(p));
    EXPECT_TRUE(is_prime_u64(q));
    EXPECT_EQ(p * q, f.modulus(x));
  }
}

TEST(Factoring, VerifierAcceptsTruth) {
  const auto f = std::make_shared<FactoringFunction>(
      FactoringFunction::Params{16, 3});
  const FactoringVerifier verifier(f);
  for (std::uint64_t x = 0; x < 10; ++x) {
    EXPECT_TRUE(verifier.verify(x, f->evaluate(x)));
  }
}

TEST(Factoring, VerifierRejectsForgeries) {
  const auto f = std::make_shared<FactoringFunction>(
      FactoringFunction::Params{16, 3});
  const FactoringVerifier verifier(f);

  // Wrong modulus: factors of another input.
  EXPECT_FALSE(verifier.verify(1, f->evaluate(2)));

  // Unsorted: q < p.
  const auto [p, q] = FactoringFunction::factors_of(f->evaluate(1));
  Bytes swapped(16);
  put_u64_be(q, swapped.data());
  put_u64_be(p, swapped.data() + 8);
  if (p != q) {
    EXPECT_FALSE(verifier.verify(1, swapped));
  }

  // Trivial "factorization" 1 × N.
  Bytes trivial(16);
  put_u64_be(1, trivial.data());
  put_u64_be(f->modulus(1), trivial.data() + 8);
  EXPECT_FALSE(verifier.verify(1, trivial));

  // Wrong size.
  EXPECT_FALSE(verifier.verify(1, Bytes(8)));
}

TEST(Factoring, VerificationIsCheaperThanComputation) {
  // The point of this workload: the verifier runs Miller–Rabin (log-time)
  // instead of trial division (sqrt-time). Sanity-check the asymmetry.
  const auto f = std::make_shared<FactoringFunction>(
      FactoringFunction::Params{22, 5});
  const FactoringVerifier verifier(f);
  const Bytes result = f->evaluate(0);

  Stopwatch compute_timer;
  for (int i = 0; i < 5; ++i) {
    (void)f->evaluate(0);
  }
  const auto compute_ns = compute_timer.elapsed_ns();

  Stopwatch verify_timer;
  for (int i = 0; i < 5; ++i) {
    (void)verifier.verify(0, result);
  }
  const auto verify_ns = verify_timer.elapsed_ns();
  EXPECT_LT(verify_ns * 10, compute_ns);  // ≥ 10× cheaper
}

TEST(Factoring, ParamValidation) {
  EXPECT_THROW(FactoringFunction({3, 1}), Error);
  EXPECT_THROW(FactoringFunction({32, 1}), Error);
}

// --------------------------------------------------------------- registry

TEST(Registry, BuiltInsPresent) {
  const auto names = WorkloadRegistry::global().names();
  for (const char* expected :
       {"test", "keysearch", "signal-scan", "molecule-screen", "lucas-lehmer",
        "factoring"}) {
    EXPECT_TRUE(WorkloadRegistry::global().contains(expected))
        << expected << " missing from " << names.size() << " workloads";
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(WorkloadRegistry::global().make("nope", 1), Error);
}

TEST(Registry, BundlesAreComplete) {
  for (const std::string& name : WorkloadRegistry::global().names()) {
    const WorkloadBundle bundle = WorkloadRegistry::global().make(name, 1);
    EXPECT_NE(bundle.f, nullptr) << name;
    EXPECT_NE(bundle.screener, nullptr) << name;
    EXPECT_NE(bundle.make_verifier(), nullptr) << name;
    EXPECT_GT(bundle.f->result_size(), 0u) << name;
  }
}

TEST(Registry, FactoringBundleUsesCheapVerifier) {
  const WorkloadBundle bundle = WorkloadRegistry::global().make("factoring", 1);
  ASSERT_NE(bundle.verifier, nullptr);
  EXPECT_EQ(bundle.verifier->name(), "factoring-verifier");
}

TEST(Registry, VerifierFallsBackToRecompute) {
  const WorkloadBundle bundle = WorkloadRegistry::global().make("test", 1);
  EXPECT_EQ(bundle.verifier, nullptr);
  const auto verifier = bundle.make_verifier();
  EXPECT_TRUE(verifier->verify(3, bundle.f->evaluate(3)));
}

TEST(Registry, CustomRegistration) {
  WorkloadRegistry registry;
  EXPECT_FALSE(registry.contains("custom"));
  registry.register_workload("custom", [](std::uint64_t seed) {
    WorkloadBundle bundle;
    bundle.f = std::make_shared<KeySearchFunction>(1, seed);
    return bundle;
  });
  EXPECT_TRUE(registry.contains("custom"));
  const WorkloadBundle bundle = registry.make("custom", 9);
  EXPECT_NE(bundle.f, nullptr);
  EXPECT_NE(bundle.screener, nullptr);  // null screener auto-filled
}

TEST(Registry, RegistrationValidation) {
  WorkloadRegistry registry;
  EXPECT_THROW(registry.register_workload("", [](std::uint64_t) {
    return WorkloadBundle{};
  }),
               Error);
  EXPECT_THROW(registry.register_workload("x", nullptr), Error);
}

}  // namespace
}  // namespace ugc
