#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <tuple>

#include "common/bytes.h"
#include "common/hex.h"
#include "common/stopwatch.h"
#include "crypto/digest.h"
#include "crypto/hash_function.h"
#include "crypto/hmac.h"
#include "crypto/iterated_hash.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace ugc {
namespace {

// ---------------------------------------------------------------- Digest

TEST(Digest, DefaultIsZero) {
  Digest32 d;
  for (std::uint8_t b : d.view()) {
    EXPECT_EQ(b, 0);
  }
}

TEST(Digest, FromSpanRoundTrip) {
  Bytes raw(32);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::uint8_t>(i);
  }
  const Digest32 d = Digest32::from_span(raw);
  EXPECT_EQ(d.to_bytes(), raw);
}

TEST(Digest, FromSpanRejectsWrongSize) {
  EXPECT_THROW(Digest32::from_span(Bytes(31)), Error);
  EXPECT_THROW(Digest16::from_span(Bytes(17)), Error);
}

TEST(Digest, HexRoundTrip) {
  const Digest16 d = Digest16::from_hex("000102030405060708090a0b0c0d0e0f");
  EXPECT_EQ(d.hex(), "000102030405060708090a0b0c0d0e0f");
}

TEST(Digest, Comparable) {
  const Digest16 a = Digest16::from_hex("00000000000000000000000000000001");
  const Digest16 b = Digest16::from_hex("00000000000000000000000000000002");
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a);
}

// ---------------------------------------------------------------- MD5 KATs
// RFC 1321 appendix A.5 test suite.

struct HashVector {
  const char* input;
  const char* digest_hex;
};

class Md5Kat : public ::testing::TestWithParam<HashVector> {};

TEST_P(Md5Kat, MatchesReference) {
  const auto& [input, digest_hex] = GetParam();
  EXPECT_EQ(Md5::hash(to_bytes(input)).hex(), digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1321, Md5Kat,
    ::testing::Values(
        HashVector{"", "d41d8cd98f00b204e9800998ecf8427e"},
        HashVector{"a", "0cc175b9c0f1b6a831c399e269772661"},
        HashVector{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        HashVector{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        HashVector{"abcdefghijklmnopqrstuvwxyz",
                   "c3fcd3d76192e4007dfb496cca67e13b"},
        HashVector{
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
            "d174ab98d277d9f5a5611c2c9f419d9f"},
        HashVector{"1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890",
                   "57edf4a22be3c955ac49da2e2107b67a"}));

// ---------------------------------------------------------------- SHA-1 KATs
// FIPS 180-4 / NIST CAVS examples.

class Sha1Kat : public ::testing::TestWithParam<HashVector> {};

TEST_P(Sha1Kat, MatchesReference) {
  const auto& [input, digest_hex] = GetParam();
  EXPECT_EQ(Sha1::hash(to_bytes(input)).hex(), digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha1Kat,
    ::testing::Values(
        HashVector{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
        HashVector{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
        HashVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "84983e441c3bd26ebaae4aa1f95129e5e54670f1"}));

TEST(Sha1, MillionA) {
  Sha1 sha;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    sha.update(chunk);
  }
  EXPECT_EQ(sha.finish().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

// -------------------------------------------------------------- SHA-256 KATs

class Sha256Kat : public ::testing::TestWithParam<HashVector> {};

TEST_P(Sha256Kat, MatchesReference) {
  const auto& [input, digest_hex] = GetParam();
  EXPECT_EQ(Sha256::hash(to_bytes(input)).hex(), digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha256Kat,
    ::testing::Values(
        HashVector{"",
                   "e3b0c44298fc1c149afbf4c8996fb924"
                   "27ae41e4649b934ca495991b7852b855"},
        HashVector{"abc",
                   "ba7816bf8f01cfea414140de5dae2223"
                   "b00361a396177a9cb410ff61f20015ad"},
        HashVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "248d6a61d20638b8e5c026930c3e6039"
                   "a33ce45964ff2167f6ecedd419db06c1"},
        HashVector{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                   "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                   "cf5b16a778af8380036ce59e7b049237"
                   "0b249b11e8f07a51afac45037afee9d1"}));

TEST(Sha256, MillionA) {
  Sha256 sha;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    sha.update(chunk);
  }
  EXPECT_EQ(sha.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// ------------------------------------------------- incremental == one-shot

class IncrementalChunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IncrementalChunking, Sha256MatchesOneShot) {
  const std::size_t chunk_size = GetParam();
  Bytes data(1537);  // deliberately not a multiple of the block size
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  Sha256 sha;
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size) {
    const std::size_t take = std::min(chunk_size, data.size() - offset);
    sha.update(BytesView(data.data() + offset, take));
  }
  EXPECT_EQ(sha.finish(), Sha256::hash(data));
}

TEST_P(IncrementalChunking, Md5MatchesOneShot) {
  const std::size_t chunk_size = GetParam();
  Bytes data(1537);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 17 + 3);
  }
  Md5 md5;
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size) {
    const std::size_t take = std::min(chunk_size, data.size() - offset);
    md5.update(BytesView(data.data() + offset, take));
  }
  EXPECT_EQ(md5.finish(), Md5::hash(data));
}

TEST_P(IncrementalChunking, Sha1MatchesOneShot) {
  const std::size_t chunk_size = GetParam();
  Bytes data(1537);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 13 + 11);
  }
  Sha1 sha;
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size) {
    const std::size_t take = std::min(chunk_size, data.size() - offset);
    sha.update(BytesView(data.data() + offset, take));
  }
  EXPECT_EQ(sha.finish(), Sha1::hash(data));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, IncrementalChunking,
                         ::testing::Values(1, 3, 63, 64, 65, 128, 1000, 4096));

// Boundary lengths around the padding edge (55/56/57, 63/64/65 bytes).
class PaddingBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaddingBoundary, IncrementalMatchesOneShotAtBoundary) {
  const std::size_t n = GetParam();
  Bytes data(n, 0x42);
  Sha256 sha;
  for (std::size_t i = 0; i < n; ++i) {
    sha.update(BytesView(data.data() + i, 1));
  }
  EXPECT_EQ(sha.finish(), Sha256::hash(data));
  Md5 md5;
  for (std::size_t i = 0; i < n; ++i) {
    md5.update(BytesView(data.data() + i, 1));
  }
  EXPECT_EQ(md5.finish(), Md5::hash(data));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, PaddingBoundary,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 121, 127, 128, 129));

TEST(Md5, ResetAllowsReuse) {
  Md5 md5;
  md5.update(to_bytes("garbage"));
  md5.reset();
  md5.update(to_bytes("abc"));
  EXPECT_EQ(md5.finish().hex(), "900150983cd24fb0d6963f7d28e17f72");
}

// ------------------------------------------------------------ HashFunction

TEST(HashFunctionFactory, ProducesAllAlgorithms) {
  EXPECT_EQ(make_hash(HashAlgorithm::kMd5)->digest_size(), 16u);
  EXPECT_EQ(make_hash(HashAlgorithm::kSha1)->digest_size(), 20u);
  EXPECT_EQ(make_hash(HashAlgorithm::kSha256)->digest_size(), 32u);
}

TEST(HashFunctionFactory, NamesRoundTrip) {
  for (auto algo :
       {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    const auto hash = make_hash(algo);
    EXPECT_EQ(parse_hash_algorithm(hash->name()), algo);
  }
  EXPECT_THROW(parse_hash_algorithm("sha512"), Error);
}

TEST(HashFunctionFactory, AgreesWithDirectImplementations) {
  const Bytes msg = to_bytes("the quick brown fox");
  EXPECT_EQ(make_hash(HashAlgorithm::kMd5)->hash(msg),
            Md5::hash(msg).to_bytes());
  EXPECT_EQ(make_hash(HashAlgorithm::kSha1)->hash(msg),
            Sha1::hash(msg).to_bytes());
  EXPECT_EQ(make_hash(HashAlgorithm::kSha256)->hash(msg),
            Sha256::hash(msg).to_bytes());
}

TEST(HashFunctionFactory, DefaultHashIsSha256) {
  EXPECT_EQ(default_hash().name(), "sha256");
  EXPECT_EQ(default_hash().digest_size(), 32u);
}

TEST(HashFunctionFactory, MeasureCostReturnsPositive) {
  EXPECT_GT(measure_hash_cost_ns(default_hash(), 64, 100), 0.0);
}

TEST(HashFunctionFactory, MeasureCostAgreesWithAllocatingPath) {
  // measure_hash_cost_ns now times the allocation-free hash_into chain; it
  // must stay within an order of magnitude of the legacy hash() loop it
  // replaced. Scheduler preemptions only ever inflate a wall-clock sample,
  // so each side takes the minimum of three runs — that keeps the
  // comparison stable on loaded CI runners.
  const auto& hash = default_hash();
  constexpr int kReps = 2000;
  double into_ns = std::numeric_limits<double>::infinity();
  double legacy_ns = std::numeric_limits<double>::infinity();
  for (int run = 0; run < 3; ++run) {
    into_ns = std::min(into_ns, measure_hash_cost_ns(hash, 64, kReps));

    Bytes digest = hash.hash(Bytes(64, 0xa5));
    Stopwatch timer;
    for (int i = 0; i < kReps; ++i) {
      digest = hash.hash(digest);
    }
    legacy_ns = std::min(
        legacy_ns, static_cast<double>(timer.elapsed_ns()) / kReps);
    volatile std::uint8_t sink = digest[0];
    (void)sink;
  }

  EXPECT_GT(into_ns, legacy_ns * 0.1);
  EXPECT_LT(into_ns, legacy_ns * 10.0);
}

// --------------------------------------------- zero-allocation entry points

class HashIntoSweep : public ::testing::TestWithParam<HashAlgorithm> {};

TEST_P(HashIntoSweep, HashIntoMatchesOneShot) {
  const auto hash = make_hash(GetParam());
  for (std::size_t size : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                           std::size_t{64}, std::size_t{65}, std::size_t{731}}) {
    Bytes data(size, 0x5a);
    Bytes out(hash->digest_size());
    hash->hash_into(data, out);
    EXPECT_EQ(out, hash->hash(data)) << "size " << size;
  }
}

TEST_P(HashIntoSweep, HashIntoSupportsInPlaceChaining) {
  // out may alias the input — the iterated-hash and cost-measurement chains
  // rely on it.
  const auto hash = make_hash(GetParam());
  Bytes buffer(hash->digest_size(), 0x17);
  const Bytes expected = hash->hash(buffer);
  hash->hash_into(buffer, buffer);
  EXPECT_EQ(buffer, expected);
}

TEST_P(HashIntoSweep, HashIntoRejectsWrongOutputSize) {
  const auto hash = make_hash(GetParam());
  Bytes small(hash->digest_size() - 1);
  EXPECT_THROW(hash->hash_into(to_bytes("x"), small), Error);
}

TEST_P(HashIntoSweep, HashPairMatchesConcatenatedOneShot) {
  const auto hash = make_hash(GetParam());
  const Bytes left = to_bytes("left-subtree-digest-material");
  const Bytes right = to_bytes("right-subtree-digest-material!");
  Bytes out(hash->digest_size());
  hash->hash_pair(left, right, out);
  EXPECT_EQ(out, hash->hash(concat_bytes(left, right)));
  // Asymmetric: swapped inputs give a different digest.
  Bytes swapped(hash->digest_size());
  hash->hash_pair(right, left, swapped);
  EXPECT_NE(out, swapped);
}

TEST_P(HashIntoSweep, ContextStreamingMatchesOneShot) {
  const auto hash = make_hash(GetParam());
  Bytes data(1537);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 29 + 5);
  }
  const auto context = hash->new_context();
  for (std::size_t offset = 0; offset < data.size(); offset += 97) {
    const std::size_t take = std::min<std::size_t>(97, data.size() - offset);
    context->update(BytesView(data.data() + offset, take));
  }
  Bytes streamed(hash->digest_size());
  context->finish(streamed);
  EXPECT_EQ(streamed, hash->hash(data));

  // reset() makes the context reusable.
  context->reset();
  context->update(to_bytes("abc"));
  Bytes again(hash->digest_size());
  context->finish(again);
  EXPECT_EQ(again, hash->hash(to_bytes("abc")));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, HashIntoSweep,
                         ::testing::Values(HashAlgorithm::kMd5,
                                           HashAlgorithm::kSha1,
                                           HashAlgorithm::kSha256));

TEST(HashInto, IteratedHashZeroAllocPathsMatchHash) {
  const auto g = make_iterated_hash(HashAlgorithm::kSha256, 9);
  const Bytes msg = to_bytes("iterated message");
  Bytes out(g->digest_size());
  g->hash_into(msg, out);
  EXPECT_EQ(out, g->hash(msg));

  const Bytes left = to_bytes("L");
  const Bytes right = to_bytes("R");
  Bytes paired(g->digest_size());
  g->hash_pair(left, right, paired);
  EXPECT_EQ(paired, g->hash(concat_bytes(left, right)));

  const auto context = g->new_context();
  context->update(to_bytes("iterated "));
  context->update(to_bytes("message"));
  Bytes streamed(g->digest_size());
  context->finish(streamed);
  EXPECT_EQ(streamed, g->hash(msg));
}

TEST(HashInto, PairX2MatchesTwoHashPairsForAllAlgorithmsAndShapes) {
  // Covers the fused SHA-NI two-stream path (32||32 digests), the one-block
  // leaf shape, mixed/odd sizes, and the default serial fallback of the
  // other algorithms — all must be bit-identical to two hash_pair calls.
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {32, 32}, {8, 8}, {32, 8}, {0, 32}, {64, 64}, {7, 121}};
  for (const auto algorithm :
       {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    const auto h = make_hash(algorithm);
    for (const auto& [left_size, right_size] : shapes) {
      const Bytes l0(left_size, 0x11), r0(right_size, 0x22);
      const Bytes l1(left_size, 0x33), r1(right_size, 0x44);
      Bytes a(h->digest_size()), b(h->digest_size());
      Bytes x(h->digest_size()), y(h->digest_size());
      h->hash_pair(l0, r0, a);
      h->hash_pair(l1, r1, b);
      h->hash_pair_x2(l0, r0, x, l1, r1, y);
      EXPECT_EQ(a, x) << h->name() << " " << left_size << "/" << right_size;
      EXPECT_EQ(b, y) << h->name() << " " << left_size << "/" << right_size;
    }
    // Mismatched shapes across the two streams.
    const Bytes l0(32, 0x55), r0(32, 0x66), l1(5, 0x77), r1(90, 0x88);
    Bytes a(h->digest_size()), b(h->digest_size());
    Bytes x(h->digest_size()), y(h->digest_size());
    h->hash_pair(l0, r0, a);
    h->hash_pair(l1, r1, b);
    h->hash_pair_x2(l0, r0, x, l1, r1, y);
    EXPECT_EQ(a, x) << h->name();
    EXPECT_EQ(b, y) << h->name();
  }
}

// ------------------------------------------------------------ IteratedHash

TEST(IteratedHash, OneIterationEqualsBase) {
  const auto g = make_iterated_hash(HashAlgorithm::kSha256, 1);
  const Bytes msg = to_bytes("sample");
  EXPECT_EQ(g->hash(msg), Sha256::hash(msg).to_bytes());
}

TEST(IteratedHash, TwoIterationsIsHashOfHash) {
  const auto g = make_iterated_hash(HashAlgorithm::kSha256, 2);
  const Bytes msg = to_bytes("sample");
  const Bytes once = Sha256::hash(msg).to_bytes();
  EXPECT_EQ(g->hash(msg), Sha256::hash(once).to_bytes());
}

TEST(IteratedHash, IterationCountComposes) {
  // H^6(x) == H^2 applied to H^4's digest chain: verify via direct chaining.
  const auto g6 = make_iterated_hash(HashAlgorithm::kMd5, 6);
  Bytes expected = to_bytes("x");
  for (int i = 0; i < 6; ++i) {
    expected = Md5::hash(expected).to_bytes();
  }
  EXPECT_EQ(g6->hash(to_bytes("x")), expected);
}

TEST(IteratedHash, NameEncodesIterations) {
  EXPECT_EQ(make_iterated_hash(HashAlgorithm::kMd5, 1024)->name(), "md5^1024");
}

TEST(IteratedHash, RejectsZeroIterations) {
  EXPECT_THROW(
      IteratedHash(std::shared_ptr<const HashFunction>(
                       make_hash(HashAlgorithm::kMd5)),
                   0),
      Error);
}

TEST(IteratedHash, RejectsNullBase) {
  EXPECT_THROW(IteratedHash(nullptr, 4), Error);
}

// ------------------------------------------------------------------- HMAC
// RFC 2202 (MD5/SHA-1) and RFC 4231 (SHA-256) vectors.

TEST(Hmac, Rfc2202Md5Case1) {
  const Bytes key(16, 0x0b);
  EXPECT_EQ(to_hex(hmac(*make_hash(HashAlgorithm::kMd5), key,
                        to_bytes("Hi There"))),
            "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(Hmac, Rfc2202Md5Case2) {
  EXPECT_EQ(to_hex(hmac(*make_hash(HashAlgorithm::kMd5), to_bytes("Jefe"),
                        to_bytes("what do ya want for nothing?"))),
            "750c783e6ab0b503eaa86e310a5db738");
}

TEST(Hmac, Rfc2202Sha1Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac(*make_hash(HashAlgorithm::kSha1), key,
                        to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(Hmac, Rfc4231Sha256Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b"
            "881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Sha256Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c7"
            "5a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f"
            "8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  const Bytes msg = to_bytes("message");
  EXPECT_NE(hmac_sha256(to_bytes("k1"), msg), hmac_sha256(to_bytes("k2"), msg));
}

}  // namespace
}  // namespace ugc
