#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/cbs.h"
#include "core/sequential.h"
#include "test_util.h"

namespace ugc {
namespace {

using ugc::testing::make_test_task;

// ------------------------------------------------------------------ Sprt

TEST(Sprt, ConfigValidation) {
  SprtConfig bad;
  bad.pass_prob_cheater = 1.0;  // must be < honest
  EXPECT_THROW(Sprt{bad}, Error);
  bad = {};
  bad.false_reject = 0.0;
  EXPECT_THROW(Sprt{bad}, Error);
  bad = {};
  bad.max_samples = 0;
  EXPECT_THROW(Sprt{bad}, Error);
}

TEST(Sprt, NoiseFreeFailureIsImmediatelyConclusive) {
  SprtConfig config;  // p0 = 1
  Sprt sprt(config);
  EXPECT_EQ(sprt.observe(false), SprtDecision::kReject);
  EXPECT_EQ(sprt.observations(), 1u);
}

TEST(Sprt, NoiseFreeAcceptMatchesFixedM) {
  // With p0 = 1, the SPRT accepts after exactly ceil(log β / log p1)
  // consecutive passes — the paper's Eq. 3 with ε = β.
  SprtConfig config;
  config.pass_prob_cheater = 0.5;
  config.false_accept = 1e-4;
  const std::size_t fixed_m = Sprt::fixed_m_equivalent(config);
  EXPECT_EQ(fixed_m, *required_sample_size(1e-4, 0.5, 0.0));

  Sprt sprt(config);
  for (std::size_t k = 1; k < fixed_m; ++k) {
    EXPECT_EQ(sprt.observe(true), SprtDecision::kContinue) << "k=" << k;
  }
  EXPECT_EQ(sprt.observe(true), SprtDecision::kAccept);
}

TEST(Sprt, ObserveAfterDecisionThrows) {
  SprtConfig config;
  Sprt sprt(config);
  sprt.observe(false);
  EXPECT_THROW(sprt.observe(true), Error);
}

TEST(Sprt, MaxSamplesResolvesToReject) {
  SprtConfig config;
  config.pass_prob_honest = 0.9;
  config.pass_prob_cheater = 0.8;  // hypotheses close: slow test
  config.max_samples = 5;
  Sprt sprt(config);
  SprtDecision d = SprtDecision::kContinue;
  for (int i = 0; i < 5 && d == SprtDecision::kContinue; ++i) {
    d = sprt.observe(i % 2 == 0);  // alternating: stays undecided
  }
  EXPECT_EQ(d, SprtDecision::kReject);
}

TEST(Sprt, ErrorRatesRespectWaldBounds) {
  // Noisy channel: honest passes 95%, a half-cheater ~47.5%.
  SprtConfig config;
  config.pass_prob_honest = 0.95;
  config.pass_prob_cheater = 0.475;
  config.false_reject = 0.01;
  config.false_accept = 0.01;

  const int kTrials = 2000;
  Rng rng(2024);
  int false_rejects = 0;
  int false_accepts = 0;
  for (int t = 0; t < kTrials; ++t) {
    {
      Sprt sprt(config);
      while (sprt.decision() == SprtDecision::kContinue) {
        sprt.observe(rng.bernoulli(config.pass_prob_honest));
      }
      if (sprt.decision() == SprtDecision::kReject) ++false_rejects;
    }
    {
      Sprt sprt(config);
      while (sprt.decision() == SprtDecision::kContinue) {
        sprt.observe(rng.bernoulli(config.pass_prob_cheater));
      }
      if (sprt.decision() == SprtDecision::kAccept) ++false_accepts;
    }
  }
  // Wald guarantees alpha + beta bounded (approximately, with slight
  // overshoot); allow 2x headroom for the discrete overshoot.
  EXPECT_LE(false_rejects, kTrials * 0.02);
  EXPECT_LE(false_accepts, kTrials * 0.02);
}

TEST(Sprt, ExpectedSampleFormulasArePositiveAndOrdered) {
  SprtConfig config;
  config.pass_prob_honest = 0.95;
  config.pass_prob_cheater = 0.5;
  const double honest = Sprt::expected_samples_honest(config);
  const double cheater = Sprt::expected_samples_cheater(config);
  EXPECT_GT(honest, 0.0);
  EXPECT_GT(cheater, 0.0);
  // Cheaters are caught faster than honesty is confirmed here.
  EXPECT_LT(cheater, honest);
}

TEST(Sprt, EmpiricalMeanMatchesWaldApproximation) {
  SprtConfig config;
  config.pass_prob_honest = 0.95;
  config.pass_prob_cheater = 0.5;
  config.false_reject = 1e-3;
  config.false_accept = 1e-3;

  Rng rng(7);
  double total = 0.0;
  const int kTrials = 1500;
  for (int t = 0; t < kTrials; ++t) {
    Sprt sprt(config);
    while (sprt.decision() == SprtDecision::kContinue) {
      sprt.observe(rng.bernoulli(config.pass_prob_cheater));
    }
    total += static_cast<double>(sprt.observations());
  }
  const double mean = total / kTrials;
  const double predicted = Sprt::expected_samples_cheater(config);
  EXPECT_NEAR(mean, predicted, predicted * 0.25);
}

// -------------------------------------------------- adaptive supervisor

// Drives a full adaptive exchange; `corrupt_every` > 0 flips a result byte
// in every k-th response (simulated channel noise).
SprtDecision run_adaptive(const Task& task, const SprtConfig& sprt,
                          std::shared_ptr<const HonestyPolicy> policy,
                          std::uint64_t seed, int corrupt_every = 0,
                          std::size_t* samples_used = nullptr) {
  CbsConfig participant_config;
  CbsParticipant participant(task, participant_config, std::move(policy));
  AdaptiveCbsSupervisor supervisor(
      task, TreeSettings{}, sprt,
      std::make_shared<RecomputeVerifier>(task.f), Rng(seed));
  supervisor.receive_commitment(participant.commit());

  int round = 0;
  while (auto challenge = supervisor.next_challenge()) {
    ProofResponse response = participant.respond(*challenge);
    ++round;
    if (corrupt_every > 0 && round % corrupt_every == 0) {
      response.proofs[0].result[0] ^= 0xff;
    }
    supervisor.submit(response);
  }
  if (samples_used != nullptr) {
    *samples_used = supervisor.samples_used();
  }
  return supervisor.decision();
}

TEST(AdaptiveCbs, HonestAcceptedWithFixedMEquivalentSamples) {
  const Task task = make_test_task(256);
  SprtConfig sprt;
  sprt.pass_prob_cheater = 0.5;
  sprt.false_accept = 1e-4;
  std::size_t used = 0;
  EXPECT_EQ(run_adaptive(task, sprt, make_honest_policy(), 1, 0, &used),
            SprtDecision::kAccept);
  EXPECT_EQ(used, Sprt::fixed_m_equivalent(sprt));
}

TEST(AdaptiveCbs, CheaterRejectedEarly) {
  const Task task = make_test_task(256);
  SprtConfig sprt;
  sprt.pass_prob_cheater = 0.5;
  std::size_t used = 0;
  EXPECT_EQ(run_adaptive(task, sprt,
                         make_semi_honest_cheater({0.3, 0.0, 5}), 2, 0,
                         &used),
            SprtDecision::kReject);
  // The first dishonest sample ends it: far fewer than fixed m.
  EXPECT_LT(used, Sprt::fixed_m_equivalent(sprt));
}

TEST(AdaptiveCbs, NoiseTolerantConfigSurvivesCorruption) {
  // 1-in-8 responses corrupted in transit. Zero-tolerance (p0 = 1) rejects
  // the honest participant; a noise-aware SPRT accepts it.
  const Task task = make_test_task(256);

  SprtConfig strict;  // p0 = 1
  strict.pass_prob_cheater = 0.5;
  EXPECT_EQ(run_adaptive(task, strict, make_honest_policy(), 3, 8),
            SprtDecision::kReject);

  SprtConfig tolerant;
  tolerant.pass_prob_honest = 0.85;
  tolerant.pass_prob_cheater = 0.45;
  EXPECT_EQ(run_adaptive(task, tolerant, make_honest_policy(), 3, 8),
            SprtDecision::kAccept);

  // And the tolerant test still rejects a real half-cheater.
  EXPECT_EQ(run_adaptive(task, tolerant,
                         make_semi_honest_cheater({0.5, 0.0, 9}), 4, 8),
            SprtDecision::kReject);
}

TEST(AdaptiveCbs, ApiMisuseThrows) {
  const Task task = make_test_task(16);
  AdaptiveCbsSupervisor supervisor(
      task, TreeSettings{}, SprtConfig{},
      std::make_shared<RecomputeVerifier>(task.f), Rng(1));
  EXPECT_THROW(supervisor.next_challenge(), Error);  // no commitment

  CbsParticipant participant(task, CbsConfig{}, make_honest_policy());
  supervisor.receive_commitment(participant.commit());
  EXPECT_THROW(supervisor.submit(ProofResponse{task.id, {}}), Error);

  auto challenge = supervisor.next_challenge();
  ASSERT_TRUE(challenge.has_value());
  EXPECT_THROW(supervisor.next_challenge(), Error);  // unanswered
}

// ----------------------------------------------------------- RollingSprt

TEST(RollingSprt, ZeroToleranceFailureIsImmediatelyConclusive) {
  RollingSprt sprt(SprtConfig{}, 4);  // p0 = 1: any failure is conclusive
  EXPECT_EQ(sprt.observe(true), SprtDecision::kContinue);
  EXPECT_EQ(sprt.observe(true), SprtDecision::kContinue);
  EXPECT_EQ(sprt.observe(false), SprtDecision::kReject);
  EXPECT_EQ(sprt.observations(), 3u);
  EXPECT_THROW(sprt.observe(true), Error);  // terminal, like the one-shot
}

TEST(RollingSprt, NeverIssuesAMidStreamAccept) {
  // However long the clean streak, the decision stays kContinue — a
  // mid-stream accept would let a sleeper bank a clean window and defect
  // after it. Acceptance is structural (all epochs verified), not here.
  RollingSprt sprt(SprtConfig{}, 2);
  for (int epoch = 0; epoch < 16; ++epoch) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(sprt.observe(true), SprtDecision::kContinue);
    }
    sprt.end_epoch();
  }
  EXPECT_EQ(sprt.decision(), SprtDecision::kContinue);
}

TEST(RollingSprt, WindowForgetsStaleEvidence) {
  // Noisy channel: a failure is evidence, not instantly conclusive.
  // llr_fail = log(0.5/0.1) ≈ 1.609, reject at log(0.999/0.001) ≈ 6.907 —
  // so 4 failures continue, a 5th within one window rejects.
  SprtConfig noisy;
  noisy.pass_prob_honest = 0.9;
  noisy.pass_prob_cheater = 0.5;
  noisy.false_reject = 1e-3;
  noisy.false_accept = 1e-3;

  RollingSprt fresh(noisy, 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fresh.observe(false), SprtDecision::kContinue);
  }
  EXPECT_EQ(fresh.observe(false), SprtDecision::kReject);

  // The same 8 failures spread across distant epochs never reject: a
  // 1-epoch window only ever scores the most recent conduct.
  RollingSprt rolling(noisy, 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rolling.observe(false), SprtDecision::kContinue);
  }
  rolling.end_epoch();
  rolling.end_epoch();  // quiet epoch: the 4 failures slide out
  EXPECT_NEAR(rolling.log_likelihood_ratio(), 0.0, 1e-12);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rolling.observe(false), SprtDecision::kContinue);
  }
  // ... while a cumulative Sprt over the identical stream is long decided.
  Sprt cumulative(noisy);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cumulative.observe(false), SprtDecision::kContinue);
  }
  EXPECT_EQ(cumulative.observe(false), SprtDecision::kReject);
}

TEST(RollingSprt, PassesOffsetFailuresInsideTheWindow) {
  SprtConfig noisy;
  noisy.pass_prob_honest = 0.9;
  noisy.pass_prob_cheater = 0.5;
  noisy.false_reject = 1e-3;
  noisy.false_accept = 1e-3;
  RollingSprt sprt(noisy, 4);
  // Alternate pass/fail: each pair nets ≈ 1.02 of evidence, so the mixed
  // stream takes far longer to condemn than a pure failure burst.
  int observations = 0;
  while (sprt.decision() == SprtDecision::kContinue && observations < 100) {
    sprt.observe(observations % 2 == 0);
    ++observations;
  }
  EXPECT_GT(observations, 10);
}

TEST(RollingSprt, RejectsDegenerateWindow) {
  EXPECT_THROW(RollingSprt(SprtConfig{}, 0), Error);
}

}  // namespace
}  // namespace ugc
