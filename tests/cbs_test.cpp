#include <gtest/gtest.h>

#include <memory>

#include "core/cbs.h"
#include "core/analysis.h"
#include "test_util.h"

namespace ugc {
namespace {

using ugc::testing::make_test_task;
using ugc::testing::ModScreener;
using ugc::testing::TestFunction;

std::shared_ptr<const ResultVerifier> verifier_for(const Task& task) {
  return std::make_shared<RecomputeVerifier>(task.f);
}

// ------------------------------------------------- honest path, full sweep

struct CbsCase {
  std::uint64_t n;
  std::size_t m;
  bool with_replacement;
  LeafMode leaf_mode;
  unsigned storage_height;
};

class CbsHonestSweep : public ::testing::TestWithParam<CbsCase> {};

TEST_P(CbsHonestSweep, HonestParticipantAccepted) {
  const auto [n, m, with_replacement, leaf_mode, ell] = GetParam();
  const Task task = make_test_task(n);
  CbsConfig config;
  config.sample_count = m;
  config.sample_with_replacement = with_replacement;
  config.tree.leaf_mode = leaf_mode;
  config.tree.storage_subtree_height = ell;

  const CbsRunResult result = run_cbs_exchange(
      task, config, make_honest_policy(), verifier_for(task), /*seed=*/42);

  EXPECT_TRUE(result.verdict.accepted()) << result.verdict.detail;
  EXPECT_EQ(result.verdict.status, VerdictStatus::kAccepted);
  EXPECT_EQ(result.participant_metrics.honest_evaluations, n);
  EXPECT_EQ(result.participant_metrics.guessed_leaves, 0u);
  EXPECT_EQ(result.supervisor_metrics.results_verified, m);
  EXPECT_EQ(result.supervisor_metrics.roots_reconstructed, m);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CbsHonestSweep,
    ::testing::Values(
        CbsCase{1, 1, true, LeafMode::kRaw, 0},
        CbsCase{2, 2, true, LeafMode::kRaw, 0},
        CbsCase{16, 8, true, LeafMode::kRaw, 0},
        CbsCase{33, 10, true, LeafMode::kRaw, 0},     // non-power-of-two
        CbsCase{64, 33, true, LeafMode::kRaw, 0},
        CbsCase{64, 16, false, LeafMode::kRaw, 0},    // without replacement
        CbsCase{64, 16, true, LeafMode::kHashed, 0},  // hashed leaves
        CbsCase{64, 8, true, LeafMode::kRaw, 2},      // §3.3 partial storage
        CbsCase{100, 8, true, LeafMode::kRaw, 3},
        CbsCase{257, 14, false, LeafMode::kHashed, 4},
        CbsCase{1024, 33, true, LeafMode::kRaw, 10}));  // ℓ = H

TEST(Cbs, ScreenerHitsCollected) {
  const Task task =
      make_test_task(50, 1, 16, std::make_shared<ModScreener>(10));
  CbsConfig config;
  config.sample_count = 5;
  const CbsRunResult result = run_cbs_exchange(
      task, config, make_honest_policy(), verifier_for(task), 1);
  // Domain is [1000, 1050): multiples of 10 are 1000, 1010, ..., 1040.
  ASSERT_EQ(result.report.hits.size(), 5u);
  EXPECT_EQ(result.report.hits[0].x, 1000u);
  EXPECT_EQ(result.report.hits[4].x, 1040u);
  EXPECT_EQ(result.report.hits[1].report, "hit:1010");
}

TEST(Cbs, PartialStorageRebuildCostIsMTimesTwoToEll) {
  const std::uint64_t n = 64;
  const unsigned ell = 2;
  const std::size_t m = 5;
  const Task task = make_test_task(n);
  CbsConfig config;
  config.sample_count = m;
  config.tree.storage_subtree_height = ell;

  const CbsRunResult result = run_cbs_exchange(
      task, config, make_honest_policy(), verifier_for(task), 7);
  EXPECT_TRUE(result.verdict.accepted());
  // Honest participant: every rebuilt subtree re-evaluates 2^ℓ leaves.
  EXPECT_EQ(result.participant_metrics.rebuild_evaluations,
            m * (std::uint64_t{1} << ell));
}

// --------------------------------------------------------- cheater caught

TEST(Cbs, CheaterWithJunkGuessesCaught) {
  const Task task = make_test_task(256);
  CbsConfig config;
  config.sample_count = 33;
  const CbsRunResult result = run_cbs_exchange(
      task, config, make_semi_honest_cheater({0.3, 0.0, 21}),
      verifier_for(task), 5);
  // Escape probability 0.3^33 ~ 5e-18: rejection is certain for this seed.
  EXPECT_FALSE(result.verdict.accepted());
  EXPECT_EQ(result.verdict.status, VerdictStatus::kWrongResult);
  ASSERT_TRUE(result.verdict.failed_sample.has_value());
}

TEST(Cbs, PerfectGuesserPassesAsTheoryPredicts) {
  // q = 1 means every "guess" is right: sampling cannot distinguish this
  // from honesty (Theorem 3 with base = 1).
  const Task task = make_test_task(128);
  CbsConfig config;
  config.sample_count = 33;
  const CbsRunResult result = run_cbs_exchange(
      task, config, make_semi_honest_cheater({0.0, 1.0, 23}),
      verifier_for(task), 9);
  EXPECT_TRUE(result.verdict.accepted());
  EXPECT_EQ(result.participant_metrics.honest_evaluations, 0u);
}

TEST(Cbs, LateComputedResultWithForeignTreeIsRootMismatch) {
  // Theorem 2's attack: the cheater committed junk for x, learns x is
  // sampled, computes the *correct* f(x) and sends it with its old path.
  const Task task = make_test_task(64);
  CbsConfig config;
  config.sample_count = 8;

  CbsParticipant cheater(task, config,
                         make_semi_honest_cheater({0.0, 0.0, 31}));
  CbsSupervisor supervisor(task, config, verifier_for(task), Rng(3));

  const SampleChallenge challenge = supervisor.challenge(cheater.commit());
  ProofResponse response = cheater.respond(challenge);
  // Swap every claimed result for the true value, keeping the old paths.
  for (SampleProof& proof : response.proofs) {
    proof.result = task.f->evaluate(task.domain.input(proof.index));
  }

  const Verdict verdict = supervisor.verify(response);
  EXPECT_FALSE(verdict.accepted());
  EXPECT_EQ(verdict.status, VerdictStatus::kRootMismatch);
}

TEST(Cbs, TamperedSiblingIsRootMismatch) {
  const Task task = make_test_task(64);
  CbsConfig config;
  config.sample_count = 4;
  CbsParticipant participant(task, config, make_honest_policy());
  CbsSupervisor supervisor(task, config, verifier_for(task), Rng(11));

  const SampleChallenge challenge = supervisor.challenge(participant.commit());
  ProofResponse response = participant.respond(challenge);
  response.proofs[2].siblings[1][0] ^= 0x01;

  const Verdict verdict = supervisor.verify(response);
  EXPECT_EQ(verdict.status, VerdictStatus::kRootMismatch);
  EXPECT_EQ(verdict.failed_sample, challenge.samples[2]);
}

// ----------------------------------------------------------- malformed

class CbsMalformed : public ::testing::Test {
 protected:
  CbsMalformed()
      : task_(make_test_task(64)),
        config_(),
        participant_(task_, config_, make_honest_policy()),
        supervisor_(task_, config_, verifier_for(task_), Rng(17)) {
    config_.sample_count = 6;
    challenge_ = supervisor_.challenge(participant_.commit());
    response_ = participant_.respond(challenge_);
  }

  Task task_;
  CbsConfig config_;
  CbsParticipant participant_;
  CbsSupervisor supervisor_;
  SampleChallenge challenge_;
  ProofResponse response_;
};

TEST_F(CbsMalformed, DroppedProofRejected) {
  response_.proofs.pop_back();
  EXPECT_EQ(supervisor_.verify(response_).status, VerdictStatus::kMalformed);
}

TEST_F(CbsMalformed, ReorderedProofsRejected) {
  ASSERT_GE(response_.proofs.size(), 2u);
  if (response_.proofs[0].index == response_.proofs[1].index) {
    GTEST_SKIP() << "challenge drew duplicate samples; reorder is a no-op";
  }
  std::swap(response_.proofs[0], response_.proofs[1]);
  EXPECT_EQ(supervisor_.verify(response_).status, VerdictStatus::kMalformed);
}

TEST_F(CbsMalformed, WrongResultSizeRejected) {
  response_.proofs[0].result.push_back(0x00);
  EXPECT_EQ(supervisor_.verify(response_).status, VerdictStatus::kMalformed);
}

TEST_F(CbsMalformed, WrongTaskIdRejected) {
  response_.task = TaskId{999};
  EXPECT_EQ(supervisor_.verify(response_).status, VerdictStatus::kMalformed);
}

TEST_F(CbsMalformed, TruncatedPathRejected) {
  response_.proofs[0].siblings.pop_back();
  EXPECT_EQ(supervisor_.verify(response_).status, VerdictStatus::kMalformed);
}

TEST_F(CbsMalformed, CommitmentWithWrongLeafCountRejected) {
  CbsSupervisor fresh(task_, config_, verifier_for(task_), Rng(19));
  Commitment commitment = participant_.commit();
  commitment.leaf_count = 63;
  fresh.challenge(commitment);
  const ProofResponse response =
      participant_.respond(SampleChallenge{task_.id, {}});
  EXPECT_EQ(fresh.verify(response).status, VerdictStatus::kMalformed);
}

// ----------------------------------------------------------- API misuse

TEST(CbsApi, ChallengeTwiceThrows) {
  const Task task = make_test_task(16);
  CbsConfig config;
  CbsParticipant participant(task, config, make_honest_policy());
  CbsSupervisor supervisor(task, config, verifier_for(task), Rng(1));
  const Commitment c = participant.commit();
  supervisor.challenge(c);
  EXPECT_THROW(supervisor.challenge(c), Error);
}

TEST(CbsApi, VerifyBeforeChallengeThrows) {
  const Task task = make_test_task(16);
  CbsConfig config;
  CbsSupervisor supervisor(task, config, verifier_for(task), Rng(1));
  EXPECT_THROW(supervisor.verify(ProofResponse{task.id, {}}), Error);
}

TEST(CbsApi, RespondBeforeCommitThrows) {
  const Task task = make_test_task(16);
  CbsConfig config;
  CbsParticipant participant(task, config, make_honest_policy());
  EXPECT_THROW(participant.respond(SampleChallenge{task.id, {LeafIndex{0}}}),
               Error);
}

TEST(CbsApi, RespondToForeignChallengeThrows) {
  const Task task = make_test_task(16);
  CbsConfig config;
  CbsParticipant participant(task, config, make_honest_policy());
  participant.commit();
  EXPECT_THROW(
      participant.respond(SampleChallenge{TaskId{99}, {LeafIndex{0}}}), Error);
}

TEST(CbsApi, CommitIsIdempotent) {
  const Task task = make_test_task(32);
  CbsConfig config;
  CbsParticipant participant(task, config, make_honest_policy());
  const Commitment first = participant.commit();
  const Commitment second = participant.commit();
  EXPECT_EQ(first, second);
  EXPECT_EQ(participant.metrics().honest_evaluations, 32u);  // one sweep only
}

TEST(CbsApi, ZeroSampleConfigRejected) {
  const Task task = make_test_task(16);
  CbsConfig config;
  config.sample_count = 0;
  EXPECT_THROW(CbsSupervisor(task, config, verifier_for(task), Rng(1)), Error);
}

TEST(CbsApi, SupervisorWithoutReplacementDrawsDistinctSamples) {
  const Task task = make_test_task(64);
  CbsConfig config;
  config.sample_count = 32;
  config.sample_with_replacement = false;
  CbsParticipant participant(task, config, make_honest_policy());
  CbsSupervisor supervisor(task, config, verifier_for(task), Rng(23));
  const SampleChallenge challenge =
      supervisor.challenge(participant.commit());
  std::set<std::uint64_t> seen;
  for (const LeafIndex s : challenge.samples) {
    EXPECT_TRUE(seen.insert(s.value).second);
  }
}

// --------------------------------------------- Theorem 3, empirically

TEST(CbsStatistics, DetectionRateMatchesTheorem3) {
  // r = 0.5, q = 0, m = 3: escape probability 0.125. Run many independent
  // exchanges and compare the acceptance rate (tolerant Monte-Carlo test;
  // bench_thm3_cheat_probability does the fine-grained version).
  const std::size_t kTrials = 400;
  const Task task = make_test_task(128);
  CbsConfig config;
  config.sample_count = 3;
  std::size_t accepted = 0;
  for (std::size_t t = 0; t < kTrials; ++t) {
    const CbsRunResult result = run_cbs_exchange(
        task, config, make_semi_honest_cheater({0.5, 0.0, 1000 + t}),
        verifier_for(task), 2000 + t);
    if (result.verdict.accepted()) ++accepted;
  }
  const double rate = static_cast<double>(accepted) / kTrials;
  const double predicted = cheat_success_probability(0.5, 0.0, 3);
  EXPECT_NEAR(rate, predicted, 0.06);
}

}  // namespace
}  // namespace ugc
