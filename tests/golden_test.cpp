// Golden-value regression tests for the commitment pipeline.
//
// Every constant below was captured from the pre-flat-storage, pre-SHA-NI,
// pre-hash_pair implementation (PR 1 tree). The digest pipeline rebuild must
// be a pure performance change: roots, proofs, batch sibling streams, HMAC
// and iterated-hash outputs all stay byte-identical. If one of these fails,
// the wire format drifted — that is a protocol break, not a perf tweak.

#include <gtest/gtest.h>

#include <vector>

#include "common/hex.h"
#include "core/engine.h"
#include "crypto/hash_function.h"
#include "crypto/hmac.h"
#include "crypto/iterated_hash.h"
#include "merkle/batch_proof.h"
#include "merkle/tree.h"

namespace ugc {
namespace {

// Deterministic 8-byte leaves: leaf_i = u64be(i * golden_ratio + 1).
std::vector<Bytes> make_leaves(std::uint64_t n) {
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes leaf(8);
    put_u64_be(i * 0x9e3779b97f4a7c15ULL + 1, leaf.data());
    leaves.push_back(std::move(leaf));
  }
  return leaves;
}

struct RootGolden {
  HashAlgorithm algo;
  std::uint64_t n;
  const char* root_hex;
};

class GoldenRoots : public ::testing::TestWithParam<RootGolden> {};

TEST_P(GoldenRoots, RootMatchesPrePipelineBuild) {
  const auto& [algo, n, root_hex] = GetParam();
  const auto hash = make_hash(algo);
  const MerkleTree tree = MerkleTree::build(make_leaves(n), *hash);
  EXPECT_EQ(to_hex(tree.root()), root_hex);
}

INSTANTIATE_TEST_SUITE_P(
    PrePipeline, GoldenRoots,
    ::testing::Values(
        RootGolden{HashAlgorithm::kMd5, 1, "0000000000000001"},
        RootGolden{HashAlgorithm::kMd5, 3, "eb1d7e6cbabb782ba2d7d42a0bfa20eb"},
        RootGolden{HashAlgorithm::kMd5, 7, "41055ff44195c84d9d6a3fc9c0007f4e"},
        RootGolden{HashAlgorithm::kMd5, 1023,
                   "a1ef8d29af2c882ac3aa4aa00df15d2c"},
        RootGolden{HashAlgorithm::kSha1, 1, "0000000000000001"},
        RootGolden{HashAlgorithm::kSha1, 3,
                   "f86e9657de4931ffb27ccd12fd7bc92b02699b69"},
        RootGolden{HashAlgorithm::kSha1, 7,
                   "a273eac91f7ea238012cf83db5e18cdd9361aec5"},
        RootGolden{HashAlgorithm::kSha1, 1023,
                   "fd6c8f3e183990cd20c21b75996f068cebb9e3c2"},
        RootGolden{HashAlgorithm::kSha256, 1, "0000000000000001"},
        RootGolden{HashAlgorithm::kSha256, 3,
                   "22cb40f88af2b650ad480242167e3bda"
                   "37d949a12bcdacf1e09e9484f9b15c6b"},
        RootGolden{HashAlgorithm::kSha256, 7,
                   "9e5da552701276fe29ffbf1fa4992351"
                   "d1a35ed395462c1d7de504875d59a26d"},
        RootGolden{HashAlgorithm::kSha256, 1023,
                   "8d7e91f342a316e1372f5e1dcb00055c"
                   "1ffa5ecc1a4bb731887152c45b44ccc7"}));

struct ProofGolden {
  HashAlgorithm algo;
  const char* leaf_hex;
  const char* siblings_digest_hex;  // hash over the concatenated path
};

class GoldenProofs : public ::testing::TestWithParam<ProofGolden> {};

TEST_P(GoldenProofs, ProofPathMatchesPrePipelineBuild) {
  const auto& [algo, leaf_hex, siblings_digest_hex] = GetParam();
  const auto hash = make_hash(algo);
  const MerkleTree tree = MerkleTree::build(make_leaves(1023), *hash);
  const MerkleProof proof = tree.prove(LeafIndex{517});
  EXPECT_EQ(to_hex(proof.leaf_value), leaf_hex);
  Bytes concatenated;
  for (const Bytes& sibling : proof.siblings) {
    append(concatenated, sibling);
  }
  EXPECT_EQ(to_hex(hash->hash(concatenated)), siblings_digest_hex);
  EXPECT_TRUE(verify_proof(proof, tree.root(), *hash));
}

INSTANTIATE_TEST_SUITE_P(
    PrePipeline, GoldenProofs,
    ::testing::Values(
        ProofGolden{HashAlgorithm::kMd5, "8608d39e116c966a",
                    "d5c2f2ed452d2a52b52648c67aaa02ca"},
        ProofGolden{HashAlgorithm::kSha1, "8608d39e116c966a",
                    "420aeeb3ccc3c740665fc8849920921994307ef5"},
        ProofGolden{HashAlgorithm::kSha256, "8608d39e116c966a",
                    "b0407594024eebc6cb693d99030654d2"
                    "9b0643c53de7296aaee2ffb9cf7d58af"}));

TEST(GoldenBatchProof, SiblingStreamMatchesPrePipelineBuild) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(1023), h);
  const std::vector<LeafIndex> indices = {LeafIndex{1}, LeafIndex{5},
                                          LeafIndex{517}, LeafIndex{518}};
  const BatchProof batch = make_batch_proof(tree, indices);
  EXPECT_EQ(batch.siblings.size(), 19u);
  EXPECT_EQ(batch.payload_bytes(), 584u);
  Bytes concatenated;
  for (const Bytes& sibling : batch.siblings) {
    append(concatenated, sibling);
  }
  EXPECT_EQ(to_hex(h.hash(concatenated)),
            "ec3cafbebe4df7c8f004e710c53c9924"
            "df6ad62a40ed69902a2ae8b91ad27cb3");
  EXPECT_TRUE(verify_batch_proof(batch, tree.root(), h));
}

TEST(GoldenHashedLeafMode, TreeOverHashedLeavesMatchesPrePipelineBuild) {
  const auto& h = default_hash();
  std::vector<Bytes> hashed;
  for (const Bytes& leaf : make_leaves(1023)) {
    hashed.push_back(h.hash(leaf));
  }
  const MerkleTree tree = MerkleTree::build(std::move(hashed), h);
  EXPECT_EQ(to_hex(tree.root()),
            "a7fe184ab95ebfe7426bcc1bb695e086"
            "cba117a75c31c8bfbf365075b6128a64");
}

TEST(GoldenIteratedHash, ChainMatchesPrePipelineImplementation) {
  EXPECT_EQ(to_hex(make_iterated_hash(HashAlgorithm::kSha256, 17)
                       ->hash(to_bytes("abc"))),
            "2c107ed3182fc46dc50a2b4c89b66b57"
            "d70dd7fd97fe457e611da219b35c85b6");
  EXPECT_EQ(
      to_hex(make_iterated_hash(HashAlgorithm::kMd5, 5)->hash(to_bytes("abc"))),
      "e2753218c2dfa2487b258c6868cc8cbe");
}

TEST(GoldenHmac, MacMatchesPrePipelineImplementation) {
  const Bytes key = to_bytes(
      "key-0123456789-key-0123456789-key-0123456789-key-0123456789-key!!");
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("the quick brown fox"))),
            "377fd8a7c9483b084a45bdf11ae22ba0"
            "d66678180305c6cf2cb3437e77f9d083");
}

}  // namespace
}  // namespace ugc
