// Satellite coverage for the flat-level Merkle storage: node(), prove(),
// and prove_batch()/make_batch_proof() must agree, byte for byte, with an
// independent vector<Bytes> reference build — the data layout the tree used
// before FlatNodes — for odd leaf counts and all three hash algorithms.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/bytes.h"
#include "crypto/hash_function.h"
#include "merkle/batch_proof.h"
#include "merkle/flat_nodes.h"
#include "merkle/tree.h"

namespace ugc {
namespace {

std::vector<Bytes> make_leaves(std::uint64_t n) {
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes leaf(8);
    put_u64_be(i * 0x9e3779b97f4a7c15ULL + 1, leaf.data());
    leaves.push_back(std::move(leaf));
  }
  return leaves;
}

// The pre-FlatNodes layout, rebuilt naively: one vector<Bytes> per level,
// interior nodes via hash(concat).
std::vector<std::vector<Bytes>> reference_levels(std::vector<Bytes> leaves,
                                                 const HashFunction& hash) {
  const std::uint64_t padded = next_power_of_two(leaves.size());
  leaves.resize(padded, padding_leaf(hash));
  std::vector<std::vector<Bytes>> levels;
  levels.push_back(std::move(leaves));
  while (levels.back().size() > 1) {
    const std::vector<Bytes>& below = levels.back();
    std::vector<Bytes> level;
    level.reserve(below.size() / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      level.push_back(hash.hash(concat_bytes(below[i], below[i + 1])));
    }
    levels.push_back(std::move(level));
  }
  return levels;
}

class FlatStorageSweep
    : public ::testing::TestWithParam<std::tuple<HashAlgorithm, std::uint64_t>> {
};

TEST_P(FlatStorageSweep, NodeAccessorsMatchReferenceBuild) {
  const auto [algo, n] = GetParam();
  const auto hash = make_hash(algo);
  const MerkleTree tree = MerkleTree::build(make_leaves(n), *hash);
  const auto reference = reference_levels(make_leaves(n), *hash);

  ASSERT_EQ(tree.height() + 1, reference.size());
  for (unsigned level = 0; level < reference.size(); ++level) {
    for (std::uint64_t pos = 0; pos < reference[level].size(); ++pos) {
      EXPECT_TRUE(equal_bytes(tree.node(level, pos), reference[level][pos]))
          << "level " << level << " position " << pos;
    }
  }
  EXPECT_EQ(tree.root(), reference.back().front());
}

TEST_P(FlatStorageSweep, ProofsMatchReferenceBuildAndVerify) {
  const auto [algo, n] = GetParam();
  const auto hash = make_hash(algo);
  const MerkleTree tree = MerkleTree::build(make_leaves(n), *hash);
  const auto reference = reference_levels(make_leaves(n), *hash);

  for (std::uint64_t i = 0; i < n; i += (n > 16 ? n / 13 : 1)) {
    const MerkleProof proof = tree.prove(LeafIndex{i});
    EXPECT_EQ(proof.leaf_value, reference.front()[i]);
    ASSERT_EQ(proof.siblings.size(), tree.height());
    std::uint64_t position = i;
    for (unsigned level = 0; level < tree.height(); ++level) {
      EXPECT_EQ(proof.siblings[level], reference[level][position ^ 1])
          << "leaf " << i << " level " << level;
      position >>= 1;
    }
    EXPECT_TRUE(verify_proof(proof, tree.root(), *hash));
  }
}

TEST_P(FlatStorageSweep, BatchProofRoundTripsAgainstRoot) {
  const auto [algo, n] = GetParam();
  const auto hash = make_hash(algo);
  const MerkleTree tree = MerkleTree::build(make_leaves(n), *hash);

  std::vector<LeafIndex> indices = {LeafIndex{0}, LeafIndex{n - 1},
                                    LeafIndex{n / 2}};
  const BatchProof batch = make_batch_proof(tree, indices);
  EXPECT_TRUE(verify_batch_proof(batch, tree.root(), *hash));
  EXPECT_EQ(compute_batch_root(batch, *hash), tree.root());
}

INSTANTIATE_TEST_SUITE_P(
    OddLeafCounts, FlatStorageSweep,
    ::testing::Combine(::testing::Values(HashAlgorithm::kMd5,
                                         HashAlgorithm::kSha1,
                                         HashAlgorithm::kSha256),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{3},
                                         std::uint64_t{1023})));

// Parallel and serial builds must commit identical bytes, including above
// the parallel threshold.
TEST(FlatStorage, ParallelBuildMatchesSerialAboveThreshold) {
  const auto& h = default_hash();
  const std::uint64_t n = 2 * kParallelBuildThreshold + 37;
  const MerkleTree serial = MerkleTree::build(make_leaves(n), h, 1);
  const MerkleTree parallel = MerkleTree::build(make_leaves(n), h, 4);
  EXPECT_EQ(serial.root(), parallel.root());
  for (unsigned level = 0; level <= serial.height(); ++level) {
    const std::uint64_t width = serial.padded_leaf_count() >> level;
    for (std::uint64_t pos = 0; pos < width; pos += 997) {
      ASSERT_TRUE(
          equal_bytes(serial.node(level, pos), parallel.node(level, pos)))
          << "level " << level << " position " << pos;
    }
  }
}

// FlatNodes itself: auto-promotion to variable stride keeps contents.
TEST(FlatNodes, PromotesToVariableStrideOnMismatch) {
  FlatNodes nodes;
  nodes.push_back(to_bytes("aaaa"));
  nodes.push_back(to_bytes("bbbb"));
  EXPECT_TRUE(nodes.is_fixed());
  nodes.push_back(to_bytes("cccccc"));
  EXPECT_FALSE(nodes.is_fixed());
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_TRUE(equal_bytes(nodes[0], to_bytes("aaaa")));
  EXPECT_TRUE(equal_bytes(nodes[1], to_bytes("bbbb")));
  EXPECT_TRUE(equal_bytes(nodes[2], to_bytes("cccccc")));
}

TEST(FlatNodes, SetReplacesNodesAcrossSizeChanges) {
  FlatNodes nodes;
  nodes.push_back(to_bytes("aaaa"));
  nodes.push_back(to_bytes("bbbb"));
  nodes.push_back(to_bytes("cccc"));
  nodes.set(1, to_bytes("XXXX"));  // same size, fixed mode
  EXPECT_TRUE(nodes.is_fixed());
  EXPECT_TRUE(equal_bytes(nodes[1], to_bytes("XXXX")));

  nodes.set(1, to_bytes("longer-node"));  // promotes and shifts the tail
  EXPECT_FALSE(nodes.is_fixed());
  EXPECT_TRUE(equal_bytes(nodes[0], to_bytes("aaaa")));
  EXPECT_TRUE(equal_bytes(nodes[1], to_bytes("longer-node")));
  EXPECT_TRUE(equal_bytes(nodes[2], to_bytes("cccc")));

  nodes.set(1, to_bytes("s"));  // shrink
  EXPECT_TRUE(equal_bytes(nodes[1], to_bytes("s")));
  EXPECT_TRUE(equal_bytes(nodes[2], to_bytes("cccc")));
}

TEST(FlatNodes, OutOfRangeAccessThrows) {
  FlatNodes nodes;
  nodes.push_back(to_bytes("aa"));
  EXPECT_THROW(nodes[1], Error);
  EXPECT_THROW(nodes.set(1, to_bytes("bb")), Error);
}

}  // namespace
}  // namespace ugc
