#pragma once

// Minimal property-based testing harness for the test suite: generators
// over a seeded Rng, greedy shrinking, and seed-on-failure reporting wired
// into gtest. No dependencies beyond the library's own Rng.
//
// Usage:
//
//   Property<MyCase> prop;
//   prop.name = "honest participants are never flagged";
//   prop.gen = [](Rng& rng) { return MyCase{...}; };
//   prop.shrink = [](const MyCase& c) { return std::vector<MyCase>{...}; };
//   prop.show = [](const MyCase& c) { return concat(...); };
//   prop_check(prop, [](const MyCase& c) -> Failure {
//     if (bad(c)) return concat("expected ..., got ...");
//     return {};
//   });
//
// Iteration count and seeding come from the environment:
//   PROP_ITERS  — cases per property (default 20; CI's nightly leg raises
//                 it). Controls runtime, not coverage shape.
//   PROP_SEED   — non-zero: the first case replays exactly this seed.
//                 Every failure report prints the case seed, so
//                 `PROP_SEED=0x... PROP_ITERS=1 ctest -R <test>` reproduces
//                 a falsified case standalone.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace ugc::proptest {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  return std::strtoull(raw, nullptr, 0);
}

struct Config {
  int iterations = static_cast<int>(env_u64("PROP_ITERS", 20));
  std::uint64_t seed = env_u64("PROP_SEED", 0);  // 0 = per-property default
  int max_shrink_steps = 256;
};

// nullopt = case passed; string = description of the violated expectation.
using Failure = std::optional<std::string>;

template <typename Case>
struct Property {
  std::string name;
  std::function<Case(Rng&)> gen;
  // Optional: smaller candidate cases (tried greedily, first failing one is
  // adopted and re-shrunk).
  std::function<std::vector<Case>(const Case&)> shrink;
  // Optional: printer for failure reports.
  std::function<std::string(const Case&)> show;
};

namespace detail {

inline std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  }
  return h;
}

inline std::string hex_seed(std::uint64_t seed) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%llx",
                static_cast<unsigned long long>(seed));
  return buffer;
}

}  // namespace detail

// Runs `fn` over `config.iterations` generated cases; on the first failure,
// shrinks greedily and reports the minimal case with its reproduction seed
// through ADD_FAILURE(). `fn` must be deterministic in the case value.
template <typename Case, typename CheckFn>
void prop_check(const Property<Case>& prop, CheckFn&& fn,
                Config config = Config{}) {
  ASSERT_TRUE(prop.gen) << "property '" << prop.name << "' has no generator";
  const std::uint64_t base =
      config.seed != 0 ? config.seed : detail::fnv1a(prop.name);

  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    // The first iteration under an explicit PROP_SEED replays that seed
    // verbatim — the contract that makes printed seeds reproducible.
    const std::uint64_t case_seed =
        (config.seed != 0 && iteration == 0)
            ? config.seed
            : detail::splitmix(base + static_cast<std::uint64_t>(iteration));
    Rng rng(case_seed);
    Case current = prop.gen(rng);
    Failure failure = fn(current);
    if (!failure.has_value()) {
      continue;
    }

    // Greedy shrink: repeatedly adopt the first failing candidate.
    int steps = 0;
    std::string current_failure = *failure;
    if (prop.shrink) {
      bool improved = true;
      while (improved && steps < config.max_shrink_steps) {
        improved = false;
        for (Case& candidate : prop.shrink(current)) {
          if (++steps > config.max_shrink_steps) {
            break;
          }
          if (Failure f = fn(candidate)) {
            current = std::move(candidate);
            current_failure = std::move(*f);
            improved = true;
            break;
          }
        }
      }
    }

    std::string report = concat(
        "property '", prop.name, "' falsified at iteration ", iteration,
        " (case seed ", detail::hex_seed(case_seed), ")\n  failure: ",
        current_failure);
    if (steps > 0) {
      report += concat("\n  after ", steps, " shrink steps");
    }
    if (prop.show) {
      report += concat("\n  case: ", prop.show(current));
    }
    report += concat("\n  rerun just this case: PROP_SEED=",
                     detail::hex_seed(case_seed), " PROP_ITERS=1");
    ADD_FAILURE() << report;
    return;
  }
}

// ------------------------------------------------------------- generators

// Uniform integer in [lo, hi] (inclusive).
inline std::uint64_t gen_range(Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  return lo + rng.uniform(hi - lo + 1);
}

// Uniform double in [0, limit).
inline double gen_unit(Rng& rng, double limit = 1.0) {
  return rng.unit_real() * limit;
}

template <typename T>
const T& gen_pick(Rng& rng, const std::vector<T>& options) {
  return options[rng.uniform(options.size())];
}

// ---------------------------------------------------------------- shrinks

// Halving candidates from `value` toward `floor` (classic integer shrink).
inline std::vector<std::uint64_t> shrink_towards(std::uint64_t value,
                                                 std::uint64_t floor) {
  std::vector<std::uint64_t> out;
  if (value <= floor) {
    return out;
  }
  out.push_back(floor);
  for (std::uint64_t delta = (value - floor) / 2; delta > 0; delta /= 2) {
    out.push_back(floor + delta);
  }
  return out;
}

// 0 and halving candidates for a probability-style double.
inline std::vector<double> shrink_unit(double value) {
  std::vector<double> out;
  if (value <= 0.0) {
    return out;
  }
  out.push_back(0.0);
  if (value > 0.01) {
    out.push_back(value / 2);
  }
  return out;
}

}  // namespace ugc::proptest
