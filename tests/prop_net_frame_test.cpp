// Property fuzz for the TCP framing layer (tests/prop.h harness; runs in
// the regular suite and under the ASan CI leg, nightly at PROP_ITERS=2000):
// random message batches are framed into one stream, then the stream is
// mangled the way a hostile or flaky network would — arbitrary recv()
// splits, truncation, bit flips — and fed through FrameDecoder +
// decode_message. The decoder must reproduce exactly the surviving frames,
// flag truncation, and never crash or leak on any input (ASan enforces the
// last part).

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/event_engine.h"
#include "net/frame.h"
#include "net/socket.h"
#include "prop.h"
#include "wire/codec.h"
#include "wire/messages.h"

namespace ugc {
namespace {

using net::FrameDecoder;
using net::FrameError;
using proptest::Failure;
using proptest::Property;
using proptest::prop_check;

Bytes gen_payload(Rng& rng) {
  // Real traffic (encoded messages) plus raw junk: framing must not care.
  if (rng.bernoulli(0.5)) {
    SampleChallenge m{TaskId{rng.uniform(1 << 16)}, {}};
    const std::uint64_t count = rng.uniform(8);
    for (std::uint64_t i = 0; i < count; ++i) {
      m.samples.push_back(LeafIndex{rng.uniform(1 << 20)});
    }
    return encode_message(Message{m});
  }
  Bytes junk(rng.uniform(64), 0);
  for (auto& byte : junk) {
    byte = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return junk;
}

struct StreamCase {
  std::vector<Bytes> payloads;
  Bytes stream;           // payloads framed back to back
  std::uint64_t seed = 0; // drives splits/mutations inside the property
};

Property<StreamCase> stream_property(const std::string& name) {
  Property<StreamCase> prop;
  prop.name = name;
  prop.gen = [](Rng& rng) {
    StreamCase c;
    const std::uint64_t count = rng.uniform(6);
    for (std::uint64_t i = 0; i < count; ++i) {
      c.payloads.push_back(gen_payload(rng));
      net::append_frame(c.payloads.back(), c.stream);
    }
    c.seed = rng.next();
    return c;
  };
  prop.show = [](const StreamCase& c) {
    return concat(c.payloads.size(), " frames, ", c.stream.size(),
                  " stream bytes, seed=0x", std::hex, c.seed);
  };
  prop.shrink = [](const StreamCase& c) {
    std::vector<StreamCase> smaller;
    if (!c.payloads.empty()) {
      StreamCase s;
      s.payloads.assign(c.payloads.begin(), c.payloads.end() - 1);
      for (const Bytes& payload : s.payloads) {
        net::append_frame(payload, s.stream);
      }
      s.seed = c.seed;
      smaller.push_back(std::move(s));
    }
    return smaller;
  };
  return prop;
}

// Feeds `stream` to a decoder in random chunks, collecting frames.
std::vector<Bytes> decode_stream(const Bytes& stream, Rng& rng,
                                 FrameDecoder& decoder) {
  std::vector<Bytes> frames;
  std::size_t cursor = 0;
  while (cursor < stream.size()) {
    const std::size_t chunk =
        1 + rng.uniform(std::min<std::size_t>(stream.size() - cursor, 17));
    decoder.feed(BytesView(stream).subspan(cursor, chunk));
    cursor += chunk;
    while (const auto frame = decoder.next()) {
      frames.emplace_back(frame->begin(), frame->end());
    }
  }
  return frames;
}

TEST(prop_net_frame, AnySplitReassemblesExactly) {
  prop_check(
      stream_property("framing is split-invariant"),
      [](const StreamCase& c) -> Failure {
        Rng rng(c.seed);
        FrameDecoder decoder;
        const std::vector<Bytes> frames = decode_stream(c.stream, rng, decoder);
        if (frames.size() != c.payloads.size()) {
          return concat("decoded ", frames.size(), " frames, expected ",
                        c.payloads.size());
        }
        for (std::size_t i = 0; i < frames.size(); ++i) {
          if (frames[i] != c.payloads[i]) {
            return concat("frame ", i, " mismatch");
          }
        }
        if (decoder.bytes_pending() != 0) {
          return concat(decoder.bytes_pending(),
                        " bytes pending after a complete stream");
        }
        return {};
      });
}

TEST(prop_net_frame, TruncationIsAlwaysDetected) {
  prop_check(
      stream_property("a truncated stream leaves pending bytes or fewer frames"),
      [](const StreamCase& c) -> Failure {
        if (c.stream.empty()) {
          return {};
        }
        Rng rng(c.seed);
        const std::size_t cut = rng.uniform(c.stream.size());
        const Bytes truncated(c.stream.begin(),
                              c.stream.begin() + static_cast<std::ptrdiff_t>(cut));
        FrameDecoder decoder;
        const std::vector<Bytes> frames =
            decode_stream(truncated, rng, decoder);
        // Whatever did come through must be a prefix of the original
        // frames, and the loss must be visible: fewer frames, or a
        // non-empty tail still pending.
        if (frames.size() > c.payloads.size()) {
          return concat("decoded ", frames.size(), " frames from a prefix");
        }
        for (std::size_t i = 0; i < frames.size(); ++i) {
          if (frames[i] != c.payloads[i]) {
            return concat("truncated frame ", i, " mismatch");
          }
        }
        // Exact byte accounting: every truncated-stream byte is either part
        // of a delivered frame or still pending — nothing is silently
        // swallowed.
        std::size_t delivered = 0;
        for (const Bytes& frame : frames) {
          delivered += net::kFrameHeaderSize + frame.size();
        }
        if (delivered + decoder.bytes_pending() != cut) {
          return concat("byte accounting: delivered ", delivered,
                        " + pending ", decoder.bytes_pending(), " != cut ",
                        cut);
        }
        return {};
      });
}

TEST(prop_net_frame, BitFlipsNeverCrashTheNetDecodePath) {
  prop_check(
      stream_property("mangled streams reject cleanly end to end"),
      [](const StreamCase& c) -> Failure {
        if (c.stream.empty()) {
          return {};
        }
        Rng rng(c.seed);
        Bytes mangled = c.stream;
        const std::uint64_t flips = 1 + rng.uniform(8);
        for (std::uint64_t i = 0; i < flips; ++i) {
          const std::uint64_t bit = rng.uniform(mangled.size() * 8);
          mangled[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
        // The exact pipeline a TcpTransport peer runs: chunked feed, frame
        // out, decode_message each frame. Flipped length fields may poison
        // the stream (FrameError — connection dropped) and flipped payloads
        // may fail decoding (WireError — frame dropped); anything else must
        // decode to *some* message. No other escape is acceptable.
        FrameDecoder decoder;
        std::size_t cursor = 0;
        try {
          while (cursor < mangled.size()) {
            const std::size_t chunk =
                1 + rng.uniform(std::min<std::size_t>(mangled.size() - cursor,
                                                      17));
            decoder.feed(BytesView(mangled).subspan(cursor, chunk));
            cursor += chunk;
            while (const auto frame = decoder.next()) {
              try {
                (void)decode_message(*frame);
              } catch (const WireError&) {
                // one frame lost; the stream lives on
              }
            }
          }
        } catch (const FrameError&) {
          return {};  // stream poisoned: the transport drops the peer
        }
        return {};
      });
}

// The same split-invariance property, run through a real kernel pipe
// serviced by each event-engine backend: random chunks go in the write
// end, a readiness-driven loop pulls whatever the engine reports readable
// and feeds the decoder. This is the exact byte path a TcpTransport loop
// runs, so both backends must reassemble every stream identically.
TEST(prop_net_frame, AnySplitReassemblesThroughEitherEngineBackend) {
  std::vector<net::EngineBackend> backends{net::EngineBackend::kPoll};
  if (net::epoll_supported()) {
    backends.push_back(net::EngineBackend::kEpoll);
  }
  for (const net::EngineBackend backend : backends) {
    prop_check(
        stream_property(concat("engine-driven reassembly (",
                               net::to_string(backend), ")")),
        [backend](const StreamCase& c) -> Failure {
          const auto engine = net::make_event_engine(backend);
          auto [read_end, write_end] = net::make_wake_pipe();
          engine->add(read_end.fd(), 1, net::Interest::kRead);

          Rng rng(c.seed);
          FrameDecoder decoder;
          std::vector<Bytes> frames;
          Bytes scratch(4096);
          std::vector<net::ReadyEvent> ready;
          std::size_t cursor = 0;
          for (;;) {
            if (cursor < c.stream.size()) {
              const std::size_t chunk =
                  1 + rng.uniform(
                          std::min<std::size_t>(c.stream.size() - cursor, 17));
              const ssize_t wrote = ::write(
                  write_end.fd(), c.stream.data() + cursor, chunk);
              if (wrote > 0) {
                cursor += static_cast<std::size_t>(wrote);
              }
            }
            engine->wait(0, ready);
            for (const net::ReadyEvent& event : ready) {
              if (!event.readable && !event.error) {
                continue;
              }
              // A pipe, not a socket: plain read(), not read_some()/recv().
              const ssize_t got =
                  ::read(read_end.fd(), scratch.data(), scratch.size());
              if (got <= 0) {
                continue;
              }
              decoder.feed(
                  BytesView(scratch.data(), static_cast<std::size_t>(got)));
              while (const auto frame = decoder.next()) {
                frames.emplace_back(frame->begin(), frame->end());
              }
            }
            if (cursor >= c.stream.size() && ready.empty()) {
              break;  // everything written and the pipe has gone quiet
            }
          }
          if (frames.size() != c.payloads.size()) {
            return concat(net::to_string(backend), ": decoded ",
                          frames.size(), " frames, expected ",
                          c.payloads.size());
          }
          for (std::size_t i = 0; i < frames.size(); ++i) {
            if (frames[i] != c.payloads[i]) {
              return concat(net::to_string(backend), ": frame ", i,
                            " mismatch");
            }
          }
          if (decoder.bytes_pending() != 0) {
            return concat(net::to_string(backend), ": ",
                          decoder.bytes_pending(),
                          " bytes pending after a complete stream");
          }
          return {};
        });
  }
}

}  // namespace
}  // namespace ugc
