#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/nicbs.h"
#include "core/retry_attacker.h"
#include "test_util.h"

namespace ugc {
namespace {

using ugc::testing::make_test_task;

std::shared_ptr<const ResultVerifier> verifier_for(const Task& task) {
  return std::make_shared<RecomputeVerifier>(task.f);
}

// ------------------------------------------------------------ honest path

struct NiCbsCase {
  std::uint64_t n;
  std::size_t m;
  std::uint64_t g_iterations;
  LeafMode leaf_mode;
  unsigned storage_height;
};

class NiCbsHonestSweep : public ::testing::TestWithParam<NiCbsCase> {};

TEST_P(NiCbsHonestSweep, HonestParticipantAccepted) {
  const auto [n, m, g_iter, leaf_mode, ell] = GetParam();
  const Task task = make_test_task(n);
  NiCbsConfig config;
  config.sample_count = m;
  config.sample_hash_iterations = g_iter;
  config.tree.leaf_mode = leaf_mode;
  config.tree.storage_subtree_height = ell;

  const NiCbsRunResult result = run_nicbs_exchange(
      task, config, make_honest_policy(), verifier_for(task));
  EXPECT_TRUE(result.verdict.accepted()) << result.verdict.detail;
  EXPECT_EQ(result.participant_metrics.honest_evaluations, n);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NiCbsHonestSweep,
    ::testing::Values(NiCbsCase{1, 4, 1, LeafMode::kRaw, 0},
                      NiCbsCase{16, 8, 1, LeafMode::kRaw, 0},
                      NiCbsCase{33, 16, 1, LeafMode::kRaw, 0},
                      NiCbsCase{64, 16, 4, LeafMode::kRaw, 0},  // slow g
                      NiCbsCase{64, 16, 1, LeafMode::kHashed, 0},
                      NiCbsCase{100, 8, 2, LeafMode::kRaw, 3},
                      NiCbsCase{256, 128, 1, LeafMode::kRaw, 0}));

TEST(NiCbs, ProofIsDeterministicAndIdempotent) {
  const Task task = make_test_task(64);
  NiCbsConfig config;
  config.sample_count = 16;

  NiCbsParticipant a(task, config, make_honest_policy());
  NiCbsParticipant b(task, config, make_honest_policy());
  const NiCbsProof pa = a.prove();
  const NiCbsProof pb = b.prove();
  EXPECT_EQ(pa.commitment, pb.commitment);
  EXPECT_EQ(pa.response, pb.response);

  // Idempotent: proving twice does not re-sweep the domain.
  a.prove();
  EXPECT_EQ(a.metrics().honest_evaluations, 64u);
}

TEST(NiCbs, SampleHashInvocationsAccounted) {
  const Task task = make_test_task(32);
  NiCbsConfig config;
  config.sample_count = 16;
  NiCbsParticipant participant(task, config, make_honest_policy());
  participant.prove();
  EXPECT_EQ(participant.sample_hash_invocations(), 16u);

  NiCbsSupervisor supervisor(task, config, verifier_for(task));
  supervisor.verify(participant.prove());
  EXPECT_EQ(supervisor.sample_hash_invocations(), 16u);
}

// ------------------------------------------------------------ cheat paths

TEST(NiCbs, JunkGuesserCaught) {
  const Task task = make_test_task(256);
  NiCbsConfig config;
  config.sample_count = 32;
  const NiCbsRunResult result = run_nicbs_exchange(
      task, config, make_semi_honest_cheater({0.3, 0.0, 7}),
      verifier_for(task));
  EXPECT_FALSE(result.verdict.accepted());
}

TEST(NiCbs, ForgedRootChangesDerivedSamples) {
  // Corrupting the commitment root after proving changes the re-derived
  // sample set, so the response indices no longer line up.
  const Task task = make_test_task(128);
  NiCbsConfig config;
  config.sample_count = 16;
  NiCbsParticipant participant(task, config, make_honest_policy());
  NiCbsProof proof = participant.prove();
  proof.commitment.root[0] ^= 0x01;

  NiCbsSupervisor supervisor(task, config, verifier_for(task));
  const Verdict verdict = supervisor.verify(proof);
  EXPECT_FALSE(verdict.accepted());
}

TEST(NiCbs, MismatchedSampleCountConfigRejects) {
  // Supervisor expecting a different m cannot be satisfied by the proof.
  const Task task = make_test_task(64);
  NiCbsConfig participant_config;
  participant_config.sample_count = 8;
  NiCbsParticipant participant(task, participant_config,
                               make_honest_policy());

  NiCbsConfig supervisor_config;
  supervisor_config.sample_count = 16;
  NiCbsSupervisor supervisor(task, supervisor_config, verifier_for(task));
  EXPECT_EQ(supervisor.verify(participant.prove()).status,
            VerdictStatus::kMalformed);
}

TEST(NiCbs, MismatchedGIterationsRejects) {
  // Different g ⇒ different derived samples ⇒ malformed.
  const Task task = make_test_task(64);
  NiCbsConfig pc;
  pc.sample_count = 8;
  pc.sample_hash_iterations = 1;
  NiCbsParticipant participant(task, pc, make_honest_policy());

  NiCbsConfig sc = pc;
  sc.sample_hash_iterations = 2;
  NiCbsSupervisor supervisor(task, sc, verifier_for(task));
  EXPECT_FALSE(supervisor.verify(participant.prove()).accepted());
}

// ------------------------------------------------------- §4.2 retry attack

TEST(RetryAttack, SucceedsAndForgedProofVerifies) {
  const Task task = make_test_task(256);
  NiCbsConfig config;
  config.sample_count = 4;  // deliberately weak: 1/r^m = ~4 attempts
  RetryAttackConfig attack;
  attack.honesty_ratio = 0.7;
  attack.seed = 3;
  attack.max_attempts = 1 << 16;

  NiCbsRetryAttacker attacker(task, config, attack);
  const RetryAttackOutcome outcome = attacker.run();
  ASSERT_TRUE(outcome.success);
  EXPECT_GE(outcome.attempts, 1u);
  EXPECT_LT(outcome.honest_evaluations, 256u);  // it really skipped work

  // The forged proof passes full supervisor verification: this is the
  // vulnerability the paper's defenses target.
  NiCbsSupervisor supervisor(task, config, verifier_for(task));
  const Verdict verdict = supervisor.verify(outcome.proof);
  EXPECT_TRUE(verdict.accepted()) << verdict.detail;
}

TEST(RetryAttack, FullyHonestAttackerSucceedsFirstTry) {
  const Task task = make_test_task(64);
  NiCbsConfig config;
  config.sample_count = 8;
  RetryAttackConfig attack;
  attack.honesty_ratio = 1.0;
  NiCbsRetryAttacker attacker(task, config, attack);
  const RetryAttackOutcome outcome = attacker.run();
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.honest_evaluations, 64u);
}

TEST(RetryAttack, ZeroHonestyRejectedAtConstruction) {
  const Task task = make_test_task(64);
  EXPECT_THROW(
      NiCbsRetryAttacker(task, NiCbsConfig{}, RetryAttackConfig{0.0, 1, 10, true}),
      Error);
}

TEST(RetryAttack, RespectsMaxAttempts) {
  // Large m with small r: astronomically many attempts needed; the attacker
  // must give up at the cap.
  const Task task = make_test_task(64);
  NiCbsConfig config;
  config.sample_count = 64;
  RetryAttackConfig attack;
  attack.honesty_ratio = 0.5;
  attack.seed = 5;
  attack.max_attempts = 50;
  NiCbsRetryAttacker attacker(task, config, attack);
  const RetryAttackOutcome outcome = attacker.run();
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.attempts, 50u);
}

TEST(RetryAttack, GAccountingEarlyExitVsFull) {
  const Task task = make_test_task(128);
  NiCbsConfig config;
  config.sample_count = 6;
  RetryAttackConfig attack;
  attack.honesty_ratio = 0.6;
  attack.seed = 11;
  attack.max_attempts = 1 << 16;

  attack.early_exit = true;
  const RetryAttackOutcome lazy = NiCbsRetryAttacker(task, config, attack).run();
  ASSERT_TRUE(lazy.success);
  EXPECT_LE(lazy.g_invocations, lazy.g_invocations_full);
  EXPECT_EQ(lazy.g_invocations_full, lazy.attempts * 6);

  attack.early_exit = false;
  const RetryAttackOutcome eager =
      NiCbsRetryAttacker(task, config, attack).run();
  ASSERT_TRUE(eager.success);
  EXPECT_EQ(eager.g_invocations, eager.attempts * 6);
}

TEST(RetryAttack, MeanAttemptsNearOneOverRToM) {
  // Statistical check of §4.2's 1/r^m expectation (coarse here; the bench
  // sweeps this properly).
  const double r = 0.5;
  const std::size_t m = 3;  // expected attempts = 8
  const Task task = make_test_task(128);
  NiCbsConfig config;
  config.sample_count = m;

  double total_attempts = 0;
  const int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    RetryAttackConfig attack;
    attack.honesty_ratio = r;
    attack.seed = 100 + static_cast<std::uint64_t>(t);
    attack.max_attempts = 1 << 18;
    const RetryAttackOutcome outcome =
        NiCbsRetryAttacker(task, config, attack).run();
    ASSERT_TRUE(outcome.success);
    total_attempts += static_cast<double>(outcome.attempts);
  }
  const double mean = total_attempts / kTrials;
  const double predicted = expected_retry_attempts(r, m);
  EXPECT_NEAR(mean, predicted, predicted * 0.35);
}

}  // namespace
}  // namespace ugc
