#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "common/hex.h"
#include "common/rng.h"
#include "common/types.h"

namespace ugc {
namespace {

TEST(Bytes, RoundTripThroughString) {
  const std::string text = "grid computing";
  const Bytes b = to_bytes(text);
  EXPECT_EQ(to_string(b), text);
}

TEST(Bytes, AppendConcatenates) {
  Bytes a = to_bytes("abc");
  append(a, to_bytes("def"));
  EXPECT_EQ(to_string(a), "abcdef");
}

TEST(Bytes, ConcatBytes) {
  EXPECT_EQ(to_string(concat_bytes(to_bytes("x"), to_bytes("yz"))), "xyz");
  EXPECT_EQ(to_string(concat_bytes(to_bytes(""), to_bytes(""))), "");
}

TEST(Bytes, EqualBytes) {
  EXPECT_TRUE(equal_bytes(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(equal_bytes(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(equal_bytes(to_bytes("abc"), to_bytes("ab")));
  EXPECT_TRUE(equal_bytes(to_bytes(""), to_bytes("")));
}

TEST(Bytes, U64BigEndianRoundTrip) {
  std::uint8_t buf[8];
  const std::uint64_t value = 0x0123456789abcdefULL;
  put_u64_be(value, buf);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
  EXPECT_EQ(read_u64_be(buf), value);
}

TEST(Bytes, U32BigEndianRoundTrip) {
  std::uint8_t buf[4];
  put_u32_be(0xdeadbeefu, buf);
  EXPECT_EQ(buf[0], 0xde);
  EXPECT_EQ(read_u32_be(buf), 0xdeadbeefu);
}

TEST(Hex, EncodesLowercase) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
}

TEST(Hex, DecodeRoundTrip) {
  const Bytes data = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

TEST(Hex, DecodeAcceptsUppercase) {
  EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), Error);
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), Error);
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(Error, ConcatBuildsMessage) {
  EXPECT_EQ(concat("a=", 1, ", b=", 2.5), "a=1, b=2.5");
}

TEST(Error, CheckThrowsWithMessage) {
  try {
    check(false, "bad thing ", 42);
    FAIL() << "check did not throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "bad thing 42");
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(check(true, "never"));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform(1), 0u);
  }
}

TEST(Rng, UniformRejectsZeroBound) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(0), Error);
}

TEST(Rng, UniformCoversSmallRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) {
    seen.insert(rng.uniform(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRoughlyBalanced) {
  Rng rng(13);
  constexpr int kDraws = 60000;
  constexpr std::uint64_t kBuckets = 6;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.10);
  }
}

TEST(Rng, UnitRealInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit_real();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesP) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, BytesProducesRequestedLength) {
  Rng rng(29);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 1000u}) {
    EXPECT_EQ(rng.bytes(n).size(), n);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent2(31);
  parent2.next();  // fork consumed one draw
  EXPECT_NE(child.next(), parent2.next());
}

TEST(StrongTypes, ComparisonsWork) {
  EXPECT_EQ(LeafIndex{3}, LeafIndex{3});
  EXPECT_LT(LeafIndex{2}, LeafIndex{5});
  EXPECT_NE(TaskId{1}, TaskId{2});
  EXPECT_EQ(GridNodeId{7}, GridNodeId{7});
}

TEST(StrongTypes, Hashable) {
  std::hash<LeafIndex> h;
  EXPECT_EQ(h(LeafIndex{5}), h(LeafIndex{5}));
}

}  // namespace
}  // namespace ugc
