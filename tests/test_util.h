#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "core/task.h"
#include "crypto/sha256.h"

namespace ugc::testing {

// Cheap deterministic compute function for protocol tests:
// f(x) = first `width` bytes of SHA256(LE64(x) || salt).
class TestFunction final : public ComputeFunction {
 public:
  explicit TestFunction(std::size_t width = 16, std::uint64_t salt = 0)
      : width_(width), salt_(salt) {}

  Bytes evaluate(std::uint64_t x) const override {
    Bytes input(16);
    for (int i = 0; i < 8; ++i) {
      input[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(x >> (8 * i));
      input[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(salt_ >> (8 * i));
    }
    const Bytes digest = Sha256::hash(input).to_bytes();
    return Bytes(digest.begin(),
                 digest.begin() + static_cast<std::ptrdiff_t>(width_));
  }

  std::size_t result_size() const override { return width_; }
  std::string name() const override { return "test-fn"; }

 private:
  std::size_t width_;
  std::uint64_t salt_;
};

// Screener that reports inputs divisible by `modulus`.
class ModScreener final : public Screener {
 public:
  explicit ModScreener(std::uint64_t modulus) : modulus_(modulus) {}

  std::optional<std::string> screen(std::uint64_t x,
                                    BytesView) const override {
    if (x % modulus_ == 0) {
      return "hit:" + std::to_string(x);
    }
    return std::nullopt;
  }
  std::string name() const override { return "mod-screener"; }

 private:
  std::uint64_t modulus_;
};

inline Task make_test_task(std::uint64_t n, std::uint64_t id = 1,
                           std::size_t width = 16,
                           std::shared_ptr<const Screener> screener = nullptr) {
  return Task::make(TaskId{id}, Domain(1000, 1000 + n),
                    std::make_shared<TestFunction>(width),
                    std::move(screener));
}

}  // namespace ugc::testing
