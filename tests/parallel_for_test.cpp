#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"

namespace ugc {
namespace {

TEST(ParallelFor, EmptyRangeInvokesNothing) {
  std::atomic<std::uint64_t> calls{0};
  parallel_for(5, 5, [&calls](std::uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0u);
  parallel_for(0, 0, [&calls](std::uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ParallelFor, BeginGreaterThanEndThrows) {
  EXPECT_THROW(parallel_for(3, 2, [](std::uint64_t) {}), Error);
  EXPECT_THROW(parallel_for_chunks(3, 2, [](std::uint64_t, std::uint64_t) {}),
               Error);
}

TEST(ParallelFor, NullCallableThrows) {
  EXPECT_THROW(parallel_for(0, 4, nullptr), Error);
  EXPECT_THROW(parallel_for_chunks(0, 4, nullptr), Error);
}

TEST(ParallelFor, RangeSmallerThanThreadCountCoversEveryIndexOnce) {
  // 3 indices, 16 requested workers: the worker count must clamp to the
  // range so no index is skipped or visited twice.
  std::vector<std::atomic<int>> visits(3);
  parallel_for(
      100, 103, [&visits](std::uint64_t i) { ++visits[i - 100]; }, 16);
  for (const auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelFor, SingleThreadMatchesSerialOrdering) {
  // threads = 1 must degrade to a plain loop on the calling thread: strictly
  // increasing order, no concurrency.
  std::vector<std::uint64_t> order;
  parallel_for(
      10, 20, [&order](std::uint64_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t k = 0; k < order.size(); ++k) {
    EXPECT_EQ(order[k], 10 + k);
  }
}

TEST(ParallelFor, EveryIndexVisitedExactlyOnceAcrossWorkers) {
  constexpr std::uint64_t kCount = 10000;
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for(
      0, kCount, [&visits](std::uint64_t i) { ++visits[i]; }, 4);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, WorkerExceptionPropagatesToCaller) {
  // A throwing body (ugc::Error is the library's error mechanism) must
  // surface as a catchable exception on the calling thread, not terminate.
  EXPECT_THROW(parallel_for(
                   0, 10000,
                   [](std::uint64_t i) {
                     if (i == 7777) {
                       throw Error("boom");
                     }
                   },
                   4),
               Error);
  // The serial (threads=1) path rethrows directly too.
  EXPECT_THROW(parallel_for_chunks(
                   0, 10,
                   [](std::uint64_t, std::uint64_t) { throw Error("boom"); },
                   1),
               Error);
}

TEST(ParallelForChunks, ChunksPartitionTheRange) {
  // Chunks must be contiguous, disjoint, in-range, and cover everything.
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks;
  parallel_for_chunks(
      7, 1007,
      [&](std::uint64_t lo, std::uint64_t hi) {
        std::lock_guard<std::mutex> lock(mutex);
        chunks.emplace_back(lo, hi);
      },
      4);
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 7u);
  EXPECT_EQ(chunks.back().second, 1007u);
  for (std::size_t k = 0; k + 1 < chunks.size(); ++k) {
    EXPECT_EQ(chunks[k].second, chunks[k + 1].first);
    EXPECT_LT(chunks[k].first, chunks[k].second);
  }
}

TEST(ParallelForChunks, SingleThreadRunsOneChunkOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  parallel_for_chunks(
      0, 100,
      [&](std::uint64_t lo, std::uint64_t hi) {
        ++calls;
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 100u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
      },
      1);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ugc
