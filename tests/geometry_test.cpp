#include <gtest/gtest.h>

#include "common/error.h"
#include "merkle/geometry.h"

namespace ugc {
namespace {

TEST(Geometry, NextPowerOfTwoExactPowers) {
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(4), 4u);
  EXPECT_EQ(next_power_of_two(std::uint64_t{1} << 40), std::uint64_t{1} << 40);
}

TEST(Geometry, NextPowerOfTwoRoundsUp) {
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(1000), 1024u);
  EXPECT_EQ(next_power_of_two((std::uint64_t{1} << 40) + 1),
            std::uint64_t{1} << 41);
}

TEST(Geometry, NextPowerOfTwoRejectsZeroAndOverflow) {
  EXPECT_THROW(next_power_of_two(0), Error);
  EXPECT_THROW(next_power_of_two((std::uint64_t{1} << 62) + 1), Error);
}

TEST(Geometry, TreeHeightCountsLevelsAboveLeaves) {
  EXPECT_EQ(tree_height(1), 0u);
  EXPECT_EQ(tree_height(2), 1u);
  EXPECT_EQ(tree_height(3), 2u);
  EXPECT_EQ(tree_height(4), 2u);
  EXPECT_EQ(tree_height(5), 3u);
  EXPECT_EQ(tree_height(1023), 10u);
  EXPECT_EQ(tree_height(1024), 10u);
  EXPECT_EQ(tree_height(1025), 11u);
}

TEST(Geometry, HeightMatchesPaddedSize) {
  for (std::uint64_t n = 1; n < 300; ++n) {
    EXPECT_EQ(std::uint64_t{1} << tree_height(n), next_power_of_two(n))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace ugc
