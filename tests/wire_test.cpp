#include <gtest/gtest.h>

#include <limits>

#include "common/hex.h"
#include "common/rng.h"
#include "grid/transport.h"
#include "wire/codec.h"
#include "wire/messages.h"

namespace ugc {
namespace {

// ---------------------------------------------------------------- codec

TEST(Codec, FixedWidthRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  WireReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  WireWriter w;
  w.varint(GetParam());
  WireReader r(w.buffer());
  EXPECT_EQ(r.varint(), GetParam());
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    EdgeValues, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, (1ULL << 56) + 123,
                      std::numeric_limits<std::uint64_t>::max()));

TEST(Codec, VarintUsesMinimalBytesForSmallValues) {
  WireWriter w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  w.varint(200);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(Codec, F64RoundTrip) {
  for (double v : {0.0, 1.0, -1.5, 3.14159265358979, 1e-300, 1e300}) {
    WireWriter w;
    w.f64(v);
    WireReader r(w.buffer());
    EXPECT_EQ(r.f64(), v);
  }
}

TEST(Codec, BytesAndStringsRoundTrip) {
  WireWriter w;
  w.bytes(to_bytes("hello"));
  w.str("world");
  w.bytes(Bytes{});
  WireReader r(w.buffer());
  EXPECT_EQ(to_string(r.bytes()), "hello");
  EXPECT_EQ(r.str(), "world");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Codec, RawAppendsWithoutPrefix) {
  WireWriter w;
  w.raw(to_bytes("abc"));
  EXPECT_EQ(w.size(), 3u);
}

TEST(Codec, TruncationThrows) {
  WireWriter w;
  w.u32(42);
  {
    WireReader r(w.buffer());
    EXPECT_THROW(r.u64(), WireError);
  }
  {
    WireReader r(BytesView{});
    EXPECT_THROW(r.u8(), WireError);
    EXPECT_THROW(r.varint(), WireError);
  }
}

TEST(Codec, LengthPrefixBeyondRemainingThrows) {
  WireWriter w;
  w.varint(1000);  // claims 1000 bytes follow
  w.raw(to_bytes("short"));
  WireReader r(w.buffer());
  EXPECT_THROW(r.bytes(), WireError);
}

TEST(Codec, VarintOverflowThrows) {
  const Bytes too_long(11, 0xff);
  WireReader r(too_long);
  EXPECT_THROW(r.varint(), WireError);
}

TEST(Codec, ExpectDoneCatchesTrailingGarbage) {
  WireWriter w;
  w.u8(1);
  w.u8(2);
  WireReader r(w.buffer());
  r.u8();
  EXPECT_THROW(r.expect_done(), WireError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

// ------------------------------------------------------------- messages

Commitment sample_commitment() {
  return Commitment{TaskId{7}, 1024, to_bytes("a-32-byte-root-commitment!!!")};
}

ProofResponse sample_response() {
  ProofResponse response;
  response.task = TaskId{7};
  for (std::uint64_t i = 0; i < 3; ++i) {
    SampleProof proof;
    proof.index = LeafIndex{i * 100};
    proof.result = to_bytes("result-" + std::to_string(i));
    proof.siblings = {to_bytes("sib0"), to_bytes("sibling-one"), Bytes{}};
    response.proofs.push_back(std::move(proof));
  }
  return response;
}

BatchProofResponse sample_batch_response() {
  BatchProofResponse m;
  m.task = TaskId{11};
  m.results = {{LeafIndex{0}, to_bytes("r0")},
               {LeafIndex{7}, to_bytes("r7")},
               {LeafIndex{1ULL << 33}, Bytes{}}};
  m.siblings = {to_bytes("sib-a"), Bytes{}, to_bytes("sibling-b")};
  return m;
}

TaskAssignment sample_assignment() {
  TaskAssignment m;
  m.task = TaskId{3};
  m.domain_begin = 1'000'000;
  m.domain_end = 2'000'000;
  m.workload = "keysearch";
  m.workload_seed = 99;
  m.scheme.kind = SchemeKind::kNiCbs;
  m.scheme.name = "my-custom-scheme";
  m.scheme.cbs.use_sprt = true;
  m.scheme.cbs.sprt.pass_prob_honest = 0.999;
  m.scheme.cbs.sprt.pass_prob_cheater = 0.25;
  m.scheme.cbs.sprt.false_reject = 1e-6;
  m.scheme.cbs.sprt.false_accept = 1e-3;
  m.scheme.cbs.sprt.max_samples = 4242;
  m.scheme.nicbs.sample_count = 64;
  m.scheme.nicbs.sample_hash = HashAlgorithm::kSha1;
  m.scheme.nicbs.sample_hash_iterations = 4096;
  m.scheme.nicbs.tree.tree_hash = HashAlgorithm::kMd5;
  m.scheme.nicbs.tree.leaf_mode = LeafMode::kHashed;
  m.scheme.nicbs.tree.storage_subtree_height = 8;
  m.scheme.cbs.sample_count = 17;
  m.scheme.cbs.sample_with_replacement = false;
  m.scheme.naive.sample_count = 5;
  m.scheme.double_check.replicas = 3;
  m.scheme.ringer = RingerConfig{21, 1234};
  m.ringer_images = {to_bytes("img-a"), to_bytes("img-b")};
  return m;
}

template <typename T>
void expect_round_trip(const T& original) {
  const Bytes encoded = encode_message(Message{original});
  const Message decoded = decode_message(encoded);
  ASSERT_TRUE(std::holds_alternative<T>(decoded));
  EXPECT_EQ(std::get<T>(decoded), original);
}

TEST(Messages, TaskAssignmentRoundTrip) { expect_round_trip(sample_assignment()); }

TEST(Messages, CommitmentRoundTrip) { expect_round_trip(sample_commitment()); }

TEST(Messages, SampleChallengeRoundTrip) {
  expect_round_trip(SampleChallenge{
      TaskId{7}, {LeafIndex{0}, LeafIndex{12345}, LeafIndex{1ULL << 40}}});
}

TEST(Messages, ProofResponseRoundTrip) { expect_round_trip(sample_response()); }

TEST(Messages, NiCbsProofRoundTrip) {
  expect_round_trip(NiCbsProof{sample_commitment(), sample_response()});
}

TEST(Messages, ResultsUploadRoundTrip) {
  expect_round_trip(ResultsUpload{
      TaskId{2}, {to_bytes("r0"), to_bytes("r1"), Bytes{}, to_bytes("r3")}});
}

TEST(Messages, ScreenerReportRoundTrip) {
  expect_round_trip(ScreenerReport{
      TaskId{2},
      {ScreenerHit{5, "signal at 5"}, ScreenerHit{700, "hit"}}});
}

TEST(Messages, RingerReportRoundTrip) {
  expect_round_trip(RingerReport{TaskId{4}, {1, 2, 3, 1ULL << 60}});
}

TEST(Messages, BatchProofResponseRoundTrip) {
  expect_round_trip(sample_batch_response());
  expect_round_trip(BatchProofResponse{TaskId{1}, {}, {}});
}

TEST(Messages, VerdictRoundTripAllStatuses) {
  for (auto status :
       {VerdictStatus::kAccepted, VerdictStatus::kWrongResult,
        VerdictStatus::kRootMismatch, VerdictStatus::kMalformed,
        VerdictStatus::kAborted}) {
    Verdict v;
    v.task = TaskId{9};
    v.status = status;
    v.detail = "details here";
    expect_round_trip(v);
  }
  Verdict with_sample;
  with_sample.task = TaskId{9};
  with_sample.status = VerdictStatus::kWrongResult;
  with_sample.failed_sample = LeafIndex{77};
  expect_round_trip(with_sample);
}

TEST(Messages, HelloRoundTrip) {
  expect_round_trip(Hello{kGridProtocol, "gridworker"});
  expect_round_trip(Hello{0xffff, ""});
}

TEST(Messages, HelloIsNotASchemeMessage) {
  EXPECT_FALSE(to_scheme_message(Message{Hello{kGridProtocol, "w"}})
                   .has_value());
  EXPECT_EQ(task_of(Message{Hello{kGridProtocol, "w"}}), TaskId{0});
}

TEST(Messages, HelloChallengeRoundTrip) {
  expect_round_trip(HelloChallenge{kGridProtocol, Bytes(32, 0xa5)});
  expect_round_trip(HelloChallenge{0xffff, {}});
}

TEST(Messages, HelloProofRoundTrip) {
  expect_round_trip(
      HelloProof{kGridProtocol, "gridworker", Bytes(32, 0x11), Bytes(32, 0x22)});
  expect_round_trip(HelloProof{0, "", {}, {}});
}

TEST(Messages, HandshakeMessagesAreNotSchemeMessages) {
  const Message challenge{HelloChallenge{kGridProtocol, Bytes(32, 1)}};
  const Message proof{HelloProof{kGridProtocol, "w", Bytes(32, 2), Bytes(32, 3)}};
  EXPECT_FALSE(to_scheme_message(challenge).has_value());
  EXPECT_FALSE(to_scheme_message(proof).has_value());
  EXPECT_EQ(task_of(challenge), TaskId{0});
  EXPECT_EQ(task_of(proof), TaskId{0});
}

TEST(Messages, EmptyCollectionsRoundTrip) {
  expect_round_trip(SampleChallenge{TaskId{1}, {}});
  expect_round_trip(ProofResponse{TaskId{1}, {}});
  expect_round_trip(ScreenerReport{TaskId{1}, {}});
  expect_round_trip(ResultsUpload{TaskId{1}, {}});
  expect_round_trip(RingerReport{TaskId{1}, {}});
}

// ------------------------------------------------------- epoch messages

TEST(Messages, EpochMessagesRoundTrip) {
  expect_round_trip(EpochCommitment{TaskId{7}, 3, 8, sample_commitment()});
  expect_round_trip(EpochCommitment{TaskId{7}, 0, 1, Commitment{}});
  expect_round_trip(EpochChallenge{
      TaskId{7}, 3, {LeafIndex{0}, LeafIndex{12345}, LeafIndex{1ULL << 40}}});
  expect_round_trip(EpochChallenge{TaskId{7}, 0, {}});
  expect_round_trip(EpochProofResponse{TaskId{7}, 3, sample_response()});
  expect_round_trip(EpochProofResponse{TaskId{7}, 0, ProofResponse{}});
  expect_round_trip(EpochAck{TaskId{7}, 1ULL << 50});
  expect_round_trip(EpochResume{TaskId{7}, 1ULL << 50});
}

TEST(Messages, AssignmentPipelineSectionRoundTrips) {
  // Non-default pipeline parameters survive the trailing optional section…
  TaskAssignment with_pipeline = sample_assignment();
  with_pipeline.scheme.pipeline.epochs = 16;
  with_pipeline.scheme.pipeline.samples_per_epoch = 3;
  with_pipeline.scheme.pipeline.max_inflight = 2;
  with_pipeline.scheme.pipeline.window_epochs = 5;
  expect_round_trip(with_pipeline);
  // …and a default pipeline encodes exactly like the pre-epoch format, so
  // old decoders (and the golden bytes) are unaffected.
  ASSERT_EQ(sample_assignment().scheme.pipeline, PipelineConfig{});
  Bytes legacy = encode_message(Message{sample_assignment()});
  Bytes pipelined = encode_message(Message{with_pipeline});
  EXPECT_GT(pipelined.size(), legacy.size());
}

TEST(Messages, EpochResumeIsGridOnly) {
  // EpochResume re-enters through the node (it precedes a re-sent
  // assignment); sessions never see it.
  const Message resume{EpochResume{TaskId{5}, 2}};
  EXPECT_EQ(to_scheme_message(resume), std::nullopt);
  EXPECT_EQ(task_of(resume), TaskId{5});
  EXPECT_THROW(decode_scheme_message(encode_message(resume)), WireError);
}

TEST(Messages, TruncatedEpochMessagesThrowCleanly) {
  for (const Message message :
       {Message{EpochCommitment{TaskId{7}, 3, 8, sample_commitment()}},
        Message{EpochChallenge{TaskId{7}, 3, {LeafIndex{1}, LeafIndex{9}}}},
        Message{EpochProofResponse{TaskId{7}, 3, sample_response()}},
        Message{EpochAck{TaskId{7}, 3}},
        Message{EpochResume{TaskId{7}, 3}}}) {
    const Bytes encoded = encode_message(message);
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{1}, encoded.size() / 2,
          encoded.size() - 1}) {
      Bytes truncated(encoded.begin(),
                      encoded.begin() + static_cast<std::ptrdiff_t>(keep));
      EXPECT_THROW(decode_message(truncated), WireError);
    }
  }
}

// ------------------------------------------------------------ golden bytes

// Pinned wire-v2 encodings, captured before the epoch message types landed.
// A mismatch here means a change broke compatibility with deployed peers —
// wire changes must be additive (new message types or trailing sections).
TEST(Messages, GoldenPreEpochEncodingsAreByteStable) {
  const std::pair<Message, const char*> golden[] = {
      {Message{sample_assignment()},
       "010200030000000000000040420f000000000080841e00000000000"
       "96b6579736561726368630000000000000003106d792d637573746f"
       "6d2d736368656d650305020000000000110000012b8716d9cef7ef3"
       "f000000000000d03f8dedb5a0f7c6b03efca9f1d24d62503f922100"
       "01080000004001802015d2040000000000000205696d672d6105696"
       "d672d62"},
      {Message{sample_commitment()},
       "020200070000000000000080081c612d33322d627974652d726f6f7"
       "42d636f6d6d69746d656e74212121"},
      {Message{SampleChallenge{TaskId{7}, {LeafIndex{0}, LeafIndex{12345}}}},
       "03020007000000000000000200b960"},
      {Message{sample_response()},
       "0402000700000000000000030008726573756c742d3003047369623"
       "00b7369626c696e672d6f6e65006408726573756c742d3103047369"
       "62300b7369626c696e672d6f6e6500c80108726573756c742d32030"
       "4736962300b7369626c696e672d6f6e6500"},
      {Message{NiCbsProof{sample_commitment(), sample_response()}},
       "050200070000000000000080081c612d33322d627974652d726f6f7"
       "42d636f6d6d69746d656e74212121070000000000000003000872657"
       "3756c742d300304736962300b7369626c696e672d6f6e6500640872"
       "6573756c742d310304736962300b7369626c696e672d6f6e6500c80"
       "108726573756c742d320304736962300b7369626c696e672d6f6e65"
       "00"},
      {Message{ResultsUpload{TaskId{2}, {to_bytes("r0"), to_bytes("r1")}}},
       "060200020000000000000002027230027231"},
      {Message{ScreenerReport{TaskId{2},
                              {ScreenerHit{5, "signal at 5"},
                               ScreenerHit{700, "hit"}}}},
       "07020002000000000000000205000000000000000b7369676e616c2"
       "061742035bc0200000000000003686974"},
      {Message{RingerReport{TaskId{4}, {1, 2, 3}}},
       "0802000400000000000000030100000000000000020000000000000"
       "00300000000000000"},
      {Message{BatchProofResponse{TaskId{11},
                                  {{LeafIndex{0}, to_bytes("r0")},
                                   {LeafIndex{7}, to_bytes("r7")}},
                                  {to_bytes("sib-a"), Bytes{}}}},
       "0a02000b0000000000000002000272300702723702057369622d6100"},
      {Message{Verdict{TaskId{9}, VerdictStatus::kWrongResult, LeafIndex{77},
                       "details here"}},
       "090200090000000000000001014d0c64657461696c732068657265"},
      {Message{Hello{kGridProtocol, "gridworker"}},
       "0b020001000a67726964776f726b6572"},
      {Message{HelloChallenge{kGridProtocol, Bytes(8, 0xa5)}},
       "0c0200010008a5a5a5a5a5a5a5a5"},
      {Message{HelloProof{kGridProtocol, "gridworker", Bytes(4, 0x11),
                          Bytes(4, 0x22)}},
       "0d020001000a67726964776f726b657204111111110422222222"},
  };
  for (const auto& [message, expected] : golden) {
    EXPECT_EQ(to_hex(encode_message(message)), expected)
        << "message variant index " << message.index();
    // The pinned bytes must also still decode to the same value.
    EXPECT_EQ(decode_message(from_hex(expected)), message);
  }
}

// --------------------------------------------------- scheme-message envelope

// Every SchemeMessage alternative must survive the envelope unchanged.
template <typename T>
void expect_scheme_round_trip(const T& original) {
  const Bytes encoded = encode_scheme_message(SchemeMessage{original});
  const SchemeMessage decoded = decode_scheme_message(encoded);
  ASSERT_TRUE(std::holds_alternative<T>(decoded));
  EXPECT_EQ(std::get<T>(decoded), original);
  // The envelope is the grid envelope: the two codecs interoperate.
  const Message as_message = decode_message(encoded);
  EXPECT_EQ(std::get<T>(as_message), original);
}

TEST(SchemeMessages, EveryAlternativeRoundTrips) {
  expect_scheme_round_trip(sample_commitment());
  expect_scheme_round_trip(SampleChallenge{
      TaskId{7}, {LeafIndex{3}, LeafIndex{1ULL << 50}}});
  expect_scheme_round_trip(sample_response());
  expect_scheme_round_trip(sample_batch_response());
  expect_scheme_round_trip(NiCbsProof{sample_commitment(), sample_response()});
  expect_scheme_round_trip(ResultsUpload{
      TaskId{2}, {to_bytes("a"), Bytes{}, to_bytes("c")}});
  expect_scheme_round_trip(RingerReport{TaskId{4}, {9, 1ULL << 40}});
  expect_scheme_round_trip(EpochCommitment{TaskId{7}, 2, 4,
                                           sample_commitment()});
  expect_scheme_round_trip(EpochChallenge{TaskId{7}, 2, {LeafIndex{11}}});
  expect_scheme_round_trip(EpochProofResponse{TaskId{7}, 2,
                                              sample_response()});
  expect_scheme_round_trip(EpochAck{TaskId{7}, 2});
}

TEST(SchemeMessages, TaskOfMatchesEveryAlternative) {
  EXPECT_EQ(task_of(SchemeMessage{Commitment{TaskId{5}, 1, {}}}), TaskId{5});
  EXPECT_EQ(task_of(SchemeMessage{SampleChallenge{TaskId{6}, {}}}), TaskId{6});
  EXPECT_EQ(task_of(SchemeMessage{ProofResponse{TaskId{7}, {}}}), TaskId{7});
  EXPECT_EQ(task_of(SchemeMessage{BatchProofResponse{TaskId{8}, {}, {}}}),
            TaskId{8});
  EXPECT_EQ(
      task_of(SchemeMessage{NiCbsProof{Commitment{TaskId{9}, 1, {}}, {}}}),
      TaskId{9});
  EXPECT_EQ(task_of(SchemeMessage{ResultsUpload{TaskId{10}, {}}}), TaskId{10});
  EXPECT_EQ(task_of(SchemeMessage{RingerReport{TaskId{11}, {}}}), TaskId{11});
  EXPECT_EQ(task_of(SchemeMessage{EpochCommitment{TaskId{12}, 0, 1, {}}}),
            TaskId{12});
  EXPECT_EQ(task_of(SchemeMessage{EpochChallenge{TaskId{13}, 0, {}}}),
            TaskId{13});
  EXPECT_EQ(task_of(SchemeMessage{EpochProofResponse{TaskId{14}, 0, {}}}),
            TaskId{14});
  EXPECT_EQ(task_of(SchemeMessage{EpochAck{TaskId{15}, 0}}), TaskId{15});
}

TEST(SchemeMessages, GridOnlyTypesAreNotSchemeMessages) {
  // Conversion filters them out…
  EXPECT_EQ(to_scheme_message(Message{sample_assignment()}), std::nullopt);
  EXPECT_EQ(to_scheme_message(Message{ScreenerReport{TaskId{1}, {}}}),
            std::nullopt);
  EXPECT_EQ(to_scheme_message(Message{Verdict{TaskId{1}}}), std::nullopt);
  // …and the scheme decoder rejects their encodings outright.
  EXPECT_THROW(
      decode_scheme_message(encode_message(Message{sample_assignment()})),
      WireError);
  EXPECT_THROW(decode_scheme_message(encode_message(
                   Message{ScreenerReport{TaskId{1}, {}}})),
               WireError);
}

TEST(SchemeMessages, HostileBytesThrowCleanly) {
  EXPECT_THROW(decode_scheme_message(BytesView{}), WireError);
  Bytes truncated = encode_scheme_message(
      SchemeMessage{sample_batch_response()});
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(decode_scheme_message(truncated), WireError);
}

TEST(Messages, MessageTypeNamesAreStable) {
  EXPECT_STREQ(to_string(MessageType::kTaskAssignment), "task-assignment");
  EXPECT_STREQ(to_string(MessageType::kNiCbsProof), "nicbs-proof");
  EXPECT_STREQ(to_string(MessageType::kVerdict), "verdict");
  EXPECT_STREQ(to_string(MessageType::kEpochCommitment), "epoch-commitment");
  EXPECT_STREQ(to_string(MessageType::kEpochResume), "epoch-resume");
}

TEST(Messages, UnknownTypeRejected) {
  WireWriter w;
  w.u8(0xee);
  w.u16(1);
  EXPECT_THROW(decode_message(w.buffer()), WireError);
}

TEST(Messages, WrongVersionRejected) {
  Bytes encoded = encode_message(Message{sample_commitment()});
  encoded[1] = 0x42;  // clobber version
  EXPECT_THROW(decode_message(encoded), WireError);
}

TEST(Messages, TrailingGarbageRejected) {
  Bytes encoded = encode_message(Message{sample_commitment()});
  encoded.push_back(0x00);
  EXPECT_THROW(decode_message(encoded), WireError);
}

TEST(Messages, TruncationAtEveryPrefixThrowsCleanly) {
  const Bytes encoded = encode_message(Message{sample_assignment()});
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    const BytesView prefix(encoded.data(), len);
    EXPECT_THROW(decode_message(prefix), WireError) << "prefix length " << len;
  }
}

TEST(Messages, SingleByteMutationsNeverCrash) {
  const Bytes original = encode_message(Message{sample_response()});
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    Bytes mutated = original;
    mutated[pos] ^= 0x5a;
    try {
      (void)decode_message(mutated);  // either parses or throws WireError
    } catch (const WireError&) {
      // expected for most mutations
    }
  }
}

// ------------------------------------------- zero-copy / reuse entry points

TEST(Messages, EncodeIntoMatchesEncodeAndReusesCapacity) {
  const Message message{sample_response()};
  const Bytes reference = encode_message(message);

  Bytes scratch;
  encode_message_into(message, scratch);
  EXPECT_EQ(scratch, reference);

  // Re-encoding through the same buffer keeps the bytes and the capacity.
  scratch.reserve(4096);
  const std::size_t capacity = scratch.capacity();
  encode_message_into(message, scratch);
  EXPECT_EQ(scratch, reference);
  EXPECT_EQ(scratch.capacity(), capacity);

  Bytes scheme_scratch;
  encode_scheme_message_into(SchemeMessage{sample_response()}, scheme_scratch);
  EXPECT_EQ(scheme_scratch, reference);
}

TEST(Messages, ProofResponseViewDecodesWithoutCopying) {
  const ProofResponse original = sample_response();
  const Bytes payload = encode_message(Message{original});
  WireViewArena arena;
  const ProofResponseView view = decode_proof_response_view(payload, arena);

  EXPECT_EQ(view.task, original.task);
  ASSERT_EQ(view.proofs.size(), original.proofs.size());
  for (std::size_t i = 0; i < original.proofs.size(); ++i) {
    EXPECT_EQ(view.proofs[i].index, original.proofs[i].index);
    EXPECT_TRUE(equal_bytes(view.proofs[i].result, original.proofs[i].result));
    ASSERT_EQ(view.proofs[i].siblings.size(),
              original.proofs[i].siblings.size());
    for (std::size_t s = 0; s < original.proofs[i].siblings.size(); ++s) {
      EXPECT_TRUE(equal_bytes(view.proofs[i].siblings[s],
                              original.proofs[i].siblings[s]));
    }
    // Zero-copy: non-empty views alias the encoded payload.
    if (!view.proofs[i].result.empty()) {
      EXPECT_GE(view.proofs[i].result.data(), payload.data());
      EXPECT_LT(view.proofs[i].result.data(),
                payload.data() + payload.size());
    }
  }
}

TEST(Messages, BatchProofResponseViewDecodesWithoutCopying) {
  const BatchProofResponse original = sample_batch_response();
  const Bytes payload = encode_message(Message{original});
  WireViewArena arena;
  const BatchProofResponseView view =
      decode_batch_proof_response_view(payload, arena);

  EXPECT_EQ(view.task, original.task);
  ASSERT_EQ(view.results.size(), original.results.size());
  for (std::size_t i = 0; i < original.results.size(); ++i) {
    EXPECT_EQ(view.results[i].index, original.results[i].first);
    EXPECT_TRUE(equal_bytes(view.results[i].result,
                            original.results[i].second));
  }
  ASSERT_EQ(view.siblings.size(), original.siblings.size());
  for (std::size_t i = 0; i < original.siblings.size(); ++i) {
    EXPECT_TRUE(equal_bytes(view.siblings[i], original.siblings[i]));
  }
}

TEST(Messages, ViewDecodersRejectMalformedInput) {
  WireViewArena arena;
  const Bytes good = encode_message(Message{sample_response()});

  // Wrong message type for the requested view.
  EXPECT_THROW(decode_batch_proof_response_view(good, arena), WireError);
  const Bytes commitment = encode_message(Message{sample_commitment()});
  EXPECT_THROW(decode_proof_response_view(commitment, arena), WireError);

  // Truncations at every prefix length must throw, never crash.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    const BytesView prefix(good.data(), cut);
    EXPECT_THROW(decode_proof_response_view(prefix, arena), WireError);
  }
  // Trailing garbage.
  Bytes padded = good;
  padded.push_back(0x00);
  EXPECT_THROW(decode_proof_response_view(padded, arena), WireError);

  // Arena survives failures and decodes the next message cleanly.
  const ProofResponseView view = decode_proof_response_view(good, arena);
  EXPECT_EQ(view.proofs.size(), sample_response().proofs.size());
}

TEST(Messages, RandomBytesFuzzNeverCrashes) {
  Rng rng(20240610);
  int parsed = 0;
  for (int i = 0; i < 3000; ++i) {
    const Bytes junk = rng.bytes(rng.uniform(200));
    try {
      (void)decode_message(junk);
      ++parsed;
    } catch (const WireError&) {
    }
  }
  // Random bytes almost never form a valid message.
  EXPECT_LT(parsed, 10);
}

}  // namespace
}  // namespace ugc
