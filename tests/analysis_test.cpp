#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "common/error.h"

namespace ugc {
namespace {

// ----------------------------------------------------- Theorem 3 / Eq. 2

TEST(CheatProbability, FullyHonestAlwaysPasses) {
  EXPECT_DOUBLE_EQ(cheat_success_probability(1.0, 0.0, 50), 1.0);
}

TEST(CheatProbability, ZeroWorkZeroGuessNeverPasses) {
  EXPECT_DOUBLE_EQ(cheat_success_probability(0.0, 0.0, 1), 0.0);
}

TEST(CheatProbability, MatchesClosedForm) {
  // (0.5 + 0.5·0.5)^m = 0.75^m
  EXPECT_NEAR(cheat_success_probability(0.5, 0.5, 1), 0.75, 1e-12);
  EXPECT_NEAR(cheat_success_probability(0.5, 0.5, 10), std::pow(0.75, 10),
              1e-12);
  // q = 0: r^m
  EXPECT_NEAR(cheat_success_probability(0.5, 0.0, 10), std::pow(0.5, 10),
              1e-12);
}

TEST(CheatProbability, MonotoneInHonesty) {
  EXPECT_LT(cheat_success_probability(0.3, 0.0, 20),
            cheat_success_probability(0.6, 0.0, 20));
}

TEST(CheatProbability, MonotoneDecreasingInSamples) {
  EXPECT_GT(cheat_success_probability(0.5, 0.0, 10),
            cheat_success_probability(0.5, 0.0, 20));
}

TEST(CheatProbability, PerfectGuessingDefeatsSampling) {
  EXPECT_DOUBLE_EQ(cheat_success_probability(0.0, 1.0, 100), 1.0);
}

TEST(CheatProbability, RejectsOutOfRangeInputs) {
  EXPECT_THROW(cheat_success_probability(-0.1, 0.0, 1), Error);
  EXPECT_THROW(cheat_success_probability(1.1, 0.0, 1), Error);
  EXPECT_THROW(cheat_success_probability(0.5, -0.1, 1), Error);
  EXPECT_THROW(cheat_success_probability(0.5, 1.1, 1), Error);
}

// ------------------------------------------------------------- Eq. 3

TEST(RequiredSampleSize, PaperAnchorsAtHalfHonesty) {
  // §3.2: ε = 1e-4, r = 0.5: m = 33 for q = 0.5, m = 14 for q ≈ 0.
  EXPECT_EQ(required_sample_size(1e-4, 0.5, 0.5), 33u);
  EXPECT_EQ(required_sample_size(1e-4, 0.5, 0.0), 14u);
}

TEST(RequiredSampleSize, ResultActuallySuffices) {
  for (double r : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (double q : {0.0, 0.5}) {
      const auto m = required_sample_size(1e-4, r, q);
      ASSERT_TRUE(m.has_value());
      // 1-ulp slack: r = 0.1 gives 0.1^4 == 1e-4 up to rounding.
      EXPECT_LE(cheat_success_probability(r, q, *m), 1e-4 * (1.0 + 1e-12));
      if (*m > 1) {
        EXPECT_GT(cheat_success_probability(r, q, *m - 1), 1e-4);
      }
    }
  }
}

TEST(RequiredSampleSize, UndetectableCheatingReturnsNullopt) {
  EXPECT_EQ(required_sample_size(1e-4, 1.0, 0.0), std::nullopt);
  EXPECT_EQ(required_sample_size(1e-4, 0.5, 1.0), std::nullopt);
}

TEST(RequiredSampleSize, ZeroBaseNeedsOneSample) {
  EXPECT_EQ(required_sample_size(1e-4, 0.0, 0.0), 1u);
}

TEST(RequiredSampleSize, GrowsWithHonestyRatio) {
  const auto low = required_sample_size(1e-4, 0.5, 0.0);
  const auto high = required_sample_size(1e-4, 0.9, 0.0);
  ASSERT_TRUE(low && high);
  EXPECT_LT(*low, *high);
}

TEST(RequiredSampleSize, RejectsBadEpsilon) {
  EXPECT_THROW(required_sample_size(0.0, 0.5, 0.0), Error);
  EXPECT_THROW(required_sample_size(1.0, 0.5, 0.0), Error);
  EXPECT_THROW(required_sample_size(-1.0, 0.5, 0.0), Error);
}

TEST(NaiveSamplingEscape, PaperHalfExample) {
  // §1: cheating on half the inputs survives m samples with prob 2^-m.
  EXPECT_NEAR(naive_sampling_escape_probability(0.5, 1), 0.5, 1e-12);
  EXPECT_NEAR(naive_sampling_escape_probability(0.5, 50), std::pow(0.5, 50),
              1e-20);
}

// ------------------------------------------------------------- §3.3 rco

TEST(Rco, PaperExampleM64With4GStorage) {
  // m = 64, S = 2^32 stored nodes ⇒ rco = 2·64/2^32 = 2^-25.
  EXPECT_NEAR(rco_from_storage(64, std::pow(2.0, 32)), std::pow(2.0, -25),
              1e-18);
}

TEST(Rco, LevelsFormulaMatchesStorageFormula) {
  // S = 2^(H-ℓ+1) ⇒ both formulas agree.
  const std::size_t m = 64;
  for (unsigned height = 10; height <= 30; height += 5) {
    for (unsigned ell = 0; ell <= height; ell += 3) {
      const double by_levels = rco_from_levels(m, height, ell);
      const double stored = std::pow(2.0, height - ell + 1);
      EXPECT_NEAR(by_levels, rco_from_storage(m, stored), 1e-12)
          << "H=" << height << " ell=" << ell;
    }
  }
}

TEST(Rco, IndependentOfDomainSizeGivenStorage) {
  // The paper's point: rco depends only on m and S.
  EXPECT_DOUBLE_EQ(rco_from_storage(64, 1024.0), rco_from_storage(64, 1024.0));
  EXPECT_NEAR(rco_from_levels(64, 20, 10), rco_from_levels(64, 30, 20), 1e-15);
}

TEST(Rco, FullTreeMeansNoOverheadGrowth) {
  EXPECT_NEAR(rco_from_levels(10, 20, 0), 10.0 / std::pow(2.0, 20), 1e-15);
}

TEST(Rco, RejectsEllAboveHeight) {
  EXPECT_THROW(rco_from_levels(10, 5, 6), Error);
}

// ------------------------------------------------------------- §4.2

TEST(RetryAttempts, ClosedForm) {
  EXPECT_NEAR(expected_retry_attempts(0.5, 10), 1024.0, 1e-9);
  EXPECT_NEAR(expected_retry_attempts(0.5, 1), 2.0, 1e-12);
  EXPECT_NEAR(expected_retry_attempts(1.0, 100), 1.0, 1e-12);
}

TEST(RetryAttempts, RejectsZeroHonesty) {
  EXPECT_THROW(expected_retry_attempts(0.0, 5), Error);
}

TEST(Eq5Defense, MinCostSatisfiesInequalityWithEquality) {
  const double r = 0.5;
  const std::size_t m = 10;
  const std::uint64_t n = 1 << 20;
  const double cost_f = 3.0;
  const double cg = min_sample_gen_cost(r, m, n, cost_f);
  // (1/r^m) · m · Cg == n · Cf at the minimum.
  const double lhs = expected_retry_attempts(r, m) *
                     static_cast<double>(m) * cg;
  EXPECT_NEAR(lhs, static_cast<double>(n) * cost_f, 1e-6);
}

TEST(Eq5Defense, IterationsAtLeastOne) {
  // A tiny task needs no slowdown: k must clamp at 1.
  EXPECT_EQ(iterations_for_defense(0.5, 64, 16, 1.0, 1e9), 1u);
}

TEST(Eq5Defense, IterationsCoverRequiredCost) {
  const double r = 0.5;
  const std::size_t m = 10;
  const std::uint64_t n = 1 << 20;
  const double cost_f = 5.0, cost_hash = 0.01;
  const std::uint64_t k =
      iterations_for_defense(r, m, n, cost_f, cost_hash);
  EXPECT_GE(static_cast<double>(k) * cost_hash,
            min_sample_gen_cost(r, m, n, cost_f) - 1e-9);
}

TEST(Eq5Defense, HonestOverheadIsAboutRToTheM) {
  // §4.2: with Cg at the minimum, the honest participant's extra cost ratio
  // is m·Cg/(n·Cf) = r^m.
  const double r = 0.5;
  const std::size_t m = 10;
  const std::uint64_t n = 1 << 20;
  const double cost_f = 2.0;
  const double cg = min_sample_gen_cost(r, m, n, cost_f);
  EXPECT_NEAR(honest_sample_gen_overhead(m, cg, n, cost_f), std::pow(r, m),
              1e-12);
}

// ------------------------------------------------- communication models

TEST(CommModel, NaiveUploadLinearInN) {
  EXPECT_DOUBLE_EQ(upload_bytes_all_results(1000, 16), 16000.0);
  EXPECT_DOUBLE_EQ(upload_bytes_all_results(2000, 16), 32000.0);
}

TEST(CommModel, CbsUploadLogarithmicInN) {
  const double small = cbs_upload_bytes(1 << 10, 33, 16, 32);
  const double large = cbs_upload_bytes(1 << 30, 33, 16, 32);
  // Growing n by 2^20 only triples the height (10 -> 30): cost stays small.
  EXPECT_LT(large, small * 4.0);
  // And is vastly below the naive upload for the same n.
  EXPECT_LT(large, upload_bytes_all_results(1 << 30, 16) / 1e4);
}

TEST(CommModel, PaperSixtyFourBitExample) {
  // §3: shipping all results of a 2^64-input task ≈ 16 million terabytes
  // (with 1-byte results); CBS needs only kilobytes.
  const double naive = upload_bytes_all_results(0, 1);  // placeholder
  (void)naive;
  const double naive64 = std::pow(2.0, 64) * 1.0;
  EXPECT_GT(naive64, 1.6e19);  // ~16M TB
  const double cbs = cbs_upload_bytes(std::uint64_t{1} << 62, 50, 8, 32);
  EXPECT_LT(cbs, 200.0 * 1024);  // well under a megabyte
}

}  // namespace
}  // namespace ugc
