#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "core/cheating.h"
#include "grid/simulation.h"
#include "scheme/exchange.h"
#include "scheme/registry.h"
#include "test_util.h"

namespace ugc {
namespace {

using testing::TestFunction;
using testing::make_test_task;

SchemeConfig small_config(SchemeKind kind) {
  SchemeConfig config;
  config.kind = kind;
  config.cbs.sample_count = 20;
  config.nicbs.sample_count = 20;
  config.naive.sample_count = 20;
  config.ringer.ringer_count = 10;
  return config;
}

class AllSchemesExchange : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(AllSchemesExchange, HonestParticipantAccepted) {
  const SchemeConfig config = small_config(GetParam());
  const VerificationScheme& scheme =
      SchemeRegistry::global().by_kind(GetParam());

  std::vector<Task> tasks;
  const std::size_t replicas = scheme.replicas(config);
  for (std::size_t i = 0; i < replicas; ++i) {
    tasks.push_back(make_test_task(256, /*id=*/i + 1));
  }

  const SchemeExchangeResult result = run_scheme_exchange(
      scheme, tasks, config, make_honest_policy(), nullptr, /*seed=*/7);
  ASSERT_EQ(result.verdicts.size(), replicas);
  EXPECT_TRUE(result.all_accepted()) << to_string(GetParam());
  EXPECT_EQ(result.participant_evaluations, replicas * 256u);
}

TEST_P(AllSchemesExchange, LazyCheaterRejected) {
  const SchemeConfig config = small_config(GetParam());
  const VerificationScheme& scheme =
      SchemeRegistry::global().by_kind(GetParam());

  std::vector<Task> tasks;
  const std::size_t replicas = scheme.replicas(config);
  for (std::size_t i = 0; i < replicas; ++i) {
    tasks.push_back(make_test_task(256, /*id=*/i + 1));
  }

  const auto cheater =
      make_semi_honest_cheater({/*honesty_ratio=*/0.4, /*guess_accuracy=*/0.0,
                                /*seed=*/99});
  const SchemeExchangeResult result =
      run_scheme_exchange(scheme, tasks, config, cheater, nullptr, /*seed=*/7);
  // Every replica ran the same cheating policy, so at least one task (for
  // double-check: all in lock-step agreement are still sampled against the
  // recomputed truth only on disagreement — identical guesses collude, so
  // exempt it) must be rejected.
  if (GetParam() == SchemeKind::kDoubleCheck) {
    // Identical policies produce identical guesses: the blind spot the
    // paper calls out. Verify the exchange at least completed.
    ASSERT_EQ(result.verdicts.size(), replicas);
  } else {
    ASSERT_EQ(result.verdicts.size(), 1u);
    EXPECT_FALSE(result.verdicts[0].accepted()) << to_string(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemesExchange,
                         ::testing::Values(SchemeKind::kDoubleCheck,
                                           SchemeKind::kNaiveSampling,
                                           SchemeKind::kCbs,
                                           SchemeKind::kNiCbs,
                                           SchemeKind::kRinger),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST(SchemeExchange, DoubleCheckCatchesOneDivergentReplica) {
  SchemeConfig config = small_config(SchemeKind::kDoubleCheck);
  const VerificationScheme& scheme =
      SchemeRegistry::global().by_kind(SchemeKind::kDoubleCheck);

  const std::vector<Task> tasks = {make_test_task(128, 1),
                                   make_test_task(128, 2)};

  // Open the two participant sides with *different* policies by pumping the
  // sessions manually: one honest, one half-lazy.
  auto supervisor = scheme.open_supervisor(
      {tasks, config, std::make_shared<RecomputeVerifier>(tasks[0].f), 3});
  auto honest = scheme.open_participant(
      {tasks[0], config, {}, make_honest_policy()});
  auto lazy = scheme.open_participant(
      {tasks[1], config, {}, make_semi_honest_cheater({0.5, 0.0, 17})});

  for (auto* participant : {honest.get(), lazy.get()}) {
    while (auto message = participant->next_message()) {
      supervisor->on_message(task_of(*message), *message);
    }
  }

  std::map<std::uint64_t, bool> accepted;
  while (auto verdict = supervisor->next_verdict()) {
    accepted[verdict->task.value] = verdict->accepted();
  }
  ASSERT_EQ(accepted.size(), 2u);
  EXPECT_TRUE(accepted.at(1));
  EXPECT_FALSE(accepted.at(2));
}

// ----------------------------------------------------------------- batched

TEST(SchemeExchange, BatchedCbsAcceptsHonestAndCatchesCheater) {
  SchemeConfig config = small_config(SchemeKind::kCbs);
  config.cbs.use_batch_proofs = true;
  const VerificationScheme& scheme =
      SchemeRegistry::global().by_kind(SchemeKind::kCbs);

  const Task task = make_test_task(512);
  EXPECT_TRUE(run_scheme_exchange(scheme, task, config, make_honest_policy())
                  .all_accepted());
  EXPECT_FALSE(run_scheme_exchange(scheme, task, config,
                                   make_semi_honest_cheater({0.4, 0.0, 5}))
                   .all_accepted());
}

// -------------------------------------------------------------------- SPRT

TEST(SchemeExchange, SprtCbsAcceptsHonestWithFewSamples) {
  SchemeConfig config = small_config(SchemeKind::kCbs);
  config.cbs.use_sprt = true;
  config.cbs.sprt.pass_prob_cheater = 0.5;
  config.cbs.sprt.false_reject = 1e-4;
  config.cbs.sprt.false_accept = 1e-4;
  const VerificationScheme& scheme =
      SchemeRegistry::global().by_kind(SchemeKind::kCbs);

  const Task task = make_test_task(512);
  const SchemeExchangeResult result =
      run_scheme_exchange(scheme, task, config, make_honest_policy());
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_TRUE(result.verdicts[0].accepted());
  EXPECT_TRUE(result.verdicts[0].detail.starts_with("sprt accept"));
}

TEST(SchemeExchange, SprtCbsRejectsCheaterEarly) {
  SchemeConfig config = small_config(SchemeKind::kCbs);
  config.cbs.use_sprt = true;
  config.cbs.sprt.pass_prob_cheater = 0.5;
  const VerificationScheme& scheme =
      SchemeRegistry::global().by_kind(SchemeKind::kCbs);

  const Task task = make_test_task(512);
  const SchemeExchangeResult result = run_scheme_exchange(
      scheme, task, config, make_semi_honest_cheater({0.3, 0.0, 23}));
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_FALSE(result.verdicts[0].accepted());
  // A 30%-honest cheater fails fast: far fewer verifications than the
  // fixed-m path's sample_count would have spent on an honest run.
  EXPECT_LT(result.results_verified, 20u);
}

TEST(SchemeExchange, SprtCbsRunsThroughGridSimulation) {
  GridConfig config;
  config.domain_end = 1 << 9;
  config.participant_count = 3;
  config.scheme = small_config(SchemeKind::kCbs);
  config.scheme.cbs.use_sprt = true;
  config.scheme.cbs.sprt.pass_prob_cheater = 0.5;
  config.seed = 41;
  config.cheaters = {{1, 0.4, 0.0, 0}};

  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.cheater_tasks_rejected, 1u);
  EXPECT_EQ(result.honest_tasks_rejected, 0u);
  EXPECT_EQ(result.honest_tasks_accepted, 2u);
}

TEST(SchemeExchange, SprtCbsRunsThroughBroker) {
  GridConfig config;
  config.domain_end = 1 << 9;
  config.participant_count = 2;
  config.scheme = small_config(SchemeKind::kCbs);
  config.scheme.cbs.use_sprt = true;
  config.scheme.cbs.sprt.pass_prob_cheater = 0.5;
  config.use_broker = true;
  config.seed = 43;

  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.honest_tasks_accepted, 2u);
}

// --------------------------------------------------------------- API shape

TEST(SchemeExchange, ValidatesInputs) {
  const VerificationScheme& scheme =
      SchemeRegistry::global().by_kind(SchemeKind::kCbs);
  EXPECT_THROW(run_scheme_exchange(scheme, std::vector<Task>{},
                                   SchemeConfig{}, nullptr, nullptr, 1),
               Error);
}

TEST(SchemeSession, ParticipantSessionsIgnoreJunkTraffic) {
  const SchemeConfig config = small_config(SchemeKind::kNiCbs);
  const VerificationScheme& scheme =
      SchemeRegistry::global().by_kind(SchemeKind::kNiCbs);
  auto session = scheme.open_participant(
      {make_test_task(64), config, {}, make_honest_policy()});
  (void)session->next_message();
  // Wrong-type and wrong-task messages must be dropped, not thrown on.
  session->on_message(SampleChallenge{TaskId{99}, {LeafIndex{0}}});
  session->on_message(ResultsUpload{TaskId{1}, {}});
  EXPECT_EQ(session->next_message(), std::nullopt);
}

TEST(SchemeSession, SupervisorSessionsIgnoreJunkTraffic) {
  const SchemeConfig config = small_config(SchemeKind::kCbs);
  const VerificationScheme& scheme =
      SchemeRegistry::global().by_kind(SchemeKind::kCbs);
  const Task task = make_test_task(64);
  auto session = scheme.open_supervisor(
      {{task}, config, std::make_shared<RecomputeVerifier>(task.f), 1});
  // Response before any commitment, reports for foreign tasks: all dropped.
  session->on_message(task.id, ProofResponse{task.id, {}});
  session->on_message(TaskId{42}, Commitment{TaskId{42}, 64, {}});
  EXPECT_EQ(session->next_message(), std::nullopt);
  EXPECT_EQ(session->next_verdict(), std::nullopt);
}

}  // namespace
}  // namespace ugc
