#include <gtest/gtest.h>

#include "core/cheating.h"
#include "test_util.h"

namespace ugc {
namespace {

using ugc::testing::make_test_task;

TEST(HonestPolicy, AlwaysComputesTrueValue) {
  const Task task = make_test_task(32);
  const HonestPolicy policy;
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(policy.computes_honestly(LeafIndex{i}));
    const auto decision = policy.decide(LeafIndex{i}, task);
    EXPECT_TRUE(decision.honest);
    EXPECT_EQ(decision.value, task.f->evaluate(task.domain.input(LeafIndex{i})));
  }
}

TEST(SemiHonestCheater, RejectsBadParams) {
  EXPECT_THROW(SemiHonestCheater({-0.1, 0.0, 1}), Error);
  EXPECT_THROW(SemiHonestCheater({1.1, 0.0, 1}), Error);
  EXPECT_THROW(SemiHonestCheater({0.5, -0.1, 1}), Error);
  EXPECT_THROW(SemiHonestCheater({0.5, 1.1, 1}), Error);
}

TEST(SemiHonestCheater, DecisionsAreDeterministic) {
  const Task task = make_test_task(64);
  const SemiHonestCheater policy({0.5, 0.3, 99});
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto first = policy.decide(LeafIndex{i}, task);
    const auto second = policy.decide(LeafIndex{i}, task);
    EXPECT_EQ(first.value, second.value) << "index " << i;
    EXPECT_EQ(first.honest, second.honest);
    EXPECT_EQ(first.honest, policy.computes_honestly(LeafIndex{i}));
  }
}

TEST(SemiHonestCheater, FullHonestyRatioComputesEverything) {
  const Task task = make_test_task(32);
  const SemiHonestCheater policy({1.0, 0.0, 5});
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(policy.computes_honestly(LeafIndex{i}));
  }
}

TEST(SemiHonestCheater, ZeroHonestyRatioComputesNothing) {
  const SemiHonestCheater policy({0.0, 0.0, 5});
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_FALSE(policy.computes_honestly(LeafIndex{i}));
  }
}

TEST(SemiHonestCheater, HonestFractionApproximatesR) {
  const Task task = make_test_task(20000);
  for (double r : {0.25, 0.5, 0.75}) {
    const SemiHonestCheater policy({r, 0.0, 7});
    std::uint64_t honest = 0;
    for (std::uint64_t i = 0; i < 20000; ++i) {
      if (policy.computes_honestly(LeafIndex{i})) ++honest;
    }
    EXPECT_NEAR(static_cast<double>(honest) / 20000.0, r, 0.02) << "r=" << r;
  }
}

TEST(SemiHonestCheater, HonestLeavesCarryTrueValues) {
  const Task task = make_test_task(256);
  const SemiHonestCheater policy({0.5, 0.0, 11});
  for (std::uint64_t i = 0; i < 256; ++i) {
    const auto decision = policy.decide(LeafIndex{i}, task);
    const Bytes truth = task.f->evaluate(task.domain.input(LeafIndex{i}));
    if (decision.honest) {
      EXPECT_EQ(decision.value, truth);
    }
  }
}

TEST(SemiHonestCheater, ZeroGuessAccuracyGuessesAreWrong) {
  const Task task = make_test_task(512);
  const SemiHonestCheater policy({0.5, 0.0, 13});
  for (std::uint64_t i = 0; i < 512; ++i) {
    const auto decision = policy.decide(LeafIndex{i}, task);
    if (!decision.honest) {
      const Bytes truth = task.f->evaluate(task.domain.input(LeafIndex{i}));
      EXPECT_NE(decision.value, truth) << "index " << i;
      EXPECT_EQ(decision.value.size(), truth.size());
    }
  }
}

TEST(SemiHonestCheater, GuessAccuracyApproximatesQ) {
  const Task task = make_test_task(20000);
  const double q = 0.4;
  const SemiHonestCheater policy({0.0, q, 17});  // all guessed
  std::uint64_t lucky = 0;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const auto decision = policy.decide(LeafIndex{i}, task);
    ASSERT_FALSE(decision.honest);
    if (decision.value == task.f->evaluate(task.domain.input(LeafIndex{i}))) {
      ++lucky;
    }
  }
  EXPECT_NEAR(static_cast<double>(lucky) / 20000.0, q, 0.02);
}

TEST(SemiHonestCheater, PerfectGuessAccuracyAlwaysCorrect) {
  const Task task = make_test_task(128);
  const SemiHonestCheater policy({0.0, 1.0, 19});
  for (std::uint64_t i = 0; i < 128; ++i) {
    const auto decision = policy.decide(LeafIndex{i}, task);
    EXPECT_FALSE(decision.honest);
    EXPECT_EQ(decision.value, task.f->evaluate(task.domain.input(LeafIndex{i})));
  }
}

TEST(SemiHonestCheater, DifferentSeedsDifferentSubsets) {
  const SemiHonestCheater a({0.5, 0.0, 1});
  const SemiHonestCheater b({0.5, 0.0, 2});
  int differences = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    if (a.computes_honestly(LeafIndex{i}) !=
        b.computes_honestly(LeafIndex{i})) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 64);  // ~half should differ
}

TEST(SemiHonestCheater, NameDescribesParameters) {
  const SemiHonestCheater policy({0.5, 0.25, 1});
  EXPECT_EQ(policy.name(), "semi-honest(r=0.5, q=0.25)");
}

TEST(DefectorCheater, HonestBeforeTheBoundaryGuessesAfter) {
  // make_test_task's domain starts at input 1000; defect mid-domain.
  const Task task = make_test_task(64);
  const DefectorCheater policy({/*defect_from=*/1032, 0.0, 5});
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto decision = policy.decide(LeafIndex{i}, task);
    const Bytes truth = task.f->evaluate(task.domain.input(LeafIndex{i}));
    if (i < 32) {
      EXPECT_TRUE(decision.honest);
      EXPECT_EQ(decision.value, truth);
    } else {
      EXPECT_FALSE(decision.honest);
      EXPECT_NE(decision.value, truth);  // q = 0: guesses are junk
      EXPECT_EQ(decision.value.size(), truth.size());
    }
  }
  // computes_honestly interprets its index as the absolute input.
  EXPECT_TRUE(policy.computes_honestly(LeafIndex{1031}));
  EXPECT_FALSE(policy.computes_honestly(LeafIndex{1032}));
}

TEST(DefectorCheater, EpochSubTaskAgreesWithTheWholeTask) {
  // The defection boundary is keyed on the absolute input, so a sub-task
  // over one epoch's subdomain makes exactly the decisions the whole-task
  // view would — the property pipelined verification relies on.
  const Task whole = make_test_task(64);
  const DefectorCheater policy({1032, 0.25, 5});
  const std::vector<Domain> epochs = whole.domain.split(4);
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    const Task sub = Task::make(whole.id, epochs[e], whole.f, nullptr);
    for (std::uint64_t i = 0; i < epochs[e].size(); ++i) {
      const std::uint64_t global = 16 * e + i;
      const auto from_sub = policy.decide(LeafIndex{i}, sub);
      const auto from_whole = policy.decide(LeafIndex{global}, whole);
      EXPECT_EQ(from_sub.honest, from_whole.honest);
      EXPECT_EQ(from_sub.value, from_whole.value);
    }
  }
}

TEST(DefectorCheater, LuckyGuessesMatchTheTrueValue) {
  const Task task = make_test_task(16);
  const DefectorCheater policy({/*defect_from=*/0, /*guess_accuracy=*/1.0, 7});
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto decision = policy.decide(LeafIndex{i}, task);
    EXPECT_FALSE(decision.honest);  // still not billed as honest work
    EXPECT_EQ(decision.value,
              task.f->evaluate(task.domain.input(LeafIndex{i})));
  }
}

TEST(DefectorCheater, RejectsBadParams) {
  EXPECT_THROW(DefectorCheater({0, -0.1, 1}), Error);
  EXPECT_THROW(DefectorCheater({0, 1.1, 1}), Error);
}

TEST(DefectorCheater, NameDescribesParameters) {
  const DefectorCheater policy({1160, 0.25, 1});
  EXPECT_EQ(policy.name(), "defector(from=1160, q=0.25)");
}

TEST(PolicyFactories, ProduceWorkingPolicies) {
  const Task task = make_test_task(8);
  const auto honest = make_honest_policy();
  EXPECT_TRUE(honest->decide(LeafIndex{0}, task).honest);
  const auto cheater = make_semi_honest_cheater({0.0, 0.0, 3});
  EXPECT_FALSE(cheater->decide(LeafIndex{0}, task).honest);
  const auto defector = make_defector_cheater({1004, 0.0, 3});
  EXPECT_TRUE(defector->decide(LeafIndex{0}, task).honest);
  EXPECT_FALSE(defector->decide(LeafIndex{7}, task).honest);
}

}  // namespace
}  // namespace ugc
