// In-process end-to-end coverage for the TCP transport: real loopback
// sockets, real poll loops, the unchanged SupervisorNode/ParticipantNode
// protocol — supervisor on the test thread, each worker on its own thread
// with its own TcpTransport (exactly the gridd/gridworker split, minus the
// processes). Runs under the ASan CI leg, which the process-level e2e
// script does not.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/cheating.h"
#include "grid/participant_node.h"
#include "grid/supervisor_node.h"
#include "net/socket.h"
#include "net/tcp_transport.h"

namespace ugc {
namespace {

net::TcpTransportOptions fast_options() {
  net::TcpTransportOptions options;
  // Everything is loopback: a tight quiescence timeout keeps the abort
  // paths reachable in test time without risking premature retries.
  options.quiescence_timeout_ms = 300;
  return options;
}

struct WorkerResult {
  std::map<TaskId, Verdict> verdicts;
  std::uint64_t evaluations = 0;
};

// Runs one gridworker-shaped participant until the supervisor hangs up.
WorkerResult run_worker(std::uint16_t port, const std::string& agent,
                        std::shared_ptr<const HonestyPolicy> policy) {
  ParticipantNode::Options options;
  options.policy = std::move(policy);
  ParticipantNode node(options);

  net::TcpTransport transport(fast_options());
  const GridNodeId self = transport.add_local(node);
  const GridNodeId supervisor = transport.connect("127.0.0.1", port);
  transport.send(self, supervisor, Hello{kGridProtocol, agent});

  bool supervisor_gone = false;
  transport.on_peer_disconnected = [&](GridNodeId) {
    supervisor_gone = true;
  };
  transport.run([&] { return supervisor_gone; });
  return WorkerResult{node.verdicts(), node.honest_evaluations()};
}

TEST(TcpTransport, FullSchemeExchangeCatchesTheCheater) {
  for (const std::string scheme : {"cbs", "ni-cbs"}) {
    net::TcpTransport server(fast_options());
    server.listen("127.0.0.1", 0);
    const std::uint16_t port = server.port();

    std::vector<WorkerResult> results(3);
    std::vector<std::thread> workers;
    workers.emplace_back([&, port] {
      results[0] = run_worker(port, "honest-a", nullptr);
    });
    workers.emplace_back([&, port] {
      results[1] = run_worker(port, "honest-b", nullptr);
    });
    workers.emplace_back([&, port] {
      results[2] = run_worker(port, "cheater",
                              make_semi_honest_cheater({0.5, 0.0, 1234}));
    });

    std::vector<GridNodeId> slots;
    std::map<std::uint32_t, std::string> agents;
    server.on_peer_hello = [&](GridNodeId peer, const Hello& hello) {
      slots.push_back(peer);
      agents[peer.value] = hello.agent;
    };
    server.run([&] { return slots.size() == 3; });

    SupervisorNode::Plan plan;
    plan.domain = Domain(0, 3 * 512);
    plan.workload = "test";
    plan.scheme.name = scheme;
    plan.seed = 42;
    SupervisorNode supervisor(plan, slots);
    server.add_local(supervisor);
    supervisor.start(server);
    server.run([&] { return supervisor.done(); });

    std::map<std::string, Verdict> by_agent;
    for (const SupervisorNode::TaskOutcome& outcome : supervisor.outcomes()) {
      by_agent[agents.at(outcome.peer.value)] = outcome.verdict;
    }
    server.close_all();
    for (std::thread& worker : workers) {
      worker.join();
    }

    ASSERT_EQ(by_agent.size(), 3u) << scheme;
    EXPECT_TRUE(by_agent.at("honest-a").accepted()) << scheme;
    EXPECT_TRUE(by_agent.at("honest-b").accepted()) << scheme;
    EXPECT_FALSE(by_agent.at("cheater").accepted()) << scheme;
    EXPECT_NE(by_agent.at("cheater").status, VerdictStatus::kAborted)
        << scheme << ": a cheater must be *accused*, not timed out";

    // The workers saw the same verdicts the supervisor settled on, and the
    // honest ones did the full domain's work.
    for (const WorkerResult& result : results) {
      ASSERT_EQ(result.verdicts.size(), 1u) << scheme;
    }
    EXPECT_TRUE(results[0].verdicts.begin()->second.accepted()) << scheme;
    EXPECT_TRUE(results[1].verdicts.begin()->second.accepted()) << scheme;
    EXPECT_FALSE(results[2].verdicts.begin()->second.accepted()) << scheme;
    EXPECT_GE(results[0].evaluations, 512u) << scheme;

    // Byte metering ran on both sides of every link.
    EXPECT_GT(server.stats().total_bytes, 0u) << scheme;
  }
}

TEST(TcpTransport, ProtocolMismatchDropsThePeer) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  bool dropped = false;
  bool greeted = false;
  server.on_peer_hello = [&](GridNodeId, const Hello&) { greeted = true; };
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };

  std::thread client([port] {
    net::TcpTransport transport(fast_options());
    struct : GridNode {
      void on_message(GridNodeId, const Message&, Transport&) override {}
    } sink;
    const GridNodeId self = transport.add_local(sink);
    const GridNodeId server_id = transport.connect("127.0.0.1", port);
    transport.send(self, server_id, Hello{999, "from-the-future"});
    bool gone = false;
    transport.on_peer_disconnected = [&](GridNodeId) { gone = true; };
    transport.run([&] { return gone; });
  });

  server.run([&] { return dropped; });
  server.close_all();
  client.join();
  EXPECT_TRUE(dropped);
  EXPECT_FALSE(greeted);
}

TEST(TcpTransport, ProtocolTrafficBeforeHelloDropsThePeer) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  bool dropped = false;
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };

  std::thread client([port] {
    net::TcpTransport transport(fast_options());
    struct : GridNode {
      void on_message(GridNodeId, const Message&, Transport&) override {}
    } sink;
    const GridNodeId self = transport.add_local(sink);
    const GridNodeId server_id = transport.connect("127.0.0.1", port);
    // No Hello: straight to (what claims to be) protocol traffic.
    transport.send(self, server_id, Commitment{TaskId{1}, 4, Bytes(32, 1)});
    bool gone = false;
    transport.on_peer_disconnected = [&](GridNodeId) { gone = true; };
    transport.run([&] { return gone; });
  });

  server.run([&] { return dropped; });
  server.close_all();
  client.join();
  EXPECT_TRUE(dropped);
}

TEST(TcpTransport, HostileFrameLengthDropsThePeerNotTheServer) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  bool dropped = false;
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };

  // A raw socket speaking garbage: a 0xffffffff length announcement.
  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  const Bytes hostile{0xff, 0xff, 0xff, 0xff, 0x00};
  (void)net::write_some(raw, hostile);

  server.run([&] { return dropped; });
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(server.connected_peers().empty());

  // The server must still accept and serve a well-behaved peer afterwards.
  bool greeted = false;
  server.on_peer_hello = [&](GridNodeId, const Hello&) { greeted = true; };
  std::thread client([port] {
    net::TcpTransport transport(fast_options());
    struct : GridNode {
      void on_message(GridNodeId, const Message&, Transport&) override {}
    } sink;
    const GridNodeId self = transport.add_local(sink);
    const GridNodeId server_id = transport.connect("127.0.0.1", port);
    transport.send(self, server_id, Hello{kGridProtocol, "fine"});
    bool gone = false;
    transport.on_peer_disconnected = [&](GridNodeId) { gone = true; };
    transport.run([&] { return gone; });
  });
  server.run([&] { return greeted; });
  server.close_all();
  client.join();
  EXPECT_TRUE(greeted);
}

TEST(TcpTransport, RepeatedHelloRegistersOnlyOnce) {
  // One connection is one worker slot: a cheater replaying Hello must not
  // fill a gridd's registration quota from a single connection.
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  std::size_t hellos = 0;
  bool dropped = false;
  server.on_peer_hello = [&](GridNodeId, const Hello&) { ++hellos; };
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };

  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  Bytes stream;
  for (int i = 0; i < 3; ++i) {
    net::append_frame(encode_message(Message{Hello{kGridProtocol, "dup"}}),
                      stream);
  }
  (void)net::write_some(raw, stream);
  raw.close();
  server.run([&] { return dropped; });
  server.close_all();
  EXPECT_EQ(hellos, 1u);
}

TEST(TcpTransport, UndecodableFramesAreCountedAndDropped) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  // A well-formed *frame* whose payload is not a decodable message, then a
  // clean disconnect.
  Bytes stream;
  net::append_frame(to_bytes("not a wire message"), stream);
  (void)net::write_some(raw, stream);
  raw.close();

  bool dropped = false;
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };
  server.run([&] { return dropped; });
  server.close_all();
  EXPECT_EQ(server.frames_undecodable(), 1u);
}

TEST(TcpTransport, MidFrameDisconnectCountsATruncatedStream) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  // Announce 100 bytes, send 3, vanish.
  const Bytes partial{100, 0, 0, 0, 0xaa, 0xbb, 0xcc};
  (void)net::write_some(raw, partial);
  raw.close();

  bool dropped = false;
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };
  server.run([&] { return dropped; });
  server.close_all();
  EXPECT_EQ(server.streams_truncated(), 1u);
}

TEST(TcpTransport, SendToAVanishedPeerIsAQuietNoOp) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  struct : GridNode {
    void on_message(GridNodeId, const Message&, Transport&) override {}
  } sink;
  const GridNodeId self = server.add_local(sink);

  GridNodeId peer{};
  bool greeted = false;
  server.on_peer_hello = [&](GridNodeId id, const Hello&) {
    peer = id;
    greeted = true;
  };
  {
    net::Socket raw = net::tcp_connect("127.0.0.1", port);
    Bytes stream;
    net::append_frame(encode_message(Message{Hello{kGridProtocol, "w"}}),
                      stream);
    (void)net::write_some(raw, stream);
    server.run([&] { return greeted; });
    // raw closes here: the peer vanishes.
  }
  bool dropped = false;
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };
  server.run([&] { return dropped; });

  // Both sends must be loss, not crash: one to the reaped peer, one to a
  // never-seen id (the latter is a programming error and throws).
  server.send(self, peer, Verdict{TaskId{1}, VerdictStatus::kAborted,
                                  std::nullopt, "gone"});
  EXPECT_THROW(server.send(self, GridNodeId{12345},
                           Verdict{TaskId{1}, VerdictStatus::kAborted,
                                   std::nullopt, "never existed"}),
               Error);
  server.close_all();
}

}  // namespace
}  // namespace ugc
