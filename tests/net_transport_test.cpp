// In-process end-to-end coverage for the TCP transport: real loopback
// sockets, real poll loops, the unchanged SupervisorNode/ParticipantNode
// protocol — supervisor on the test thread, each worker on its own thread
// with its own TcpTransport (exactly the gridd/gridworker split, minus the
// processes). Runs under the ASan CI leg, which the process-level e2e
// script does not.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "auth/handshake.h"
#include "auth/identity.h"
#include "core/cheating.h"
#include "grid/participant_node.h"
#include "grid/supervisor_node.h"
#include "net/socket.h"
#include "net/tcp_transport.h"

namespace ugc {
namespace {

net::TcpTransportOptions fast_options() {
  net::TcpTransportOptions options;
  // Everything is loopback: a tight quiescence timeout keeps the abort
  // paths reachable in test time without risking premature retries.
  options.quiescence_timeout_ms = 300;
  // The whole suite runs once per event-engine backend: the default run
  // exercises kAuto (epoll on Linux), and CTest re-runs it with
  // UGC_NET_ENGINE=poll (see CMakeLists) so every transport behavior here
  // is proven backend-independent.
  if (const char* engine = std::getenv("UGC_NET_ENGINE")) {
    options.engine = net::parse_engine_backend(engine);
  }
  return options;
}

struct WorkerResult {
  std::map<TaskId, Verdict> verdicts;
  std::uint64_t evaluations = 0;
};

// Runs one gridworker-shaped participant until the supervisor hangs up.
WorkerResult run_worker(std::uint16_t port, const std::string& agent,
                        std::shared_ptr<const HonestyPolicy> policy) {
  ParticipantNode::Options options;
  options.policy = std::move(policy);
  ParticipantNode node(options);

  net::TcpTransport transport(fast_options());
  const GridNodeId self = transport.add_local(node);
  const GridNodeId supervisor = transport.connect("127.0.0.1", port);
  transport.send(self, supervisor, Hello{kGridProtocol, agent});

  bool supervisor_gone = false;
  transport.on_peer_disconnected = [&](GridNodeId) {
    supervisor_gone = true;
  };
  transport.run([&] { return supervisor_gone; });
  return WorkerResult{node.verdicts(), node.honest_evaluations()};
}

TEST(TcpTransport, FullSchemeExchangeCatchesTheCheater) {
  for (const std::string scheme : {"cbs", "ni-cbs"}) {
    net::TcpTransport server(fast_options());
    server.listen("127.0.0.1", 0);
    const std::uint16_t port = server.port();

    std::vector<WorkerResult> results(3);
    std::vector<std::thread> workers;
    workers.emplace_back([&, port] {
      results[0] = run_worker(port, "honest-a", nullptr);
    });
    workers.emplace_back([&, port] {
      results[1] = run_worker(port, "honest-b", nullptr);
    });
    workers.emplace_back([&, port] {
      results[2] = run_worker(port, "cheater",
                              make_semi_honest_cheater({0.5, 0.0, 1234}));
    });

    std::vector<GridNodeId> slots;
    std::map<std::uint32_t, std::string> agents;
    server.on_peer_hello = [&](GridNodeId peer, const Hello& hello) {
      slots.push_back(peer);
      agents[peer.value] = hello.agent;
    };
    server.run([&] { return slots.size() == 3; });

    SupervisorNode::Plan plan;
    plan.domain = Domain(0, 3 * 512);
    plan.workload = "test";
    plan.scheme.name = scheme;
    plan.seed = 42;
    SupervisorNode supervisor(plan, slots);
    server.add_local(supervisor);
    supervisor.start(server);
    server.run([&] { return supervisor.done(); });

    std::map<std::string, Verdict> by_agent;
    for (const SupervisorNode::TaskOutcome& outcome : supervisor.outcomes()) {
      by_agent[agents.at(outcome.peer.value)] = outcome.verdict;
    }
    server.close_all();
    for (std::thread& worker : workers) {
      worker.join();
    }

    ASSERT_EQ(by_agent.size(), 3u) << scheme;
    EXPECT_TRUE(by_agent.at("honest-a").accepted()) << scheme;
    EXPECT_TRUE(by_agent.at("honest-b").accepted()) << scheme;
    EXPECT_FALSE(by_agent.at("cheater").accepted()) << scheme;
    EXPECT_NE(by_agent.at("cheater").status, VerdictStatus::kAborted)
        << scheme << ": a cheater must be *accused*, not timed out";

    // The workers saw the same verdicts the supervisor settled on, and the
    // honest ones did the full domain's work.
    for (const WorkerResult& result : results) {
      ASSERT_EQ(result.verdicts.size(), 1u) << scheme;
    }
    EXPECT_TRUE(results[0].verdicts.begin()->second.accepted()) << scheme;
    EXPECT_TRUE(results[1].verdicts.begin()->second.accepted()) << scheme;
    EXPECT_FALSE(results[2].verdicts.begin()->second.accepted()) << scheme;
    EXPECT_GE(results[0].evaluations, 512u) << scheme;

    // Byte metering ran on both sides of every link.
    EXPECT_GT(server.stats().total_bytes, 0u) << scheme;
  }
}

TEST(TcpTransport, ProtocolMismatchDropsThePeer) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  bool dropped = false;
  bool greeted = false;
  server.on_peer_hello = [&](GridNodeId, const Hello&) { greeted = true; };
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };

  std::thread client([port] {
    net::TcpTransport transport(fast_options());
    struct : GridNode {
      void on_message(GridNodeId, const Message&, Transport&) override {}
    } sink;
    const GridNodeId self = transport.add_local(sink);
    const GridNodeId server_id = transport.connect("127.0.0.1", port);
    transport.send(self, server_id, Hello{999, "from-the-future"});
    bool gone = false;
    transport.on_peer_disconnected = [&](GridNodeId) { gone = true; };
    transport.run([&] { return gone; });
  });

  server.run([&] { return dropped; });
  server.close_all();
  client.join();
  EXPECT_TRUE(dropped);
  EXPECT_FALSE(greeted);
}

TEST(TcpTransport, ProtocolTrafficBeforeHelloDropsThePeer) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  bool dropped = false;
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };

  std::thread client([port] {
    net::TcpTransport transport(fast_options());
    struct : GridNode {
      void on_message(GridNodeId, const Message&, Transport&) override {}
    } sink;
    const GridNodeId self = transport.add_local(sink);
    const GridNodeId server_id = transport.connect("127.0.0.1", port);
    // No Hello: straight to (what claims to be) protocol traffic.
    transport.send(self, server_id, Commitment{TaskId{1}, 4, Bytes(32, 1)});
    bool gone = false;
    transport.on_peer_disconnected = [&](GridNodeId) { gone = true; };
    transport.run([&] { return gone; });
  });

  server.run([&] { return dropped; });
  server.close_all();
  client.join();
  EXPECT_TRUE(dropped);
}

TEST(TcpTransport, HostileFrameLengthDropsThePeerNotTheServer) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  bool dropped = false;
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };

  // A raw socket speaking garbage: a 0xffffffff length announcement.
  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  const Bytes hostile{0xff, 0xff, 0xff, 0xff, 0x00};
  (void)net::write_some(raw, hostile);

  server.run([&] { return dropped; });
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(server.connected_peers().empty());

  // The server must still accept and serve a well-behaved peer afterwards.
  bool greeted = false;
  server.on_peer_hello = [&](GridNodeId, const Hello&) { greeted = true; };
  std::thread client([port] {
    net::TcpTransport transport(fast_options());
    struct : GridNode {
      void on_message(GridNodeId, const Message&, Transport&) override {}
    } sink;
    const GridNodeId self = transport.add_local(sink);
    const GridNodeId server_id = transport.connect("127.0.0.1", port);
    transport.send(self, server_id, Hello{kGridProtocol, "fine"});
    bool gone = false;
    transport.on_peer_disconnected = [&](GridNodeId) { gone = true; };
    transport.run([&] { return gone; });
  });
  server.run([&] { return greeted; });
  server.close_all();
  client.join();
  EXPECT_TRUE(greeted);
}

TEST(TcpTransport, RepeatedHelloRegistersOnlyOnce) {
  // One connection is one worker slot: a cheater replaying Hello must not
  // fill a gridd's registration quota from a single connection.
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  std::size_t hellos = 0;
  bool dropped = false;
  server.on_peer_hello = [&](GridNodeId, const Hello&) { ++hellos; };
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };

  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  Bytes stream;
  for (int i = 0; i < 3; ++i) {
    net::append_frame(encode_message(Message{Hello{kGridProtocol, "dup"}}),
                      stream);
  }
  (void)net::write_some(raw, stream);
  raw.close();
  server.run([&] { return dropped; });
  server.close_all();
  EXPECT_EQ(hellos, 1u);
}

TEST(TcpTransport, UndecodableFramesAreCountedAndDropped) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  // A well-formed *frame* whose payload is not a decodable message, then a
  // clean disconnect.
  Bytes stream;
  net::append_frame(to_bytes("not a wire message"), stream);
  (void)net::write_some(raw, stream);
  raw.close();

  bool dropped = false;
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };
  server.run([&] { return dropped; });
  server.close_all();
  EXPECT_EQ(server.frames_undecodable(), 1u);
}

TEST(TcpTransport, MidFrameDisconnectCountsATruncatedStream) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  // Announce 100 bytes, send 3, vanish.
  const Bytes partial{100, 0, 0, 0, 0xaa, 0xbb, 0xcc};
  (void)net::write_some(raw, partial);
  raw.close();

  bool dropped = false;
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };
  server.run([&] { return dropped; });
  server.close_all();
  EXPECT_EQ(server.streams_truncated(), 1u);
}

TEST(TcpTransport, SendToAVanishedPeerIsAQuietNoOp) {
  net::TcpTransport server(fast_options());
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  struct : GridNode {
    void on_message(GridNodeId, const Message&, Transport&) override {}
  } sink;
  const GridNodeId self = server.add_local(sink);

  GridNodeId peer{};
  bool greeted = false;
  server.on_peer_hello = [&](GridNodeId id, const Hello&) {
    peer = id;
    greeted = true;
  };
  {
    net::Socket raw = net::tcp_connect("127.0.0.1", port);
    Bytes stream;
    net::append_frame(encode_message(Message{Hello{kGridProtocol, "w"}}),
                      stream);
    (void)net::write_some(raw, stream);
    server.run([&] { return greeted; });
    // raw closes here: the peer vanishes.
  }
  bool dropped = false;
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };
  server.run([&] { return dropped; });

  // Both sends must be loss, not crash: one to the reaped peer, one to a
  // never-seen id (the latter is a programming error and throws).
  server.send(self, peer, Verdict{TaskId{1}, VerdictStatus::kAborted,
                                  std::nullopt, "gone"});
  EXPECT_THROW(server.send(self, GridNodeId{12345},
                           Verdict{TaskId{1}, VerdictStatus::kAborted,
                                   std::nullopt, "never existed"}),
               Error);
  server.close_all();
}

// ------------------------------------------------- authenticated handshake

// Blocking helpers for raw-socket peers (the sockets are non-blocking).
Message read_message_blocking(net::Socket& socket) {
  net::FrameDecoder decoder;
  std::uint8_t buffer[4096];
  for (int spins = 0; spins < 2000; ++spins) {
    const net::IoResult result =
        net::read_some(socket, std::span<std::uint8_t>(buffer));
    if (result.status == net::IoStatus::kOk) {
      decoder.feed(BytesView(buffer, result.bytes));
      if (const auto frame = decoder.next()) {
        return decode_message(*frame);
      }
      continue;
    }
    if (result.status == net::IoStatus::kWouldBlock) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    throw Error("peer closed before a full frame arrived");
  }
  throw Error("timed out waiting for a frame");
}

void write_frame_blocking(net::Socket& socket, const Message& message) {
  Bytes stream;
  net::append_frame(encode_message(message), stream);
  std::size_t sent = 0;
  while (sent < stream.size()) {
    const net::IoResult result =
        net::write_some(socket, BytesView(stream).subspan(sent));
    if (result.status == net::IoStatus::kOk) {
      sent += result.bytes;
    } else if (result.status == net::IoStatus::kWouldBlock) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    } else {
      throw Error("peer closed mid-write");
    }
  }
}

void drain_until_closed(net::Socket& socket) {
  std::uint8_t buffer[4096];
  for (int spins = 0; spins < 2000; ++spins) {
    const net::IoResult result =
        net::read_some(socket, std::span<std::uint8_t>(buffer));
    if (result.status == net::IoStatus::kClosed ||
        result.status == net::IoStatus::kError) {
      return;
    }
    if (result.status == net::IoStatus::kWouldBlock) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

TEST(TcpTransportAuth, AuthenticatedExchangeEstablishesDurableIdentity) {
  net::TcpTransport server(fast_options());
  server.require_auth({});
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  Rng rng(77);
  const auth::WorkerIdentity identity = auth::WorkerIdentity::generate(rng);

  WorkerResult result;
  std::thread worker([&, port] {
    ParticipantNode::Options options;
    ParticipantNode node(options);
    net::TcpTransport transport(fast_options());
    transport.use_identity(identity, "worker-auth");
    transport.add_local(node);
    transport.connect("127.0.0.1", port);
    bool gone = false;
    transport.on_peer_disconnected = [&](GridNodeId) { gone = true; };
    transport.run([&] { return gone; });
    result = WorkerResult{node.verdicts(), node.honest_evaluations()};
  });

  std::vector<GridNodeId> slots;
  std::optional<auth::AuthInfo> seen;
  std::optional<Hello> hello_seen;
  server.on_peer_authenticated = [&](GridNodeId peer,
                                     const auth::AuthInfo& info) {
    slots.push_back(peer);
    seen = info;
  };
  server.on_peer_hello = [&](GridNodeId, const Hello& hello) {
    hello_seen = hello;
  };
  server.run([&] { return slots.size() == 1; });

  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->worker_id, identity.id());
  EXPECT_EQ(seen->agent, "worker-auth");
  // The synthesized Hello keeps hello-driven callers working unchanged.
  ASSERT_TRUE(hello_seen.has_value());
  EXPECT_EQ(hello_seen->agent, "worker-auth");
  ASSERT_TRUE(server.auth_of(slots[0]).has_value());
  EXPECT_EQ(server.auth_of(slots[0])->worker_id, identity.id());

  // The scheme runs unchanged on top of the authenticated connection.
  SupervisorNode::Plan plan;
  plan.domain = Domain(0, 512);
  plan.workload = "test";
  plan.scheme.name = "cbs";
  plan.seed = 5;
  SupervisorNode supervisor(plan, slots);
  server.add_local(supervisor);
  supervisor.start(server);
  server.run([&] { return supervisor.done(); });
  server.close_all();
  worker.join();

  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_TRUE(result.verdicts.begin()->second.accepted());
  EXPECT_EQ(server.handshakes_refused(), 0u);
}

TEST(TcpTransportAuth, ForgedProofIsRefused) {
  net::TcpTransport server(fast_options());
  server.require_auth({});
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  Rng rng(78);
  const auth::WorkerIdentity identity = auth::WorkerIdentity::generate(rng);
  std::thread attacker([&, port] {
    net::Socket raw = net::tcp_connect("127.0.0.1", port);
    const auto challenge =
        std::get<HelloChallenge>(read_message_blocking(raw));
    HelloProof proof = auth::make_hello_proof(identity, challenge.nonce,
                                              kGridProtocol, "forger");
    proof.mac[0] ^= 1;
    write_frame_blocking(raw, Message{proof});
    drain_until_closed(raw);
  });

  std::optional<auth::HandshakeStatus> refused;
  bool dropped = false;
  server.on_auth_refused = [&](GridNodeId, auth::HandshakeStatus status,
                               const auth::AuthInfo&) { refused = status; };
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };
  server.run([&] { return dropped; });
  server.close_all();
  attacker.join();

  EXPECT_EQ(refused, auth::HandshakeStatus::kBadMac);
  EXPECT_EQ(server.handshakes_refused(), 1u);
  EXPECT_TRUE(server.connected_peers().empty());
}

TEST(TcpTransportAuth, ReplayedStaleProofIsRefused) {
  net::TcpTransport server(fast_options());
  server.require_auth({});
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  Rng rng(79);
  const auth::WorkerIdentity identity = auth::WorkerIdentity::generate(rng);
  std::thread attacker([&, port] {
    // First connection: a perfectly honest handshake, recorded.
    net::Socket first = net::tcp_connect("127.0.0.1", port);
    const auto challenge1 =
        std::get<HelloChallenge>(read_message_blocking(first));
    const HelloProof recorded = auth::make_hello_proof(
        identity, challenge1.nonce, kGridProtocol, "victim");
    write_frame_blocking(first, Message{recorded});

    // Second connection: replay the recorded proof against a fresh nonce.
    net::Socket second = net::tcp_connect("127.0.0.1", port);
    const auto challenge2 =
        std::get<HelloChallenge>(read_message_blocking(second));
    EXPECT_NE(challenge1.nonce, challenge2.nonce)
        << "nonces must be fresh per connection";
    write_frame_blocking(second, Message{recorded});
    drain_until_closed(second);
    first.close();
  });

  std::size_t authenticated = 0;
  std::optional<auth::HandshakeStatus> refused;
  server.on_peer_authenticated = [&](GridNodeId, const auth::AuthInfo&) {
    ++authenticated;
  };
  server.on_auth_refused = [&](GridNodeId, auth::HandshakeStatus status,
                               const auth::AuthInfo&) { refused = status; };
  server.run([&] { return refused.has_value(); });
  server.close_all();
  attacker.join();

  EXPECT_EQ(authenticated, 1u) << "the original handshake was genuine";
  EXPECT_EQ(refused, auth::HandshakeStatus::kBadMac)
      << "a stale proof must not bind a fresh nonce";
  EXPECT_EQ(server.handshakes_refused(), 1u);
}

TEST(TcpTransportAuth, BannedIdentityIsRefusedAtHello) {
  Rng rng(80);
  const auth::WorkerIdentity identity = auth::WorkerIdentity::generate(rng);

  net::TcpTransport server(fast_options());
  net::AuthOptions auth_options;
  auth_options.is_banned = [&](const auth::WorkerId& id) {
    return id == identity.id();
  };
  server.require_auth(std::move(auth_options));
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  std::thread worker([&, port] {
    struct : GridNode {
      void on_message(GridNodeId, const Message&, Transport&) override {}
    } sink;
    net::TcpTransport transport(fast_options());
    transport.use_identity(identity, "banned-worker");
    transport.add_local(sink);
    transport.connect("127.0.0.1", port);
    bool gone = false;
    transport.on_peer_disconnected = [&](GridNodeId) { gone = true; };
    transport.run([&] { return gone; });
  });

  std::optional<auth::HandshakeStatus> refused;
  std::optional<auth::AuthInfo> info;
  server.on_auth_refused = [&](GridNodeId, auth::HandshakeStatus status,
                               const auth::AuthInfo& who) {
    refused = status;
    info = who;
  };
  server.run([&] { return refused.has_value(); });
  server.close_all();
  worker.join();

  EXPECT_EQ(refused, auth::HandshakeStatus::kBanned);
  // The proof verified, so the refusal names the banned identity.
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->worker_id, identity.id());
  EXPECT_EQ(info->agent, "banned-worker");
  EXPECT_EQ(server.handshakes_refused(), 1u);
}

TEST(TcpTransportAuth, PlainHelloIsRefusedWhenAuthIsRequired) {
  net::TcpTransport server(fast_options());
  server.require_auth({});
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  Bytes stream;
  net::append_frame(encode_message(Message{Hello{kGridProtocol, "legacy"}}),
                    stream);
  (void)net::write_some(raw, stream);

  std::optional<auth::HandshakeStatus> refused;
  bool greeted = false;
  server.on_peer_hello = [&](GridNodeId, const Hello&) { greeted = true; };
  server.on_auth_refused = [&](GridNodeId, auth::HandshakeStatus status,
                               const auth::AuthInfo&) { refused = status; };
  server.run([&] { return refused.has_value(); });
  server.close_all();

  EXPECT_EQ(refused, auth::HandshakeStatus::kUnauthenticated);
  EXPECT_FALSE(greeted);
  EXPECT_EQ(server.handshakes_refused(), 1u);
}

TEST(TcpTransportAuth, SchemeTrafficBeforeProofIsRefused) {
  net::TcpTransport server(fast_options());
  server.require_auth({});
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  Bytes stream;
  net::append_frame(
      encode_message(Message{Commitment{TaskId{1}, 4, Bytes(32, 1)}}),
      stream);
  (void)net::write_some(raw, stream);

  std::optional<auth::HandshakeStatus> refused;
  server.on_auth_refused = [&](GridNodeId, auth::HandshakeStatus status,
                               const auth::AuthInfo&) { refused = status; };
  server.run([&] { return refused.has_value(); });
  server.close_all();

  EXPECT_EQ(refused, auth::HandshakeStatus::kUnauthenticated);
  EXPECT_EQ(server.handshakes_refused(), 1u);
}

}  // namespace
}  // namespace ugc
