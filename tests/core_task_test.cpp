#include <gtest/gtest.h>

#include "core/task.h"
#include "test_util.h"

namespace ugc {
namespace {

using ugc::testing::ModScreener;
using ugc::testing::TestFunction;

TEST(Domain, BasicProperties) {
  const Domain d(10, 20);
  EXPECT_EQ(d.begin(), 10u);
  EXPECT_EQ(d.end(), 20u);
  EXPECT_EQ(d.size(), 10u);
  EXPECT_TRUE(d.contains(10));
  EXPECT_TRUE(d.contains(19));
  EXPECT_FALSE(d.contains(20));
  EXPECT_FALSE(d.contains(9));
}

TEST(Domain, InputMapsIndexToValue) {
  const Domain d(100, 200);
  EXPECT_EQ(d.input(LeafIndex{0}), 100u);
  EXPECT_EQ(d.input(LeafIndex{99}), 199u);
  EXPECT_THROW(d.input(LeafIndex{100}), Error);
}

TEST(Domain, EmptyIntervalRejected) {
  EXPECT_THROW(Domain(5, 5), Error);
  EXPECT_THROW(Domain(6, 5), Error);
}

TEST(Domain, SplitEven) {
  const Domain d(0, 100);
  const auto parts = d.split(4);
  ASSERT_EQ(parts.size(), 4u);
  for (const Domain& p : parts) {
    EXPECT_EQ(p.size(), 25u);
  }
  EXPECT_EQ(parts[0].begin(), 0u);
  EXPECT_EQ(parts[3].end(), 100u);
}

TEST(Domain, SplitUnevenDistributesRemainder) {
  const Domain d(0, 10);
  const auto parts = d.split(3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 4u);
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 3u);
  // Contiguous cover.
  EXPECT_EQ(parts[0].end(), parts[1].begin());
  EXPECT_EQ(parts[1].end(), parts[2].begin());
}

TEST(Domain, SplitSinglePart) {
  const Domain d(3, 9);
  const auto parts = d.split(1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], d);
}

TEST(Domain, SplitRejectsInvalid) {
  const Domain d(0, 4);
  EXPECT_THROW(d.split(0), Error);
  EXPECT_THROW(d.split(5), Error);  // more parts than inputs
}

TEST(ComputeFunction, TestFunctionDeterministicFixedWidth) {
  const TestFunction f(12);
  EXPECT_EQ(f.evaluate(7), f.evaluate(7));
  EXPECT_NE(f.evaluate(7), f.evaluate(8));
  EXPECT_EQ(f.evaluate(7).size(), 12u);
  EXPECT_EQ(f.result_size(), 12u);
}

TEST(ComputeFunction, SaltChangesOutputs) {
  const TestFunction a(16, 1);
  const TestFunction b(16, 2);
  EXPECT_NE(a.evaluate(7), b.evaluate(7));
}

TEST(CountingComputeFunction, CountsCalls) {
  auto counting =
      std::make_shared<CountingComputeFunction>(std::make_shared<TestFunction>());
  EXPECT_EQ(counting->calls(), 0u);
  counting->evaluate(1);
  counting->evaluate(2);
  EXPECT_EQ(counting->calls(), 2u);
  counting->reset_calls();
  EXPECT_EQ(counting->calls(), 0u);
}

TEST(CountingComputeFunction, ForwardsBehaviour) {
  const TestFunction plain(16);
  const CountingComputeFunction counting(std::make_shared<TestFunction>(16));
  EXPECT_EQ(counting.evaluate(9), plain.evaluate(9));
  EXPECT_EQ(counting.result_size(), plain.result_size());
  EXPECT_EQ(counting.name(), plain.name());
}

TEST(CountingComputeFunction, RejectsNull) {
  EXPECT_THROW(CountingComputeFunction(nullptr), Error);
}

TEST(Screener, NullScreenerReportsNothing) {
  const NullScreener s;
  EXPECT_EQ(s.screen(0, Bytes{}), std::nullopt);
  EXPECT_EQ(s.screen(42, to_bytes("anything")), std::nullopt);
}

TEST(Screener, ModScreenerReportsMultiples) {
  const ModScreener s(5);
  EXPECT_TRUE(s.screen(10, Bytes{}).has_value());
  EXPECT_FALSE(s.screen(11, Bytes{}).has_value());
  EXPECT_EQ(*s.screen(15, Bytes{}), "hit:15");
}

TEST(Task, MakeDefaultsToNullScreener) {
  const Task t = Task::make(TaskId{1}, Domain(0, 10),
                            std::make_shared<TestFunction>());
  ASSERT_NE(t.screener, nullptr);
  EXPECT_EQ(t.screener->name(), "null");
}

TEST(Task, MakeRequiresComputeFunction) {
  EXPECT_THROW(Task::make(TaskId{1}, Domain(0, 10), nullptr), Error);
}

TEST(RecomputeVerifier, AcceptsCorrectResult) {
  const auto f = std::make_shared<TestFunction>();
  const RecomputeVerifier v(f);
  EXPECT_TRUE(v.verify(5, f->evaluate(5)));
}

TEST(RecomputeVerifier, RejectsWrongResult) {
  const auto f = std::make_shared<TestFunction>();
  const RecomputeVerifier v(f);
  Bytes wrong = f->evaluate(5);
  wrong[0] ^= 0xff;
  EXPECT_FALSE(v.verify(5, wrong));
  EXPECT_FALSE(v.verify(5, f->evaluate(6)));
  EXPECT_FALSE(v.verify(5, Bytes{}));
}

TEST(RecomputeVerifier, RejectsNullFunction) {
  EXPECT_THROW(RecomputeVerifier(nullptr), Error);
}

}  // namespace
}  // namespace ugc
