// Direct unit tests for the participant engine and the shared Step-4
// verification helper — the pieces the protocol endpoints are built from.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/verification.h"
#include "crypto/sha256.h"
#include "test_util.h"

namespace ugc {
namespace {

using ugc::testing::make_test_task;
using ugc::testing::ModScreener;

TEST(LeafFromResult, RawModeIsIdentity) {
  const Bytes result = to_bytes("some result bytes");
  EXPECT_EQ(ParticipantEngine::leaf_from_result(result, LeafMode::kRaw,
                                                default_hash()),
            result);
}

TEST(LeafFromResult, HashedModeHashes) {
  const Bytes result = to_bytes("some result bytes");
  EXPECT_EQ(ParticipantEngine::leaf_from_result(result, LeafMode::kHashed,
                                                default_hash()),
            Sha256::hash(result).to_bytes());
}

TEST(Engine, CommitIsIdempotentAndMetersOneSweep) {
  ParticipantEngine engine(make_test_task(64), TreeSettings{},
                           make_honest_policy());
  const Commitment first = engine.commit();
  const Commitment second = engine.commit();
  EXPECT_EQ(first, second);
  EXPECT_EQ(engine.metrics().honest_evaluations, 64u);
  EXPECT_EQ(engine.metrics().guessed_leaves, 0u);
}

TEST(Engine, CommitmentEchoesTaskAndSize) {
  ParticipantEngine engine(make_test_task(33, /*id=*/9), TreeSettings{},
                           make_honest_policy());
  const Commitment commitment = engine.commit();
  EXPECT_EQ(commitment.task, TaskId{9});
  EXPECT_EQ(commitment.leaf_count, 33u);
  EXPECT_EQ(commitment.root.size(), 32u);  // sha256 digest
}

TEST(Engine, ProveBeforeCommitThrows) {
  ParticipantEngine engine(make_test_task(8), TreeSettings{},
                           make_honest_policy());
  const std::vector<LeafIndex> samples = {LeafIndex{0}};
  EXPECT_THROW(engine.prove(samples), Error);
  EXPECT_THROW(engine.prove_batch(samples), Error);
}

TEST(Engine, ProveRejectsOutOfDomainSamples) {
  ParticipantEngine engine(make_test_task(8), TreeSettings{},
                           make_honest_policy());
  engine.commit();
  const std::vector<LeafIndex> samples = {LeafIndex{8}};
  EXPECT_THROW(engine.prove(samples), Error);
}

TEST(Engine, ProveBatchRejectsEmptySampleSet) {
  ParticipantEngine engine(make_test_task(8), TreeSettings{},
                           make_honest_policy());
  engine.commit();
  EXPECT_THROW(engine.prove_batch(std::vector<LeafIndex>{}), Error);
}

TEST(Engine, CheaterMetricsSplitHonestAndGuessed) {
  ParticipantEngine engine(make_test_task(1000), TreeSettings{},
                           make_semi_honest_cheater({0.5, 0.0, 3}));
  engine.commit();
  const auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.honest_evaluations + metrics.guessed_leaves, 1000u);
  EXPECT_NEAR(static_cast<double>(metrics.honest_evaluations), 500.0, 80.0);
}

TEST(Engine, ScreenerHitsComeFromClaimedValues) {
  // The cheater screens what it *claims* — S(x, f̌(x)). With an x-based
  // screener the hits still fire for guessed leaves.
  const Task task =
      make_test_task(50, 1, 16, std::make_shared<ModScreener>(10));
  ParticipantEngine engine(task, TreeSettings{},
                           make_semi_honest_cheater({0.0, 0.0, 7}));
  engine.commit();
  EXPECT_EQ(engine.hits().size(), 5u);  // 1000, 1010, ..., 1040
}

TEST(Engine, RebuildMeterTracksPartialStorageProofs) {
  TreeSettings settings;
  settings.storage_subtree_height = 3;
  ParticipantEngine engine(make_test_task(64), settings,
                           make_honest_policy());
  engine.commit();
  const std::vector<LeafIndex> samples = {LeafIndex{0}, LeafIndex{63}};
  engine.prove(samples);
  EXPECT_EQ(engine.metrics().rebuild_evaluations, 2u << 3);
}

TEST(Engine, HashedModeProofCarriesPreimage) {
  TreeSettings settings;
  settings.leaf_mode = LeafMode::kHashed;
  const Task task = make_test_task(16);
  ParticipantEngine engine(task, settings, make_honest_policy());
  engine.commit();
  const std::vector<LeafIndex> samples = {LeafIndex{4}};
  const auto proofs = engine.prove(samples);
  ASSERT_EQ(proofs.size(), 1u);
  // The result is the raw f(x), not its hash.
  EXPECT_EQ(proofs[0].result,
            task.f->evaluate(task.domain.input(LeafIndex{4})));
}

TEST(Engine, RequiresPolicy) {
  EXPECT_THROW(
      ParticipantEngine(make_test_task(4), TreeSettings{}, nullptr), Error);
}

// ------------------------------------------------- verification helper

class VerificationHelper : public ::testing::Test {
 protected:
  VerificationHelper()
      : task_(make_test_task(64)),
        verifier_(std::make_shared<RecomputeVerifier>(task_.f)),
        engine_(task_, TreeSettings{}, make_honest_policy()) {
    commitment_ = engine_.commit();
    samples_ = {LeafIndex{1}, LeafIndex{30}, LeafIndex{63}};
    response_.task = task_.id;
    response_.proofs = engine_.prove(samples_);
  }

  Task task_;
  std::shared_ptr<const ResultVerifier> verifier_;
  ParticipantEngine engine_;
  Commitment commitment_;
  std::vector<LeafIndex> samples_;
  ProofResponse response_;
};

TEST_F(VerificationHelper, AcceptsMatchingResponse) {
  SupervisorMetrics metrics;
  const Verdict verdict =
      verify_sample_proofs(task_, TreeSettings{}, commitment_, samples_,
                           response_, *verifier_, &metrics);
  EXPECT_TRUE(verdict.accepted());
  EXPECT_EQ(metrics.results_verified, 3u);
  EXPECT_EQ(metrics.roots_reconstructed, 3u);
}

TEST_F(VerificationHelper, MetricsStopAtFirstFailure) {
  response_.proofs[1].result[0] ^= 0xff;
  SupervisorMetrics metrics;
  const Verdict verdict =
      verify_sample_proofs(task_, TreeSettings{}, commitment_, samples_,
                           response_, *verifier_, &metrics);
  EXPECT_EQ(verdict.status, VerdictStatus::kWrongResult);
  EXPECT_EQ(verdict.failed_sample, samples_[1]);
  EXPECT_EQ(metrics.results_verified, 2u);     // stopped at sample 1
  EXPECT_EQ(metrics.roots_reconstructed, 1u);  // only sample 0 reached Λ
}

TEST_F(VerificationHelper, NullMetricsAllowed) {
  EXPECT_TRUE(verify_sample_proofs(task_, TreeSettings{}, commitment_,
                                   samples_, response_, *verifier_, nullptr)
                  .accepted());
}

TEST_F(VerificationHelper, CommitmentForWrongTaskRejected) {
  commitment_.task = TaskId{99};
  EXPECT_EQ(verify_sample_proofs(task_, TreeSettings{}, commitment_, samples_,
                                 response_, *verifier_)
                .status,
            VerdictStatus::kMalformed);
}

TEST_F(VerificationHelper, SettingsMismatchIsRootMismatch) {
  // Supervisor expecting hashed leaves cannot validate a raw-leaf tree.
  TreeSettings hashed;
  hashed.leaf_mode = LeafMode::kHashed;
  const Verdict verdict = verify_sample_proofs(
      task_, hashed, commitment_, samples_, response_, *verifier_);
  EXPECT_EQ(verdict.status, VerdictStatus::kRootMismatch);
}

}  // namespace
}  // namespace ugc
