#include <gtest/gtest.h>

#include "grid/latency.h"
#include "grid/reputation.h"

namespace ugc {
namespace {

// --------------------------------------------------------------- ledger

TEST(ReputationLedger, PriorTrustBeforeObservations) {
  ReputationLedger ledger({1.0, 1.0, 0.5, 2});
  EXPECT_DOUBLE_EQ(ledger.trust(0), 0.5);
  EXPECT_EQ(ledger.observations(0), 0u);
  EXPECT_FALSE(ledger.banned(0));
}

TEST(ReputationLedger, PosteriorTracksOutcomes) {
  ReputationLedger ledger({1.0, 1.0, 0.5, 2});
  ledger.record(7, true);
  ledger.record(7, true);
  ledger.record(7, true);
  EXPECT_NEAR(ledger.trust(7), 4.0 / 5.0, 1e-12);  // Beta(4,1)
  ledger.record(7, false);
  EXPECT_NEAR(ledger.trust(7), 4.0 / 6.0, 1e-12);  // Beta(4,2)
}

TEST(ReputationLedger, BanRequiresMinObservations) {
  ReputationLedger ledger({1.0, 1.0, 0.5, 3});
  ledger.record(1, false);
  ledger.record(1, false);
  EXPECT_FALSE(ledger.banned(1));  // only 2 observations
  ledger.record(1, false);
  EXPECT_TRUE(ledger.banned(1));   // Beta(1,4) mean = 0.2 < 0.5
}

TEST(ReputationLedger, ConsistentAcceptanceNeverBans) {
  ReputationLedger ledger({1.0, 1.0, 0.5, 2});
  for (int i = 0; i < 50; ++i) {
    ledger.record(2, true);
  }
  EXPECT_FALSE(ledger.banned(2));
  EXPECT_GT(ledger.trust(2), 0.95);
}

TEST(ReputationLedger, ParamValidation) {
  EXPECT_THROW(ReputationLedger({0.0, 1.0, 0.5, 1}), Error);
  EXPECT_THROW(ReputationLedger({1.0, 1.0, 0.0, 1}), Error);
  EXPECT_THROW(ReputationLedger({1.0, 1.0, 1.0, 1}), Error);
}

// ----------------------------------------------------------- tournament

TournamentConfig tournament_config() {
  TournamentConfig config;
  config.base.domain_end = 1 << 9;
  config.base.workload = "test";
  config.base.participant_count = 6;
  config.base.seed = 31;
  config.base.scheme.kind = SchemeKind::kCbs;
  config.base.scheme.cbs.sample_count = 20;
  config.base.cheaters = {{1, 0.4, 0.0, 0}, {4, 0.6, 0.0, 0}};
  config.rounds = 6;
  config.reputation = {1.0, 1.0, 0.5, 2};
  return config;
}

TEST(Tournament, CheatersGetPurged) {
  const TournamentResult result =
      run_reputation_tournament(tournament_config());
  ASSERT_EQ(result.rounds.size(), 6u);

  // Both cheaters banned within a few rounds (they are caught every round).
  EXPECT_TRUE(result.final_banned[1]);
  EXPECT_TRUE(result.final_banned[4]);
  EXPECT_LE(result.cheaters_purged_after, 3u);

  // Honest participants keep high trust and stay active.
  for (const std::size_t honest : {0u, 2u, 3u, 5u}) {
    EXPECT_FALSE(result.final_banned[honest]) << "participant " << honest;
    EXPECT_GT(result.final_trust[honest], 0.6);
  }
  EXPECT_LT(result.final_trust[1], 0.5);
}

TEST(Tournament, LaterRoundsRunWithoutCheaters) {
  const TournamentResult result =
      run_reputation_tournament(tournament_config());
  const TournamentRound& last = result.rounds.back();
  EXPECT_EQ(last.active_participants, 4u);  // 6 - 2 banned
  EXPECT_EQ(last.cheater_tasks_rejected, 0u);
  EXPECT_EQ(last.cheater_tasks_accepted, 0u);
  EXPECT_EQ(last.honest_tasks_rejected, 0u);
}

TEST(Tournament, Deterministic) {
  const TournamentResult a = run_reputation_tournament(tournament_config());
  const TournamentResult b = run_reputation_tournament(tournament_config());
  EXPECT_EQ(a.cheaters_purged_after, b.cheaters_purged_after);
  EXPECT_EQ(a.final_trust, b.final_trust);
}

TEST(Tournament, Validation) {
  TournamentConfig config = tournament_config();
  config.rounds = 0;
  EXPECT_THROW(run_reputation_tournament(config), Error);
}

// -------------------------------------------------------------- latency

TEST(Latency, TransferTimeModel) {
  const LinkProfile profile{1e6, 0.1};  // 1 MB/s, 100 ms RTT
  // 2 MB in 4 messages: 2 s serialization + 4 * 50 ms.
  EXPECT_NEAR(profile.transfer_seconds(2'000'000, 4), 2.2, 1e-9);
  EXPECT_DOUBLE_EQ(profile.transfer_seconds(0, 0), 0.0);
}

TEST(Latency, EstimatesFromNetworkStats) {
  NetworkStats stats;
  stats.total_bytes = 1'000'000;
  stats.total_messages = 10;
  stats.sent_by[3] = LinkStats{4, 500'000};
  const LinkProfile profile{1e6, 0.0};
  EXPECT_DOUBLE_EQ(estimate_total_seconds(stats, profile), 1.0);
  EXPECT_DOUBLE_EQ(estimate_upload_seconds(stats, GridNodeId{3}, profile),
                   0.5);
  EXPECT_DOUBLE_EQ(estimate_upload_seconds(stats, GridNodeId{9}, profile),
                   0.0);
}

TEST(Latency, Validation) {
  const LinkProfile bad{0.0, 0.1};
  EXPECT_THROW(bad.transfer_seconds(1, 1), Error);
}

}  // namespace
}  // namespace ugc
