// The §2.2 *malicious* model: participants that do the f-work but corrupt
// the screener channel, and the supervisor-side countermeasures. These
// tests pin down exactly what CBS does and does not protect — matching the
// paper's scoping of CBS to the semi-honest model.

#include <gtest/gtest.h>

#include "grid/simulation.h"

namespace ugc {
namespace {

GridConfig base_config(SchemeKind kind) {
  GridConfig config;
  config.domain_begin = 0;
  config.domain_end = 1 << 10;
  config.workload = "keysearch";  // plants exactly one screener hit
  config.workload_seed = 5;
  config.participant_count = 4;
  config.seed = 7;
  config.scheme.kind = kind;
  config.scheme.cbs.sample_count = 20;
  config.scheme.nicbs.sample_count = 20;
  config.scheme.naive.sample_count = 20;
  config.scheme.ringer.ringer_count = 10;
  return config;
}

// Make every participant malicious so the planted key's holder is corrupted
// regardless of which subdomain contains it.
void corrupt_everyone(GridConfig& config, ScreenerConduct conduct) {
  for (std::size_t i = 0; i < config.participant_count; ++i) {
    config.malicious.push_back({i, conduct});
  }
}

TEST(MaliciousModel, CbsAcceptsScreenerSuppressor) {
  // The documented gap: the commitment covers f values, not screener
  // conduct, so a suppressor passes CBS verification...
  GridConfig config = base_config(SchemeKind::kCbs);
  corrupt_everyone(config, ScreenerConduct::kSuppress);
  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.honest_tasks_accepted, 4u);
  // ...and the discovery is lost.
  EXPECT_TRUE(result.hits.empty());
}

TEST(MaliciousModel, NaiveSamplingRecoversSuppressedHits) {
  // Upload-based schemes are immune: the supervisor screens the uploaded
  // results itself and never consults participant reports.
  GridConfig config = base_config(SchemeKind::kNaiveSampling);
  corrupt_everyone(config, ScreenerConduct::kSuppress);
  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.honest_tasks_accepted, 4u);
  ASSERT_EQ(result.hits.size(), 1u);
  EXPECT_TRUE(result.hits[0].report.starts_with("key-found:"));
}

TEST(MaliciousModel, DoubleCheckRecoversSuppressedHits) {
  GridConfig config = base_config(SchemeKind::kDoubleCheck);
  corrupt_everyone(config, ScreenerConduct::kSuppress);
  const GridRunResult result = run_grid_simulation(config);
  ASSERT_EQ(result.hits.size(), 1u);
}

TEST(MaliciousModel, HitValidationDropsFabrications) {
  // A fabricator floods the screener channel with junk; recompute
  // validation (one f eval per claimed hit) strips all of it.
  GridConfig config = base_config(SchemeKind::kNiCbs);
  corrupt_everyone(config, ScreenerConduct::kFabricate);
  config.validate_reported_hits = true;
  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.honest_tasks_accepted, 4u);
  for (const ScreenerHit& hit : result.hits) {
    EXPECT_TRUE(hit.report.starts_with("key-found:"))
        << "fabrication survived: " << hit.report;
  }
  // Validation work was billed: at least one eval per fabricated hit.
  EXPECT_GT(result.supervisor_evaluations, 0u);
}

TEST(MaliciousModel, WithoutValidationFabricationsPollute) {
  GridConfig config = base_config(SchemeKind::kNiCbs);
  corrupt_everyone(config, ScreenerConduct::kFabricate);
  config.validate_reported_hits = false;
  const GridRunResult result = run_grid_simulation(config);
  bool polluted = false;
  for (const ScreenerHit& hit : result.hits) {
    if (hit.report.starts_with("fabricated:")) {
      polluted = true;
    }
  }
  EXPECT_TRUE(polluted);
}

TEST(MaliciousModel, ValidationCanonicalizesHonestHits) {
  // Faithful reporters are unaffected by validation: the single planted key
  // arrives intact.
  GridConfig config = base_config(SchemeKind::kCbs);
  config.validate_reported_hits = true;
  const GridRunResult result = run_grid_simulation(config);
  ASSERT_EQ(result.hits.size(), 1u);
  EXPECT_TRUE(result.hits[0].report.starts_with("key-found:"));
}

TEST(MaliciousModel, OutOfDomainFabricationsIgnored) {
  // A fabricator pointing outside its own subdomain cannot trick another
  // task's accounting; out-of-domain hits are discarded before validation.
  GridConfig config = base_config(SchemeKind::kCbs);
  corrupt_everyone(config, ScreenerConduct::kFabricate);
  config.validate_reported_hits = true;
  const GridRunResult result = run_grid_simulation(config);
  for (const ScreenerHit& hit : result.hits) {
    EXPECT_FALSE(hit.report.starts_with("fabricated:"));
  }
}

TEST(MaliciousModel, SemiHonestCheatWithMaliciousScreenerStillCaught) {
  // Conducts compose: skipping work is caught by CBS even when the screener
  // channel is also corrupted.
  GridConfig config = base_config(SchemeKind::kCbs);
  config.cheaters = {{2, 0.4, 0.0, 0}};
  config.malicious = {{2, ScreenerConduct::kSuppress}};
  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.cheater_tasks_rejected, 1u);
  EXPECT_EQ(result.cheater_tasks_accepted, 0u);
}

TEST(MaliciousModel, ConductNamesAreStable) {
  EXPECT_STREQ(to_string(ScreenerConduct::kFaithful), "faithful");
  EXPECT_STREQ(to_string(ScreenerConduct::kSuppress), "suppress");
  EXPECT_STREQ(to_string(ScreenerConduct::kFabricate), "fabricate");
}

TEST(MaliciousModel, MaliciousIndexValidated) {
  GridConfig config = base_config(SchemeKind::kCbs);
  config.malicious = {{9, ScreenerConduct::kSuppress}};
  EXPECT_THROW(run_grid_simulation(config), Error);
}

}  // namespace
}  // namespace ugc
