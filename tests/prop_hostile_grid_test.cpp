// The paper's invariants stated as properties over randomized hostile-grid
// configurations (run via the tests/prop.h harness; PROP_ITERS scales the
// case count, and every failure prints a standalone reproduction seed).
//
//   1. Honest participants are never flagged, under ANY FaultPlan: a task
//      either completes (accepted) or cleanly aborts — no fault pattern may
//      manufacture an accusation.
//   2. Hostile runs are deterministic: the same config twice gives
//      byte-identical verdicts, traffic, and fault counters.
//   3. Every semi-honest cheater's escape rate stays within the Theorem 3
//      bound (r + (1-r)q)^m, across schemes and random (r, m).
//   4. The commitment-equivocation attacker never escapes a commitment
//      scheme, for any seed.

#include <gtest/gtest.h>

#include <cmath>

#include "grid/simulation.h"
#include "prop.h"
#include "scheme/attacker.h"
#include "scheme/registry.h"

namespace ugc {
namespace {

using proptest::Failure;
using proptest::Property;
using proptest::gen_pick;
using proptest::gen_range;
using proptest::gen_unit;
using proptest::prop_check;
using proptest::shrink_unit;

// ------------------------------------------------ hostile configurations

struct HostileCase {
  std::string scheme;
  std::uint64_t domain = 256;
  std::uint64_t seed = 1;
  LinkFaults faults;
  std::vector<ParticipantCrash> crashes;
};

std::string show_hostile(const HostileCase& c) {
  std::string crashes;
  for (const ParticipantCrash& crash : c.crashes) {
    crashes += concat(" {p", crash.participant_index, " after ",
                      crash.after_messages, " for ", crash.offline_for, "}");
  }
  return concat("scheme=", c.scheme, " domain=", c.domain, " seed=", c.seed,
                " drop=", c.faults.drop, " dup=", c.faults.duplicate,
                " reorder=", c.faults.reorder, " corrupt=", c.faults.corrupt,
                " stall=", c.faults.stall, " crashes=[", crashes, " ]");
}

HostileCase gen_hostile(Rng& rng) {
  HostileCase c;
  c.scheme = gen_pick(rng, SchemeRegistry::global().names());
  c.domain = std::uint64_t{1} << gen_range(rng, 6, 9);
  c.seed = rng.next();
  c.faults.drop = gen_unit(rng, 0.2);
  c.faults.duplicate = gen_unit(rng, 0.3);
  c.faults.reorder = gen_unit(rng, 0.5);
  c.faults.corrupt = gen_unit(rng, 0.2);
  c.faults.stall = gen_unit(rng, 0.25);
  const std::uint64_t crash_count = gen_range(rng, 0, 2);
  for (std::uint64_t i = 0; i < crash_count; ++i) {
    ParticipantCrash crash;
    crash.participant_index = gen_range(rng, 0, 3);
    crash.after_messages = gen_range(rng, 0, 3);
    crash.offline_for = rng.bernoulli(0.5) ? 0 : gen_range(rng, 10, 60);
    c.crashes.push_back(crash);
  }
  return c;
}

// Shrink toward a quiet grid: drop fault probabilities, then crashes.
std::vector<HostileCase> shrink_hostile(const HostileCase& c) {
  std::vector<HostileCase> out;
  const auto with = [&c](auto edit) {
    HostileCase copy = c;
    edit(copy);
    return copy;
  };
  for (double v : shrink_unit(c.faults.drop)) {
    out.push_back(with([v](HostileCase& x) { x.faults.drop = v; }));
  }
  for (double v : shrink_unit(c.faults.duplicate)) {
    out.push_back(with([v](HostileCase& x) { x.faults.duplicate = v; }));
  }
  for (double v : shrink_unit(c.faults.reorder)) {
    out.push_back(with([v](HostileCase& x) { x.faults.reorder = v; }));
  }
  for (double v : shrink_unit(c.faults.corrupt)) {
    out.push_back(with([v](HostileCase& x) { x.faults.corrupt = v; }));
  }
  for (double v : shrink_unit(c.faults.stall)) {
    out.push_back(with([v](HostileCase& x) { x.faults.stall = v; }));
  }
  if (!c.crashes.empty()) {
    out.push_back(with([](HostileCase& x) { x.crashes.pop_back(); }));
  }
  if (c.domain > 64) {
    out.push_back(with([](HostileCase& x) { x.domain /= 2; }));
  }
  return out;
}

GridConfig to_config(const HostileCase& c) {
  GridConfig config;
  config.domain_end = c.domain;
  config.participant_count = 4;  // divides double-check's replica pairs
  config.seed = c.seed == 0 ? 1 : c.seed;
  config.scheme.name = c.scheme;
  config.scheme.cbs.sample_count = 8;
  config.scheme.nicbs.sample_count = 8;
  config.scheme.naive.sample_count = 8;
  config.scheme.ringer.ringer_count = 4;
  config.faults = c.faults;
  config.crashes = c.crashes;
  config.max_task_retries = 3;
  return config;
}

TEST(PropHostileGrid, prop_honest_participants_are_never_flagged) {
  Property<HostileCase> prop;
  prop.name = "honest participants are never flagged under any FaultPlan";
  prop.gen = gen_hostile;
  prop.shrink = shrink_hostile;
  prop.show = show_hostile;
  prop_check(prop, [](const HostileCase& c) -> Failure {
    const GridRunResult result = run_grid_simulation(to_config(c));
    if (result.outcomes.size() != 4) {
      return concat("expected 4 final outcomes, got ",
                    result.outcomes.size());
    }
    if (result.honest_tasks_rejected != 0) {
      return concat(result.honest_tasks_rejected,
                    " honest task(s) were accused of cheating");
    }
    for (const ParticipantOutcome& outcome : result.outcomes) {
      const bool clean = outcome.status == VerdictStatus::kAccepted ||
                         outcome.status == VerdictStatus::kAborted;
      if (!clean) {
        return concat("task ", outcome.task.value, " ended ",
                      to_string(outcome.status),
                      " on an all-honest grid");
      }
    }
    return {};
  });
}

TEST(PropHostileGrid, prop_hostile_runs_are_deterministic) {
  Property<HostileCase> prop;
  prop.name = "hostile runs are byte-identical across invocations";
  prop.gen = gen_hostile;
  prop.shrink = shrink_hostile;
  prop.show = show_hostile;
  prop_check(prop, [](const HostileCase& c) -> Failure {
    const GridConfig config = to_config(c);
    const GridRunResult a = run_grid_simulation(config);
    const GridRunResult b = run_grid_simulation(config);
    if (a.network.total_bytes != b.network.total_bytes) {
      return concat("traffic diverged: ", a.network.total_bytes, " vs ",
                    b.network.total_bytes, " bytes");
    }
    if (!(a.faults == b.faults)) {
      return "fault counters diverged";
    }
    if (a.outcomes.size() != b.outcomes.size()) {
      return "outcome counts diverged";
    }
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      if (a.outcomes[i].status != b.outcomes[i].status ||
          a.outcomes[i].task != b.outcomes[i].task ||
          a.outcomes[i].participant_index != b.outcomes[i].participant_index) {
        return concat("outcome ", i, " diverged");
      }
    }
    if (a.hits != b.hits) {
      return "screener hits diverged";
    }
    return {};
  });
}

// ------------------------------------------------- Theorem 3 escape bound

struct BoundCase {
  std::string scheme;
  double r = 0.5;
  std::size_t m = 10;
  std::uint64_t seed = 1;
};

TEST(PropHostileGrid, prop_cheater_escape_rate_within_theorem3_bound) {
  Property<BoundCase> prop;
  prop.name = "semi-honest escape rate stays within (r + (1-r)q)^m";
  prop.gen = [](Rng& rng) {
    BoundCase c;
    c.scheme = gen_pick(
        rng, std::vector<std::string>{"cbs", "ni-cbs", "naive-sampling"});
    c.r = 0.3 + gen_unit(rng, 0.5);
    c.m = gen_range(rng, 5, 24);
    c.seed = rng.next();
    return c;
  };
  prop.show = [](const BoundCase& c) {
    return concat("scheme=", c.scheme, " r=", c.r, " m=", c.m,
                  " seed=", c.seed);
  };

  static constexpr int kTrials = 30;
  prop_check(prop, [](const BoundCase& c) -> Failure {
    int escapes = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      GridConfig config;
      config.domain_end = 128;
      config.participant_count = 1;
      config.seed = c.seed + static_cast<std::uint64_t>(trial) * 2654435761u;
      config.scheme.name = c.scheme;
      config.scheme.cbs.sample_count = c.m;
      config.scheme.nicbs.sample_count = c.m;
      config.scheme.naive.sample_count = c.m;
      config.cheaters.push_back(CheaterSpec{0, c.r, 0.0, 0});
      if (run_grid_simulation(config).cheater_tasks_accepted > 0) {
        ++escapes;
      }
    }
    // Theorem 3 with q = 0: escape probability r^m per run. Allow a
    // generous binomial tail (4 sigma + 2) so a sound implementation
    // essentially never trips.
    const double bound = std::pow(c.r, static_cast<double>(c.m));
    const double allowed =
        kTrials * bound + 4.0 * std::sqrt(kTrials * bound * (1 - bound)) + 2.0;
    if (escapes > allowed) {
      return concat(escapes, "/", kTrials, " escapes exceeds bound ", bound,
                    " (allowed ", allowed, ")");
    }
    return {};
  });
}

// -------------------------------------------- equivocation never escapes

struct EquivocationCase {
  std::string scheme;
  std::uint64_t seed = 1;
  bool batched = false;
};

TEST(PropHostileGrid, prop_equivocator_never_escapes_commitment_schemes) {
  SchemeRegistry schemes;
  for (const std::string& name : SchemeRegistry::global().names()) {
    schemes.register_scheme(SchemeRegistry::global().share(name));
  }
  register_equivocating_schemes(schemes);

  Property<EquivocationCase> prop;
  prop.name = "equivocation is caught deterministically by cbs/ni-cbs";
  prop.gen = [](Rng& rng) {
    EquivocationCase c;
    c.scheme = gen_pick(rng, std::vector<std::string>{"cbs+equivocate",
                                                      "ni-cbs+equivocate"});
    c.seed = rng.next();
    c.batched = rng.bernoulli(0.5);
    return c;
  };
  prop.show = [](const EquivocationCase& c) {
    return concat("scheme=", c.scheme, " seed=", c.seed,
                  " batched=", c.batched);
  };

  prop_check(prop, [&schemes](const EquivocationCase& c) -> Failure {
    GridConfig config;
    config.domain_end = 256;
    config.participant_count = 2;
    config.seed = c.seed == 0 ? 1 : c.seed;
    config.schemes = &schemes;
    config.scheme.name = c.scheme;
    config.scheme.cbs.sample_count = 8;
    config.scheme.nicbs.sample_count = 8;
    config.scheme.cbs.use_batch_proofs = c.batched;
    const GridRunResult result = run_grid_simulation(config);
    for (const ParticipantOutcome& outcome : result.outcomes) {
      if (outcome.accepted) {
        return concat("equivocator escaped task ", outcome.task.value);
      }
    }
    return {};
  });
}

}  // namespace
}  // namespace ugc
