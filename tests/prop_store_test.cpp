// Property suite for the persistence layer: random verdict sequences
// pushed through the crash-safe file backend — interleaved with reopens
// and aggressive compaction — must leave the durable ledger byte-for-byte
// equivalent to the same sequence played against the in-memory backend.

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "auth/identity.h"
#include "common/error.h"
#include "store/durable_ledger.h"
#include "prop.h"
#include "store/reputation_store.h"

namespace ugc::store {
namespace {

using proptest::Failure;
using proptest::gen_range;
using proptest::Property;
using proptest::prop_check;

struct TempDir {
  std::string path;
  TempDir() {
    char templ[] = "/tmp/ugc_prop_store_XXXXXX";
    const char* made = ::mkdtemp(templ);
    if (made == nullptr) {
      throw Error("mkdtemp failed");
    }
    path = made;
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
};

struct Verdict {
  std::uint8_t worker;  // small population: collisions are the point
  bool accepted;
  bool reopen_after;  // close and reopen the file store after this verdict
};

struct Sequence {
  std::vector<Verdict> verdicts;
  std::size_t compact_after;  // 1..4: compaction fires constantly
  std::uint64_t min_observations;
};

WorkerId id_of(std::uint8_t tag) {
  WorkerId id;
  id.digest.fill(tag);
  return id;
}

Property<Sequence> sequence_property() {
  Property<Sequence> prop;
  prop.name = "file-backed ledger replays any verdict sequence exactly";
  prop.gen = [](Rng& rng) {
    Sequence s;
    s.compact_after = gen_range(rng, 1, 4);
    s.min_observations = gen_range(rng, 1, 3);
    const std::uint64_t count = gen_range(rng, 1, 40);
    for (std::uint64_t i = 0; i < count; ++i) {
      s.verdicts.push_back(Verdict{
          static_cast<std::uint8_t>(gen_range(rng, 1, 5)),
          rng.bernoulli(0.6), rng.bernoulli(0.15)});
    }
    return s;
  };
  prop.shrink = [](const Sequence& s) {
    std::vector<Sequence> out;
    if (s.verdicts.size() > 1) {
      Sequence half = s;
      half.verdicts.resize(s.verdicts.size() / 2);
      out.push_back(std::move(half));
      Sequence tail = s;
      tail.verdicts.erase(tail.verdicts.begin());
      out.push_back(std::move(tail));
    }
    return out;
  };
  prop.show = [](const Sequence& s) {
    std::string text = concat("compact_after=", s.compact_after,
                              " min_obs=", s.min_observations, " [");
    for (const Verdict& v : s.verdicts) {
      text += concat(int(v.worker), v.accepted ? "+" : "-",
                     v.reopen_after ? "R " : " ");
    }
    return text + "]";
  };
  return prop;
}

TEST(PropStore, prop_random_verdict_sequences_survive_the_file_backend) {
  prop_check(sequence_property(), [](const Sequence& s) -> Failure {
    TempDir dir;
    ReputationParams params;
    params.min_observations = s.min_observations;
    FileStoreOptions options;
    options.compact_after_log_entries = s.compact_after;

    // Reference: the same sequence against the in-memory backend.
    DurableReputationLedger reference(params, make_memory_reputation_store());
    auto durable = std::make_unique<DurableReputationLedger>(
        params, make_file_reputation_store(dir.path, options));

    for (const Verdict& v : s.verdicts) {
      reference.record(id_of(v.worker), v.accepted);
      durable->record(id_of(v.worker), v.accepted);
      if (v.reopen_after) {
        durable.reset();  // destructor closes the log fd
        durable = std::make_unique<DurableReputationLedger>(
            params, make_file_reputation_store(dir.path, options));
      }
    }

    // One final reopen: everything must have reached disk structures that
    // replay, not just the live process's map.
    durable.reset();
    DurableReputationLedger replayed(
        params, make_file_reputation_store(dir.path, options));

    if (replayed.size() != reference.size()) {
      return concat("population mismatch: file=", replayed.size(),
                    " memory=", reference.size());
    }
    for (const auto& [id, expected] : reference.store().snapshot()) {
      const auto got = replayed.store().get(id);
      if (!got.has_value()) {
        return concat("worker ", id.prefix(), " missing after replay");
      }
      if (!(*got == expected)) {
        return concat("worker ", id.prefix(), " diverged: file={",
                      got->alpha, ",", got->beta, ",", got->observations,
                      "} memory={", expected.alpha, ",", expected.beta, ",",
                      expected.observations, "}");
      }
      if (replayed.banned(id) != reference.banned(id)) {
        return concat("ban verdict diverged for worker ", id.prefix());
      }
    }
    return {};
  });
}

}  // namespace
}  // namespace ugc::store
