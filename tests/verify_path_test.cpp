// The supervisor's allocation-free verification path: scratch and view
// overloads must produce byte-identical verdicts to the plain entry points,
// reject adversarial responses without crashing, and pair with the wire
// layer's zero-copy decoders.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cbs.h"
#include "core/sampling.h"
#include "core/verification.h"
#include "wire/messages.h"

namespace ugc {
namespace {

class Mix8 final : public ComputeFunction {
 public:
  Bytes evaluate(std::uint64_t x) const override {
    Bytes out(8);
    evaluate_into(x, out);
    return out;
  }
  void evaluate_into(std::uint64_t x,
                     std::span<std::uint8_t> out) const override {
    std::uint64_t z = x * 0x9e3779b97f4a7c15ULL + 1;
    z ^= z >> 29;
    put_u64_be(z, out.data());
  }
  std::size_t result_size() const override { return 8; }
  std::string name() const override { return "mix8"; }
};

// Wide results exercise RecomputeVerifier's heap fallback (> stack buffer).
class Wide200 final : public ComputeFunction {
 public:
  Bytes evaluate(std::uint64_t x) const override {
    Bytes out(200, static_cast<std::uint8_t>(x * 31));
    return out;
  }
  std::size_t result_size() const override { return 200; }
  std::string name() const override { return "wide200"; }
};

struct Fixture {
  Task task;
  CbsConfig config;
  Commitment commitment;
  std::vector<LeafIndex> samples;
  ProofResponse response;
  BatchProofResponse batched;
  std::shared_ptr<CountingComputeFunction> counting;
  std::shared_ptr<const ResultVerifier> verifier;
};

Fixture make_fixture(std::uint64_t n, std::size_t m, LeafMode mode,
                     std::uint64_t seed) {
  Fixture fx{Task::make(TaskId{7}, Domain(0, n),
                        std::make_shared<CountingComputeFunction>(
                            std::make_shared<Mix8>()))};
  fx.config.tree.leaf_mode = mode;
  fx.counting = std::make_shared<CountingComputeFunction>(fx.task.f);
  fx.verifier = std::make_shared<RecomputeVerifier>(fx.counting);
  CbsParticipant participant(fx.task, fx.config, make_honest_policy());
  fx.commitment = participant.commit();
  Rng rng(seed);
  fx.samples = sample_with_replacement(rng, n, m);
  const SampleChallenge challenge{fx.task.id, fx.samples};
  fx.response = participant.respond(challenge);
  fx.batched = participant.respond_batched(challenge);
  return fx;
}

void expect_same_verdict(const Verdict& a, const Verdict& b) {
  EXPECT_EQ(a.task, b.task);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.failed_sample, b.failed_sample);
  EXPECT_EQ(a.detail, b.detail);
}

TEST(VerifyPath, ScratchVerdictsMatchPlainEntryPoints) {
  for (const LeafMode mode : {LeafMode::kRaw, LeafMode::kHashed}) {
    Fixture fx = make_fixture(200, 9, mode, 5);
    VerifyScratch scratch;
    SupervisorMetrics plain_metrics;
    SupervisorMetrics scratch_metrics;

    const Verdict plain =
        verify_sample_proofs(fx.task, fx.config.tree, fx.commitment,
                             fx.samples, fx.response, *fx.verifier,
                             &plain_metrics);
    const Verdict fast =
        verify_sample_proofs(fx.task, fx.config.tree, fx.commitment,
                             fx.samples, fx.response, *fx.verifier,
                             &scratch_metrics, scratch);
    EXPECT_TRUE(fast.accepted());
    expect_same_verdict(plain, fast);
    EXPECT_EQ(plain_metrics.results_verified, scratch_metrics.results_verified);
    EXPECT_EQ(plain_metrics.roots_reconstructed,
              scratch_metrics.roots_reconstructed);

    const Verdict plain_batch =
        verify_batch_response(fx.task, fx.config.tree, fx.commitment,
                              fx.samples, fx.batched, *fx.verifier, nullptr);
    const Verdict fast_batch =
        verify_batch_response(fx.task, fx.config.tree, fx.commitment,
                              fx.samples, fx.batched, *fx.verifier, nullptr,
                              scratch);
    EXPECT_TRUE(fast_batch.accepted());
    expect_same_verdict(plain_batch, fast_batch);
  }
}

TEST(VerifyPath, ScratchReuseAcrossTamperedAndHonestResponses) {
  Fixture fx = make_fixture(128, 7, LeafMode::kRaw, 9);
  VerifyScratch scratch;

  ProofResponse wrong = fx.response;
  wrong.proofs[3].result[0] ^= 0x01;
  const Verdict wrong_verdict =
      verify_sample_proofs(fx.task, fx.config.tree, fx.commitment, fx.samples,
                           wrong, *fx.verifier, nullptr, scratch);
  EXPECT_EQ(wrong_verdict.status, VerdictStatus::kWrongResult);
  EXPECT_EQ(wrong_verdict.failed_sample, fx.samples[3]);

  ProofResponse bad_path = fx.response;
  bad_path.proofs[2].siblings[1][0] ^= 0x80;
  const Verdict mismatch =
      verify_sample_proofs(fx.task, fx.config.tree, fx.commitment, fx.samples,
                           bad_path, *fx.verifier, nullptr, scratch);
  EXPECT_EQ(mismatch.status, VerdictStatus::kRootMismatch);

  // A rejected response must not poison the scratch for the next one.
  EXPECT_TRUE(verify_sample_proofs(fx.task, fx.config.tree, fx.commitment,
                                   fx.samples, fx.response, *fx.verifier,
                                   nullptr, scratch)
                  .accepted());
}

TEST(VerifyPath, AdversarialBatchResponsesRejectedNotCrashing) {
  Fixture fx = make_fixture(256, 8, LeafMode::kRaw, 3);
  VerifyScratch scratch;
  const auto verify = [&](const BatchProofResponse& response) {
    return verify_batch_response(fx.task, fx.config.tree, fx.commitment,
                                 fx.samples, response, *fx.verifier, nullptr,
                                 scratch);
  };
  ASSERT_TRUE(verify(fx.batched).accepted());

  {
    BatchProofResponse bad = fx.batched;  // truncated sibling stream
    bad.siblings.resize(bad.siblings.size() / 2);
    EXPECT_EQ(verify(bad).status, VerdictStatus::kRootMismatch);
  }
  {
    BatchProofResponse bad = fx.batched;  // duplicated leaf index
    ASSERT_GE(bad.results.size(), 2u);
    bad.results[1].first = bad.results[0].first;
    EXPECT_EQ(verify(bad).status, VerdictStatus::kMalformed);
  }
  {
    BatchProofResponse bad = fx.batched;  // out-of-range position
    bad.results.back().first = LeafIndex{1 << 20};
    EXPECT_EQ(verify(bad).status, VerdictStatus::kMalformed);
  }
  {
    BatchProofResponse bad = fx.batched;  // dropped sample
    bad.results.pop_back();
    EXPECT_EQ(verify(bad).status, VerdictStatus::kMalformed);
  }
  {
    BatchProofResponse bad = fx.batched;  // oversized claimed result
    bad.results.front().second.push_back(0xff);
    EXPECT_EQ(verify(bad).status, VerdictStatus::kMalformed);
  }
  {
    BatchProofResponse bad = fx.batched;  // foreign task id
    bad.task = TaskId{99};
    EXPECT_EQ(verify(bad).status, VerdictStatus::kMalformed);
  }
  EXPECT_TRUE(verify(fx.batched).accepted());
}

TEST(VerifyPath, ViewDecodersFeedVerificationZeroCopy) {
  for (const LeafMode mode : {LeafMode::kRaw, LeafMode::kHashed}) {
    Fixture fx = make_fixture(300, 11, mode, 21);
    VerifyScratch scratch;
    WireViewArena arena;

    const Bytes plain_payload = encode_message(Message{fx.response});
    const ProofResponseView plain_view =
        decode_proof_response_view(plain_payload, arena);
    // Views really point into the payload, not copies.
    ASSERT_FALSE(plain_view.proofs.empty());
    const std::uint8_t* payload_begin = plain_payload.data();
    const std::uint8_t* payload_end = payload_begin + plain_payload.size();
    EXPECT_GE(plain_view.proofs[0].result.data(), payload_begin);
    EXPECT_LT(plain_view.proofs[0].result.data(), payload_end);

    const Verdict from_view =
        verify_sample_proofs(fx.task, fx.config.tree, fx.commitment,
                             fx.samples, plain_view, *fx.verifier, nullptr,
                             scratch);
    const Verdict from_owning =
        verify_sample_proofs(fx.task, fx.config.tree, fx.commitment,
                             fx.samples, fx.response, *fx.verifier, nullptr,
                             scratch);
    expect_same_verdict(from_owning, from_view);
    EXPECT_TRUE(from_view.accepted());

    const Bytes batch_payload = encode_message(Message{fx.batched});
    const BatchProofResponseView batch_view =
        decode_batch_proof_response_view(batch_payload, arena);
    const Verdict batch_from_view =
        verify_batch_response(fx.task, fx.config.tree, fx.commitment,
                              fx.samples, batch_view, *fx.verifier, nullptr,
                              scratch);
    EXPECT_TRUE(batch_from_view.accepted());

    // Tampered payload still decodes (structurally valid) but must reject.
    Bytes tampered = batch_payload;
    tampered.back() ^= 0x01;
    const BatchProofResponseView tampered_view =
        decode_batch_proof_response_view(tampered, arena);
    EXPECT_FALSE(verify_batch_response(fx.task, fx.config.tree, fx.commitment,
                                       fx.samples, tampered_view, *fx.verifier,
                                       nullptr, scratch)
                     .accepted());
  }
}

TEST(VerifyPath, RecomputeVerifierStackAndHeapPathsAgree) {
  const auto narrow = std::make_shared<CountingComputeFunction>(
      std::make_shared<Mix8>());
  const RecomputeVerifier narrow_verifier(narrow);
  const Bytes good = narrow->evaluate(42);
  EXPECT_EQ(narrow->calls(), 1u);
  EXPECT_TRUE(narrow_verifier.verify(42, good));
  EXPECT_EQ(narrow->calls(), 2u);  // evaluate_into counts exactly once
  Bytes bad = good;
  bad[0] ^= 1;
  EXPECT_FALSE(narrow_verifier.verify(42, bad));
  EXPECT_FALSE(narrow_verifier.verify(42, BytesView{}));  // size mismatch

  const auto wide = std::make_shared<Wide200>();
  const RecomputeVerifier wide_verifier(wide);
  EXPECT_TRUE(wide_verifier.verify(5, wide->evaluate(5)));
  EXPECT_FALSE(wide_verifier.verify(5, wide->evaluate(6)));
}

}  // namespace
}  // namespace ugc
