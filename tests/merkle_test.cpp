#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/hash_function.h"
#include "merkle/partial_tree.h"
#include "merkle/proof.h"
#include "merkle/streaming_builder.h"
#include "merkle/tree.h"

namespace ugc {
namespace {

// Deterministic synthetic leaf values ("f(x_i)") of a given size.
std::vector<Bytes> make_leaves(std::uint64_t n, std::size_t size = 8) {
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes leaf(size);
    for (std::size_t j = 0; j < size; ++j) {
      leaf[j] = static_cast<std::uint8_t>((i * 131 + j * 17 + 5) & 0xff);
    }
    leaves.push_back(std::move(leaf));
  }
  return leaves;
}

PartialMerkleTree::LeafProvider provider_for(const std::vector<Bytes>& leaves) {
  return [&leaves](LeafIndex i) { return leaves[i.value]; };
}

// ---------------------------------------------------------------- helpers

TEST(TreeHelpers, NextPowerOfTwo) {
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(4), 4u);
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(1000), 1024u);
  EXPECT_EQ(next_power_of_two(std::uint64_t{1} << 40), std::uint64_t{1} << 40);
}

TEST(TreeHelpers, TreeHeight) {
  EXPECT_EQ(tree_height(1), 0u);
  EXPECT_EQ(tree_height(2), 1u);
  EXPECT_EQ(tree_height(3), 2u);
  EXPECT_EQ(tree_height(4), 2u);
  EXPECT_EQ(tree_height(5), 3u);
  EXPECT_EQ(tree_height(1024), 10u);
  EXPECT_EQ(tree_height(1025), 11u);
}

TEST(TreeHelpers, PaddingLeafDependsOnHash) {
  EXPECT_EQ(padding_leaf(default_hash()).size(), 32u);
  EXPECT_EQ(padding_leaf(*make_hash(HashAlgorithm::kMd5)).size(), 16u);
  EXPECT_NE(padding_leaf(default_hash()),
            padding_leaf(*make_hash(HashAlgorithm::kMd5)));
}

// ------------------------------------------------------------- MerkleTree

TEST(MerkleTree, SingleLeafRootIsLeafValue) {
  auto leaves = make_leaves(1);
  const Bytes expected = leaves[0];
  const MerkleTree tree = MerkleTree::build(std::move(leaves), default_hash());
  EXPECT_EQ(tree.root(), expected);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(MerkleTree, TwoLeavesRootIsHashOfConcat) {
  auto leaves = make_leaves(2);
  const Bytes expected =
      default_hash().hash(concat_bytes(leaves[0], leaves[1]));
  const MerkleTree tree = MerkleTree::build(std::move(leaves), default_hash());
  EXPECT_EQ(tree.root(), expected);
  EXPECT_EQ(tree.height(), 1u);
}

TEST(MerkleTree, FourLeavesMatchesManualComputation) {
  auto leaves = make_leaves(4);
  const auto& h = default_hash();
  const Bytes ab = h.hash(concat_bytes(leaves[0], leaves[1]));
  const Bytes cd = h.hash(concat_bytes(leaves[2], leaves[3]));
  const Bytes expected = h.hash(concat_bytes(ab, cd));
  const MerkleTree tree = MerkleTree::build(std::move(leaves), h);
  EXPECT_EQ(tree.root(), expected);
}

TEST(MerkleTree, NonPowerOfTwoPadsWithPaddingLeaf) {
  auto leaves = make_leaves(3);
  const auto& h = default_hash();
  const Bytes ab = h.hash(concat_bytes(leaves[0], leaves[1]));
  const Bytes cp = h.hash(concat_bytes(leaves[2], padding_leaf(h)));
  const Bytes expected = h.hash(concat_bytes(ab, cp));
  const MerkleTree tree = MerkleTree::build(std::move(leaves), h);
  EXPECT_EQ(tree.root(), expected);
  EXPECT_EQ(tree.leaf_count(), 3u);
  EXPECT_EQ(tree.padded_leaf_count(), 4u);
}

TEST(MerkleTree, BuildRejectsEmpty) {
  EXPECT_THROW(MerkleTree::build({}, default_hash()), Error);
}

TEST(MerkleTree, LeafAccessorChecksBounds) {
  const MerkleTree tree = MerkleTree::build(make_leaves(3), default_hash());
  EXPECT_NO_THROW(tree.leaf(LeafIndex{2}));
  EXPECT_THROW(tree.leaf(LeafIndex{3}), Error);  // padding is not addressable
}

TEST(MerkleTree, ProveChecksBounds) {
  const MerkleTree tree = MerkleTree::build(make_leaves(5), default_hash());
  EXPECT_THROW(tree.prove(LeafIndex{5}), Error);
}

TEST(MerkleTree, NodeCountForPerfectTree) {
  const MerkleTree tree = MerkleTree::build(make_leaves(8), default_hash());
  EXPECT_EQ(tree.node_count(), 15u);  // 8 + 4 + 2 + 1
}

// Parameterized sweep: every proof of every leaf verifies, and the proof is
// rejected against a different root.
class MerkleProofSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MerkleProofSweep, AllLeavesProveAndVerify) {
  const std::uint64_t n = GetParam();
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(n), h);
  for (std::uint64_t i = 0; i < n; ++i) {
    const MerkleProof proof = tree.prove(LeafIndex{i});
    EXPECT_EQ(proof.siblings.size(), tree.height());
    EXPECT_TRUE(verify_proof(proof, tree.root(), h))
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleProofSweep, ProofFailsAgainstWrongRoot) {
  const std::uint64_t n = GetParam();
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(n), h);
  Bytes wrong_root = tree.root();
  wrong_root[0] ^= 0x01;
  const MerkleProof proof = tree.prove(LeafIndex{0});
  EXPECT_FALSE(verify_proof(proof, wrong_root, h));
}

TEST_P(MerkleProofSweep, TamperedLeafValueFailsVerification) {
  const std::uint64_t n = GetParam();
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(n), h);
  MerkleProof proof = tree.prove(LeafIndex{n / 2});
  proof.leaf_value[0] ^= 0xff;
  EXPECT_FALSE(verify_proof(proof, tree.root(), h));
}

TEST_P(MerkleProofSweep, TamperedSiblingFailsVerification) {
  const std::uint64_t n = GetParam();
  if (n < 2) return;  // no siblings in a height-0 tree
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(n), h);
  for (std::size_t level = 0; level < tree.height(); ++level) {
    MerkleProof proof = tree.prove(LeafIndex{0});
    proof.siblings[level][0] ^= 0x80;
    EXPECT_FALSE(verify_proof(proof, tree.root(), h))
        << "tampered sibling at level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           31, 33, 64, 100, 127, 128, 257));

TEST(MerkleTree, DifferentHashAlgorithmsProduceDifferentRoots) {
  const auto md5 = make_hash(HashAlgorithm::kMd5);
  const MerkleTree a = MerkleTree::build(make_leaves(8), default_hash());
  const MerkleTree b = MerkleTree::build(make_leaves(8), *md5);
  EXPECT_NE(a.root(), b.root());
}

TEST(MerkleTree, UpdateLeafChangesRootConsistently) {
  const auto& h = default_hash();
  auto leaves = make_leaves(16);
  MerkleTree tree = MerkleTree::build(leaves, h);
  const Bytes original_root = tree.root();

  leaves[5] = to_bytes("replacement");
  tree.update_leaf(LeafIndex{5}, leaves[5], h);
  EXPECT_NE(tree.root(), original_root);

  // The incrementally updated tree must equal a fresh build.
  const MerkleTree rebuilt = MerkleTree::build(leaves, h);
  EXPECT_EQ(tree.root(), rebuilt.root());

  // And all proofs still verify.
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(verify_proof(tree.prove(LeafIndex{i}), tree.root(), h));
  }
}

TEST(MerkleTree, UpdateLeafRestoringValueRestoresRoot) {
  const auto& h = default_hash();
  auto leaves = make_leaves(9);
  MerkleTree tree = MerkleTree::build(leaves, h);
  const Bytes original_root = tree.root();
  tree.update_leaf(LeafIndex{3}, to_bytes("junk"), h);
  EXPECT_NE(tree.root(), original_root);
  tree.update_leaf(LeafIndex{3}, leaves[3], h);
  EXPECT_EQ(tree.root(), original_root);
}

TEST(MerkleTree, VariableLengthLeavesSupported) {
  std::vector<Bytes> leaves = {to_bytes("a"), to_bytes("bcdef"), Bytes{},
                               to_bytes("ghij")};
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(leaves, h);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const MerkleProof proof = tree.prove(LeafIndex{i});
    EXPECT_EQ(proof.leaf_value, leaves[i]);
    EXPECT_TRUE(verify_proof(proof, tree.root(), h));
  }
}

// ------------------------------------------------------ StreamingBuilder

class StreamingEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingEquivalence, RootMatchesFullBuild) {
  const std::uint64_t n = GetParam();
  const auto& h = default_hash();
  const auto leaves = make_leaves(n);

  StreamingMerkleBuilder builder(h);
  for (const Bytes& leaf : leaves) {
    builder.add_leaf(leaf);
  }
  const Bytes streamed_root = builder.finish();

  const MerkleTree tree = MerkleTree::build(leaves, h);
  EXPECT_EQ(streamed_root, tree.root());
}

INSTANTIATE_TEST_SUITE_P(Sizes, StreamingEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                           17, 100, 255, 256, 257, 1000));

TEST(StreamingBuilder, FinishWithoutLeavesThrows) {
  StreamingMerkleBuilder builder(default_hash());
  EXPECT_THROW(builder.finish(), Error);
}

TEST(StreamingBuilder, DoubleFinishThrows) {
  StreamingMerkleBuilder builder(default_hash());
  builder.add_leaf(to_bytes("x"));
  builder.finish();
  EXPECT_THROW(builder.finish(), Error);
}

TEST(StreamingBuilder, AddAfterFinishThrows) {
  StreamingMerkleBuilder builder(default_hash());
  builder.add_leaf(to_bytes("x"));
  builder.finish();
  EXPECT_THROW(builder.add_leaf(to_bytes("y")), Error);
}

TEST(StreamingBuilder, CallbackSeesEveryNodeOfPerfectTree) {
  const auto& h = default_hash();
  std::size_t emitted = 0;
  StreamingMerkleBuilder builder(
      h, [&emitted](unsigned, std::uint64_t, BytesView) { ++emitted; });
  const auto leaves = make_leaves(8);
  for (const Bytes& leaf : leaves) {
    builder.add_leaf(leaf);
  }
  builder.finish();
  EXPECT_EQ(emitted, 15u);  // 8 leaves + 4 + 2 + 1
}

// --------------------------------------------------------- PartialTree

struct PartialCase {
  std::uint64_t n;
  unsigned subtree_height;
};

class PartialTreeSweep : public ::testing::TestWithParam<PartialCase> {};

TEST_P(PartialTreeSweep, RootMatchesFullTree) {
  const auto [n, ell] = GetParam();
  const auto& h = default_hash();
  const auto leaves = make_leaves(n);
  const PartialMerkleTree partial =
      PartialMerkleTree::build(n, ell, provider_for(leaves), h);
  const MerkleTree full = MerkleTree::build(leaves, h);
  EXPECT_EQ(partial.root(), full.root());
}

TEST_P(PartialTreeSweep, ProofsMatchFullTreeForAllLeaves) {
  const auto [n, ell] = GetParam();
  const auto& h = default_hash();
  const auto leaves = make_leaves(n);
  const PartialMerkleTree partial =
      PartialMerkleTree::build(n, ell, provider_for(leaves), h);
  const MerkleTree full = MerkleTree::build(leaves, h);

  for (std::uint64_t i = 0; i < n; ++i) {
    const MerkleProof from_partial =
        partial.prove(LeafIndex{i}, provider_for(leaves), h);
    const MerkleProof from_full = full.prove(LeafIndex{i});
    EXPECT_EQ(from_partial.leaf_value, from_full.leaf_value);
    EXPECT_EQ(from_partial.siblings, from_full.siblings);
    EXPECT_TRUE(verify_proof(from_partial, partial.root(), h));
  }
}

TEST_P(PartialTreeSweep, StorageShrinksByTwoToTheEll) {
  const auto [n, ell] = GetParam();
  const auto& h = default_hash();
  const auto leaves = make_leaves(n);
  const PartialMerkleTree partial =
      PartialMerkleTree::build(n, ell, provider_for(leaves), h);

  const unsigned height = tree_height(n);
  const unsigned effective_ell = std::min(ell, height);
  // Stored nodes: sum over heights ℓ..H of 2^(H-h) = 2^(H-ℓ+1) - 1.
  const std::size_t expected =
      (std::size_t{2} << (height - effective_ell)) - 1;
  EXPECT_EQ(partial.stored_node_count(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PartialTreeSweep,
    ::testing::Values(PartialCase{1, 0}, PartialCase{1, 3}, PartialCase{2, 1},
                      PartialCase{5, 1}, PartialCase{8, 0}, PartialCase{8, 2},
                      PartialCase{8, 3}, PartialCase{8, 9}, PartialCase{16, 2},
                      PartialCase{33, 3}, PartialCase{64, 4},
                      PartialCase{100, 3}, PartialCase{128, 7},
                      PartialCase{257, 5}));

TEST(PartialTree, RecomputeMeterCountsSubtreeLeaves) {
  const auto& h = default_hash();
  const std::uint64_t n = 64;
  const unsigned ell = 3;
  const auto leaves = make_leaves(n);
  const PartialMerkleTree partial =
      PartialMerkleTree::build(n, ell, provider_for(leaves), h);

  EXPECT_EQ(partial.recomputed_leaf_count(), 0u);
  partial.prove(LeafIndex{10}, provider_for(leaves), h);
  EXPECT_EQ(partial.recomputed_leaf_count(), std::uint64_t{1} << ell);
  partial.prove(LeafIndex{11}, provider_for(leaves), h);
  EXPECT_EQ(partial.recomputed_leaf_count(), std::uint64_t{2} << ell);
}

TEST(PartialTree, RecomputeSkipsPaddingPositions) {
  const auto& h = default_hash();
  // n = 33 pads to 64; the subtree holding leaf 32 (ℓ=3) covers 33..39 as
  // padding, so only one real leaf is recomputed.
  const std::uint64_t n = 33;
  const auto leaves = make_leaves(n);
  const PartialMerkleTree partial =
      PartialMerkleTree::build(n, 3, provider_for(leaves), h);
  partial.prove(LeafIndex{32}, provider_for(leaves), h);
  EXPECT_EQ(partial.recomputed_leaf_count(), 1u);
}

TEST(PartialTree, InconsistentProviderDetected) {
  const auto& h = default_hash();
  const std::uint64_t n = 16;
  const auto leaves = make_leaves(n);
  const PartialMerkleTree partial =
      PartialMerkleTree::build(n, 2, provider_for(leaves), h);

  const auto wrong = [](LeafIndex) { return to_bytes("lies"); };
  EXPECT_THROW(partial.prove(LeafIndex{0}, wrong, h), Error);
}

TEST(PartialTree, BoundsChecked) {
  const auto& h = default_hash();
  const auto leaves = make_leaves(4);
  const PartialMerkleTree partial =
      PartialMerkleTree::build(4, 1, provider_for(leaves), h);
  EXPECT_THROW(partial.prove(LeafIndex{4}, provider_for(leaves), h), Error);
}

TEST(PartialTree, EllZeroStoresFullTreeAndNeverRecomputes) {
  const auto& h = default_hash();
  const std::uint64_t n = 32;
  const auto leaves = make_leaves(n);
  const PartialMerkleTree partial =
      PartialMerkleTree::build(n, 0, provider_for(leaves), h);
  for (std::uint64_t i = 0; i < n; ++i) {
    partial.prove(LeafIndex{i}, provider_for(leaves), h);
  }
  EXPECT_EQ(partial.recomputed_leaf_count(), 0u);
  EXPECT_EQ(partial.stored_node_count(), 63u);  // 2n - 1
}

}  // namespace
}  // namespace ugc
