#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "core/sampling.h"
#include "crypto/iterated_hash.h"

namespace ugc {
namespace {

TEST(SampleWithReplacement, CorrectCountAndRange) {
  Rng rng(1);
  const auto samples = sample_with_replacement(rng, 100, 1000);
  EXPECT_EQ(samples.size(), 1000u);
  for (const LeafIndex s : samples) {
    EXPECT_LT(s.value, 100u);
  }
}

TEST(SampleWithReplacement, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(sample_with_replacement(a, 1000, 50),
            sample_with_replacement(b, 1000, 50));
}

TEST(SampleWithReplacement, ZeroSamplesAllowed) {
  Rng rng(1);
  EXPECT_TRUE(sample_with_replacement(rng, 10, 0).empty());
}

TEST(SampleWithReplacement, RejectsEmptyDomain) {
  Rng rng(1);
  EXPECT_THROW(sample_with_replacement(rng, 0, 5), Error);
}

TEST(SampleWithReplacement, CoversDomainEventually) {
  Rng rng(3);
  const auto samples = sample_with_replacement(rng, 8, 400);
  std::set<std::uint64_t> seen;
  for (const LeafIndex s : samples) seen.insert(s.value);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SampleWithoutReplacement, AllDistinct) {
  Rng rng(5);
  const auto samples = sample_without_replacement(rng, 100, 50);
  EXPECT_EQ(samples.size(), 50u);
  std::set<std::uint64_t> seen;
  for (const LeafIndex s : samples) {
    EXPECT_LT(s.value, 100u);
    EXPECT_TRUE(seen.insert(s.value).second) << "duplicate " << s.value;
  }
}

TEST(SampleWithoutReplacement, FullDomainIsPermutationOfAll) {
  Rng rng(9);
  const auto samples = sample_without_replacement(rng, 20, 20);
  std::set<std::uint64_t> seen;
  for (const LeafIndex s : samples) seen.insert(s.value);
  EXPECT_EQ(seen.size(), 20u);
}

TEST(SampleWithoutReplacement, RejectsMGreaterThanN) {
  Rng rng(1);
  EXPECT_THROW(sample_without_replacement(rng, 5, 6), Error);
}

TEST(SampleWithoutReplacement, RoughlyUniformFirstPick) {
  // Smoke check that Floyd's method doesn't bias low indices.
  int low = 0;
  for (std::uint64_t seed = 0; seed < 2000; ++seed) {
    Rng rng(seed);
    const auto samples = sample_without_replacement(rng, 100, 10);
    for (const LeafIndex s : samples) {
      if (s.value < 50) ++low;
    }
  }
  EXPECT_NEAR(static_cast<double>(low) / 20000.0, 0.5, 0.03);
}

// ------------------------------------------------------------ Eq. 4

TEST(DeriveSamples, DeterministicGivenRootAndG) {
  const auto g = make_iterated_hash(HashAlgorithm::kMd5, 1);
  const Bytes root = to_bytes("some-root-commitment-bytes");
  EXPECT_EQ(derive_samples(root, 1000, 32, *g),
            derive_samples(root, 1000, 32, *g));
}

TEST(DeriveSamples, DifferentRootsGiveDifferentSamples) {
  const auto g = make_iterated_hash(HashAlgorithm::kMd5, 1);
  const auto a = derive_samples(to_bytes("root-a"), 1 << 20, 16, *g);
  const auto b = derive_samples(to_bytes("root-b"), 1 << 20, 16, *g);
  EXPECT_NE(a, b);
}

TEST(DeriveSamples, IterationCountChangesSamples) {
  const auto g1 = make_iterated_hash(HashAlgorithm::kMd5, 1);
  const auto g2 = make_iterated_hash(HashAlgorithm::kMd5, 2);
  const Bytes root = to_bytes("root");
  EXPECT_NE(derive_samples(root, 1 << 20, 16, *g1),
            derive_samples(root, 1 << 20, 16, *g2));
}

TEST(DeriveSamples, AllInRange) {
  const auto g = make_iterated_hash(HashAlgorithm::kSha256, 1);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 100ULL, 12345ULL}) {
    const auto samples = derive_samples(to_bytes("r"), n, 64, *g);
    for (const LeafIndex s : samples) {
      EXPECT_LT(s.value, n);
    }
  }
}

TEST(DeriveSamples, ChainStructureMatchesEquation4) {
  // i_k = (g^k(root) mod n); verify against a manual chain.
  const auto g = make_iterated_hash(HashAlgorithm::kSha256, 1);
  const Bytes root = to_bytes("phi-of-R");
  const std::uint64_t n = 977;  // prime, exercises mod
  const auto samples = derive_samples(root, n, 5, *g);

  Bytes chain = root;
  for (std::size_t k = 0; k < 5; ++k) {
    chain = g->hash(chain);
    EXPECT_EQ(samples[k].value, read_u64_be(chain.data()) % n) << "k=" << k;
  }
}

TEST(DeriveSamples, RoughlyUniform) {
  const auto g = make_iterated_hash(HashAlgorithm::kSha256, 1);
  constexpr std::uint64_t kBuckets = 4;
  int counts[kBuckets] = {};
  constexpr int kTotal = 4000;
  const auto samples = derive_samples(to_bytes("u"), kBuckets, kTotal, *g);
  for (const LeafIndex s : samples) ++counts[s.value];
  for (int c : counts) {
    EXPECT_NEAR(c, kTotal / kBuckets, kTotal / kBuckets * 0.15);
  }
}

TEST(DeriveSamplesEarlyExit, StopsAtFirstRejection) {
  const auto g = make_iterated_hash(HashAlgorithm::kSha256, 1);
  const Bytes root = to_bytes("early");
  const std::uint64_t n = 100;
  const auto full = derive_samples(root, n, 20, *g);

  // Reject the 4th sample (index 3): derivation must stop there.
  std::vector<LeafIndex> out;
  std::size_t calls = 0;
  const std::uint64_t g_used = derive_samples_early_exit(
      root, n, 20, *g,
      [&](LeafIndex) { return ++calls < 4; }, out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(g_used, 4u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], full[i]);
  }
}

TEST(DeriveSamplesEarlyExit, AcceptAllMatchesDeriveSamples) {
  const auto g = make_iterated_hash(HashAlgorithm::kMd5, 3);
  const Bytes root = to_bytes("all");
  std::vector<LeafIndex> out;
  const std::uint64_t g_used = derive_samples_early_exit(
      root, 64, 10, *g, [](LeafIndex) { return true; }, out);
  EXPECT_EQ(g_used, 10u);
  EXPECT_EQ(out, derive_samples(root, 64, 10, *g));
}

}  // namespace
}  // namespace ugc
