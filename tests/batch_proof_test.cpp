#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "crypto/hash_function.h"
#include "merkle/batch_proof.h"
#include "merkle/proof.h"
#include "merkle/tree.h"

namespace ugc {
namespace {

std::vector<Bytes> make_leaves(std::uint64_t n) {
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes leaf(16);
    put_u64_be(i, leaf.data());
    put_u64_be(i * 0x9e3779b97f4a7c15ULL, leaf.data() + 8);
    leaves.push_back(std::move(leaf));
  }
  return leaves;
}

TEST(BatchProof, SingleLeafEqualsOrdinaryProofSemantics) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(16), h);
  const std::vector<LeafIndex> indices = {LeafIndex{5}};
  const BatchProof batch = make_batch_proof(tree, indices);
  EXPECT_TRUE(verify_batch_proof(batch, tree.root(), h));
  // One leaf needs the full path: exactly height() siblings.
  EXPECT_EQ(batch.siblings.size(), tree.height());
}

TEST(BatchProof, SingleLeafTree) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(1), h);
  const std::vector<LeafIndex> indices = {LeafIndex{0}};
  const BatchProof batch = make_batch_proof(tree, indices);
  EXPECT_TRUE(batch.siblings.empty());
  EXPECT_TRUE(verify_batch_proof(batch, tree.root(), h));
}

TEST(BatchProof, AdjacentLeavesShareEverything) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(16), h);
  // Leaves 6 and 7 are siblings: no level-0 sibling needed at all.
  const std::vector<LeafIndex> indices = {LeafIndex{6}, LeafIndex{7}};
  const BatchProof batch = make_batch_proof(tree, indices);
  EXPECT_EQ(batch.siblings.size(), tree.height() - 1);
  EXPECT_TRUE(verify_batch_proof(batch, tree.root(), h));
}

TEST(BatchProof, AllLeavesNeedNoSiblings) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(32), h);
  std::vector<LeafIndex> all;
  for (std::uint64_t i = 0; i < 32; ++i) {
    all.push_back(LeafIndex{i});
  }
  const BatchProof batch = make_batch_proof(tree, all);
  EXPECT_TRUE(batch.siblings.empty());
  EXPECT_TRUE(verify_batch_proof(batch, tree.root(), h));
}

TEST(BatchProof, DuplicateIndicesAreDeduplicated) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(16), h);
  const std::vector<LeafIndex> indices = {LeafIndex{3}, LeafIndex{3},
                                          LeafIndex{3}};
  const BatchProof batch = make_batch_proof(tree, indices);
  EXPECT_EQ(batch.leaves.size(), 1u);
  EXPECT_TRUE(verify_batch_proof(batch, tree.root(), h));
}

TEST(BatchProof, UnsortedInputHandled) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(64), h);
  const std::vector<LeafIndex> indices = {LeafIndex{40}, LeafIndex{3},
                                          LeafIndex{17}};
  const BatchProof batch = make_batch_proof(tree, indices);
  EXPECT_TRUE(verify_batch_proof(batch, tree.root(), h));
}

struct BatchCase {
  std::uint64_t n;
  std::size_t m;
  std::uint64_t seed;
};

class BatchProofSweep : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchProofSweep, RandomSubsetsVerify) {
  const auto [n, m, seed] = GetParam();
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(n), h);
  Rng rng(seed);
  std::vector<LeafIndex> indices;
  for (std::size_t k = 0; k < m; ++k) {
    indices.push_back(LeafIndex{rng.uniform(n)});
  }
  const BatchProof batch = make_batch_proof(tree, indices);
  EXPECT_TRUE(verify_batch_proof(batch, tree.root(), h));

  // Never more siblings than m independent paths would carry.
  EXPECT_LE(batch.siblings.size(), indices.size() * tree.height());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BatchProofSweep,
    ::testing::Values(BatchCase{2, 1, 1}, BatchCase{8, 3, 2},
                      BatchCase{33, 5, 3},  // padded tree
                      BatchCase{64, 16, 4}, BatchCase{100, 10, 5},
                      BatchCase{256, 33, 6}, BatchCase{1000, 64, 7},
                      BatchCase{1024, 128, 8}, BatchCase{1024, 1024, 9}));

TEST_P(BatchProofSweep, TamperedLeafFailsVerification) {
  const auto [n, m, seed] = GetParam();
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(n), h);
  Rng rng(seed + 100);
  std::vector<LeafIndex> indices;
  for (std::size_t k = 0; k < m; ++k) {
    indices.push_back(LeafIndex{rng.uniform(n)});
  }
  BatchProof batch = make_batch_proof(tree, indices);
  batch.leaves.front().second[0] ^= 0x01;
  EXPECT_FALSE(verify_batch_proof(batch, tree.root(), h));
}

TEST_P(BatchProofSweep, TamperedSiblingFailsVerification) {
  const auto [n, m, seed] = GetParam();
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(n), h);
  Rng rng(seed + 200);
  std::vector<LeafIndex> indices;
  for (std::size_t k = 0; k < m; ++k) {
    indices.push_back(LeafIndex{rng.uniform(n)});
  }
  BatchProof batch = make_batch_proof(tree, indices);
  if (batch.siblings.empty()) {
    GTEST_SKIP() << "fully covered tree has no siblings to tamper with";
  }
  batch.siblings.back()[0] ^= 0x80;
  EXPECT_FALSE(verify_batch_proof(batch, tree.root(), h));
}

TEST(BatchProof, SavesSiblingsVersusIndependentPaths) {
  const auto& h = default_hash();
  const std::uint64_t n = 1 << 12;
  const std::size_t m = 64;
  const MerkleTree tree = MerkleTree::build(make_leaves(n), h);
  Rng rng(77);
  std::vector<LeafIndex> indices;
  for (std::size_t k = 0; k < m; ++k) {
    indices.push_back(LeafIndex{rng.uniform(n)});
  }
  const BatchProof batch = make_batch_proof(tree, indices);
  const std::size_t independent = m * tree.height();
  EXPECT_LT(batch.siblings.size(), independent * 3 / 4)
      << "expected >25% sibling dedup at m=64, n=4096";
}

// ---------------------------------------------------- malformed proofs

TEST(BatchProof, MalformedProofsRejectedNotCrashing) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(16), h);
  const BatchProof good =
      make_batch_proof(tree, std::vector<LeafIndex>{LeafIndex{2}, LeafIndex{9}});

  {
    BatchProof bad = good;
    bad.padded_leaf_count = 15;  // not a power of two
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h));
  }
  {
    BatchProof bad = good;
    bad.leaves.clear();
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h));
  }
  {
    BatchProof bad = good;
    std::swap(bad.leaves[0], bad.leaves[1]);  // unsorted
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h));
  }
  {
    BatchProof bad = good;
    bad.leaves.push_back({LeafIndex{99}, to_bytes("x")});  // out of range
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h));
  }
  {
    BatchProof bad = good;
    bad.siblings.pop_back();  // stream exhausted mid-verification
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h));
  }
  {
    BatchProof bad = good;
    bad.siblings.push_back(to_bytes("extra"));  // unconsumed siblings
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h));
  }
}

// Adversarial shapes against the allocation-free verify path: every
// malformed proof must be rejected (false / non-null reason), never crash
// or read out of bounds (the CI ASan leg watches the latter).
TEST(BatchProof, AdversarialProofsRejectedOnScratchPath) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(64), h);
  const BatchProof good = make_batch_proof(
      tree, std::vector<LeafIndex>{LeafIndex{3}, LeafIndex{17}, LeafIndex{40}});
  BatchVerifyScratch scratch;
  ASSERT_TRUE(verify_batch_proof(good, tree.root(), h, scratch));

  {
    BatchProof bad = good;  // truncated sibling list
    bad.siblings.resize(bad.siblings.size() / 2);
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h, scratch));
  }
  {
    BatchProof bad = good;  // duplicated leaf index
    bad.leaves.push_back(bad.leaves.back());
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h, scratch));
  }
  {
    BatchProof bad = good;  // out-of-range position
    bad.leaves.back().first = LeafIndex{1 << 20};
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h, scratch));
  }
  {
    BatchProof bad = good;  // wrong padded_leaf_count: zero
    bad.padded_leaf_count = 0;
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h, scratch));
  }
  {
    BatchProof bad = good;  // wrong padded_leaf_count: not a power of two
    bad.padded_leaf_count = 63;
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h, scratch));
  }
  {
    BatchProof bad = good;  // wrong padded_leaf_count: smaller than positions
    bad.padded_leaf_count = 16;
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h, scratch));
  }
  {
    // Hostile width: a huge (but valid power-of-two) padded_leaf_count must
    // run out of siblings and reject rather than loop usefully or crash.
    BatchProof bad = good;
    bad.padded_leaf_count = std::uint64_t{1} << 62;
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h, scratch));
  }
  {
    BatchProof bad = good;  // empty leaves
    bad.leaves.clear();
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h, scratch));
  }
  {
    BatchProof bad = good;  // leftover siblings
    bad.siblings.push_back(Bytes(32, 0xee));
    EXPECT_FALSE(verify_batch_proof(bad, tree.root(), h, scratch));
  }
  // The scratch is not poisoned by rejected proofs: the good proof still
  // verifies afterwards through the same scratch.
  EXPECT_TRUE(verify_batch_proof(good, tree.root(), h, scratch));
}

TEST(BatchProof, ReconstructMatchesComputeBatchRoot) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(100), h);
  Rng rng(11);
  std::vector<LeafIndex> indices;
  for (int k = 0; k < 9; ++k) {
    indices.push_back(LeafIndex{rng.uniform(100)});
  }
  const BatchProof proof = make_batch_proof(tree, indices);
  const Bytes reference = compute_batch_root(proof, h);

  BatchVerifyScratch scratch;
  scratch.leaf_views.clear();
  for (const auto& [index, value] : proof.leaves) {
    scratch.leaf_views.push_back(BatchLeafView{index.value, value});
  }
  scratch.sibling_views.assign(proof.siblings.begin(), proof.siblings.end());
  BytesView root;
  const char* reason =
      reconstruct_batch_root(proof.padded_leaf_count, scratch.leaf_views,
                             scratch.sibling_views, h, scratch, &root);
  ASSERT_EQ(reason, nullptr);
  EXPECT_TRUE(equal_bytes(root, reference));
}

TEST(BatchProof, ScratchReuseAcrossDifferentTreesIsClean) {
  const auto& h = default_hash();
  BatchVerifyScratch scratch;
  for (const std::uint64_t n : {4u, 128u, 33u, 1024u, 2u}) {
    const MerkleTree tree = MerkleTree::build(make_leaves(n), h);
    Rng rng(n);
    std::vector<LeafIndex> indices = {LeafIndex{rng.uniform(n)},
                                      LeafIndex{rng.uniform(n)}};
    const BatchProof proof = make_batch_proof(tree, indices);
    EXPECT_TRUE(verify_batch_proof(proof, tree.root(), h, scratch))
        << "n=" << n;
  }
}

TEST(BatchProof, GenerationValidatesIndices) {
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(8), h);
  EXPECT_THROW(
      make_batch_proof(tree, std::vector<LeafIndex>{LeafIndex{8}}), Error);
  EXPECT_THROW(make_batch_proof(tree, std::vector<LeafIndex>{}), Error);
}

TEST(BatchProof, PaddedTreeLeavesProvable) {
  // n = 33 pads to 64; proving the last real leaf must work and padding
  // positions must stay unprovable.
  const auto& h = default_hash();
  const MerkleTree tree = MerkleTree::build(make_leaves(33), h);
  const BatchProof batch =
      make_batch_proof(tree, std::vector<LeafIndex>{LeafIndex{32}});
  EXPECT_TRUE(verify_batch_proof(batch, tree.root(), h));
  EXPECT_THROW(
      make_batch_proof(tree, std::vector<LeafIndex>{LeafIndex{33}}), Error);
}

}  // namespace
}  // namespace ugc
