#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "grid/simulation.h"
#include "scheme/cbs_scheme.h"
#include "scheme/registry.h"

namespace ugc {
namespace {

// ---------------------------------------------------------------- registry

TEST(SchemeRegistry, AllBuiltinsResolvableByKindAndName) {
  SchemeRegistry& registry = SchemeRegistry::global();
  for (const SchemeKind kind :
       {SchemeKind::kDoubleCheck, SchemeKind::kNaiveSampling, SchemeKind::kCbs,
        SchemeKind::kNiCbs, SchemeKind::kRinger}) {
    ASSERT_TRUE(registry.contains(kind)) << to_string(kind);
    const VerificationScheme& scheme = registry.by_kind(kind);
    EXPECT_EQ(scheme.kind(), kind);
    EXPECT_EQ(scheme.name(), to_string(kind));
    EXPECT_EQ(&registry.by_name(scheme.name()), &scheme);
  }
  // Five kind-addressed builtins plus the name-only "pipelined-cbs".
  EXPECT_EQ(registry.names().size(), 6u);
  ASSERT_TRUE(registry.contains("pipelined-cbs"));
  EXPECT_EQ(registry.by_name("pipelined-cbs").kind(), std::nullopt);
}

TEST(SchemeRegistry, ResolvePrefersNameOverKind) {
  SchemeRegistry& registry = SchemeRegistry::global();
  SchemeConfig config;
  config.kind = SchemeKind::kCbs;
  config.name = "ringer";
  EXPECT_EQ(registry.resolve(config).name(), "ringer");
  config.name.clear();
  EXPECT_EQ(registry.resolve(config).name(), "cbs");
}

TEST(SchemeRegistry, UnknownKeysThrow) {
  const SchemeRegistry empty;
  EXPECT_THROW(empty.by_name("nope"), Error);
  EXPECT_THROW(empty.by_kind(SchemeKind::kCbs), Error);
  EXPECT_THROW(SchemeRegistry::global().by_name("not-a-scheme"), Error);
  EXPECT_THROW(SchemeRegistry{}.register_scheme(nullptr), Error);
  EXPECT_FALSE(SchemeRegistry::global().contains("not-a-scheme"));
}

// --------------------------------------------- custom scheme, end to end

// A deliberately tiny custom scheme: the participant uploads every result,
// the supervisor spot-checks exactly the first position. Enough to prove the
// grid runs schemes it has never heard of — one registry entry, no enum.
class SpotOneParticipantSession final : public QueuedParticipantSession {
 public:
  explicit SpotOneParticipantSession(ParticipantContext context)
      : task_(std::move(context.task)),
        policy_(context.policy != nullptr ? std::move(context.policy)
                                          : make_honest_policy()) {
    ResultsUpload upload;
    upload.task = task_.id;
    const std::uint64_t n = task_.domain.size();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto decision = policy_->decide(LeafIndex{i}, task_);
      if (decision.honest) {
        ++honest_evaluations_;
      }
      upload.results.push_back(decision.value);
    }
    push(std::move(upload));
  }

  void on_message(const SchemeMessage&) override {}
  ScreenerReport screener_report() const override {
    return ScreenerReport{task_.id, {}};
  }
  std::uint64_t honest_evaluations() const override {
    return honest_evaluations_;
  }
  bool finished() const override { return true; }

 private:
  Task task_;
  std::shared_ptr<const HonestyPolicy> policy_;
  std::uint64_t honest_evaluations_ = 0;
};

class SpotOneSupervisorSession final : public QueuedSupervisorSession {
 public:
  explicit SpotOneSupervisorSession(SupervisorContext context)
      : task_(std::move(context.tasks.at(0))),
        verifier_(std::move(context.verifier)) {}

  void on_message(TaskId task, const SchemeMessage& message) override {
    const auto* upload = std::get_if<ResultsUpload>(&message);
    if (upload == nullptr || task != task_.id || settled(task)) {
      return;
    }
    Verdict verdict;
    verdict.task = task_.id;
    if (upload->results.size() != task_.domain.size()) {
      verdict.status = VerdictStatus::kMalformed;
    } else {
      count_verified(1);
      const bool ok = verifier_->verify(task_.domain.input(LeafIndex{0}),
                                        upload->results.front());
      verdict.status =
          ok ? VerdictStatus::kAccepted : VerdictStatus::kWrongResult;
    }
    settle(std::move(verdict));
  }

 private:
  Task task_;
  std::shared_ptr<const ResultVerifier> verifier_;
};

class SpotOneScheme : public VerificationScheme {
 public:
  std::string name() const override { return "spot-one"; }

  std::unique_ptr<ParticipantSession> open_participant(
      ParticipantContext context) const override {
    return std::make_unique<SpotOneParticipantSession>(std::move(context));
  }
  std::unique_ptr<SupervisorSession> open_supervisor(
      SupervisorContext context) const override {
    return std::make_unique<SpotOneSupervisorSession>(std::move(context));
  }
};

TEST(SchemeRegistry, CustomSchemeRunsThroughSimulation) {
  SchemeRegistry registry;
  registry.register_scheme(std::make_shared<SpotOneScheme>());

  GridConfig config;
  config.domain_end = 1 << 8;
  config.participant_count = 3;
  config.scheme.name = "spot-one";  // never touches SchemeKind
  config.schemes = &registry;
  config.seed = 29;

  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.honest_tasks_accepted, 3u);
  EXPECT_EQ(result.honest_tasks_rejected, 0u);
  EXPECT_EQ(result.results_verified, 3u);  // one spot-check per task
  EXPECT_EQ(result.participant_evaluations, 1u << 8);
}

TEST(SchemeRegistry, CustomSchemeCatchesAlwaysWrongFirstLeaf) {
  SchemeRegistry registry;
  registry.register_scheme(std::make_shared<SpotOneScheme>());

  GridConfig config;
  config.domain_end = 1 << 8;
  config.participant_count = 2;
  config.scheme.name = "spot-one";
  config.schemes = &registry;
  config.seed = 31;
  // r = 0: every leaf is guessed, so the spot-checked first leaf is wrong.
  config.cheaters = {{1, 0.0, 0.0, 0}};

  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.cheater_tasks_rejected, 1u);
  EXPECT_EQ(result.honest_tasks_accepted, 1u);
}

// A scheme whose *supervisor* speaks first: it challenges unprompted at
// open time, and the participant answers with an upload. Exercises the
// start()-time session drain in SupervisorNode.
class PushFirstParticipantSession final : public QueuedParticipantSession {
 public:
  explicit PushFirstParticipantSession(ParticipantContext context)
      : task_(std::move(context.task)) {}

  void on_message(const SchemeMessage& message) override {
    if (std::holds_alternative<SampleChallenge>(message)) {
      ++honest_evaluations_;  // pretend-work, enough for accounting checks
      push(ResultsUpload{task_.id, {task_.f->evaluate(task_.domain.begin())}});
    }
  }
  ScreenerReport screener_report() const override {
    return ScreenerReport{task_.id, {}};
  }
  std::uint64_t honest_evaluations() const override {
    return honest_evaluations_;
  }
  bool finished() const override { return false; }

 private:
  Task task_;
  std::uint64_t honest_evaluations_ = 0;
};

class PushFirstSupervisorSession final : public QueuedSupervisorSession {
 public:
  explicit PushFirstSupervisorSession(SupervisorContext context)
      : task_(std::move(context.tasks.at(0))) {
    // Opening move from the supervisor side, before any participant input.
    push(task_.id, SampleChallenge{task_.id, {LeafIndex{0}}});
  }

  void on_message(TaskId task, const SchemeMessage& message) override {
    if (std::holds_alternative<ResultsUpload>(message) && !settled(task)) {
      settle(Verdict{task_.id, VerdictStatus::kAccepted, {}, "answered"});
    }
  }

 private:
  Task task_;
};

class PushFirstScheme final : public VerificationScheme {
 public:
  std::string name() const override { return "push-first"; }
  std::unique_ptr<ParticipantSession> open_participant(
      ParticipantContext context) const override {
    return std::make_unique<PushFirstParticipantSession>(std::move(context));
  }
  std::unique_ptr<SupervisorSession> open_supervisor(
      SupervisorContext context) const override {
    return std::make_unique<PushFirstSupervisorSession>(std::move(context));
  }
};

TEST(SchemeRegistry, SupervisorFirstSchemeRunsThroughSimulation) {
  SchemeRegistry registry;
  registry.register_scheme(std::make_shared<PushFirstScheme>());

  GridConfig config;
  config.domain_end = 64;
  config.participant_count = 2;
  config.scheme.name = "push-first";
  config.schemes = &registry;

  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.honest_tasks_accepted, 2u);
}

TEST(SchemeRegistry, ReplacingANameDropsItsStaleKindRoute) {
  SchemeRegistry registry;
  registry.register_scheme(make_cbs_scheme());
  ASSERT_TRUE(registry.contains(SchemeKind::kCbs));

  // Replace "cbs" with a kind-less custom scheme: the old kind route must
  // not keep dispatching to the displaced registration.
  class KindlessCbs final : public SpotOneScheme {
   public:
    std::string name() const override { return "cbs"; }
  };
  registry.register_scheme(std::make_shared<KindlessCbs>());
  EXPECT_FALSE(registry.contains(SchemeKind::kCbs));
  EXPECT_EQ(registry.by_name("cbs").kind(), std::nullopt);
}

TEST(SchemeRegistry, UnknownSchemeNameFailsSimulation) {
  GridConfig config;
  config.domain_end = 64;
  config.participant_count = 1;
  config.scheme.name = "no-such-scheme";
  EXPECT_THROW(run_grid_simulation(config), Error);
}

}  // namespace
}  // namespace ugc
