// The expanded adversary suite: the adaptive sleeper, the colluding
// position-sharing cheater, and the commitment-equivocation attacker — each
// exercised against the real verifiers (and, where it matters, against a
// deliberately weakened one, to show exactly which defense carries the
// load).

#include <gtest/gtest.h>

#include "core/cbs.h"
#include "core/cheating.h"
#include "grid/reputation.h"
#include "grid/simulation.h"
#include "scheme/attacker.h"
#include "scheme/registry.h"
#include "test_util.h"

namespace ugc {
namespace {

using ugc::testing::make_test_task;

// ---------------------------------------------------------------- adaptive

TEST(AdaptiveCheater, HonestUntilActivationThenCheats) {
  const Task task = make_test_task(64);
  const auto sleeper = make_adaptive_cheater({2, 0.3, 0.0, 42});

  EXPECT_FALSE(sleeper->active());
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(sleeper->computes_honestly(LeafIndex{i}));
    EXPECT_TRUE(sleeper->decide(LeafIndex{i}, task).honest);
  }

  sleeper->observe_verdict(true);
  EXPECT_FALSE(sleeper->active());
  sleeper->observe_verdict(false);  // rejections don't build cover
  EXPECT_FALSE(sleeper->active());
  sleeper->observe_verdict(true);
  EXPECT_TRUE(sleeper->active());
  EXPECT_EQ(sleeper->audits_survived(), 2u);

  std::size_t honest = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    honest += sleeper->computes_honestly(LeafIndex{i}) ? 1 : 0;
  }
  EXPECT_LT(honest, 40u);  // now roughly r = 0.3 of the domain
  EXPECT_GT(honest, 5u);
}

TEST(AdaptiveCheater, SleeperSurvivesEarlyRoundsThenGetsBanned) {
  TournamentConfig config;
  config.base.domain_end = 1 << 9;
  config.base.participant_count = 4;
  config.base.seed = 5;
  config.base.scheme.kind = SchemeKind::kCbs;
  config.base.scheme.cbs.sample_count = 16;
  config.rounds = 10;

  const auto sleeper = make_adaptive_cheater({3, 0.4, 0.0, 77});
  config.base.policy_cheaters.push_back(PolicyCheaterSpec{2, sleeper});

  const TournamentResult result = run_reputation_tournament(config);

  // The honest phase sails through (one-shot analysis never flags it) ...
  EXPECT_EQ(result.rounds[0].cheater_tasks_rejected, 0u);
  EXPECT_EQ(result.rounds[0].cheater_tasks_accepted, 1u);
  EXPECT_TRUE(sleeper->active());
  // ... but once active, Theorem 3 applies per round and reputation purges
  // it before the tournament ends.
  EXPECT_TRUE(result.final_banned[2]);
  EXPECT_LE(result.cheaters_purged_after, config.rounds);
  // Nobody honest was harmed along the way.
  for (const TournamentRound& round : result.rounds) {
    EXPECT_EQ(round.honest_tasks_rejected, 0u);
  }
}

// --------------------------------------------------------------- colluding

class CollusionCbs : public ::testing::Test {
 protected:
  CollusionCbs()
      : task_(make_test_task(256)),
        verifier_(std::make_shared<RecomputeVerifier>(task_.f)) {
    config_.sample_count = 10;
  }

  std::vector<std::uint64_t> leak_positions(std::uint64_t supervisor_seed) {
    CbsParticipant colluder_first(task_, config_, make_honest_policy());
    CbsSupervisor supervisor(task_, config_, verifier_, Rng(supervisor_seed));
    const SampleChallenge challenge =
        supervisor.challenge(colluder_first.commit());
    std::vector<std::uint64_t> leaked;
    for (const LeafIndex index : challenge.samples) {
      leaked.push_back(index.value);
    }
    return leaked;
  }

  Task task_;
  CbsConfig config_;
  std::shared_ptr<const ResultVerifier> verifier_;
};

TEST_F(CollusionCbs, LeakedPositionsDefeatASupervisorThatReusesItsSeed) {
  const std::vector<std::uint64_t> leaked = leak_positions(500);

  // The second ring member computes only the leaked m positions — a 26x
  // work reduction on this task — and escapes with certainty because the
  // weakened supervisor replays the same challenge.
  CbsParticipant member(task_, config_, make_colluding_cheater(leaked, 9));
  CbsSupervisor replaying(task_, config_, verifier_, Rng(500));
  const SampleChallenge challenge = replaying.challenge(member.commit());
  const Verdict verdict = replaying.verify(member.respond(challenge));
  EXPECT_TRUE(verdict.accepted());
}

TEST_F(CollusionCbs, FreshChallengeRandomnessRestoresTheBound) {
  const std::vector<std::uint64_t> leaked = leak_positions(500);

  // Same attacker, fresh supervisor seed: its effective r is m/n ≈ 0.04,
  // so Theorem 3 gives an escape probability of r^m ≈ 10^-14.
  CbsParticipant member(task_, config_, make_colluding_cheater(leaked, 9));
  CbsSupervisor fresh(task_, config_, verifier_, Rng(501));
  const SampleChallenge challenge = fresh.challenge(member.commit());
  const Verdict verdict = fresh.verify(member.respond(challenge));
  EXPECT_FALSE(verdict.accepted());
}

TEST(ColludingCheater, CaughtByEveryRegisteredSchemeOnTheGrid) {
  for (const std::string& name : SchemeRegistry::global().names()) {
    GridConfig config;
    config.domain_end = 1 << 9;
    config.participant_count = name == "double-check" ? 2u : 1u;
    config.seed = 31;
    config.scheme.name = name;
    config.scheme.cbs.sample_count = 16;
    config.scheme.nicbs.sample_count = 16;
    config.scheme.naive.sample_count = 16;
    config.scheme.ringer.ringer_count = 8;
    // The grid draws fresh per-session randomness, so a stale leak is
    // worthless: the ring member is just a very lazy cheater.
    config.policy_cheaters.push_back(
        PolicyCheaterSpec{0, make_colluding_cheater({3, 7, 11, 42}, 13)});
    const GridRunResult result = run_grid_simulation(config);
    EXPECT_GE(result.cheater_tasks_rejected, 1u) << name;
    EXPECT_EQ(result.cheater_tasks_accepted, 0u) << name;
  }
}

// ------------------------------------------------------------ equivocation

SchemeRegistry with_equivocators() {
  SchemeRegistry schemes;
  for (const std::string& name : SchemeRegistry::global().names()) {
    schemes.register_scheme(SchemeRegistry::global().share(name));
  }
  register_equivocating_schemes(schemes);
  return schemes;
}

GridConfig equivocation_config(const std::string& scheme_name,
                               std::uint64_t seed) {
  GridConfig config;
  config.domain_end = 1 << 9;
  config.participant_count = 2;
  config.seed = seed;
  config.scheme.name = scheme_name;
  config.scheme.cbs.sample_count = 16;
  config.scheme.nicbs.sample_count = 16;
  config.scheme.naive.sample_count = 16;
  config.scheme.ringer.ringer_count = 8;
  return config;
}

TEST(Equivocator, RegistersAVariantForEveryBaseScheme) {
  SchemeRegistry schemes = with_equivocators();
  for (const char* base :
       {"cbs", "ni-cbs", "ringer", "naive-sampling", "double-check"}) {
    EXPECT_TRUE(schemes.contains(std::string(base) + "+equivocate")) << base;
  }
  // Attacked variants are never stacked.
  EXPECT_FALSE(schemes.contains("cbs+equivocate+equivocate"));
}

TEST(Equivocator, CommitmentSchemesCatchItDeterministically) {
  SchemeRegistry schemes = with_equivocators();
  for (const char* name : {"cbs+equivocate", "ni-cbs+equivocate"}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      GridConfig config = equivocation_config(name, seed);
      config.schemes = &schemes;
      const GridRunResult result = run_grid_simulation(config);
      ASSERT_EQ(result.outcomes.size(), 2u);
      for (const ParticipantOutcome& outcome : result.outcomes) {
        // Proofs from the second tree can never authenticate against the
        // first tree's root: rejection is certain, not probabilistic.
        EXPECT_FALSE(outcome.accepted) << name << " seed " << seed;
        EXPECT_TRUE(outcome.status == VerdictStatus::kRootMismatch ||
                    outcome.status == VerdictStatus::kMalformed ||
                    outcome.status == VerdictStatus::kWrongResult)
            << name << " seed " << seed << ": "
            << to_string(outcome.status);
      }
    }
  }
}

TEST(Equivocator, BatchedCbsCatchesItToo) {
  SchemeRegistry schemes = with_equivocators();
  GridConfig config = equivocation_config("cbs+equivocate", 3);
  config.schemes = &schemes;
  config.scheme.cbs.use_batch_proofs = true;
  const GridRunResult result = run_grid_simulation(config);
  ASSERT_EQ(result.outcomes.size(), 2u);
  for (const ParticipantOutcome& outcome : result.outcomes) {
    EXPECT_FALSE(outcome.accepted);
  }
}

TEST(Equivocator, RunsThroughEveryRegisteredSchemeViaTheRegistry) {
  SchemeRegistry schemes = with_equivocators();
  for (const std::string& name : schemes.names()) {
    if (name.find(kEquivocateSuffix) == std::string::npos) {
      continue;
    }
    GridConfig config = equivocation_config(name, 11);
    config.schemes = &schemes;
    const GridRunResult result = run_grid_simulation(config);
    ASSERT_EQ(result.outcomes.size(), 2u) << name;
    // Commitment-free bases degrade the attack to semi-honest guessing;
    // at r = 0.5 and m = 16 the escape probability is ~1.5e-5, so with
    // this pinned seed nothing gets through anywhere.
    for (const ParticipantOutcome& outcome : result.outcomes) {
      EXPECT_FALSE(outcome.accepted) << name;
    }
  }
}

TEST(Equivocator, HonestSideStillScreensFaithfully) {
  // The equivocator's screener channel comes from its honest half, so the
  // planted key is found and reported — and the supervisor still rejects
  // the task, which keeps the hit out of the accepted set for
  // report-trusting schemes.
  SchemeRegistry schemes = with_equivocators();
  GridConfig config = equivocation_config("cbs+equivocate", 21);
  config.schemes = &schemes;
  config.workload = "keysearch";
  config.workload_seed = 5;
  const GridRunResult result = run_grid_simulation(config);
  EXPECT_TRUE(result.hits.empty());
  for (const ParticipantOutcome& outcome : result.outcomes) {
    EXPECT_FALSE(outcome.accepted);
  }
}

}  // namespace
}  // namespace ugc
