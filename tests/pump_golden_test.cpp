// Golden determinism pins for the parallel session pump: a grid run, a
// reputation tournament, and the parallel exchange pump must produce
// byte-identical verdicts, metrics, hits, and reputation state for every
// thread count, including the serial baseline.

#include <gtest/gtest.h>

#include "grid/reputation.h"
#include "grid/simulation.h"
#include "scheme/exchange.h"
#include "scheme/registry.h"
#include "workloads/registry.h"

namespace ugc {
namespace {

GridConfig mixed_config(const std::string& scheme_name) {
  GridConfig config;
  config.domain_begin = 0;
  config.domain_end = 1 << 10;
  config.workload = "test";
  config.participant_count = 8;
  config.seed = 1234;
  config.scheme.name = scheme_name;
  // Mixed population: two distinct cheaters plus two malicious screeners.
  config.cheaters.push_back(CheaterSpec{1, 0.5, 0.0, 0});
  config.cheaters.push_back(CheaterSpec{3, 0.9, 0.25, 0});
  config.malicious.push_back(MaliciousSpec{2, ScreenerConduct::kSuppress});
  config.malicious.push_back(MaliciousSpec{5, ScreenerConduct::kFabricate});
  return config;
}

void expect_identical_runs(const GridRunResult& serial,
                           const GridRunResult& parallel) {
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    const ParticipantOutcome& a = serial.outcomes[i];
    const ParticipantOutcome& b = parallel.outcomes[i];
    EXPECT_EQ(a.task, b.task) << "outcome " << i;
    EXPECT_EQ(a.participant_index, b.participant_index) << "outcome " << i;
    EXPECT_EQ(a.was_cheater, b.was_cheater) << "outcome " << i;
    EXPECT_EQ(a.accepted, b.accepted) << "outcome " << i;
    EXPECT_EQ(a.status, b.status) << "outcome " << i;
  }
  EXPECT_EQ(serial.cheater_tasks_rejected, parallel.cheater_tasks_rejected);
  EXPECT_EQ(serial.cheater_tasks_accepted, parallel.cheater_tasks_accepted);
  EXPECT_EQ(serial.honest_tasks_accepted, parallel.honest_tasks_accepted);
  EXPECT_EQ(serial.honest_tasks_rejected, parallel.honest_tasks_rejected);
  EXPECT_EQ(serial.hits, parallel.hits);
  EXPECT_EQ(serial.participant_evaluations, parallel.participant_evaluations);
  EXPECT_EQ(serial.supervisor_evaluations, parallel.supervisor_evaluations);
  EXPECT_EQ(serial.results_verified, parallel.results_verified);
  EXPECT_EQ(serial.messages_delivered, parallel.messages_delivered);
  EXPECT_EQ(serial.network.total_messages, parallel.network.total_messages);
  EXPECT_EQ(serial.network.total_bytes, parallel.network.total_bytes);
}

TEST(PumpGolden, GridParallelPumpMatchesSerialAcrossSchemes) {
  for (const char* scheme : {"cbs", "ni-cbs", "ringer", "naive-sampling"}) {
    GridConfig serial_config = mixed_config(scheme);
    const GridRunResult serial = run_grid_simulation(serial_config);

    for (const unsigned threads : {4u, 0u}) {
      GridConfig parallel_config = mixed_config(scheme);
      parallel_config.supervisor_pump_threads = threads;
      const GridRunResult parallel = run_grid_simulation(parallel_config);
      SCOPED_TRACE(std::string(scheme) + " threads=" +
                   std::to_string(threads));
      expect_identical_runs(serial, parallel);
    }
  }
}

TEST(PumpGolden, GridParallelPumpMatchesSerialForBatchedAndSprtCbs) {
  for (const bool sprt : {false, true}) {
    GridConfig serial_config = mixed_config("cbs");
    serial_config.scheme.cbs.use_batch_proofs = !sprt;
    serial_config.scheme.cbs.use_sprt = sprt;
    const GridRunResult serial = run_grid_simulation(serial_config);

    GridConfig parallel_config = serial_config;
    parallel_config.supervisor_pump_threads = 4;
    const GridRunResult parallel = run_grid_simulation(parallel_config);
    SCOPED_TRACE(sprt ? "sprt" : "batched");
    expect_identical_runs(serial, parallel);
  }
}

TEST(PumpGolden, ReputationTournamentStateIsPumpInvariant) {
  TournamentConfig serial_config;
  serial_config.base = mixed_config("cbs");
  serial_config.rounds = 6;
  const TournamentResult serial = run_reputation_tournament(serial_config);

  TournamentConfig parallel_config = serial_config;
  parallel_config.base.supervisor_pump_threads = 4;
  const TournamentResult parallel = run_reputation_tournament(parallel_config);

  // Reputation posteriors fold verdicts in a fixed order, so the doubles
  // must be bitwise identical, not merely close.
  ASSERT_EQ(serial.final_trust.size(), parallel.final_trust.size());
  for (std::size_t i = 0; i < serial.final_trust.size(); ++i) {
    EXPECT_EQ(serial.final_trust[i], parallel.final_trust[i]) << i;
  }
  EXPECT_EQ(serial.final_banned, parallel.final_banned);
  EXPECT_EQ(serial.cheaters_purged_after, parallel.cheaters_purged_after);
  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    EXPECT_EQ(serial.rounds[i].active_participants,
              parallel.rounds[i].active_participants);
    EXPECT_EQ(serial.rounds[i].cheater_tasks_rejected,
              parallel.rounds[i].cheater_tasks_rejected);
    EXPECT_EQ(serial.rounds[i].cheater_tasks_accepted,
              parallel.rounds[i].cheater_tasks_accepted);
    EXPECT_EQ(serial.rounds[i].honest_tasks_rejected,
              parallel.rounds[i].honest_tasks_rejected);
  }
}

TEST(PumpGolden, ParallelExchangePumpMatchesSerial) {
  const auto f = std::make_shared<CountingComputeFunction>(
      WorkloadRegistry::global().make("test", 1).f);
  std::vector<Task> tasks;
  for (std::uint64_t i = 0; i < 12; ++i) {
    tasks.push_back(
        Task::make(TaskId{i + 1}, Domain(i * 256, (i + 1) * 256), f));
  }
  const auto cheater = make_semi_honest_cheater({0.6, 0.0, 77});

  for (const char* name : {"cbs", "ni-cbs", "ringer"}) {
    SchemeConfig config;
    config.name = name;
    const VerificationScheme& scheme =
        SchemeRegistry::global().resolve(config);

    const SchemeExchangeResult serial = run_scheme_exchanges_parallel(
        scheme, tasks, config, cheater, nullptr, 99, 1);
    const SchemeExchangeResult parallel = run_scheme_exchanges_parallel(
        scheme, tasks, config, cheater, nullptr, 99, 4);

    SCOPED_TRACE(name);
    EXPECT_EQ(serial.verdicts, parallel.verdicts);
    EXPECT_EQ(serial.reports, parallel.reports);
    ASSERT_EQ(serial.supervisor_hits.size(), parallel.supervisor_hits.size());
    for (std::size_t i = 0; i < serial.supervisor_hits.size(); ++i) {
      EXPECT_EQ(serial.supervisor_hits[i].task,
                parallel.supervisor_hits[i].task);
      EXPECT_EQ(serial.supervisor_hits[i].hits,
                parallel.supervisor_hits[i].hits);
    }
    EXPECT_EQ(serial.participant_evaluations,
              parallel.participant_evaluations);
    EXPECT_EQ(serial.results_verified, parallel.results_verified);
    EXPECT_EQ(serial.verdicts.size(), tasks.size());
  }
}

}  // namespace
}  // namespace ugc
