// gtest main for the ugc_net_tests binary. The CTest backend reruns
// (net_suites_poll_backend, net_suites_uring_backend) pin UGC_NET_ENGINE
// before launching this whole binary; a kernel that cannot construct the
// pinned backend must SKIP the rerun (exit 77, CTest's SKIP_RETURN_CODE)
// loudly rather than fail it — CI runs on kernels without io_uring and must
// stay green there while still exercising uring everywhere it exists.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/event_engine.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (const char* engine = std::getenv("UGC_NET_ENGINE")) {
    const bool supported =
        std::strcmp(engine, "uring") == 0 ? ugc::net::uring_supported()
        : std::strcmp(engine, "epoll") == 0 ? ugc::net::epoll_supported()
                                            : true;  // auto/poll always work
    if (!supported) {
      std::fprintf(stderr,
                   "SKIPPED: UGC_NET_ENGINE=%s but this kernel cannot "
                   "construct that backend (io_uring missing, disabled, or "
                   "pre-5.11?) — net suites not run under it\n",
                   engine);
      return 77;
    }
  }
  return RUN_ALL_TESTS();
}
