// The PR-8 headline guarantee, property-tested over real sockets: across
// hundreds of seeded chaos plans — WAN latency, bandwidth throttling,
// forced short writes, read stalls, mid-stream disconnects, accept-time
// resets — an honest worker is NEVER accused. Slow is fine, aborted is
// fine; rejected is the one outcome chaos must not be able to produce,
// because it is exactly how a supervisor would bleed its honest volunteers
// (the paper's guarantees are vacuous once honesty stops paying).
//
// Four suites x 125 default iterations = 500 chaos plans per run, every
// one over real loopback TCP with the full SupervisorNode/ParticipantNode
// protocol. PROP_ITERS scales the count (CI's nightly chaos leg raises
// it); PROP_SEED replays a failure. Time compression: the plans use
// few-millisecond latencies with realistic *rates*, so a full run stays
// in CI time while walking the same code paths as a real WAN.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/cheating.h"
#include "grid/chaos.h"
#include "grid/participant_node.h"
#include "grid/supervisor_node.h"
#include "net/tcp_transport.h"
#include "prop.h"

namespace ugc {
namespace {

using proptest::Failure;
using proptest::Property;
using proptest::gen_range;
using proptest::gen_unit;
using proptest::prop_check;

// 125 cases per suite by default (4 suites = 500 plans), PROP_ITERS wins.
proptest::Config chaos_config() {
  proptest::Config config;
  config.iterations =
      static_cast<int>(proptest::env_u64("PROP_ITERS", 125));
  return config;
}

struct ChaosCase {
  std::uint64_t seed = 1;
  ChaosPlan plan;
  std::size_t workers = 2;
  std::size_t cheaters = 0;
  std::uint64_t points = 64;
  std::uint64_t samples = 1;
  bool reconnect = false;  // workers come back after a cut (gridworker-style)
};

std::string show_case(const ChaosCase& c) {
  return concat("seed=", c.seed, " workers=", c.workers, " cheaters=",
                c.cheaters, " rtt=", c.plan.base_rtt_ms, "ms jitter=",
                c.plan.jitter_ms, "ms bw=", c.plan.bandwidth_bytes_per_s,
                " cap=", c.plan.partial_write_cap, " stall=",
                c.plan.stall_rate, "x", c.plan.stall_ms, "ms disc=",
                c.plan.disconnect_rate, " reset=", c.plan.accept_reset_rate,
                c.reconnect ? " reconnect" : "");
}

net::EngineBackend engine_from_env() {
  if (const char* engine = std::getenv("UGC_NET_ENGINE")) {
    return net::parse_engine_backend(engine);
  }
  return net::EngineBackend::kAuto;
}

// One worker process in miniature. With `reconnect`, a cut connection is
// retried under the same agent name (the server re-aims the slot), writing
// off in-flight sessions exactly like gridworker's resume path.
void run_prop_worker(std::uint16_t port, const std::string& agent,
                     bool cheater, const ChaosCase& c,
                     std::atomic<int>& finished) {
  ParticipantNode::Options options;
  if (cheater) {
    options.policy = make_semi_honest_cheater({0.5, 0.0, c.seed});
  }
  options.conduct_seed = c.seed;
  ParticipantNode node(options);
  net::TcpTransportOptions transport_options;
  transport_options.quiescence_timeout_ms = 500;
  transport_options.engine = engine_from_env();
  net::TcpTransport transport(transport_options);
  const GridNodeId self = transport.add_local(node);
  int budget = c.reconnect ? 3 : 0;
  try {
    GridNodeId supervisor = transport.connect("127.0.0.1", port);
    transport.send(self, supervisor, Hello{kGridProtocol, agent});
    bool gone = false;
    transport.on_peer_disconnected = [&](GridNodeId) { gone = true; };
    for (;;) {
      transport.run([&] { return gone; });
      const bool settled =
          node.active_tasks() == 0 && !node.verdicts().empty();
      if (settled || budget <= 0) {
        break;
      }
      --budget;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      node.on_crash();  // in-flight sessions died with the connection
      supervisor = transport.connect("127.0.0.1", port);
      transport.send(self, supervisor, Hello{kGridProtocol, agent});
      gone = false;
    }
  } catch (const net::SocketError&) {
    // Cut and the listener is gone too: the worker gives up cleanly.
  }
  finished.fetch_add(1);
}

// Hosts one chaotic grid and checks the invariant. Registration tolerates
// workers the chaos kills before they ever say Hello; the protocol runs
// over whatever population survived.
Failure run_chaos_case(const ChaosCase& c) {
  net::TcpTransportOptions options;
  options.quiescence_timeout_ms = 150;
  options.quiescence.adaptive = true;
  options.quiescence.floor_ms = 60;
  options.quiescence.ceiling_ms = 1500;
  options.engine = engine_from_env();
  if (c.plan.any()) {
    options.chaos = c.plan;
  }
  net::TcpTransport server(options);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  std::atomic<int> finished{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < c.workers; ++i) {
    const bool cheater = i < c.cheaters;
    const std::string agent = concat(cheater ? "cheater-" : "honest-", i);
    threads.emplace_back([&, port, agent, cheater] {
      run_prop_worker(port, agent, cheater, c, finished);
    });
  }
  const auto join_all = [&] {
    server.close_all();
    for (std::thread& thread : threads) {
      thread.join();
    }
  };

  // Agent-keyed registration with the reconnect re-aim (the gridd path):
  // a returning agent replaces its slot instead of counting twice.
  std::vector<GridNodeId> slots;
  std::map<std::string, std::size_t> slot_of;
  std::map<std::uint32_t, std::string> agents;
  SupervisorNode* supervisor_ptr = nullptr;
  server.on_peer_hello = [&](GridNodeId peer, const Hello& hello) {
    agents[peer.value] = hello.agent;
    if (const auto it = slot_of.find(hello.agent); it != slot_of.end()) {
      slots[it->second] = peer;
      if (supervisor_ptr != nullptr) {
        supervisor_ptr->replace_slot(it->second, peer);
      }
      return;
    }
    slot_of[hello.agent] = slots.size();
    slots.push_back(peer);
  };

  Stopwatch watch;
  server.run([&] {
    return slots.size() >= c.workers ||
           (finished.load() > 0 &&
            slots.size() + static_cast<std::size_t>(finished.load()) >=
                c.workers) ||
           watch.elapsed_seconds() > 15.0;
  });
  if (slots.empty()) {
    join_all();
    return {};  // chaos killed everyone before Hello: nothing to verify
  }

  SupervisorNode::Plan plan;
  plan.domain = Domain(0, slots.size() * c.points);
  plan.scheme.name = "cbs";
  plan.scheme.cbs.sample_count = c.samples;
  plan.seed = c.seed;
  plan.max_task_retries = 2;
  SupervisorNode supervisor(plan, slots);
  supervisor_ptr = &supervisor;
  server.add_local(supervisor);
  supervisor.start(server);
  server.run(
      [&] { return supervisor.done() || watch.elapsed_seconds() > 30.0; });
  const bool done = supervisor.done();
  std::vector<SupervisorNode::TaskOutcome> outcomes = supervisor.outcomes();
  join_all();

  if (!done) {
    return concat("grid failed to settle within 30s (",
                  outcomes.size(), " outcomes)");
  }
  for (const SupervisorNode::TaskOutcome& outcome : outcomes) {
    const auto it = agents.find(outcome.peer.value);
    const std::string agent =
        it != agents.end() ? it->second : std::string("?");
    const bool honest = agent.rfind("honest", 0) == 0;
    const bool rejected = !outcome.verdict.accepted() &&
                          outcome.verdict.status != VerdictStatus::kAborted;
    if (honest && rejected) {
      return concat("honest worker '", agent, "' accused: ",
                    outcome.verdict.detail);
    }
  }
  return {};
}

// Smaller-chaos candidates: each dial halved toward silence, so a failing
// plan shrinks to the single fault that causes the accusation.
std::vector<ChaosCase> shrink_case(const ChaosCase& c) {
  std::vector<ChaosCase> out;
  const auto with = [&](auto mutate) {
    ChaosCase smaller = c;
    mutate(smaller);
    out.push_back(smaller);
  };
  if (c.plan.base_rtt_ms > 0) {
    with([](ChaosCase& s) { s.plan.base_rtt_ms = 0; s.plan.jitter_ms = 0; });
  }
  if (c.plan.bandwidth_bytes_per_s > 0) {
    with([](ChaosCase& s) { s.plan.bandwidth_bytes_per_s = 0; });
  }
  if (c.plan.partial_write_cap > 0) {
    with([](ChaosCase& s) { s.plan.partial_write_cap = 0; });
  }
  if (c.plan.stall_rate > 0) {
    with([](ChaosCase& s) { s.plan.stall_rate = 0; });
  }
  if (c.plan.disconnect_rate > 0) {
    with([](ChaosCase& s) { s.plan.disconnect_rate = 0; });
  }
  if (c.plan.accept_reset_rate > 0) {
    with([](ChaosCase& s) { s.plan.accept_reset_rate = 0; });
  }
  if (c.workers > 2) {
    with([](ChaosCase& s) { s.workers -= 1; });
  }
  return out;
}

TEST(PropNetChaos, prop_latency_and_throttling_never_accuse) {
  Property<ChaosCase> prop;
  prop.name = "honest workers survive latency/bandwidth/short-write chaos";
  prop.gen = [](Rng& rng) {
    ChaosCase c;
    c.seed = rng.next();
    c.plan.seed = c.seed;
    c.plan.base_rtt_ms = gen_unit(rng, 25.0);
    c.plan.jitter_ms = gen_unit(rng, 10.0);
    c.plan.bandwidth_bytes_per_s =
        rng.bernoulli(0.5) ? 0.0 : 1e6 + gen_unit(rng, 7e6);
    const std::size_t caps[] = {0, 1, 64, 512};
    c.plan.partial_write_cap = caps[rng.uniform(4)];
    return c;
  };
  prop.shrink = shrink_case;
  prop.show = show_case;
  prop_check(prop, run_chaos_case, chaos_config());
}

TEST(PropNetChaos, prop_read_stalls_never_accuse) {
  Property<ChaosCase> prop;
  prop.name = "honest workers survive read-stall chaos";
  prop.gen = [](Rng& rng) {
    ChaosCase c;
    c.seed = rng.next();
    c.plan.seed = c.seed;
    c.plan.base_rtt_ms = gen_unit(rng, 8.0);
    c.plan.stall_rate = gen_unit(rng, 0.15);
    c.plan.stall_ms = gen_range(rng, 10, 60);
    const std::size_t caps[] = {0, 1, 128};
    c.plan.partial_write_cap = caps[rng.uniform(3)];
    return c;
  };
  prop.shrink = shrink_case;
  prop.show = show_case;
  prop_check(prop, run_chaos_case, chaos_config());
}

TEST(PropNetChaos, prop_disconnects_and_resets_never_accuse) {
  Property<ChaosCase> prop;
  prop.name = "honest workers survive disconnect/reset chaos";
  prop.gen = [](Rng& rng) {
    ChaosCase c;
    c.seed = rng.next();
    c.plan.seed = c.seed;
    c.plan.base_rtt_ms = gen_unit(rng, 6.0);
    c.plan.disconnect_rate = gen_unit(rng, 0.03);
    c.plan.accept_reset_rate = gen_unit(rng, 0.15);
    c.workers = 2 + rng.uniform(2);
    c.cheaters = rng.uniform(2);  // a cheater in the mix half the time
    return c;
  };
  prop.shrink = shrink_case;
  prop.show = show_case;
  prop_check(prop, run_chaos_case, chaos_config());
}

TEST(PropNetChaos, prop_reconnecting_workers_resume_and_are_never_accused) {
  Property<ChaosCase> prop;
  prop.name = "reconnect-and-resume never converts to an accusation";
  prop.gen = [](Rng& rng) {
    ChaosCase c;
    c.seed = rng.next();
    c.plan.seed = c.seed;
    c.plan.base_rtt_ms = gen_unit(rng, 5.0);
    c.plan.disconnect_rate = 0.005 + gen_unit(rng, 0.025);
    c.plan.accept_reset_rate = gen_unit(rng, 0.1);
    c.workers = 2 + rng.uniform(2);
    c.cheaters = rng.uniform(2);
    c.reconnect = true;
    return c;
  };
  prop.shrink = shrink_case;
  prop.show = show_case;
  prop_check(prop, run_chaos_case, chaos_config());
}

}  // namespace
}  // namespace ugc
