#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/cheating.h"
#include "core/scheme_config.h"
#include "core/sequential.h"
#include "crypto/hash_function.h"
#include "wire/messages.h"

namespace ugc {
namespace {

// Exhaustive enum/stringifier checks: every enumerator must map to a unique,
// stable, non-"unknown" name. Keeps enum additions and their to_string
// overloads from drifting apart.

template <typename Enum>
void expect_exhaustive(std::initializer_list<Enum> values) {
  std::set<std::string> seen;
  for (const Enum value : values) {
    const std::string name = to_string(value);
    EXPECT_NE(name, "unknown") << static_cast<int>(value);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name: " << name;
  }
}

TEST(ToString, SchemeKindExhaustive) {
  expect_exhaustive({SchemeKind::kDoubleCheck, SchemeKind::kNaiveSampling,
                     SchemeKind::kCbs, SchemeKind::kNiCbs,
                     SchemeKind::kRinger});
  // Names are wire/registry keys — spell them out so renames fail loudly.
  EXPECT_STREQ(to_string(SchemeKind::kDoubleCheck), "double-check");
  EXPECT_STREQ(to_string(SchemeKind::kNaiveSampling), "naive-sampling");
  EXPECT_STREQ(to_string(SchemeKind::kCbs), "cbs");
  EXPECT_STREQ(to_string(SchemeKind::kNiCbs), "ni-cbs");
  EXPECT_STREQ(to_string(SchemeKind::kRinger), "ringer");
}

TEST(ToString, VerdictStatusExhaustive) {
  expect_exhaustive({VerdictStatus::kAccepted, VerdictStatus::kWrongResult,
                     VerdictStatus::kRootMismatch, VerdictStatus::kMalformed,
                     VerdictStatus::kAborted});
  EXPECT_STREQ(to_string(VerdictStatus::kAccepted), "accepted");
  EXPECT_STREQ(to_string(VerdictStatus::kMalformed), "malformed");
  EXPECT_STREQ(to_string(VerdictStatus::kAborted), "aborted");
}

TEST(ToString, SprtDecisionExhaustive) {
  expect_exhaustive({SprtDecision::kContinue, SprtDecision::kAccept,
                     SprtDecision::kReject});
  EXPECT_STREQ(to_string(SprtDecision::kAccept), "accept");
}

TEST(ToString, ScreenerConductExhaustive) {
  expect_exhaustive({ScreenerConduct::kFaithful, ScreenerConduct::kSuppress,
                     ScreenerConduct::kFabricate});
}

TEST(ToString, HashAlgorithmExhaustiveAndInverseOfParse) {
  expect_exhaustive(
      {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256});
  for (const HashAlgorithm algorithm :
       {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    EXPECT_EQ(parse_hash_algorithm(to_string(algorithm)), algorithm);
  }
}

TEST(ToString, LeafModeExhaustive) {
  expect_exhaustive({LeafMode::kRaw, LeafMode::kHashed});
}

TEST(ToString, MessageTypeExhaustive) {
  expect_exhaustive(
      {MessageType::kTaskAssignment, MessageType::kCommitment,
       MessageType::kSampleChallenge, MessageType::kProofResponse,
       MessageType::kNiCbsProof, MessageType::kResultsUpload,
       MessageType::kScreenerReport, MessageType::kRingerReport,
       MessageType::kVerdict, MessageType::kBatchProofResponse,
       MessageType::kHello, MessageType::kHelloChallenge,
       MessageType::kHelloProof});
}

}  // namespace
}  // namespace ugc
