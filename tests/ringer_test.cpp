#include <gtest/gtest.h>

#include "core/ringer.h"
#include "test_util.h"

namespace ugc {
namespace {

using ugc::testing::make_test_task;

TEST(Ringer, HonestParticipantFindsAllRingers) {
  const Task task = make_test_task(128);
  const RingerSupervisor supervisor(task, {10, /*seed=*/1});
  EXPECT_EQ(supervisor.planted_images().size(), 10u);
  EXPECT_EQ(supervisor.precompute_evaluations(), 10u);

  RingerParticipant participant(task, supervisor.planted_images(),
                                make_honest_policy());
  const RingerVerdict verdict = supervisor.verify(participant.scan());
  EXPECT_TRUE(verdict.accepted);
  EXPECT_EQ(verdict.ringers_found, 10u);
  EXPECT_EQ(participant.honest_evaluations(), 128u);
}

TEST(Ringer, CheaterMissesRingersAndIsCaught) {
  const Task task = make_test_task(256);
  const RingerSupervisor supervisor(task, {12, 2});
  RingerParticipant participant(task, supervisor.planted_images(),
                                make_semi_honest_cheater({0.5, 0.0, 3}));
  const RingerVerdict verdict = supervisor.verify(participant.scan());
  // Escape probability 0.5^12 ≈ 2.4e-4; this seed is caught.
  EXPECT_FALSE(verdict.accepted);
  EXPECT_LT(verdict.ringers_found, verdict.ringers_expected);
}

TEST(Ringer, WrongTaskIdRejected) {
  const Task task = make_test_task(64);
  const RingerSupervisor supervisor(task, {4, 5});
  RingerReport report;
  report.task = TaskId{777};
  EXPECT_FALSE(supervisor.verify(report).accepted);
}

TEST(Ringer, ExtraFoundInputsDoNotHurt) {
  const Task task = make_test_task(64);
  const RingerSupervisor supervisor(task, {4, 7});
  RingerParticipant participant(task, supervisor.planted_images(),
                                make_honest_policy());
  RingerReport report = participant.scan();
  report.found_inputs.push_back(task.domain.begin());  // spurious extra
  EXPECT_TRUE(supervisor.verify(report).accepted);
}

TEST(Ringer, EmptyReportRejected) {
  const Task task = make_test_task(64);
  const RingerSupervisor supervisor(task, {4, 9});
  const RingerVerdict verdict = supervisor.verify(RingerReport{task.id, {}});
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.ringers_found, 0u);
}

TEST(Ringer, ConfigValidation) {
  const Task task = make_test_task(8);
  EXPECT_THROW(RingerSupervisor(task, {0, 1}), Error);
  EXPECT_THROW(RingerSupervisor(task, {9, 1}), Error);  // d > n
  EXPECT_NO_THROW(RingerSupervisor(task, {8, 1}));      // d == n is legal
}

TEST(Ringer, ParticipantRequiresPolicy) {
  const Task task = make_test_task(8);
  EXPECT_THROW(RingerParticipant(task, {}, nullptr), Error);
}

TEST(Ringer, DetectionRateTracksRToTheD) {
  // P(escape) = r^d. With r = 0.5, d = 2 → 25% escape.
  const Task task = make_test_task(512);
  int escaped = 0;
  const int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    const RingerSupervisor supervisor(task,
                                      {2, 1000 + static_cast<std::uint64_t>(t)});
    RingerParticipant participant(
        task, supervisor.planted_images(),
        make_semi_honest_cheater({0.5, 0.0, 5000 + static_cast<std::uint64_t>(t)}));
    if (supervisor.verify(participant.scan()).accepted) ++escaped;
  }
  EXPECT_NEAR(static_cast<double>(escaped) / kTrials, 0.25, 0.08);
}

}  // namespace
}  // namespace ugc
