// src/auth unit tests: key derivation, identity files, and the
// challenge–response proof verifier (every refusal class).

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>
#include <unistd.h>

#include <set>
#include <string>

#include "auth/handshake.h"
#include "auth/identity.h"
#include "common/error.h"
#include "common/hex.h"
#include "common/rng.h"

namespace ugc::auth {
namespace {

// A throwaway directory, removed (with its contents) on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    char templ[] = "/tmp/ugc_auth_test_XXXXXX";
    const char* made = ::mkdtemp(templ);
    if (made == nullptr) {
      throw Error("mkdtemp failed");
    }
    path = made;
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  std::string file(const char* name) const { return path + "/" + name; }
};

// ------------------------------------------------------------- derivation

TEST(Identity, DerivationIsDeterministic) {
  Rng rng(1);
  const Bytes secret = rng.bytes(kSecretKeySize);
  const Bytes pk1 = derive_public_key(secret);
  const Bytes pk2 = derive_public_key(secret);
  EXPECT_EQ(pk1, pk2);
  EXPECT_EQ(pk1.size(), kPublicKeySize);
  EXPECT_EQ(worker_id_of(pk1), worker_id_of(pk2));
  // Domain tags separate the chain: pk must not echo sk, and the id must
  // not echo pk.
  EXPECT_NE(pk1, secret);
  EXPECT_NE(worker_id_of(pk1).hex(), to_hex(pk1));
}

TEST(Identity, DistinctSecretsGiveDistinctIds) {
  Rng rng(2);
  std::set<std::string> ids;
  for (int i = 0; i < 64; ++i) {
    ids.insert(WorkerIdentity::generate(rng).id().hex());
  }
  EXPECT_EQ(ids.size(), 64u);
}

TEST(Identity, RejectsWrongSizedKeys) {
  EXPECT_THROW(derive_public_key(Bytes(31, 0)), Error);
  EXPECT_THROW(worker_id_of(Bytes(33, 0)), Error);
  EXPECT_THROW(WorkerIdentity(Bytes(0)), Error);
}

TEST(Identity, WorkerIdHexRoundTrip) {
  Rng rng(3);
  const WorkerId id = WorkerIdentity::generate(rng).id();
  EXPECT_EQ(id.hex().size(), 64u);
  EXPECT_EQ(WorkerId::from_hex(id.hex()), id);
  EXPECT_EQ(WorkerId::from_bytes(id.view()), id);
  EXPECT_EQ(id.prefix(), id.hex().substr(0, 12));
  EXPECT_THROW(WorkerId::from_hex("xyz"), Error);
  EXPECT_THROW(WorkerId::from_bytes(Bytes(16, 0)), Error);
}

// -------------------------------------------------------------- key files

TEST(IdentityFile, SaveLoadRoundTrip) {
  TempDir dir;
  Rng rng(4);
  const WorkerIdentity original = WorkerIdentity::generate(rng);
  save_identity_file(dir.file("id"), original);
  const WorkerIdentity loaded = load_identity_file(dir.file("id"));
  EXPECT_EQ(loaded.secret_key(), original.secret_key());
  EXPECT_EQ(loaded.id(), original.id());

  struct stat st {};
  ASSERT_EQ(::stat(dir.file("id").c_str(), &st), 0);
  EXPECT_EQ(st.st_mode & 0777, 0600u) << "identity file must be owner-only";
}

TEST(IdentityFile, LoadOrCreatePersistsAcrossCalls) {
  TempDir dir;
  Rng rng(5);
  const WorkerIdentity first = load_or_create_identity(dir.file("id"), rng);
  // Second call must load, not regenerate — this is what makes a
  // gridworker's reputation durable across restarts.
  const WorkerIdentity second = load_or_create_identity(dir.file("id"), rng);
  EXPECT_EQ(first.id(), second.id());
}

TEST(IdentityFile, LoadRejectsGarbage) {
  TempDir dir;
  EXPECT_THROW(load_identity_file(dir.file("missing")), Error);
  {
    std::FILE* f = std::fopen(dir.file("bad").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not-an-identity-file\nzz\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_identity_file(dir.file("bad")), Error);
}

// --------------------------------------------------------------- handshake

struct HandshakeFixture {
  Rng rng{6};
  WorkerIdentity identity = WorkerIdentity::generate(rng);
  Bytes nonce = handshake_nonce(rng);
  HelloProof proof =
      make_hello_proof(identity, nonce, kGridProtocol, "agent-7");
};

TEST(Handshake, GoodProofVerifiesAndYieldsIdentity) {
  HandshakeFixture fx;
  AuthInfo info;
  EXPECT_EQ(verify_hello_proof(fx.proof, fx.nonce, kGridProtocol, {}, info),
            HandshakeStatus::kOk);
  EXPECT_EQ(info.worker_id, fx.identity.id());
  EXPECT_EQ(info.agent, "agent-7");
}

TEST(Handshake, TamperedAgentIsRefused) {
  HandshakeFixture fx;
  fx.proof.agent = "someone-else";  // MAC binds the agent name
  AuthInfo info;
  EXPECT_EQ(verify_hello_proof(fx.proof, fx.nonce, kGridProtocol, {}, info),
            HandshakeStatus::kBadMac);
}

TEST(Handshake, StaleNonceIsRefused) {
  HandshakeFixture fx;
  const Bytes fresh = handshake_nonce(fx.rng);
  AuthInfo info;
  // A proof minted for an earlier connection's nonce — the replay case.
  EXPECT_EQ(verify_hello_proof(fx.proof, fresh, kGridProtocol, {}, info),
            HandshakeStatus::kBadMac);
}

TEST(Handshake, ForgedMacIsRefused) {
  HandshakeFixture fx;
  fx.proof.mac[0] ^= 1;
  AuthInfo info;
  EXPECT_EQ(verify_hello_proof(fx.proof, fx.nonce, kGridProtocol, {}, info),
            HandshakeStatus::kBadMac);
}

TEST(Handshake, WrongProtocolIsRefused) {
  HandshakeFixture fx;
  AuthInfo info;
  EXPECT_EQ(verify_hello_proof(fx.proof, fx.nonce, kGridProtocol + 1, {},
                               info),
            HandshakeStatus::kBadProtocol);
}

TEST(Handshake, MalformedKeyIsRefused) {
  HandshakeFixture fx;
  fx.proof.public_key.pop_back();
  AuthInfo info;
  EXPECT_EQ(verify_hello_proof(fx.proof, fx.nonce, kGridProtocol, {}, info),
            HandshakeStatus::kBadKey);
}

TEST(Handshake, BannedIdentityIsRefusedButReported) {
  HandshakeFixture fx;
  const WorkerId banned_id = fx.identity.id();
  AuthInfo info;
  EXPECT_EQ(verify_hello_proof(
                fx.proof, fx.nonce, kGridProtocol,
                [&](const WorkerId& id) { return id == banned_id; }, info),
            HandshakeStatus::kBanned);
  // The identity did verify; the refusal log needs to know who it was.
  EXPECT_EQ(info.worker_id, banned_id);
  EXPECT_EQ(info.agent, "agent-7");
}

TEST(Handshake, NonceSizeIsEnforcedByMacHelper) {
  HandshakeFixture fx;
  EXPECT_THROW(
      hello_proof_mac(fx.identity.public_key(), Bytes(8, 0), kGridProtocol,
                      "a"),
      Error);
}

TEST(Handshake, StatusNamesAreExhaustive) {
  std::set<std::string> names;
  for (const HandshakeStatus status :
       {HandshakeStatus::kOk, HandshakeStatus::kBadProtocol,
        HandshakeStatus::kBadKey, HandshakeStatus::kBadMac,
        HandshakeStatus::kBanned, HandshakeStatus::kUnauthenticated}) {
    const std::string name = to_string(status);
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
}

}  // namespace
}  // namespace ugc::auth
