// Partial-writev resumption, property-tested over real sockets: the
// transport's write side batches whole frames into vectored writes, and the
// chaos engine's clamp_write trims those batches to arbitrary short writes
// — down to one byte per syscall. Across seeded multi-frame bursts the
// receiving end must observe the exact byte stream the sender framed, in
// order, regardless of where the kernel (or the clamp) split it; and the
// write_queue_hwm / frames_shed accounting must match what the enqueue
// sequence deterministically implies. Runs under whatever engine backend
// UGC_NET_ENGINE pins, so the CTest reruns cover poll, epoll, and uring.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "grid/chaos.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/tcp_transport.h"
#include "prop.h"
#include "wire/codec.h"

namespace ugc {
namespace {

using proptest::Failure;
using proptest::Property;
using proptest::prop_check;

proptest::Config writev_config() {
  proptest::Config config;
  config.iterations = static_cast<int>(proptest::env_u64("PROP_ITERS", 60));
  return config;
}

net::EngineBackend engine_from_env() {
  if (const char* engine = std::getenv("UGC_NET_ENGINE")) {
    return net::parse_engine_backend(engine);
  }
  return net::EngineBackend::kAuto;
}

struct WritevCase {
  std::uint64_t seed = 1;
  std::size_t cap = 0;              // chaos partial_write_cap (0 = off)
  std::size_t shed_watermark = 0;   // transport shed threshold (0 = off)
  std::vector<std::size_t> sizes;   // per-frame payload string lengths
};

std::string show_case(const WritevCase& c) {
  std::size_t total = 0;
  for (const std::size_t size : c.sizes) {
    total += size;
  }
  return concat("seed=", c.seed, " frames=", c.sizes.size(), " bytes~",
                total, " cap=", c.cap, " shed=", c.shed_watermark);
}

// The messages under test: Hellos whose agent strings carry seeded junk of
// the case's chosen lengths — arbitrary-size payloads with exact, locally
// reproducible encodings.
Message frame_message(Rng& rng, std::size_t size) {
  std::string agent(size, '\0');
  for (char& c : agent) {
    c = static_cast<char>('a' + rng.uniform(26));
  }
  return Message(Hello{kGridProtocol, std::move(agent)});
}

Failure run_writev_case(const WritevCase& c) {
  net::TcpTransportOptions options;
  options.quiescence_timeout_ms = 200;
  options.engine = engine_from_env();
  options.shed_watermark = c.shed_watermark;
  if (c.cap > 0) {
    ChaosPlan plan;
    plan.seed = c.seed;
    plan.partial_write_cap = c.cap;
    options.chaos = plan;  // short writes only: no delays, no disconnects
  }
  net::TcpTransport server(options);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  // Pre-compute the burst and everything it implies: the exact byte stream
  // the socket must carry, and the shed count the watermark forces. The
  // whole burst is enqueued between run() calls, so nothing flushes
  // mid-sequence and the accounting is deterministic.
  Rng rng(c.seed);
  std::vector<Message> burst;
  Bytes encoded;
  Bytes expected;
  std::size_t queued = 0;        // write_pending as enqueue_framed sees it
  std::size_t expect_kept = 0;
  std::size_t expect_shed = 0;
  for (const std::size_t size : c.sizes) {
    burst.push_back(frame_message(rng, size));
    encode_message_into(burst.back(), encoded);
    const std::size_t framed = encoded.size() + net::kFrameHeaderSize;
    if (c.shed_watermark > 0 && queued > c.shed_watermark) {
      ++expect_shed;
      continue;
    }
    net::append_frame(encoded, expected);
    queued += framed;
    ++expect_kept;
  }
  const std::size_t expect_total = expected.size();

  // The sink: a raw socket that says Hello, then drains and records every
  // byte — below the Message layer, so reordering or corruption inside a
  // resumed frame cannot hide behind a successful decode.
  std::atomic<bool> sink_done{false};
  Bytes received;
  std::string sink_error;
  std::thread sink([&] {
    try {
      net::Socket socket = net::tcp_connect("127.0.0.1", port);
      Bytes hello_payload;
      encode_message_into(Message(Hello{kGridProtocol, "sink"}),
                          hello_payload);
      Bytes hello_frame;
      net::append_frame(hello_payload, hello_frame);
      std::size_t sent = 0;
      while (sent < hello_frame.size()) {
        const net::IoResult wrote = net::write_some(
            socket, BytesView(hello_frame).subspan(sent));
        if (wrote.status == net::IoStatus::kOk) {
          sent += wrote.bytes;
        } else if (wrote.status != net::IoStatus::kWouldBlock) {
          throw net::SocketError("sink hello write failed");
        }
      }
      Bytes scratch(64 * 1024);
      Stopwatch watch;
      bool grace_pass = false;
      while (watch.elapsed_seconds() < 10.0) {
        const net::IoResult got =
            net::read_some(socket, std::span<std::uint8_t>(scratch));
        if (got.status == net::IoStatus::kOk) {
          received.insert(received.end(), scratch.begin(),
                          scratch.begin() + got.bytes);
          continue;
        }
        if (got.status == net::IoStatus::kWouldBlock) {
          if (received.size() >= expect_total) {
            if (grace_pass) {
              break;  // drained, plus one grace round for stray bytes
            }
            grace_pass = true;
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            continue;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        break;  // EOF or error: the server is done with us
      }
    } catch (const net::SocketError& error) {
      sink_error = error.what();
    }
    sink_done.store(true);
  });

  GridNodeId sink_id{};
  bool greeted = false;
  server.on_peer_hello = [&](GridNodeId peer, const Hello&) {
    sink_id = peer;
    greeted = true;
  };
  Stopwatch watch;
  server.run([&] { return greeted || watch.elapsed_seconds() > 5.0; });
  if (!greeted) {
    server.close_all();
    sink.join();
    return concat("sink never said hello: ", sink_error);
  }

  // Enqueue the whole burst between run() calls: every frame joins the
  // write queue before the first flush, so the high-water mark must equal
  // the kept bytes exactly, and the shed count is forced.
  for (const Message& message : burst) {
    server.send(sink_id, sink_id, message);
  }
  server.run([&] { return sink_done.load() || watch.elapsed_seconds() > 15.0; });
  const net::TcpIoStats io = server.io_stats();
  server.close_all();
  sink.join();

  if (!sink_error.empty()) {
    return concat("sink failed: ", sink_error);
  }
  if (received.size() != expect_total) {
    return concat("byte count mismatch: expected ", expect_total, ", got ",
                  received.size());
  }
  if (received != expected) {
    return Failure("stream differs from the framed bytes (ordering or "
                   "resumption corrupted a frame)");
  }
  if (io.write_queue_hwm != queued) {
    return concat("write_queue_hwm=", io.write_queue_hwm, ", expected ",
                  queued);
  }
  if (io.frames_shed != expect_shed) {
    return concat("frames_shed=", io.frames_shed, ", expected ", expect_shed);
  }
  if (io.frames_sent != expect_kept) {
    return concat("frames_sent=", io.frames_sent, ", expected ", expect_kept);
  }
  if (expect_kept > 0 && io.write_calls == 0) {
    return Failure("frames delivered but write_calls stayed zero");
  }
  // The batching headline: an un-clamped multi-frame burst must leave in
  // fewer syscalls than frames (the whole queue rides one vectored write).
  if (c.cap == 0 && c.shed_watermark == 0 && c.sizes.size() >= 4 &&
      io.frames_per_write_mean <= 1.0) {
    return concat("no coalescing: ", c.sizes.size(), " frames took ",
                  io.write_calls, " writes (mean ", io.frames_per_write_mean,
                  ")");
  }
  return {};
}

std::vector<WritevCase> shrink_case(const WritevCase& c) {
  std::vector<WritevCase> out;
  if (c.cap > 0) {
    WritevCase smaller = c;
    smaller.cap = 0;
    out.push_back(smaller);
  }
  if (c.shed_watermark > 0) {
    WritevCase smaller = c;
    smaller.shed_watermark = 0;
    out.push_back(smaller);
  }
  if (c.sizes.size() > 1) {
    WritevCase smaller = c;
    smaller.sizes.resize(c.sizes.size() / 2);
    out.push_back(smaller);
  }
  return out;
}

TEST(PropNetWritev, prop_clamped_vectored_writes_deliver_byte_exact_streams) {
  Property<WritevCase> prop;
  prop.name = "partial-writev resumption is byte-exact";
  prop.gen = [](Rng& rng) {
    WritevCase c;
    c.seed = rng.next();
    const std::size_t caps[] = {0, 0, 1, 7, 64, 512, 4096};
    c.cap = caps[rng.uniform(7)];
    // Tiny clamps write one syscall per clamped slice: keep those bursts
    // small so a case stays milliseconds, not seconds.
    const bool tiny = c.cap > 0 && c.cap < 64;
    const std::size_t frames = 1 + rng.uniform(tiny ? 10 : 40);
    for (std::size_t i = 0; i < frames; ++i) {
      c.sizes.push_back(rng.uniform(tiny ? 200 : 4000));
    }
    return c;
  };
  prop.shrink = shrink_case;
  prop.show = show_case;
  prop_check(prop, run_writev_case, writev_config());
}

TEST(PropNetWritev, prop_shed_accounting_is_exact_under_clamped_writes) {
  Property<WritevCase> prop;
  prop.name = "shed watermark drops exactly the predicted frames";
  prop.gen = [](Rng& rng) {
    WritevCase c;
    c.seed = rng.next();
    const std::size_t caps[] = {0, 64, 512};
    c.cap = caps[rng.uniform(3)];
    c.shed_watermark = 500 + rng.uniform(4500);
    const std::size_t frames = 2 + rng.uniform(30);
    for (std::size_t i = 0; i < frames; ++i) {
      c.sizes.push_back(rng.uniform(2000));
    }
    return c;
  };
  prop.shrink = shrink_case;
  prop.show = show_case;
  prop_check(prop, run_writev_case, writev_config());
}

}  // namespace
}  // namespace ugc
