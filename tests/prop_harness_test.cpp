// The property harness itself: failing properties must report a standalone
// reproduction seed, shrink toward minimal cases, and replay an explicit
// PROP_SEED exactly; passing properties must stay silent.

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include "prop.h"

namespace ugc {
namespace {

using proptest::Config;
using proptest::Failure;
using proptest::Property;
using proptest::gen_range;
using proptest::prop_check;
using proptest::shrink_towards;
using proptest::shrink_unit;

Property<std::uint64_t> below_ten_property() {
  Property<std::uint64_t> prop;
  prop.name = "values stay below ten";
  prop.gen = [](Rng& rng) { return gen_range(rng, 0, 1000); };
  prop.shrink = [](const std::uint64_t& v) { return shrink_towards(v, 0); };
  prop.show = [](const std::uint64_t& v) { return std::to_string(v); };
  return prop;
}

Failure check_below_ten(const std::uint64_t& v) {
  if (v >= 10) {
    return concat("value ", v, " >= 10");
  }
  return {};
}

TEST(PropHarness, prop_failures_print_a_reproduction_seed) {
  Config config;
  config.iterations = 50;
  config.seed = 0;
  EXPECT_NONFATAL_FAILURE(
      prop_check(below_ten_property(), check_below_ten, config),
      "rerun just this case: PROP_SEED=");
}

TEST(PropHarness, prop_failures_shrink_toward_the_minimal_case) {
  // Capture the report and pull out the shrunk case value.
  ::testing::TestPartResultArray results;
  {
    ::testing::ScopedFakeTestPartResultReporter reporter(
        ::testing::ScopedFakeTestPartResultReporter::
            INTERCEPT_ONLY_CURRENT_THREAD,
        &results);
    Config config;
    config.iterations = 50;
    config.seed = 0;
    prop_check(below_ten_property(), check_below_ten, config);
  }
  ASSERT_EQ(results.size(), 1);
  const std::string message = results.GetTestPartResult(0).message();
  EXPECT_NE(message.find("falsified at iteration"), std::string::npos);
  EXPECT_NE(message.find("shrink steps"), std::string::npos);

  // The shrunk case must still fail but be small: halving from anywhere in
  // [10, 1000] lands in [10, 19].
  const auto case_pos = message.find("case: ");
  ASSERT_NE(case_pos, std::string::npos);
  const std::uint64_t shrunk =
      std::strtoull(message.c_str() + case_pos + 6, nullptr, 10);
  EXPECT_GE(shrunk, 10u);
  EXPECT_LT(shrunk, 20u);
}

TEST(PropHarness, prop_passing_properties_stay_silent) {
  Property<std::uint64_t> prop;
  prop.name = "everything below 2000 passes";
  prop.gen = [](Rng& rng) { return gen_range(rng, 0, 1000); };
  Config config;
  config.iterations = 100;
  prop_check(
      prop,
      [](const std::uint64_t& v) -> Failure {
        if (v > 2000) {
          return "impossible";
        }
        return {};
      },
      config);
}

TEST(PropHarness, prop_explicit_seed_replays_the_exact_case) {
  std::vector<std::uint64_t> seen;
  Property<std::uint64_t> prop;
  prop.name = "collect";
  prop.gen = [](Rng& rng) { return rng.next(); };
  Config config;
  config.seed = 0x1234;
  config.iterations = 1;
  prop_check(
      prop,
      [&seen](const std::uint64_t& v) -> Failure {
        seen.push_back(v);
        return {};
      },
      config);

  Rng replay(0x1234);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], replay.next());
}

TEST(PropHarness, prop_case_seeds_are_deterministic_per_property_name) {
  const auto collect = [](const std::string& name) {
    std::vector<std::uint64_t> values;
    Property<std::uint64_t> prop;
    prop.name = name;
    prop.gen = [](Rng& rng) { return rng.next(); };
    Config config;
    config.iterations = 5;
    config.seed = 0;
    prop_check(
        prop,
        [&values](const std::uint64_t& v) -> Failure {
          values.push_back(v);
          return {};
        },
        config);
    return values;
  };
  EXPECT_EQ(collect("alpha"), collect("alpha"));
  EXPECT_NE(collect("alpha"), collect("beta"));  // streams don't collide
}

TEST(PropHarness, prop_shrink_helpers_move_toward_the_floor) {
  const auto cands = shrink_towards(800, 0);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands.front(), 0u);
  for (const std::uint64_t c : cands) {
    EXPECT_LT(c, 800u);
  }
  EXPECT_TRUE(shrink_towards(0, 0).empty());

  const auto probs = shrink_unit(0.5);
  ASSERT_FALSE(probs.empty());
  EXPECT_EQ(probs.front(), 0.0);
  EXPECT_TRUE(shrink_unit(0.0).empty());
}

}  // namespace
}  // namespace ugc
