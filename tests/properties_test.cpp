// Cross-cutting properties that tie the pieces together: detection-rate
// equivalence across schemes, the high-q phenomenon on a real workload
// (instead of the synthetic q knob), and conservation-style invariants of
// the grid accounting.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/cbs.h"
#include "grid/simulation.h"
#include "test_util.h"
#include "workloads/lucas_lehmer.h"

namespace ugc {
namespace {

using ugc::testing::make_test_task;

// A realistic cheater for sparse-output workloads: skip the work and claim
// the overwhelmingly common answer (here: "not a Mersenne prime"). This is
// the paper's q made concrete — no synthetic coin, just domain knowledge.
class ZeroGuesser final : public HonestyPolicy {
 public:
  ZeroGuesser(double honesty_ratio, std::uint64_t seed)
      : inner_({honesty_ratio, 0.0, seed}) {}

  LeafDecision decide(LeafIndex i, const Task& task) const override {
    if (inner_.computes_honestly(i)) {
      return {task.f->evaluate(task.domain.input(i)), true};
    }
    return {Bytes(task.f->result_size(), 0x00), false};
  }
  bool computes_honestly(LeafIndex i) const override {
    return inner_.computes_honestly(i);
  }
  std::string name() const override { return "zero-guesser"; }

 private:
  SemiHonestCheater inner_;
};

TEST(HighQWorkload, ZeroGuessingLucasLehmerMostlySurvivesSmallM) {
  // Exponent range [2, 130): 9 Mersenne-prime exponents, so guessing zero
  // is right with q ~ 0.93. Theorem 3 says m must grow by ~14x vs q = 0.
  const Task task = Task::make(TaskId{1}, Domain(2, 130),
                               std::make_shared<LucasLehmerFunction>(),
                               std::make_shared<MersenneScreener>());
  const auto verifier = std::make_shared<RecomputeVerifier>(task.f);

  const double q = 1.0 - 9.0 / 128.0;  // fraction of zero results
  int escaped_small_m = 0;
  int escaped_large_m = 0;
  const int kTrials = 120;
  const auto m_small = std::size_t{8};
  const auto m_large =
      *required_sample_size(0.05, 0.5, q);  // accounts for guessing

  for (int t = 0; t < kTrials; ++t) {
    const auto policy =
        std::make_shared<ZeroGuesser>(0.5, 100 + static_cast<std::uint64_t>(t));
    CbsConfig small;
    small.sample_count = m_small;
    if (run_cbs_exchange(task, small, policy, verifier, 500 + t)
            .verdict.accepted()) {
      ++escaped_small_m;
    }
    CbsConfig large;
    large.sample_count = m_large;
    if (run_cbs_exchange(task, large, policy, verifier, 900 + t)
            .verdict.accepted()) {
      ++escaped_large_m;
    }
  }

  // Small m: escape probability (0.5 + 0.5q)^8 ~ 0.75 — most runs survive.
  const double predicted_small = cheat_success_probability(0.5, q, m_small);
  EXPECT_NEAR(static_cast<double>(escaped_small_m) / kTrials, predicted_small,
              0.15);
  // Properly sized m (from Eq. 3 *with q*): escape rate ≤ ~5%.
  EXPECT_LE(escaped_large_m, kTrials / 8);
  EXPECT_GT(m_large, m_small * 4);  // the q-premium is substantial
}

TEST(SchemeEquivalence, NaiveSamplingAndCbsCatchAtTheSameRate) {
  // Both schemes sample uniformly and fail on one bad result: the escape
  // probability must match (r + (1-r)q)^m for both.
  const int kTrials = 250;
  const std::size_t m = 3;
  const double r = 0.5;

  int cbs_escapes = 0;
  int naive_escapes = 0;
  for (int t = 0; t < kTrials; ++t) {
    GridConfig config;
    config.domain_end = 128;
    config.participant_count = 1;
    config.seed = 3000 + static_cast<std::uint64_t>(t);
    config.cheaters = {{0, r, 0.0, 0}};
    config.scheme.cbs.sample_count = m;
    config.scheme.naive.sample_count = m;

    config.scheme.kind = SchemeKind::kCbs;
    if (run_grid_simulation(config).cheater_tasks_accepted > 0) ++cbs_escapes;
    config.scheme.kind = SchemeKind::kNaiveSampling;
    if (run_grid_simulation(config).cheater_tasks_accepted > 0)
      ++naive_escapes;
  }
  const double predicted = cheat_success_probability(r, 0.0, m);
  EXPECT_NEAR(static_cast<double>(cbs_escapes) / kTrials, predicted, 0.09);
  EXPECT_NEAR(static_cast<double>(naive_escapes) / kTrials, predicted, 0.09);
}

TEST(Accounting, ParticipantEvaluationsConserveAcrossSchemes) {
  // For honest grids, total genuine evaluations must equal the domain size
  // (once per input), except double-check which multiplies by replicas.
  for (const SchemeKind kind :
       {SchemeKind::kNaiveSampling, SchemeKind::kCbs, SchemeKind::kNiCbs,
        SchemeKind::kRinger}) {
    GridConfig config;
    config.domain_end = 1 << 10;
    config.participant_count = 4;
    config.scheme.kind = kind;
    config.scheme.ringer.ringer_count = 4;
    const GridRunResult result = run_grid_simulation(config);
    EXPECT_EQ(result.participant_evaluations, 1u << 10) << to_string(kind);
  }

  GridConfig dc;
  dc.domain_end = 1 << 10;
  dc.participant_count = 4;
  dc.scheme.kind = SchemeKind::kDoubleCheck;
  dc.scheme.double_check.replicas = 2;
  EXPECT_EQ(run_grid_simulation(dc).participant_evaluations, 2u << 10);
}

TEST(Accounting, CheaterEvaluationsScaleWithHonestyRatio) {
  GridConfig config;
  config.domain_end = 1 << 12;
  config.participant_count = 1;
  config.scheme.kind = SchemeKind::kNiCbs;
  config.scheme.nicbs.sample_count = 8;
  config.cheaters = {{0, 0.25, 0.0, 42}};
  const GridRunResult result = run_grid_simulation(config);
  EXPECT_NEAR(static_cast<double>(result.participant_evaluations),
              0.25 * (1 << 12), 0.05 * (1 << 12));
}

TEST(Accounting, PayloadByteHelpersAreConsistent) {
  const Task task = make_test_task(256);
  CbsConfig config;
  config.sample_count = 16;
  CbsParticipant participant(task, config, make_honest_policy());
  CbsSupervisor supervisor(
      task, config, std::make_shared<RecomputeVerifier>(task.f), Rng(5));
  const SampleChallenge challenge = supervisor.challenge(participant.commit());
  const ProofResponse response = participant.respond(challenge);

  std::size_t sum = 8;
  for (const SampleProof& proof : response.proofs) {
    sum += proof.payload_bytes();
  }
  EXPECT_EQ(response.payload_bytes(), sum);

  // The wire encoding tracks the payload accounting up to framing overhead
  // (length prefixes, envelope): within 15%.
  const std::size_t encoded = encode_message(Message{response}).size();
  EXPECT_GT(encoded, response.payload_bytes());
  EXPECT_LT(encoded, response.payload_bytes() * 115 / 100);
}

TEST(Determinism, EndToEndBitForBitStability) {
  // The same seeds must give bit-identical commitments, proofs, and grid
  // traffic — the property every Monte-Carlo result in EXPERIMENTS.md
  // relies on.
  const Task task = make_test_task(128);
  CbsConfig config;
  config.sample_count = 12;

  CbsParticipant a(task, config, make_semi_honest_cheater({0.5, 0.3, 77}));
  CbsParticipant b(task, config, make_semi_honest_cheater({0.5, 0.3, 77}));
  EXPECT_EQ(a.commit(), b.commit());

  CbsSupervisor sa(task, config, std::make_shared<RecomputeVerifier>(task.f),
                   Rng(9));
  CbsSupervisor sb(task, config, std::make_shared<RecomputeVerifier>(task.f),
                   Rng(9));
  const SampleChallenge ca = sa.challenge(a.commit());
  const SampleChallenge cb = sb.challenge(b.commit());
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(a.respond(ca), b.respond(cb));
}

}  // namespace
}  // namespace ugc
