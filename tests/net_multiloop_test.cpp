// Multi-loop transport stress: many concurrent clients churning against a
// TcpTransport running with io_threads > 1, under both accept strategies
// (SO_REUSEPORT sharded listeners and the accept-and-dispatch fallback).
// What must hold, per the threading contract in grid/transport.h:
//
//   - every peer lives on exactly one loop (io_stats().peers_per_loop sums
//     to the live population; no peer is double-counted or lost),
//   - frames from one peer never interleave with another's (per-client
//     sequence numbers echo back strictly in order),
//   - a peer disconnects exactly once (no double-reap under churn),
//   - PR-4-style fault behaviors — hostile frame lengths, undecodable
//     payloads, mid-frame disconnects — take down only their own
//     connection and are counted, even at multi-loop concurrency.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "net/tcp_transport.h"
#include "wire/messages.h"

namespace ugc {
namespace {

net::TcpTransportOptions multi_loop_options(bool sharded_accept) {
  net::TcpTransportOptions options;
  options.quiescence_timeout_ms = 300;
  options.io_threads = 3;
  options.sharded_accept = sharded_accept;
  if (const char* engine = std::getenv("UGC_NET_ENGINE")) {
    options.engine = net::parse_engine_backend(engine);
  }
  return options;
}

// Echo node: bounces every message straight back. All callbacks fire on
// the run() thread, so transport.send() here is on the protocol thread —
// which is exactly the send contract the stress is meant to exercise
// (protocol thread encodes, owning loop flushes).
struct EchoNode : GridNode {
  void on_message(GridNodeId from, const Message& message,
                  Transport& transport) override {
    transport.send(id(), from, message);
  }
};

// One well-behaved client: blocking socket, Hello, then `rounds` sequenced
// challenges, each awaited before the next is sent. Returns the number of
// echoes that came back in strict sequence order.
std::size_t run_sequenced_client(std::uint16_t port, std::uint32_t client,
                                 std::size_t rounds) {
  net::Socket socket = net::tcp_connect("127.0.0.1", port);
  Bytes out;
  net::append_frame(encode_message(Message{Hello{kGridProtocol,
                                                 concat("client-", client)}}),
                    out);
  std::size_t cursor = 0;
  const auto flush = [&] {
    while (cursor < out.size()) {
      const net::IoResult result =
          net::write_some(socket, BytesView(out).subspan(cursor));
      if (result.status == net::IoStatus::kWouldBlock) {
        std::this_thread::yield();  // loopback: the kernel will take it
        continue;
      }
      if (result.status != net::IoStatus::kOk) {
        return false;
      }
      cursor += result.bytes;
    }
    out.clear();
    cursor = 0;
    return true;
  };
  if (!flush()) {
    return 0;
  }

  net::FrameDecoder decoder;
  Bytes scratch(4096);
  std::size_t in_order = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Tag the task id with (client, round): if loops ever interleaved two
    // peers' streams, some client would see a wrong or out-of-order tag.
    const TaskId tag{(static_cast<std::uint64_t>(client) << 20) | round};
    net::append_frame(encode_message(Message{SampleChallenge{tag, {}}}), out);
    if (!flush()) {
      return in_order;
    }
    bool answered = false;
    while (!answered) {
      const net::IoResult result =
          net::read_some(socket, std::span<std::uint8_t>(scratch));
      if (result.status == net::IoStatus::kWouldBlock) {
        std::this_thread::yield();
        continue;
      }
      if (result.status != net::IoStatus::kOk) {
        return in_order;
      }
      decoder.feed(BytesView(scratch.data(), result.bytes));
      while (const auto frame = decoder.next()) {
        const Message echoed = decode_message(*frame);
        const auto* challenge = std::get_if<SampleChallenge>(&echoed);
        if (challenge != nullptr && challenge->task.value == tag.value) {
          ++in_order;
          answered = true;
        } else {
          return in_order;  // wrong frame: ownership was violated
        }
      }
    }
  }
  socket.close();
  return in_order;
}

class MultiLoopStress : public ::testing::TestWithParam<bool> {};

TEST_P(MultiLoopStress, ChurnPreservesPerLoopOwnership) {
  constexpr std::size_t kClients = 24;
  constexpr std::size_t kRounds = 16;
  constexpr std::size_t kFaulty = 6;  // interleaved hostile connections

  net::TcpTransport server(multi_loop_options(GetParam()));
  struct : EchoNode {
  } echo;
  server.add_local(echo);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  std::size_t hellos = 0;
  std::map<std::uint32_t, int> disconnects;
  server.on_peer_hello = [&](GridNodeId, const Hello&) { ++hellos; };
  server.on_peer_disconnected = [&](GridNodeId peer) {
    ++disconnects[peer.value];
  };

  std::mutex results_mutex;
  std::vector<std::size_t> results;
  std::vector<std::thread> clients;
  clients.reserve(kClients + kFaulty);
  for (std::uint32_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const std::size_t in_order = run_sequenced_client(port, i, kRounds);
      const std::lock_guard<std::mutex> lock(results_mutex);
      results.push_back(in_order);
    });
    // Interleave fault churn with honest traffic: each fault kind from the
    // PR-4 suite, arriving while other loops are mid-exchange.
    if (i < kFaulty) {
      clients.emplace_back([port, i] {
        net::Socket hostile = net::tcp_connect("127.0.0.1", port);
        if (i % 3 == 0) {
          // Hostile length announcement: poisons its own stream.
          const Bytes bomb{0xff, 0xff, 0xff, 0xff, 0x00};
          (void)net::write_some(hostile, bomb);
        } else if (i % 3 == 1) {
          // Valid frame, undecodable payload.
          Bytes stream;
          net::append_frame(to_bytes("multi-loop junk"), stream);
          (void)net::write_some(hostile, stream);
        } else {
          // Mid-frame vanish: announce 64 bytes, deliver 2.
          const Bytes partial{64, 0, 0, 0, 0xaa, 0xbb};
          (void)net::write_some(hostile, partial);
        }
        hostile.close();
      });
    }
  }

  // The protocol thread serves until every honest client has finished its
  // rounds and every connection (honest + hostile) has been reaped.
  server.run([&] {
    std::size_t finished;
    {
      const std::lock_guard<std::mutex> lock(results_mutex);
      finished = results.size();
    }
    return finished == kClients &&
           disconnects.size() >= kClients + kFaulty &&
           server.connected_peers().empty();
  });
  for (std::thread& thread : clients) {
    thread.join();
  }
  const net::TcpIoStats mid_run = server.io_stats();
  server.close_all();

  // Every honest client got every echo, in order.
  ASSERT_EQ(results.size(), kClients);
  for (const std::size_t in_order : results) {
    EXPECT_EQ(in_order, kRounds);
  }
  EXPECT_EQ(hellos, kClients);

  // Exactly one disconnect per connection — double-reap would double-count.
  EXPECT_EQ(disconnects.size(), kClients + kFaulty);
  for (const auto& [peer, count] : disconnects) {
    EXPECT_EQ(count, 1) << "peer " << peer << " reaped " << count
                        << " times";
  }

  // Ownership accounting: three loops exist, and the loop census never
  // exceeds the population (it is a live count, so post-churn it is low).
  EXPECT_EQ(mid_run.io_loops, 3u);
  EXPECT_EQ(mid_run.peers_per_loop.size(), 3u);

  // Each fault kind was charged to the right counter.
  EXPECT_EQ(server.frames_undecodable(), kFaulty / 3u);
  EXPECT_GE(server.streams_truncated(), kFaulty / 3u);
}

INSTANTIATE_TEST_SUITE_P(AcceptStrategies, MultiLoopStress,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "ShardedAccept"
                                             : "DispatchAccept";
                         });

// The write path from the protocol thread must land on the owning loop
// even when the target peers are spread across all loops: a burst of
// unsolicited sends (one per connected peer) all arrive.
TEST(MultiLoopSend, ProtocolThreadBroadcastReachesEveryLoop) {
  constexpr std::size_t kClients = 9;

  net::TcpTransport server(multi_loop_options(true));
  struct : GridNode {
    void on_message(GridNodeId, const Message&, Transport&) override {}
  } sink;
  const GridNodeId self = server.add_local(sink);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  std::vector<GridNodeId> peers;
  server.on_peer_hello = [&](GridNodeId peer, const Hello&) {
    peers.push_back(peer);
  };

  std::vector<std::thread> clients;
  std::mutex got_mutex;
  std::size_t got = 0;
  for (std::uint32_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      net::Socket socket = net::tcp_connect("127.0.0.1", port);
      Bytes out;
      net::append_frame(
          encode_message(Message{Hello{kGridProtocol, concat("b-", i)}}),
          out);
      std::size_t cursor = 0;
      while (cursor < out.size()) {
        const net::IoResult result =
            net::write_some(socket, BytesView(out).subspan(cursor));
        if (result.status == net::IoStatus::kOk) {
          cursor += result.bytes;
        } else if (result.status != net::IoStatus::kWouldBlock) {
          return;
        }
      }
      net::FrameDecoder decoder;
      Bytes scratch(4096);
      for (;;) {
        const net::IoResult result =
            net::read_some(socket, std::span<std::uint8_t>(scratch));
        if (result.status == net::IoStatus::kWouldBlock) {
          std::this_thread::yield();
          continue;
        }
        if (result.status != net::IoStatus::kOk) {
          return;
        }
        decoder.feed(BytesView(scratch.data(), result.bytes));
        if (decoder.next()) {
          const std::lock_guard<std::mutex> lock(got_mutex);
          ++got;
          return;  // close: one broadcast frame is the whole test
        }
      }
    });
  }

  server.run([&] { return peers.size() == kClients; });
  for (const GridNodeId peer : peers) {
    server.send(self, peer, Message{SampleChallenge{TaskId{99}, {}}});
  }
  server.run([&] {
    const std::lock_guard<std::mutex> lock(got_mutex);
    return got == kClients;
  });
  server.close_all();
  for (std::thread& thread : clients) {
    thread.join();
  }
  EXPECT_EQ(got, kClients);
}

}  // namespace
}  // namespace ugc
