#!/usr/bin/env bash
# Chaos-at-the-socket end-to-end: gridd with seeded WAN fault injection
# (latency, throttling, partial writes, read stalls, mid-stream
# disconnects, accept-time resets) versus gridworker processes that
# reconnect-and-resume. Two modes:
#
#   strict (default) — fixed chaos seed, light chaos. The grid must still
#     work: the cheater is caught (gridd exit 2), no honest worker is
#     flagged, and the chaos counters appear in gridd's summary. This is
#     the per-PR regression gate.
#
#   invariant — randomized chaos seed (echoed for replay), any level. The
#     only assertion is the paper's fairness line: chaos may slow or abort
#     the grid, but an honest worker is NEVER accused. This is the nightly
#     randomized leg; on failure, rerun with the echoed seed.
#
# usage: chaos_grid.sh <gridd> <gridworker> [strict|invariant] [level] [seed]
set -u

GRIDD=${1:?path to gridd}
GRIDWORKER=${2:?path to gridworker}
MODE=${3:-strict}
LEVEL=${4:-light}
SEED=${5:-}

if [ -z "$SEED" ]; then
  if [ "$MODE" = strict ]; then
    SEED=12021
  else
    SEED=$(( (RANDOM << 15 | RANDOM) + 1 ))
  fi
fi
echo "chaos_grid: mode=$MODE level=$LEVEL seed=$SEED (replay: $0 $GRIDD $GRIDWORKER $MODE $LEVEL $SEED)"

WORKDIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORKDIR"' EXIT

fail() {
  echo "FAIL: $* (chaos seed=$SEED level=$LEVEL)" >&2
  echo "---- gridd.log ----" >&2; cat "$WORKDIR/gridd.log" >&2 || true
  for w in honest-1 honest-2 cheater-1; do
    echo "---- $w.log ----" >&2; cat "$WORKDIR/$w.log" >&2 || true
  done
  exit 1
}

# Adaptive quiescence is the point under WAN latency: the loopback-tuned
# retry timer must stretch itself instead of starving the exchange.
"$GRIDD" --port 0 --workers 3 --workload test --scheme cbs \
         --domain-begin 0 --domain-end 3072 --seed 7 \
         --chaos "$LEVEL" --chaos-seed "$SEED" \
         --adaptive-idle 1 --idle-timeout-ms 2000 \
         --idle-floor-ms 200 --idle-ceiling-ms 8000 \
         >"$WORKDIR/gridd.log" 2>&1 &
GRIDD_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^gridd: listening on [0-9.]*:\([0-9]*\).*/\1/p' \
         "$WORKDIR/gridd.log" 2>/dev/null | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$GRIDD_PID" 2>/dev/null || fail "gridd died before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "gridd never printed its port"

# Generous budgets: a chaotic link cuts connections mid-exchange, and the
# whole point is that workers come back and resume.
WORKER_ARGS=(--connect "127.0.0.1:$PORT" --reconnects 8 \
             --connect-retries 10 --idle-timeout-ms 2000)
"$GRIDWORKER" "${WORKER_ARGS[@]}" --agent honest-1 \
              >"$WORKDIR/honest-1.log" 2>&1 &
"$GRIDWORKER" "${WORKER_ARGS[@]}" --agent honest-2 \
              >"$WORKDIR/honest-2.log" 2>&1 &
"$GRIDWORKER" "${WORKER_ARGS[@]}" --agent cheater-1 \
              --cheat semi-honest:0.5 --seed 99 \
              >"$WORKDIR/cheater-1.log" 2>&1 &

wait "$GRIDD_PID"; GRIDD_STATUS=$?
wait

LOG="$WORKDIR/gridd.log"

# Both modes: the fairness invariant. Chaos must never convert an honest
# worker into an accused one — neither in gridd's ledger nor in a verdict
# the worker itself saw.
grep -Eq "agent=honest-[0-9]+ .* flagged=yes" "$LOG" \
  && fail "an honest worker was flagged under chaos"
for agent in honest-1 honest-2; do
  grep -Eq "status=(wrong-result|root-mismatch|malformed)" "$WORKDIR/$agent.log" \
    && fail "honest worker $agent received a rejection verdict"
done
grep -q "gridd: chaos level=$LEVEL seed=$SEED" "$LOG" \
  || fail "chaos banner missing (injection not armed?)"

if [ "$MODE" = invariant ]; then
  # Randomized chaos may legitimately end in catch (2), clean finish (0),
  # or abort-starved incomplete (3) — anything else is a crash.
  case "$GRIDD_STATUS" in
    0|2|3) ;;
    *) fail "gridd exit=$GRIDD_STATUS, want 0/2/3 under randomized chaos" ;;
  esac
  echo "PASS: invariant held under chaos seed=$SEED level=$LEVEL (gridd exit=$GRIDD_STATUS)"
  exit 0
fi

# Strict mode: light chaos with the pinned seed must not stop the grid
# from doing its actual job.
[ "$GRIDD_STATUS" -eq 2 ] || fail "gridd exit=$GRIDD_STATUS, want 2 (cheat detected)"
grep -Eq "agent=cheater-1 id=[0-9a-f]+ accepted=0 rejected=1 .* flagged=yes" "$LOG" \
  || fail "cheater not flagged"
for agent in honest-1 honest-2; do
  grep -Eq "agent=$agent id=[0-9a-f]+ accepted=1 rejected=0" "$LOG" \
    || fail "honest worker $agent not cleanly accepted"
done
grep -Eq "summary scheme=cbs .* accepted=2 rejected=1 aborted=0" "$LOG" \
  || fail "summary line mismatch"
grep -Eq "idle_timeout_ms=[0-9]+" "$LOG" \
  || fail "adaptive idle timeout missing from summary"
grep -Eq "gridd: chaos accept_resets=[0-9]+ disconnects=[0-9]+" "$LOG" \
  || fail "chaos counter line missing from summary"

echo "PASS: chaotic wire (seed=$SEED) slowed the grid but changed no verdict"
