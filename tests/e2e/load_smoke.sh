#!/usr/bin/env bash
# Load smoke: one multi-loop gridd versus a gridload worker army over real
# TCP. gridd runs with --io-threads 2 (sharded epoll loops where the
# platform has them); gridload drives a few hundred in-process scripted
# workers — honest plus a cheater fraction — through connect, authenticated
# handshake, and the full scheme exchange. Asserts that
#   - every army worker registers (authenticated handshake at load),
#   - no honest worker is accused (rejected > 0 is fine — those are the
#     cheaters — but every rejection must be a cheater-* agent),
#   - nothing aborts and gridd's summary accounts for every task,
#   - gridload's army completes every honest connection with a verdict.
#
# usage: load_smoke.sh <gridd> <gridload> [workers]
set -u

GRIDD=${1:?path to gridd}
GRIDLOAD=${2:?path to gridload}
WORKERS=${3:-200}
CHEATERS=$((WORKERS / 20))

WORKDIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORKDIR"' EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "---- gridd.log ----" >&2; cat "$WORKDIR/gridd.log" >&2 || true
  echo "---- gridload.log ----" >&2; cat "$WORKDIR/gridload.log" >&2 || true
  exit 1
}

"$GRIDD" --port 0 --workers "$WORKERS" --workload test --scheme cbs \
         --samples 1 --domain-begin 0 --domain-end $((WORKERS * 4)) \
         --seed 7 --idle-timeout-ms 2000 --io-threads 2 \
         >"$WORKDIR/gridd.log" 2>&1 &
GRIDD_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^gridd: listening on [0-9.]*:\([0-9]*\).*/\1/p' \
         "$WORKDIR/gridd.log" 2>/dev/null | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$GRIDD_PID" 2>/dev/null || fail "gridd died before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "gridd never printed its port"

"$GRIDLOAD" --connect "127.0.0.1:$PORT" --workers "$WORKERS" \
            --cheaters "$CHEATERS" --seed 99 --deadline-ms 120000 \
            >"$WORKDIR/gridload.log" 2>&1 &
LOAD_PID=$!

wait "$GRIDD_PID"; GRIDD_STATUS=$?
wait "$LOAD_PID"; LOAD_STATUS=$?

LOG="$WORKDIR/gridd.log"

# gridd exits 2 when rejections occurred — expected, the army cheats on
# purpose. 0 (every cheater got lucky at samples=1) is also legal. Anything
# else (aborts, crashes) is not.
case "$GRIDD_STATUS" in
  0|2) ;;
  *) fail "gridd exit=$GRIDD_STATUS, want 0 or 2" ;;
esac
[ "$LOAD_STATUS" -eq 0 ] || fail "gridload exit=$LOAD_STATUS, want 0"

# Full registration under load, through the authenticated handshake.
REGISTERED=$(grep -c "registered agent=" "$LOG")
[ "$REGISTERED" -eq "$WORKERS" ] \
  || fail "expected $WORKERS authenticated registrations, saw $REGISTERED"

# Zero honest-worker accusations: every non-accepted, non-aborted verdict
# must belong to a cheater-* agent.
grep -E "verdict task=" "$LOG" | grep -v "status=accepted" \
  | grep -v "status=aborted" | grep -vq "agent=cheater-" \
  && fail "an honest worker was accused"

# Nothing aborted and the summary accounts for every task.
grep -Eq "summary scheme=cbs .* aborted=0" "$LOG" || fail "tasks aborted"
grep -Eq "summary scheme=cbs .* tasks=$WORKERS " "$LOG" \
  || fail "summary does not account for $WORKERS tasks"

# The multi-loop transport actually ran multi-loop.
grep -Eq "summary .* io_loops=2" "$LOG" || fail "gridd did not run 2 io loops"

# The army side agrees: every honest worker completed with a verdict.
grep -q "DEADLINE-HIT" "$WORKDIR/gridload.log" && fail "gridload hit its deadline"

echo "PASS: $WORKERS-worker load smoke — all registered, honest workers unaccused"
