#!/usr/bin/env bash
# End-to-end loopback grid: one gridd supervisor + three gridworker
# processes (two honest, one semi-honest cheater) complete a full
# verification-scheme exchange over real TCP sockets. Asserts that
#   - gridd exits with status 2 (at least one task rejected),
#   - the cheater's task is rejected and its worker line is flagged,
#   - no honest worker is rejected or flagged,
#   - every worker process exits 0 with a verdict in hand.
#
# usage: loopback_grid.sh <gridd> <gridworker> [scheme] [engine]
#
# When [engine] is given (uring/epoll/poll), every process in the exchange
# is pinned to that readiness backend. The script probes the kernel first
# via `gridd --probe-engine` and exits 77 (CTest's skip code) when the
# backend cannot be constructed there — so a uring leg stays green on
# kernels without io_uring.
set -u

GRIDD=${1:?path to gridd}
GRIDWORKER=${2:?path to gridworker}
SCHEME=${3:-cbs}
ENGINE=${4:-auto}

if ! "$GRIDD" --probe-engine "$ENGINE"; then
  echo "SKIP: engine $ENGINE is not constructible on this kernel" >&2
  exit 77
fi

WORKDIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORKDIR"' EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "---- gridd.log ----" >&2; cat "$WORKDIR/gridd.log" >&2 || true
  for w in honest-1 honest-2 cheater-1; do
    echo "---- $w.log ----" >&2; cat "$WORKDIR/$w.log" >&2 || true
  done
  exit 1
}

# Ephemeral port: gridd binds port 0 and prints the port it got.
"$GRIDD" --port 0 --workers 3 --workload test --scheme "$SCHEME" \
         --domain-begin 0 --domain-end 3072 --seed 7 --engine "$ENGINE" \
         --idle-timeout-ms 2000 >"$WORKDIR/gridd.log" 2>&1 &
GRIDD_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^gridd: listening on [0-9.]*:\([0-9]*\).*/\1/p' \
         "$WORKDIR/gridd.log" 2>/dev/null | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$GRIDD_PID" 2>/dev/null || fail "gridd died before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "gridd never printed its port"

"$GRIDWORKER" --connect "127.0.0.1:$PORT" --agent honest-1 \
              --engine "$ENGINE" >"$WORKDIR/honest-1.log" 2>&1 &
W1=$!
"$GRIDWORKER" --connect "127.0.0.1:$PORT" --agent honest-2 \
              --engine "$ENGINE" >"$WORKDIR/honest-2.log" 2>&1 &
W2=$!
"$GRIDWORKER" --connect "127.0.0.1:$PORT" --agent cheater-1 \
              --cheat semi-honest:0.5 --seed 99 --engine "$ENGINE" \
              >"$WORKDIR/cheater-1.log" 2>&1 &
W3=$!

wait "$GRIDD_PID"; GRIDD_STATUS=$?
wait "$W1"; W1_STATUS=$?
wait "$W2"; W2_STATUS=$?
wait "$W3"; W3_STATUS=$?

LOG="$WORKDIR/gridd.log"

# A ~50%-honest cheater escapes 33 CBS samples with probability ~2^-33:
# rejection is deterministic for practical purposes.
[ "$GRIDD_STATUS" -eq 2 ] || fail "gridd exit=$GRIDD_STATUS, want 2 (cheat detected)"
grep -Eq "worker [0-9]+ agent=cheater-1 id=[0-9a-f]+ accepted=0 rejected=1 .* flagged=yes" "$LOG" \
  || fail "cheater not flagged"
for agent in honest-1 honest-2; do
  grep -Eq "worker [0-9]+ agent=$agent id=[0-9a-f]+ accepted=1 rejected=0 .* flagged=no" "$LOG" \
    || fail "honest worker $agent not cleanly accepted"
done
# Every registration went through the authenticated handshake.
[ "$(grep -c "registered agent=" "$LOG")" -eq 3 ] || fail "expected 3 authenticated registrations"
grep -q "summary scheme=$SCHEME .* accepted=2 rejected=1 aborted=0" "$LOG" \
  || fail "summary line mismatch"

for status_var in W1_STATUS:honest-1 W2_STATUS:honest-2 W3_STATUS:cheater-1; do
  status=${status_var%%:*}; agent=${status_var##*:}
  [ "${!status}" -eq 0 ] || fail "worker $agent exit=${!status}, want 0"
done
grep -q "status=accepted" "$WORKDIR/honest-1.log" || fail "honest-1 saw no accepted verdict"
grep -q "status=accepted" "$WORKDIR/honest-2.log" || fail "honest-2 saw no accepted verdict"
grep -Eq "status=(wrong-result|root-mismatch|malformed)" "$WORKDIR/cheater-1.log" \
  || fail "cheater saw no rejection verdict"

echo "PASS: $SCHEME loopback grid (engine=$ENGINE) caught the cheater and paid the honest workers"
