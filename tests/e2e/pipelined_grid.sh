#!/usr/bin/env bash
# End-to-end pipelined verification: one gridd supervisor streaming
# 8-epoch commitments from three gridworker processes — two honest, one
# defector that computes honestly until the midpoint of its assignment
# and guesses from there. Asserts that
#   - gridd exits with status 2 (the defector's task rejected),
#   - the accusation lands mid-stream: the verdict detail names an epoch
#     strictly before the last, so at most one epoch of work past the
#     defection point was wasted (one-shot verification would pay all 8),
#   - both honest workers are accepted across every epoch, none flagged,
#   - every worker process exits 0 with a verdict in hand.
#
# Workers are started (and therefore registered) one at a time so slot
# order is deterministic: the defector lands in slot 2 with domain
# [2048, 3072) and defects from input 2560 — epoch 4 of its 8.
#
# usage: pipelined_grid.sh <gridd> <gridworker>
set -u

GRIDD=${1:?path to gridd}
GRIDWORKER=${2:?path to gridworker}

WORKDIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORKDIR"' EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "---- gridd.log ----" >&2; cat "$WORKDIR/gridd.log" >&2 || true
  for w in honest-1 honest-2 defector-1; do
    echo "---- $w.log ----" >&2; cat "$WORKDIR/$w.log" >&2 || true
  done
  exit 1
}

# Ephemeral port: gridd binds port 0 and prints the port it got.
"$GRIDD" --port 0 --workers 3 --workload test --scheme pipelined-cbs \
         --epochs 8 --epoch-samples 4 \
         --domain-begin 0 --domain-end 3072 --seed 7 \
         --idle-timeout-ms 2000 >"$WORKDIR/gridd.log" 2>&1 &
GRIDD_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^gridd: listening on [0-9.]*:\([0-9]*\).*/\1/p' \
         "$WORKDIR/gridd.log" 2>/dev/null | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$GRIDD_PID" 2>/dev/null || fail "gridd died before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "gridd never printed its port"

# Sequential registration pins agents to slots (and so to subdomains).
await_registration() {
  for _ in $(seq 1 100); do
    [ "$(grep -c "registered agent=" "$WORKDIR/gridd.log")" -ge "$1" ] && return 0
    sleep 0.1
  done
  fail "worker $1 never registered"
}

"$GRIDWORKER" --connect "127.0.0.1:$PORT" --agent honest-1 \
              >"$WORKDIR/honest-1.log" 2>&1 &
W1=$!
await_registration 1
"$GRIDWORKER" --connect "127.0.0.1:$PORT" --agent honest-2 \
              >"$WORKDIR/honest-2.log" 2>&1 &
W2=$!
await_registration 2
"$GRIDWORKER" --connect "127.0.0.1:$PORT" --agent defector-1 \
              --cheat defector:2560 --seed 99 \
              >"$WORKDIR/defector-1.log" 2>&1 &
W3=$!

wait "$GRIDD_PID"; GRIDD_STATUS=$?
wait "$W1"; W1_STATUS=$?
wait "$W2"; W2_STATUS=$?
wait "$W3"; W3_STATUS=$?

LOG="$WORKDIR/gridd.log"

[ "$GRIDD_STATUS" -eq 2 ] || fail "gridd exit=$GRIDD_STATUS, want 2 (defector caught)"
# The accusation must name an epoch before the last: caught mid-stream,
# not at settlement. The defection epoch is 4; sampling lands on it.
grep -Eq 'status=wrong-result detail="epoch [0-6]/8' "$LOG" \
  || fail "no mid-stream epoch accusation in the verdict detail"
grep -Eq "worker [0-9]+ agent=defector-1 id=[0-9a-f]+ accepted=0 rejected=1 .* flagged=yes" "$LOG" \
  || fail "defector not flagged"
for agent in honest-1 honest-2; do
  grep -Eq "worker [0-9]+ agent=$agent id=[0-9a-f]+ accepted=1 rejected=0 .* flagged=no" "$LOG" \
    || fail "honest worker $agent not cleanly accepted"
done
grep -q "summary scheme=pipelined-cbs .* accepted=2 rejected=1 aborted=0" "$LOG" \
  || fail "summary line mismatch"

for status_var in W1_STATUS:honest-1 W2_STATUS:honest-2 W3_STATUS:defector-1; do
  status=${status_var%%:*}; agent=${status_var##*:}
  [ "${!status}" -eq 0 ] || fail "worker $agent exit=${!status}, want 0"
done
grep -q "status=accepted" "$WORKDIR/honest-1.log" || fail "honest-1 saw no accepted verdict"
grep -q "status=accepted" "$WORKDIR/honest-2.log" || fail "honest-2 saw no accepted verdict"
grep -q "status=wrong-result" "$WORKDIR/defector-1.log" \
  || fail "defector saw no rejection verdict"

echo "PASS: pipelined grid accused the defector mid-stream and paid the honest workers"
