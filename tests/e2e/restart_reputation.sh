#!/usr/bin/env bash
# End-to-end restart scenario: reputation — and bans — survive a gridd
# restart because identities are durable (--identity-file) and the ledger is
# persistent (--state-dir).
#
#   run 1: three workers (one semi-honest cheater), --min-observations 1 so
#          a single rejection bans. The cheater is caught and banned.
#   run 2: gridd is killed and restarted on the same --state-dir. The banned
#          identity — started BEFORE gridd, riding the worker's connect
#          retry — is refused at Hello; the honest identities re-register
#          with their earned reputation and get paid.
#
# usage: restart_reputation.sh <gridd> <gridworker>
set -u

GRIDD=${1:?path to gridd}
GRIDWORKER=${2:?path to gridworker}

WORKDIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORKDIR"' EXIT

STATE="$WORKDIR/state"
H1_ID="$WORKDIR/honest-1.id"
H2_ID="$WORKDIR/honest-2.id"
CHEAT_ID="$WORKDIR/cheater-1.id"

fail() {
  echo "FAIL: $*" >&2
  for log in "$WORKDIR"/*.log; do
    echo "---- $(basename "$log") ----" >&2; cat "$log" >&2 || true
  done
  exit 1
}

wait_for_line() {  # wait_for_line <file> <pattern> <what>
  for _ in $(seq 1 150); do
    grep -Eq "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  fail "timed out waiting for $3"
}

# ---------------------------------------------------- run 1: ban the cheater
"$GRIDD" --port 0 --workers 3 --workload test --scheme cbs \
         --domain-begin 0 --domain-end 3072 --seed 7 \
         --state-dir "$STATE" --min-observations 1 \
         --idle-timeout-ms 2000 >"$WORKDIR/run1-gridd.log" 2>&1 &
GRIDD_PID=$!
wait_for_line "$WORKDIR/run1-gridd.log" "^gridd: listening" "run-1 gridd to listen"
kill -0 "$GRIDD_PID" 2>/dev/null || fail "run-1 gridd died at startup"
PORT=$(sed -n 's/^gridd: listening on [0-9.]*:\([0-9]*\).*/\1/p' \
       "$WORKDIR/run1-gridd.log" | head -1)
[ -n "$PORT" ] || fail "run-1 gridd never printed its port"

"$GRIDWORKER" --connect "127.0.0.1:$PORT" --agent honest-1 \
              --identity-file "$H1_ID" >"$WORKDIR/run1-honest-1.log" 2>&1 &
W1=$!
"$GRIDWORKER" --connect "127.0.0.1:$PORT" --agent honest-2 \
              --identity-file "$H2_ID" >"$WORKDIR/run1-honest-2.log" 2>&1 &
W2=$!
"$GRIDWORKER" --connect "127.0.0.1:$PORT" --agent cheater-1 \
              --identity-file "$CHEAT_ID" --cheat semi-honest:0.5 --seed 99 \
              >"$WORKDIR/run1-cheater-1.log" 2>&1 &
W3=$!

wait "$GRIDD_PID"; RUN1_STATUS=$?
wait "$W1" && wait "$W2" || fail "run-1 honest worker failed"
wait "$W3" || fail "run-1 cheater exited non-zero (it should be judged, not crash)"

[ "$RUN1_STATUS" -eq 2 ] || fail "run-1 gridd exit=$RUN1_STATUS, want 2 (cheat detected)"
grep -Eq "worker [0-9]+ agent=cheater-1 id=[0-9a-f]+ .* banned=yes" \
  "$WORKDIR/run1-gridd.log" || fail "run-1 did not ban the cheater"
CHEAT_PREFIX=$(sed -n 's/^gridd: worker [0-9]* agent=cheater-1 id=\([0-9a-f]*\) .*/\1/p' \
               "$WORKDIR/run1-gridd.log" | head -1)
[ -n "$CHEAT_PREFIX" ] || fail "could not extract the cheater's worker id"

# ------------------------- run 2: restart gridd, the ban must still be live
# The banned worker starts BEFORE gridd: its bounded connect-retry must ride
# out the supervisor coming up (start order independence). gridd binds a
# pre-picked port so the early worker knows where to knock; retry the pick a
# few times in case the port is taken.
GRIDD2_PID=""
CHEAT2=""
for _ in 1 2 3 4 5; do
  PORT2=$((20000 + RANDOM % 30000))
  "$GRIDWORKER" --connect "127.0.0.1:$PORT2" --agent cheater-1 \
                --identity-file "$CHEAT_ID" --connect-retries 40 \
                >"$WORKDIR/run2-cheater-1.log" 2>&1 &
  CHEAT2=$!
  sleep 0.3  # let the worker provably lose the race to listen()
  "$GRIDD" --port "$PORT2" --workers 2 --workload test --scheme cbs \
           --domain-begin 0 --domain-end 2048 --seed 8 \
           --state-dir "$STATE" --min-observations 1 \
           --idle-timeout-ms 2000 >"$WORKDIR/run2-gridd.log" 2>&1 &
  GRIDD2_PID=$!
  sleep 0.5
  if kill -0 "$GRIDD2_PID" 2>/dev/null; then
    break
  fi
  kill "$CHEAT2" 2>/dev/null; wait "$CHEAT2" 2>/dev/null
  GRIDD2_PID=""
done
[ -n "$GRIDD2_PID" ] || fail "run-2 gridd could not bind any port"
wait_for_line "$WORKDIR/run2-gridd.log" "^gridd: listening" "run-2 gridd to listen"

# The restarted gridd loaded all three identities back from --state-dir.
grep -Eq "^gridd: reputation .* records=3 banned=1$" "$WORKDIR/run2-gridd.log" \
  || fail "run-2 gridd did not reload the persisted ledger"

# The banned identity is refused at Hello, before any scheme traffic.
wait_for_line "$WORKDIR/run2-gridd.log" \
  "refused peer [0-9]+ status=banned agent=cheater-1 id=$CHEAT_PREFIX" \
  "the banned identity to be refused"

# Now the honest identities re-register and work the grid.
"$GRIDWORKER" --connect "127.0.0.1:$PORT2" --agent honest-1 \
              --identity-file "$H1_ID" >"$WORKDIR/run2-honest-1.log" 2>&1 &
W1=$!
"$GRIDWORKER" --connect "127.0.0.1:$PORT2" --agent honest-2 \
              --identity-file "$H2_ID" >"$WORKDIR/run2-honest-2.log" 2>&1 &
W2=$!

wait "$GRIDD2_PID"; RUN2_STATUS=$?
wait "$W1"; W1_STATUS=$?
wait "$W2"; W2_STATUS=$?
wait "$CHEAT2"; CHEAT2_STATUS=$?

[ "$RUN2_STATUS" -eq 0 ] || fail "run-2 gridd exit=$RUN2_STATUS, want 0 (honest grid)"
# The refused worker got no assignment and reports incomplete.
[ "$CHEAT2_STATUS" -eq 3 ] || fail "banned worker exit=$CHEAT2_STATUS, want 3 (refused)"
# The honest workers were paid: clean exit, accepted verdicts in hand.
[ "$W1_STATUS" -eq 0 ] || fail "run-2 honest-1 exit=$W1_STATUS, want 0"
[ "$W2_STATUS" -eq 0 ] || fail "run-2 honest-2 exit=$W2_STATUS, want 0"
grep -q "status=accepted" "$WORKDIR/run2-honest-1.log" || fail "run-2 honest-1 not paid"
grep -q "status=accepted" "$WORKDIR/run2-honest-2.log" || fail "run-2 honest-2 not paid"
# And they kept the standing they earned in run 1 (2 accepts -> trust 3/4).
grep -Eq "worker [0-9]+ agent=honest-1 id=[0-9a-f]+ .* trust=0.75" \
  "$WORKDIR/run2-gridd.log" || fail "honest-1's reputation did not carry over"
# The retry satellite actually fired: the early worker logged at least one
# failed attempt before gridd came up.
grep -q "retry 1/" "$WORKDIR/run2-cheater-1.log" \
  || fail "expected the pre-started worker to exercise connect retry"

echo "PASS: ban and reputation survived the gridd restart; honest workers re-registered and were paid"
