// Backend-conformance tests for the readiness engine (src/net/event_engine).
// Every test runs against all three backends — io_uring and epoll (Linux)
// and the portable poll() fallback — through the same TEST_P body: they
// must be behaviorally interchangeable, because TcpTransport picks between
// them at runtime and every higher layer assumes the choice is invisible.

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/event_engine.h"
#include "net/socket.h"

namespace ugc {
namespace {

using net::EngineBackend;
using net::EventEngine;
using net::Interest;
using net::ReadyEvent;

class EventEngineBackend : public ::testing::TestWithParam<EngineBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == EngineBackend::kEpoll && !net::epoll_supported()) {
      GTEST_SKIP() << "epoll not available on this platform";
    }
    if (GetParam() == EngineBackend::kUring && !net::uring_supported()) {
      GTEST_SKIP() << "io_uring not available on this kernel (missing, "
                      "disabled, or pre-5.11) — uring backend untested here";
    }
    engine_ = net::make_event_engine(GetParam());
  }

  std::unique_ptr<EventEngine> engine_;
  std::vector<ReadyEvent> ready_;
};

TEST_P(EventEngineBackend, ReportsItsBackendName) {
  EXPECT_EQ(engine_->name(), to_string(GetParam()));
  EXPECT_EQ(engine_->watched(), 0u);
}

TEST_P(EventEngineBackend, PipeReadinessRoundTrip) {
  auto [read_end, write_end] = net::make_wake_pipe();
  engine_->add(read_end.fd(), 42, Interest::kRead);
  EXPECT_EQ(engine_->watched(), 1u);

  // Nothing written yet: a zero-timeout wait returns no events.
  engine_->wait(0, ready_);
  EXPECT_TRUE(ready_.empty());

  const std::uint8_t byte = 1;
  ASSERT_EQ(::write(write_end.fd(), &byte, 1), 1);
  engine_->wait(1000, ready_);
  ASSERT_EQ(ready_.size(), 1u);
  EXPECT_EQ(ready_[0].token, 42u);
  EXPECT_TRUE(ready_[0].readable);
  EXPECT_FALSE(ready_[0].writable);

  // Level-triggered: the event repeats until the byte is drained.
  engine_->wait(0, ready_);
  ASSERT_EQ(ready_.size(), 1u);
  net::drain_wake_pipe(read_end);
  engine_->wait(0, ready_);
  EXPECT_TRUE(ready_.empty());
}

TEST_P(EventEngineBackend, TokensSurviveTheFullSixtyFourBits) {
  // TcpTransport packs sentinel tokens above the 32-bit peer-id space
  // (listener at 1<<32, wake pipe at 1<<33); the engine must hand back
  // whatever it was given, bit for bit.
  auto [read_end, write_end] = net::make_wake_pipe();
  const std::uint64_t token = (1ull << 33) | 0xdeadbeefull;
  engine_->add(read_end.fd(), token, Interest::kRead);
  const std::uint8_t byte = 1;
  ASSERT_EQ(::write(write_end.fd(), &byte, 1), 1);
  engine_->wait(1000, ready_);
  ASSERT_EQ(ready_.size(), 1u);
  EXPECT_EQ(ready_[0].token, token);
}

TEST_P(EventEngineBackend, WriteInterestAndModify) {
  auto [read_end, write_end] = net::make_wake_pipe();
  // An empty pipe's write end is immediately writable.
  engine_->add(write_end.fd(), 7, Interest::kWrite);
  engine_->wait(1000, ready_);
  ASSERT_EQ(ready_.size(), 1u);
  EXPECT_TRUE(ready_[0].writable);
  EXPECT_FALSE(ready_[0].readable);

  // Demoted to read interest it goes silent (nothing to read), exactly the
  // write-queue-drained transition TcpTransport makes after every flush.
  engine_->modify(write_end.fd(), 7, Interest::kRead);
  engine_->wait(0, ready_);
  EXPECT_TRUE(ready_.empty());

  engine_->modify(write_end.fd(), 7, Interest::kReadWrite);
  engine_->wait(0, ready_);
  ASSERT_EQ(ready_.size(), 1u);
  EXPECT_TRUE(ready_[0].writable);
}

TEST_P(EventEngineBackend, PeerHangupSurfacesAsReadableOrError) {
  auto [read_end, write_end] = net::make_wake_pipe();
  engine_->add(read_end.fd(), 9, Interest::kRead);
  write_end.close();
  engine_->wait(1000, ready_);
  ASSERT_EQ(ready_.size(), 1u);
  // Either shape drives the transport into read_some(), which sees the EOF
  // and reaps the peer; what matters is that the wakeup happens at all.
  EXPECT_TRUE(ready_[0].readable || ready_[0].error);
}

TEST_P(EventEngineBackend, DuplicateAddThrows) {
  auto [read_end, write_end] = net::make_wake_pipe();
  engine_->add(read_end.fd(), 1, Interest::kRead);
  EXPECT_THROW(engine_->add(read_end.fd(), 2, Interest::kRead), Error);
}

TEST_P(EventEngineBackend, ModifyUnknownFdThrows) {
  auto [read_end, write_end] = net::make_wake_pipe();
  EXPECT_THROW(engine_->modify(read_end.fd(), 1, Interest::kRead), Error);
}

TEST_P(EventEngineBackend, RemoveIsIdempotentAndSilencesTheFd) {
  auto [read_end, write_end] = net::make_wake_pipe();
  engine_->add(read_end.fd(), 5, Interest::kRead);
  const std::uint8_t byte = 1;
  ASSERT_EQ(::write(write_end.fd(), &byte, 1), 1);
  engine_->remove(read_end.fd());
  EXPECT_EQ(engine_->watched(), 0u);
  engine_->wait(0, ready_);
  EXPECT_TRUE(ready_.empty());
  engine_->remove(read_end.fd());  // quiet no-op the second time
}

TEST_P(EventEngineBackend, ManyFdsOnlyReadyOnesReported) {
  // The O(ready) vs O(watched) distinction the whole PR is about, as a
  // correctness property: with many idle fds and one active, exactly one
  // event comes back.
  std::vector<std::pair<net::Socket, net::Socket>> pipes;
  for (std::uint64_t i = 0; i < 64; ++i) {
    pipes.push_back(net::make_wake_pipe());
    engine_->add(pipes.back().first.fd(), i, Interest::kRead);
  }
  EXPECT_EQ(engine_->watched(), 64u);
  const std::uint8_t byte = 1;
  ASSERT_EQ(::write(pipes[37].second.fd(), &byte, 1), 1);
  engine_->wait(1000, ready_);
  ASSERT_EQ(ready_.size(), 1u);
  EXPECT_EQ(ready_[0].token, 37u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EventEngineBackend,
    ::testing::Values(EngineBackend::kPoll, EngineBackend::kEpoll,
                      EngineBackend::kUring),
    [](const ::testing::TestParamInfo<EngineBackend>& info) {
      return std::string(to_string(info.param));
    });

TEST(EventEngineFactory, ParseBackendRoundTrips) {
  EXPECT_EQ(net::parse_engine_backend("auto"), EngineBackend::kAuto);
  EXPECT_EQ(net::parse_engine_backend("uring"), EngineBackend::kUring);
  EXPECT_EQ(net::parse_engine_backend("epoll"), EngineBackend::kEpoll);
  EXPECT_EQ(net::parse_engine_backend("poll"), EngineBackend::kPoll);
  EXPECT_THROW(net::parse_engine_backend("kqueue"), Error);
}

TEST(EventEngineFactory, AutoPicksTheBestAvailableBackend) {
  const auto engine = net::make_event_engine(EngineBackend::kAuto);
  const char* expected = net::uring_supported()   ? "uring"
                         : net::epoll_supported() ? "epoll"
                                                  : "poll";
  EXPECT_EQ(std::string(engine->name()), expected);
}

TEST(EventEngineFactory, ExplicitUringFailsLoudlyWhereUnsupported) {
  // kAuto falls back; an explicit --engine uring must not silently demote.
  if (net::uring_supported()) {
    EXPECT_EQ(std::string(
                  net::make_event_engine(EngineBackend::kUring)->name()),
              "uring");
  } else {
    EXPECT_THROW(net::make_event_engine(EngineBackend::kUring), Error);
  }
}

}  // namespace
}  // namespace ugc
