#include <gtest/gtest.h>

#include <atomic>

#include "grid/broker.h"
#include "grid/network.h"
#include "grid/participant_node.h"
#include "grid/simulation.h"
#include "grid/supervisor_node.h"
#include "common/parallel.h"

namespace ugc {
namespace {

// Test node that records everything it receives and optionally echoes.
class RecordingNode final : public GridNode {
 public:
  void on_message(GridNodeId from, const Message& message,
                  Transport& network) override {
    received.push_back({from, message_type(message)});
    if (echo_to.has_value()) {
      network.send(id(), *echo_to, message);
      echo_to.reset();  // echo once to avoid loops
    }
  }

  std::vector<std::pair<GridNodeId, MessageType>> received;
  std::optional<GridNodeId> echo_to;
};

// ---------------------------------------------------------------- network

TEST(SimNetwork, DeliversInFifoOrder) {
  SimNetwork network;
  RecordingNode a;
  RecordingNode b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);

  network.send(ida, idb, Commitment{TaskId{1}, 4, to_bytes("r1")});
  network.send(ida, idb, SampleChallenge{TaskId{1}, {LeafIndex{0}}});
  EXPECT_EQ(network.run(), 2u);
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].second, MessageType::kCommitment);
  EXPECT_EQ(b.received[1].second, MessageType::kSampleChallenge);
  EXPECT_EQ(b.received[0].first, ida);
}

TEST(SimNetwork, MetersExactEncodedBytes) {
  SimNetwork network;
  RecordingNode a;
  RecordingNode b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);

  const Commitment commitment{TaskId{1}, 4, to_bytes("root-bytes")};
  const std::size_t encoded = encode_message(Message{commitment}).size();
  network.send(ida, idb, commitment);

  EXPECT_EQ(network.stats().total_bytes, encoded);
  EXPECT_EQ(network.stats().total_messages, 1u);
  EXPECT_EQ(network.stats().bytes_sent(ida), encoded);
  EXPECT_EQ(network.stats().bytes_received(idb), encoded);
  EXPECT_EQ(network.stats().bytes_sent(idb), 0u);
}

TEST(SimNetwork, PerLinkAccounting) {
  SimNetwork network;
  RecordingNode a, b, c;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  const GridNodeId idc = network.add_node(c);

  network.send(ida, idb, RingerReport{TaskId{1}, {1}});
  network.send(ida, idc, RingerReport{TaskId{1}, {1}});
  network.send(ida, idb, RingerReport{TaskId{1}, {1}});
  network.run();

  EXPECT_EQ(network.stats().links.at({ida.value, idb.value}).messages, 2u);
  EXPECT_EQ(network.stats().links.at({ida.value, idc.value}).messages, 1u);
}

TEST(SimNetwork, SendValidatesNodeIds) {
  SimNetwork network;
  RecordingNode a;
  const GridNodeId ida = network.add_node(a);
  EXPECT_THROW(network.send(ida, GridNodeId{5}, RingerReport{TaskId{1}, {}}),
               Error);
  EXPECT_THROW(network.send(GridNodeId{5}, ida, RingerReport{TaskId{1}, {}}),
               Error);
}

TEST(SimNetwork, RunGuardsAgainstInfiniteLoops) {
  SimNetwork network;
  RecordingNode a;
  RecordingNode b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  // a and b endlessly bounce a message.
  a.echo_to = idb;
  b.echo_to = ida;
  network.send(ida, idb, RingerReport{TaskId{1}, {}});
  // Each node echoes once, so this terminates; with a tiny cap it throws.
  SimNetwork looping;
  RecordingNode c, d;
  const GridNodeId idc = looping.add_node(c);
  const GridNodeId idd = looping.add_node(d);
  for (int i = 0; i < 10; ++i) {
    looping.send(idc, idd, RingerReport{TaskId{1}, {}});
  }
  EXPECT_THROW(looping.run(/*max_deliveries=*/5), Error);
}

TEST(TaskOf, ExtractsTaskFromEveryMessageType) {
  EXPECT_EQ(task_of(Message{Commitment{TaskId{5}, 1, {}}}), TaskId{5});
  EXPECT_EQ(task_of(Message{SampleChallenge{TaskId{6}, {}}}), TaskId{6});
  EXPECT_EQ(task_of(Message{ProofResponse{TaskId{7}, {}}}), TaskId{7});
  EXPECT_EQ(
      task_of(Message{NiCbsProof{Commitment{TaskId{8}, 1, {}}, {}}}),
      TaskId{8});
  EXPECT_EQ(task_of(Message{ResultsUpload{TaskId{9}, {}}}), TaskId{9});
  EXPECT_EQ(task_of(Message{ScreenerReport{TaskId{10}, {}}}), TaskId{10});
  EXPECT_EQ(task_of(Message{RingerReport{TaskId{11}, {}}}), TaskId{11});
  Verdict v;
  v.task = TaskId{12};
  EXPECT_EQ(task_of(Message{v}), TaskId{12});
  TaskAssignment a;
  a.task = TaskId{13};
  a.domain_end = 1;
  EXPECT_EQ(task_of(Message{a}), TaskId{13});
  EXPECT_EQ(task_of(Message{EpochCommitment{TaskId{14}, 0, 2, {}}}),
            TaskId{14});
  EXPECT_EQ(task_of(Message{EpochChallenge{TaskId{15}, 0, {}}}), TaskId{15});
  EXPECT_EQ(task_of(Message{EpochProofResponse{TaskId{16}, 0, {}}}),
            TaskId{16});
  EXPECT_EQ(task_of(Message{EpochAck{TaskId{17}, 0}}), TaskId{17});
  EXPECT_EQ(task_of(Message{EpochResume{TaskId{18}, 0}}), TaskId{18});
}

// ------------------------------------------------- stale-traffic counting

TEST(SupervisorNodeStale, LateReportFromStaleSenderNeverCreditsAnAttempt) {
  SimNetwork net;
  RecordingNode black_hole;
  ParticipantNode honest{{}};
  const GridNodeId dead = net.add_node(black_hole);
  const GridNodeId live = net.add_node(honest);

  SupervisorNode::Plan plan;
  plan.domain = Domain(0, 256);
  plan.scheme.name = "cbs";
  plan.seed = 3;
  // Accept reports verbatim: any stale frame that slipped the guard would
  // land in the task's hit list, making the assertion below conclusive.
  plan.validate_reported_hits = false;
  SupervisorNode supervisor(plan, {dead, live});
  net.add_node(supervisor);
  supervisor.start(net);
  // run() pumps to quiescence, which fires the timeout hook: group 0's
  // attempt in the black hole (task 1) is superseded and retried on the
  // live worker's slot, so the whole grid settles.
  net.run();
  ASSERT_TRUE(supervisor.done());

  // Nothing counted yet: all traffic so far was current.
  EXPECT_EQ(supervisor.stale_frames_dropped(), 0u);

  // A report for the live worker's task arriving from the WRONG sender
  // must die at the guard, not credit the task.
  supervisor.on_message(
      dead, Message{ScreenerReport{TaskId{2}, {{7, "spoofed"}}}}, net);
  EXPECT_EQ(supervisor.stale_frames_dropped(), 1u);
  // Unknown task id: counted too.
  supervisor.on_message(
      dead, Message{ScreenerReport{TaskId{99}, {{7, "spoofed"}}}}, net);
  EXPECT_EQ(supervisor.stale_frames_dropped(), 2u);
  // The dead attempt's peer reports a "discovery" for its superseded task:
  // counted and dropped — it cannot credit the replacement attempt.
  supervisor.on_message(
      dead, Message{ScreenerReport{TaskId{1}, {{7, "spoofed"}}}}, net);
  EXPECT_EQ(supervisor.stale_frames_dropped(), 3u);

  for (const SupervisorNode::TaskOutcome& outcome : supervisor.outcomes()) {
    EXPECT_TRUE(outcome.verdict.accepted()) << outcome.verdict.detail;
  }
  const std::vector<ScreenerHit> hits = supervisor.accepted_hits();
  EXPECT_TRUE(std::none_of(hits.begin(), hits.end(),
                           [](const ScreenerHit& hit) {
                             return hit.report == "spoofed";
                           }))
      << "a stale frame credited an attempt it must not reach";
}

// ------------------------------------------- pipelined crash re-entry

TEST(SupervisorNodePipelined, ReplacementWorkerResumesAtTheFrontier) {
  SimNetwork net;
  ParticipantNode worker_a{{}}, worker_b{{}};
  const GridNodeId a = net.add_node(worker_a);
  const GridNodeId b = net.add_node(worker_b);

  SupervisorNode::Plan plan;
  plan.domain = Domain(0, 128);
  plan.scheme.name = "pipelined-cbs";
  plan.scheme.pipeline.epochs = 4;  // 32 inputs per epoch
  plan.scheme.pipeline.samples_per_epoch = 2;
  plan.seed = 13;
  SupervisorNode supervisor(plan, {a});
  net.add_node(supervisor);
  supervisor.start(net);

  // Step frame by frame until worker A has swept three epochs — by then at
  // least two are acknowledged, so the verified frontier is past epoch 1.
  int guard = 0;
  while (worker_a.honest_evaluations() < 96) {
    ASSERT_TRUE(net.deliver_one()) << "pipelined exchange stalled";
    ASSERT_LT(++guard, 500);
  }

  // Worker A "dies"; a replacement with the same durable identity takes
  // the slot. The 3-argument replace_slot announces the resume point
  // (EpochResume) and re-sends the assignment to the new peer, so B picks
  // up at the frontier instead of redoing verified epochs.
  supervisor.replace_slot(0, b, &net);
  net.run();

  ASSERT_TRUE(supervisor.done());
  const std::vector<SupervisorNode::TaskOutcome> outcomes =
      supervisor.outcomes();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].verdict.accepted()) << outcomes[0].verdict.detail;
  EXPECT_EQ(outcomes[0].peer.value, b.value);
  // The replacement computed only the unverified suffix (at most the last
  // two epochs), never the whole 128-input domain.
  EXPECT_GT(worker_b.honest_evaluations(), 0u);
  EXPECT_LE(worker_b.honest_evaluations(), 64u);
  // Worker A's in-flight traffic from before the hand-off arrived from a
  // sender the task no longer belongs to: dropped and counted.
  EXPECT_GT(supervisor.stale_frames_dropped(), 0u);
}

// -------------------------------------------------------------- threadpool

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(1000);
  parallel_for(0, 1000, [&counts](std::uint64_t i) { ++counts[i]; }, 8);
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelFor, WorksSingleThreaded) {
  std::uint64_t sum = 0;
  parallel_for(10, 20, [&sum](std::uint64_t i) { sum += i; }, 1);
  EXPECT_EQ(sum, 145u);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(5, 5, [](std::uint64_t) { FAIL(); }, 4);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> counts(3);
  parallel_for(0, 3, [&counts](std::uint64_t i) { ++counts[i]; }, 16);
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelFor, Validation) {
  EXPECT_THROW(parallel_for(5, 4, [](std::uint64_t) {}), Error);
  EXPECT_THROW(parallel_for(0, 4, nullptr), Error);
}

// ----------------------------------------------------------------- broker

TEST(Broker, RoundRobinAssignment) {
  SimNetwork network;
  RecordingNode w0, w1, supervisor;
  const GridNodeId id0 = network.add_node(w0);
  const GridNodeId id1 = network.add_node(w1);
  const GridNodeId ids = network.add_node(supervisor);
  BrokerNode broker({id0, id1});
  const GridNodeId idb = network.add_node(broker);

  for (std::uint64_t t = 1; t <= 4; ++t) {
    TaskAssignment a;
    a.task = TaskId{t};
    a.domain_end = 1;
    a.workload = "test";
    network.send(ids, idb, a);
  }
  network.run();
  EXPECT_EQ(w0.received.size(), 2u);
  EXPECT_EQ(w1.received.size(), 2u);
  EXPECT_EQ(broker.assignments_per_worker().at(id0.value), 2u);
}

TEST(Broker, RelaysByTaskInBothDirections) {
  SimNetwork network;
  RecordingNode worker, supervisor;
  const GridNodeId idw = network.add_node(worker);
  const GridNodeId ids = network.add_node(supervisor);
  BrokerNode broker({idw});
  const GridNodeId idb = network.add_node(broker);

  TaskAssignment a;
  a.task = TaskId{1};
  a.domain_end = 1;
  network.send(ids, idb, a);
  network.run();
  ASSERT_EQ(worker.received.size(), 1u);

  // Upstream: worker -> broker -> supervisor.
  network.send(idw, idb, Commitment{TaskId{1}, 1, to_bytes("r")});
  network.run();
  ASSERT_EQ(supervisor.received.size(), 1u);
  EXPECT_EQ(supervisor.received[0].first, idb);  // broker hides the worker
  EXPECT_EQ(broker.relayed_upstream(), 1u);

  // Downstream: supervisor -> broker -> worker.
  network.send(ids, idb, SampleChallenge{TaskId{1}, {}});
  network.run();
  ASSERT_EQ(worker.received.size(), 2u);
  EXPECT_EQ(broker.relayed_downstream(), 1u);
}

TEST(Broker, DropsUnroutableTraffic) {
  SimNetwork network;
  RecordingNode worker, supervisor;
  const GridNodeId idw = network.add_node(worker);
  const GridNodeId ids = network.add_node(supervisor);
  BrokerNode broker({idw});
  const GridNodeId idb = network.add_node(broker);

  network.send(ids, idb, Commitment{TaskId{99}, 1, to_bytes("r")});
  network.run();
  EXPECT_TRUE(worker.received.empty());
  EXPECT_TRUE(supervisor.received.empty());
}

TEST(Broker, RequiresWorkers) {
  EXPECT_THROW(BrokerNode({}), Error);
}

// ------------------------------------------------------------- simulation

SchemeConfig scheme_of(SchemeKind kind) {
  SchemeConfig scheme;
  scheme.kind = kind;
  scheme.cbs.sample_count = 20;
  scheme.nicbs.sample_count = 20;
  scheme.naive.sample_count = 20;
  scheme.ringer.ringer_count = 10;
  return scheme;
}

class AllSchemesHonest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(AllSchemesHonest, EveryTaskAcceptedAndKeyFound) {
  GridConfig config;
  config.domain_begin = 0;
  config.domain_end = 1 << 10;
  config.workload = "keysearch";
  config.workload_seed = 5;
  config.participant_count = 4;
  config.scheme = scheme_of(GetParam());
  config.seed = 7;

  const GridRunResult result = run_grid_simulation(config);

  const std::size_t expected_tasks =
      GetParam() == SchemeKind::kDoubleCheck ? 4u : 4u;
  EXPECT_EQ(result.outcomes.size(), expected_tasks);
  EXPECT_EQ(result.honest_tasks_rejected, 0u);
  EXPECT_EQ(result.cheater_tasks_accepted, 0u);
  EXPECT_EQ(result.honest_tasks_accepted, expected_tasks);

  // The planted key must surface exactly once through the screener.
  ASSERT_EQ(result.hits.size(), 1u) << to_string(GetParam());
  EXPECT_TRUE(result.hits[0].report.starts_with("key-found:"));
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemesHonest,
                         ::testing::Values(SchemeKind::kDoubleCheck,
                                           SchemeKind::kNaiveSampling,
                                           SchemeKind::kCbs,
                                           SchemeKind::kNiCbs,
                                           SchemeKind::kRinger),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "ni-cbs"
                                      ? "nicbs"
                                      : std::string(to_string(info.param)) ==
                                                "double-check"
                                            ? "doublecheck"
                                            : std::string(
                                                  to_string(info.param)) ==
                                                      "naive-sampling"
                                                  ? "naivesampling"
                                                  : std::string(to_string(
                                                        info.param));
                         });

class AllSchemesCheater : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(AllSchemesCheater, CheaterCaughtHonestUnharmed) {
  GridConfig config;
  config.domain_begin = 0;
  config.domain_end = 1 << 10;
  config.workload = "test";
  config.participant_count = 4;
  config.scheme = scheme_of(GetParam());
  config.seed = 11;
  config.cheaters = {{1, 0.4, 0.0, 0}};

  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.cheater_tasks_accepted, 0u) << to_string(GetParam());
  EXPECT_GE(result.cheater_tasks_rejected, 1u);
  EXPECT_EQ(result.honest_tasks_rejected, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemesCheater,
                         ::testing::Values(SchemeKind::kDoubleCheck,
                                           SchemeKind::kNaiveSampling,
                                           SchemeKind::kCbs,
                                           SchemeKind::kNiCbs,
                                           SchemeKind::kRinger),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST(Simulation, CbsUploadsFarLessThanNaive) {
  GridConfig config;
  config.domain_end = 1 << 14;
  config.participant_count = 2;
  config.seed = 13;

  config.scheme = scheme_of(SchemeKind::kNaiveSampling);
  const GridRunResult naive = run_grid_simulation(config);

  config.scheme = scheme_of(SchemeKind::kCbs);
  const GridRunResult cbs = run_grid_simulation(config);

  // Results are 16 bytes × 16384 inputs: the O(n) upload dwarfs CBS's
  // O(m log n) proof traffic, and the gap keeps widening with n
  // (bench_comm_cost sweeps this).
  EXPECT_LT(cbs.network.total_bytes * 10, naive.network.total_bytes);
}

TEST(Simulation, DoubleCheckBurnsReplicatedCompute) {
  GridConfig config;
  config.domain_end = 1 << 10;
  config.participant_count = 4;
  config.scheme = scheme_of(SchemeKind::kDoubleCheck);
  const GridRunResult dc = run_grid_simulation(config);
  // 4 participants cover only 2 distinct subdomains: 2× the work.
  EXPECT_EQ(dc.participant_evaluations, 2u << 10);

  config.scheme = scheme_of(SchemeKind::kCbs);
  const GridRunResult cbs = run_grid_simulation(config);
  EXPECT_EQ(cbs.participant_evaluations, 1u << 10);
}

TEST(Simulation, HonestDoubleCheckNeedsNoSupervisorCompute) {
  GridConfig config;
  config.domain_end = 1 << 9;
  config.participant_count = 2;
  config.scheme = scheme_of(SchemeKind::kDoubleCheck);
  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.supervisor_evaluations, 0u);  // replicas agree everywhere
}

TEST(Simulation, BrokerModeRunsAllSchemes) {
  for (const SchemeKind kind :
       {SchemeKind::kNaiveSampling, SchemeKind::kCbs, SchemeKind::kNiCbs,
        SchemeKind::kRinger}) {
    GridConfig config;
    config.domain_end = 1 << 9;
    config.participant_count = 3;
    config.scheme = scheme_of(kind);
    config.use_broker = true;
    config.seed = 17;
    const GridRunResult result = run_grid_simulation(config);
    EXPECT_EQ(result.honest_tasks_accepted, 3u) << to_string(kind);
    EXPECT_EQ(result.honest_tasks_rejected, 0u) << to_string(kind);
  }
}

TEST(Simulation, NiCbsSavesBrokerRoundTripsVsCbs) {
  GridConfig config;
  config.domain_end = 1 << 9;
  config.participant_count = 3;
  config.use_broker = true;
  config.seed = 19;

  config.scheme = scheme_of(SchemeKind::kCbs);
  const GridRunResult cbs = run_grid_simulation(config);

  config.scheme = scheme_of(SchemeKind::kNiCbs);
  const GridRunResult nicbs = run_grid_simulation(config);

  // Interactive CBS needs commitment + challenge + response through the
  // broker; NI-CBS ships one self-contained proof.
  EXPECT_LT(nicbs.network.total_messages, cbs.network.total_messages);
}

TEST(Simulation, DeterministicGivenSeed) {
  GridConfig config;
  config.domain_end = 1 << 9;
  config.participant_count = 3;
  config.scheme = scheme_of(SchemeKind::kCbs);
  config.seed = 23;
  config.cheaters = {{2, 0.5, 0.0, 0}};

  const GridRunResult a = run_grid_simulation(config);
  const GridRunResult b = run_grid_simulation(config);
  EXPECT_EQ(a.network.total_bytes, b.network.total_bytes);
  EXPECT_EQ(a.network.total_messages, b.network.total_messages);
  EXPECT_EQ(a.cheater_tasks_rejected, b.cheater_tasks_rejected);
  EXPECT_EQ(a.hits.size(), b.hits.size());
}

TEST(Simulation, ValidatesConfig) {
  GridConfig config;
  config.participant_count = 0;
  EXPECT_THROW(run_grid_simulation(config), Error);

  config = {};
  config.domain_end = 0;
  EXPECT_THROW(run_grid_simulation(config), Error);

  config = {};
  config.cheaters = {{9, 0.5, 0.0, 0}};
  EXPECT_THROW(run_grid_simulation(config), Error);

  config = {};
  config.participant_count = 3;  // not divisible by 2 replicas
  config.scheme.kind = SchemeKind::kDoubleCheck;
  EXPECT_THROW(run_grid_simulation(config), Error);
}

TEST(Simulation, FactoringUsesCheapVerifierNotRecompute) {
  GridConfig config;
  config.domain_end = 64;
  config.workload = "factoring";
  config.participant_count = 2;
  config.scheme = scheme_of(SchemeKind::kCbs);
  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.honest_tasks_accepted, 2u);
  EXPECT_GT(result.results_verified, 0u);
  // The cheap verifier never re-runs f.
  EXPECT_EQ(result.supervisor_evaluations, 0u);
}

}  // namespace
}  // namespace ugc
