// src/store unit tests: both ReputationStore backends, crash-tail recovery,
// snapshot compaction, and the DurableReputationLedger's ban boundary.

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>
#include <unistd.h>

#include <string>

#include "auth/identity.h"
#include "common/error.h"
#include "common/rng.h"
#include "store/durable_ledger.h"
#include "store/reputation_store.h"

namespace ugc::store {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    char templ[] = "/tmp/ugc_store_test_XXXXXX";
    const char* made = ::mkdtemp(templ);
    if (made == nullptr) {
      throw Error("mkdtemp failed");
    }
    path = made;
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
};

WorkerId id_of(std::uint8_t tag) {
  WorkerId id;
  id.digest.fill(tag);
  return id;
}

// Contract shared by both backends.
void exercise_store(ReputationStore& store) {
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.get(id_of(1)).has_value());

  store.put(id_of(1), ReputationRecord{2.0, 1.0, 1});
  store.put(id_of(2), ReputationRecord{1.0, 3.0, 2});
  EXPECT_EQ(store.size(), 2u);
  ASSERT_TRUE(store.get(id_of(1)).has_value());
  EXPECT_EQ(store.get(id_of(1))->alpha, 2.0);

  store.put(id_of(1), ReputationRecord{5.0, 1.0, 4});  // overwrite
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get(id_of(1))->alpha, 5.0);
  EXPECT_EQ(store.get(id_of(1))->observations, 4u);

  const auto all = store.snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, id_of(1));  // worker-id order
  EXPECT_EQ(all[1].first, id_of(2));
  store.sync();  // must be callable any time
}

TEST(MemoryStore, Contract) {
  const auto store = make_memory_reputation_store();
  exercise_store(*store);
}

TEST(FileStore, Contract) {
  TempDir dir;
  const auto store = make_file_reputation_store(dir.path);
  exercise_store(*store);
}

TEST(FileStore, CreatesMissingDirectories) {
  TempDir dir;
  const auto store = make_file_reputation_store(dir.path + "/nested/state");
  store->put(id_of(1), ReputationRecord{2.0, 1.0, 1});
  EXPECT_EQ(store->size(), 1u);
}

TEST(FileStore, RecordsSurviveReopen) {
  TempDir dir;
  {
    const auto store = make_file_reputation_store(dir.path);
    store->put(id_of(1), ReputationRecord{3.0, 1.0, 2});
    store->put(id_of(2), ReputationRecord{1.0, 4.0, 3});
    store->sync();
  }
  const auto reopened = make_file_reputation_store(dir.path);
  EXPECT_EQ(reopened->size(), 2u);
  ASSERT_TRUE(reopened->get(id_of(2)).has_value());
  EXPECT_EQ(*reopened->get(id_of(2)), (ReputationRecord{1.0, 4.0, 3}));
}

TEST(FileStore, CompactionPreservesEveryRecordAndTruncatesLog) {
  TempDir dir;
  FileStoreOptions options;
  options.compact_after_log_entries = 4;
  {
    const auto store = make_file_reputation_store(dir.path, options);
    for (std::uint8_t i = 1; i <= 10; ++i) {
      store->put(id_of(i), ReputationRecord{1.0 + i, 1.0, i});
    }
  }
  // Compaction fired at least twice; the log holds only the post-snapshot
  // suffix.
  struct stat st {};
  ASSERT_EQ(::stat((dir.path + "/reputation.snapshot").c_str(), &st), 0);
  EXPECT_GT(st.st_size, 0);
  const auto reopened = make_file_reputation_store(dir.path, options);
  EXPECT_EQ(reopened->size(), 10u);
  for (std::uint8_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(reopened->get(id_of(i)).has_value()) << int(i);
    EXPECT_EQ(reopened->get(id_of(i))->alpha, 1.0 + i);
  }
}

TEST(FileStore, TornLogTailIsDroppedOnOpen) {
  TempDir dir;
  {
    const auto store = make_file_reputation_store(dir.path);
    store->put(id_of(1), ReputationRecord{2.0, 1.0, 1});
    store->put(id_of(2), ReputationRecord{3.0, 1.0, 2});
    store->sync();
  }
  const std::string log = dir.path + "/reputation.log";
  struct stat st {};
  ASSERT_EQ(::stat(log.c_str(), &st), 0);
  // Simulate a crash mid-append: chop the last entry in half.
  ASSERT_EQ(::truncate(log.c_str(), st.st_size - 20), 0);

  const auto reopened = make_file_reputation_store(dir.path);
  EXPECT_EQ(reopened->size(), 1u);
  EXPECT_TRUE(reopened->get(id_of(1)).has_value());
  EXPECT_FALSE(reopened->get(id_of(2)).has_value());
  // And the poison is gone: the next open replays cleanly too.
  reopened->put(id_of(3), ReputationRecord{1.0, 1.0, 1});
  const auto again = make_file_reputation_store(dir.path);
  EXPECT_EQ(again->size(), 2u);
}

TEST(FileStore, CorruptSnapshotFailsLoudly) {
  TempDir dir;
  {
    FileStoreOptions options;
    options.compact_after_log_entries = 1;  // force a snapshot immediately
    const auto store = make_file_reputation_store(dir.path, options);
    store->put(id_of(1), ReputationRecord{2.0, 1.0, 1});
  }
  std::FILE* f = std::fopen((dir.path + "/reputation.snapshot").c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_THROW(make_file_reputation_store(dir.path), Error);
}

// ------------------------------------------------------------------ ledger

TEST(DurableLedger, UnseenWorkerHasPriorTrustAndNoBan) {
  DurableReputationLedger ledger({}, make_memory_reputation_store());
  EXPECT_DOUBLE_EQ(ledger.trust(id_of(1)), 0.5);
  EXPECT_EQ(ledger.observations(id_of(1)), 0u);
  EXPECT_FALSE(ledger.banned(id_of(1)));
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(DurableLedger, PosteriorTracksVerdicts) {
  DurableReputationLedger ledger({}, make_memory_reputation_store());
  ledger.record(id_of(1), true);
  ledger.record(id_of(1), true);
  ledger.record(id_of(1), false);
  // Beta(1+2, 1+1): mean 3/5.
  EXPECT_DOUBLE_EQ(ledger.trust(id_of(1)), 0.6);
  EXPECT_EQ(ledger.observations(id_of(1)), 3u);
  EXPECT_FALSE(ledger.banned(id_of(1)));
}

TEST(DurableLedger, TrustExactlyAtThresholdIsNotBanned) {
  // The ban rule is strict `<`: a worker sitting exactly on the threshold
  // keeps its standing. One accept + one reject leaves the posterior at
  // Beta(2, 2) — trust exactly 0.5, the default threshold.
  DurableReputationLedger ledger({}, make_memory_reputation_store());
  ledger.record(id_of(1), true);
  ledger.record(id_of(1), false);
  EXPECT_DOUBLE_EQ(ledger.trust(id_of(1)), 0.5);
  EXPECT_EQ(ledger.observations(id_of(1)), 2u);
  EXPECT_FALSE(ledger.banned(id_of(1)));
  // One more rejection tips it below: Beta(2, 3), trust 0.4.
  ledger.record(id_of(1), false);
  EXPECT_TRUE(ledger.banned(id_of(1)));
  EXPECT_EQ(ledger.banned_count(), 1u);
}

TEST(DurableLedger, MinObservationsGatesTheBan) {
  ReputationParams params;
  params.min_observations = 3;
  DurableReputationLedger ledger(params, make_memory_reputation_store());
  // Two straight rejections: trust 1/4, but only 2 observations — an early
  // accusation must not be a life sentence yet.
  ledger.record(id_of(1), false);
  ledger.record(id_of(1), false);
  EXPECT_LT(ledger.trust(id_of(1)), params.ban_threshold);
  EXPECT_FALSE(ledger.banned(id_of(1)));
  // The third observation crosses the gate.
  ledger.record(id_of(1), false);
  EXPECT_TRUE(ledger.banned(id_of(1)));
}

TEST(DurableLedger, BansSurviveReopen) {
  TempDir dir;
  ReputationParams params;
  params.min_observations = 1;
  {
    DurableReputationLedger ledger(params,
                                   make_file_reputation_store(dir.path));
    ledger.record(id_of(9), false);  // trust 1/3 < 0.5, banned (and synced)
    EXPECT_TRUE(ledger.banned(id_of(9)));
  }
  DurableReputationLedger reopened(params,
                                   make_file_reputation_store(dir.path));
  EXPECT_TRUE(reopened.banned(id_of(9)));
  EXPECT_EQ(reopened.observations(id_of(9)), 1u);
}

TEST(DurableLedger, RejectsDegeneratePriors) {
  ReputationParams params;
  params.prior_alpha = 0.0;
  EXPECT_THROW(
      DurableReputationLedger(params, make_memory_reputation_store()), Error);
  EXPECT_THROW(DurableReputationLedger({}, nullptr), Error);
}

}  // namespace
}  // namespace ugc::store
