// Hostile-grid simulation: fault injection mechanics (drop / duplicate /
// reorder / corrupt / stall / crash-rejoin), the supervisor's
// timeout-retry-reassign path, and the golden-seed reproducibility pin for
// a full hostile run over every registered scheme and attacker.

#include <gtest/gtest.h>

#include "core/cheating.h"
#include "grid/broker.h"
#include "grid/network.h"
#include "grid/participant_node.h"
#include "grid/reputation.h"
#include "grid/simulation.h"
#include "scheme/attacker.h"
#include "scheme/registry.h"

namespace ugc {
namespace {

class RecordingNode final : public GridNode {
 public:
  void on_message(GridNodeId from, const Message& message,
                  Transport&) override {
    received.push_back({from, message_type(message)});
  }
  void on_crash() override { ++crashes; }

  std::vector<std::pair<GridNodeId, MessageType>> received;
  int crashes = 0;
};

RingerReport ping(std::uint64_t task = 1) {
  return RingerReport{TaskId{task}, {}};
}

// ------------------------------------------------------------ link faults

TEST(FaultPlan, DropsMessagesAtTheConfiguredRate) {
  SimNetwork network;
  RecordingNode a, b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  FaultPlan plan;
  plan.seed = 42;
  plan.faults.drop = 0.5;
  network.set_fault_plan(plan);

  const int kSends = 400;
  for (int i = 0; i < kSends; ++i) {
    network.send(ida, idb, ping());
  }
  network.run();
  const std::uint64_t dropped = network.fault_stats().dropped;
  EXPECT_EQ(b.received.size() + dropped, static_cast<std::size_t>(kSends));
  EXPECT_NEAR(static_cast<double>(dropped) / kSends, 0.5, 0.1);
  // Drops are metered as sent (the bytes left the sender) but never arrive.
  EXPECT_EQ(network.stats().total_messages, static_cast<std::uint64_t>(kSends));
}

TEST(FaultPlan, DuplicatesDeliverTheFrameTwice) {
  SimNetwork network;
  RecordingNode a, b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  FaultPlan plan;
  plan.seed = 7;
  plan.faults.duplicate = 1.0;
  network.set_fault_plan(plan);

  network.send(ida, idb, ping());
  network.run();
  EXPECT_EQ(b.received.size(), 2u);
  EXPECT_EQ(network.fault_stats().duplicated, 1u);
  // The duplicate crossed the wire: both frames are metered.
  EXPECT_EQ(network.stats().total_messages, 2u);
}

TEST(FaultPlan, CorruptFramesAreDiscardedByTheIntegrityCheck) {
  SimNetwork network;
  RecordingNode a, b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  FaultPlan plan;
  plan.seed = 9;
  plan.faults.corrupt = 1.0;
  network.set_fault_plan(plan);

  for (int i = 0; i < 10; ++i) {
    network.send(ida, idb, ping());
  }
  network.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(network.fault_stats().corrupted, 10u);
  EXPECT_EQ(network.fault_stats().corrupt_discarded, 10u);
}

TEST(FaultPlan, DeliverCorruptFeedsDecodersHostileBytesWithoutCrashing) {
  SimNetwork network;
  RecordingNode a, b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  FaultPlan plan;
  plan.seed = 11;
  plan.faults.corrupt = 1.0;
  plan.deliver_corrupt = true;
  network.set_fault_plan(plan);

  const int kSends = 200;
  for (int i = 0; i < kSends; ++i) {
    network.send(ida, idb, ping(1 + static_cast<std::uint64_t>(i)));
  }
  network.run();  // must never throw or crash on flipped bits
  const FaultStats& stats = network.fault_stats();
  EXPECT_EQ(stats.corrupted, static_cast<std::uint64_t>(kSends));
  // Every frame either decoded (possibly to junk values) or was rejected.
  EXPECT_EQ(b.received.size() + stats.corrupt_undecodable,
            static_cast<std::size_t>(kSends));
}

TEST(FaultPlan, ReorderBreaksFifoDelivery) {
  SimNetwork network;
  RecordingNode a, b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  FaultPlan plan;
  plan.seed = 13;
  plan.faults.reorder = 1.0;
  network.set_fault_plan(plan);

  const int kSends = 50;
  for (int i = 0; i < kSends; ++i) {
    network.send(ida, idb, ping(1 + static_cast<std::uint64_t>(i)));
  }
  network.run();
  ASSERT_EQ(b.received.size(), static_cast<std::size_t>(kSends));
  EXPECT_GT(network.fault_stats().reordered, 0u);
}

TEST(FaultPlan, StalledFramesArriveOnlyAtQuiescence) {
  SimNetwork network;
  RecordingNode a, b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  FaultPlan plan;
  plan.seed = 17;
  plan.faults.stall = 1.0;
  network.set_fault_plan(plan);

  network.send(ida, idb, ping());
  EXPECT_EQ(network.pending(), 1u);
  EXPECT_FALSE(network.deliver_one());  // parked, not deliverable yet
  network.run();                        // released once everything is quiet
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(network.fault_stats().stalled, 1u);
}

TEST(FaultPlan, PerLinkOverridesWinOverDefaults) {
  SimNetwork network;
  RecordingNode a, b, c;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  const GridNodeId idc = network.add_node(c);
  FaultPlan plan;
  plan.seed = 19;
  plan.faults.drop = 1.0;  // default: everything vanishes
  plan.link_overrides[{ida.value, idc.value}] = LinkFaults{};  // clean link
  network.set_fault_plan(plan);

  network.send(ida, idb, ping());
  network.send(ida, idc, ping());
  network.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(FaultPlan, CrashDropsInboundAndRejoinRestores) {
  SimNetwork network;
  RecordingNode a, b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  FaultPlan plan;
  plan.crashes.push_back(CrashSpec{idb.value, /*after_messages=*/2,
                                   /*offline_for=*/3});
  network.set_fault_plan(plan);

  for (int i = 0; i < 8; ++i) {
    network.send(ida, idb, ping());
  }
  network.run();
  // Messages 1-2 delivered, crash fires (state lost), 3 ticks of traffic
  // vanish, then the node is back for the rest.
  EXPECT_EQ(b.crashes, 1);
  EXPECT_EQ(network.fault_stats().crashes, 1u);
  EXPECT_EQ(network.fault_stats().rejoins, 1u);
  EXPECT_EQ(network.fault_stats().dropped_offline, 3u);
  EXPECT_EQ(b.received.size(), 5u);
}

TEST(FaultPlan, PermanentCrashNeverRejoins) {
  SimNetwork network;
  RecordingNode a, b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  FaultPlan plan;
  plan.crashes.push_back(CrashSpec{idb.value, 1, 0});
  network.set_fault_plan(plan);

  for (int i = 0; i < 5; ++i) {
    network.send(ida, idb, ping());
  }
  network.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(network.offline(idb));
  EXPECT_EQ(network.fault_stats().rejoins, 0u);
}

TEST(FaultPlan, CrashSpecsFireInThresholdOrderRegardlessOfListing) {
  SimNetwork network;
  RecordingNode a, b;
  const GridNodeId ida = network.add_node(a);
  const GridNodeId idb = network.add_node(b);
  FaultPlan plan;
  // Listed out of order: the permanent crash at message 3 must still win.
  plan.crashes.push_back(CrashSpec{idb.value, 10, 5});
  plan.crashes.push_back(CrashSpec{idb.value, 3, 0});
  network.set_fault_plan(plan);

  for (int i = 0; i < 12; ++i) {
    network.send(ida, idb, ping());
  }
  network.run();
  EXPECT_EQ(b.received.size(), 3u);
  EXPECT_TRUE(network.offline(idb));
  EXPECT_EQ(network.fault_stats().crashes, 1u);  // the later spec never fires
  EXPECT_EQ(network.fault_stats().rejoins, 0u);
}

TEST(FaultPlan, SameSeedSameFaults) {
  const auto run_once = [] {
    SimNetwork network;
    RecordingNode a, b;
    const GridNodeId ida = network.add_node(a);
    const GridNodeId idb = network.add_node(b);
    FaultPlan plan;
    plan.seed = 23;
    plan.faults = LinkFaults{0.2, 0.2, 0.3, 0.2, 0.1};
    network.set_fault_plan(plan);
    for (int i = 0; i < 100; ++i) {
      network.send(ida, idb, ping(1 + static_cast<std::uint64_t>(i)));
    }
    network.run();
    return std::make_pair(network.fault_stats(), b.received.size());
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// ---------------------------------------------------- supervisor retries

GridConfig hostile_base(const std::string& scheme_name) {
  GridConfig config;
  config.domain_begin = 0;
  config.domain_end = 1 << 9;
  config.workload = "test";
  config.participant_count = 4;
  config.seed = 77;
  config.scheme.name = scheme_name;
  config.scheme.cbs.sample_count = 12;
  config.scheme.nicbs.sample_count = 12;
  config.scheme.naive.sample_count = 12;
  config.scheme.ringer.ringer_count = 6;
  return config;
}

// Satellite golden: a participant that crashes mid-exchange is re-assigned
// exactly once, the run completes, and the metrics/reputation inputs pin to
// golden values.
TEST(HostileGrid, CrashedParticipantReassignedExactlyOnceGolden) {
  GridConfig config = hostile_base("cbs");
  // Participant 1 receives its assignment (message 1) and dies permanently
  // before it can answer the sample challenge.
  config.crashes.push_back(ParticipantCrash{1, 1, 0});

  const GridRunResult result = run_grid_simulation(config);

  // Golden expectations: one group re-assigned once, everything accepted,
  // nothing aborted, nobody falsely accused.
  EXPECT_EQ(result.tasks_reassigned, 1u);
  EXPECT_EQ(result.tasks_aborted, 0u);
  EXPECT_EQ(result.outcomes.size(), 4u);
  EXPECT_EQ(result.honest_tasks_accepted, 4u);
  EXPECT_EQ(result.honest_tasks_rejected, 0u);
  EXPECT_EQ(result.faults.crashes, 1u);
  EXPECT_GT(result.faults.dropped_offline, 0u);

  // The re-assigned task went to the next slot (participant 2), and the
  // crashed participant holds no final task.
  std::size_t tasks_of[4] = {0, 0, 0, 0};
  for (const ParticipantOutcome& outcome : result.outcomes) {
    ASSERT_LT(outcome.participant_index, 4u);
    ++tasks_of[outcome.participant_index];
    EXPECT_EQ(outcome.status, VerdictStatus::kAccepted);
  }
  EXPECT_EQ(tasks_of[0], 1u);
  EXPECT_EQ(tasks_of[1], 0u);  // the crashed node
  EXPECT_EQ(tasks_of[2], 2u);  // its work moved here
  EXPECT_EQ(tasks_of[3], 1u);

  // Reputation golden: aborts don't move reputation, so the ledger sees
  // exactly the four accepted verdicts.
  std::size_t accepted = 0;
  for (const ParticipantOutcome& outcome : result.outcomes) {
    if (outcome.status != VerdictStatus::kAborted) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 4u);

  // Byte-identical across invocations (the golden seed contract).
  const GridRunResult again = run_grid_simulation(config);
  EXPECT_EQ(result.network.total_bytes, again.network.total_bytes);
  EXPECT_EQ(result.network.total_messages, again.network.total_messages);
  EXPECT_EQ(result.faults, again.faults);
  EXPECT_EQ(result.messages_delivered, again.messages_delivered);
}

TEST(HostileGrid, PermanentlyDeadGridAbortsCleanlyAfterRetryBudget) {
  GridConfig config = hostile_base("ni-cbs");
  config.participant_count = 2;
  config.max_task_retries = 2;
  // Both participants are dead from the start: no retry can help.
  config.crashes.push_back(ParticipantCrash{0, 0, 0});
  config.crashes.push_back(ParticipantCrash{1, 0, 0});

  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.outcomes.size(), 2u);
  EXPECT_EQ(result.tasks_aborted, 2u);
  EXPECT_EQ(result.honest_tasks_rejected, 0u);  // aborts are not accusations
  EXPECT_EQ(result.tasks_reassigned, 4u);       // 2 tasks x 2 retries
  for (const ParticipantOutcome& outcome : result.outcomes) {
    EXPECT_EQ(outcome.status, VerdictStatus::kAborted);
  }
}

TEST(HostileGrid, RejoinedParticipantFinishesTheRetriedTask) {
  GridConfig config = hostile_base("cbs");
  config.participant_count = 1;  // nowhere else to go: retry hits the same node
  // Dies after the assignment, rejoins shortly after.
  config.crashes.push_back(ParticipantCrash{0, 1, 4});

  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.honest_tasks_accepted, 1u);
  EXPECT_GE(result.tasks_reassigned, 1u);
  EXPECT_EQ(result.faults.rejoins, 1u);
}

TEST(HostileGrid, RetryWorksThroughTheBroker) {
  GridConfig config = hostile_base("cbs");
  config.use_broker = true;
  config.crashes.push_back(ParticipantCrash{1, 1, 0});

  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.outcomes.size(), 4u);
  EXPECT_EQ(result.honest_tasks_accepted + result.tasks_aborted, 4u);
  EXPECT_EQ(result.honest_tasks_rejected, 0u);
  // No final task may be attributed to the dead worker.
  for (const ParticipantOutcome& outcome : result.outcomes) {
    if (outcome.status == VerdictStatus::kAccepted) {
      EXPECT_NE(outcome.participant_index, 1u);
    }
  }
}

TEST(HostileGrid, DuplicatedFramesAreIdempotentEverywhere) {
  // Every frame duplicated, including assignments: participants must not
  // restart sessions, the broker must not re-route, and nobody redoes work.
  for (const bool broker : {false, true}) {
    for (const char* scheme : {"cbs", "ni-cbs"}) {
      GridConfig config = hostile_base(scheme);
      config.use_broker = broker;
      config.faults.duplicate = 1.0;
      const GridRunResult result = run_grid_simulation(config);
      SCOPED_TRACE(concat(scheme, " broker=", broker));
      EXPECT_EQ(result.honest_tasks_accepted, 4u);
      EXPECT_EQ(result.honest_tasks_rejected, 0u);
      EXPECT_EQ(result.tasks_reassigned, 0u);
      // Exactly one genuine evaluation per input — duplicates triggered no
      // recomputation anywhere.
      EXPECT_EQ(result.participant_evaluations, std::uint64_t{1} << 9);
    }
  }
}

TEST(HostileGrid, FaultFreeRunsAreBitIdenticalToThePreFaultPath) {
  // A config with no faults must not even install the fault machinery:
  // byte-for-byte the same traffic as before this subsystem existed.
  GridConfig config = hostile_base("cbs");
  const GridRunResult result = run_grid_simulation(config);
  EXPECT_EQ(result.faults, FaultStats{});
  EXPECT_EQ(result.tasks_reassigned, 0u);
  EXPECT_EQ(result.honest_tasks_accepted, 4u);
}

// ------------------------------------------------------- the golden seed

// Acceptance pin: one golden seed drives a full hostile-grid run — drops,
// duplication, reordering, corruption, stalls, churn, a semi-honest
// cheater, an adaptive sleeper, a colluding cheater, a malicious screener —
// across every registered scheme plus its equivocating variant, and two
// invocations produce byte-identical verdicts and metrics.
TEST(HostileGolden, GoldenSeedReproducesFullHostileRunByteIdentically) {
  SchemeRegistry schemes;
  for (const std::string& name : SchemeRegistry::global().names()) {
    schemes.register_scheme(SchemeRegistry::global().share(name));
  }
  register_equivocating_schemes(schemes);

  const auto run_once = [&schemes](const std::string& scheme_name) {
    GridConfig config = hostile_base(scheme_name);
    config.participant_count = 6;
    config.schemes = &schemes;
    config.seed = 0x601dDEED;  // the golden seed
    config.faults = LinkFaults{/*drop=*/0.03, /*duplicate=*/0.05,
                               /*reorder=*/0.15, /*corrupt=*/0.03,
                               /*stall=*/0.05};
    config.crashes.push_back(ParticipantCrash{2, 2, 40});
    config.cheaters.push_back(CheaterSpec{1, 0.5, 0.0, 0});
    config.policy_cheaters.push_back(PolicyCheaterSpec{
        3, make_adaptive_cheater({2, 0.4, 0.0, 0x5157})});
    config.policy_cheaters.push_back(PolicyCheaterSpec{
        4, make_colluding_cheater({1, 2, 3}, 0xc011)});
    config.malicious.push_back(MaliciousSpec{5, ScreenerConduct::kFabricate});
    config.max_task_retries = 3;
    return run_grid_simulation(config);
  };

  for (const std::string& name : schemes.names()) {
    if (name == "double-check" || name == "double-check+equivocate") {
      continue;  // 6 participants don't split into replica pairs cleanly here
    }
    SCOPED_TRACE(name);
    const GridRunResult first = run_once(name);
    const GridRunResult second = run_once(name);

    ASSERT_EQ(first.outcomes.size(), second.outcomes.size());
    for (std::size_t i = 0; i < first.outcomes.size(); ++i) {
      EXPECT_EQ(first.outcomes[i].task, second.outcomes[i].task);
      EXPECT_EQ(first.outcomes[i].participant_index,
                second.outcomes[i].participant_index);
      EXPECT_EQ(first.outcomes[i].status, second.outcomes[i].status);
    }
    EXPECT_EQ(first.cheater_tasks_rejected, second.cheater_tasks_rejected);
    EXPECT_EQ(first.cheater_tasks_accepted, second.cheater_tasks_accepted);
    EXPECT_EQ(first.honest_tasks_accepted, second.honest_tasks_accepted);
    EXPECT_EQ(first.honest_tasks_rejected, second.honest_tasks_rejected);
    EXPECT_EQ(first.tasks_aborted, second.tasks_aborted);
    EXPECT_EQ(first.tasks_reassigned, second.tasks_reassigned);
    EXPECT_EQ(first.faults, second.faults);
    EXPECT_EQ(first.hits, second.hits);
    EXPECT_EQ(first.participant_evaluations, second.participant_evaluations);
    EXPECT_EQ(first.supervisor_evaluations, second.supervisor_evaluations);
    EXPECT_EQ(first.results_verified, second.results_verified);
    EXPECT_EQ(first.network.total_bytes, second.network.total_bytes);
    EXPECT_EQ(first.network.total_messages, second.network.total_messages);
    EXPECT_EQ(first.messages_delivered, second.messages_delivered);

    // And whatever happened, no honest participant was accused. (Under an
    // equivocate-wrapped scheme every participant is hostile by
    // construction, so the counter legitimately fires there.)
    if (name.find(kEquivocateSuffix) == std::string::npos) {
      EXPECT_EQ(first.honest_tasks_rejected, 0u);
    }
  }
}

// 6 participants with replicas=2 → 3 groups: double-check gets its own pin.
TEST(HostileGolden, GoldenSeedCoversDoubleCheckToo) {
  const auto run_once = [] {
    GridConfig config = hostile_base("double-check");
    config.participant_count = 6;
    config.seed = 0x601dDEED;
    config.faults = LinkFaults{0.02, 0.05, 0.1, 0.02, 0.05};
    config.crashes.push_back(ParticipantCrash{2, 2, 40});
    config.cheaters.push_back(CheaterSpec{1, 0.5, 0.0, 0});
    config.max_task_retries = 3;
    return run_grid_simulation(config);
  };
  const GridRunResult first = run_once();
  const GridRunResult second = run_once();
  EXPECT_EQ(first.network.total_bytes, second.network.total_bytes);
  EXPECT_EQ(first.faults, second.faults);
  EXPECT_EQ(first.tasks_aborted, second.tasks_aborted);
  EXPECT_EQ(first.honest_tasks_rejected, 0u);
  EXPECT_EQ(second.honest_tasks_rejected, 0u);
}

// Crash specs name original participants; once the roster shrinks they must
// follow their target (or vanish with it), never land on whoever fills the
// slot — and never throw the tournament over a now-out-of-range index.
TEST(HostileGrid, TournamentRemapsCrashSpecsToTheActiveRoster) {
  TournamentConfig config;
  config.base.domain_end = 1 << 9;
  config.base.participant_count = 4;
  config.base.seed = 9;
  config.base.scheme.kind = SchemeKind::kCbs;
  config.base.scheme.cbs.sample_count = 16;
  config.base.cheaters.push_back(CheaterSpec{0, 0.3, 0.0, 0});  // banned fast
  config.base.crashes.push_back(ParticipantCrash{3, 2, 30});    // last index
  config.rounds = 6;

  const TournamentResult result = run_reputation_tournament(config);
  EXPECT_TRUE(result.final_banned[0]);
  for (const TournamentRound& round : result.rounds) {
    EXPECT_EQ(round.honest_tasks_rejected, 0u);
  }
}

// AdaptiveCheater's sleeper state must not leak between the two golden
// invocations above — a fresh policy object per run keeps them identical.
// This pins the sharing behavior the tournament relies on instead.
TEST(HostileGrid, AdaptivePolicySharedAcrossRunsCarriesState) {
  const auto adaptive = make_adaptive_cheater({1, 0.3, 0.0, 99});
  EXPECT_FALSE(adaptive->active());
  adaptive->observe_verdict(true);
  EXPECT_TRUE(adaptive->active());

  GridConfig config = hostile_base("cbs");
  config.participant_count = 1;
  config.policy_cheaters.push_back(PolicyCheaterSpec{0, adaptive});
  const GridRunResult result = run_grid_simulation(config);
  // Already activated: it cheats with r=0.3 and is caught.
  EXPECT_EQ(result.cheater_tasks_rejected, 1u);
}

}  // namespace
}  // namespace ugc
