#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cheating.h"
#include "core/task.h"
#include "scheme/exchange.h"
#include "scheme/registry.h"
#include "scheme/session.h"
#include "prop.h"
#include "test_util.h"

namespace ugc {
namespace {

using proptest::Failure;
using proptest::Property;
using proptest::gen_range;
using proptest::prop_check;
using testing::make_test_task;

SchemeConfig pipelined_config(std::uint64_t epochs,
                              std::size_t samples_per_epoch = 4,
                              std::size_t max_inflight = 1,
                              std::size_t window_epochs = 4) {
  SchemeConfig config;
  config.name = "pipelined-cbs";
  config.pipeline.epochs = epochs;
  config.pipeline.samples_per_epoch = samples_per_epoch;
  config.pipeline.max_inflight = max_inflight;
  config.pipeline.window_epochs = window_epochs;
  return config;
}

const VerificationScheme& pipelined_scheme() {
  return SchemeRegistry::global().by_name("pipelined-cbs");
}

// ------------------------------------------------------------ honest runs

TEST(PipelinedScheme, HonestParticipantAcceptedAcrossEpochs) {
  const Task task = make_test_task(256);
  const SchemeConfig config = pipelined_config(8);
  const SchemeExchangeResult result =
      run_scheme_exchange(pipelined_scheme(), task, config, nullptr);
  ASSERT_TRUE(result.all_accepted()) << result.verdicts.front().detail;
  EXPECT_NE(result.verdicts.front().detail.find("pipelined"),
            std::string::npos);
  // Every input genuinely evaluated, exactly once across the epoch sweep.
  EXPECT_EQ(result.participant_evaluations, 256u);
  // samples_per_epoch checks per epoch, every epoch sampled.
  EXPECT_EQ(result.results_verified, 8u * 4u);
}

TEST(PipelinedScheme, HonestAcceptedWithDeepInflightWindow) {
  const Task task = make_test_task(300);
  // 7 epochs over 300 inputs: uneven split, several epochs in flight.
  const SchemeConfig config = pipelined_config(7, 3, 3, 2);
  const SchemeExchangeResult result =
      run_scheme_exchange(pipelined_scheme(), task, config, nullptr);
  ASSERT_TRUE(result.all_accepted()) << result.verdicts.front().detail;
  EXPECT_EQ(result.participant_evaluations, 300u);
  EXPECT_EQ(result.results_verified, 7u * 3u);
}

TEST(PipelinedScheme, EpochCountIsClampedToDomainSize) {
  // More epochs than inputs must degrade gracefully, not throw on an
  // empty subdomain.
  const Task task = make_test_task(3);
  const SchemeConfig config = pipelined_config(64);
  const SchemeExchangeResult result =
      run_scheme_exchange(pipelined_scheme(), task, config, nullptr);
  ASSERT_TRUE(result.all_accepted()) << result.verdicts.front().detail;
  EXPECT_EQ(result.participant_evaluations, 3u);
}

TEST(PipelinedScheme, ScreenerHitsStreamAcrossEpochs) {
  const Task task =
      make_test_task(128, 1, 16, std::make_shared<testing::ModScreener>(32));
  const SchemeConfig config = pipelined_config(4);
  const SchemeExchangeResult result =
      run_scheme_exchange(pipelined_scheme(), task, config, nullptr);
  ASSERT_TRUE(result.all_accepted());
  // Domain [1000, 1128) holds 4 multiples of 32: 1024, 1056, 1088, 1120 —
  // one per epoch, so hits must survive engine retirement.
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(result.reports.front().hits.size(), 4u);
}

// -------------------------------------------------- the mid-task defector

// The tentpole scenario: a worker honest through epoch 4 that starts
// guessing at the epoch-5 boundary is accused *in* epoch 5 — not after the
// whole task — and the wasted (already-computed) work is the honest prefix,
// never the full domain.
TEST(PipelinedScheme, DefectorIsCaughtAtItsDefectionEpoch) {
  const Task task = make_test_task(256);  // domain [1000, 1256), 32/epoch
  const SchemeConfig config = pipelined_config(8);
  const auto cheater =
      make_defector_cheater({/*defect_from=*/1160, /*guess_accuracy=*/0.0,
                             /*seed=*/9});
  const SchemeExchangeResult result =
      run_scheme_exchange(pipelined_scheme(), task, config, cheater);

  ASSERT_EQ(result.verdicts.size(), 1u);
  const Verdict& verdict = result.verdicts.front();
  EXPECT_FALSE(verdict.accepted());
  EXPECT_EQ(verdict.status, VerdictStatus::kWrongResult);
  // Accused inside the defection epoch (inputs 1160..1191 = leaves 160..191).
  ASSERT_TRUE(verdict.failed_sample.has_value());
  EXPECT_GE(verdict.failed_sample->value, 160u);
  EXPECT_LT(verdict.failed_sample->value, 192u);
  EXPECT_NE(verdict.detail.find("epoch 5/8"), std::string::npos)
      << verdict.detail;
  // Wasted-work bound: only the honest prefix was ever computed; epochs 6
  // and 7 never ran (one-shot CBS would have swept all 256 first).
  EXPECT_EQ(result.participant_evaluations, 160u);
}

TEST(PropPipelined, prop_defector_caught_at_its_defection_epoch) {
  struct Case {
    std::uint64_t epochs;
    std::uint64_t defect_epoch;
    std::uint64_t per_epoch;
    std::size_t max_inflight;
    std::uint64_t seed;
  };
  Property<Case> prop;
  prop.name = "defector accused in its defection epoch, honest runs clean";
  prop.gen = [](Rng& rng) {
    Case c;
    c.epochs = gen_range(rng, 2, 8);
    c.defect_epoch = gen_range(rng, 1, c.epochs - 1);
    c.per_epoch = gen_range(rng, 8, 40);
    c.max_inflight = static_cast<std::size_t>(gen_range(rng, 1, 3));
    c.seed = rng.next();
    return c;
  };
  prop.show = [](const Case& c) {
    return concat("epochs=", c.epochs, " defect_epoch=", c.defect_epoch,
                  " per_epoch=", c.per_epoch, " inflight=", c.max_inflight,
                  " seed=", c.seed);
  };
  prop_check(prop, [](const Case& c) -> Failure {
    const std::uint64_t n = c.epochs * c.per_epoch;
    const Task task = make_test_task(n);
    const SchemeConfig config =
        pipelined_config(c.epochs, 4, c.max_inflight, 2);

    // Zero honest accusations, at any epoch/window geometry.
    const SchemeExchangeResult honest = run_scheme_exchange(
        pipelined_scheme(), task, config, nullptr, nullptr, c.seed);
    if (!honest.all_accepted()) {
      return concat("honest worker accused: ",
                    honest.verdicts.front().detail);
    }

    // The defector flips at an exact epoch boundary; an equal split places
    // epoch k at absolute inputs [begin + k*per_epoch, ...).
    const std::uint64_t defect_leaf = c.defect_epoch * c.per_epoch;
    const auto cheater = make_defector_cheater(
        {task.domain.begin() + defect_leaf, 0.0, c.seed});
    const SchemeExchangeResult caught = run_scheme_exchange(
        pipelined_scheme(), task, config, cheater, nullptr, c.seed);
    const Verdict& verdict = caught.verdicts.front();
    if (verdict.accepted()) {
      return concat("defector accepted: ", verdict.detail);
    }
    const std::string tag = concat("epoch ", c.defect_epoch, "/", c.epochs);
    if (verdict.detail.find(tag) == std::string::npos) {
      return concat("expected accusation in '", tag, "', got: ",
                    verdict.detail);
    }
    if (!verdict.failed_sample.has_value() ||
        verdict.failed_sample->value < defect_leaf ||
        verdict.failed_sample->value >= defect_leaf + c.per_epoch) {
      return concat("failed_sample outside the defection epoch, detail: ",
                    verdict.detail);
    }
    // Wasted-work bound: only the honest prefix is ever genuinely
    // computed, regardless of how many epochs were speculatively in
    // flight (the speculative ones are all guessed, hence free).
    if (caught.participant_evaluations != defect_leaf) {
      return concat("expected ", defect_leaf, " honest evaluations, got ",
                    caught.participant_evaluations);
    }
    return {};
  });
}

// ------------------------------------------------------------ crash resume

// Drives one relay half-step: deliver everything the participant has
// queued, then everything the supervisor queued back. Returns false once
// neither side had traffic (the exchange is idle).
bool pump_once(ParticipantSession& participant, SupervisorSession& supervisor,
               TaskId task) {
  bool moved = false;
  while (auto message = participant.next_message()) {
    supervisor.on_message(task, *message);
    moved = true;
  }
  while (auto out = supervisor.next_message()) {
    participant.on_message(out->message);
    moved = true;
  }
  return moved;
}

TEST(PipelinedScheme, ReplacementResumesAtTheVerifiedFrontier) {
  const Task task = make_test_task(128, 7);  // 4 epochs of 32
  const SchemeConfig config = pipelined_config(4, 2);
  const auto verifier = std::make_shared<RecomputeVerifier>(task.f);
  const auto supervisor = pipelined_scheme().open_supervisor(
      SupervisorContext{{task}, config, verifier, 42});

  // First attempt: run until epochs 0 and 1 are verified, then "crash"
  // (drop the session; its undelivered traffic is lost).
  {
    const auto first = pipelined_scheme().open_participant(
        ParticipantContext{task, config, {}, nullptr});
    int guard = 0;
    while (supervisor->resume_epoch(task.id) != std::uint64_t{2}) {
      ASSERT_TRUE(pump_once(*first, *supervisor, task.id)) << "stalled";
      ASSERT_LT(++guard, 100);
    }
    // One extra half-step so epoch 2's commitment reaches the supervisor
    // before the crash — the replacement re-announces that same epoch.
    pump_once(*first, *supervisor, task.id);
  }

  // Replacement opens at the supervisor's frontier and recommits epoch 2
  // (same deterministic root): the supervisor must re-challenge with fresh
  // samples and carry the run to acceptance.
  ParticipantContext resumed{task, config, {}, nullptr};
  resumed.resume_epoch = *supervisor->resume_epoch(task.id);
  const auto second = pipelined_scheme().open_participant(std::move(resumed));
  std::optional<Verdict> verdict;
  for (int guard = 0; !verdict && guard < 100; ++guard) {
    pump_once(*second, *supervisor, task.id);
    verdict = supervisor->next_verdict();
  }
  ASSERT_TRUE(verdict.has_value()) << "exchange stalled after resume";
  EXPECT_TRUE(verdict->accepted()) << verdict->detail;
  // The replacement only computed the unverified suffix — epochs 2 and 3.
  EXPECT_EQ(second->honest_evaluations(), 64u);
  // Settled tasks stop advertising a resume point.
  EXPECT_EQ(supervisor->resume_epoch(task.id), std::nullopt);
}

TEST(PipelinedScheme, DishonestReplacementTripsTheRootConflictCheck) {
  const Task task = make_test_task(128, 7);
  const SchemeConfig config = pipelined_config(4, 2);
  const auto verifier = std::make_shared<RecomputeVerifier>(task.f);
  const auto supervisor = pipelined_scheme().open_supervisor(
      SupervisorContext{{task}, config, verifier, 42});
  {
    const auto first = pipelined_scheme().open_participant(
        ParticipantContext{task, config, {}, nullptr});
    int guard = 0;
    while (supervisor->resume_epoch(task.id) != std::uint64_t{2}) {
      ASSERT_TRUE(pump_once(*first, *supervisor, task.id)) << "stalled";
      ASSERT_LT(++guard, 100);
    }
    pump_once(*first, *supervisor, task.id);  // epoch 2's commit lands
  }

  // A cheating replacement cannot honestly reproduce epoch 2's root; two
  // different roots for one epoch is conclusive on its own.
  ParticipantContext resumed{
      task, config, {},
      make_semi_honest_cheater({/*honesty_ratio=*/0.0, 0.0, /*seed=*/5})};
  resumed.resume_epoch = *supervisor->resume_epoch(task.id);
  const auto second = pipelined_scheme().open_participant(std::move(resumed));
  std::optional<Verdict> verdict;
  for (int guard = 0; !verdict && guard < 100; ++guard) {
    pump_once(*second, *supervisor, task.id);
    verdict = supervisor->next_verdict();
  }
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->status, VerdictStatus::kRootMismatch);
  EXPECT_NE(verdict->detail.find("conflicting commitment roots"),
            std::string::npos)
      << verdict->detail;
}

}  // namespace
}  // namespace ugc
