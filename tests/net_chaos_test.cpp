// Chaos-layer coverage: the deterministic fault model (grid/chaos.h) on
// its own, the LatencyTransport that replays it on a virtual clock, and
// the real TCP stack degrading gracefully under the same plans — accept
// resets, delayed and dropped frames, read stalls, forced short writes,
// load shedding, slow-peer eviction, and the SIGPIPE-free write path.

#include <gtest/gtest.h>

#include <csignal>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/cheating.h"
#include "grid/chaos.h"
#include "grid/participant_node.h"
#include "grid/supervisor_node.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/tcp_transport.h"
#include "wire/codec.h"

namespace ugc {
namespace {

net::TcpTransportOptions fast_options() {
  net::TcpTransportOptions options;
  options.quiescence_timeout_ms = 300;
  if (const char* engine = std::getenv("UGC_NET_ENGINE")) {
    options.engine = net::parse_engine_backend(engine);
  }
  return options;
}

ChaosPlan busy_plan() {
  ChaosPlan plan;
  plan.seed = 99;
  plan.base_rtt_ms = 8.0;
  plan.jitter_ms = 4.0;
  plan.bandwidth_bytes_per_s = 2e6;
  plan.partial_write_cap = 128;
  plan.stall_rate = 0.1;
  plan.stall_ms = 20;
  plan.disconnect_rate = 0.05;
  plan.accept_reset_rate = 0.2;
  return plan;
}

TEST(ChaosPlan, NamedLevelsAndDefaults) {
  EXPECT_FALSE(ChaosPlan{}.any());
  EXPECT_FALSE(make_chaos_plan("off", 7).any());
  const ChaosPlan light = make_chaos_plan("light", 7);
  const ChaosPlan heavy = make_chaos_plan("heavy", 7);
  EXPECT_TRUE(light.any());
  EXPECT_TRUE(heavy.any());
  EXPECT_GT(heavy.base_rtt_ms, light.base_rtt_ms);
  EXPECT_GT(heavy.stall_rate, light.stall_rate);
  EXPECT_EQ(light.seed, 7u);
  EXPECT_THROW(make_chaos_plan("catastrophic", 7), Error);
}

TEST(ChaosLink, SameSeedAndLinkReplayIdentically) {
  const ChaosPlan plan = busy_plan();
  ChaosLink a(plan, 3);
  ChaosLink b(plan, 3);
  ChaosLink other(plan, 4);
  bool any_difference_from_other = false;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t now = static_cast<std::uint64_t>(i) * 5;
    const std::uint64_t ra = a.release_ms(1000, now);
    const std::uint64_t rb = b.release_ms(1000, now);
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(a.sample_disconnect(), b.sample_disconnect());
    EXPECT_EQ(a.sample_stall_ms(), b.sample_stall_ms());
    EXPECT_EQ(a.sample_accept_reset(), b.sample_accept_reset());
    if (other.release_ms(1000, now) != ra) {
      any_difference_from_other = true;
    }
  }
  EXPECT_TRUE(any_difference_from_other)
      << "distinct links must draw from distinct streams";
}

TEST(ChaosLink, ReleaseTimesAreMonotoneAndNeverEarly) {
  ChaosLink link(busy_plan(), 12);
  std::uint64_t previous = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t now = static_cast<std::uint64_t>(i % 7) * 11;
    const std::uint64_t release = link.release_ms(64 + 512 * (i % 5), now);
    EXPECT_GE(release, now) << "a frame cannot arrive before it was sent";
    EXPECT_GE(release, previous) << "chaos must not reorder a TCP stream";
    previous = release;
  }
}

TEST(ChaosLink, ClampWriteHonorsTheCap) {
  ChaosPlan plan;
  plan.partial_write_cap = 100;
  ChaosLink capped(plan, 1);
  EXPECT_EQ(capped.clamp_write(5000), 100u);
  EXPECT_EQ(capped.clamp_write(40), 40u);
  ChaosLink uncapped(ChaosPlan{}, 1);
  EXPECT_EQ(uncapped.clamp_write(5000), 5000u);
}

TEST(AdaptiveTimeout, TracksGapsWithinTheClamp) {
  QuiescencePolicy policy;
  policy.adaptive = true;
  policy.floor_ms = 50;
  policy.ceiling_ms = 400;
  AdaptiveTimeout timeout(policy);
  // Until enough samples accumulate the fallback rules — but already
  // clamped, so a loopback-tuned default can't overshoot the ceiling.
  EXPECT_EQ(timeout.timeout_ms(300), 300u);
  EXPECT_EQ(timeout.timeout_ms(1000), policy.ceiling_ms);
  for (int i = 0; i < 8; ++i) {
    timeout.record_gap(40);
  }
  const std::uint64_t adapted = timeout.timeout_ms(300);
  EXPECT_GE(adapted, policy.floor_ms);
  EXPECT_LE(adapted, policy.ceiling_ms);
  EXPECT_LT(adapted, 300u) << "steady 40ms gaps must beat the 300ms fallback";
  // Huge gaps saturate at the ceiling, never beyond.
  for (int i = 0; i < 8; ++i) {
    timeout.record_gap(10000);
  }
  EXPECT_EQ(timeout.timeout_ms(1000), policy.ceiling_ms);

  // Non-adaptive: the fallback rules regardless of recorded gaps (but is
  // still clamped — see the boundary test below).
  AdaptiveTimeout fixed;
  for (int i = 0; i < 8; ++i) {
    fixed.record_gap(40);
  }
  EXPECT_EQ(fixed.timeout_ms(777), 777u);
}

TEST(AdaptiveTimeout, FallbackIsClampedOnEveryPath) {
  QuiescencePolicy policy;  // non-adaptive
  policy.floor_ms = 200;
  policy.ceiling_ms = 5000;
  const AdaptiveTimeout fixed(policy);
  // Below the floor: a loopback-tuned fallback cannot fire before a slow
  // link's first frames land.
  EXPECT_EQ(fixed.timeout_ms(50), policy.floor_ms);
  // Above the ceiling: the policy's upper bound binds the fallback too.
  EXPECT_EQ(fixed.timeout_ms(60000), policy.ceiling_ms);
  // In range: passed through unchanged.
  EXPECT_EQ(fixed.timeout_ms(1234), 1234u);

  // Adaptive warm-up (fewer than 4 samples) clamps identically.
  policy.adaptive = true;
  AdaptiveTimeout warming(policy);
  warming.record_gap(40);
  EXPECT_EQ(warming.timeout_ms(50), policy.floor_ms);
  EXPECT_EQ(warming.timeout_ms(60000), policy.ceiling_ms);
}

TEST(AdaptiveTimeout, DegenerateFloorEqualsCeiling) {
  QuiescencePolicy policy;
  policy.floor_ms = 750;
  policy.ceiling_ms = 750;
  const AdaptiveTimeout fixed(policy);
  // floor == ceiling pins the timeout no matter the fallback.
  EXPECT_EQ(fixed.timeout_ms(1), 750u);
  EXPECT_EQ(fixed.timeout_ms(750), 750u);
  EXPECT_EQ(fixed.timeout_ms(100000), 750u);

  QuiescencePolicy adaptive = policy;
  adaptive.adaptive = true;
  AdaptiveTimeout pinned(adaptive);
  for (int i = 0; i < 8; ++i) {
    pinned.record_gap(10);  // estimate far below the floor
  }
  EXPECT_EQ(pinned.timeout_ms(1), 750u);
}

// Counts messages; replies to nothing — traffic into it just disappears
// from the protocol's point of view.
struct CountingSink final : GridNode {
  std::size_t received = 0;
  void on_message(GridNodeId, const Message&, Transport&) override {
    ++received;
  }
};

TEST(LatencyTransport, ReplaysTheSamePlanIdentically) {
  const auto run_once = [](std::uint64_t seed) {
    ChaosPlan plan = busy_plan();
    plan.seed = seed;
    plan.accept_reset_rate = 0;  // no accept phase in the sim transport
    LatencyTransport::Options options;
    options.plan = plan;
    options.quiescence_timeout_ms = 500;
    LatencyTransport net(options);
    CountingSink sink;
    const GridNodeId to = net.add_node(sink);
    CountingSink sender;
    const GridNodeId from = net.add_node(sender);
    for (int i = 0; i < 50; ++i) {
      net.send(from, to, Hello{kGridProtocol, "chaotic"});
    }
    const std::size_t delivered = net.run();
    return std::tuple{delivered, net.now_ms(), net.frames_dropped(),
                      sink.received};
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(std::get<1>(run_once(5)), std::get<1>(run_once(6)))
      << "different seeds should trace different virtual clocks";
  // Frames land despite the chaos, minus exactly the sampled disconnects.
  const auto [delivered, now, dropped, received] = run_once(5);
  EXPECT_EQ(delivered, received);
  EXPECT_EQ(delivered + dropped, 50u);
  EXPECT_GT(now, 0u);
}

TEST(LatencyTransport, HonestGridSettlesWithoutAccusationsUnderLatency) {
  // Latency well past the fixed timeout: the adaptive policy must stretch
  // the quiescence window instead of letting retries exhaust into limbo,
  // and no amount of slowness may convert into a rejection.
  ChaosPlan plan;
  plan.seed = 21;
  plan.base_rtt_ms = 120.0;
  plan.jitter_ms = 60.0;
  plan.bandwidth_bytes_per_s = 1e6;
  LatencyTransport::Options options;
  options.plan = plan;
  options.quiescence_timeout_ms = 40;  // hopeless for a 120ms-RTT link
  options.quiescence.adaptive = true;
  options.quiescence.floor_ms = 20;
  options.quiescence.ceiling_ms = 5000;
  LatencyTransport net(options);

  ParticipantNode honest_a{{}}, honest_b{{}};
  const GridNodeId a = net.add_node(honest_a);
  const GridNodeId b = net.add_node(honest_b);
  SupervisorNode::Plan grid;
  grid.domain = Domain(0, 2 * 256);
  grid.scheme.name = "cbs";
  grid.seed = 11;
  SupervisorNode supervisor(grid, {a, b});
  net.add_node(supervisor);
  supervisor.start(net);
  net.run();

  ASSERT_TRUE(supervisor.done());
  for (const SupervisorNode::TaskOutcome& outcome : supervisor.outcomes()) {
    EXPECT_TRUE(outcome.verdict.accepted() ||
                outcome.verdict.status == VerdictStatus::kAborted)
        << "honest worker rejected: " << outcome.verdict.detail;
  }
  EXPECT_GT(net.frames_delayed(), 0u);
  EXPECT_GE(net.current_timeout_ms(), 20u);  // the estimator stays clamped
}

TEST(LatencyTransport, ReplaceSlotReroutesTheRetryToTheNewPeer) {
  // Slot 0 starts as a black hole; after the assignment is lost to it, the
  // slot is re-pointed at a live participant (the reconnect path). The
  // quiescence retry must reach the replacement and settle accepted.
  LatencyTransport::Options options;
  options.quiescence_timeout_ms = 100;
  LatencyTransport net(options);

  CountingSink black_hole;
  const GridNodeId dead = net.add_node(black_hole);
  ParticipantNode honest{{}};
  const GridNodeId live = net.add_node(honest);

  SupervisorNode::Plan grid;
  grid.domain = Domain(0, 256);
  grid.scheme.name = "cbs";
  grid.seed = 5;
  SupervisorNode supervisor(grid, {dead});
  net.add_node(supervisor);
  supervisor.start(net);
  // The initial assignment is in flight toward the black hole; the worker
  // "reconnects" before anything times out.
  supervisor.replace_slot(0, live);
  net.run();

  ASSERT_TRUE(supervisor.done());
  const std::vector<SupervisorNode::TaskOutcome> outcomes =
      supervisor.outcomes();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].verdict.accepted())
      << outcomes[0].verdict.detail;
  EXPECT_EQ(outcomes[0].peer.value, live.value);
  EXPECT_GT(black_hole.received, 0u)
      << "the first assignment should have gone to the dead slot";
}

// ---------------------------------------------------------------- real TCP

// Runs one participant until the supervisor hangs up.
std::map<TaskId, Verdict> run_worker(std::uint16_t port,
                                     const std::string& agent,
                                     std::shared_ptr<const HonestyPolicy>
                                         policy = nullptr) {
  ParticipantNode::Options options;
  options.policy = std::move(policy);
  ParticipantNode node(options);
  net::TcpTransport transport(fast_options());
  const GridNodeId self = transport.add_local(node);
  const GridNodeId supervisor = transport.connect("127.0.0.1", port);
  transport.send(self, supervisor, Hello{kGridProtocol, agent});
  bool gone = false;
  transport.on_peer_disconnected = [&](GridNodeId) { gone = true; };
  transport.run([&] { return gone; });
  return node.verdicts();
}

TEST(TcpChaos, AcceptResetCutsTheConnectionAndCounts) {
  net::TcpTransportOptions options = fast_options();
  options.chaos.emplace();
  options.chaos->seed = 3;
  options.chaos->accept_reset_rate = 1.0;  // every accept dies
  net::TcpTransport server(options);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  bool greeted = false;
  server.on_peer_hello = [&](GridNodeId, const Hello&) { greeted = true; };
  std::thread client([port] { run_worker(port, "doomed"); });
  server.run([&] { return server.io_stats().chaos_accept_resets >= 1; });
  server.close_all();
  client.join();
  EXPECT_FALSE(greeted) << "a reset connection must never register";
  EXPECT_GE(server.io_stats().chaos_accept_resets, 1u);
  EXPECT_TRUE(server.connected_peers().empty());
}

TEST(TcpChaos, FullExchangeStillCatchesTheCheaterUnderChaos) {
  // Latency, throttling, short writes, and read stalls on every server
  // link — but no lost traffic — must change timing only: honest workers
  // accepted, the cheater accused, nothing aborted.
  net::TcpTransportOptions options = fast_options();
  options.chaos.emplace();
  options.chaos->seed = 17;
  options.chaos->base_rtt_ms = 5.0;
  options.chaos->jitter_ms = 3.0;
  options.chaos->bandwidth_bytes_per_s = 4e6;
  options.chaos->partial_write_cap = 64;
  options.chaos->stall_rate = 0.05;
  options.chaos->stall_ms = 20;
  options.quiescence.adaptive = true;
  options.quiescence.floor_ms = 200;
  options.quiescence.ceiling_ms = 3000;
  net::TcpTransport server(options);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  std::vector<std::thread> workers;
  workers.emplace_back([port] { run_worker(port, "honest-a"); });
  workers.emplace_back([port] { run_worker(port, "honest-b"); });
  workers.emplace_back([port] {
    run_worker(port, "cheater", make_semi_honest_cheater({0.3, 0.0, 77}));
  });

  std::vector<GridNodeId> slots;
  std::map<std::uint32_t, std::string> agents;
  server.on_peer_hello = [&](GridNodeId peer, const Hello& hello) {
    slots.push_back(peer);
    agents[peer.value] = hello.agent;
  };
  server.run([&] { return slots.size() == 3; });

  SupervisorNode::Plan plan;
  plan.domain = Domain(0, 3 * 256);
  plan.scheme.name = "cbs";
  plan.scheme.cbs.sample_count = 6;
  plan.seed = 42;
  SupervisorNode supervisor(plan, slots);
  server.add_local(supervisor);
  supervisor.start(server);
  server.run([&] { return supervisor.done(); });

  std::map<std::string, Verdict> by_agent;
  for (const SupervisorNode::TaskOutcome& outcome : supervisor.outcomes()) {
    by_agent[agents.at(outcome.peer.value)] = outcome.verdict;
  }
  const net::TcpIoStats io = server.io_stats();
  server.close_all();
  for (std::thread& worker : workers) {
    worker.join();
  }

  ASSERT_EQ(by_agent.size(), 3u);
  EXPECT_TRUE(by_agent.at("honest-a").accepted());
  EXPECT_TRUE(by_agent.at("honest-b").accepted());
  EXPECT_FALSE(by_agent.at("cheater").accepted());
  EXPECT_NE(by_agent.at("cheater").status, VerdictStatus::kAborted);
  EXPECT_GT(io.chaos_frames_delayed, 0u)
      << "the latency model should have touched real frames";
}

TEST(TcpChaos, MidStreamDisconnectsNeverConvertToAccusations) {
  // Every released frame has a 30% chance of killing its connection, and
  // the workers do not reconnect: most tasks die. The one forbidden
  // outcome is an honest worker rejected.
  net::TcpTransportOptions options = fast_options();
  options.quiescence_timeout_ms = 200;
  options.chaos.emplace();
  options.chaos->seed = 29;
  options.chaos->disconnect_rate = 0.3;
  net::TcpTransport server(options);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  std::vector<std::thread> workers;
  workers.emplace_back([port] { run_worker(port, "honest-a"); });
  workers.emplace_back([port] { run_worker(port, "honest-b"); });

  std::vector<GridNodeId> slots;
  server.on_peer_hello = [&](GridNodeId peer, const Hello&) {
    slots.push_back(peer);
  };
  server.run([&] { return slots.size() == 2; });

  SupervisorNode::Plan plan;
  plan.domain = Domain(0, 2 * 128);
  plan.scheme.name = "cbs";
  plan.seed = 8;
  plan.max_task_retries = 1;
  SupervisorNode supervisor(plan, slots);
  server.add_local(supervisor);
  supervisor.start(server);
  server.run([&] { return supervisor.done(); });
  server.close_all();
  for (std::thread& worker : workers) {
    worker.join();
  }

  for (const SupervisorNode::TaskOutcome& outcome : supervisor.outcomes()) {
    EXPECT_TRUE(outcome.verdict.accepted() ||
                outcome.verdict.status == VerdictStatus::kAborted)
        << "an honest worker on a dying link must abort, never be accused";
  }
}

TEST(TcpChaos, ShedWatermarkDropsProtocolFramesBeyondTheBacklog) {
  net::TcpTransportOptions options = fast_options();
  options.shed_watermark = 2048;
  net::TcpTransport server(options);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  CountingSink sink;
  const GridNodeId self = server.add_local(sink);
  std::optional<GridNodeId> peer;
  server.on_peer_hello = [&](GridNodeId id, const Hello&) { peer = id; };

  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  Bytes hello;
  net::append_frame(encode_message(Message{Hello{kGridProtocol, "mute"}}),
                    hello);
  (void)net::write_some(raw, hello);
  server.run([&] { return peer.has_value(); });

  // The peer never reads; once the kernel socket buffer fills, userspace
  // backlog crosses the watermark and the enqueue path must start shedding
  // whole frames instead of growing the queue toward the kill cap.
  const Message bulk{Hello{kGridProtocol, std::string(256 * 1024, 'x')}};
  for (int i = 0; i < 64; ++i) {
    server.send(self, *peer, bulk);
  }
  const net::TcpIoStats io = server.io_stats();
  EXPECT_GT(io.frames_shed, 0u);
  EXPECT_LE(io.write_queue_hwm, options.shed_watermark + 256 * 1024 + 4096)
      << "the backlog must stay bounded near the watermark plus one frame";
  server.close_all();
}

TEST(TcpChaos, StalledWriterIsEvictedAfterTheDeadline) {
  net::TcpTransportOptions options = fast_options();
  options.evict_stalled_after_ms = 150;
  net::TcpTransport server(options);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  CountingSink sink;
  const GridNodeId self = server.add_local(sink);
  std::optional<GridNodeId> peer;
  bool dropped = false;
  server.on_peer_hello = [&](GridNodeId id, const Hello&) { peer = id; };
  server.on_peer_disconnected = [&](GridNodeId) { dropped = true; };

  net::Socket raw = net::tcp_connect("127.0.0.1", port);
  Bytes hello;
  net::append_frame(encode_message(Message{Hello{kGridProtocol, "deaf"}}),
                    hello);
  (void)net::write_some(raw, hello);
  server.run([&] { return peer.has_value(); });

  // Swamp the kernel buffer of a peer that never reads: the write queue
  // jams, and after evict_stalled_after_ms the transport must cut the
  // peer loose rather than carry the backlog forever.
  const Message bulk{Hello{kGridProtocol, std::string(256 * 1024, 'y')}};
  for (int i = 0; i < 64 && !dropped; ++i) {
    server.send(self, *peer, bulk);
    server.run([&] { return true; });  // one service round
  }
  server.run([&] { return dropped; });
  EXPECT_TRUE(dropped);
  EXPECT_GE(server.io_stats().peers_evicted, 1u);
  server.close_all();
}

TEST(TcpChaos, WriteIntoAClosedSocketFailsWithoutASignal) {
  // Regression for the SIGPIPE class of failure: the raw write path must
  // surface a dead peer as IoStatus::kError, not a process-killing signal.
  // SIGPIPE keeps its default disposition here on purpose — if the socket
  // layer ever loses MSG_NOSIGNAL, this test dies instead of failing.
  net::Socket listener = net::tcp_listen("127.0.0.1", 0);
  const std::uint16_t port = net::local_port(listener);
  net::Socket client = net::tcp_connect("127.0.0.1", port);
  net::Socket accepted;
  while (!accepted.valid()) {
    accepted = net::tcp_accept(listener);
  }
  accepted.close();  // the reader vanishes

  const Bytes payload(64 * 1024, 0xab);
  net::IoStatus status = net::IoStatus::kOk;
  for (int i = 0; i < 64; ++i) {
    const net::IoResult result = net::write_some(client, payload);
    if (result.status != net::IoStatus::kOk &&
        result.status != net::IoStatus::kWouldBlock) {
      status = result.status;
      break;
    }
    // A wedged non-blocking write needs the kernel to notice the RST.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(status, net::IoStatus::kError);
}

}  // namespace
}  // namespace ugc
