// Ablation: Eq. 1's raw leaves (Φ(L) = f(x)) vs hashed leaves
// (Φ(L) = hash(f(x))).
//
// With raw leaves the bottom sibling of every path is a full result, so
// proof size grows with the result width; hashing the leaf first pins every
// path element at digest size. The paper uses raw leaves (its results are
// small); this quantifies when the hashed variant starts paying.

#include <cstdio>
#include <memory>

#include "core/nicbs.h"
#include "workloads/registry.h"

using namespace ugc;

namespace {

// f with an adjustable result width.
class WideFunction final : public ComputeFunction {
 public:
  explicit WideFunction(std::size_t width) : width_(width) {}
  Bytes evaluate(std::uint64_t x) const override {
    Bytes out(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      out[i] = static_cast<std::uint8_t>((x * 131 + i * 17) & 0xff);
    }
    return out;
  }
  std::size_t result_size() const override { return width_; }
  std::string name() const override { return "wide"; }

 private:
  std::size_t width_;
};

std::size_t proof_wire_bytes(std::size_t result_width, LeafMode mode) {
  const Task task = Task::make(TaskId{1}, Domain(0, 1 << 12),
                               std::make_shared<WideFunction>(result_width));
  NiCbsConfig config;
  config.sample_count = 33;
  config.tree.leaf_mode = mode;
  NiCbsParticipant participant(task, config, make_honest_policy());
  return participant.prove().payload_bytes();
}

}  // namespace

int main() {
  std::printf("== leaf-mode ablation: raw (paper Eq. 1) vs hashed leaves ==\n");
  std::printf("n = 2^12, m = 33, sha256 tree\n\n");
  std::printf("%-14s %14s %14s %10s\n", "result bytes", "raw proof B",
              "hashed proof B", "hashed/raw");

  for (const std::size_t width : {8u, 16u, 64u, 256u, 1024u, 4096u}) {
    const std::size_t raw = proof_wire_bytes(width, LeafMode::kRaw);
    const std::size_t hashed = proof_wire_bytes(width, LeafMode::kHashed);
    std::printf("%-14zu %14zu %14zu %10.2f\n", width, raw, hashed,
                static_cast<double>(hashed) / static_cast<double>(raw));
  }

  std::printf("\nraw mode ships one full result per path (the sampled leaf's "
              "sibling); hashed mode pays one extra hash per leaf at build "
              "time but keeps proofs digest-sized. Crossover sits near "
              "result ~ digest size, as expected.\n");
  return 0;
}
