// The §4.2 retry attack against non-interactive CBS, measured.
//
// An attacker that computed a fraction r of the domain re-rolls guessed
// leaves until the root-derived samples all land in its computed subset.
// The paper predicts 1/r^m expected attempts. This bench measures mean
// attempts and the g-invocation cost under both accountings (the paper's
// full m·Cg per attempt, and the cheaper early-exit attacker).

#include <atomic>
#include <cstdio>

#include "core/analysis.h"
#include "core/nicbs.h"
#include "core/retry_attacker.h"
#include "common/parallel.h"
#include "workloads/keysearch.h"

using namespace ugc;

namespace {

struct Row {
  double r;
  std::size_t m;
};

}  // namespace

int main() {
  constexpr std::size_t kTrials = 200;
  constexpr std::uint64_t kN = 512;

  const auto f = std::make_shared<KeySearchFunction>(1, 3);
  const Task task = Task::make(TaskId{1}, Domain(0, kN), f);
  const auto verifier = std::make_shared<RecomputeVerifier>(f);

  std::printf("== §4.2 retry attack on NI-CBS (n = %llu, %zu trials/row) ==\n\n",
              static_cast<unsigned long long>(kN), kTrials);
  std::printf("%-6s %-4s %12s %12s %14s %14s %8s\n", "r", "m", "1/r^m",
              "attempts", "g calls(lazy)", "g calls(full)", "forged");

  const Row rows[] = {{0.5, 2},  {0.5, 4},  {0.5, 6},  {0.5, 8},
                      {0.7, 4},  {0.7, 8},  {0.9, 8},  {0.9, 16},
                      {0.8, 10}};

  for (const Row& row : rows) {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> g_lazy{0};
    std::atomic<std::uint64_t> g_full{0};
    std::atomic<std::size_t> forged_ok{0};

    parallel_for(0, kTrials, [&](std::uint64_t t) {
      NiCbsConfig config;
      config.sample_count = row.m;
      RetryAttackConfig attack;
      attack.honesty_ratio = row.r;
      attack.seed = 1000 + t;
      attack.max_attempts = 1 << 22;
      NiCbsRetryAttacker attacker(task, config, attack);
      const RetryAttackOutcome outcome = attacker.run();
      if (!outcome.success) {
        return;
      }
      attempts += outcome.attempts;
      g_lazy += outcome.g_invocations;
      g_full += outcome.g_invocations_full;

      // Spot-check that the forged proof actually passes verification.
      if (t % 50 == 0) {
        NiCbsSupervisor supervisor(task, config, verifier);
        if (supervisor.verify(outcome.proof).accepted()) {
          ++forged_ok;
        }
      }
    });

    std::printf("%-6.2f %-4zu %12.1f %12.1f %14.1f %14.1f %7zu/4\n", row.r,
                row.m, expected_retry_attempts(row.r, row.m),
                static_cast<double>(attempts.load()) / kTrials,
                static_cast<double>(g_lazy.load()) / kTrials,
                static_cast<double>(g_full.load()) / kTrials,
                forged_ok.load());
  }

  std::printf("\nall forged proofs pass supervisor verification — the attack "
              "is real; Eq. 5 (bench_eq5_defense) prices it out.\n");
  return 0;
}
