// Supervisor verification-throughput trajectory bench: how many verdicts
// (and individual sample proofs) per second can the supervisor issue, across
// domain sizes, sample counts, schemes, and pump strategies?
//
// Two sections:
//  - proof_check: single-threaded Step-4 checking at 2^20-leaf tasks,
//    comparing the pre-PR allocating implementation (copied below verbatim)
//    against the allocation-free scratch path, both on in-memory responses
//    and through the wire (owning decode + allocating verify vs zero-copy
//    view decode + scratch verify). The win here is attributable to the
//    zero-allocation rewrite, not core count.
//  - pump: end-to-end exchanges for many participants (CBS plain/batched/
//    SPRT, NI-CBS, ringer) through the serial and the parallel session pump
//    (run_scheme_exchanges_parallel), whose outputs are byte-identical.
//
// Emits BENCH_verify.json so subsequent PRs can track the trajectory; run
// with --smoke for a seconds-scale CI sanity pass over tiny sizes.
//
// Usage: bench_verify_throughput [--smoke] [--out PATH]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/cbs.h"
#include "core/engine.h"
#include "core/sampling.h"
#include "core/verification.h"
#include "merkle/batch_proof.h"
#include "merkle/geometry.h"
#include "merkle/proof.h"
#include "scheme/exchange.h"
#include "scheme/registry.h"
#include "wire/messages.h"

using namespace ugc;

namespace {

// Cheap deterministic workload (splitmix64 finalizer) so the timings measure
// proof checking, not f.
class MixFunction final : public ComputeFunction {
 public:
  Bytes evaluate(std::uint64_t x) const override {
    Bytes out(8);
    evaluate_into(x, out);
    return out;
  }
  void evaluate_into(std::uint64_t x,
                     std::span<std::uint8_t> out) const override {
    std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    put_u64_be(z, out.data());
  }
  std::size_t result_size() const override { return 8; }
  std::string name() const override { return "mix64"; }
};

// ---------------------------------------------------------------------------
// Pre-PR reference implementations, copied from the PR-2-era
// core/verification.cpp and merkle/batch_proof.cpp: per-sample MerkleProof
// materialization (full sibling-vector copy), per-level vector<pair<pos,
// Bytes>> frontiers, one fresh Bytes per node. This is the baseline the
// allocation-free path is measured against.
// ---------------------------------------------------------------------------
namespace baseline {

Verdict malformed(const Task& task, std::string detail) {
  return Verdict{task.id, VerdictStatus::kMalformed, std::nullopt,
                 std::move(detail)};
}

Verdict verify_sample_proofs(const Task& task, const TreeSettings& settings,
                             const Commitment& commitment,
                             std::span<const LeafIndex> expected_samples,
                             const ProofResponse& response,
                             const ResultVerifier& verifier) {
  const std::uint64_t n = task.domain.size();
  if (commitment.task != task.id || response.task != task.id) {
    return malformed(task, "task id mismatch");
  }
  if (commitment.leaf_count != n) {
    return malformed(task, "leaf count mismatch");
  }
  if (response.proofs.size() != expected_samples.size()) {
    return malformed(task, "sample count mismatch");
  }

  const auto hash = make_hash(settings.tree_hash);
  const unsigned height = tree_height(n);
  const std::size_t result_size = task.f->result_size();

  for (std::size_t k = 0; k < expected_samples.size(); ++k) {
    const LeafIndex expected = expected_samples[k];
    const SampleProof& proof = response.proofs[k];
    if (proof.index != expected || expected.value >= n ||
        proof.result.size() != result_size ||
        proof.siblings.size() != height) {
      return malformed(task, "malformed sample");
    }
    const std::uint64_t x = task.domain.input(expected);
    if (!verifier.verify(x, proof.result)) {
      return Verdict{task.id, VerdictStatus::kWrongResult, expected, ""};
    }
    MerkleProof merkle;
    merkle.index = expected;
    merkle.leaf_value = ParticipantEngine::leaf_from_result(
        proof.result, settings.leaf_mode, *hash);
    merkle.siblings = proof.siblings;
    if (!verify_proof(merkle, commitment.root, *hash)) {
      return Verdict{task.id, VerdictStatus::kRootMismatch, expected, ""};
    }
  }
  return Verdict{task.id, VerdictStatus::kAccepted, std::nullopt,
                 "all samples verified"};
}

Bytes compute_batch_root(const BatchProof& proof, const HashFunction& hash) {
  check(!proof.leaves.empty(), "baseline: no proven leaves");
  std::vector<std::pair<std::uint64_t, Bytes>> level_nodes;
  level_nodes.reserve(proof.leaves.size());
  for (const auto& [index, value] : proof.leaves) {
    level_nodes.emplace_back(index.value, value);
  }

  std::size_t next_sibling = 0;
  std::uint64_t width = proof.padded_leaf_count;
  while (width > 1) {
    std::vector<std::pair<std::uint64_t, Bytes>> parents;
    for (std::size_t i = 0; i < level_nodes.size(); ++i) {
      const std::uint64_t position = level_nodes[i].first;
      const Bytes* sibling = nullptr;
      if (i + 1 < level_nodes.size() &&
          level_nodes[i + 1].first == (position ^ 1)) {
        sibling = &level_nodes[i + 1].second;
      }
      Bytes parent_value(hash.digest_size());
      if (sibling != nullptr) {
        hash.hash_pair(level_nodes[i].second, *sibling, parent_value);
        ++i;
      } else {
        check(next_sibling < proof.siblings.size(),
              "baseline: sibling stream exhausted");
        const Bytes& provided = proof.siblings[next_sibling++];
        if ((position & 1) == 0) {
          hash.hash_pair(level_nodes[i].second, provided, parent_value);
        } else {
          hash.hash_pair(provided, level_nodes[i].second, parent_value);
        }
      }
      parents.emplace_back(position >> 1, std::move(parent_value));
    }
    level_nodes = std::move(parents);
    width >>= 1;
  }
  check(level_nodes.size() == 1, "baseline: did not converge");
  return std::move(level_nodes.front().second);
}

Verdict verify_batch_response(const Task& task, const TreeSettings& settings,
                              const Commitment& commitment,
                              std::span<const LeafIndex> expected_samples,
                              const BatchProofResponse& response,
                              const ResultVerifier& verifier) {
  const std::uint64_t n = task.domain.size();
  if (commitment.task != task.id || response.task != task.id ||
      commitment.leaf_count != n) {
    return malformed(task, "header mismatch");
  }
  std::vector<std::uint64_t> expected;
  expected.reserve(expected_samples.size());
  for (const LeafIndex index : expected_samples) {
    expected.push_back(index.value);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  if (response.results.size() != expected.size()) {
    return malformed(task, "sample count mismatch");
  }

  const auto hash = make_hash(settings.tree_hash);
  const std::size_t result_size = task.f->result_size();

  BatchProof batch;
  batch.padded_leaf_count = std::uint64_t{1} << tree_height(n);
  batch.siblings = response.siblings;
  for (std::size_t k = 0; k < expected.size(); ++k) {
    const auto& [index, result] = response.results[k];
    if (index.value != expected[k] || expected[k] >= n ||
        result.size() != result_size) {
      return malformed(task, "malformed sample");
    }
    const std::uint64_t x = task.domain.input(index);
    if (!verifier.verify(x, result)) {
      return Verdict{task.id, VerdictStatus::kWrongResult, index, ""};
    }
    batch.leaves.emplace_back(
        index, ParticipantEngine::leaf_from_result(result, settings.leaf_mode,
                                                   *hash));
  }
  if (!equal_bytes(baseline::compute_batch_root(batch, *hash),
                   commitment.root)) {
    return Verdict{task.id, VerdictStatus::kRootMismatch, std::nullopt, ""};
  }
  return Verdict{task.id, VerdictStatus::kAccepted, std::nullopt,
                 "all samples verified (batched)"};
}

}  // namespace baseline

// Runs `body` (one verdict per call) until `min_seconds` elapse, returning
// verdicts/sec. The body must leave an observable verdict so the work cannot
// be elided.
template <typename Body>
double verdicts_per_sec(Body&& body, double min_seconds) {
  std::uint64_t iterations = 0;
  Stopwatch timer;
  double seconds = 0.0;
  do {
    const Verdict verdict = body();
    check(verdict.accepted(), "bench verdict rejected: ", verdict.detail);
    ++iterations;
    seconds = timer.elapsed_seconds();
  } while (seconds < min_seconds);
  return static_cast<double>(iterations) / seconds;
}

struct ProofCheckRow {
  std::string path;
  unsigned log2_n = 0;
  std::size_t samples = 0;
  double base = 0.0;
  double fast = 0.0;
  double wire_base = 0.0;
  double wire_fast = 0.0;
};

struct PumpRow {
  std::string scheme;
  std::size_t participants = 0;
  unsigned log2_n = 0;
  double serial = 0.0;
  double parallel = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool require_parallel = false;
  std::string out_path = "BENCH_verify.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--require-parallel") == 0) {
      require_parallel = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--require-parallel] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool parallel_meaningful = hw_threads >= 2;
  if (!parallel_meaningful) {
    std::fprintf(stderr,
                 "warning: hardware_threads=%u — the parallel-pump columns "
                 "are not meaningful on this host\n",
                 hw_threads);
    // CI's bench legs pass --require-parallel: pump-thread scaling numbers
    // from a single-core runner would record contention, not parallelism.
    if (require_parallel) {
      std::fprintf(stderr,
                   "error: --require-parallel: refusing to run on a "
                   "single-threaded host\n");
      return 3;
    }
  }
  const double min_seconds = smoke ? 0.02 : 0.25;

  std::printf("== supervisor verification throughput (verdicts/s) ==\n");
  std::printf("hardware threads: %u%s\n\n", hw_threads,
              smoke ? "  [smoke sizes]" : "");

  // ------------------------------------------------------------ proof_check
  const auto f = std::make_shared<MixFunction>();
  const RecomputeVerifier verifier(f);
  std::vector<ProofCheckRow> proof_rows;

  const std::vector<unsigned> exponents =
      smoke ? std::vector<unsigned>{12} : std::vector<unsigned>{16, 20};
  const std::vector<std::size_t> sample_counts =
      smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64};

  std::printf("-- proof_check: single-threaded Step 4, pre-PR vs "
              "allocation-free --\n");
  std::printf("%-12s %-6s %-8s %12s %12s %8s %12s %12s %8s\n", "path", "n",
              "samples", "base", "fast", "speedup", "wire_base", "wire_fast",
              "speedup");
  for (const unsigned exp : exponents) {
    const std::uint64_t n = std::uint64_t{1} << exp;
    const Task task = Task::make(TaskId{1}, Domain(0, n), f);
    CbsConfig config;
    CbsParticipant participant(task, config, make_honest_policy());
    const Commitment commitment = participant.commit();

    for (const std::size_t m : sample_counts) {
      Rng rng(exp * 1000 + m);
      const std::vector<LeafIndex> samples = sample_with_replacement(rng, n, m);
      const SampleChallenge challenge{task.id, samples};
      const ProofResponse response = participant.respond(challenge);
      const BatchProofResponse batched = participant.respond_batched(challenge);
      const Bytes plain_payload = encode_message(Message{response});
      const Bytes batched_payload = encode_message(Message{batched});

      VerifyScratch scratch;
      WireViewArena arena;

      ProofCheckRow plain;
      plain.path = "cbs_plain";
      plain.log2_n = exp;
      plain.samples = m;
      plain.base = verdicts_per_sec(
          [&] {
            return baseline::verify_sample_proofs(task, config.tree,
                                                  commitment, samples,
                                                  response, verifier);
          },
          min_seconds);
      plain.fast = verdicts_per_sec(
          [&] {
            return verify_sample_proofs(task, config.tree, commitment, samples,
                                        response, verifier, nullptr, scratch);
          },
          min_seconds);
      plain.wire_base = verdicts_per_sec(
          [&] {
            const Message message = decode_message(plain_payload);
            return baseline::verify_sample_proofs(
                task, config.tree, commitment, samples,
                std::get<ProofResponse>(message), verifier);
          },
          min_seconds);
      plain.wire_fast = verdicts_per_sec(
          [&] {
            const ProofResponseView view =
                decode_proof_response_view(plain_payload, arena);
            return verify_sample_proofs(task, config.tree, commitment, samples,
                                        view, verifier, nullptr, scratch);
          },
          min_seconds);
      proof_rows.push_back(plain);

      ProofCheckRow batch;
      batch.path = "cbs_batched";
      batch.log2_n = exp;
      batch.samples = m;
      batch.base = verdicts_per_sec(
          [&] {
            return baseline::verify_batch_response(task, config.tree,
                                                   commitment, samples,
                                                   batched, verifier);
          },
          min_seconds);
      batch.fast = verdicts_per_sec(
          [&] {
            return verify_batch_response(task, config.tree, commitment,
                                         samples, batched, verifier, nullptr,
                                         scratch);
          },
          min_seconds);
      batch.wire_base = verdicts_per_sec(
          [&] {
            const Message message = decode_message(batched_payload);
            return baseline::verify_batch_response(
                task, config.tree, commitment, samples,
                std::get<BatchProofResponse>(message), verifier);
          },
          min_seconds);
      batch.wire_fast = verdicts_per_sec(
          [&] {
            const BatchProofResponseView view =
                decode_batch_proof_response_view(batched_payload, arena);
            return verify_batch_response(task, config.tree, commitment,
                                         samples, view, verifier, nullptr,
                                         scratch);
          },
          min_seconds);
      proof_rows.push_back(batch);

      for (const ProofCheckRow* row : {&plain, &batch}) {
        std::printf("%-12s 2^%-4u %-8zu %12.0f %12.0f %7.2fx %12.0f %12.0f "
                    "%7.2fx\n",
                    row->path.c_str(), row->log2_n, row->samples, row->base,
                    row->fast, row->fast / row->base, row->wire_base,
                    row->wire_fast, row->wire_fast / row->wire_base);
      }
    }
  }

  // ------------------------------------------------------------------- pump
  struct SchemeSetup {
    const char* label;
    SchemeConfig config;
  };
  std::vector<SchemeSetup> schemes;
  {
    SchemeSetup cbs{"cbs", {}};
    cbs.config.kind = SchemeKind::kCbs;
    schemes.push_back(cbs);
    SchemeSetup batched{"cbs_batched", {}};
    batched.config.kind = SchemeKind::kCbs;
    batched.config.cbs.use_batch_proofs = true;
    schemes.push_back(batched);
    SchemeSetup sprt{"cbs_sprt", {}};
    sprt.config.kind = SchemeKind::kCbs;
    sprt.config.cbs.use_sprt = true;
    schemes.push_back(sprt);
    SchemeSetup nicbs{"ni-cbs", {}};
    nicbs.config.kind = SchemeKind::kNiCbs;
    nicbs.config.nicbs.sample_count = 32;
    schemes.push_back(nicbs);
    SchemeSetup ringer{"ringer", {}};
    ringer.config.kind = SchemeKind::kRinger;
    schemes.push_back(ringer);
  }

  const std::vector<std::size_t> participant_counts =
      smoke ? std::vector<std::size_t>{8} : std::vector<std::size_t>{64, 256};
  const unsigned task_exp = smoke ? 8 : 10;
  const std::uint64_t task_leaves = std::uint64_t{1} << task_exp;
  std::vector<PumpRow> pump_rows;

  std::printf("\n-- pump: serial vs parallel session pump "
              "(run_scheme_exchanges_parallel) --\n");
  std::printf("%-12s %-13s %-6s %12s %12s %8s\n", "scheme", "participants",
              "n", "serial", "parallel", "speedup");
  for (const SchemeSetup& setup : schemes) {
    const VerificationScheme& scheme =
        SchemeRegistry::global().resolve(setup.config);
    for (const std::size_t participants : participant_counts) {
      std::vector<Task> tasks;
      tasks.reserve(participants);
      for (std::size_t i = 0; i < participants; ++i) {
        tasks.push_back(Task::make(TaskId{i + 1},
                                   Domain(i * task_leaves,
                                          (i + 1) * task_leaves),
                                   f));
      }

      PumpRow row;
      row.scheme = setup.label;
      row.participants = participants;
      row.log2_n = task_exp;
      {
        Stopwatch timer;
        const SchemeExchangeResult serial = run_scheme_exchanges_parallel(
            scheme, tasks, setup.config, nullptr, nullptr, 42, 1);
        row.serial =
            static_cast<double>(serial.verdicts.size()) /
            timer.elapsed_seconds();
        check(serial.verdicts.size() == participants,
              "pump bench: missing verdicts");
      }
      {
        Stopwatch timer;
        const SchemeExchangeResult parallel = run_scheme_exchanges_parallel(
            scheme, tasks, setup.config, nullptr, nullptr, 42, 0);
        row.parallel =
            static_cast<double>(parallel.verdicts.size()) /
            timer.elapsed_seconds();
      }
      pump_rows.push_back(row);
      std::printf("%-12s %-13zu 2^%-4u %12.0f %12.0f %7.2fx\n",
                  row.scheme.c_str(), row.participants, row.log2_n, row.serial,
                  row.parallel, row.parallel / row.serial);
    }
  }

  // ------------------------------------------------------------------- JSON
  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"smoke\": %s,\n  \"hardware_threads\": %u,\n"
               "  \"parallel_meaningful\": %s,\n  \"hash\": \"sha256\",\n",
               smoke ? "true" : "false", hw_threads,
               parallel_meaningful ? "true" : "false");
  std::fprintf(json, "  \"proof_check\": [\n");
  for (std::size_t i = 0; i < proof_rows.size(); ++i) {
    const ProofCheckRow& r = proof_rows[i];
    std::fprintf(json,
                 "    {\"path\": \"%s\", \"log2_n\": %u, \"samples\": %zu, "
                 "\"baseline_verdicts_per_sec\": %.0f, "
                 "\"fast_verdicts_per_sec\": %.0f, \"speedup\": %.2f, "
                 "\"baseline_proofs_per_sec\": %.0f, "
                 "\"fast_proofs_per_sec\": %.0f, "
                 "\"wire_baseline_verdicts_per_sec\": %.0f, "
                 "\"wire_fast_verdicts_per_sec\": %.0f, "
                 "\"wire_speedup\": %.2f}%s\n",
                 r.path.c_str(), r.log2_n, r.samples, r.base, r.fast,
                 r.fast / r.base, r.base * static_cast<double>(r.samples),
                 r.fast * static_cast<double>(r.samples), r.wire_base,
                 r.wire_fast, r.wire_fast / r.wire_base,
                 i + 1 < proof_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"pump\": [\n");
  for (std::size_t i = 0; i < pump_rows.size(); ++i) {
    const PumpRow& r = pump_rows[i];
    std::fprintf(json,
                 "    {\"scheme\": \"%s\", \"participants\": %zu, "
                 "\"log2_n\": %u, \"serial_verdicts_per_sec\": %.0f, "
                 "\"parallel_verdicts_per_sec\": %.0f, "
                 "\"pump_speedup\": %.2f, \"threads\": %u}%s\n",
                 r.scheme.c_str(), r.participants, r.log2_n, r.serial,
                 r.parallel, r.parallel / r.serial, hw_threads,
                 i + 1 < pump_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
