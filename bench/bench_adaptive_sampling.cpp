// Adaptive (SPRT) sampling vs the paper's fixed m.
//
// Three claims, measured: (1) with a clean channel the adaptive test costs
// honest participants exactly the fixed-m sample count and catches cheaters
// in ~1/(1-p1) samples; (2) with a noisy channel the fixed zero-tolerance
// rule destroys honest participants while the SPRT keeps both error rates
// at their design targets; (3) Wald's expected-sample formulas predict the
// measured means.

#include <atomic>
#include <cstdio>

#include "core/cbs.h"
#include "core/sequential.h"
#include "common/parallel.h"
#include "workloads/keysearch.h"

using namespace ugc;

namespace {

struct Outcome {
  SprtDecision decision;
  std::size_t samples;
};

Outcome run_adaptive(const Task& task, const SprtConfig& sprt,
                     std::shared_ptr<const HonestyPolicy> policy,
                     std::uint64_t seed, double corruption_rate) {
  CbsParticipant participant(task, CbsConfig{}, std::move(policy));
  AdaptiveCbsSupervisor supervisor(
      task, TreeSettings{}, sprt,
      std::make_shared<RecomputeVerifier>(task.f), Rng(seed));
  supervisor.receive_commitment(participant.commit());

  Rng noise(seed ^ 0xffULL);
  while (auto challenge = supervisor.next_challenge()) {
    ProofResponse response = participant.respond(*challenge);
    if (noise.bernoulli(corruption_rate)) {
      response.proofs[0].result[0] ^= 0xff;  // channel corruption
    }
    supervisor.submit(response);
  }
  return {supervisor.decision(), supervisor.samples_used()};
}

struct CellStats {
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> rejected{0};
};

void run_cell(const Task& task, const SprtConfig& sprt, double r,
              double corruption, std::size_t trials, CellStats& stats) {
  parallel_for(0, trials, [&](std::uint64_t t) {
    auto policy = r >= 1.0
                      ? make_honest_policy()
                      : make_semi_honest_cheater({r, 0.0, 5'000 + t});
    const Outcome outcome =
        run_adaptive(task, sprt, std::move(policy), 9'000 + t, corruption);
    stats.samples += outcome.samples;
    if (outcome.decision == SprtDecision::kAccept) {
      ++stats.accepted;
    } else {
      ++stats.rejected;
    }
  });
}

}  // namespace

int main() {
  constexpr std::size_t kTrials = 400;
  const auto f = std::make_shared<KeySearchFunction>(1, 11);
  const Task task = Task::make(TaskId{1}, Domain(0, 512), f);

  std::printf("== adaptive sampling (SPRT) vs fixed m ==\n");
  std::printf("n = 512, %zu trials per row\n\n", kTrials);

  {
    SprtConfig sprt;  // clean channel: p0 = 1
    sprt.pass_prob_cheater = 0.5;
    sprt.false_accept = 1e-4;
    const std::size_t fixed_m = Sprt::fixed_m_equivalent(sprt);
    std::printf("--- clean channel (fixed-m equivalent: m = %zu) ---\n",
                fixed_m);
    std::printf("%-22s %12s %12s %12s\n", "participant", "accepted",
                "rejected", "avg samples");
    for (const double r : {1.0, 0.9, 0.5, 0.2}) {
      CellStats stats;
      run_cell(task, sprt, r, 0.0, kTrials, stats);
      std::printf("%-22s %12zu %12zu %12.1f\n",
                  r >= 1.0 ? "honest" : concat("cheater r=", r).c_str(),
                  stats.accepted.load(), stats.rejected.load(),
                  static_cast<double>(stats.samples.load()) / kTrials);
    }
  }

  {
    std::printf("\n--- noisy channel: 5%% of proofs corrupted in transit ---\n");
    SprtConfig strict;  // the paper's zero-tolerance rule
    strict.pass_prob_cheater = 0.5;
    SprtConfig tolerant;
    tolerant.pass_prob_honest = 0.90;
    tolerant.pass_prob_cheater = 0.50;
    tolerant.false_reject = 1e-3;
    tolerant.false_accept = 1e-3;

    std::printf("%-34s %12s %12s %12s\n", "rule / participant", "accepted",
                "rejected", "avg samples");
    for (const bool use_tolerant : {false, true}) {
      const SprtConfig& sprt = use_tolerant ? tolerant : strict;
      for (const double r : {1.0, 0.5}) {
        CellStats stats;
        run_cell(task, sprt, r, 0.05, kTrials, stats);
        std::printf("%-34s %12zu %12zu %12.1f\n",
                    concat(use_tolerant ? "sprt(p0=0.9)" : "zero-tolerance",
                           " / ", r >= 1.0 ? "honest" : "cheater r=0.5")
                        .c_str(),
                    stats.accepted.load(), stats.rejected.load(),
                    static_cast<double>(stats.samples.load()) / kTrials);
      }
    }
    std::printf("\nWald predictions (tolerant rule): honest %.1f samples, "
                "cheater %.1f samples\n",
                Sprt::expected_samples_honest(tolerant),
                Sprt::expected_samples_cheater(tolerant));
  }
  return 0;
}
