// Reproduces Figure 2 of the paper: required sample size m vs honesty ratio
// r, for guess accuracies q = 0 and q = 0.5, at ε = 1e-4.
//
// The paper's quoted anchors: at r = 0.5, m = 14 for q ≈ 0 and m = 33 for
// q = 0.5. The figure's x-axis runs r = 0.1 .. 0.9; its y-axis tops out
// around 180 (reached by r = 0.9, q = 0.5).

#include <cstdio>

#include "core/analysis.h"

using namespace ugc;

int main() {
  constexpr double kEpsilon = 1e-4;

  std::printf("== Figure 2: required sample size vs cheating effort "
              "(epsilon = %g) ==\n\n", kEpsilon);
  std::printf("%-14s %16s %16s\n", "honesty r", "m (q = 0)", "m (q = 0.5)");

  for (int tenth = 1; tenth <= 9; ++tenth) {
    const double r = tenth / 10.0;
    const auto m_q0 = required_sample_size(kEpsilon, r, 0.0);
    const auto m_q5 = required_sample_size(kEpsilon, r, 0.5);
    std::printf("%-14.1f %16zu %16zu\n", r, m_q0.value_or(0),
                m_q5.value_or(0));
  }

  std::printf("\npaper anchors: r=0.5 -> m=14 (q=0), m=33 (q=0.5)\n");
  std::printf("reproduced:    r=0.5 -> m=%zu (q=0), m=%zu (q=0.5)\n",
              required_sample_size(kEpsilon, 0.5, 0.0).value_or(0),
              required_sample_size(kEpsilon, 0.5, 0.5).value_or(0));

  // The figure's top-of-axis value.
  std::printf("curve maximum (r=0.9, q=0.5): m=%zu\n",
              required_sample_size(kEpsilon, 0.9, 0.5).value_or(0));
  return 0;
}
