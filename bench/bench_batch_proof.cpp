// Batch-proof extension: how much of CBS's O(m log n) response the shared
// path prefixes recover. The paper ships m independent paths; a batch proof
// carries each needed sibling once.

#include <cstdio>

#include "common/rng.h"
#include "crypto/hash_function.h"
#include "merkle/batch_proof.h"
#include "merkle/proof.h"
#include "merkle/tree.h"

using namespace ugc;

namespace {

std::vector<Bytes> make_leaves(std::uint64_t n) {
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes leaf(16);
    put_u64_be(i, leaf.data());
    put_u64_be(i ^ 0xabcdef, leaf.data() + 8);
    leaves.push_back(std::move(leaf));
  }
  return leaves;
}

}  // namespace

int main() {
  const auto& h = default_hash();

  std::printf("== batch proofs vs m independent paths (16-byte results) ==\n\n");
  std::printf("%-8s %-6s %14s %14s %10s %12s %12s\n", "n", "m",
              "indep sibs", "batch sibs", "saved", "indep B", "batch B");

  for (const std::uint64_t n : {std::uint64_t{1} << 10, std::uint64_t{1} << 14,
                                std::uint64_t{1} << 18}) {
    const MerkleTree tree = MerkleTree::build(make_leaves(n), h);
    for (const std::size_t m : {14u, 33u, 64u, 128u, 512u}) {
      Rng rng(n ^ m);
      std::vector<LeafIndex> indices;
      std::size_t independent_bytes = 0;
      for (std::size_t k = 0; k < m; ++k) {
        indices.push_back(LeafIndex{rng.uniform(n)});
        independent_bytes += tree.prove(indices.back()).payload_bytes() + 8;
      }
      const std::size_t independent_sibs = m * tree.height();

      const BatchProof batch = make_batch_proof(tree, indices);
      const double saved =
          100.0 * (1.0 - static_cast<double>(batch.siblings.size()) /
                             static_cast<double>(independent_sibs));

      std::printf("2^%-6u %-6zu %14zu %14zu %9.1f%% %12zu %12zu\n",
                  tree.height(), m, independent_sibs, batch.siblings.size(),
                  saved, independent_bytes, batch.payload_bytes());
    }
  }

  std::printf("\nsavings scale with m/n: at the paper's m = 33..128 on large "
              "trees the shared prefix near the root recovers ~20-50%% of "
              "the siblings; for auditing whole subtrees (m >> 100) the "
              "batch form approaches O(m + log n).\n");
  return 0;
}
