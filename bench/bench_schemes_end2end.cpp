// Head-to-head: all five verification schemes on one grid scenario.
//
// Reproduces the paper's comparative argument (§1 and §3): double-check
// wastes compute, naive sampling wastes bandwidth, CBS/NI-CBS keep both
// small, the ringer baseline matches CBS's costs but only works for
// one-way f. One cheater (r = 0.5) is planted; every scheme must catch it.

#include <cstdio>

#include "common/stopwatch.h"
#include "grid/simulation.h"

using namespace ugc;

namespace {

struct SchemeRow {
  SchemeKind kind;
  GridRunResult result;
  double wall_ms;
};

SchemeRow run(SchemeKind kind) {
  GridConfig config;
  config.domain_end = 1 << 14;
  config.workload = "keysearch";
  config.workload_seed = 21;
  config.participant_count = 8;
  config.seed = 77;
  config.scheme.kind = kind;
  config.scheme.naive.sample_count = 33;
  config.scheme.cbs.sample_count = 33;
  config.scheme.nicbs.sample_count = 33;
  config.scheme.ringer.ringer_count = 33;
  config.cheaters = {{2, 0.5, 0.0, 0}};

  Stopwatch timer;
  GridRunResult result = run_grid_simulation(config);
  return SchemeRow{kind, std::move(result), timer.elapsed_seconds() * 1e3};
}

}  // namespace

int main() {
  std::printf("== all schemes, one scenario: n = 2^14 keysearch, 8 "
              "participants, one cheater (r = 0.5) ==\n\n");
  std::printf("%-16s %10s %12s %12s %10s %8s %8s %8s\n", "scheme",
              "part.evals", "sup.evals", "bytes", "messages", "caught",
              "false+", "ms");

  for (const SchemeKind kind :
       {SchemeKind::kDoubleCheck, SchemeKind::kNaiveSampling, SchemeKind::kCbs,
        SchemeKind::kNiCbs, SchemeKind::kRinger}) {
    const SchemeRow row = run(kind);
    std::printf("%-16s %10llu %12llu %12llu %10llu %7zu/1 %8zu %8.1f\n",
                to_string(kind),
                static_cast<unsigned long long>(
                    row.result.participant_evaluations),
                static_cast<unsigned long long>(
                    row.result.supervisor_evaluations),
                static_cast<unsigned long long>(row.result.network.total_bytes),
                static_cast<unsigned long long>(
                    row.result.network.total_messages),
                row.result.cheater_tasks_rejected,
                row.result.honest_tasks_rejected, row.wall_ms);
  }

  std::printf("\nreading guide: double-check doubles part.evals; naive "
              "sampling's bytes are O(n); CBS/NI-CBS keep both near the "
              "honest minimum. The ringer row matches CBS costs but assumes "
              "one-way f.\n");
  return 0;
}
