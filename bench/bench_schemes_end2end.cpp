// Head-to-head: every registered verification scheme on one grid scenario.
//
// Reproduces the paper's comparative argument (§1 and §3): double-check
// wastes compute, naive sampling wastes bandwidth, CBS/NI-CBS keep both
// small, the ringer baseline matches CBS's costs but only works for
// one-way f. One cheater (r = 0.5) is planted; every scheme must catch it.
//
// The scheme list comes straight from the SchemeRegistry — registering a new
// scheme adds a row here with no further edits — plus the two CBS variants
// (batched proofs, SPRT sequential sampling) that ride on the "cbs" entry.

#include <cstdio>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "grid/simulation.h"
#include "scheme/registry.h"

using namespace ugc;

namespace {

struct Scenario {
  std::string label;
  SchemeConfig scheme;
};

SchemeConfig base_scheme(const std::string& name) {
  SchemeConfig scheme;
  scheme.name = name;
  scheme.naive.sample_count = 33;
  scheme.cbs.sample_count = 33;
  scheme.nicbs.sample_count = 33;
  scheme.ringer.ringer_count = 33;
  return scheme;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (const std::string& name : SchemeRegistry::global().names()) {
    out.push_back({name, base_scheme(name)});
  }
  Scenario batched{"cbs (batched)", base_scheme("cbs")};
  batched.scheme.cbs.use_batch_proofs = true;
  out.push_back(std::move(batched));
  Scenario sprt{"cbs (sprt)", base_scheme("cbs")};
  sprt.scheme.cbs.use_sprt = true;
  sprt.scheme.cbs.sprt.pass_prob_cheater = 0.5;
  out.push_back(std::move(sprt));
  return out;
}

struct SchemeRow {
  GridRunResult result;
  double wall_ms;
};

SchemeRow run(const SchemeConfig& scheme) {
  GridConfig config;
  config.domain_end = 1 << 14;
  config.workload = "keysearch";
  config.workload_seed = 21;
  config.participant_count = 8;
  config.seed = 77;
  config.scheme = scheme;
  config.cheaters = {{2, 0.5, 0.0, 0}};

  Stopwatch timer;
  GridRunResult result = run_grid_simulation(config);
  return SchemeRow{std::move(result), timer.elapsed_seconds() * 1e3};
}

}  // namespace

int main() {
  std::printf("== all registered schemes, one scenario: n = 2^14 keysearch, "
              "8 participants, one cheater (r = 0.5) ==\n\n");
  std::printf("%-16s %10s %12s %12s %10s %8s %8s %8s\n", "scheme",
              "part.evals", "sup.evals", "bytes", "messages", "caught",
              "false+", "ms");

  for (const Scenario& scenario : scenarios()) {
    const SchemeRow row = run(scenario.scheme);
    std::printf("%-16s %10llu %12llu %12llu %10llu %7zu/1 %8zu %8.1f\n",
                scenario.label.c_str(),
                static_cast<unsigned long long>(
                    row.result.participant_evaluations),
                static_cast<unsigned long long>(
                    row.result.supervisor_evaluations),
                static_cast<unsigned long long>(row.result.network.total_bytes),
                static_cast<unsigned long long>(
                    row.result.network.total_messages),
                row.result.cheater_tasks_rejected,
                row.result.honest_tasks_rejected, row.wall_ms);
  }

  std::printf("\nreading guide: double-check doubles part.evals; naive "
              "sampling's bytes are O(n); CBS/NI-CBS keep both near the "
              "honest minimum. The ringer row matches CBS costs but assumes "
              "one-way f; the sprt row stops sampling as soon as Wald's test "
              "decides.\n");
  return 0;
}
