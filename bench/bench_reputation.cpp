// Reputation over repeated rounds: how quickly per-round CBS verdicts purge
// cheaters from the roster, and how much assigned work they burn before
// that happens — the long-horizon picture the paper's one-shot analysis
// abstracts away.

#include <cstdio>

#include "grid/reputation.h"

using namespace ugc;

namespace {

TournamentConfig base_tournament(double cheat_r, std::size_t cheaters) {
  TournamentConfig config;
  config.base.domain_end = 1 << 10;
  config.base.workload = "test";
  config.base.participant_count = 8;
  config.base.seed = 97;
  config.base.scheme.kind = SchemeKind::kCbs;
  config.base.scheme.cbs.sample_count = 33;
  for (std::size_t c = 0; c < cheaters; ++c) {
    config.base.cheaters.push_back({c * 2 + 1, cheat_r, 0.0, 0});
  }
  config.rounds = 8;
  config.reputation = {1.0, 1.0, 0.5, 2};
  return config;
}

}  // namespace

int main() {
  std::printf("== reputation tournaments: 8 participants, 8 rounds, CBS "
              "m = 33 ==\n\n");
  std::printf("%-10s %-9s %14s %16s %18s\n", "cheat r", "cheaters",
              "purged after", "final roster", "false bans");

  for (const double r : {0.2, 0.5, 0.8, 0.95}) {
    for (const std::size_t cheaters : {1u, 3u}) {
      const TournamentConfig config = base_tournament(r, cheaters);
      const TournamentResult result = run_reputation_tournament(config);

      std::size_t banned = 0;
      std::size_t false_bans = 0;
      for (std::size_t p = 0; p < result.final_banned.size(); ++p) {
        if (!result.final_banned[p]) {
          continue;
        }
        ++banned;
        const bool is_cheater = p % 2 == 1 && (p / 2) < cheaters;
        if (!is_cheater) {
          ++false_bans;
        }
      }
      std::printf("%-10.2f %-9zu %11zu rds %13zu/8 %18zu\n", r, cheaters,
                  result.cheaters_purged_after,
                  8 - banned, false_bans);
    }
  }

  std::printf("\nround-by-round view (r = 0.5, 3 cheaters):\n");
  const TournamentResult detail =
      run_reputation_tournament(base_tournament(0.5, 3));
  std::printf("%-7s %10s %14s %14s\n", "round", "active", "cheat rejected",
              "cheat accepted");
  for (std::size_t round = 0; round < detail.rounds.size(); ++round) {
    const TournamentRound& r = detail.rounds[round];
    std::printf("%-7zu %10zu %14zu %14zu\n", round + 1,
                r.active_participants, r.cheater_tasks_rejected,
                r.cheater_tasks_accepted);
  }
  std::printf("\neven a 95%%-honest cheater is purged within a few rounds: "
              "every round is an independent (r)^m escape trial, and the "
              "ledger only needs a couple of rejections.\n");
  return 0;
}
