// Eq. 5: defeating the NI-CBS retry attack by making the sample generator
// g = MD5^k expensive enough that (1/r^m)·m·Cg >= n·Cf.
//
// Measures real costs (ns) of f and of one MD5 round on this machine,
// derives the required k for a parameter grid, and validates the two sides
// of the paper's trade: the attack becomes more expensive than honest work,
// while the honest participant's overhead stays ~r^m of the task.

#include <cstdio>

#include "common/stopwatch.h"
#include "core/analysis.h"
#include "crypto/hash_function.h"
#include "crypto/iterated_hash.h"
#include "workloads/keysearch.h"
#include "workloads/registry.h"

using namespace ugc;

namespace {

double measure_f_cost_ns(const ComputeFunction& f, int reps = 400) {
  Stopwatch timer;
  std::uint8_t sink = 0;
  for (int i = 0; i < reps; ++i) {
    sink = static_cast<std::uint8_t>(
        sink ^ f.evaluate(static_cast<std::uint64_t>(i))[0]);
  }
  volatile std::uint8_t keep = sink;
  (void)keep;
  return static_cast<double>(timer.elapsed_ns()) / reps;
}

}  // namespace

int main() {
  const auto md5 = make_hash(HashAlgorithm::kMd5);
  const double md5_ns = measure_hash_cost_ns(*md5, 16, 20000);

  std::printf("== Eq. 5: pricing the retry attack out ==\n\n");
  std::printf("measured MD5 cost: %.0f ns/op\n", md5_ns);

  std::printf("\nmeasured f costs:\n");
  for (const char* name : {"test", "keysearch", "signal-scan",
                           "molecule-screen", "factoring"}) {
    const WorkloadBundle bundle = WorkloadRegistry::global().make(name, 1);
    std::printf("  %-16s %10.0f ns/eval\n", name,
                measure_f_cost_ns(*bundle.f));
  }

  // The defense table: required k = iterations of MD5 for g, for the
  // keysearch workload.
  const WorkloadBundle keysearch = WorkloadRegistry::global().make("keysearch", 1);
  const double cf_ns = measure_f_cost_ns(*keysearch.f);

  std::printf("\n--- required g = MD5^k (keysearch, Cf = %.0f ns) ---\n",
              cf_ns);
  std::printf("%-10s %-6s %-4s %14s %16s %16s\n", "n", "r", "m", "k",
              "attack/task", "honest ovh");
  struct Cell {
    std::uint64_t n;
    double r;
    std::size_t m;
  };
  const Cell cells[] = {
      {1 << 20, 0.5, 8},  {1 << 20, 0.5, 16}, {1 << 20, 0.9, 16},
      {1 << 20, 0.9, 32}, {1 << 30, 0.9, 32}, {1 << 30, 0.99, 64},
  };
  for (const Cell& cell : cells) {
    const std::uint64_t k = iterations_for_defense(cell.r, cell.m, cell.n,
                                                   cf_ns, md5_ns);
    const double cg_ns = static_cast<double>(k) * md5_ns;
    // Expected attack cost / task cost (>= 1 by construction).
    const double attack_over_task =
        expected_retry_attempts(cell.r, cell.m) *
        static_cast<double>(cell.m) * cg_ns /
        (static_cast<double>(cell.n) * cf_ns);
    const double overhead =
        honest_sample_gen_overhead(cell.m, cg_ns, cell.n, cf_ns);
    std::printf("%-10llu %-6.2f %-4zu %14llu %15.2fx %16.3g\n",
                static_cast<unsigned long long>(cell.n), cell.r, cell.m,
                static_cast<unsigned long long>(k), attack_over_task,
                overhead);
  }

  // Wall-clock demonstration at toy scale: with k tuned for r=0.5, m=4 and
  // n=256, one expected attack (1/r^m = 16 attempts) costs at least as much
  // g-time as the honest task costs f-time.
  std::printf("\n--- wall-clock check at toy scale ---\n");
  const std::uint64_t n = 256;
  const double r = 0.5;
  const std::size_t m = 4;
  const std::uint64_t k = iterations_for_defense(r, m, n, cf_ns, md5_ns);
  const auto g = make_iterated_hash(HashAlgorithm::kMd5, k);

  Stopwatch task_timer;
  for (std::uint64_t x = 0; x < n; ++x) {
    (void)keysearch.f->evaluate(x);
  }
  const double task_ns = static_cast<double>(task_timer.elapsed_ns());

  const double attempts = expected_retry_attempts(r, m);
  Stopwatch g_timer;
  Bytes chain = to_bytes("root");
  const std::uint64_t g_calls =
      static_cast<std::uint64_t>(attempts * static_cast<double>(m));
  for (std::uint64_t i = 0; i < g_calls; ++i) {
    chain = g->hash(chain);
  }
  const double attack_ns = static_cast<double>(g_timer.elapsed_ns());

  std::printf("k = %llu; honest task: %.2f ms; expected attack (g only): "
              "%.2f ms -> attack/task = %.2fx\n",
              static_cast<unsigned long long>(k), task_ns / 1e6,
              attack_ns / 1e6, attack_ns / task_ns);
  return attack_ns >= task_ns * 0.8 ? 0 : 1;
}
