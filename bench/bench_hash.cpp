// Hash substrate throughput: MD5 / SHA-1 / SHA-256 across payload sizes,
// plus the iterated g = MD5^k used by the Eq. 5 defense. These numbers give
// Cg and the hash term of the CBS build cost their units.

#include <benchmark/benchmark.h>

#include "common/bytes.h"
#include "crypto/hash_function.h"
#include "crypto/iterated_hash.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace {

using namespace ugc;

template <typename Hash>
void BM_OneShot(benchmark::State& state) {
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash::hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Md5(benchmark::State& state) { BM_OneShot<Md5>(state); }
void BM_Sha1(benchmark::State& state) { BM_OneShot<Sha1>(state); }
void BM_Sha256(benchmark::State& state) { BM_OneShot<Sha256>(state); }

BENCHMARK(BM_Md5)->Arg(16)->Arg(64)->Arg(1024)->Arg(65536);
BENCHMARK(BM_Sha1)->Arg(16)->Arg(64)->Arg(1024)->Arg(65536);
BENCHMARK(BM_Sha256)->Arg(16)->Arg(64)->Arg(1024)->Arg(65536);

// The Merkle inner-node operation: hash of two concatenated digests —
// legacy 1-shot form (allocates the concatenation and the digest)...
void BM_MerkleNodeHash(benchmark::State& state) {
  const Bytes left(32, 0xaa);
  const Bytes right(32, 0xbb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        default_hash().hash(concat_bytes(left, right)));
  }
}
BENCHMARK(BM_MerkleNodeHash);

// ...versus the zero-allocation hash_pair fast path the tree builds use.
void BM_MerkleNodeHashPair(benchmark::State& state) {
  const Bytes left(32, 0xaa);
  const Bytes right(32, 0xbb);
  Bytes out(default_hash().digest_size());
  for (auto _ : state) {
    default_hash().hash_pair(left, right, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MerkleNodeHashPair);

// g = MD5^k, the cost-tuned sample generator (Eq. 5).
void BM_IteratedMd5(benchmark::State& state) {
  const auto g = make_iterated_hash(HashAlgorithm::kMd5,
                                    static_cast<std::uint64_t>(state.range(0)));
  const Bytes root(32, 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->hash(root));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_IteratedMd5)->Arg(1)->Arg(64)->Arg(1024)->Arg(16384);

// Incremental hashing, the streaming-builder path.
void BM_Sha256Incremental(benchmark::State& state) {
  const Bytes chunk(static_cast<std::size_t>(state.range(0)), 0x11);
  for (auto _ : state) {
    Sha256 sha;
    for (int i = 0; i < 16; ++i) {
      sha.update(chunk);
    }
    benchmark::DoNotOptimize(sha.finish());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          state.range(0));
}
BENCHMARK(BM_Sha256Incremental)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
