// Merkle substrate micro-benchmarks: commitment build (full and streaming),
// proof generation (full and §3.3 partial trees), verification (the
// supervisor's Λ reconstruction), and the single-leaf update that makes the
// §4.2 retry attack cheap.

#include <benchmark/benchmark.h>

#include "common/bytes.h"
#include "crypto/hash_function.h"
#include "merkle/partial_tree.h"
#include "merkle/proof.h"
#include "merkle/streaming_builder.h"
#include "merkle/tree.h"

namespace {

using namespace ugc;

std::vector<Bytes> make_leaves(std::uint64_t n) {
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes leaf(16);
    put_u64_be(i, leaf.data());
    put_u64_be(i * 0x9e3779b97f4a7c15ULL, leaf.data() + 8);
    leaves.push_back(std::move(leaf));
  }
  return leaves;
}

void BM_TreeBuild(benchmark::State& state) {
  const auto leaves = make_leaves(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::build(leaves, default_hash()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TreeBuild)->Range(1 << 8, 1 << 18);

void BM_StreamingBuild(benchmark::State& state) {
  const auto leaves = make_leaves(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    StreamingMerkleBuilder builder(default_hash());
    for (const Bytes& leaf : leaves) {
      builder.add_leaf(leaf);
    }
    benchmark::DoNotOptimize(builder.finish());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StreamingBuild)->Range(1 << 8, 1 << 18);

void BM_Prove(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const MerkleTree tree = MerkleTree::build(make_leaves(n), default_hash());
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.prove(LeafIndex{i++ % n}));
  }
}
BENCHMARK(BM_Prove)->Range(1 << 8, 1 << 18);

void BM_VerifyProof(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const MerkleTree tree = MerkleTree::build(make_leaves(n), default_hash());
  const MerkleProof proof = tree.prove(LeafIndex{n / 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_proof(proof, tree.root(), default_hash()));
  }
}
BENCHMARK(BM_VerifyProof)->Range(1 << 8, 1 << 18);

void BM_UpdateLeaf(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  MerkleTree tree = MerkleTree::build(make_leaves(n), default_hash());
  Bytes value(16, 0xef);
  std::uint64_t i = 0;
  for (auto _ : state) {
    put_u64_be(i, value.data());
    tree.update_leaf(LeafIndex{i++ % n}, value, default_hash());
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_UpdateLeaf)->Range(1 << 8, 1 << 18);

// §3.3: proving from a partial tree rebuilds a 2^ℓ-leaf subtree.
void BM_PartialTreeProve(benchmark::State& state) {
  const std::uint64_t n = 1 << 14;
  const unsigned ell = static_cast<unsigned>(state.range(0));
  const auto leaves = make_leaves(n);
  const auto provider = [&leaves](LeafIndex i) { return leaves[i.value]; };
  const PartialMerkleTree tree =
      PartialMerkleTree::build(n, ell, provider, default_hash());
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.prove(LeafIndex{(i++ * 977) % n}, provider, default_hash()));
  }
  state.counters["stored_nodes"] =
      static_cast<double>(tree.stored_node_count());
}
BENCHMARK(BM_PartialTreeProve)->DenseRange(0, 12, 3);

}  // namespace

BENCHMARK_MAIN();
