// Reproduces the §3.3 / Figure 3 storage-computation tradeoff: storing only
// the top H-ℓ levels of the Merkle tree shrinks storage 2^ℓ-fold and costs
// a 2^ℓ-leaf subtree rebuild per sample; rco = m·2^ℓ/|D| = 2m/S.
//
// Every row is *measured*: stored node counts from the partial tree, rebuild
// evaluations from the engine's meter, and the measured rco compared with
// the closed form. Ends with the paper's 4 GB-disk example.

#include <cmath>
#include <cstdio>

#include "common/stopwatch.h"
#include "core/analysis.h"
#include "core/cbs.h"
#include "merkle/tree.h"
#include "workloads/keysearch.h"

using namespace ugc;

int main() {
  constexpr std::uint64_t kN = 1 << 16;
  constexpr std::size_t kSamples = 64;  // the paper's m = 64 example

  const auto f = std::make_shared<KeySearchFunction>(1, 5);
  const Task task = Task::make(TaskId{1}, Domain(0, kN), f);
  const auto verifier = std::make_shared<RecomputeVerifier>(f);

  std::printf("== §3.3 storage tradeoff: n = 2^16, m = %zu ==\n\n", kSamples);
  std::printf("%-5s %12s %14s %14s %14s %10s\n", "ell", "stored nodes",
              "rebuild evals", "rco measured", "rco = 2m/S", "prove ms");

  for (unsigned ell = 0; ell <= 12; ell += 2) {
    CbsConfig config;
    config.sample_count = kSamples;
    config.sample_with_replacement = false;  // distinct subtrees
    config.tree.storage_subtree_height = ell;

    CbsParticipant participant(task, config, make_honest_policy());
    CbsSupervisor supervisor(task, config, verifier, Rng(17));
    const Commitment commitment = participant.commit();
    const SampleChallenge challenge = supervisor.challenge(commitment);

    Stopwatch prove_timer;
    const ProofResponse response = participant.respond(challenge);
    const double prove_ms = prove_timer.elapsed_seconds() * 1e3;

    const Verdict verdict = supervisor.verify(response);
    if (!verdict.accepted()) {
      std::printf("UNEXPECTED REJECTION at ell=%u: %s\n", ell,
                  verdict.detail.c_str());
      return 1;
    }

    // The §3.3 storage S counts stored nodes; the paper's rco uses it via
    // rco = 2m/S.
    const double stored =
        std::pow(2.0, static_cast<double>(tree_height(kN) - ell) + 1.0) - 1.0;
    const double measured_rco =
        static_cast<double>(participant.metrics().rebuild_evaluations) /
        static_cast<double>(kN);
    const double predicted_rco = rco_from_levels(kSamples, tree_height(kN), ell);

    std::printf("%-5u %12.0f %14llu %14.6f %14.6f %10.2f\n", ell, stored,
                static_cast<unsigned long long>(
                    participant.metrics().rebuild_evaluations),
                measured_rco, predicted_rco, prove_ms);
  }

  std::printf("\n--- the paper's large-task example ---\n");
  std::printf("m = 64, 4 GB of digest storage (S = 2^32 nodes):\n");
  std::printf("  rco = 2m/S = %.3g  (paper: 2^-25 = %.3g)\n",
              rco_from_storage(64, std::pow(2.0, 32)), std::pow(2.0, -25));
  std::printf("  -> independent of task size: a 2^40-input task costs the "
              "same relative overhead.\n");
  return 0;
}
