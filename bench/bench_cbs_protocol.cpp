// End-to-end protocol micro-benchmarks: the participant's commit (domain
// sweep + tree build), the proof round, the supervisor's verification, and
// the NI-CBS equivalents. Run with a cheap f so the protocol overhead —
// not the workload — dominates.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/cbs.h"
#include "core/nicbs.h"
#include "workloads/keysearch.h"
#include "workloads/registry.h"

namespace {

using namespace ugc;

Task bench_task(std::uint64_t n) {
  return Task::make(TaskId{1}, Domain(0, n),
                    std::make_shared<KeySearchFunction>(1, 9));
}

void BM_CbsCommit(benchmark::State& state) {
  const Task task = bench_task(static_cast<std::uint64_t>(state.range(0)));
  CbsConfig config;
  for (auto _ : state) {
    CbsParticipant participant(task, config, make_honest_policy());
    benchmark::DoNotOptimize(participant.commit());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CbsCommit)->Range(1 << 8, 1 << 16);

void BM_CbsRespond(benchmark::State& state) {
  const std::uint64_t n = 1 << 14;
  const Task task = bench_task(n);
  CbsConfig config;
  config.sample_count = static_cast<std::size_t>(state.range(0));
  CbsParticipant participant(task, config, make_honest_policy());
  participant.commit();
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    SampleChallenge challenge{task.id, {}};
    for (std::size_t k = 0; k < config.sample_count; ++k) {
      challenge.samples.push_back(LeafIndex{rng.uniform(n)});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(participant.respond(challenge));
  }
}
BENCHMARK(BM_CbsRespond)->Arg(14)->Arg(33)->Arg(128);

void BM_CbsFullExchange(benchmark::State& state) {
  const Task task = bench_task(static_cast<std::uint64_t>(state.range(0)));
  CbsConfig config;
  config.sample_count = 33;
  const auto verifier = std::make_shared<RecomputeVerifier>(task.f);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cbs_exchange(
        task, config, make_honest_policy(), verifier, seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CbsFullExchange)->Range(1 << 8, 1 << 14);

void BM_NiCbsProve(benchmark::State& state) {
  const Task task = bench_task(static_cast<std::uint64_t>(state.range(0)));
  NiCbsConfig config;
  config.sample_count = 33;
  for (auto _ : state) {
    NiCbsParticipant participant(task, config, make_honest_policy());
    benchmark::DoNotOptimize(participant.prove());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_NiCbsProve)->Range(1 << 8, 1 << 14);

void BM_NiCbsVerify(benchmark::State& state) {
  const std::uint64_t n = 1 << 14;
  const Task task = bench_task(n);
  NiCbsConfig config;
  config.sample_count = static_cast<std::size_t>(state.range(0));
  NiCbsParticipant participant(task, config, make_honest_policy());
  const NiCbsProof proof = participant.prove();
  const auto verifier = std::make_shared<RecomputeVerifier>(task.f);
  for (auto _ : state) {
    NiCbsSupervisor supervisor(task, config, verifier);
    benchmark::DoNotOptimize(supervisor.verify(proof));
  }
}
BENCHMARK(BM_NiCbsVerify)->Arg(14)->Arg(33)->Arg(128);

// Supervisor verification with the cheap factoring verifier vs recompute:
// the Step-4 cost asymmetry the paper calls out.
void BM_VerifySampleCheapVsRecompute(benchmark::State& state) {
  const bool cheap = state.range(0) == 1;
  const WorkloadBundle bundle =
      WorkloadRegistry::global().make("factoring", 3);
  const Task task = Task::make(TaskId{1}, Domain(0, 1 << 10), bundle.f,
                               bundle.screener);
  NiCbsConfig config;
  config.sample_count = 33;
  NiCbsParticipant participant(task, config, make_honest_policy());
  const NiCbsProof proof = participant.prove();
  const auto verifier = cheap
                            ? bundle.verifier
                            : std::shared_ptr<const ResultVerifier>(
                                  std::make_shared<RecomputeVerifier>(bundle.f));
  for (auto _ : state) {
    NiCbsSupervisor supervisor(task, config, verifier);
    benchmark::DoNotOptimize(supervisor.verify(proof));
  }
  state.SetLabel(cheap ? "miller-rabin verifier" : "recompute verifier");
}
BENCHMARK(BM_VerifySampleCheapVsRecompute)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
