// Communication cost: naive / sampling O(n) result upload vs CBS
// O(m log n) — the paper's core efficiency claim (§1, §3).
//
// Small n: measured wire bytes from the simulated grid (every envelope
// included). Large n: the closed-form payload model, which the measured
// rows validate. Ends with the paper's 64-bit-password example (§3):
// "about 16 million terabytes" for the naive upload.

#include <cmath>
#include <cstdio>

#include "core/analysis.h"
#include "grid/latency.h"
#include "grid/simulation.h"

using namespace ugc;

namespace {

std::uint64_t measured_upload(SchemeKind kind, std::uint64_t n) {
  GridConfig config;
  config.domain_end = n;
  config.participant_count = 1;  // single worker isolates the upload path
  config.seed = 3;
  config.scheme.kind = kind;
  config.scheme.naive.sample_count = 33;
  config.scheme.cbs.sample_count = 33;
  config.scheme.nicbs.sample_count = 33;
  const GridRunResult result = run_grid_simulation(config);
  // Bytes sent by the participant (node 0): uploads, commitments, proofs.
  return result.network.bytes_sent(GridNodeId{0});
}

std::string human(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB", "EB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 6) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, units[unit]);
  return buf;
}

}  // namespace

int main() {
  constexpr std::size_t kResultSize = 16;
  constexpr std::size_t kDigestSize = 32;
  constexpr std::size_t kSamples = 33;

  std::printf("== Participant upload: naive O(n) vs CBS O(m log n) ==\n");
  std::printf("result size %zu B, digest %zu B, m = %zu\n\n", kResultSize,
              kDigestSize, kSamples);

  std::printf("--- measured on the simulated grid (all envelopes included) "
              "---\n");
  std::printf("%-10s %16s %16s %16s %9s\n", "n", "naive (B)", "cbs (B)",
              "ni-cbs (B)", "ratio");
  for (unsigned log_n = 8; log_n <= 16; log_n += 2) {
    const std::uint64_t n = std::uint64_t{1} << log_n;
    const std::uint64_t naive = measured_upload(SchemeKind::kNaiveSampling, n);
    const std::uint64_t cbs = measured_upload(SchemeKind::kCbs, n);
    const std::uint64_t nicbs = measured_upload(SchemeKind::kNiCbs, n);
    std::printf("2^%-8u %16llu %16llu %16llu %8.1fx\n", log_n,
                static_cast<unsigned long long>(naive),
                static_cast<unsigned long long>(cbs),
                static_cast<unsigned long long>(nicbs),
                static_cast<double>(naive) / static_cast<double>(cbs));
  }

  std::printf("\n--- closed-form payload model (validated above) ---\n");
  std::printf("%-10s %16s %16s %9s\n", "n", "naive", "cbs", "ratio");
  for (unsigned log_n = 20; log_n <= 40; log_n += 4) {
    const std::uint64_t n = std::uint64_t{1} << log_n;
    const double naive = upload_bytes_all_results(n, kResultSize);
    const double cbs = cbs_upload_bytes(n, kSamples, kResultSize, kDigestSize);
    std::printf("2^%-8u %16s %16s %8.0fx\n", log_n, human(naive).c_str(),
                human(cbs).c_str(), naive / cbs);
  }

  std::printf("\n--- the paper's 64-bit password example (§3) ---\n");
  const double naive64 = upload_bytes_all_results(0, 0) +
                         std::pow(2.0, 64);  // 1-byte results over 2^64 keys
  const double cbs64 =
      cbs_upload_bytes(std::uint64_t{1} << 63, 50, 1, kDigestSize) * 2.0;
  std::printf("naive upload:  %s (paper: ~16 million terabytes)\n",
              human(naive64).c_str());
  std::printf("CBS, m = 50:   %s\n", human(cbs64).c_str());

  // "Very few networks can handle such a heavy network load" (§3): turn the
  // byte counts into wall-clock on a 10 Mbit/s volunteer uplink.
  const LinkProfile uplink{1.25e6, 0.05};
  std::printf("\n--- time on a 10 Mbit/s uplink (latency model) ---\n");
  for (unsigned log_n : {20u, 30u, 40u}) {
    const std::uint64_t n = std::uint64_t{1} << log_n;
    const double naive_s = uplink.transfer_seconds(
        static_cast<std::uint64_t>(upload_bytes_all_results(n, kResultSize)),
        1);
    const double cbs_s = uplink.transfer_seconds(
        static_cast<std::uint64_t>(
            cbs_upload_bytes(n, kSamples, kResultSize, kDigestSize)),
        2);
    std::printf("n = 2^%-3u  naive: %14.1f s (%.1f days)   CBS: %6.3f s\n",
                log_n, naive_s, naive_s / 86400.0, cbs_s);
  }
  return 0;
}
