// Validates Theorem 3 empirically: runs many independent CBS exchanges with
// semi-honest cheaters and compares the measured acceptance (escape) rate
// against the closed form (r + (1-r)q)^m.

#include <atomic>
#include <cstdio>

#include "core/analysis.h"
#include "core/cbs.h"
#include "common/parallel.h"
#include "workloads/keysearch.h"

using namespace ugc;

namespace {

double measured_escape_rate(double r, double q, std::size_t m,
                            std::size_t trials) {
  const auto f = std::make_shared<KeySearchFunction>(1, 7);
  const Task task = Task::make(TaskId{1}, Domain(0, 512), f);
  const auto verifier = std::make_shared<RecomputeVerifier>(f);

  std::atomic<std::size_t> accepted{0};
  parallel_for(0, trials, [&](std::uint64_t t) {
    CbsConfig config;
    config.sample_count = m;
    const CbsRunResult result = run_cbs_exchange(
        task, config,
        make_semi_honest_cheater({r, q, 10'000 + t}), verifier,
        20'000 + t);
    if (result.verdict.accepted()) {
      accepted.fetch_add(1, std::memory_order_relaxed);
    }
  });
  return static_cast<double>(accepted.load()) / static_cast<double>(trials);
}

}  // namespace

int main() {
  constexpr std::size_t kTrials = 2000;

  std::printf("== Theorem 3: Pr[cheat succeeds] = (r + (1-r)q)^m ==\n");
  std::printf("%zu Monte-Carlo exchanges per cell, n = 512\n\n", kTrials);
  std::printf("%-6s %-6s %-4s %12s %12s %10s\n", "r", "q", "m", "predicted",
              "measured", "abs err");

  struct Cell {
    double r, q;
    std::size_t m;
  };
  const Cell cells[] = {
      {0.5, 0.0, 1}, {0.5, 0.0, 2}, {0.5, 0.0, 4}, {0.5, 0.0, 8},
      {0.7, 0.0, 4}, {0.9, 0.0, 8}, {0.5, 0.5, 4}, {0.5, 0.5, 8},
      {0.3, 0.5, 4}, {0.8, 0.2, 6},
  };

  double max_err = 0.0;
  for (const Cell& cell : cells) {
    const double predicted = cheat_success_probability(cell.r, cell.q, cell.m);
    const double measured =
        measured_escape_rate(cell.r, cell.q, cell.m, kTrials);
    const double err = measured > predicted ? measured - predicted
                                            : predicted - measured;
    max_err = std::max(max_err, err);
    std::printf("%-6.2f %-6.2f %-4zu %12.4f %12.4f %10.4f\n", cell.r, cell.q,
                cell.m, predicted, measured, err);
  }

  std::printf("\nmax abs deviation: %.4f (binomial noise at %zu trials is "
              "~0.011)\n", max_err, kTrials);
  return max_err < 0.05 ? 0 : 1;
}
