// Commitment-throughput trajectory bench: how many leaves/second can a
// participant fold into a Merkle commitment, across domain sizes, build
// strategies (serial vs parallel level build), and hash entry points
// (1-shot hash(concat) vs the streaming hash_pair fast path)?
//
// Tree-build speed bounds how large a task the grid can verify (PAPER.md
// §3, Fig. 3) — a participant answers no sample query until the whole
// domain is committed. This bench emits BENCH_commit.json so subsequent
// PRs can track the trajectory; run with --smoke for a seconds-scale CI
// sanity pass over tiny sizes.
//
// Usage: bench_commit_throughput [--smoke] [--out PATH]

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "crypto/hash_function.h"
#include "merkle/streaming_builder.h"
#include "merkle/tree.h"

using namespace ugc;

namespace {

std::vector<Bytes> make_leaves(std::uint64_t n, const HashFunction& hash) {
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes seed(8);
    put_u64_be(i, seed.data());
    leaves.push_back(hash.hash(seed));
  }
  return leaves;
}

double build_leaves_per_sec(const std::vector<Bytes>& leaves,
                            const HashFunction& hash, unsigned threads) {
  std::vector<Bytes> input = leaves;  // copy outside the timed region
  Stopwatch timer;
  const MerkleTree tree = MerkleTree::build(std::move(input), hash, threads);
  const double seconds = timer.elapsed_seconds();
  // Touch the root so the build cannot be elided.
  volatile std::uint8_t sink = tree.root().front();
  (void)sink;
  return static_cast<double>(leaves.size()) / seconds;
}

double streaming_leaves_per_sec(const std::vector<Bytes>& leaves,
                                const HashFunction& hash) {
  Stopwatch timer;
  StreamingMerkleBuilder builder(hash);
  for (const Bytes& leaf : leaves) {
    builder.add_leaf(leaf);
  }
  const Bytes root = builder.finish();
  const double seconds = timer.elapsed_seconds();
  volatile std::uint8_t sink = root.front();
  (void)sink;
  return static_cast<double>(leaves.size()) / seconds;
}

// The pre-PR interior-node recipe: one concatenation temporary plus a
// one-shot hash per node. Measured over the same pair count as one tree
// level so "pair_concat" vs "pair_streaming" isolates the hash_pair win.
double pairs_per_sec_concat(const std::vector<Bytes>& leaves,
                            const HashFunction& hash) {
  Stopwatch timer;
  Bytes digest;
  for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
    digest = hash.hash(concat_bytes(leaves[i], leaves[i + 1]));
  }
  const double seconds = timer.elapsed_seconds();
  volatile std::uint8_t sink = digest.front();
  (void)sink;
  return static_cast<double>(leaves.size() / 2) / seconds;
}

double pairs_per_sec_streaming(const std::vector<Bytes>& leaves,
                               const HashFunction& hash) {
  Stopwatch timer;
  Bytes digest(hash.digest_size());
  for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
    hash.hash_pair(leaves[i], leaves[i + 1], digest);
  }
  const double seconds = timer.elapsed_seconds();
  volatile std::uint8_t sink = digest.front();
  (void)sink;
  return static_cast<double>(leaves.size() / 2) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool require_parallel = false;
  std::string out_path = "BENCH_commit.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--require-parallel") == 0) {
      require_parallel = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--require-parallel] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<unsigned> exponents =
      smoke ? std::vector<unsigned>{10, 12} : std::vector<unsigned>{16, 18, 20};
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool parallel_meaningful = hw_threads >= 2;
  if (!parallel_meaningful) {
    std::fprintf(stderr,
                 "warning: hardware_threads=%u — the parallel columns are "
                 "not meaningful on this host\n",
                 hw_threads);
    // Numbers recorded for the repo must come from a host where the
    // parallel columns measure parallelism; CI passes --require-parallel so
    // a single-core runner refuses loudly instead of recording nonsense.
    if (require_parallel) {
      std::fprintf(stderr,
                   "error: --require-parallel: refusing to run on a "
                   "single-threaded host\n");
      return 3;
    }
  }

  std::printf("== commitment throughput (hash cost in ns, rates in leaves/s) "
              "==\n");
  std::printf("hardware threads: %u%s\n\n", hw_threads,
              smoke ? "  [smoke sizes]" : "");

  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"smoke\": %s,\n  \"hardware_threads\": %u,\n"
               "  \"parallel_meaningful\": %s,\n",
               smoke ? "true" : "false", hw_threads,
               parallel_meaningful ? "true" : "false");
  std::fprintf(json, "  \"hash_cost_ns\": {\n");
  for (auto algo :
       {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    const auto hash = make_hash(algo);
    const double cost = measure_hash_cost_ns(*hash, 64, smoke ? 200 : 2000);
    std::printf("hash_cost(%s, 64B) = %.1f ns\n", hash->name().c_str(), cost);
    std::fprintf(json, "    \"%s\": %.2f%s\n", hash->name().c_str(), cost,
                 algo == HashAlgorithm::kSha256 ? "" : ",");
  }
  std::fprintf(json, "  },\n  \"runs\": [\n");

  bool first_run = true;
  for (auto algo :
       {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    const auto hash = make_hash(algo);
    std::printf("\n-- %s --\n", hash->name().c_str());
    std::printf("%-8s %14s %14s %14s %14s %14s\n", "n", "serial", "parallel",
                "streaming", "pair_concat", "pair_stream");
    for (const unsigned exp : exponents) {
      const std::uint64_t n = std::uint64_t{1} << exp;
      const std::vector<Bytes> leaves = make_leaves(n, *hash);

      const double serial = build_leaves_per_sec(leaves, *hash, 1);
      const double parallel = build_leaves_per_sec(leaves, *hash, 0);
      const double streaming = streaming_leaves_per_sec(leaves, *hash);
      const double concat_rate = pairs_per_sec_concat(leaves, *hash);
      const double pair_rate = pairs_per_sec_streaming(leaves, *hash);

      std::printf("2^%-6u %14.0f %14.0f %14.0f %14.0f %14.0f\n", exp, serial,
                  parallel, streaming, concat_rate, pair_rate);

      std::fprintf(json,
                   "%s    {\"hash\": \"%s\", \"log2_n\": %u, "
                   "\"serial_leaves_per_sec\": %.0f, "
                   "\"parallel_leaves_per_sec\": %.0f, "
                   "\"streaming_leaves_per_sec\": %.0f, "
                   "\"concat_pairs_per_sec\": %.0f, "
                   "\"hash_pair_pairs_per_sec\": %.0f}",
                   first_run ? "" : ",\n", hash->name().c_str(), exp, serial,
                   parallel, streaming, concat_rate, pair_rate);
      first_run = false;
    }
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
