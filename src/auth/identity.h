#pragma once

// ---------------------------------------------------------------------------
// Layering note: src/auth is the *identity* layer. It knows about keys,
// digests, and files — never about sockets, frames, schemes, or tasks. Its
// only dependencies are common/ and crypto/; wire/ ships its structs as raw
// bytes, net/ drives its handshake verdicts, and store/ keys reputation by
// its WorkerId. Nothing under src/ below net/ may include auth/ except
// auth/, store/, and net/ themselves.
// ---------------------------------------------------------------------------
//
// Durable worker identity. The paper's reputation economics only bite if an
// identity is an asset a worker can lose: a banned cheater must not be able
// to shed its record by reconnecting under a fresh transient peer id. So a
// worker's name on the grid is cryptographic, not positional:
//
//   secret key  sk   32 random bytes, generated once, kept on disk
//   public key  pk = SHA-256("ugc.worker.pk.v1" || sk)
//   worker id   id = SHA-256("ugc.worker.id.v1" || pk)
//
// The worker id is what supervisors ban, pay, and persist reputation under;
// the public key is what the Hello handshake transmits and MACs with (see
// auth/handshake.h for the exact protocol and its threat model); the secret
// key never leaves the worker's disk — it exists so a future asymmetric
// upgrade (real signatures, TLS client certs) can prove ownership of pk
// without revealing it, and so a leaked pk does not leak the root secret.

#include <array>
#include <compare>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"

namespace ugc::auth {

// Sizes are all one SHA-256 digest.
inline constexpr std::size_t kSecretKeySize = 32;
inline constexpr std::size_t kPublicKeySize = 32;
inline constexpr std::size_t kWorkerIdSize = 32;

// A worker's durable name: the digest of its public identity key. Value
// type, totally ordered, so it keys maps and persists byte-for-byte.
struct WorkerId {
  std::array<std::uint8_t, kWorkerIdSize> digest{};

  auto operator<=>(const WorkerId&) const = default;

  BytesView view() const { return BytesView(digest.data(), digest.size()); }

  // Full lowercase hex (64 chars).
  std::string hex() const;

  // Short display form: the first 12 hex chars, enough to tell workers
  // apart in logs without drowning them.
  std::string prefix() const;

  // Inverse of hex(). Throws ugc::Error on anything but 64 hex chars.
  static WorkerId from_hex(std::string_view hex);

  // Adopts a raw 32-byte digest (throws on any other length).
  static WorkerId from_bytes(BytesView raw);
};

// Derives the public identity key from a secret key (throws unless the
// secret is kSecretKeySize bytes).
Bytes derive_public_key(BytesView secret_key);

// Derives the durable worker id from a public identity key (throws unless
// the key is kPublicKeySize bytes).
WorkerId worker_id_of(BytesView public_key);

// A worker's keypair. Immutable once constructed; the derived public key
// and id are computed eagerly so hot paths never re-hash.
class WorkerIdentity {
 public:
  // Adopts an existing secret key (throws unless kSecretKeySize bytes).
  explicit WorkerIdentity(Bytes secret_key);

  // Fresh identity from the given randomness source.
  static WorkerIdentity generate(Rng& rng);

  const Bytes& secret_key() const { return secret_key_; }
  const Bytes& public_key() const { return public_key_; }
  const WorkerId& id() const { return id_; }

 private:
  Bytes secret_key_;
  Bytes public_key_;
  WorkerId id_;
};

// ---------------------------------------------------------------- key files
// Identity file format (one identity per file, hex so operators can cat it):
//
//   ugc-worker-identity-v1
//   <64 hex chars of secret key>
//
// Created with owner-only permissions (0600): the secret IS the identity.

// Parses an identity file. Throws ugc::Error on a missing file, a bad
// header, or a malformed key.
WorkerIdentity load_identity_file(const std::string& path);

// Writes `identity` to `path` (overwrites), mode 0600.
void save_identity_file(const std::string& path, const WorkerIdentity& identity);

// The gridworker start-up path: load `path` if it exists, otherwise
// generate a fresh identity from `rng` and persist it there first.
WorkerIdentity load_or_create_identity(const std::string& path, Rng& rng);

}  // namespace ugc::auth
