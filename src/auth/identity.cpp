#include "auth/identity.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "common/hex.h"
#include "crypto/hash_function.h"

namespace ugc::auth {

namespace {

constexpr std::string_view kPublicKeyTag = "ugc.worker.pk.v1";
constexpr std::string_view kWorkerIdTag = "ugc.worker.id.v1";
constexpr std::string_view kIdentityFileHeader = "ugc-worker-identity-v1";

// SHA-256(tag || payload) without materializing the concatenation.
void tagged_digest(std::string_view tag, BytesView payload,
                   std::span<std::uint8_t> out) {
  const auto context = default_hash().new_context();
  context->update(to_bytes(tag));
  context->update(payload);
  context->finish(out);
}

}  // namespace

std::string WorkerId::hex() const { return to_hex(view()); }

std::string WorkerId::prefix() const { return hex().substr(0, 12); }

WorkerId WorkerId::from_hex(std::string_view hex) {
  return from_bytes(ugc::from_hex(hex));
}

WorkerId WorkerId::from_bytes(BytesView raw) {
  check(raw.size() == kWorkerIdSize, "WorkerId: expected ", kWorkerIdSize,
        " bytes, got ", raw.size());
  WorkerId id;
  std::memcpy(id.digest.data(), raw.data(), kWorkerIdSize);
  return id;
}

Bytes derive_public_key(BytesView secret_key) {
  check(secret_key.size() == kSecretKeySize, "derive_public_key: expected ",
        kSecretKeySize, "-byte secret key, got ", secret_key.size());
  Bytes out(kPublicKeySize);
  tagged_digest(kPublicKeyTag, secret_key, out);
  return out;
}

WorkerId worker_id_of(BytesView public_key) {
  check(public_key.size() == kPublicKeySize, "worker_id_of: expected ",
        kPublicKeySize, "-byte public key, got ", public_key.size());
  WorkerId id;
  tagged_digest(kWorkerIdTag, public_key, id.digest);
  return id;
}

WorkerIdentity::WorkerIdentity(Bytes secret_key)
    : secret_key_(std::move(secret_key)),
      public_key_(derive_public_key(secret_key_)),
      id_(worker_id_of(public_key_)) {}

WorkerIdentity WorkerIdentity::generate(Rng& rng) {
  return WorkerIdentity(rng.bytes(kSecretKeySize));
}

WorkerIdentity load_identity_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  check(fd >= 0, "identity file '", path, "': ", std::strerror(errno));
  std::string text;
  char buffer[256];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n <= 0) {
      break;
    }
    text.append(buffer, static_cast<std::size_t>(n));
    check(text.size() <= 4096, "identity file '", path,
          "' is implausibly large");
  }
  ::close(fd);

  const std::size_t newline = text.find('\n');
  check(newline != std::string::npos &&
            std::string_view(text).substr(0, newline) == kIdentityFileHeader,
        "identity file '", path, "': missing '", kIdentityFileHeader,
        "' header");
  std::string_view key_hex = std::string_view(text).substr(newline + 1);
  while (!key_hex.empty() && (key_hex.back() == '\n' || key_hex.back() == '\r')) {
    key_hex.remove_suffix(1);
  }
  check(key_hex.size() == 2 * kSecretKeySize, "identity file '", path,
        "': expected ", 2 * kSecretKeySize, " hex chars, got ",
        key_hex.size());
  return WorkerIdentity(from_hex(key_hex));
}

void save_identity_file(const std::string& path,
                        const WorkerIdentity& identity) {
  // 0600 from the first byte: the secret must never be world-readable,
  // even transiently.
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
  check(fd >= 0, "identity file '", path, "': ", std::strerror(errno));
  const std::string text = concat(kIdentityFileHeader, "\n",
                                  to_hex(identity.secret_key()), "\n");
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error(concat("identity file '", path, "': ", why));
    }
    written += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
}

WorkerIdentity load_or_create_identity(const std::string& path, Rng& rng) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    return load_identity_file(path);
  }
  WorkerIdentity identity = WorkerIdentity::generate(rng);
  save_identity_file(path, identity);
  return identity;
}

}  // namespace ugc::auth
