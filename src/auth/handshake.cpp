#include "auth/handshake.h"

#include "common/error.h"
#include "crypto/hmac.h"

namespace ugc::auth {

Bytes handshake_nonce(Rng& rng) { return rng.bytes(kHandshakeNonceSize); }

Bytes hello_proof_mac(BytesView public_key, BytesView nonce,
                      std::uint16_t protocol, std::string_view agent) {
  check(nonce.size() == kHandshakeNonceSize, "hello_proof_mac: expected ",
        kHandshakeNonceSize, "-byte nonce, got ", nonce.size());
  Bytes message;
  message.reserve(nonce.size() + 2 + agent.size());
  append(message, nonce);
  message.push_back(static_cast<std::uint8_t>(protocol));
  message.push_back(static_cast<std::uint8_t>(protocol >> 8));
  append(message, to_bytes(agent));
  return hmac_sha256(public_key, message);
}

HelloProof make_hello_proof(const WorkerIdentity& identity, BytesView nonce,
                            std::uint16_t protocol, std::string agent) {
  HelloProof proof;
  proof.protocol = protocol;
  proof.agent = std::move(agent);
  proof.public_key = identity.public_key();
  proof.mac =
      hello_proof_mac(identity.public_key(), nonce, protocol, proof.agent);
  return proof;
}

const char* to_string(HandshakeStatus status) {
  switch (status) {
    case HandshakeStatus::kOk:
      return "ok";
    case HandshakeStatus::kBadProtocol:
      return "bad-protocol";
    case HandshakeStatus::kBadKey:
      return "bad-key";
    case HandshakeStatus::kBadMac:
      return "bad-mac";
    case HandshakeStatus::kBanned:
      return "banned";
    case HandshakeStatus::kUnauthenticated:
      return "unauthenticated";
  }
  return "unknown";
}

HandshakeStatus verify_hello_proof(const HelloProof& proof, BytesView nonce,
                                   std::uint16_t protocol,
                                   const BanCheck& is_banned, AuthInfo& info) {
  if (proof.protocol != protocol) {
    return HandshakeStatus::kBadProtocol;
  }
  if (proof.public_key.size() != kPublicKeySize) {
    return HandshakeStatus::kBadKey;
  }
  const Bytes expected =
      hello_proof_mac(proof.public_key, nonce, protocol, proof.agent);
  // Not constant-time; the MAC key travels on the same plaintext channel,
  // so timing is not the cheapest attack here (see the header's threat
  // model).
  if (!equal_bytes(expected, proof.mac)) {
    return HandshakeStatus::kBadMac;
  }
  info.worker_id = worker_id_of(proof.public_key);
  info.agent = proof.agent;
  if (is_banned && is_banned(info.worker_id)) {
    return HandshakeStatus::kBanned;
  }
  return HandshakeStatus::kOk;
}

}  // namespace ugc::auth
