#pragma once

// Authenticated Hello: the challenge–response handshake that turns a TCP
// connection into a *worker identity* (see auth/identity.h for the key
// material and src/auth's layering note).
//
// Protocol (acceptor = supervisor, connector = worker):
//
//   1. supervisor -> worker   HelloChallenge{protocol, nonce}
//        nonce = kHandshakeNonceSize fresh random bytes, one per accepted
//        connection, never reused.
//   2. worker -> supervisor   HelloProof{protocol, agent, public_key, mac}
//        mac = HMAC-SHA256(key = public_key,
//                          msg = nonce || protocol_le16 || agent)
//   3. supervisor verifies: protocol matches, key well-formed, MAC binds
//      this nonce, and worker_id(public_key) is not banned. Any failure
//      drops the connection before a single scheme frame is accepted.
//
// What this buys (and what it doesn't): the worker id is the digest of the
// public key, so reputation — including bans — survives reconnects and
// supervisor restarts, and a banned cheater cannot re-enter without
// abandoning its accumulated standing (the paper's economics, made
// durable). The MAC binds the proof to the connection's fresh nonce, so a
// recorded handshake replayed later fails. What it does NOT provide is
// eavesdropper resistance: the channel is plaintext TCP, so an attacker who
// can read the wire learns the public key and could impersonate it —
// channel encryption (TLS) is the ROADMAP item that closes that gap, and
// the on-disk secret key is the seam a signature-based upgrade would prove
// ownership through.

#include <functional>

#include "auth/identity.h"
#include "wire/messages.h"

namespace ugc::auth {

inline constexpr std::size_t kHandshakeNonceSize = 32;

// Fresh per-connection challenge nonce.
Bytes handshake_nonce(Rng& rng);

// The proof MAC: HMAC-SHA256(public_key, nonce || protocol_le16 || agent).
// The nonce is fixed-width, so the concatenation is unambiguous.
Bytes hello_proof_mac(BytesView public_key, BytesView nonce,
                      std::uint16_t protocol, std::string_view agent);

// Worker side of step 2: mints the proof for `nonce`.
HelloProof make_hello_proof(const WorkerIdentity& identity, BytesView nonce,
                            std::uint16_t protocol, std::string agent);

// Why a handshake was (or wasn't) accepted. Order is stable for logs.
enum class HandshakeStatus : std::uint8_t {
  kOk = 0,
  kBadProtocol,  // proof speaks a different grid protocol revision
  kBadKey,       // public key is not kPublicKeySize bytes
  kBadMac,       // MAC does not bind this connection's nonce (or is forged)
  kBanned,       // identity verified, but its reputation bans it
  // Not produced by verify_hello_proof: the transport reports this when an
  // auth-required grid sees a plain Hello or scheme traffic before any
  // proof at all.
  kUnauthenticated,
};

const char* to_string(HandshakeStatus status);

// The identity a successful handshake established.
struct AuthInfo {
  WorkerId worker_id;
  std::string agent;

  friend bool operator==(const AuthInfo&, const AuthInfo&) = default;
};

// Reputation hook: true when the id must be refused at Hello. A null
// function bans nobody.
using BanCheck = std::function<bool(const WorkerId&)>;

// Supervisor side of step 3. `nonce` is the challenge this connection was
// sent. On kOk (and on kBanned, where the identity did verify) `info` is
// filled in; on kBadKey/kBadMac the claimed identity is unproven and `info`
// is left untouched.
HandshakeStatus verify_hello_proof(const HelloProof& proof, BytesView nonce,
                                   std::uint16_t protocol,
                                   const BanCheck& is_banned, AuthInfo& info);

}  // namespace ugc::auth
