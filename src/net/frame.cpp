#include "net/frame.h"

namespace ugc::net {

namespace {

// Little-endian u32, assembled explicitly (matching the wire codec's
// endianness discipline rather than the host's).
std::uint32_t read_header(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void append_frame(BytesView payload, Bytes& out, std::size_t max_frame_size) {
  if (payload.size() > max_frame_size) {
    throw FrameError(concat("append_frame: payload of ", payload.size(),
                            " bytes exceeds the ", max_frame_size,
                            "-byte frame cap"));
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(length));
  out.push_back(static_cast<std::uint8_t>(length >> 8));
  out.push_back(static_cast<std::uint8_t>(length >> 16));
  out.push_back(static_cast<std::uint8_t>(length >> 24));
  append(out, payload);
}

void FrameDecoder::check_usable() const {
  if (poisoned_) {
    throw FrameError(
        "FrameDecoder: stream already poisoned by an oversized length");
  }
}

void FrameDecoder::feed(BytesView data) {
  check_usable();
  // Compact before growing: everything before consumed_ has been handed
  // out, and the next() views over it are invalidated by this call anyway.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  append(buffer_, data);
  // Reject a hostile header eagerly — the peer has announced an oversized
  // frame even if its payload never arrives.
  if (buffer_.size() >= kFrameHeaderSize) {
    const std::uint32_t length = read_header(buffer_.data());
    if (length > max_frame_size_) {
      poisoned_ = true;
      throw FrameError(concat("frame length ", length, " exceeds the ",
                              max_frame_size_, "-byte cap"));
    }
  }
}

std::optional<BytesView> FrameDecoder::next() {
  check_usable();
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) {
    return std::nullopt;
  }
  const std::uint32_t length = read_header(buffer_.data() + consumed_);
  if (length > max_frame_size_) {
    poisoned_ = true;
    throw FrameError(concat("frame length ", length, " exceeds the ",
                            max_frame_size_, "-byte cap"));
  }
  if (available < kFrameHeaderSize + length) {
    return std::nullopt;
  }
  const BytesView payload =
      BytesView(buffer_).subspan(consumed_ + kFrameHeaderSize, length);
  consumed_ += kFrameHeaderSize + length;
  return payload;
}

}  // namespace ugc::net
