#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ugc::net {

namespace {

[[noreturn]] void fail(const char* what) {
  throw SocketError(concat(what, ": ", std::strerror(errno)));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl(O_NONBLOCK)");
  }
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw SocketError(concat("not an IPv4 address: '", host,
                             "' (src/net speaks numeric IPv4; resolve names "
                             "before calling)"));
  }
  return address;
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(const std::string& host, std::uint16_t port, int backlog,
                  bool reuse_port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    fail("socket");
  }
  const int one = 1;
  // Grid runs restart often (every test run); don't wait out TIME_WAIT.
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) < 0) {
    fail("setsockopt(SO_REUSEADDR)");
  }
  if (reuse_port) {
#ifdef SO_REUSEPORT
    if (::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) < 0) {
      fail("setsockopt(SO_REUSEPORT)");
    }
#else
    throw SocketError("SO_REUSEPORT is not supported on this platform");
#endif
  }
  const sockaddr_in address = make_address(host, port);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) < 0) {
    fail("bind");
  }
  if (::listen(socket.fd(), backlog) < 0) {
    fail("listen");
  }
  set_nonblocking(socket.fd());
  return socket;
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_in address{};
  socklen_t length = sizeof(address);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&address),
                    &length) < 0) {
    fail("getsockname");
  }
  return ntohs(address.sin_port);
}

Socket tcp_accept(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Socket();  // nothing to accept right now
    }
    fail("accept");
  }
  Socket socket(fd);
  set_nonblocking(fd);
  const int one = 1;
  // Protocol turns are small request/response frames; never Nagle-delay
  // them.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    fail("socket");
  }
  const sockaddr_in address = make_address(host, port);
  for (;;) {
    if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    fail("connect");
  }
  set_nonblocking(socket.fd());
  const int one = 1;
  (void)::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
  return socket;
}

IoResult read_some(const Socket& socket, std::span<std::uint8_t> buffer) {
  const ssize_t n = ::recv(socket.fd(), buffer.data(), buffer.size(), 0);
  if (n > 0) {
    return {IoStatus::kOk, static_cast<std::size_t>(n)};
  }
  if (n == 0) {
    return {IoStatus::kClosed, 0};
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return {IoStatus::kWouldBlock, 0};
  }
  return {IoStatus::kError, 0};
}

bool reuse_port_supported() {
#ifdef SO_REUSEPORT
  return true;
#else
  return false;
#endif
}

std::pair<Socket, Socket> make_wake_pipe() {
  int fds[2];
  if (::pipe(fds) < 0) {
    fail("pipe");
  }
  Socket read_end(fds[0]);
  Socket write_end(fds[1]);
  set_nonblocking(read_end.fd());
  set_nonblocking(write_end.fd());
  return {std::move(read_end), std::move(write_end)};
}

void drain_wake_pipe(const Socket& read_end) {
  std::uint8_t buffer[256];
  while (::read(read_end.fd(), buffer, sizeof(buffer)) > 0) {
  }
}

IoResult write_some(const Socket& socket, BytesView data) {
  if (data.empty()) {
    return {IoStatus::kOk, 0};
  }
  const ssize_t n =
      ::send(socket.fd(), data.data(), data.size(), MSG_NOSIGNAL);
  if (n >= 0) {
    return {IoStatus::kOk, static_cast<std::size_t>(n)};
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return {IoStatus::kWouldBlock, 0};
  }
  return {IoStatus::kError, 0};
}

IoResult write_vec(const Socket& socket, const struct iovec* iov,
                   std::size_t count) {
  if (count == 0) {
    return {IoStatus::kOk, 0};
  }
  msghdr message{};
  message.msg_iov = const_cast<struct iovec*>(iov);  // sendmsg never writes it
  message.msg_iovlen = count;
  const ssize_t n = ::sendmsg(socket.fd(), &message, MSG_NOSIGNAL);
  if (n >= 0) {
    return {IoStatus::kOk, static_cast<std::size_t>(n)};
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return {IoStatus::kWouldBlock, 0};
  }
  return {IoStatus::kError, 0};
}

}  // namespace ugc::net
