#include "net/event_engine.h"

#include <poll.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "net/socket.h"

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace ugc::net {

namespace {

#ifdef __linux__

class EpollEngine final : public EventEngine {
 public:
  EpollEngine() : epfd_(::epoll_create1(0)), events_(256) {
    if (epfd_ < 0) {
      throw SocketError(concat("epoll_create1: ", std::strerror(errno)));
    }
  }

  ~EpollEngine() override { ::close(epfd_); }

  void add(int fd, std::uint64_t token, Interest interest) override {
    epoll_event event = make_event(token, interest);
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      throw SocketError(concat("epoll_ctl(ADD): ", std::strerror(errno)));
    }
    ++watched_;
  }

  void modify(int fd, std::uint64_t token, Interest interest) override {
    epoll_event event = make_event(token, interest);
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &event) < 0) {
      throw SocketError(concat("epoll_ctl(MOD): ", std::strerror(errno)));
    }
  }

  void remove(int fd) override {
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) == 0) {
      --watched_;
    }
    // ENOENT/EBADF: already gone (close() deregisters) — the quiet no-op
    // the interface promises.
  }

  std::size_t wait(int timeout_ms, std::vector<ReadyEvent>& out) override {
    out.clear();
    const int ready = ::epoll_wait(epfd_, events_.data(),
                                   static_cast<int>(events_.size()),
                                   timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        return 0;
      }
      throw SocketError(concat("epoll_wait: ", std::strerror(errno)));
    }
    out.reserve(static_cast<std::size_t>(ready));
    for (int i = 0; i < ready; ++i) {
      const epoll_event& event = events_[static_cast<std::size_t>(i)];
      ReadyEvent ready_event;
      ready_event.token = event.data.u64;
      ready_event.readable = (event.events & EPOLLIN) != 0;
      ready_event.writable = (event.events & EPOLLOUT) != 0;
      ready_event.error = (event.events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ready_event);
    }
    if (static_cast<std::size_t>(ready) == events_.size()) {
      // The kernel had more ready fds than our buffer; grow so a huge
      // burst is drained in one wait next time instead of dribbling.
      events_.resize(events_.size() * 2);
    }
    return out.size();
  }

  std::size_t watched() const override { return watched_; }
  const char* name() const override { return "epoll"; }

 private:
  static epoll_event make_event(std::uint64_t token, Interest interest) {
    epoll_event event{};
    if (wants_read(interest)) {
      event.events |= EPOLLIN;
    }
    if (wants_write(interest)) {
      event.events |= EPOLLOUT;
    }
    event.data.u64 = token;
    return event;
  }

  int epfd_;
  std::vector<epoll_event> events_;
  std::size_t watched_ = 0;
};

#endif  // __linux__

class PollEngine final : public EventEngine {
 public:
  void add(int fd, std::uint64_t token, Interest interest) override {
    check(index_.find(fd) == index_.end(), "PollEngine::add: fd ", fd,
          " already registered");
    index_.emplace(fd, fds_.size());
    fds_.push_back(pollfd{fd, events_of(interest), 0});
    tokens_.push_back(token);
  }

  void modify(int fd, std::uint64_t token, Interest interest) override {
    const auto it = index_.find(fd);
    check(it != index_.end(), "PollEngine::modify: fd ", fd,
          " not registered");
    fds_[it->second].events = events_of(interest);
    tokens_[it->second] = token;
  }

  void remove(int fd) override {
    const auto it = index_.find(fd);
    if (it == index_.end()) {
      return;
    }
    const std::size_t slot = it->second;
    const std::size_t last = fds_.size() - 1;
    if (slot != last) {
      fds_[slot] = fds_[last];
      tokens_[slot] = tokens_[last];
      index_[fds_[slot].fd] = slot;
    }
    fds_.pop_back();
    tokens_.pop_back();
    index_.erase(it);
  }

  std::size_t wait(int timeout_ms, std::vector<ReadyEvent>& out) override {
    out.clear();
    const int ready =
        ::poll(fds_.data(), static_cast<nfds_t>(fds_.size()), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        return 0;
      }
      throw SocketError(concat("poll: ", std::strerror(errno)));
    }
    if (ready == 0) {
      return 0;
    }
    // The O(watched) scan poll can't avoid — the cost curve the epoll
    // backend removes.
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      const short revents = fds_[i].revents;
      if (revents == 0) {
        continue;
      }
      ReadyEvent event;
      event.token = tokens_[i];
      event.readable = (revents & POLLIN) != 0;
      event.writable = (revents & POLLOUT) != 0;
      event.error = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(event);
    }
    return out.size();
  }

  std::size_t watched() const override { return fds_.size(); }
  const char* name() const override { return "poll"; }

 private:
  static short events_of(Interest interest) {
    short events = 0;
    if (wants_read(interest)) {
      events |= POLLIN;
    }
    if (wants_write(interest)) {
      events |= POLLOUT;
    }
    return events;
  }

  std::vector<pollfd> fds_;
  std::vector<std::uint64_t> tokens_;  // parallel to fds_
  std::unordered_map<int, std::size_t> index_;
};

}  // namespace

bool epoll_supported() {
#ifdef __linux__
  return true;
#else
  return false;
#endif
}

EngineBackend parse_engine_backend(const std::string& name) {
  if (name == "auto") {
    return EngineBackend::kAuto;
  }
  if (name == "epoll") {
    return EngineBackend::kEpoll;
  }
  if (name == "poll") {
    return EngineBackend::kPoll;
  }
  throw Error(concat("unknown event engine '", name,
                     "' (auto | epoll | poll)"));
}

const char* to_string(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::kAuto:
      return "auto";
    case EngineBackend::kEpoll:
      return "epoll";
    case EngineBackend::kPoll:
      return "poll";
  }
  return "?";
}

std::unique_ptr<EventEngine> make_event_engine(EngineBackend backend) {
#ifdef __linux__
  if (backend == EngineBackend::kAuto || backend == EngineBackend::kEpoll) {
    return std::make_unique<EpollEngine>();
  }
#else
  check(backend != EngineBackend::kEpoll,
        "event engine 'epoll' is not supported on this platform");
#endif
  return std::make_unique<PollEngine>();
}

}  // namespace ugc::net
