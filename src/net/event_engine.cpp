#include "net/event_engine.h"

#include <poll.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "net/socket.h"

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/syscall.h>
#include <unistd.h>
#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define UGC_HAVE_IO_URING 1
#endif
#endif
#endif

namespace ugc::net {

namespace {

#ifdef __linux__

class EpollEngine final : public EventEngine {
 public:
  EpollEngine() : epfd_(::epoll_create1(0)), events_(256) {
    if (epfd_ < 0) {
      throw SocketError(concat("epoll_create1: ", std::strerror(errno)));
    }
  }

  ~EpollEngine() override { ::close(epfd_); }

  void add(int fd, std::uint64_t token, Interest interest) override {
    epoll_event event = make_event(token, interest);
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      throw SocketError(concat("epoll_ctl(ADD): ", std::strerror(errno)));
    }
    ++watched_;
  }

  void modify(int fd, std::uint64_t token, Interest interest) override {
    epoll_event event = make_event(token, interest);
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &event) < 0) {
      throw SocketError(concat("epoll_ctl(MOD): ", std::strerror(errno)));
    }
  }

  void remove(int fd) override {
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) == 0) {
      --watched_;
    }
    // ENOENT/EBADF: already gone (close() deregisters) — the quiet no-op
    // the interface promises.
  }

  std::size_t wait(int timeout_ms, std::vector<ReadyEvent>& out) override {
    out.clear();
    const int ready = ::epoll_wait(epfd_, events_.data(),
                                   static_cast<int>(events_.size()),
                                   timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        return 0;
      }
      throw SocketError(concat("epoll_wait: ", std::strerror(errno)));
    }
    out.reserve(static_cast<std::size_t>(ready));
    for (int i = 0; i < ready; ++i) {
      const epoll_event& event = events_[static_cast<std::size_t>(i)];
      ReadyEvent ready_event;
      ready_event.token = event.data.u64;
      ready_event.readable = (event.events & EPOLLIN) != 0;
      ready_event.writable = (event.events & EPOLLOUT) != 0;
      ready_event.error = (event.events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ready_event);
    }
    if (static_cast<std::size_t>(ready) == events_.size()) {
      // The kernel had more ready fds than our buffer; grow so a huge
      // burst is drained in one wait next time instead of dribbling.
      events_.resize(events_.size() * 2);
    }
    return out.size();
  }

  std::size_t watched() const override { return watched_; }
  const char* name() const override { return "epoll"; }

 private:
  static epoll_event make_event(std::uint64_t token, Interest interest) {
    epoll_event event{};
    if (wants_read(interest)) {
      event.events |= EPOLLIN;
    }
    if (wants_write(interest)) {
      event.events |= EPOLLOUT;
    }
    event.data.u64 = token;
    return event;
  }

  int epfd_;
  std::vector<epoll_event> events_;
  std::size_t watched_ = 0;
};

#ifdef UGC_HAVE_IO_URING

int io_uring_setup_sys(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int io_uring_enter_sys(int ring_fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags, const void* arg, std::size_t arg_size) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, arg, arg_size));
}

// io_uring in readiness mode: the engine keeps one *one-shot*
// IORING_OP_POLL_ADD in flight per watched fd and re-arms it at the top of
// every wait(). Re-arming before the sleep is what preserves the
// level-trigger contract the transport relies on — a poll over a
// still-readable fd completes inline during io_uring_enter, so buffered
// bytes re-report every round exactly as they do under epoll/poll.
//
// Completions are matched back to fds through a generation tag (`seq`):
// every armed poll gets a fresh user_data, and a completion whose tag is no
// longer the fd's current one is stale (the watch was modified, removed, or
// the fd slot was reused by a new connection) and is dropped on the floor.
// modify()/remove() cancel the in-flight poll with IORING_OP_POLL_REMOVE so
// the kernel never holds a reference to a file the transport has closed.
class UringEngine final : public EventEngine {
 public:
  UringEngine() {
    io_uring_params params{};
    // A modest SQ is plenty: push_sqe flushes with a bare enter when it
    // fills, and the CQ (sized 2× by the kernel) can't drop completions
    // under IORING_FEAT_NODROP, which uring_supported() requires.
    unsigned entries = 1024;
    for (;;) {
      std::memset(&params, 0, sizeof(params));
      ring_fd_ = io_uring_setup_sys(entries, &params);
      if (ring_fd_ >= 0) {
        break;
      }
      if (errno == ENOMEM && entries > 8) {
        entries /= 4;  // constrained container; a smaller ring still works
        continue;
      }
      throw SocketError(concat("io_uring_setup: ", std::strerror(errno)));
    }
    const unsigned need = IORING_FEAT_NODROP | IORING_FEAT_EXT_ARG;
    if ((params.features & need) != need) {
      ::close(ring_fd_);
      throw SocketError(
          "io_uring lacks NODROP/EXT_ARG (kernel too old for this engine)");
    }
    sq_entries_ = params.sq_entries;
    cq_entries_ = params.cq_entries;
    sq_ring_size_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_size_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap_) {
      sq_ring_size_ = cq_ring_size_ = std::max(sq_ring_size_, cq_ring_size_);
    }
    sq_ring_ = map_ring(sq_ring_size_, IORING_OFF_SQ_RING);
    cq_ring_ = single_mmap_ ? sq_ring_
                            : map_ring(cq_ring_size_, IORING_OFF_CQ_RING);
    sqe_size_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(map_ring(sqe_size_, IORING_OFF_SQES));

    auto* sq = static_cast<std::uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<std::uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
  }

  ~UringEngine() override { cleanup(); }

  void add(int fd, std::uint64_t token, Interest interest) override {
    check(watches_.find(fd) == watches_.end(), "UringEngine::add: fd ", fd,
          " already registered");
    watches_.emplace(fd, Watch{token, interest, 0});
  }

  void modify(int fd, std::uint64_t token, Interest interest) override {
    const auto it = watches_.find(fd);
    check(it != watches_.end(), "UringEngine::modify: fd ", fd,
          " not registered");
    Watch& watch = it->second;
    watch.token = token;
    if (watch.interest != interest && watch.armed_seq != 0) {
      // Interest changed under an in-flight poll: cancel it; the next
      // wait() re-arms with the new mask. (A token-only change needs no
      // cancel — completions resolve the token through the watch.)
      cancel_armed(watch);
    }
    watch.interest = interest;
  }

  void remove(int fd) override {
    const auto it = watches_.find(fd);
    if (it == watches_.end()) {
      return;
    }
    if (it->second.armed_seq != 0) {
      cancel_armed(it->second);
    }
    watches_.erase(it);
    // Submit the cancel (and any queued ones from earlier modifies) NOW,
    // not at the next wait: an in-flight poll holds a kernel reference to
    // the file, and the caller is about to close() the fd expecting the
    // peer to see FIN. Without this flush a torn-down transport can leave
    // every connection ESTABLISHED from the remote's point of view.
    flush_submissions();
  }

  std::size_t wait(int timeout_ms, std::vector<ReadyEvent>& out) override {
    out.clear();
    // Re-arm before sleeping: any watch whose poll completed (or that was
    // just added/modified) gets a fresh one-shot poll. A still-ready fd's
    // poll completes inline inside the enter below, so it cannot be missed.
    for (auto& [fd, watch] : watches_) {
      if (watch.armed_seq != 0 || watch.interest == Interest::kNone) {
        continue;
      }
      io_uring_sqe* sqe = push_sqe();
      const std::uint64_t seq = next_seq_++;
      sqe->opcode = IORING_OP_POLL_ADD;
      sqe->fd = fd;
      sqe->poll_events = poll_mask(watch.interest);
      sqe->user_data = seq;
      watch.armed_seq = seq;
      armed_.emplace(seq, fd);
    }

    const unsigned to_submit = pending_sqes();
    int ret;
    if (timeout_ms < 0) {
      ret = io_uring_enter_sys(ring_fd_, to_submit, 1, IORING_ENTER_GETEVENTS,
                               nullptr, 0);
    } else {
      __kernel_timespec ts{};
      ts.tv_sec = timeout_ms / 1000;
      ts.tv_nsec = (timeout_ms % 1000) * 1000000LL;
      io_uring_getevents_arg arg{};
      arg.ts = reinterpret_cast<std::uintptr_t>(&ts);
      ret = io_uring_enter_sys(
          ring_fd_, to_submit, 1,
          IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg, sizeof(arg));
    }
    if (ret < 0 && errno != ETIME && errno != EINTR && errno != EBUSY) {
      throw SocketError(concat("io_uring_enter: ", std::strerror(errno)));
    }
    drain_cq(out);
    return out.size();
  }

  std::size_t watched() const override { return watches_.size(); }
  const char* name() const override { return "uring"; }

 private:
  struct Watch {
    std::uint64_t token = 0;
    Interest interest = Interest::kNone;
    std::uint64_t armed_seq = 0;  // user_data of the in-flight poll; 0 = none
  };

  // Sentinel user_data for POLL_REMOVE completions (never a poll tag:
  // next_seq_ starts at 1 and counts up).
  static constexpr std::uint64_t kCancelData = ~std::uint64_t{0};

  // Idempotent teardown shared by the destructor and the constructor's
  // partial-failure path (a throwing ctor never runs the dtor).
  void cleanup() {
    if (sqes_ != nullptr) {
      ::munmap(sqes_, sqe_size_);
      sqes_ = nullptr;
    }
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_size_);
    }
    cq_ring_ = nullptr;
    if (sq_ring_ != nullptr) {
      ::munmap(sq_ring_, sq_ring_size_);
      sq_ring_ = nullptr;
    }
    if (ring_fd_ >= 0) {
      ::close(ring_fd_);
      ring_fd_ = -1;
    }
  }

  void* map_ring(std::size_t size, off_t offset) {
    void* ptr = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_, offset);
    if (ptr == MAP_FAILED) {
      const int saved = errno;
      cleanup();
      throw SocketError(concat("io_uring mmap: ", std::strerror(saved)));
    }
    return ptr;
  }

  static unsigned short poll_mask(Interest interest) {
    unsigned short mask = 0;
    if (wants_read(interest)) {
      mask |= POLLIN;
    }
    if (wants_write(interest)) {
      mask |= POLLOUT;
    }
    return mask;
  }

  unsigned pending_sqes() const {
    return *sq_tail_ - __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  }

  io_uring_sqe* push_sqe() {
    if (pending_sqes() == sq_entries_) {
      // SQ full: flush what's queued with a submit-only enter.
      const int ret = io_uring_enter_sys(ring_fd_, sq_entries_, 0, 0, nullptr,
                                         0);
      if (ret < 0 && errno != EINTR && errno != EBUSY) {
        throw SocketError(
            concat("io_uring_enter(flush): ", std::strerror(errno)));
      }
      check(pending_sqes() < sq_entries_,
            "io_uring submission queue stuck full");
    }
    const unsigned tail = *sq_tail_;
    const unsigned index = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[index];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array_[index] = index;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    return sqe;
  }

  void cancel_armed(Watch& watch) {
    io_uring_sqe* sqe = push_sqe();
    sqe->opcode = IORING_OP_POLL_REMOVE;
    sqe->fd = -1;
    sqe->addr = watch.armed_seq;  // target poll, by its user_data
    sqe->user_data = kCancelData;
    armed_.erase(watch.armed_seq);
    watch.armed_seq = 0;
  }

  // Submit-only enter: pushes every queued SQE to the kernel without
  // reaping completions (those drain at the next wait, where stale
  // generations are dropped). Poll add/remove ops execute inline during
  // submission, so cancels take effect before this returns.
  void flush_submissions() {
    const unsigned pending = pending_sqes();
    if (pending == 0) {
      return;
    }
    const int ret = io_uring_enter_sys(ring_fd_, pending, 0, 0, nullptr, 0);
    if (ret < 0 && errno != EINTR && errno != EBUSY) {
      throw SocketError(
          concat("io_uring_enter(flush): ", std::strerror(errno)));
    }
  }

  void drain_cq(std::vector<ReadyEvent>& out) {
    unsigned head = *cq_head_;
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      ++head;
      if (cqe.user_data == kCancelData) {
        continue;  // POLL_REMOVE outcome; nothing to report
      }
      const auto armed = armed_.find(cqe.user_data);
      if (armed == armed_.end()) {
        continue;  // stale generation: watch modified/removed meanwhile
      }
      const int fd = armed->second;
      armed_.erase(armed);
      const auto it = watches_.find(fd);
      if (it == watches_.end() || it->second.armed_seq != cqe.user_data) {
        continue;
      }
      it->second.armed_seq = 0;  // completed; wait() re-arms next round
      ReadyEvent event;
      event.token = it->second.token;
      if (cqe.res < 0) {
        if (cqe.res == -ECANCELED) {
          continue;  // canceled poll that raced its own completion
        }
        event.error = true;  // poll itself failed (e.g. EBADF): surface it
      } else {
        const auto revents = static_cast<unsigned>(cqe.res);
        event.readable = (revents & POLLIN) != 0;
        event.writable = (revents & POLLOUT) != 0;
        event.error = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      }
      out.push_back(event);
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  }

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sq_ring_size_ = 0;
  std::size_t cq_ring_size_ = 0;
  std::size_t sqe_size_ = 0;
  bool single_mmap_ = false;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  std::unordered_map<int, Watch> watches_;
  std::unordered_map<std::uint64_t, int> armed_;  // poll user_data -> fd
  std::uint64_t next_seq_ = 1;
};

#endif  // UGC_HAVE_IO_URING

#endif  // __linux__

class PollEngine final : public EventEngine {
 public:
  void add(int fd, std::uint64_t token, Interest interest) override {
    check(index_.find(fd) == index_.end(), "PollEngine::add: fd ", fd,
          " already registered");
    index_.emplace(fd, fds_.size());
    fds_.push_back(pollfd{fd, events_of(interest), 0});
    tokens_.push_back(token);
  }

  void modify(int fd, std::uint64_t token, Interest interest) override {
    const auto it = index_.find(fd);
    check(it != index_.end(), "PollEngine::modify: fd ", fd,
          " not registered");
    fds_[it->second].events = events_of(interest);
    tokens_[it->second] = token;
  }

  void remove(int fd) override {
    const auto it = index_.find(fd);
    if (it == index_.end()) {
      return;
    }
    const std::size_t slot = it->second;
    const std::size_t last = fds_.size() - 1;
    if (slot != last) {
      fds_[slot] = fds_[last];
      tokens_[slot] = tokens_[last];
      index_[fds_[slot].fd] = slot;
    }
    fds_.pop_back();
    tokens_.pop_back();
    index_.erase(it);
  }

  std::size_t wait(int timeout_ms, std::vector<ReadyEvent>& out) override {
    out.clear();
    const int ready =
        ::poll(fds_.data(), static_cast<nfds_t>(fds_.size()), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        return 0;
      }
      throw SocketError(concat("poll: ", std::strerror(errno)));
    }
    if (ready == 0) {
      return 0;
    }
    // The O(watched) scan poll can't avoid — the cost curve the epoll
    // backend removes.
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      const short revents = fds_[i].revents;
      if (revents == 0) {
        continue;
      }
      ReadyEvent event;
      event.token = tokens_[i];
      event.readable = (revents & POLLIN) != 0;
      event.writable = (revents & POLLOUT) != 0;
      event.error = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(event);
    }
    return out.size();
  }

  std::size_t watched() const override { return fds_.size(); }
  const char* name() const override { return "poll"; }

 private:
  static short events_of(Interest interest) {
    short events = 0;
    if (wants_read(interest)) {
      events |= POLLIN;
    }
    if (wants_write(interest)) {
      events |= POLLOUT;
    }
    return events;
  }

  std::vector<pollfd> fds_;
  std::vector<std::uint64_t> tokens_;  // parallel to fds_
  std::unordered_map<int, std::size_t> index_;
};

}  // namespace

bool epoll_supported() {
#ifdef __linux__
  return true;
#else
  return false;
#endif
}

bool uring_supported() {
#ifdef UGC_HAVE_IO_URING
  // Probe once by standing up a tiny ring: the syscall existing is not
  // enough (seccomp filters and kernel.io_uring_disabled both surface here
  // as a setup failure), and the engine needs lossless completions
  // (IORING_FEAT_NODROP, 5.5+) plus timed waits (IORING_FEAT_EXT_ARG,
  // 5.11+).
  static const bool supported = [] {
    io_uring_params params{};
    const int fd = io_uring_setup_sys(8, &params);
    if (fd < 0) {
      return false;
    }
    ::close(fd);
    const unsigned need = IORING_FEAT_NODROP | IORING_FEAT_EXT_ARG;
    return (params.features & need) == need;
  }();
  return supported;
#else
  return false;
#endif
}

EngineBackend parse_engine_backend(const std::string& name) {
  if (name == "auto") {
    return EngineBackend::kAuto;
  }
  if (name == "uring") {
    return EngineBackend::kUring;
  }
  if (name == "epoll") {
    return EngineBackend::kEpoll;
  }
  if (name == "poll") {
    return EngineBackend::kPoll;
  }
  throw Error(concat("unknown event engine '", name,
                     "' (auto | uring | epoll | poll)"));
}

const char* to_string(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::kAuto:
      return "auto";
    case EngineBackend::kUring:
      return "uring";
    case EngineBackend::kEpoll:
      return "epoll";
    case EngineBackend::kPoll:
      return "poll";
  }
  return "?";
}

std::unique_ptr<EventEngine> make_event_engine(EngineBackend backend) {
#ifdef UGC_HAVE_IO_URING
  if (backend == EngineBackend::kUring) {
    check(uring_supported(),
          "event engine 'uring' is not supported on this kernel "
          "(io_uring missing, disabled, or pre-5.11)");
    return std::make_unique<UringEngine>();
  }
  if (backend == EngineBackend::kAuto && uring_supported()) {
    try {
      return std::make_unique<UringEngine>();
    } catch (const SocketError&) {
      // The probe passed but a full-size ring failed (e.g. a locked-memory
      // limit): auto means best *available* — fall through to epoll.
    }
  }
#else
  check(backend != EngineBackend::kUring,
        "event engine 'uring' is not supported by this build/platform");
#endif
#ifdef __linux__
  if (backend == EngineBackend::kAuto || backend == EngineBackend::kEpoll) {
    return std::make_unique<EpollEngine>();
  }
#else
  check(backend != EngineBackend::kEpoll,
        "event engine 'epoll' is not supported on this platform");
#endif
  return std::make_unique<PollEngine>();
}

}  // namespace ugc::net
