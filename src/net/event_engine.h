#pragma once

// Readiness engine behind the TCP event loops (see net/frame.h for the
// src/net layering note): a registered set of fds, each carrying a caller
// token, and a wait() that reports only the fds that are actually ready.
//
// Three backends ship, selected at runtime (make_event_engine):
//
//   UringEngine — Linux io_uring in readiness mode (raw syscalls, no
//     liburing dependency): every watched fd keeps a one-shot
//     IORING_OP_POLL_ADD in flight, re-armed at the top of each wait(), so
//     a still-ready fd completes again immediately — the same level-trigger
//     contract as the other two backends, with registration changes and the
//     wait itself collapsing into a single io_uring_enter syscall per round.
//     Probed at runtime (uring_supported); kernels without io_uring (or
//     with it seccomp/sysctl-disabled) fall back under kAuto.
//   EpollEngine — Linux epoll, level-triggered. Registration lives in the
//     kernel, so wait() costs O(ready): with ten thousand idle workers and
//     three active ones, the loop touches three. Level-trigger (rather than
//     EPOLLET) keeps the readiness contract identical to poll()'s — the
//     transport's fairness bound may leave bytes buffered in a socket and
//     relies on being re-woken for them — so the backends are behaviorally
//     interchangeable and the whole net test suite runs over all of them.
//   PollEngine — portable poll(2) over a persistent pollfd array. The
//     kernel re-scans every registered fd per wait (O(watched)), which is
//     exactly the cost curve the epoll backend exists to remove; it remains
//     the fallback for hosts without epoll and the baseline the gridload
//     bench measures epoll against.
//
// Engines are single-owner, no internal locking: one engine per event-loop
// thread, same discipline as FrameDecoder.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"

namespace ugc::net {

// What a registered fd should be watched for. Write interest is toggled by
// the transport only while a write queue is non-empty, so a quiet grid arms
// kRead everywhere and wait() sleeps until real traffic.
enum class Interest : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

inline bool wants_read(Interest interest) {
  return (static_cast<std::uint8_t>(interest) & 1) != 0;
}
inline bool wants_write(Interest interest) {
  return (static_cast<std::uint8_t>(interest) & 2) != 0;
}

// One ready fd, reported by token (the transport keys peers by id, never by
// fd). `error` folds HUP/ERR together: the reader path observes the actual
// failure (EOF or errno) on its next syscall, same as the poll loop did.
struct ReadyEvent {
  std::uint64_t token = 0;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class EventEngine {
 public:
  virtual ~EventEngine() = default;

  EventEngine() = default;
  EventEngine(const EventEngine&) = delete;
  EventEngine& operator=(const EventEngine&) = delete;

  // Registers `fd` with the given interest. The token is returned verbatim
  // in every ReadyEvent for this fd. Registering an fd twice throws.
  virtual void add(int fd, std::uint64_t token, Interest interest) = 0;

  // Updates interest (and token) for a registered fd; unknown fds throw.
  virtual void modify(int fd, std::uint64_t token, Interest interest) = 0;

  // Deregisters; unknown fds are a quiet no-op (drop paths race with EOF).
  virtual void remove(int fd) = 0;

  // Blocks up to `timeout_ms` (-1 = until something is ready), then fills
  // `out` (cleared first) with every ready fd. Returns out.size(). EINTR is
  // absorbed and reported as zero events.
  virtual std::size_t wait(int timeout_ms, std::vector<ReadyEvent>& out) = 0;

  virtual std::size_t watched() const = 0;
  virtual const char* name() const = 0;
};

enum class EngineBackend {
  kAuto,   // io_uring where the kernel has it, else epoll, else poll
  kUring,  // require io_uring; make_event_engine throws where unsupported
  kEpoll,  // require epoll; make_event_engine throws where unsupported
  kPoll,   // force the portable fallback
};

// True when this build can construct the epoll backend.
bool epoll_supported();

// True when this kernel can construct the io_uring backend: probed once by
// actually setting up (and tearing down) a tiny ring, so a kernel that has
// the syscall but refuses it (seccomp, kernel.io_uring_disabled) or lacks
// the features the engine needs (NODROP, EXT_ARG) reports false and kAuto
// falls back to epoll.
bool uring_supported();

// Parses "auto" | "uring" | "epoll" | "poll" (the --engine flag value);
// throws on anything else.
EngineBackend parse_engine_backend(const std::string& name);
const char* to_string(EngineBackend backend);

std::unique_ptr<EventEngine> make_event_engine(
    EngineBackend backend = EngineBackend::kAuto);

}  // namespace ugc::net
