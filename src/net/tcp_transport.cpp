#include "net/tcp_transport.h"

#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <random>
#include <utility>

#include "common/error.h"
#include "wire/codec.h"

namespace ugc::net {

namespace {

// Engine tokens: peer ids live below 2^32, so the loop-local fds get the
// space above.
constexpr std::uint64_t kListenerToken = std::uint64_t{1} << 32;
constexpr std::uint64_t kWakeToken = std::uint64_t{1} << 33;

// Vectored-write fan-in: at most this many queued frames join one sendmsg.
// Comfortably under IOV_MAX everywhere, and past ~64 frames per syscall the
// batching win has long flattened out.
constexpr std::size_t kMaxWriteIov = 64;

// Frame-pool retention caps: buffers above the capacity cap are freed
// rather than recycled (one giant proof batch must not pin its footprint
// forever), and the pool itself stays bounded.
constexpr std::size_t kFramePoolKeepCapacity = 64 * 1024;
constexpr std::size_t kFramePoolMaxBuffers = 256;

// frames-completed-per-write histogram buckets: 0, 1, 2, 3, 4–7, 8–15, 16+.
std::size_t frames_per_write_bucket(std::size_t frames) {
  if (frames <= 3) {
    return frames;
  }
  if (frames <= 7) {
    return 4;
  }
  return frames <= 15 ? 5 : 6;
}

void poke(const Socket& wake_write) {
  if (!wake_write.valid()) {
    return;  // loop threads not running; tasks drain when they start
  }
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; drop the byte.
  (void)!::write(wake_write.fd(), &byte, 1);
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      quiescence_estimator_(options.quiescence) {
  const unsigned count = options_.io_threads < 1 ? 1 : options_.io_threads;
  for (unsigned i = 0; i < count; ++i) {
    auto loop = std::make_unique<Loop>(TimerWheel(options_.tick_ms));
    loop->index = i;
    loop->engine = make_event_engine(options_.engine);
    loop->read_scratch.resize(64 * 1024);
    loops_.push_back(std::move(loop));
  }
}

TcpTransport::~TcpTransport() { stop_threads(); }

std::uint64_t TcpTransport::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

GridNodeId TcpTransport::add_local(GridNode& node) {
  check(local_ == nullptr,
        "TcpTransport::add_local: one local protocol node per transport "
        "(run a second transport for a second node, or clear_local first)");
  const GridNodeId id{next_id_++};
  assign_id(node, id);
  local_ = &node;
  return id;
}

void TcpTransport::clear_local() { local_ = nullptr; }

void TcpTransport::listen(const std::string& host, std::uint16_t port) {
  Loop& first = *loops_[0];
  check(!first.listener.valid(), "TcpTransport::listen: already listening");
  check(!threads_started_, "TcpTransport::listen: call before run()");
  if (threaded() && options_.sharded_accept && reuse_port_supported()) {
    // Sharded accept: one SO_REUSEPORT listener per loop, the kernel
    // balances connections across them — no accept lock, no handoff.
    first.listener = tcp_listen(host, port, options_.listen_backlog, true);
    const std::uint16_t actual = local_port(first.listener);
    first.engine->add(first.listener.fd(), kListenerToken, Interest::kRead);
    for (std::size_t i = 1; i < loops_.size(); ++i) {
      Loop& loop = *loops_[i];
      loop.listener = tcp_listen(host, actual, options_.listen_backlog, true);
      loop.engine->add(loop.listener.fd(), kListenerToken, Interest::kRead);
    }
    dispatch_accept_ = false;
    return;
  }
  first.listener = tcp_listen(host, port, options_.listen_backlog);
  first.engine->add(first.listener.fd(), kListenerToken, Interest::kRead);
  dispatch_accept_ = threaded();
}

std::uint16_t TcpTransport::port() const {
  check(loops_[0]->listener.valid(), "TcpTransport::port: not listening");
  return local_port(loops_[0]->listener);
}

bool TcpTransport::listening() const { return loops_[0]->listener.valid(); }

void TcpTransport::require_auth(AuthOptions options) {
  check(!auth_.has_value(), "TcpTransport::require_auth: already required");
  std::uint64_t seed = options.nonce_seed;
  if (seed == 0) {
    // Entropy for the challenge stream: nonces must be unpredictable or the
    // anti-replay property is theater. random_device is the OS pool; the
    // clock xor guards against a degenerate random_device.
    std::random_device device;
    seed = (static_cast<std::uint64_t>(device()) << 32) ^ device() ^
           static_cast<std::uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count());
    if (seed == 0) {
      seed = 1;
    }
  }
  nonce_rng_.emplace(seed);
  auth_ = std::move(options);
}

void TcpTransport::use_identity(const auth::WorkerIdentity& identity,
                                std::string agent) {
  identity_ = identity;
  agent_ = std::move(agent);
}

TcpTransport::Loop& TcpTransport::loop_for_new_connection() {
  if (!threaded()) {
    return *loops_[0];
  }
  return *loops_[next_connect_loop_++ % loops_.size()];
}

GridNodeId TcpTransport::connect(const std::string& host, std::uint16_t port) {
  const GridNodeId id{next_id_++};
  Socket socket = tcp_connect(host, port);
  Loop& loop = loop_for_new_connection();
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    peer_index_.emplace(id.value, PeerRef{loop.index, true});
  }
  if (!threaded()) {
    adopt_connection(loop, id.value, std::move(socket), false);
  } else {
    // std::function requires copyable closures; park the move-only socket
    // in shared storage for the hop to the owning loop.
    auto shared = std::make_shared<Socket>(std::move(socket));
    submit(loop, [this, &loop, id, shared] {
      adopt_connection(loop, id.value, std::move(*shared), false);
    });
  }
  return id;
}

void TcpTransport::accept_pending(Loop& loop) {
  for (;;) {
    Socket socket = tcp_accept(loop.listener);
    if (!socket.valid()) {
      return;
    }
    const GridNodeId id{next_id_++};
    std::size_t target = loop.index;
    if (dispatch_accept_) {
      // Fallback sharding: this loop accepted for everyone; spread the
      // connections round-robin. (next_accept_loop_ is touched only by the
      // one accepting loop.)
      target = next_accept_loop_++ % loops_.size();
    }
    {
      std::lock_guard<std::mutex> lock(index_mutex_);
      peer_index_.emplace(id.value, PeerRef{target, true});
    }
    if (target == loop.index) {
      adopt_connection(loop, id.value, std::move(socket), true);
    } else {
      Loop& owner = *loops_[target];
      auto shared = std::make_shared<Socket>(std::move(socket));
      submit(owner, [this, &owner, id, shared] {
        adopt_connection(owner, id.value, std::move(*shared), true);
      });
    }
  }
}

void TcpTransport::adopt_connection(Loop& loop, std::uint32_t id,
                                    Socket socket, bool accepted) {
  Peer incoming;
  incoming.socket = std::move(socket);
  incoming.decoder = FrameDecoder(options_.max_frame_size);
  incoming.accepted = accepted;
  auto [it, inserted] = loop.peers.emplace(id, std::move(incoming));
  Peer& peer = it->second;
  loop.engine->add(peer.socket.fd(), id, Interest::kRead);
  peer.armed = Interest::kRead;
  if (options_.chaos.has_value() && options_.chaos->any()) {
    // One deterministic sampler per connection: the plan seed plus the
    // peer id fully determine every draw this link will ever make.
    peer.chaos = std::make_unique<ChaosLink>(*options_.chaos, id);
    if (accepted && peer.chaos->sample_accept_reset()) {
      chaos_accept_resets_.fetch_add(1, std::memory_order_relaxed);
      drop_peer(loop, GridNodeId{id}, "chaos accept reset");
      return;
    }
  }
  if (accepted && auth_.has_value()) {
    // Open the handshake: one fresh nonce per connection, burned when the
    // proof arrives — the replay barrier. The nonce stream is shared by
    // every accepting loop, hence the lock (handshake-time only).
    {
      std::lock_guard<std::mutex> lock(nonce_mutex_);
      peer.nonce = auth::handshake_nonce(*nonce_rng_);
    }
    HelloChallenge challenge;
    challenge.protocol = kGridProtocol;
    challenge.nonce = peer.nonce;
    queue_control_frame(loop, GridNodeId{id}, peer,
                        Message(std::move(challenge)));
  }
}

Bytes TcpTransport::acquire_frame() {
  std::lock_guard<std::mutex> lock(frame_pool_mutex_);
  if (frame_pool_.empty()) {
    return Bytes();
  }
  Bytes frame = std::move(frame_pool_.back());
  frame_pool_.pop_back();
  return frame;
}

void TcpTransport::release_frame(Bytes frame) {
  if (frame.capacity() == 0 || frame.capacity() > kFramePoolKeepCapacity) {
    return;  // nothing worth keeping, or too big to pin
  }
  frame.clear();
  std::lock_guard<std::mutex> lock(frame_pool_mutex_);
  if (frame_pool_.size() < kFramePoolMaxBuffers) {
    frame_pool_.push_back(std::move(frame));
  }
}

void TcpTransport::finish_enqueue(Loop& loop, GridNodeId to, Peer& peer) {
  const std::size_t pending = peer.write_pending;
  std::size_t hwm = loop.write_queue_hwm.load(std::memory_order_relaxed);
  while (pending > hwm &&
         !loop.write_queue_hwm.compare_exchange_weak(
             hwm, pending, std::memory_order_relaxed)) {
  }
  if (pending > options_.max_write_buffer) {
    // The peer stopped draining its socket; cutting it loose beats
    // buffering without bound. Its tasks time out through on_quiescent.
    drop_peer(loop, to, "write backpressure cap exceeded");
    return;
  }
  // No immediate write: the peer joins the flush list and the whole burst
  // it is part of goes out in one vectored write just before the next
  // engine wait (flush_pending) — that deferral is where frames-per-write
  // comes from.
  if (!peer.flush_queued) {
    peer.flush_queued = true;
    loop.flush_list.push_back(to.value);
  }
}

bool TcpTransport::flush_pending(Loop& loop) {
  bool progressed = false;
  while (!loop.flush_list.empty()) {
    loop.flush_scratch.clear();
    loop.flush_scratch.swap(loop.flush_list);
    for (const std::uint32_t raw : loop.flush_scratch) {
      const auto it = loop.peers.find(raw);
      if (it == loop.peers.end()) {
        continue;  // reaped while dirty
      }
      Peer& peer = it->second;
      peer.flush_queued = false;
      if (peer.failed) {
        continue;
      }
      const GridNodeId id{raw};
      progressed |= service_write(loop, id, peer);
      if (!peer.failed) {
        sync_interest(loop, id, peer);
      }
    }
  }
  return progressed;
}

void TcpTransport::enqueue_framed(Loop& loop, GridNodeId to, Peer& peer,
                                  Bytes framed, bool control) {
  if (!control && options_.shed_watermark > 0 &&
      peer.write_pending > options_.shed_watermark) {
    // Overload policy: drop whole protocol frames for a backlogged peer
    // rather than queue toward the kill cap — its tasks retry or abort
    // through on_quiescent while the connection (and every other peer's
    // latency) survives. Handshake frames are never shed.
    frames_shed_.fetch_add(1, std::memory_order_relaxed);
    release_frame(std::move(framed));
    return;
  }
  if (peer.chaos != nullptr && peer.chaos->delays()) {
    const std::uint64_t now = now_ms();
    const std::uint64_t release = peer.chaos->release_ms(framed.size(), now);
    if (release > now || !peer.delayed.empty()) {
      // Held in flight until its sampled release (FIFO: releases are
      // monotone per link, and nothing may overtake an earlier frame).
      chaos_frames_delayed_.fetch_add(1, std::memory_order_relaxed);
      peer.delayed.emplace_back(release, std::move(framed));
      schedule_peer_wakeup(loop, to, peer, release);
      return;
    }
  }
  if (peer.chaos != nullptr && peer.chaos->sample_disconnect()) {
    chaos_disconnects_.fetch_add(1, std::memory_order_relaxed);
    drop_peer(loop, to, "chaos mid-stream disconnect");
    release_frame(std::move(framed));
    return;
  }
  peer.write_pending += framed.size();
  peer.write_queue.push_back(std::move(framed));
  finish_enqueue(loop, to, peer);
}

void TcpTransport::schedule_peer_wakeup(Loop& loop, GridNodeId id, Peer& peer,
                                        std::uint64_t at_ms) {
  if (peer.failed) {
    return;
  }
  if (peer.wakeup.has_value()) {
    if (peer.wakeup_at_ms <= at_ms) {
      return;  // already waking at least as early
    }
    if (loop.wheel.cancel(*peer.wakeup)) {
      loop.peer_timers.erase(*peer.wakeup);
    }
    peer.wakeup.reset();
  }
  const std::uint64_t now = now_ms();
  const TimerWheel::TimerId timer =
      loop.wheel.schedule(now, at_ms > now ? at_ms - now : 0);
  loop.peer_timers.emplace(timer, id.value);
  peer.wakeup = timer;
  peer.wakeup_at_ms = at_ms;
}

bool TcpTransport::service_peer_wakeup(Loop& loop, GridNodeId id, Peer& peer) {
  if (peer.failed) {
    return false;
  }
  const std::uint64_t now = now_ms();
  if (options_.evict_stalled_after_ms > 0 && peer.write_stuck_since_ms > 0 &&
      now - peer.write_stuck_since_ms >= options_.evict_stalled_after_ms) {
    // The peer has taken nothing off its socket for the whole window:
    // evict it now instead of waiting for the byte cap — one slow
    // consumer must not hold queue memory and retry budget hostage.
    peers_evicted_.fetch_add(1, std::memory_order_relaxed);
    drop_peer(loop, id, "write queue stalled; evicted");
    return true;
  }
  if (peer.stalled_until_ms > 0 && now >= peer.stalled_until_ms) {
    peer.stalled_until_ms = 0;  // stall episode over: resume reading
    sync_interest(loop, id, peer);
  }
  bool appended = false;
  while (!peer.failed && !peer.delayed.empty() &&
         peer.delayed.front().first <= now) {
    Bytes frame = std::move(peer.delayed.front().second);
    peer.delayed.pop_front();
    if (peer.chaos->sample_disconnect()) {
      // The connection dies under a frame in flight.
      chaos_disconnects_.fetch_add(1, std::memory_order_relaxed);
      drop_peer(loop, id, "chaos mid-stream disconnect");
      release_frame(std::move(frame));
      break;
    }
    peer.write_pending += frame.size();
    peer.write_queue.push_back(std::move(frame));
    appended = true;
  }
  if (appended && !peer.failed) {
    finish_enqueue(loop, id, peer);
  }
  if (!peer.failed) {
    std::uint64_t next = 0;
    if (!peer.delayed.empty()) {
      next = peer.delayed.front().first;
    }
    if (peer.stalled_until_ms > now &&
        (next == 0 || peer.stalled_until_ms < next)) {
      next = peer.stalled_until_ms;
    }
    if (options_.evict_stalled_after_ms > 0 && peer.write_stuck_since_ms > 0) {
      const std::uint64_t evict_at =
          peer.write_stuck_since_ms + options_.evict_stalled_after_ms;
      if (next == 0 || evict_at < next) {
        next = evict_at;
      }
    }
    if (next > 0) {
      schedule_peer_wakeup(loop, id, peer, next);
    }
  }
  return appended;
}

bool TcpTransport::chaos_stall_read(Loop& loop, GridNodeId id, Peer& peer) {
  if (peer.chaos == nullptr || peer.failed) {
    return false;
  }
  const std::uint64_t now = now_ms();
  if (peer.stalled_until_ms > now) {
    return true;  // still deaf from an earlier draw
  }
  const auto stall = peer.chaos->sample_stall_ms();
  if (!stall.has_value()) {
    return false;
  }
  // Go deaf: park read interest (level-triggered engines would otherwise
  // busy-wake on the buffered bytes) and let the wakeup timer resume.
  chaos_read_stalls_.fetch_add(1, std::memory_order_relaxed);
  peer.stalled_until_ms = now + *stall;
  sync_interest(loop, id, peer);
  schedule_peer_wakeup(loop, id, peer, peer.stalled_until_ms);
  return true;
}

std::uint64_t TcpTransport::effective_quiescence_ms() const {
  return quiescence_estimator_.timeout_ms(options_.quiescence_timeout_ms);
}

void TcpTransport::queue_control_frame(Loop& loop, GridNodeId to, Peer& peer,
                                       const Message& message) {
  encode_message_into(message, loop.encode_scratch);
  check(loop.encode_scratch.size() <= options_.max_frame_size,
        "TcpTransport: ", loop.encode_scratch.size(),
        "-byte handshake frame exceeds the ", options_.max_frame_size,
        "-byte frame cap");
  Bytes framed = acquire_frame();
  append_frame(loop.encode_scratch, framed, options_.max_frame_size);
  enqueue_framed(loop, to, peer, std::move(framed), true);
}

void TcpTransport::refuse_handshake(GridNodeId from,
                                    auth::HandshakeStatus status,
                                    const auth::AuthInfo& info) {
  ++handshakes_refused_;
  Event event;
  event.kind = Event::Kind::kAuthRefused;
  event.peer = from;
  event.status = status;
  event.info = info;
  emit(std::move(event));
  throw FrameError(concat("handshake refused: ", auth::to_string(status)));
}

void TcpTransport::send(GridNodeId from, GridNodeId to,
                        const Message& message) {
  check(to.value < next_id_.load(),
        "TcpTransport::send: unknown recipient ", to.value);
  std::size_t loop_index = 0;
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    const auto it = peer_index_.find(to.value);
    if (it == peer_index_.end() || !it->second.alive) {
      return;  // peer is gone; the frame is lost, like any in-flight traffic
    }
    loop_index = it->second.loop;
  }
  Loop& loop = *loops_[loop_index];

  if (!threaded()) {
    const auto it = loop.peers.find(to.value);
    if (it == loop.peers.end() || it->second.failed) {
      return;
    }
    Peer& peer = it->second;
    encode_message_into(message, loop.encode_scratch);
    // A message the local stack cannot frame is a local bug (or a
    // misconfigured max_frame_size), never the recipient's fault: fail
    // loudly instead of letting a FrameError masquerade as a peer
    // violation.
    check(loop.encode_scratch.size() <= options_.max_frame_size,
          "TcpTransport::send: ", loop.encode_scratch.size(),
          "-byte message exceeds the ", options_.max_frame_size,
          "-byte frame cap (raise TcpTransportOptions::max_frame_size)");
    stats_.record(from, to, loop.encode_scratch.size());
    Bytes framed = acquire_frame();
    append_frame(loop.encode_scratch, framed, options_.max_frame_size);
    enqueue_framed(loop, to, peer, std::move(framed), false);
    return;
  }

  // Threaded: encode on the protocol thread (reusing one scratch — send()
  // is single-caller by contract), then hand the framed bytes to the loop
  // that owns the peer.
  encode_message_into(message, send_scratch_);
  check(send_scratch_.size() <= options_.max_frame_size,
        "TcpTransport::send: ", send_scratch_.size(),
        "-byte message exceeds the ", options_.max_frame_size,
        "-byte frame cap (raise TcpTransportOptions::max_frame_size)");
  stats_.record(from, to, send_scratch_.size());
  Bytes framed = acquire_frame();
  append_frame(send_scratch_, framed, options_.max_frame_size);
  submit(loop, [this, &loop, to, framed = std::move(framed)]() mutable {
    const auto it = loop.peers.find(to.value);
    if (it == loop.peers.end() || it->second.failed) {
      release_frame(std::move(framed));  // vanished between submit and run
      return;
    }
    enqueue_framed(loop, to, it->second, std::move(framed), false);
  });
}

bool TcpTransport::offline(GridNodeId node) const {
  if (local_ != nullptr && node == local_->id()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(index_mutex_);
  const auto it = peer_index_.find(node.value);
  return it == peer_index_.end() || !it->second.alive;
}

const NetworkStats& TcpTransport::stats() const { return stats_; }

std::vector<GridNodeId> TcpTransport::connected_peers() const {
  std::vector<GridNodeId> out;
  std::lock_guard<std::mutex> lock(index_mutex_);
  out.reserve(peer_index_.size());
  for (const auto& [id, ref] : peer_index_) {
    if (ref.alive) {
      out.push_back(GridNodeId{id});
    }
  }
  return out;
}

std::optional<Hello> TcpTransport::hello_of(GridNodeId peer) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = registry_.find(peer.value);
  return it == registry_.end() ? std::nullopt : it->second.hello;
}

std::optional<auth::AuthInfo> TcpTransport::auth_of(GridNodeId peer) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = registry_.find(peer.value);
  return it == registry_.end() ? std::nullopt : it->second.auth;
}

TcpIoStats TcpTransport::io_stats() const {
  TcpIoStats out;
  out.engine = loops_[0]->engine->name();
  out.io_loops = static_cast<unsigned>(loops_.size());
  out.peers_per_loop.assign(loops_.size(), 0);
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    for (const auto& [id, ref] : peer_index_) {
      if (ref.alive && ref.loop < out.peers_per_loop.size()) {
        ++out.peers_per_loop[ref.loop];
      }
    }
  }
  for (const auto& loop : loops_) {
    out.write_queue_hwm =
        std::max(out.write_queue_hwm,
                 loop->write_queue_hwm.load(std::memory_order_relaxed));
  }
  out.frames_undecodable = frames_undecodable_.load();
  out.streams_truncated = streams_truncated_.load();
  out.handshakes_refused = handshakes_refused_.load();
  out.read_calls = read_calls_.load(std::memory_order_relaxed);
  out.write_calls = write_calls_.load(std::memory_order_relaxed);
  out.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  out.frames_per_write.reserve(frames_per_write_hist_.size());
  for (const auto& bucket : frames_per_write_hist_) {
    out.frames_per_write.push_back(bucket.load(std::memory_order_relaxed));
  }
  out.frames_per_write_mean =
      out.write_calls > 0 ? static_cast<double>(out.frames_sent) /
                                static_cast<double>(out.write_calls)
                          : 0.0;
  out.frames_shed = frames_shed_.load();
  out.peers_evicted = peers_evicted_.load();
  out.chaos_accept_resets = chaos_accept_resets_.load();
  out.chaos_disconnects = chaos_disconnects_.load();
  out.chaos_frames_delayed = chaos_frames_delayed_.load();
  out.chaos_read_stalls = chaos_read_stalls_.load();
  out.quiescence_timeout_ms = effective_quiescence_ms();
  return out;
}

void TcpTransport::drop_peer(Loop& loop, GridNodeId id, const char* why) {
  (void)why;  // kept for debugger visibility; peers drop silently otherwise
  const auto it = loop.peers.find(id.value);
  if (it == loop.peers.end() || it->second.failed) {
    return;
  }
  // Deferred teardown: drop_peer can fire while a caller still holds this
  // Peer& (mid-dispatch, mid-send), so only mark and close here; reap()
  // erases at the top of the next loop round.
  Peer& peer = it->second;
  peer.failed = true;
  if (peer.wakeup.has_value()) {
    loop.wheel.cancel(*peer.wakeup);
    loop.peer_timers.erase(*peer.wakeup);
    peer.wakeup.reset();
  }
  if (peer.decoder.bytes_pending() > 0 && !peer.decoder.poisoned()) {
    // The stream died mid-frame: in-flight traffic was genuinely lost.
    // (Poisoned streams also leave bytes behind, but those are a framing
    // violation, not truncation — keep the counters distinct.)
    ++streams_truncated_;
  }
  loop.engine->remove(peer.socket.fd());
  peer.socket.close();
  // Recycle the frames it never drained (and the chaos-delayed ones).
  while (!peer.write_queue.empty()) {
    release_frame(std::move(peer.write_queue.front()));
    peer.write_queue.pop_front();
  }
  peer.write_pending = 0;
  peer.write_front_offset = 0;
  while (!peer.delayed.empty()) {
    release_frame(std::move(peer.delayed.front().second));
    peer.delayed.pop_front();
  }
  loop.doomed.push_back(id.value);
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    const auto ref = peer_index_.find(id.value);
    if (ref != peer_index_.end()) {
      ref->second.alive = false;
    }
  }
}

void TcpTransport::reap(Loop& loop) {
  for (const std::uint32_t raw : loop.doomed) {
    if (loop.peers.erase(raw) > 0) {
      {
        std::lock_guard<std::mutex> lock(index_mutex_);
        peer_index_.erase(raw);
      }
      Event event;
      event.kind = Event::Kind::kDisconnected;
      event.peer = GridNodeId{raw};
      emit(std::move(event));
    }
  }
  loop.doomed.clear();
}

void TcpTransport::emit(Event event) {
  if (!threaded()) {
    deliver(event);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    inbox_.push_back(std::move(event));
  }
  inbox_cv_.notify_one();
}

void TcpTransport::deliver(Event& event) {
  switch (event.kind) {
    case Event::Kind::kMessage:
      if (local_ != nullptr) {
        // Feed the adaptive-quiescence estimator with this peer's
        // inter-message gap — the real WAN cadence, jitter included.
        const std::uint64_t now = now_ms();
        const auto last = last_message_ms_.find(event.peer.value);
        if (last != last_message_ms_.end() && now >= last->second) {
          quiescence_estimator_.record_gap(now - last->second);
        }
        last_message_ms_[event.peer.value] = now;
        stats_.record(event.peer, local_->id(), event.bytes);
        local_->on_message(event.peer, event.message, *this);
      }
      return;
    case Event::Kind::kHello: {
      {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        registry_[event.peer.value].hello = event.hello;
      }
      if (on_peer_hello) {
        on_peer_hello(event.peer, event.hello);
      }
      return;
    }
    case Event::Kind::kAuthenticated: {
      {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        registry_[event.peer.value].auth = event.info;
      }
      if (on_peer_authenticated) {
        on_peer_authenticated(event.peer, event.info);
      }
      return;
    }
    case Event::Kind::kAuthRefused:
      if (on_auth_refused) {
        on_auth_refused(event.peer, event.status, event.info);
      }
      return;
    case Event::Kind::kDisconnected: {
      last_message_ms_.erase(event.peer.value);
      {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        registry_.erase(event.peer.value);
      }
      if (on_peer_disconnected) {
        on_peer_disconnected(event.peer);
      }
      return;
    }
  }
}

void TcpTransport::dispatch(Loop& loop, GridNodeId from, Peer& peer,
                            BytesView payload) {
  Message message;
  try {
    message = decode_message(payload);
  } catch (const WireError&) {
    // Hostile or corrupt bytes reject cleanly and cost only this frame.
    ++frames_undecodable_;
    return;
  }

  if (const auto* challenge = std::get_if<HelloChallenge>(&message)) {
    if (peer.accepted) {
      // Acceptors challenge; a client challenging the server is hostile.
      throw FrameError("HelloChallenge from a connecting peer");
    }
    if (challenge->protocol != kGridProtocol) {
      throw FrameError(concat("peer speaks grid protocol ",
                              challenge->protocol, ", this build speaks ",
                              kGridProtocol));
    }
    if (challenge->nonce.size() != auth::kHandshakeNonceSize) {
      throw FrameError("malformed handshake nonce");
    }
    if (identity_.has_value()) {
      queue_control_frame(
          loop, from, peer,
          Message(auth::make_hello_proof(*identity_, challenge->nonce,
                                         kGridProtocol, agent_)));
    }
    // No identity armed: ignore; the server will refuse our plain Hello.
    return;
  }
  if (const auto* proof = std::get_if<HelloProof>(&message)) {
    if (!peer.accepted) {
      return;  // servers don't prove themselves to clients; ignore
    }
    if (!auth_.has_value()) {
      throw FrameError("HelloProof on an unauthenticated grid");
    }
    if (peer.greeted) {
      return;  // one connection is one identity, same rule as plain Hello
    }
    auth::AuthInfo info;
    const auth::HandshakeStatus status = auth::verify_hello_proof(
        *proof, peer.nonce, kGridProtocol, auth_->is_banned, info);
    // Burn the nonce either way: each challenge verifies at most one proof.
    peer.nonce.clear();
    if (status != auth::HandshakeStatus::kOk) {
      refuse_handshake(from, status, info);
    }
    peer.greeted = true;
    peer.auth = info;
    // Synthesize the Hello so hello-driven callers (and hello_of) see the
    // same shape on both handshake flavors.
    peer.hello = Hello{kGridProtocol, info.agent};
    Event authed;
    authed.kind = Event::Kind::kAuthenticated;
    authed.peer = from;
    authed.info = info;
    emit(std::move(authed));
    Event greeted;
    greeted.kind = Event::Kind::kHello;
    greeted.peer = from;
    greeted.hello = *peer.hello;
    emit(std::move(greeted));
    return;
  }
  if (const auto* hello = std::get_if<Hello>(&message)) {
    if (!peer.accepted) {
      return;  // connectors don't get greeted; ignore stray Hellos
    }
    if (peer.greeted) {
      // One connection is one identity: a repeated Hello must not re-fire
      // registration (a cheater could otherwise fill every worker slot of
      // a gridd from a single connection).
      return;
    }
    if (auth_.has_value()) {
      // This grid requires a proof; an anonymous Hello is a refusal, not a
      // registration.
      refuse_handshake(from, auth::HandshakeStatus::kUnauthenticated, {});
    }
    if (hello->protocol != kGridProtocol) {
      throw FrameError(concat("peer speaks grid protocol ", hello->protocol,
                              ", this build speaks ", kGridProtocol));
    }
    peer.greeted = true;
    peer.hello = *hello;
    Event event;
    event.kind = Event::Kind::kHello;
    event.peer = from;
    event.hello = *hello;
    emit(std::move(event));
    return;
  }
  if (peer.accepted && !peer.greeted) {
    // Protocol traffic before the handshake: not a grid client.
    if (auth_.has_value()) {
      refuse_handshake(from, auth::HandshakeStatus::kUnauthenticated, {});
    }
    throw FrameError("protocol frame before Hello");
  }

  Event event;
  event.kind = Event::Kind::kMessage;
  event.peer = from;
  event.bytes = payload.size();
  event.message = std::move(message);
  emit(std::move(event));
}

bool TcpTransport::service_read(Loop& loop, GridNodeId id, Peer& peer) {
  bool progressed = false;
  // Fairness bound: one peer gets at most this many recv() rounds before
  // control returns to the engine, so a flooding (or simply bulk-uploading)
  // peer cannot starve the other connections, the accept queue, or the
  // timer wheel. Whatever remains buffered re-arms readiness immediately
  // (both backends are level-triggered for exactly this reason).
  for (int round = 0; !peer.failed && round < 16; ++round) {
    read_calls_.fetch_add(1, std::memory_order_relaxed);
    const IoResult result =
        read_some(peer.socket, std::span<std::uint8_t>(loop.read_scratch));
    if (result.status == IoStatus::kOk) {
      progressed = true;
      try {
        peer.decoder.feed(BytesView(loop.read_scratch.data(), result.bytes));
        while (const auto frame = peer.decoder.next()) {
          dispatch(loop, id, peer, *frame);
          if (peer.failed) {
            break;  // a dispatch side effect (backpressure) doomed it
          }
        }
      } catch (const FrameError&) {
        // Oversized length, pre-Hello traffic, or a protocol mismatch: the
        // stream is unusable.
        drop_peer(loop, id, "framing violation");
        return true;
      }
      continue;
    }
    if (result.status == IoStatus::kWouldBlock) {
      return progressed;
    }
    // Orderly EOF or a connection error.
    drop_peer(loop, id,
              result.status == IoStatus::kClosed ? "eof" : "io error");
    return true;
  }
  return progressed;
}

std::size_t TcpTransport::advance_write_queue(Peer& peer,
                                              std::size_t written) {
  peer.write_pending -= written;
  std::size_t frames = 0;
  while (written > 0) {
    Bytes& front = peer.write_queue.front();
    const std::size_t left = front.size() - peer.write_front_offset;
    if (written < left) {
      peer.write_front_offset += written;  // resume mid-frame next time
      break;
    }
    written -= left;
    peer.write_front_offset = 0;
    release_frame(std::move(front));
    peer.write_queue.pop_front();
    ++frames;
  }
  return frames;
}

bool TcpTransport::service_write(Loop& loop, GridNodeId id, Peer& peer) {
  bool progressed = false;
  while (!peer.failed && peer.write_pending > 0) {
    // Gather the queue front into one vectored write: every queued frame
    // (up to the fan-in cap) goes out in a single sendmsg.
    iovec iov[kMaxWriteIov];
    std::size_t iov_count = 0;
    std::size_t want = 0;
    std::size_t skip = peer.write_front_offset;
    for (const Bytes& frame : peer.write_queue) {
      if (iov_count == kMaxWriteIov) {
        break;
      }
      iov[iov_count].iov_base =
          const_cast<std::uint8_t*>(frame.data() + skip);
      iov[iov_count].iov_len = frame.size() - skip;
      want += iov[iov_count].iov_len;
      ++iov_count;
      skip = 0;
    }
    std::size_t clamped = want;
    if (peer.chaos != nullptr) {
      // The chaos short-write model composes with batching: trim the iovec
      // tail to the clamped byte count, and resumption picks up mid-frame.
      clamped = peer.chaos->clamp_write(want);
      std::size_t budget = clamped;
      std::size_t used = 0;
      while (used < iov_count && budget > 0) {
        if (iov[used].iov_len > budget) {
          iov[used].iov_len = budget;
        }
        budget -= iov[used].iov_len;
        ++used;
      }
      iov_count = used;
    }
    write_calls_.fetch_add(1, std::memory_order_relaxed);
    const IoResult result = write_vec(peer.socket, iov, iov_count);
    if (result.status == IoStatus::kOk) {
      if (result.bytes == 0) {
        break;  // kernel took nothing; try again next round
      }
      const std::size_t frames = advance_write_queue(peer, result.bytes);
      frames_sent_.fetch_add(frames, std::memory_order_relaxed);
      frames_per_write_hist_[frames_per_write_bucket(frames)].fetch_add(
          1, std::memory_order_relaxed);
      progressed = true;
      if (clamped < want) {
        break;  // chaos short write: yield; level-trigger re-wakes us
      }
      continue;
    }
    if (result.status == IoStatus::kWouldBlock) {
      break;
    }
    // EPIPE/ECONNRESET and friends: the connection is dead — drop it here
    // rather than waiting for the read path to notice (close_all only
    // services writes, so it depends on this branch to stop draining).
    drop_peer(loop, id, "write error");
    return true;
  }
  if (!peer.failed) {
    // Eviction bookkeeping: mark when a backlog first appeared, clear it
    // the moment the queue fully drains.
    if (peer.write_pending == 0) {
      peer.write_stuck_since_ms = 0;
    } else if (peer.write_stuck_since_ms == 0) {
      peer.write_stuck_since_ms = now_ms();
      if (options_.evict_stalled_after_ms > 0) {
        schedule_peer_wakeup(
            loop, id, peer,
            peer.write_stuck_since_ms + options_.evict_stalled_after_ms);
      }
    }
  }
  return progressed;
}

void TcpTransport::sync_interest(Loop& loop, GridNodeId id, Peer& peer) {
  if (peer.failed || !peer.socket.valid()) {
    return;
  }
  const bool want_write = peer.write_pending > 0;
  const bool want_read = peer.stalled_until_ms == 0;  // deaf while stalled
  Interest desired = Interest::kNone;
  if (want_read && want_write) {
    desired = Interest::kReadWrite;
  } else if (want_read) {
    desired = Interest::kRead;
  } else if (want_write) {
    desired = Interest::kWrite;
  }
  if (desired == peer.armed) {
    return;
  }
  loop.engine->modify(peer.socket.fd(), id.value, desired);
  peer.armed = desired;
}

bool TcpTransport::pump_local_flush() {
  if (local_ == nullptr) {
    return false;
  }
  bool any = false;
  while (local_->flush(*this)) {
    any = true;
  }
  return any;
}

void TcpTransport::arm_quiescence(std::uint64_t now) {
  Loop& loop = *loops_[0];
  if (loop.quiescence_timer.has_value()) {
    loop.wheel.cancel(*loop.quiescence_timer);
  }
  loop.quiescence_timer = loop.wheel.schedule(now, effective_quiescence_ms());
}

void TcpTransport::run(const std::function<bool()>& done) {
  if (threaded()) {
    run_threaded(done);
  } else {
    run_single(done);
  }
}

void TcpTransport::run_single(const std::function<bool()>& done) {
  Loop& loop = *loops_[0];
  arm_quiescence(now_ms());
  for (;;) {
    // Reap first so a disconnect observed last round is visible to the
    // predicate now — a gridworker waiting on its supervisor's EOF must
    // not sleep one extra wait timeout.
    reap(loop);
    if (done()) {
      break;
    }

    // Everything this round enqueued goes out now, one vectored write per
    // dirty peer, so the wait below starts with the kernel already fed.
    flush_pending(loop);

    // Sleep until I/O or the next timer; the wheel's earliest deadline caps
    // the wait so quiescence can't be missed.
    const std::uint64_t now_before = now_ms();
    std::uint64_t timeout = options_.tick_ms * 10;
    if (const auto deadline = loop.wheel.next_deadline_ms()) {
      timeout = *deadline > now_before ? *deadline - now_before : 0;
    }
    loop.engine->wait(
        static_cast<int>(std::min<std::uint64_t>(timeout, 1000)),
        loop.ready_scratch);

    bool progressed = false;
    for (const ReadyEvent& event : loop.ready_scratch) {
      if (event.token == kListenerToken) {
        accept_pending(loop);
        progressed = true;
        continue;
      }
      const GridNodeId id{static_cast<std::uint32_t>(event.token)};
      const auto it = loop.peers.find(id.value);
      if (it == loop.peers.end() || it->second.failed) {
        continue;  // dropped earlier in this round
      }
      if ((event.readable && !chaos_stall_read(loop, id, it->second)) ||
          event.error) {
        progressed |= service_read(loop, id, it->second);
      }
      if (!it->second.failed && event.writable) {
        progressed |= service_write(loop, id, it->second);
        sync_interest(loop, id, it->second);
      }
    }

    progressed |= pump_local_flush();

    if (progressed) {
      // Re-arm before advancing, so the quiescence timer can never fire
      // out of a round that saw traffic.
      arm_quiescence(now_ms());
    }
    // Always advance the wheel — peer-service timers (chaos releases,
    // stall ends, eviction deadlines) must fire on time even while the
    // grid is busy, not only on idle rounds.
    loop.fired_scratch.clear();
    loop.wheel.advance(now_ms(), loop.fired_scratch);
    bool released = false;
    for (const TimerWheel::TimerId timer : loop.fired_scratch) {
      if (loop.quiescence_timer == timer) {
        loop.quiescence_timer.reset();
        // The grid went quiet for a full timeout: same contract as
        // SimTransport's quiescence — flush first, then the timeout hook.
        pump_local_flush();
        if (local_ != nullptr) {
          local_->on_quiescent(*this);
        }
        arm_quiescence(now_ms());
        continue;
      }
      const auto owner = loop.peer_timers.find(timer);
      if (owner == loop.peer_timers.end()) {
        continue;  // canceled peer timer that still fired this round
      }
      const GridNodeId id{owner->second};
      loop.peer_timers.erase(owner);
      const auto it = loop.peers.find(id.value);
      if (it == loop.peers.end() || it->second.failed) {
        continue;
      }
      it->second.wakeup.reset();
      released |= service_peer_wakeup(loop, id, it->second);
    }
    if (released) {
      // Chaos frames reaching the wire count as traffic for quiescence.
      arm_quiescence(now_ms());
    }
  }
}

void TcpTransport::run_threaded(const std::function<bool()>& done) {
  start_threads();
  // The deadline re-reads effective_quiescence_ms() at every re-arm: in
  // adaptive mode the window tracks the gap estimator as samples land.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(effective_quiescence_ms());
  std::vector<Event> batch;
  for (;;) {
    if (done()) {
      break;
    }
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(inbox_mutex_);
      inbox_cv_.wait_until(lock, deadline, [&] { return !inbox_.empty(); });
      while (!inbox_.empty()) {
        batch.push_back(std::move(inbox_.front()));
        inbox_.pop_front();
      }
    }
    if (!batch.empty()) {
      for (Event& event : batch) {
        deliver(event);
      }
      pump_local_flush();
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(effective_quiescence_ms());
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      // Quiet for a full timeout across every loop: flush, then the
      // timeout hook — the same contract the single-loop wheel drives.
      pump_local_flush();
      if (local_ != nullptr) {
        local_->on_quiescent(*this);
      }
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(effective_quiescence_ms());
    }
  }
}

void TcpTransport::submit(Loop& loop, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(loop.tasks_mutex);
    loop.tasks.push_back(std::move(task));
  }
  poke(loop.wake_write);
}

void TcpTransport::start_threads() {
  if (threads_started_) {
    return;
  }
  stop_ = false;
  for (auto& loop_ptr : loops_) {
    Loop& loop = *loop_ptr;
    auto pipe = make_wake_pipe();
    loop.wake_read = std::move(pipe.first);
    loop.wake_write = std::move(pipe.second);
    loop.engine->add(loop.wake_read.fd(), kWakeToken, Interest::kRead);
    loop.thread = std::thread([this, &loop] { loop_thread(loop); });
  }
  threads_started_ = true;
}

void TcpTransport::stop_threads() {
  if (!threads_started_) {
    return;
  }
  stop_ = true;
  for (auto& loop : loops_) {
    poke(loop->wake_write);
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) {
      loop->thread.join();
    }
  }
  for (auto& loop : loops_) {
    loop->engine->remove(loop->wake_read.fd());
    loop->wake_read.close();
    loop->wake_write.close();
    loop->thread = std::thread();
  }
  threads_started_ = false;
  stop_ = false;
}

void TcpTransport::loop_thread(Loop& loop) {
  std::vector<std::function<void()>> tasks;
  try {
    for (;;) {
      tasks.clear();
      {
        std::lock_guard<std::mutex> lock(loop.tasks_mutex);
        tasks.swap(loop.tasks);
      }
      for (auto& task : tasks) {
        task();
      }
      reap(loop);
      if (stop_.load()) {
        break;
      }

      // Flush this round's enqueues (tasks above included) as batched
      // vectored writes before sleeping.
      flush_pending(loop);

      int timeout = -1;
      if (loop.wheel.armed()) {
        const std::uint64_t now = now_ms();
        std::uint64_t wait = 0;
        if (const auto deadline = loop.wheel.next_deadline_ms()) {
          wait = *deadline > now ? *deadline - now : 0;
        }
        timeout = static_cast<int>(std::min<std::uint64_t>(wait, 1000));
      }
      loop.engine->wait(timeout, loop.ready_scratch);

      for (const ReadyEvent& event : loop.ready_scratch) {
        if (event.token == kWakeToken) {
          drain_wake_pipe(loop.wake_read);
          continue;
        }
        if (event.token == kListenerToken) {
          accept_pending(loop);
          continue;
        }
        const GridNodeId id{static_cast<std::uint32_t>(event.token)};
        const auto it = loop.peers.find(id.value);
        if (it == loop.peers.end() || it->second.failed) {
          continue;
        }
        if ((event.readable && !chaos_stall_read(loop, id, it->second)) ||
            event.error) {
          service_read(loop, id, it->second);
        }
        if (!it->second.failed && event.writable) {
          service_write(loop, id, it->second);
          sync_interest(loop, id, it->second);
        }
      }

      if (loop.wheel.armed()) {
        loop.fired_scratch.clear();
        loop.wheel.advance(now_ms(), loop.fired_scratch);
        for (const TimerWheel::TimerId timer : loop.fired_scratch) {
          // Threaded loops arm only peer-service timers (quiescence lives
          // on the protocol thread's deadline).
          const auto owner = loop.peer_timers.find(timer);
          if (owner == loop.peer_timers.end()) {
            continue;
          }
          const GridNodeId id{owner->second};
          loop.peer_timers.erase(owner);
          const auto it = loop.peers.find(id.value);
          if (it == loop.peers.end() || it->second.failed) {
            continue;
          }
          it->second.wakeup.reset();
          service_peer_wakeup(loop, id, it->second);
        }
      }
    }
  } catch (const std::exception&) {
    // A catastrophic loop failure (engine syscall error) downs this loop;
    // its peers go quiet and the protocol layer times them out through
    // on_quiescent. The surviving loops keep the grid up.
  }
}

void TcpTransport::drain_and_close(Loop& loop, std::uint64_t deadline_ms) {
  reap(loop);
  // Frames enqueued since the last round haven't been written yet
  // (batched-flush discipline): give them one pass before deciding who
  // still owes the kernel bytes.
  flush_pending(loop);
  reap(loop);
  // Stop accepting, and demote every peer to write-only interest so the
  // wait below wakes exactly when the kernel can take more bytes — readable
  // peers must not busy-wake a loop that is only draining.
  if (loop.listener.valid()) {
    loop.engine->remove(loop.listener.fd());
  }
  for (auto& [id, peer] : loop.peers) {
    if (peer.failed || !peer.socket.valid()) {
      continue;
    }
    if (peer.write_pending > 0) {
      loop.engine->modify(peer.socket.fd(), id, Interest::kWrite);
      peer.armed = Interest::kWrite;
    } else {
      loop.engine->remove(peer.socket.fd());
      peer.armed = Interest::kNone;
    }
  }
  for (;;) {
    reap(loop);
    // Funeral drain still honors the chaos latency model: frames whose
    // release time has come move into the write queue (a verdict sampled
    // with WAN delay must not be dropped just because the grid finished
    // first). No disconnect sampling here — chaos had its chance while
    // the session was live; the funeral's only job is delivery.
    const std::uint64_t release_now = now_ms();
    for (auto& [id, peer] : loop.peers) {
      if (peer.failed || !peer.socket.valid()) {
        continue;
      }
      bool appended = false;
      while (!peer.delayed.empty() &&
             peer.delayed.front().first <= release_now) {
        Bytes frame = std::move(peer.delayed.front().second);
        peer.delayed.pop_front();
        peer.write_pending += frame.size();
        peer.write_queue.push_back(std::move(frame));
        appended = true;
      }
      if (appended) {
        service_write(loop, GridNodeId{id}, peer);
        if (peer.failed || !peer.socket.valid()) {
          continue;
        }
        if (peer.write_pending > 0) {
          if (peer.armed == Interest::kNone) {
            loop.engine->add(peer.socket.fd(), id, Interest::kWrite);
          } else {
            loop.engine->modify(peer.socket.fd(), id, Interest::kWrite);
          }
          peer.armed = Interest::kWrite;
        } else if (peer.armed != Interest::kNone) {
          loop.engine->remove(peer.socket.fd());
          peer.armed = Interest::kNone;
        }
      }
    }
    bool pending = false;
    for (const auto& [id, peer] : loop.peers) {
      if (!peer.failed && (peer.write_pending > 0 || !peer.delayed.empty())) {
        pending = true;
        break;
      }
    }
    const std::uint64_t now = now_ms();
    if (!pending || now >= deadline_ms) {
      break;
    }
    // The sleep is bounded by the real drain deadline (and any armed
    // timer), not a constant interval: an idle drain sleeps until a socket
    // turns writable, a near-due deadline is honored on time.
    std::uint64_t timeout = deadline_ms - now;
    if (loop.wheel.armed()) {
      if (const auto wheel_deadline = loop.wheel.next_deadline_ms()) {
        timeout = std::min(
            timeout, *wheel_deadline > now ? *wheel_deadline - now : 0);
      }
    }
    loop.engine->wait(
        static_cast<int>(std::min<std::uint64_t>(
            timeout,
            static_cast<std::uint64_t>(std::numeric_limits<int>::max()))),
        loop.ready_scratch);
    for (const ReadyEvent& event : loop.ready_scratch) {
      if (event.token == kWakeToken) {
        drain_wake_pipe(loop.wake_read);
        continue;
      }
      if (event.token == kListenerToken) {
        continue;  // already deregistered; stale report
      }
      const GridNodeId id{static_cast<std::uint32_t>(event.token)};
      const auto it = loop.peers.find(id.value);
      if (it == loop.peers.end() || it->second.failed) {
        continue;
      }
      if (event.writable || event.error) {
        service_write(loop, id, it->second);
        if (!it->second.failed && it->second.write_pending == 0) {
          loop.engine->remove(it->second.socket.fd());
          it->second.armed = Interest::kNone;
        }
      }
    }
  }
  // Teardown: whatever didn't drain is abandoned, silently (close_all is
  // the transport's funeral, not a disconnect).
  {
    std::lock_guard<std::mutex> index_lock(index_mutex_);
    std::lock_guard<std::mutex> registry_lock(registry_mutex_);
    for (const auto& [id, peer] : loop.peers) {
      peer_index_.erase(id);
      registry_.erase(id);
    }
  }
  for (auto& [id, peer] : loop.peers) {
    if (!peer.failed && peer.socket.valid()) {
      loop.engine->remove(peer.socket.fd());
    }
  }
  loop.peers.clear();
  loop.doomed.clear();
  loop.flush_list.clear();
  loop.peer_timers.clear();  // any still-armed timers fire into nothing
  loop.listener.close();
}

void TcpTransport::close_all(std::uint64_t drain_timeout_ms) {
  const std::uint64_t deadline = now_ms() + drain_timeout_ms;
  if (!threaded()) {
    drain_and_close(*loops_[0], deadline);
    return;
  }
  if (!threads_started_) {
    // Loops never ran: nothing is registered with the kernel beyond what
    // RAII tears down. Drop parked tasks (their shared sockets close) and
    // local state.
    for (auto& loop : loops_) {
      {
        std::lock_guard<std::mutex> lock(loop->tasks_mutex);
        loop->tasks.clear();
      }
      loop->peers.clear();
      loop->doomed.clear();
      loop->listener.close();
    }
    std::lock_guard<std::mutex> index_lock(index_mutex_);
    std::lock_guard<std::mutex> registry_lock(registry_mutex_);
    peer_index_.clear();
    registry_.clear();
    return;
  }
  // Each loop drains its own peers on its own thread; wait for all of them
  // (with a slack bound in case a loop died), then stop the threads.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t done_count = 0;
  for (auto& loop_ptr : loops_) {
    Loop& loop = *loop_ptr;
    submit(loop, [this, &loop, deadline, &done_mutex, &done_cv,
                  &done_count] {
      drain_and_close(loop, deadline);
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        ++done_count;
      }
      done_cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait_for(lock, std::chrono::milliseconds(drain_timeout_ms + 1000),
                     [&] { return done_count == loops_.size(); });
  }
  stop_threads();
}

}  // namespace ugc::net
