#include "net/tcp_transport.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>

#include "common/error.h"
#include "wire/codec.h"

namespace ugc::net {

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(options),
      wheel_(options.tick_ms),
      epoch_(std::chrono::steady_clock::now()),
      read_scratch_(64 * 1024) {}

TcpTransport::~TcpTransport() = default;

std::uint64_t TcpTransport::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

GridNodeId TcpTransport::add_local(GridNode& node) {
  check(local_ == nullptr,
        "TcpTransport::add_local: one local protocol node per transport "
        "(run a second transport for a second node)");
  const GridNodeId id{next_id_++};
  assign_id(node, id);
  local_ = &node;
  return id;
}

void TcpTransport::listen(const std::string& host, std::uint16_t port) {
  check(!listener_.valid(), "TcpTransport::listen: already listening");
  listener_ = tcp_listen(host, port);
}

std::uint16_t TcpTransport::port() const {
  check(listener_.valid(), "TcpTransport::port: not listening");
  return local_port(listener_);
}

void TcpTransport::require_auth(AuthOptions options) {
  check(!auth_.has_value(), "TcpTransport::require_auth: already required");
  std::uint64_t seed = options.nonce_seed;
  if (seed == 0) {
    // Entropy for the challenge stream: nonces must be unpredictable or the
    // anti-replay property is theater. random_device is the OS pool; the
    // clock xor guards against a degenerate random_device.
    std::random_device device;
    seed = (static_cast<std::uint64_t>(device()) << 32) ^ device() ^
           static_cast<std::uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count());
    if (seed == 0) {
      seed = 1;
    }
  }
  nonce_rng_.emplace(seed);
  auth_ = std::move(options);
}

void TcpTransport::use_identity(const auth::WorkerIdentity& identity,
                                std::string agent) {
  identity_ = identity;
  agent_ = std::move(agent);
}

GridNodeId TcpTransport::connect(const std::string& host, std::uint16_t port) {
  const GridNodeId id{next_id_++};
  Peer peer;
  peer.socket = tcp_connect(host, port);
  peer.decoder = FrameDecoder(options_.max_frame_size);
  peer.accepted = false;
  peers_.emplace(id.value, std::move(peer));
  return id;
}

void TcpTransport::accept_pending() {
  for (;;) {
    Socket socket = tcp_accept(listener_);
    if (!socket.valid()) {
      return;
    }
    const GridNodeId id{next_id_++};
    Peer peer;
    peer.socket = std::move(socket);
    peer.decoder = FrameDecoder(options_.max_frame_size);
    peer.accepted = true;
    auto [it, inserted] = peers_.emplace(id.value, std::move(peer));
    if (auth_.has_value()) {
      // Open the handshake: one fresh nonce per connection, burned when the
      // proof arrives — the replay barrier.
      it->second.nonce = auth::handshake_nonce(*nonce_rng_);
      HelloChallenge challenge;
      challenge.protocol = kGridProtocol;
      challenge.nonce = it->second.nonce;
      queue_control_frame(id, it->second, Message(std::move(challenge)));
    }
    arm_quiescence(now_ms());
  }
}

void TcpTransport::queue_control_frame(GridNodeId to, Peer& peer,
                                       const Message& message) {
  encode_message_into(message, encode_scratch_);
  check(encode_scratch_.size() <= options_.max_frame_size,
        "TcpTransport: ", encode_scratch_.size(),
        "-byte handshake frame exceeds the ", options_.max_frame_size,
        "-byte frame cap");
  append_frame(encode_scratch_, peer.write_buffer, options_.max_frame_size);
  service_write(to, peer);
}

void TcpTransport::refuse_handshake(GridNodeId from,
                                    auth::HandshakeStatus status,
                                    const auth::AuthInfo& info) {
  ++handshakes_refused_;
  if (on_auth_refused) {
    on_auth_refused(from, status, info);
  }
  throw FrameError(concat("handshake refused: ", auth::to_string(status)));
}

void TcpTransport::send(GridNodeId from, GridNodeId to,
                        const Message& message) {
  check(to.value < next_id_, "TcpTransport::send: unknown recipient ",
        to.value);
  const auto it = peers_.find(to.value);
  if (it == peers_.end() || it->second.failed) {
    return;  // peer is gone; the frame is lost, like any in-flight traffic
  }
  Peer& peer = it->second;

  encode_message_into(message, encode_scratch_);
  // A message the local stack cannot frame is a local bug (or a
  // misconfigured max_frame_size), never the recipient's fault: fail loudly
  // instead of letting a FrameError masquerade as a peer violation.
  check(encode_scratch_.size() <= options_.max_frame_size,
        "TcpTransport::send: ", encode_scratch_.size(),
        "-byte message exceeds the ", options_.max_frame_size,
        "-byte frame cap (raise TcpTransportOptions::max_frame_size)");
  stats_.record(from, to, encode_scratch_.size());
  append_frame(encode_scratch_, peer.write_buffer, options_.max_frame_size);
  if (peer.write_buffer.size() - peer.write_offset >
      options_.max_write_buffer) {
    // The peer stopped draining its socket; cutting it loose beats
    // buffering without bound. Its tasks time out through on_quiescent.
    drop_peer(to, "write backpressure cap exceeded");
    return;
  }
  // Opportunistic write: most frames fit the socket buffer, so the common
  // case never waits for the next poll round.
  service_write(to, peer);
}

bool TcpTransport::offline(GridNodeId node) const {
  if (local_ != nullptr && node == local_->id()) {
    return false;
  }
  const auto it = peers_.find(node.value);
  return it == peers_.end() || it->second.failed;
}

const NetworkStats& TcpTransport::stats() const { return stats_; }

std::vector<GridNodeId> TcpTransport::connected_peers() const {
  std::vector<GridNodeId> out;
  out.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) {
    if (!peer.failed) {
      out.push_back(GridNodeId{id});
    }
  }
  return out;
}

std::optional<Hello> TcpTransport::hello_of(GridNodeId peer) const {
  const auto it = peers_.find(peer.value);
  return it == peers_.end() ? std::nullopt : it->second.hello;
}

std::optional<auth::AuthInfo> TcpTransport::auth_of(GridNodeId peer) const {
  const auto it = peers_.find(peer.value);
  return it == peers_.end() ? std::nullopt : it->second.auth;
}

void TcpTransport::drop_peer(GridNodeId id, const char* why) {
  (void)why;  // kept for debugger visibility; peers drop silently otherwise
  const auto it = peers_.find(id.value);
  if (it == peers_.end() || it->second.failed) {
    return;
  }
  // Deferred teardown: drop_peer can fire while a caller still holds this
  // Peer& (mid-dispatch, mid-send), so only mark and close here; reap()
  // erases at the top of the next loop round.
  Peer& peer = it->second;
  peer.failed = true;
  if (peer.decoder.bytes_pending() > 0 && !peer.decoder.poisoned()) {
    // The stream died mid-frame: in-flight traffic was genuinely lost.
    // (Poisoned streams also leave bytes behind, but those are a framing
    // violation, not truncation — keep the counters distinct.)
    ++streams_truncated_;
  }
  peer.socket.close();
  doomed_.push_back(id.value);
}

void TcpTransport::reap() {
  for (const std::uint32_t raw : doomed_) {
    if (peers_.erase(raw) > 0 && on_peer_disconnected) {
      on_peer_disconnected(GridNodeId{raw});
    }
  }
  doomed_.clear();
}

void TcpTransport::dispatch(GridNodeId from, Peer& peer, BytesView payload) {
  Message message;
  try {
    message = decode_message(payload);
  } catch (const WireError&) {
    // Hostile or corrupt bytes reject cleanly and cost only this frame.
    ++frames_undecodable_;
    return;
  }

  if (const auto* challenge = std::get_if<HelloChallenge>(&message)) {
    if (peer.accepted) {
      // Acceptors challenge; a client challenging the server is hostile.
      throw FrameError("HelloChallenge from a connecting peer");
    }
    if (challenge->protocol != kGridProtocol) {
      throw FrameError(concat("peer speaks grid protocol ",
                              challenge->protocol, ", this build speaks ",
                              kGridProtocol));
    }
    if (challenge->nonce.size() != auth::kHandshakeNonceSize) {
      throw FrameError("malformed handshake nonce");
    }
    if (identity_.has_value()) {
      queue_control_frame(
          from, peer,
          Message(auth::make_hello_proof(*identity_, challenge->nonce,
                                         kGridProtocol, agent_)));
    }
    // No identity armed: ignore; the server will refuse our plain Hello.
    return;
  }
  if (const auto* proof = std::get_if<HelloProof>(&message)) {
    if (!peer.accepted) {
      return;  // servers don't prove themselves to clients; ignore
    }
    if (!auth_.has_value()) {
      throw FrameError("HelloProof on an unauthenticated grid");
    }
    if (peer.greeted) {
      return;  // one connection is one identity, same rule as plain Hello
    }
    auth::AuthInfo info;
    const auth::HandshakeStatus status = auth::verify_hello_proof(
        *proof, peer.nonce, kGridProtocol, auth_->is_banned, info);
    // Burn the nonce either way: each challenge verifies at most one proof.
    peer.nonce.clear();
    if (status != auth::HandshakeStatus::kOk) {
      refuse_handshake(from, status, info);
    }
    peer.greeted = true;
    peer.auth = info;
    // Synthesize the Hello so hello-driven callers (and hello_of) see the
    // same shape on both handshake flavors.
    peer.hello = Hello{kGridProtocol, info.agent};
    if (on_peer_authenticated) {
      on_peer_authenticated(from, info);
    }
    if (on_peer_hello) {
      on_peer_hello(from, *peer.hello);
    }
    return;
  }
  if (const auto* hello = std::get_if<Hello>(&message)) {
    if (!peer.accepted) {
      return;  // connectors don't get greeted; ignore stray Hellos
    }
    if (peer.greeted) {
      // One connection is one identity: a repeated Hello must not re-fire
      // registration (a cheater could otherwise fill every worker slot of
      // a gridd from a single connection).
      return;
    }
    if (auth_.has_value()) {
      // This grid requires a proof; an anonymous Hello is a refusal, not a
      // registration.
      refuse_handshake(from, auth::HandshakeStatus::kUnauthenticated, {});
    }
    if (hello->protocol != kGridProtocol) {
      throw FrameError(concat("peer speaks grid protocol ", hello->protocol,
                              ", this build speaks ", kGridProtocol));
    }
    peer.greeted = true;
    peer.hello = *hello;
    if (on_peer_hello) {
      on_peer_hello(from, *hello);
    }
    return;
  }
  if (peer.accepted && !peer.greeted) {
    // Protocol traffic before the handshake: not a grid client.
    if (auth_.has_value()) {
      refuse_handshake(from, auth::HandshakeStatus::kUnauthenticated, {});
    }
    throw FrameError("protocol frame before Hello");
  }

  if (local_ != nullptr) {
    stats_.record(from, local_->id(), payload.size());
    local_->on_message(from, message, *this);
  }
}

bool TcpTransport::service_read(GridNodeId id, Peer& peer) {
  bool progressed = false;
  // Fairness bound: one peer gets at most this many recv() rounds before
  // control returns to poll(), so a flooding (or simply bulk-uploading)
  // peer cannot starve the other connections, the accept queue, or the
  // timer wheel. Whatever remains buffered re-arms POLLIN immediately.
  for (int round = 0; !peer.failed && round < 16; ++round) {
    const IoResult result =
        read_some(peer.socket, std::span<std::uint8_t>(read_scratch_));
    if (result.status == IoStatus::kOk) {
      progressed = true;
      try {
        peer.decoder.feed(BytesView(read_scratch_.data(), result.bytes));
        while (const auto frame = peer.decoder.next()) {
          dispatch(id, peer, *frame);
          if (peer.failed) {
            break;  // a dispatch side effect (backpressure) doomed it
          }
        }
      } catch (const FrameError&) {
        // Oversized length, pre-Hello traffic, or a protocol mismatch: the
        // stream is unusable.
        drop_peer(id, "framing violation");
        return true;
      }
      continue;
    }
    if (result.status == IoStatus::kWouldBlock) {
      return progressed;
    }
    // Orderly EOF or a connection error.
    drop_peer(id, result.status == IoStatus::kClosed ? "eof" : "io error");
    return true;
  }
  return progressed;
}

bool TcpTransport::service_write(GridNodeId id, Peer& peer) {
  bool progressed = false;
  while (!peer.failed && peer.write_offset < peer.write_buffer.size()) {
    const IoResult result = write_some(
        peer.socket,
        BytesView(peer.write_buffer).subspan(peer.write_offset));
    if (result.status == IoStatus::kOk) {
      if (result.bytes == 0) {
        return progressed;  // kernel took nothing; try again next round
      }
      peer.write_offset += result.bytes;
      progressed = true;
      continue;
    }
    if (result.status == IoStatus::kWouldBlock) {
      return progressed;
    }
    // EPIPE/ECONNRESET and friends: the connection is dead — drop it here
    // rather than waiting for the read path to notice (close_all only
    // services writes, so it depends on this branch to stop draining).
    drop_peer(id, "write error");
    return true;
  }
  if (peer.write_offset > 0) {
    peer.write_buffer.erase(
        peer.write_buffer.begin(),
        peer.write_buffer.begin() +
            static_cast<std::ptrdiff_t>(peer.write_offset));
    peer.write_offset = 0;
  }
  return progressed;
}

bool TcpTransport::pump_local_flush() {
  if (local_ == nullptr) {
    return false;
  }
  bool any = false;
  while (local_->flush(*this)) {
    any = true;
  }
  return any;
}

void TcpTransport::arm_quiescence(std::uint64_t now) {
  if (quiescence_timer_.has_value()) {
    wheel_.cancel(*quiescence_timer_);
  }
  quiescence_timer_ = wheel_.schedule(now, options_.quiescence_timeout_ms);
}

void TcpTransport::run(const std::function<bool()>& done) {
  arm_quiescence(now_ms());
  std::vector<pollfd> fds;
  std::vector<std::uint32_t> fd_peers;

  for (;;) {
    // Reap first so a disconnect observed last round is visible to the
    // predicate now — a gridworker waiting on its supervisor's EOF must
    // not sleep one extra poll timeout.
    reap();
    if (done()) {
      break;
    }
    fds.clear();
    fd_peers.clear();
    if (listener_.valid()) {
      fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
      fd_peers.push_back(UINT32_MAX);
    }
    for (auto& [id, peer] : peers_) {
      if (peer.failed) {
        continue;
      }
      short events = POLLIN;
      if (peer.write_offset < peer.write_buffer.size()) {
        events |= POLLOUT;
      }
      fds.push_back(pollfd{peer.socket.fd(), events, 0});
      fd_peers.push_back(id);
    }

    // Sleep until I/O or the next timer; the wheel's earliest deadline caps
    // the wait so quiescence can't be missed.
    const std::uint64_t now_before = now_ms();
    std::uint64_t timeout = options_.tick_ms * 10;
    if (const auto deadline = wheel_.next_deadline_ms()) {
      timeout = *deadline > now_before ? *deadline - now_before : 0;
    }
    const int ready = ::poll(fds.data(), fds.size(),
                             static_cast<int>(std::min<std::uint64_t>(
                                 timeout, 1000)));
    if (ready < 0 && errno != EINTR) {
      throw SocketError(concat("poll: ", std::strerror(errno)));
    }

    bool progressed = false;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) {
        continue;
      }
      if (fd_peers[i] == UINT32_MAX) {
        accept_pending();
        progressed = true;
        continue;
      }
      const GridNodeId id{fd_peers[i]};
      const auto it = peers_.find(id.value);
      if (it == peers_.end() || it->second.failed) {
        continue;  // dropped earlier in this round
      }
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        progressed |= service_read(id, it->second);
      }
      if (!it->second.failed && (fds[i].revents & POLLOUT) != 0) {
        progressed |= service_write(id, it->second);
      }
    }

    progressed |= pump_local_flush();

    const std::uint64_t now = now_ms();
    if (progressed) {
      arm_quiescence(now);
      continue;
    }
    fired_scratch_.clear();
    wheel_.advance(now, fired_scratch_);
    for (const TimerWheel::TimerId id : fired_scratch_) {
      if (quiescence_timer_ == id) {
        quiescence_timer_.reset();
        // The grid went quiet for a full timeout: same contract as
        // SimTransport's quiescence — flush first, then the timeout hook.
        pump_local_flush();
        if (local_ != nullptr) {
          local_->on_quiescent(*this);
        }
        arm_quiescence(now_ms());
      }
    }
  }
}

void TcpTransport::close_all(std::uint64_t drain_timeout_ms) {
  const std::uint64_t deadline = now_ms() + drain_timeout_ms;
  std::vector<pollfd> fds;
  std::vector<std::uint32_t> fd_peers;
  for (;;) {
    reap();
    fds.clear();
    fd_peers.clear();
    for (auto& [id, peer] : peers_) {
      if (peer.failed) {
        continue;
      }
      if (peer.write_offset < peer.write_buffer.size()) {
        fds.push_back(pollfd{peer.socket.fd(), POLLOUT, 0});
        fd_peers.push_back(id);
      }
    }
    if (fds.empty() || now_ms() >= deadline) {
      break;
    }
    const int ready = ::poll(fds.data(), fds.size(), 50);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & POLLOUT) == 0) {
        continue;
      }
      const auto it = peers_.find(fd_peers[i]);
      if (it != peers_.end() && !it->second.failed) {
        service_write(GridNodeId{fd_peers[i]}, it->second);
      }
    }
  }
  peers_.clear();
  doomed_.clear();
  listener_.close();
}

}  // namespace ugc::net
