#pragma once

// Asynchronous TCP implementation of the Transport interface (see
// net/frame.h for the src/net layering note): a poll()-driven event loop
// over non-blocking sockets, shipping each wire-v2 encoded Message as one
// 4-byte length-prefixed frame. This is the substrate the real executables
// (apps/gridd, apps/gridworker) run the unchanged supervisor/participant
// protocol over.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "auth/handshake.h"
#include "common/rng.h"
#include "grid/transport.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/timer_wheel.h"

namespace ugc::net {

struct TcpTransportOptions {
  // Per-frame payload cap, enforced on both sides (see net/frame.h).
  std::size_t max_frame_size = kDefaultMaxFrameSize;
  // Per-peer write-queue backpressure cap: a peer that stops draining its
  // socket is disconnected once this much is queued for it, instead of
  // buffering without bound. Generous — the largest protocol burst is one
  // batched proof response per in-flight task.
  std::size_t max_write_buffer = 32u << 20;
  // Idle period after which GridNode::on_quiescent fires — the real-clock
  // stand-in for SimTransport's exact quiescence, driving the same
  // retry/abort path. Raise it for slow workers or WAN links.
  std::uint64_t quiescence_timeout_ms = 1000;
  // Timer-wheel granularity.
  std::uint64_t tick_ms = 10;
};

// Acceptor-side handshake policy for require_auth().
struct AuthOptions {
  // Reputation hook consulted after a proof verifies; a null function bans
  // nobody. Called from inside run().
  auth::BanCheck is_banned;
  // Challenge-nonce RNG seed; 0 (the default) seeds from entropy. Fixing it
  // makes handshakes reproducible — for tests only, since predictable
  // nonces surrender the anti-replay property.
  std::uint64_t nonce_seed = 0;
};

// One TcpTransport hosts exactly one local protocol node (gridd's
// SupervisorNode, gridworker's ParticipantNode) and any number of remote
// peers, each a framed TCP connection addressed by its GridNodeId — a star,
// which is exactly the supervisor/participant topology (a broker would run
// its own transport). Single-threaded: every callback fires on the thread
// inside run().
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options = {});
  ~TcpTransport() override;

  // Registers the one local protocol node; all inbound protocol frames are
  // delivered to it. Must be called before those frames arrive (gridd
  // registers its supervisor after the workers' Hellos, which the transport
  // itself consumes).
  GridNodeId add_local(GridNode& node);

  // Server side: bind + listen; every accepted connection becomes a peer.
  // An accepted peer must introduce itself with a Hello frame (protocol ==
  // kGridProtocol) before any protocol traffic, or it is dropped.
  void listen(const std::string& host, std::uint16_t port);

  // Upgrades the acceptor to the authenticated handshake (auth/handshake.h):
  // every accepted connection is sent a fresh HelloChallenge and must answer
  // with a verifying HelloProof before any scheme traffic. Bad proofs,
  // replayed stale nonces, banned identities, plain Hellos, and pre-proof
  // scheme frames are all refused (counted in handshakes_refused(), reported
  // through on_auth_refused, connection dropped). Call before run().
  void require_auth(AuthOptions options);

  // Arms the connector side: when a server challenges, answer with a proof
  // minted from this identity under this agent name. Without it a challenge
  // is ignored and an auth-requiring server will refuse us.
  void use_identity(const auth::WorkerIdentity& identity, std::string agent);
  std::uint16_t port() const;
  bool listening() const { return listener_.valid(); }

  // Client side: connect out; the remote end becomes a peer (no Hello is
  // expected back — the acceptor authenticates, the connector trusts).
  // Blocks until the TCP handshake completes.
  GridNodeId connect(const std::string& host, std::uint16_t port);

  // Transport: encodes, meters, frames, and queues for the peer `to`.
  // Sending to a vanished peer is a quiet no-op (the message is lost, as it
  // would be on the wire); sending to an id that was never a peer throws.
  void send(GridNodeId from, GridNodeId to, const Message& message) override;

  bool offline(GridNodeId node) const override;
  const NetworkStats& stats() const override;

  // Fired from inside run(). on_peer_hello only for accepted peers (on an
  // authenticated grid it fires right after on_peer_authenticated, with a
  // Hello synthesized from the proof, so hello-driven callers are
  // indifferent to the handshake flavor).
  std::function<void(GridNodeId, const Hello&)> on_peer_hello;
  std::function<void(GridNodeId)> on_peer_disconnected;
  // Authenticated-handshake outcomes (require_auth grids only). On refusal,
  // `info` carries the proven identity for kBanned and is empty otherwise —
  // an unverified claim is not worth reporting as an identity.
  std::function<void(GridNodeId, const auth::AuthInfo&)> on_peer_authenticated;
  std::function<void(GridNodeId, auth::HandshakeStatus,
                     const auth::AuthInfo& info)>
      on_auth_refused;

  // Drives the event loop until `done()` returns true: polls sockets,
  // accepts, reads frames and dispatches them to the local node, drains
  // write queues, pumps GridNode::flush whenever delivery goes quiet, and
  // fires GridNode::on_quiescent after quiescence_timeout_ms of silence.
  // Re-enterable: call again with a new predicate to continue.
  void run(const std::function<bool()>& done);

  // Drains pending writes (bounded by `drain_timeout_ms`), then closes
  // every peer and the listener.
  void close_all(std::uint64_t drain_timeout_ms = 2000);

  // Peers that are still connected, in id order.
  std::vector<GridNodeId> connected_peers() const;
  // The Hello an accepted peer introduced itself with.
  std::optional<Hello> hello_of(GridNodeId peer) const;
  // The identity a peer proved at handshake (require_auth grids only).
  std::optional<auth::AuthInfo> auth_of(GridNodeId peer) const;

  // Inbound frames that failed decode_message (hostile or corrupt bytes —
  // counted and dropped, never fatal), and streams that ended mid-frame.
  std::uint64_t frames_undecodable() const { return frames_undecodable_; }
  std::uint64_t streams_truncated() const { return streams_truncated_; }
  // Connections refused by the authenticated handshake.
  std::uint64_t handshakes_refused() const { return handshakes_refused_; }

 private:
  struct Peer {
    Socket socket;
    FrameDecoder decoder;
    Bytes write_buffer;            // framed bytes not yet accepted by send()
    std::size_t write_offset = 0;  // prefix already written
    bool accepted = false;         // true: inbound (must Hello first)
    bool greeted = false;          // Hello seen (accepted peers)
    bool failed = false;           // doomed; erased at the next reap()
    std::optional<Hello> hello;
    Bytes nonce;                   // outstanding challenge (auth acceptor)
    std::optional<auth::AuthInfo> auth;  // proven identity, once greeted
  };

  std::uint64_t now_ms() const;
  void arm_quiescence(std::uint64_t now);
  void accept_pending();
  // Reads until would-block or the per-round fairness bound; decodes and
  // dispatches every complete frame. Returns true on any progress.
  bool service_read(GridNodeId id, Peer& peer);
  // Writes queued bytes until would-block. Returns true on any progress.
  bool service_write(GridNodeId id, Peer& peer);
  void dispatch(GridNodeId from, Peer& peer, BytesView payload);
  // Encodes, frames, and queues a handshake control frame for `peer`,
  // bypassing NetworkStats (the meter counts scheme traffic, comparable
  // across transports; the handshake is TcpTransport plumbing).
  void queue_control_frame(GridNodeId to, Peer& peer, const Message& message);
  // Counts the refusal, reports it, and poisons the stream.
  [[noreturn]] void refuse_handshake(GridNodeId from,
                                     auth::HandshakeStatus status,
                                     const auth::AuthInfo& info);
  // Marks the peer dead and closes its socket; safe mid-iteration (the map
  // entry survives until reap()).
  void drop_peer(GridNodeId id, const char* why);
  // Erases doomed peers and fires on_peer_disconnected.
  void reap();
  bool pump_local_flush();

  TcpTransportOptions options_;
  Socket listener_;
  GridNode* local_ = nullptr;
  std::map<std::uint32_t, Peer> peers_;
  std::vector<std::uint32_t> doomed_;
  std::uint32_t next_id_ = 0;
  NetworkStats stats_;
  TimerWheel wheel_;
  std::optional<TimerWheel::TimerId> quiescence_timer_;
  std::chrono::steady_clock::time_point epoch_;
  Bytes encode_scratch_;
  Bytes read_scratch_;  // recv target, sized once, reused for every read
  std::vector<TimerWheel::TimerId> fired_scratch_;
  std::uint64_t frames_undecodable_ = 0;
  std::uint64_t streams_truncated_ = 0;
  std::uint64_t handshakes_refused_ = 0;
  std::optional<AuthOptions> auth_;       // acceptor: challenge + verify
  std::optional<Rng> nonce_rng_;          // challenge-nonce stream
  std::optional<auth::WorkerIdentity> identity_;  // connector: answer
  std::string agent_;
};

}  // namespace ugc::net
