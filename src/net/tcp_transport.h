#pragma once

// Asynchronous TCP implementation of the Transport interface (see
// net/frame.h for the src/net layering note): readiness-driven event loops
// (net/event_engine.h — io_uring where the kernel has it, epoll where
// available, poll() as the portable fallback) over non-blocking sockets,
// shipping each wire-v2 encoded Message as one 4-byte length-prefixed
// frame. This is the substrate the real executables (apps/gridd,
// apps/gridworker, apps/gridload) run the unchanged supervisor/participant
// protocol over.
//
// The write side is batched: each peer queues whole framed messages and
// flushes them once per loop round through one vectored write (writev
// semantics via sendmsg), so a protocol burst of N frames to one peer costs
// one syscall, not N. Frame buffers are pooled and recycled once the kernel
// has the bytes. TcpIoStats reports the syscall counts and the
// frames-per-write distribution the batching is judged by.
//
// Threading model (the contract grid/transport.h documents from the
// GridNode side):
//
//   io_threads == 1 (default) — everything runs on the thread inside
//     run(): accepts, reads, writes, timers, and every callback. The
//     historical single-loop behavior, byte-for-byte.
//   io_threads == N — N event loops, each on its own thread, each owning a
//     disjoint set of peers: a connection is accepted, read, written, and
//     reaped on exactly one loop, so the frame hot path (recv → decode →
//     encode → send) shares no state across loops and takes no cross-loop
//     lock. Accepts shard via SO_REUSEPORT (one listener per loop, the
//     kernel balances) with an accept-and-dispatch fallback. Decoded
//     protocol messages and peer lifecycle events cross one seam — a
//     mailbox drained by the thread inside run() — so GridNode callbacks
//     still all fire on that one protocol thread, and the supervisor's
//     parallel session pump (fed via flush) fans the verification work
//     back out itself.
//
// send() may be called from the protocol thread (inside a GridNode
// callback) or from the owning thread before/after run(); it must not be
// called from arbitrary threads concurrently.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "auth/handshake.h"
#include "common/rng.h"
#include "grid/chaos.h"
#include "grid/transport.h"
#include "net/event_engine.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/timer_wheel.h"

namespace ugc::net {

struct TcpTransportOptions {
  // Per-frame payload cap, enforced on both sides (see net/frame.h).
  std::size_t max_frame_size = kDefaultMaxFrameSize;
  // Per-peer write-queue backpressure cap: a peer that stops draining its
  // socket is disconnected once this much is queued for it, instead of
  // buffering without bound. Generous — the largest protocol burst is one
  // batched proof response per in-flight task.
  std::size_t max_write_buffer = 32u << 20;
  // Idle period after which GridNode::on_quiescent fires — the real-clock
  // stand-in for SimTransport's exact quiescence, driving the same
  // retry/abort path. Raise it for slow workers or WAN links.
  std::uint64_t quiescence_timeout_ms = 1000;
  // Timer-wheel granularity.
  std::uint64_t tick_ms = 10;
  // Event loops. 1 = the classic inline loop on the run() thread; N > 1 =
  // N loop threads with per-loop peer ownership (see the header note).
  unsigned io_threads = 1;
  // Readiness backend for every loop (kAuto = epoll where supported).
  EngineBackend engine = EngineBackend::kAuto;
  // Multi-loop accept sharding: per-loop SO_REUSEPORT listeners when true
  // (and supported); false forces the accept-and-dispatch fallback, where
  // loop 0 accepts and hands connections round-robin to the other loops.
  bool sharded_accept = true;
  // Listen backlog: a thousand workers racing one gridd must queue, not
  // bounce (the kernel clamps to somaxconn).
  int listen_backlog = 1024;
  // Seeded fault injection (grid/chaos.h): when set, every peer of this
  // transport gets a deterministic ChaosLink sampled from the plan —
  // outbound frames pay WAN latency/bandwidth before reaching the socket,
  // reads stall, writes shorten, connections reset at accept time and die
  // mid-stream. Reproducible from plan.seed; nullopt = the real network,
  // zero overhead on the hot path.
  std::optional<ChaosPlan> chaos;
  // Adaptive quiescence (grid/chaos.h): when quiescence.adaptive is true
  // the timeout tracks observed inter-message gaps (SRTT + 4·RTTVAR,
  // clamped to [floor_ms, ceiling_ms]) instead of staying pinned at
  // quiescence_timeout_ms — WAN jitter stretches the timeout instead of
  // tripping retries.
  QuiescencePolicy quiescence;
  // Load shedding: above this many queued-but-unsent bytes for one peer,
  // new protocol frames for it are dropped (counted in frames_shed)
  // instead of queued — the connection survives and control/handshake
  // frames are exempt. 0 = off. Distinct from max_write_buffer, which
  // kills the connection outright.
  std::size_t shed_watermark = 0;
  // Slow-peer eviction: a peer whose write queue has not fully drained
  // for this long is disconnected (counted in peers_evicted). 0 = off.
  std::uint64_t evict_stalled_after_ms = 0;
};

// Acceptor-side handshake policy for require_auth().
struct AuthOptions {
  // Reputation hook consulted after a proof verifies; a null function bans
  // nobody. With io_threads == 1 it is called from inside run(); in
  // multi-loop mode it is called from the I/O loop threads, so it must be
  // thread-safe if identities can authenticate while the protocol node is
  // mutating the reputation store (gridd authenticates its whole roster
  // before the supervisor starts, so a plain store is fine there).
  auth::BanCheck is_banned;
  // Challenge-nonce RNG seed; 0 (the default) seeds from entropy. Fixing it
  // makes handshakes reproducible — for tests only, since predictable
  // nonces surrender the anti-replay property.
  std::uint64_t nonce_seed = 0;
};

// I/O-layer counters (distinct from Transport::stats(), which meters
// protocol traffic identically across transports). Everything a load run
// needs to attribute a disconnect or a stall: which loop owned how many
// fds, how deep write queues got before draining, and what was refused or
// undecodable.
struct TcpIoStats {
  std::string engine;                       // backend actually in use
  unsigned io_loops = 1;
  std::vector<std::size_t> peers_per_loop;  // live peers owned by each loop
  std::size_t write_queue_hwm = 0;          // bytes, max over all peers/loops
  std::uint64_t frames_undecodable = 0;
  std::uint64_t streams_truncated = 0;
  std::uint64_t handshakes_refused = 0;
  // Syscall accounting (the batching PR's scoreboard): every recv and every
  // sendmsg the loops issue, the frames fully delivered, and how many whole
  // frames each sendmsg completed — buckets 0, 1, 2, 3, 4–7, 8–15, 16+.
  // A mean above 1 is the vectored write path coalescing a burst.
  std::uint64_t read_calls = 0;
  std::uint64_t write_calls = 0;
  std::uint64_t frames_sent = 0;
  std::vector<std::uint64_t> frames_per_write;
  double frames_per_write_mean = 0.0;
  // Degradation policies (see TcpTransportOptions):
  std::uint64_t frames_shed = 0;    // dropped above shed_watermark
  std::uint64_t peers_evicted = 0;  // cut for a stalled write queue
  // Chaos injection (options.chaos only; all zero on a real network):
  std::uint64_t chaos_accept_resets = 0;
  std::uint64_t chaos_disconnects = 0;
  std::uint64_t chaos_frames_delayed = 0;
  std::uint64_t chaos_read_stalls = 0;
  // The quiescence timeout currently in force (tracks the adaptive
  // estimate when quiescence.adaptive is set).
  std::uint64_t quiescence_timeout_ms = 0;
};

// One TcpTransport hosts exactly one local protocol node (gridd's
// SupervisorNode, gridworker's ParticipantNode) and any number of remote
// peers, each a framed TCP connection addressed by its GridNodeId — a star,
// which is exactly the supervisor/participant topology (a broker would run
// its own transport). Every GridNode callback fires on the thread inside
// run(), whatever io_threads is.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options = {});
  ~TcpTransport() override;

  // Registers the one local protocol node; all inbound protocol frames are
  // delivered to it. Must be called before those frames arrive (gridd
  // registers its supervisor after the workers' Hellos, which the transport
  // itself consumes).
  GridNodeId add_local(GridNode& node);

  // Detaches the current local node so a successor can be added — the seam
  // gridload's repeated supervisor waves run through. Call only between
  // run() invocations; frames arriving while no node is attached are
  // dropped, exactly as before add_local.
  void clear_local();

  // Server side: bind + listen; every accepted connection becomes a peer.
  // An accepted peer must introduce itself with a Hello frame (protocol ==
  // kGridProtocol) before any protocol traffic, or it is dropped. Call
  // before run().
  void listen(const std::string& host, std::uint16_t port);

  // Upgrades the acceptor to the authenticated handshake (auth/handshake.h):
  // every accepted connection is sent a fresh HelloChallenge and must answer
  // with a verifying HelloProof before any scheme traffic. Bad proofs,
  // replayed stale nonces, banned identities, plain Hellos, and pre-proof
  // scheme frames are all refused (counted in handshakes_refused(), reported
  // through on_auth_refused, connection dropped). Call before run().
  void require_auth(AuthOptions options);

  // Arms the connector side: when a server challenges, answer with a proof
  // minted from this identity under this agent name. Without it a challenge
  // is ignored and an auth-requiring server will refuse us.
  void use_identity(const auth::WorkerIdentity& identity, std::string agent);
  std::uint16_t port() const;
  bool listening() const;

  // Client side: connect out; the remote end becomes a peer (no Hello is
  // expected back — the acceptor authenticates, the connector trusts).
  // Blocks until the TCP handshake completes.
  GridNodeId connect(const std::string& host, std::uint16_t port);

  // Transport: encodes, meters, frames, and queues for the peer `to`.
  // Sending to a vanished peer is a quiet no-op (the message is lost, as it
  // would be on the wire); sending to an id that was never a peer throws.
  void send(GridNodeId from, GridNodeId to, const Message& message) override;

  bool offline(GridNodeId node) const override;
  const NetworkStats& stats() const override;

  // Fired from inside run(). on_peer_hello only for accepted peers (on an
  // authenticated grid it fires right after on_peer_authenticated, with a
  // Hello synthesized from the proof, so hello-driven callers are
  // indifferent to the handshake flavor).
  std::function<void(GridNodeId, const Hello&)> on_peer_hello;
  std::function<void(GridNodeId)> on_peer_disconnected;
  // Authenticated-handshake outcomes (require_auth grids only). On refusal,
  // `info` carries the proven identity for kBanned and is empty otherwise —
  // an unverified claim is not worth reporting as an identity.
  std::function<void(GridNodeId, const auth::AuthInfo&)> on_peer_authenticated;
  std::function<void(GridNodeId, auth::HandshakeStatus,
                     const auth::AuthInfo& info)>
      on_auth_refused;

  // Drives the protocol until `done()` returns true: accepts, reads frames
  // and dispatches them to the local node, drains write queues, pumps
  // GridNode::flush whenever delivery goes quiet, and fires
  // GridNode::on_quiescent after quiescence_timeout_ms of silence. With
  // io_threads == 1 this thread also performs all I/O; otherwise the loop
  // threads do and this thread drains their mailbox. Re-enterable: call
  // again with a new predicate to continue.
  void run(const std::function<bool()>& done);

  // Drains pending writes (bounded by `drain_timeout_ms`), then closes
  // every peer and the listener, and stops any loop threads.
  void close_all(std::uint64_t drain_timeout_ms = 2000);

  // Peers that are still connected, in id order.
  std::vector<GridNodeId> connected_peers() const;
  // The Hello an accepted peer introduced itself with.
  std::optional<Hello> hello_of(GridNodeId peer) const;
  // The identity a peer proved at handshake (require_auth grids only).
  std::optional<auth::AuthInfo> auth_of(GridNodeId peer) const;

  // Inbound frames that failed decode_message (hostile or corrupt bytes —
  // counted and dropped, never fatal), and streams that ended mid-frame.
  std::uint64_t frames_undecodable() const { return frames_undecodable_; }
  std::uint64_t streams_truncated() const { return streams_truncated_; }
  // Connections refused by the authenticated handshake.
  std::uint64_t handshakes_refused() const { return handshakes_refused_; }

  // Snapshot of the I/O-layer counters (see TcpIoStats).
  TcpIoStats io_stats() const;
  unsigned io_loops() const { return static_cast<unsigned>(loops_.size()); }

 private:
  struct Peer {
    Socket socket;
    FrameDecoder decoder;
    // Write queue: whole framed messages awaiting the kernel, flushed as
    // one vectored write per loop round (pooled buffers, returned to the
    // frame pool once fully written).
    std::deque<Bytes> write_queue;
    std::size_t write_front_offset = 0;  // bytes of front() already written
    std::size_t write_pending = 0;       // unsent bytes across the queue
    bool flush_queued = false;     // already on the loop's flush list
    bool accepted = false;         // true: inbound (must Hello first)
    bool greeted = false;          // Hello seen (accepted peers)
    bool failed = false;           // doomed; erased at the next reap()
    Interest armed = Interest::kNone;  // current engine registration
    std::optional<Hello> hello;
    Bytes nonce;                   // outstanding challenge (auth acceptor)
    std::optional<auth::AuthInfo> auth;  // proven identity, once greeted
    // Chaos state (options.chaos only; null link = clean connection):
    std::unique_ptr<ChaosLink> chaos;
    // Frames held until their sampled release time (framed bytes ready to
    // join write_queue), FIFO by construction (releases are monotone).
    std::deque<std::pair<std::uint64_t, Bytes>> delayed;
    std::uint64_t stalled_until_ms = 0;  // read interest parked until then
    // Degradation bookkeeping (always on): when the current write backlog
    // started, 0 = drained. Drives evict_stalled_after_ms.
    std::uint64_t write_stuck_since_ms = 0;
    // One wheel timer services this peer's chaos releases, stall ends,
    // and eviction deadline; re-armed to the earliest of them.
    std::optional<TimerWheel::TimerId> wakeup;
    std::uint64_t wakeup_at_ms = 0;
  };

  // One event loop: engine + wheel + the peers it owns. With io_threads ==
  // 1 there is exactly one, driven inline by run(); otherwise each runs on
  // its own thread and owns its slice of the fd space.
  struct Loop {
    std::size_t index = 0;
    std::unique_ptr<EventEngine> engine;
    TimerWheel wheel;
    Socket listener;
    std::map<std::uint32_t, Peer> peers;
    std::vector<std::uint32_t> doomed;
    Bytes encode_scratch;
    Bytes read_scratch;  // recv target, sized once, reused for every read
    // Peers with frames enqueued this round, flushed in one vectored write
    // each just before the next engine wait (flush_scratch is the swap
    // target, so a flush can enqueue more without invalidating iteration).
    std::vector<std::uint32_t> flush_list;
    std::vector<std::uint32_t> flush_scratch;
    std::vector<ReadyEvent> ready_scratch;
    std::vector<TimerWheel::TimerId> fired_scratch;
    std::optional<TimerWheel::TimerId> quiescence_timer;  // single-loop only
    // Peer-service timers (chaos releases / stall ends / eviction): fired
    // id -> owning peer. Loop-thread-only, like the peers map.
    std::map<TimerWheel::TimerId, std::uint32_t> peer_timers;
    std::atomic<std::size_t> write_queue_hwm{0};
    // Cross-thread plumbing (multi-loop only): closures submitted by the
    // protocol thread (sends, adopted connections), plus the wake pipe that
    // interrupts a sleeping engine wait.
    Socket wake_read;
    Socket wake_write;
    std::mutex tasks_mutex;
    std::vector<std::function<void()>> tasks;
    std::thread thread;

    explicit Loop(TimerWheel wheel_in) : wheel(std::move(wheel_in)) {}
  };

  // A peer lifecycle or protocol event crossing the loop → protocol-thread
  // mailbox (multi-loop mode); delivered inline in single-loop mode.
  struct Event {
    enum class Kind {
      kMessage,
      kHello,
      kAuthenticated,
      kAuthRefused,
      kDisconnected,
    };
    Kind kind = Kind::kMessage;
    GridNodeId peer{};
    std::size_t bytes = 0;  // payload size (kMessage), for metering
    Message message;
    Hello hello;
    auth::HandshakeStatus status = auth::HandshakeStatus::kOk;
    auth::AuthInfo info;
  };

  bool threaded() const { return loops_.size() > 1; }
  std::uint64_t now_ms() const;
  Loop& loop_for_new_connection();
  void submit(Loop& loop, std::function<void()> task);
  void start_threads();
  void stop_threads();
  void loop_thread(Loop& loop);
  void run_single(const std::function<bool()>& done);
  void run_threaded(const std::function<bool()>& done);
  // Routes an event to the protocol thread: posted to the mailbox in
  // threaded mode, delivered inline otherwise.
  void emit(Event event);
  void deliver(Event& event);
  void arm_quiescence(std::uint64_t now);
  void accept_pending(Loop& loop);
  // Installs a connection on `loop` (engine registration, auth challenge).
  void adopt_connection(Loop& loop, std::uint32_t id, Socket socket,
                        bool accepted);
  // Reads until would-block or the per-round fairness bound; decodes and
  // dispatches every complete frame. Returns true on any progress.
  bool service_read(Loop& loop, GridNodeId id, Peer& peer);
  // Flushes the peer's write queue until would-block: up to kMaxWriteIov
  // queued frames per vectored write, partial writes resumed from the exact
  // byte the kernel (or the chaos clamp) stopped at. Returns true on any
  // progress.
  bool service_write(Loop& loop, GridNodeId id, Peer& peer);
  // Advances the queue past `written` bytes, recycling fully-written frames
  // into the pool. Returns how many frames completed (for the histogram).
  std::size_t advance_write_queue(Peer& peer, std::size_t written);
  // Re-arms the engine registration to match the peer's pending writes.
  void sync_interest(Loop& loop, GridNodeId id, Peer& peer);
  void dispatch(Loop& loop, GridNodeId from, Peer& peer, BytesView payload);
  // After frames joined a peer's write queue: tracks the high-water mark,
  // enforces the backpressure cap, and puts the peer on the loop's flush
  // list — the actual write happens once per round (flush_pending), so a
  // burst of sends coalesces into one vectored write. Loop-thread context
  // (or single-loop).
  void finish_enqueue(Loop& loop, GridNodeId to, Peer& peer);
  // Drains the loop's flush list: one service_write + interest re-arm per
  // dirty peer. Called just before every engine wait. Returns true on any
  // write progress.
  bool flush_pending(Loop& loop);
  // The enqueue front door: sheds above the watermark (protocol frames
  // only), detours through the chaos delay queue when the peer's link has
  // latency, otherwise moves the frame onto write_queue and finishes.
  // `framed` carries the 4-byte length prefix already and is consumed
  // (queued, delayed, or recycled). Loop-thread context.
  void enqueue_framed(Loop& loop, GridNodeId to, Peer& peer, Bytes framed,
                      bool control);
  // Frame-buffer pool shared by every enqueue path: acquire an empty Bytes
  // (recycled capacity where available), release it once the kernel has the
  // bytes. Keeps the per-message hot path allocation-free at steady state.
  Bytes acquire_frame();
  void release_frame(Bytes frame);
  // Moves due delayed frames onto the wire, ends read stalls, enforces
  // eviction, and re-arms the peer's wakeup timer. Returns true if frames
  // hit the write path (progress, for quiescence purposes).
  bool service_peer_wakeup(Loop& loop, GridNodeId id, Peer& peer);
  // Arms (or pulls earlier) the peer's single service timer.
  void schedule_peer_wakeup(Loop& loop, GridNodeId id, Peer& peer,
                            std::uint64_t at_ms);
  // The quiescence timeout currently in force (adaptive or fixed).
  std::uint64_t effective_quiescence_ms() const;
  // Chaos read-stall entry: true when the read must be skipped this round.
  bool chaos_stall_read(Loop& loop, GridNodeId id, Peer& peer);
  // Encodes, frames, and queues a handshake control frame for `peer`,
  // bypassing NetworkStats (the meter counts scheme traffic, comparable
  // across transports; the handshake is TcpTransport plumbing).
  void queue_control_frame(Loop& loop, GridNodeId to, Peer& peer,
                           const Message& message);
  // Counts the refusal, reports it, and poisons the stream.
  [[noreturn]] void refuse_handshake(GridNodeId from,
                                     auth::HandshakeStatus status,
                                     const auth::AuthInfo& info);
  // Marks the peer dead and closes its socket; safe mid-iteration (the map
  // entry survives until reap()).
  void drop_peer(Loop& loop, GridNodeId id, const char* why);
  // Erases doomed peers and emits disconnect events.
  void reap(Loop& loop);
  bool pump_local_flush();
  // Bounded write-drain used by close_all: waits on writability alone (the
  // drain deadline caps the sleep — no constant-interval spinning), then
  // closes everything the loop owns.
  void drain_and_close(Loop& loop, std::uint64_t deadline_ms);

  TcpTransportOptions options_;
  std::vector<std::unique_ptr<Loop>> loops_;
  GridNode* local_ = nullptr;
  std::atomic<std::uint32_t> next_id_{0};
  NetworkStats stats_;
  std::chrono::steady_clock::time_point epoch_;
  Bytes send_scratch_;  // protocol-thread encode buffer (threaded sends)

  // Peer id → owning loop + liveness. The only cross-loop index; touched at
  // connection setup/teardown and by sends, never per frame.
  struct PeerRef {
    std::size_t loop = 0;
    bool alive = true;
  };
  mutable std::mutex index_mutex_;
  std::map<std::uint32_t, PeerRef> peer_index_;

  // Protocol-thread registry behind hello_of/auth_of (loop threads own the
  // Peer structs, so lookups must not reach into them).
  struct PeerInfo {
    std::optional<Hello> hello;
    std::optional<auth::AuthInfo> auth;
  };
  mutable std::mutex registry_mutex_;
  std::map<std::uint32_t, PeerInfo> registry_;

  // Loop → protocol-thread mailbox (threaded mode).
  std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;
  std::deque<Event> inbox_;

  std::atomic<bool> stop_{false};
  bool threads_started_ = false;

  std::atomic<std::uint64_t> frames_undecodable_{0};
  std::atomic<std::uint64_t> streams_truncated_{0};
  std::atomic<std::uint64_t> handshakes_refused_{0};
  // Syscall/batching accounting (see TcpIoStats): bumped relaxed on the
  // loop threads' hot paths, snapshotted by io_stats().
  std::atomic<std::uint64_t> read_calls_{0};
  std::atomic<std::uint64_t> write_calls_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::array<std::atomic<std::uint64_t>, 7> frames_per_write_hist_{};
  // Frame-buffer pool (acquire_frame/release_frame): shared by the protocol
  // thread's encode path and every loop's write path.
  std::mutex frame_pool_mutex_;
  std::vector<Bytes> frame_pool_;
  std::atomic<std::uint64_t> frames_shed_{0};
  std::atomic<std::uint64_t> peers_evicted_{0};
  std::atomic<std::uint64_t> chaos_accept_resets_{0};
  std::atomic<std::uint64_t> chaos_disconnects_{0};
  std::atomic<std::uint64_t> chaos_frames_delayed_{0};
  std::atomic<std::uint64_t> chaos_read_stalls_{0};

  // Adaptive quiescence (protocol-thread-only, like stats_): observed
  // inter-message gaps per peer feed the estimator; the effective timeout
  // is read when (re-)arming quiescence.
  AdaptiveTimeout quiescence_estimator_;
  std::map<std::uint32_t, std::uint64_t> last_message_ms_;

  std::optional<AuthOptions> auth_;  // acceptor: challenge + verify
  std::mutex nonce_mutex_;           // loops mint challenge nonces
  std::optional<Rng> nonce_rng_;     // challenge-nonce stream
  std::optional<auth::WorkerIdentity> identity_;  // connector: answer
  std::string agent_;
  std::size_t next_connect_loop_ = 0;
  // Accept-and-dispatch fallback (multi-loop without SO_REUSEPORT): loop 0
  // accepts and hands connections round-robin to the other loops.
  bool dispatch_accept_ = false;
  std::size_t next_accept_loop_ = 0;
};

}  // namespace ugc::net
