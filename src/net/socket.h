#pragma once

// POSIX TCP sockets behind a small RAII surface (see net/frame.h for the
// src/net layering note). Everything is IPv4 + non-blocking: the event loop
// in tcp_transport.h multiplexes with poll(), so no call here may ever
// block — connect() is the one exception (a client start-up, not a loop
// operation) and says so.

#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/error.h"

struct iovec;  // <sys/uio.h>; forward-declared so this header stays OS-free

namespace ugc::net {

// Raised on socket/syscall failures (with errno text). Framing and codec
// violations have their own types; this one means the OS said no.
class SocketError : public Error {
 public:
  explicit SocketError(const std::string& what_arg) : Error(what_arg) {}
};

// Move-only owner of a file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

// Result of one non-blocking I/O attempt.
enum class IoStatus {
  kOk,           // made progress (see the byte count)
  kWouldBlock,   // no progress possible right now; wait for poll()
  kClosed,       // orderly EOF (read) — the peer is gone
  kError,        // connection-level failure; drop the peer
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

// Binds and listens on `host`:`port` (port 0 = ephemeral), returning a
// non-blocking listener. Throws SocketError on failure. With `reuse_port`
// the listener is bound SO_REUSEPORT, so several listeners can share one
// port and the kernel load-balances accepts across them — the sharded
// accept path of the multi-loop transport (one listener per event loop, no
// accept lock, no thundering herd).
Socket tcp_listen(const std::string& host, std::uint16_t port,
                  int backlog = 64, bool reuse_port = false);

// Whether this platform accepted a SO_REUSEPORT bind at least once (probed
// lazily by the transport; kernels without it fall back to a single
// accepting loop that hands sockets off).
bool reuse_port_supported();

// The port a listener actually bound (resolves port 0).
std::uint16_t local_port(const Socket& socket);

// Accepts one pending connection as a non-blocking socket, or an invalid
// Socket when the queue is empty. Throws SocketError on hard failures.
Socket tcp_accept(const Socket& listener);

// Connects to `host`:`port`. Blocks until established (this is client
// start-up, before the event loop runs), then switches the socket to
// non-blocking. Throws SocketError on failure.
Socket tcp_connect(const std::string& host, std::uint16_t port);

// Non-blocking read into the caller's buffer (no allocation: the event
// loop reuses one scratch buffer across every recv).
IoResult read_some(const Socket& socket, std::span<std::uint8_t> buffer);

// Non-blocking write of as much of `data` as the kernel accepts.
IoResult write_some(const Socket& socket, BytesView data);

// Non-blocking vectored write: one sendmsg over the iovec array, so a write
// queue of several frames reaches the kernel as a single syscall. Same
// semantics as write_some — partial acceptance reports kOk with the byte
// count, and the caller resumes from wherever the kernel stopped.
IoResult write_vec(const Socket& socket, const struct iovec* iov,
                   std::size_t count);

// A non-blocking self-pipe: `first` is the read end, `second` the write
// end. The multi-loop transport registers the read end with each loop's
// event engine and pokes the write end to wake a sleeping loop (mailbox
// submissions from the protocol thread). Writes that find the pipe full
// are dropped — a full pipe already guarantees a wakeup is pending.
std::pair<Socket, Socket> make_wake_pipe();

// Drains every pending byte from a wake pipe's read end.
void drain_wake_pipe(const Socket& read_end);

}  // namespace ugc::net
