#pragma once

// ---------------------------------------------------------------------------
// Layering note (mirrors src/grid's): src/net is the *real-transport* layer.
// It knows about bytes, sockets, frames, and timers — never about schemes,
// tasks, or verdicts. Its only upward dependencies are the wire codec (to
// turn frames back into Messages) and grid/transport.h (the Transport +
// GridNode interface it implements); everything protocol-shaped stays in
// grid/ and scheme/, written once against Transport& and reused unchanged
// over SimTransport and TcpTransport. Nothing under src/ may include net/
// except net/ itself — only apps/, tests/, and bench/ sit above it.
// ---------------------------------------------------------------------------

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/error.h"

namespace ugc::net {

// Raised on a framing violation (a length prefix the peer is not allowed to
// send). Distinct from WireError: a FrameError poisons the whole stream —
// resynchronizing is impossible once a length field is untrusted — so the
// connection must be dropped, while a WireError invalidates only one frame.
class FrameError : public Error {
 public:
  explicit FrameError(const std::string& what_arg) : Error(what_arg) {}
};

// TCP is a byte stream; frames put the message boundaries back. A frame is
//
//   [ length u32, little-endian | payload (length bytes) ]
//
// where the payload is exactly one wire-v2 encoded Message
// (encode_message_into / decode_message). 4 GiB lengths are nonsense for
// this protocol, so decoders cap the length much lower and treat anything
// above it as hostile.
inline constexpr std::size_t kFrameHeaderSize = 4;

// Default payload cap. The largest legitimate frames are batched proof
// responses (tens of KB at paper-scale sample counts); 64 MiB leaves three
// orders of magnitude of headroom while keeping a hostile 0xffffffff length
// from reserving 4 GiB.
inline constexpr std::size_t kDefaultMaxFrameSize = 64u << 20;

// Appends [header | payload] to `out` (which is NOT cleared: senders batch
// several frames into one write buffer). Throws FrameError if `payload`
// exceeds `max_frame_size` — the local protocol stack never produces such a
// message, so hitting this is a bug, not traffic.
void append_frame(BytesView payload, Bytes& out,
                  std::size_t max_frame_size = kDefaultMaxFrameSize);

// Incremental frame decoder: feed() raw bytes exactly as recv() hands them
// over — any split, including mid-header — and next() yields complete
// payloads in order. Single-owner, no internal locking (one decoder per
// connection, driven by the event loop thread).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_size = kDefaultMaxFrameSize)
      : max_frame_size_(max_frame_size) {}

  // Appends raw stream bytes. Throws FrameError as soon as a header
  // announcing more than max_frame_size is visible (without buffering the
  // hostile payload); after that the decoder is poisoned and every further
  // call throws — drop the connection.
  void feed(BytesView data);

  // Returns the next complete frame payload, or nullopt when more bytes are
  // needed. The view aliases the decoder's internal buffer: it is valid
  // until the next feed()/next() call, long enough to decode_message it or
  // copy it out (same discipline as WireReader::view).
  std::optional<BytesView> next();

  // Bytes buffered but not yet returned as a frame. Non-zero at EOF means
  // the peer died mid-frame (or mid-header) — a truncated stream the caller
  // should report, since silently ignoring a partial frame hides lost
  // traffic.
  std::size_t bytes_pending() const { return buffer_.size() - consumed_; }

  bool poisoned() const { return poisoned_; }

 private:
  void check_usable() const;

  std::size_t max_frame_size_;
  Bytes buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool poisoned_ = false;
};

}  // namespace ugc::net
