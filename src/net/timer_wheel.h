#pragma once

// Hashed timing wheel (see net/frame.h for the src/net layering note):
// timers hash into `slot_count` buckets by expiry tick, so schedule/cancel
// are O(1) and advancing visits only the slots the clock actually crossed —
// the classic Varghese–Lauck scheme every production event loop uses in
// some form. The transport drives its quiescence timeout (the signal behind
// GridNode::on_quiescent's retry/abort path) and any future per-peer
// deadlines through one wheel instead of a heap, keeping the event loop's
// per-activity cost flat no matter how many peers are armed.

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace ugc::net {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;

  explicit TimerWheel(std::uint64_t tick_ms = 10, std::size_t slot_count = 256)
      : tick_ms_(tick_ms), slots_(slot_count) {
    check(tick_ms_ > 0, "TimerWheel: tick must be positive");
    check(slot_count > 0, "TimerWheel: need at least one slot");
  }

  // Arms a timer `delay_ms` after `now_ms` (clamped to one tick minimum so
  // a zero delay still fires on the *next* advance, never re-entrantly).
  TimerId schedule(std::uint64_t now_ms, std::uint64_t delay_ms) {
    const std::uint64_t deadline = now_ms + (delay_ms < tick_ms_ ? tick_ms_ : delay_ms);
    const std::uint64_t deadline_tick = (deadline + tick_ms_ - 1) / tick_ms_;
    const TimerId id = next_id_++;
    std::list<Entry>& slot = slots_[deadline_tick % slots_.size()];
    slot.push_front(Entry{id, deadline_tick});
    index_.emplace(id, slot.begin());
    ++armed_;
    return id;
  }

  // Disarms a timer; false if it already fired (or never existed).
  bool cancel(TimerId id) {
    const auto it = index_.find(id);
    if (it == index_.end()) {
      return false;
    }
    const std::uint64_t tick = it->second->deadline_tick;
    slots_[tick % slots_.size()].erase(it->second);
    index_.erase(it);
    --armed_;
    return true;
  }

  // Advances the wheel to `now_ms`, appending every expired TimerId to
  // `fired` (in tick order; order within one tick is unspecified).
  void advance(std::uint64_t now_ms, std::vector<TimerId>& fired) {
    const std::uint64_t now_tick = now_ms / tick_ms_;
    while (current_tick_ <= now_tick) {
      std::list<Entry>& slot = slots_[current_tick_ % slots_.size()];
      for (auto it = slot.begin(); it != slot.end();) {
        // Same slot, later lap: an entry whose deadline hashes here but is
        // beyond the current tick stays armed.
        if (it->deadline_tick <= current_tick_) {
          fired.push_back(it->id);
          index_.erase(it->id);
          it = slot.erase(it);
          --armed_;
        } else {
          ++it;
        }
      }
      if (current_tick_ == now_tick) {
        break;
      }
      ++current_tick_;
    }
  }

  // The earliest possible expiry, in ms — what an event loop should cap its
  // poll timeout at. nullopt when nothing is armed.
  std::optional<std::uint64_t> next_deadline_ms() const {
    std::optional<std::uint64_t> best;
    for (const std::list<Entry>& slot : slots_) {
      for (const Entry& entry : slot) {
        const std::uint64_t deadline = entry.deadline_tick * tick_ms_;
        if (!best.has_value() || deadline < *best) {
          best = deadline;
        }
      }
    }
    return best;
  }

  std::size_t armed() const { return armed_; }
  std::uint64_t tick_ms() const { return tick_ms_; }

 private:
  struct Entry {
    TimerId id;
    std::uint64_t deadline_tick;
  };

  std::uint64_t tick_ms_;
  std::vector<std::list<Entry>> slots_;
  std::unordered_map<TimerId, std::list<Entry>::iterator> index_;
  std::uint64_t current_tick_ = 0;
  TimerId next_id_ = 1;
  std::size_t armed_ = 0;
};

}  // namespace ugc::net
