#include "grid/simulation.h"

#include <memory>

#include "common/error.h"
#include "grid/broker.h"
#include "grid/participant_node.h"
#include "grid/supervisor_node.h"

namespace ugc {

GridRunResult run_grid_simulation(const GridConfig& config) {
  check(config.participant_count >= 1,
        "run_grid_simulation: need at least one participant");
  check(config.domain_begin < config.domain_end,
        "run_grid_simulation: empty domain");
  for (const CheaterSpec& cheater : config.cheaters) {
    check(cheater.participant_index < config.participant_count,
          "run_grid_simulation: cheater index ", cheater.participant_index,
          " out of range");
  }
  for (const MaliciousSpec& spec : config.malicious) {
    check(spec.participant_index < config.participant_count,
          "run_grid_simulation: malicious index ", spec.participant_index,
          " out of range");
  }

  SimNetwork network;

  // Participants (honest unless named in `cheaters`).
  std::vector<std::unique_ptr<ParticipantNode>> participants;
  std::vector<bool> is_cheater(config.participant_count, false);
  participants.reserve(config.participant_count);
  for (std::size_t i = 0; i < config.participant_count; ++i) {
    ParticipantNode::Options options;
    options.schemes = config.schemes;
    for (const CheaterSpec& cheater : config.cheaters) {
      if (cheater.participant_index == i) {
        const std::uint64_t seed =
            cheater.seed != 0 ? cheater.seed
                              : config.seed ^ (0xc0ffee + i * 0x9e3779b9);
        options.policy = make_semi_honest_cheater(
            {cheater.honesty_ratio, cheater.guess_accuracy, seed});
        is_cheater[i] = true;
      }
    }
    for (const MaliciousSpec& spec : config.malicious) {
      if (spec.participant_index == i) {
        options.screener_conduct = spec.conduct;
        options.conduct_seed = config.seed ^ (0xbad + i);
      }
    }
    participants.push_back(std::make_unique<ParticipantNode>(std::move(options)));
  }

  std::vector<GridNodeId> worker_ids;
  worker_ids.reserve(participants.size());
  for (const auto& participant : participants) {
    worker_ids.push_back(network.add_node(*participant));
  }

  // Optional GRACE-style broker in the middle.
  std::unique_ptr<BrokerNode> broker;
  std::vector<GridNodeId> slots;
  if (config.use_broker) {
    broker = std::make_unique<BrokerNode>(worker_ids);
    const GridNodeId broker_id = network.add_node(*broker);
    slots.assign(config.participant_count, broker_id);
  } else {
    slots = worker_ids;
  }

  SupervisorNode::Plan plan;
  plan.domain = Domain(config.domain_begin, config.domain_end);
  plan.workload = config.workload;
  plan.workload_seed = config.workload_seed;
  plan.scheme = config.scheme;
  plan.seed = config.seed;
  plan.schemes = config.schemes;
  plan.validate_reported_hits = config.validate_reported_hits;
  plan.pump_threads = config.supervisor_pump_threads;
  SupervisorNode supervisor(plan, slots);
  network.add_node(supervisor);

  supervisor.start(network);
  const std::size_t delivered = network.run();
  check(supervisor.done(),
        "run_grid_simulation: network went quiet before all verdicts");

  GridRunResult result;
  result.messages_delivered = delivered;
  result.network = network.stats();
  result.hits = supervisor.accepted_hits();
  result.supervisor_evaluations = supervisor.verification_evaluations();
  result.results_verified = supervisor.results_verified();
  for (const auto& participant : participants) {
    result.participant_evaluations += participant->honest_evaluations();
  }

  // Task ids are assigned 1..K in slot order; with a broker the round-robin
  // dispatch preserves that order, so participant = (id - 1) mod count.
  for (const SupervisorNode::TaskOutcome& outcome : supervisor.outcomes()) {
    ParticipantOutcome po;
    po.task = outcome.task;
    po.participant_index = static_cast<std::size_t>(
        (outcome.task.value - 1) % config.participant_count);
    po.was_cheater = is_cheater[po.participant_index];
    po.accepted = outcome.verdict.accepted();
    po.status = outcome.verdict.status;
    result.outcomes.push_back(po);

    if (po.was_cheater) {
      po.accepted ? ++result.cheater_tasks_accepted
                  : ++result.cheater_tasks_rejected;
    } else {
      po.accepted ? ++result.honest_tasks_accepted
                  : ++result.honest_tasks_rejected;
    }
  }
  return result;
}

}  // namespace ugc
