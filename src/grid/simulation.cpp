#include "grid/simulation.h"

#include <map>
#include <memory>

#include "common/error.h"
#include "grid/broker.h"
#include "grid/participant_node.h"
#include "grid/supervisor_node.h"

namespace ugc {

GridRunResult run_grid_simulation(const GridConfig& config) {
  check(config.participant_count >= 1,
        "run_grid_simulation: need at least one participant");
  check(config.domain_begin < config.domain_end,
        "run_grid_simulation: empty domain");
  for (const CheaterSpec& cheater : config.cheaters) {
    check(cheater.participant_index < config.participant_count,
          "run_grid_simulation: cheater index ", cheater.participant_index,
          " out of range");
  }
  for (const PolicyCheaterSpec& spec : config.policy_cheaters) {
    check(spec.participant_index < config.participant_count,
          "run_grid_simulation: policy cheater index ",
          spec.participant_index, " out of range");
    check(spec.policy != nullptr,
          "run_grid_simulation: policy cheater needs a policy");
  }
  for (const MaliciousSpec& spec : config.malicious) {
    check(spec.participant_index < config.participant_count,
          "run_grid_simulation: malicious index ", spec.participant_index,
          " out of range");
  }
  for (const ParticipantCrash& crash : config.crashes) {
    check(crash.participant_index < config.participant_count,
          "run_grid_simulation: crash index ", crash.participant_index,
          " out of range");
  }

  SimNetwork network;

  // Participants (honest unless named in `cheaters` / `policy_cheaters`).
  std::vector<std::unique_ptr<ParticipantNode>> participants;
  std::vector<bool> is_cheater(config.participant_count, false);
  participants.reserve(config.participant_count);
  for (std::size_t i = 0; i < config.participant_count; ++i) {
    ParticipantNode::Options options;
    options.schemes = config.schemes;
    for (const CheaterSpec& cheater : config.cheaters) {
      if (cheater.participant_index == i) {
        const std::uint64_t seed =
            cheater.seed != 0 ? cheater.seed
                              : config.seed ^ (0xc0ffee + i * 0x9e3779b9);
        options.policy = make_semi_honest_cheater(
            {cheater.honesty_ratio, cheater.guess_accuracy, seed});
        is_cheater[i] = true;
      }
    }
    for (const PolicyCheaterSpec& spec : config.policy_cheaters) {
      if (spec.participant_index == i) {
        options.policy = spec.policy;
        is_cheater[i] = true;
      }
    }
    for (const MaliciousSpec& spec : config.malicious) {
      if (spec.participant_index == i) {
        options.screener_conduct = spec.conduct;
        options.conduct_seed = config.seed ^ (0xbad + i);
      }
    }
    participants.push_back(std::make_unique<ParticipantNode>(std::move(options)));
  }

  std::vector<GridNodeId> worker_ids;
  worker_ids.reserve(participants.size());
  for (const auto& participant : participants) {
    worker_ids.push_back(network.add_node(*participant));
  }

  // Hostile-grid wiring: link faults plus participant churn, all seeded.
  if (config.faults.any() || !config.crashes.empty()) {
    FaultPlan plan;
    plan.seed = config.fault_seed != 0 ? config.fault_seed
                                       : config.seed ^ 0xfa017ed5eedULL;
    plan.faults = config.faults;
    for (const ParticipantCrash& crash : config.crashes) {
      plan.crashes.push_back(
          CrashSpec{worker_ids[crash.participant_index].value,
                    crash.after_messages, crash.offline_for});
    }
    network.set_fault_plan(plan);
  }

  // Optional GRACE-style broker in the middle.
  std::unique_ptr<BrokerNode> broker;
  std::vector<GridNodeId> slots;
  if (config.use_broker) {
    broker = std::make_unique<BrokerNode>(worker_ids);
    const GridNodeId broker_id = network.add_node(*broker);
    slots.assign(config.participant_count, broker_id);
  } else {
    slots = worker_ids;
  }

  SupervisorNode::Plan plan;
  plan.domain = Domain(config.domain_begin, config.domain_end);
  plan.workload = config.workload;
  plan.workload_seed = config.workload_seed;
  plan.scheme = config.scheme;
  plan.seed = config.seed;
  plan.schemes = config.schemes;
  plan.validate_reported_hits = config.validate_reported_hits;
  plan.pump_threads = config.supervisor_pump_threads;
  plan.max_task_retries = config.max_task_retries;
  SupervisorNode supervisor(plan, slots);
  network.add_node(supervisor);

  supervisor.start(network);
  const std::size_t delivered = network.run();
  check(supervisor.done(),
        "run_grid_simulation: network went quiet before all verdicts");

  GridRunResult result;
  result.messages_delivered = delivered;
  result.network = network.stats();
  result.faults = network.fault_stats();
  result.tasks_reassigned = supervisor.tasks_reassigned();
  result.hits = supervisor.accepted_hits();
  result.supervisor_evaluations = supervisor.verification_evaluations();
  result.results_verified = supervisor.results_verified();
  for (const auto& participant : participants) {
    result.participant_evaluations += participant->honest_evaluations();
  }

  // Attribute each final outcome to the participant that actually held the
  // task: directly via the peer node, or through the broker's routing table
  // when one hides the workers. (Re-assignment means task ids alone no
  // longer identify a participant.)
  std::map<std::uint32_t, std::size_t> index_of_node;
  for (std::size_t i = 0; i < worker_ids.size(); ++i) {
    index_of_node.emplace(worker_ids[i].value, i);
  }
  for (const SupervisorNode::TaskOutcome& outcome : supervisor.outcomes()) {
    GridNodeId worker = outcome.peer;
    if (broker != nullptr) {
      if (const auto routed = broker->worker_of(outcome.task)) {
        worker = *routed;
      }
    }
    const auto indexed = index_of_node.find(worker.value);

    ParticipantOutcome po;
    po.task = outcome.task;
    // A task aborted before its assignment ever cleared the broker has no
    // route; fall back to the slot the supervisor actually targeted (valid
    // for retried ids too, unlike anything derived from the task number).
    po.participant_index = indexed != index_of_node.end()
                               ? indexed->second
                               : outcome.slot % config.participant_count;
    po.was_cheater = is_cheater[po.participant_index];
    po.accepted = outcome.verdict.accepted();
    po.status = outcome.verdict.status;
    result.outcomes.push_back(po);

    if (po.status == VerdictStatus::kAborted) {
      ++result.tasks_aborted;  // no protocol outcome — not an accusation
    } else if (po.was_cheater) {
      po.accepted ? ++result.cheater_tasks_accepted
                  : ++result.cheater_tasks_rejected;
    } else {
      po.accepted ? ++result.honest_tasks_accepted
                  : ++result.honest_tasks_rejected;
    }
  }
  return result;
}

}  // namespace ugc
