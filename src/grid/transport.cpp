#include "grid/transport.h"

namespace ugc {

void NetworkStats::record(GridNodeId from, GridNodeId to,
                          std::uint64_t bytes) {
  ++total_messages;
  total_bytes += bytes;
  auto& link = links[{from.value, to.value}];
  ++link.messages;
  link.bytes += bytes;
  auto& sent = sent_by[from.value];
  ++sent.messages;
  sent.bytes += bytes;
  auto& received = received_by[to.value];
  ++received.messages;
  received.bytes += bytes;
}

TaskId task_of(const Message& message) {
  struct Visitor {
    TaskId operator()(const TaskAssignment& m) { return m.task; }
    TaskId operator()(const Commitment& m) { return m.task; }
    TaskId operator()(const SampleChallenge& m) { return m.task; }
    TaskId operator()(const ProofResponse& m) { return m.task; }
    TaskId operator()(const NiCbsProof& m) { return m.commitment.task; }
    TaskId operator()(const ResultsUpload& m) { return m.task; }
    TaskId operator()(const ScreenerReport& m) { return m.task; }
    TaskId operator()(const RingerReport& m) { return m.task; }
    TaskId operator()(const Verdict& m) { return m.task; }
    TaskId operator()(const BatchProofResponse& m) { return m.task; }
    TaskId operator()(const Hello&) { return TaskId{0}; }
    TaskId operator()(const HelloChallenge&) { return TaskId{0}; }
    TaskId operator()(const HelloProof&) { return TaskId{0}; }
    TaskId operator()(const EpochCommitment& m) { return m.task; }
    TaskId operator()(const EpochChallenge& m) { return m.task; }
    TaskId operator()(const EpochProofResponse& m) { return m.task; }
    TaskId operator()(const EpochAck& m) { return m.task; }
    TaskId operator()(const EpochResume& m) { return m.task; }
  };
  return std::visit(Visitor{}, message);
}

}  // namespace ugc
