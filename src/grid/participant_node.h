#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/cheating.h"
#include "grid/transport.h"
#include "scheme/registry.h"
#include "workloads/registry.h"

namespace ugc {

// A grid participant: accepts task assignments, resolves the named workload
// and verification scheme through their registries, and drives the scheme's
// ParticipantSession — the node itself knows nothing about any particular
// scheme. One node can hold several concurrent tasks (each with its own
// session state).
class ParticipantNode final : public GridNode {
 public:
  struct Options {
    std::shared_ptr<const HonestyPolicy> policy;  // null = honest
    const WorkloadRegistry* registry = nullptr;   // null = global()
    const SchemeRegistry* schemes = nullptr;      // null = global()
    // §2.2 malicious model: how this node treats the screener channel.
    ScreenerConduct screener_conduct = ScreenerConduct::kFaithful;
    std::uint64_t conduct_seed = 1;  // drives fabricated reports
  };

  ParticipantNode() : ParticipantNode(Options{}) {}
  explicit ParticipantNode(Options options);

  void on_message(GridNodeId from, const Message& message,
                  Transport& transport) override;

  // FaultPlan crash: every in-progress session dies with the process. Past
  // verdicts and the evaluation counter survive (they model work already
  // done and reported), matching a participant that restarts from scratch.
  void on_crash() override { active_.clear(); }

  // Verdicts received from the supervisor, by task.
  const std::map<TaskId, Verdict>& verdicts() const { return verdicts_; }

  // Assignments still mid-protocol (no verdict yet). Non-zero when the
  // connection dies mid-exchange — how a real client knows work was lost.
  std::size_t active_tasks() const { return active_.size(); }

  // Genuine f evaluations across all tasks (the participant's real work).
  std::uint64_t honest_evaluations() const { return honest_evaluations_; }

  const HonestyPolicy& policy() const { return *policy_; }

 private:
  struct ActiveTask {
    std::unique_ptr<ParticipantSession> session;
    // Evaluations already folded into honest_evaluations_ (sessions report
    // running totals; the node accumulates deltas after every drain).
    std::uint64_t counted_evaluations = 0;
    // Screener hits already transmitted. One-shot schemes report everything
    // at assignment time; pipelined sessions keep discovering hits as later
    // epochs are swept, and the node ships each new batch as a delta
    // ScreenerReport after the drain that surfaced it.
    std::size_t reported_hits = 0;
  };

  void handle_assignment(GridNodeId supervisor, const TaskAssignment& m,
                         Transport& transport);
  // Sends the session's pending messages and updates the work accounting.
  void drain(GridNodeId supervisor, ActiveTask& active, Transport& transport);
  // Ships screener hits discovered since the last report (faithful conduct
  // only — suppression stays silent and fabrication already fired its junk
  // with the initial report). No frame is sent when nothing is new.
  void report_new_hits(GridNodeId supervisor, ActiveTask& active,
                       Transport& transport);
  // Applies this node's ScreenerConduct to an honest report.
  ScreenerReport conduct_report(const Task& task, ScreenerReport honest);

  std::shared_ptr<const HonestyPolicy> policy_;
  const WorkloadRegistry* registry_;
  const SchemeRegistry* schemes_;
  ScreenerConduct conduct_;
  std::uint64_t conduct_seed_;
  std::map<TaskId, ActiveTask> active_;
  // Every assignment ever accepted (survives crashes, like verdicts_):
  // duplicate assignment frames are dropped instead of restarting work. A
  // re-sent assignment for a task with no live session and no verdict (the
  // pipelined crash-recovery path) re-opens instead.
  std::set<TaskId> assigned_;
  // Resume points received via EpochResume, consumed by the next
  // assignment for that task (the supervisor sends the resume frame ahead
  // of the re-built assignment).
  std::map<TaskId, std::uint64_t> resume_;
  std::map<TaskId, Verdict> verdicts_;
  std::uint64_t honest_evaluations_ = 0;
};

}  // namespace ugc
