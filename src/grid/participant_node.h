#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/cbs.h"
#include "core/cheating.h"
#include "core/nicbs.h"
#include "core/ringer.h"
#include "grid/network.h"
#include "workloads/registry.h"

namespace ugc {

// A grid participant: accepts task assignments, evaluates its domain under
// an HonestyPolicy (honest by default), and engages in whichever
// verification scheme the assignment names. One node can hold several
// concurrent tasks (each with its own protocol state).
class ParticipantNode final : public GridNode {
 public:
  struct Options {
    std::shared_ptr<const HonestyPolicy> policy;  // null = honest
    const WorkloadRegistry* registry = nullptr;   // null = global()
    // §2.2 malicious model: how this node treats the screener channel.
    ScreenerConduct screener_conduct = ScreenerConduct::kFaithful;
    std::uint64_t conduct_seed = 1;  // drives fabricated reports
  };

  ParticipantNode() : ParticipantNode(Options{}) {}
  explicit ParticipantNode(Options options);

  void on_message(GridNodeId from, const Message& message,
                  SimNetwork& network) override;

  // Verdicts received from the supervisor, by task.
  const std::map<TaskId, Verdict>& verdicts() const { return verdicts_; }

  // Genuine f evaluations across all tasks (the participant's real work).
  std::uint64_t honest_evaluations() const { return honest_evaluations_; }

  const HonestyPolicy& policy() const { return *policy_; }

 private:
  struct ActiveTask {
    Task task;
    // Interactive CBS keeps the participant object alive across the
    // challenge round; other schemes complete within one message.
    std::unique_ptr<CbsParticipant> cbs;
    bool batched = false;
  };

  void handle_assignment(GridNodeId supervisor, const TaskAssignment& m,
                         SimNetwork& network);
  void handle_challenge(GridNodeId supervisor, const SampleChallenge& m,
                        SimNetwork& network);
  // Applies this node's ScreenerConduct to an honest report.
  ScreenerReport conduct_report(const Task& task, ScreenerReport honest);

  std::shared_ptr<const HonestyPolicy> policy_;
  const WorkloadRegistry* registry_;
  ScreenerConduct conduct_;
  std::uint64_t conduct_seed_;
  std::map<TaskId, ActiveTask> active_;
  std::map<TaskId, Verdict> verdicts_;
  std::uint64_t honest_evaluations_ = 0;
};

}  // namespace ugc
