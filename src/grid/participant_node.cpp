#include "grid/participant_node.h"

#include "common/error.h"
#include "common/rng.h"

namespace ugc {

ParticipantNode::ParticipantNode(Options options)
    : policy_(options.policy != nullptr ? std::move(options.policy)
                                        : make_honest_policy()),
      registry_(options.registry != nullptr ? options.registry
                                            : &WorkloadRegistry::global()),
      conduct_(options.screener_conduct),
      conduct_seed_(options.conduct_seed) {}

ScreenerReport ParticipantNode::conduct_report(const Task& task,
                                               ScreenerReport honest) {
  switch (conduct_) {
    case ScreenerConduct::kFaithful:
      return honest;
    case ScreenerConduct::kSuppress:
      return ScreenerReport{task.id, {}};
    case ScreenerConduct::kFabricate: {
      // The paper's malicious S(x, z): a stream of plausible-looking junk.
      Rng rng(conduct_seed_ ^ task.id.value);
      ScreenerReport fake{task.id, {}};
      const std::size_t count = 1 + honest.hits.size();
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t x =
            task.domain.begin() + rng.uniform(task.domain.size());
        fake.hits.push_back(
            ScreenerHit{x, concat("fabricated:", x)});
      }
      return fake;
    }
  }
  return honest;
}

void ParticipantNode::on_message(GridNodeId from, const Message& message,
                                 SimNetwork& network) {
  if (const auto* assignment = std::get_if<TaskAssignment>(&message)) {
    handle_assignment(from, *assignment, network);
  } else if (const auto* challenge = std::get_if<SampleChallenge>(&message)) {
    handle_challenge(from, *challenge, network);
  } else if (const auto* verdict = std::get_if<Verdict>(&message)) {
    verdicts_[verdict->task] = *verdict;
  }
  // Other message types are not addressed to participants; ignore them
  // (a real client drops unexpected traffic rather than crashing).
}

void ParticipantNode::handle_assignment(GridNodeId supervisor,
                                        const TaskAssignment& m,
                                        SimNetwork& network) {
  const WorkloadBundle bundle =
      registry_->make(m.workload, m.workload_seed);
  const Task task = Task::make(m.task, Domain(m.domain_begin, m.domain_end),
                               bundle.f, bundle.screener);

  switch (m.scheme.kind) {
    case SchemeKind::kDoubleCheck:
    case SchemeKind::kNaiveSampling: {
      // Plain sweep: every result is uploaded (the O(n) baseline).
      ResultsUpload upload;
      upload.task = task.id;
      ScreenerReport report{task.id, {}};
      const std::uint64_t n = task.domain.size();
      upload.results.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto decision = policy_->decide(LeafIndex{i}, task);
        if (decision.honest) {
          ++honest_evaluations_;
        }
        const std::uint64_t x = task.domain.input(LeafIndex{i});
        if (auto hit = task.screener->screen(x, decision.value)) {
          report.hits.push_back(ScreenerHit{x, std::move(*hit)});
        }
        upload.results.push_back(decision.value);
      }
      network.send(id(), supervisor, upload);
      network.send(id(), supervisor, conduct_report(task, std::move(report)));
      break;
    }

    case SchemeKind::kCbs: {
      auto cbs = std::make_unique<CbsParticipant>(task, m.scheme.cbs, policy_);
      const Commitment commitment = cbs->commit();
      honest_evaluations_ += cbs->metrics().honest_evaluations;
      network.send(id(), supervisor, commitment);
      network.send(id(), supervisor,
                   conduct_report(task, cbs->screener_report()));
      active_.emplace(task.id, ActiveTask{task, std::move(cbs),
                                          m.scheme.cbs.use_batch_proofs});
      break;
    }

    case SchemeKind::kNiCbs: {
      NiCbsParticipant nicbs(task, m.scheme.nicbs, policy_);
      const NiCbsProof proof = nicbs.prove();
      honest_evaluations_ += nicbs.metrics().honest_evaluations;
      network.send(id(), supervisor, proof);
      network.send(id(), supervisor,
                   conduct_report(task, nicbs.screener_report()));
      break;
    }

    case SchemeKind::kRinger: {
      RingerParticipant ringer(task, m.ringer_images, policy_);
      const RingerReport report = ringer.scan();
      honest_evaluations_ += ringer.honest_evaluations();
      network.send(id(), supervisor, report);
      network.send(id(), supervisor,
                   conduct_report(task, ScreenerReport{task.id, ringer.hits()}));
      break;
    }
  }
}

void ParticipantNode::handle_challenge(GridNodeId supervisor,
                                       const SampleChallenge& m,
                                       SimNetwork& network) {
  const auto it = active_.find(m.task);
  check(it != active_.end(),
        "ParticipantNode: challenge for unknown task ", m.task.value);
  check(it->second.cbs != nullptr,
        "ParticipantNode: challenge for non-CBS task ", m.task.value);
  if (it->second.batched) {
    network.send(id(), supervisor, it->second.cbs->respond_batched(m));
  } else {
    network.send(id(), supervisor, it->second.cbs->respond(m));
  }
}

}  // namespace ugc
