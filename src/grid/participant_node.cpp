#include "grid/participant_node.h"

#include "common/error.h"
#include "common/rng.h"

namespace ugc {

ParticipantNode::ParticipantNode(Options options)
    : policy_(options.policy != nullptr ? std::move(options.policy)
                                        : make_honest_policy()),
      registry_(options.registry != nullptr ? options.registry
                                            : &WorkloadRegistry::global()),
      schemes_(options.schemes != nullptr ? options.schemes
                                          : &SchemeRegistry::global()),
      conduct_(options.screener_conduct),
      conduct_seed_(options.conduct_seed) {}

ScreenerReport ParticipantNode::conduct_report(const Task& task,
                                               ScreenerReport honest) {
  switch (conduct_) {
    case ScreenerConduct::kFaithful:
      return honest;
    case ScreenerConduct::kSuppress:
      return ScreenerReport{task.id, {}};
    case ScreenerConduct::kFabricate: {
      // The paper's malicious S(x, z): a stream of plausible-looking junk.
      Rng rng(conduct_seed_ ^ task.id.value);
      ScreenerReport fake{task.id, {}};
      const std::size_t count = 1 + honest.hits.size();
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t x =
            task.domain.begin() + rng.uniform(task.domain.size());
        fake.hits.push_back(
            ScreenerHit{x, concat("fabricated:", x)});
      }
      return fake;
    }
  }
  return honest;
}

void ParticipantNode::drain(GridNodeId supervisor, ActiveTask& active,
                            Transport& transport) {
  while (auto message = active.session->next_message()) {
    transport.send(id(), supervisor, to_message(*message));
  }
  const std::uint64_t evaluations = active.session->honest_evaluations();
  honest_evaluations_ += evaluations - active.counted_evaluations;
  active.counted_evaluations = evaluations;
}

void ParticipantNode::report_new_hits(GridNodeId supervisor,
                                      ActiveTask& active,
                                      Transport& transport) {
  const ScreenerReport honest = active.session->screener_report();
  if (honest.hits.size() <= active.reported_hits) {
    return;  // nothing new (one-shot schemes always land here)
  }
  if (conduct_ == ScreenerConduct::kFaithful) {
    ScreenerReport delta{honest.task, {}};
    delta.hits.assign(honest.hits.begin() + active.reported_hits,
                      honest.hits.end());
    transport.send(id(), supervisor, std::move(delta));
  }
  active.reported_hits = honest.hits.size();
}

void ParticipantNode::on_message(GridNodeId from, const Message& message,
                                 Transport& transport) {
  if (const auto* assignment = std::get_if<TaskAssignment>(&message)) {
    handle_assignment(from, *assignment, transport);
    return;
  }
  if (const auto* verdict = std::get_if<Verdict>(&message)) {
    verdicts_[verdict->task] = *verdict;
    active_.erase(verdict->task);  // the protocol for this task is over
    return;
  }
  if (const auto* resume = std::get_if<EpochResume>(&message)) {
    // Arrives ahead of a re-sent assignment; the next session for this
    // task opens at the supervisor's verified frontier.
    resume_[resume->task] = resume->epoch;
    return;
  }
  if (const auto scheme_message = to_scheme_message(message)) {
    const auto it = active_.find(task_of(*scheme_message));
    if (it == active_.end()) {
      return;  // stale or misrouted scheme traffic
    }
    ActiveTask& active = it->second;
    active.session->on_message(*scheme_message);
    drain(from, active, transport);
    report_new_hits(from, active, transport);
    if (active.session->finished()) {
      active_.erase(it);
    }
  }
  // Anything else is not addressed to participants; ignore it (a real
  // client drops unexpected traffic rather than crashing).
}

void ParticipantNode::handle_assignment(GridNodeId supervisor,
                                        const TaskAssignment& m,
                                        Transport& transport) {
  if (!assigned_.insert(m.task).second && !resume_.contains(m.task)) {
    // A duplicated (or stalled-and-replayed) assignment frame must be
    // idempotent: re-opening the session would discard in-flight protocol
    // state and redo the whole computation. The one exception is a re-sent
    // assignment the supervisor announced with an EpochResume (pipelined
    // crash recovery) — that one re-opens, resuming at the verified
    // frontier. Timeout re-assignment is unaffected either way (the
    // supervisor retries under a fresh task id).
    return;
  }
  const WorkloadBundle bundle =
      registry_->make(m.workload, m.workload_seed);
  const Task task = Task::make(m.task, Domain(m.domain_begin, m.domain_end),
                               bundle.f, bundle.screener);
  const VerificationScheme& scheme = schemes_->resolve(m.scheme);

  ParticipantContext context{task, m.scheme, m.ringer_images, policy_};
  if (const auto it = resume_.find(m.task); it != resume_.end()) {
    context.resume_epoch = it->second;
    resume_.erase(it);
  }
  ActiveTask active{scheme.open_participant(std::move(context)), 0};
  drain(supervisor, active, transport);
  ScreenerReport honest = active.session->screener_report();
  active.reported_hits = honest.hits.size();
  transport.send(id(), supervisor, conduct_report(task, std::move(honest)));
  if (!active.session->finished()) {
    active_.insert_or_assign(task.id, std::move(active));
  }
}

}  // namespace ugc
