#pragma once

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/scheme_config.h"
#include "grid/transport.h"
#include "scheme/registry.h"
#include "workloads/registry.h"

namespace ugc {

// The grid supervisor: partitions the domain, assigns tasks (directly to
// participants or through a broker), and drives one SupervisorSession per
// assignment group — the node routes messages and collects verdicts/hits,
// while everything scheme-specific lives behind the session interface.
//
// On a hostile grid (FaultPlan: loss, churn, crashes) a session can stall;
// the node's on_quiescent hook is the timeout signal. A stalled group is
// re-assigned — fresh task ids, the next participant slots, a fresh session
// with fresh sampling randomness — up to `max_task_retries` times, after
// which its tasks settle as kAborted (no accusation is ever made for a
// protocol that merely failed to complete). Stale traffic from a superseded
// attempt cannot reach the new session: attempts have distinct task ids and
// every message must arrive from the task's current peer.
class SupervisorNode final : public GridNode {
 public:
  struct Plan {
    Domain domain{0, 1};
    std::string workload = "test";
    std::uint64_t workload_seed = 1;
    SchemeConfig scheme;
    std::uint64_t seed = 1;  // drives sample selection / ringer planting
    const WorkloadRegistry* registry = nullptr;  // null = global()
    const SchemeRegistry* schemes = nullptr;     // null = global()
    // Countermeasure to §2.2's malicious screener conduct: re-derive each
    // reported hit (one f evaluation per hit) and drop fabrications.
    // Upload-based schemes never trust reports at all — the supervisor
    // screens the uploaded results itself. Suppressed discoveries remain
    // unrecoverable under commitment schemes (the documented CBS gap).
    bool validate_reported_hits = true;
    // Session-pump concurrency. 1 (default) verifies inline as messages
    // arrive — the historical serial behavior. Any other value (0 = hardware
    // concurrency) defers scheme messages into per-session inboxes and
    // drains them in parallel when the network goes quiet: sessions are
    // sharded per assignment group and share no mutable state, and outputs
    // merge serially in session order, so verdicts, metrics, and reputation
    // inputs are byte-identical to the serial pump (pinned by golden test).
    unsigned pump_threads = 1;
    // Re-assignments per group before its unsettled tasks abort. Only
    // reachable when traffic is actually lost (faults/churn); fault-free
    // runs never time out.
    std::size_t max_task_retries = 2;
  };

  // One task per entry in `slots`; with a broker every slot is the broker's
  // id and the broker fans out to its workers. Schemes with replicas() > 1
  // (double-check) give consecutive groups of that many slots the same
  // subdomain.
  SupervisorNode(Plan plan, std::vector<GridNodeId> slots);

  // Sends out all assignments. Call once, before the network runs.
  void start(Transport& transport);

  void on_message(GridNodeId from, const Message& message,
                  Transport& transport) override;

  // Parallel session pump: drains every non-empty session inbox over
  // parallel_for, then merges outputs in session order. No-op (returns
  // false) under the serial pump or when nothing is buffered.
  bool flush(Transport& transport) override;

  // Timeout/retry: re-assigns or aborts groups stuck without verdicts.
  bool on_quiescent(Transport& transport) override;

  // True once every live (non-superseded) task has a verdict.
  bool done() const;

  struct TaskOutcome {
    TaskId task;
    Domain domain{0, 1};
    GridNodeId peer;        // immediate counterparty (participant or broker)
    std::size_t slot = 0;   // assignment slot the supervisor targeted
    Verdict verdict;
  };

  // Final outcomes only: superseded attempts are excluded, so there is
  // exactly one outcome per original assignment slot.
  std::vector<TaskOutcome> outcomes() const;

  // Screener hits from tasks whose verdict accepted, de-duplicated by
  // (x, report).
  std::vector<ScreenerHit> accepted_hits() const;

  // f evaluations the supervisor spent on verification (recompute verifier
  // calls, double-check arbitration, ringer precomputation).
  std::uint64_t verification_evaluations() const {
    return counting_f_->calls();
  }

  // ResultVerifier invocations across all sessions (cheap-verifier
  // workloads make this differ from verification_evaluations()).
  std::uint64_t results_verified() const;

  // Tasks re-assigned to a different peer after a timeout.
  std::uint64_t tasks_reassigned() const { return tasks_reassigned_; }

  // Frames the stale-traffic guard dropped: unknown/retired task ids, plus
  // anything arriving from other than the task's current peer (late frames
  // from a superseded pre-retry attempt, spoofed senders). Observability
  // for what was previously a silent drop — a rising counter during a
  // fault-free run means misrouted or forged traffic.
  std::uint64_t stale_frames_dropped() const { return stale_frames_dropped_; }

  // Reconnect support: points assignment slot `slot_index` at a new peer
  // (a worker that dropped and came back on a fresh connection gets a
  // fresh GridNodeId). Unsettled, non-superseded tasks targeting the slot
  // re-aim at the new peer, so the stale-peer guard admits its traffic
  // and the next timeout retry reaches the reconnected worker instead of
  // the dead connection. Messages lost in flight are not replayed — the
  // quiescence retry path re-assigns the group as usual.
  //
  // With a transport, additionally re-enters pipelined tasks in place: for
  // each re-aimed task whose session exposes a resume epoch, sends
  // EpochResume (the verified frontier) followed by the re-built
  // TaskAssignment, so the replacement attempt resumes computing at the
  // first unverified epoch instead of waiting out a timeout retry.
  void replace_slot(std::size_t slot_index, GridNodeId peer,
                    Transport* transport = nullptr);

 private:
  struct TaskState {
    Domain domain{0, 1};
    GridNodeId peer;
    std::size_t slot_index = 0;     // into slots_ (this attempt's target)
    std::size_t session_index = 0;  // into sessions_
    bool superseded = false;        // retired by a retry; not an outcome
    std::optional<Verdict> verdict;
    std::vector<ScreenerHit> hits;
  };

  // One assignment group's session plus its deferred-message inbox (parallel
  // pump only). Inbox order preserves arrival order across the group's
  // tasks, so a session sees the exact message sequence the serial pump
  // would feed it.
  struct SessionSlot {
    std::unique_ptr<SupervisorSession> session;
    std::vector<std::pair<TaskId, SchemeMessage>> inbox;
  };

  // A replica group across retries: current attempt's task ids and slot
  // assignments. Sessions of superseded attempts stay in sessions_ (their
  // task states drop all traffic) so session indices remain stable.
  struct GroupState {
    Domain domain{0, 1};
    std::vector<TaskId> tasks;       // current attempt
    std::vector<std::size_t> slots;  // index into slots_ per replica
    std::size_t retries = 0;
  };

  bool parallel_pump() const { return plan_.pump_threads != 1; }

  Task task_for(TaskId id, const Domain& domain) const;
  void settle(TaskState& state, Verdict verdict, Transport& transport);
  // Opens a fresh session for the group's current slots, creates task
  // states, and sends the assignments (start and every retry).
  void assign_group(GroupState& group, Transport& transport);
  // Routes a session's queued messages / verdicts / hits into the grid.
  void drain(SupervisorSession& session, Transport& transport);
  // Generic screener-report handling (validation against the domain plus a
  // recompute check), applied only when the scheme trusts reports.
  void handle_report(TaskState& state, const ScreenerReport& report);

  Plan plan_;
  std::vector<GridNodeId> slots_;
  const VerificationScheme* scheme_ = nullptr;
  WorkloadBundle bundle_;
  std::shared_ptr<CountingComputeFunction> counting_f_;
  std::shared_ptr<const ResultVerifier> verifier_;
  Rng rng_;
  std::vector<SessionSlot> sessions_;
  std::vector<GroupState> groups_;
  std::vector<std::size_t> pending_;  // flush worklist, reused across rounds
  std::map<TaskId, TaskState> tasks_;
  std::uint64_t next_task_ = 1;
  std::uint64_t tasks_reassigned_ = 0;
  std::uint64_t stale_frames_dropped_ = 0;
  bool started_ = false;
};

}  // namespace ugc
