#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/cbs.h"
#include "core/nicbs.h"
#include "core/ringer.h"
#include "core/scheme_config.h"
#include "grid/network.h"
#include "workloads/registry.h"

namespace ugc {

// The grid supervisor: partitions the domain, assigns tasks (directly to
// participants or through a broker), runs the configured verification
// scheme on every returned result set, and collects screener hits from the
// participants it accepted.
class SupervisorNode final : public GridNode {
 public:
  struct Plan {
    Domain domain{0, 1};
    std::string workload = "test";
    std::uint64_t workload_seed = 1;
    SchemeConfig scheme;
    std::uint64_t seed = 1;  // drives sample selection / ringer planting
    const WorkloadRegistry* registry = nullptr;  // null = global()
    // Countermeasure to §2.2's malicious screener conduct: re-derive each
    // reported hit (one f evaluation per hit) and drop fabrications.
    // Upload-based schemes never trust reports at all — the supervisor
    // screens the uploaded results itself. Suppressed discoveries remain
    // unrecoverable under commitment schemes (the documented CBS gap).
    bool validate_reported_hits = true;
  };

  // One task per entry in `slots`; with a broker every slot is the broker's
  // id and the broker fans out to its workers. For double-check, consecutive
  // groups of `replicas` slots receive the same subdomain.
  SupervisorNode(Plan plan, std::vector<GridNodeId> slots);

  // Sends out all assignments. Call once, before the network runs.
  void start(SimNetwork& network);

  void on_message(GridNodeId from, const Message& message,
                  SimNetwork& network) override;

  // True once every task has a verdict.
  bool done() const;

  struct TaskOutcome {
    TaskId task;
    Domain domain{0, 1};
    GridNodeId peer;  // immediate counterparty (participant or broker)
    Verdict verdict;
  };

  std::vector<TaskOutcome> outcomes() const;

  // Screener hits from tasks whose verdict accepted, de-duplicated by
  // (x, report).
  std::vector<ScreenerHit> accepted_hits() const;

  // f evaluations the supervisor spent on verification (recompute verifier
  // calls, double-check arbitration, ringer precomputation).
  std::uint64_t verification_evaluations() const {
    return counting_f_->calls();
  }

  // ResultVerifier invocations (cheap-verifier workloads make this differ
  // from verification_evaluations()).
  std::uint64_t results_verified() const { return results_verified_; }

 private:
  struct TaskState {
    Domain domain{0, 1};
    GridNodeId peer;
    std::size_t group = 0;  // double-check replica group
    std::unique_ptr<CbsSupervisor> cbs;
    std::unique_ptr<RingerSupervisor> ringer;
    std::optional<ResultsUpload> upload;  // double-check: held until group done
    std::optional<Verdict> verdict;
    std::vector<ScreenerHit> hits;
  };

  Task task_for(TaskId id, const Domain& domain) const;
  void settle(TaskId id, TaskState& state, Verdict verdict,
              SimNetwork& network);
  void handle_upload(TaskId id, TaskState& state, const ResultsUpload& upload,
                     SimNetwork& network);
  Verdict check_naive_upload(TaskId id, const TaskState& state,
                             const ResultsUpload& upload);
  void screen_upload(TaskState& state, const ResultsUpload& upload);
  void resolve_double_check_group(std::size_t group, SimNetwork& network);

  Plan plan_;
  std::vector<GridNodeId> slots_;
  WorkloadBundle bundle_;
  std::shared_ptr<CountingComputeFunction> counting_f_;
  std::shared_ptr<const ResultVerifier> verifier_;
  Rng rng_;
  std::map<TaskId, TaskState> tasks_;
  std::map<std::size_t, std::vector<TaskId>> groups_;  // double-check
  std::uint64_t results_verified_ = 0;
  bool started_ = false;
};

}  // namespace ugc
