#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "grid/transport.h"
#include "wire/messages.h"

namespace ugc {

// ---------------------------------------------------------------------------
// Fault injection. A FaultPlan turns the reliable FIFO transport into a
// hostile one: per-link message drop, duplication, reordering, single-bit
// corruption, latency spikes (stalls), and participant crash/rejoin. All
// faults are drawn from one seed-driven Rng in send order, so a scenario is
// exactly reproducible: the same plan and traffic always misbehave the same
// way.
// ---------------------------------------------------------------------------

// Per-link fault probabilities, each drawn independently per message.
struct LinkFaults {
  double drop = 0.0;       // message vanishes in transit
  double duplicate = 0.0;  // a second identical frame is delivered
  double reorder = 0.0;    // frame is inserted at a random queue position
  double corrupt = 0.0;    // one random payload bit is flipped
  double stall = 0.0;      // frame is parked until the grid goes quiet

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           stall > 0;
  }

  friend bool operator==(const LinkFaults&, const LinkFaults&) = default;
};

// A participant crash: after the node has received `after_messages`
// messages (0 = offline from the very start), it goes offline (inbound
// traffic is dropped) and loses all in-progress protocol state
// (GridNode::on_crash). It rejoins — state still lost — once `offline_for`
// further delivery attempts have elapsed, or never when `offline_for` is 0.
struct CrashSpec {
  std::uint32_t node = 0;
  std::uint64_t after_messages = 1;
  std::uint64_t offline_for = 0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  // Default faults for every directed link; per-link overrides win.
  LinkFaults faults;
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkFaults> link_overrides;
  std::vector<CrashSpec> crashes;
  // Corrupted frames are normally discarded at delivery, modeling a
  // transport with an integrity check (TCP/TLS): an application-level bit
  // flip is indistinguishable from cheating, so no verification scheme
  // could keep honest participants safe from it. Set this to deliver the
  // flipped bytes instead and exercise the wire decoders end to end
  // (undecodable frames are still counted and dropped, never thrown out of
  // the network).
  bool deliver_corrupt = false;

  bool any() const {
    return faults.any() || !link_overrides.empty() || !crashes.empty();
  }
};

struct FaultStats {
  std::uint64_t dropped = 0;             // vanished in transit
  std::uint64_t duplicated = 0;          // extra frames injected
  std::uint64_t reordered = 0;           // frames delivered out of order
  std::uint64_t corrupted = 0;           // frames with a flipped bit
  std::uint64_t corrupt_discarded = 0;   // discarded by the integrity check
  std::uint64_t corrupt_undecodable = 0; // delivered but rejected by decode
  std::uint64_t stalled = 0;             // frames parked until quiescence
  std::uint64_t dropped_offline = 0;     // frames to a crashed node
  std::uint64_t crashes = 0;
  std::uint64_t rejoins = 0;

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

// Deterministic in-process Transport with exact byte metering — the
// simulation/testing implementation of the Transport interface (the
// production one is net/tcp_transport.h).
//
// Every send() serializes the message through the wire codec, charges the
// directed link with the encoded size, and queues it FIFO; run() delivers
// until the grid goes quiet. Single-threaded and deterministic: the same
// seed-driven scenario always produces the same traffic — including every
// injected fault when a FaultPlan is set.
class SimTransport final : public Transport {
 public:
  // Registers a node and assigns its id. The node must outlive the
  // transport.
  GridNodeId add_node(GridNode& node);

  // Installs a fault plan. Must be called before any traffic flows.
  void set_fault_plan(const FaultPlan& plan);

  // Encodes, meters, and queues a message (subject to the fault plan).
  void send(GridNodeId from, GridNodeId to, const Message& message) override;

  // Delivers the next queued message (decoding it back through the codec).
  // Returns false when the queue is empty.
  bool deliver_one();

  // Delivers until idle, flushing nodes (GridNode::flush, in node-id order)
  // each time the queue drains; when deliveries and flushes both go quiet,
  // releases stalled frames, then fires GridNode::on_quiescent (the timeout
  // hook) — the run ends only once none of the three makes progress. Throws
  // ugc::Error after `max_deliveries` as a protocol-loop guard. Returns the
  // number of delivery attempts.
  std::size_t run(std::size_t max_deliveries = 1'000'000);

  const NetworkStats& stats() const override { return stats_; }
  const FaultStats& fault_stats() const { return fault_stats_; }
  std::size_t pending() const { return queue_.size() + parked_.size(); }

  bool offline(GridNodeId node) const override;

 private:
  struct Pending {
    GridNodeId from;
    GridNodeId to;
    Bytes payload;
    bool corrupted = false;
  };

  struct NodeFaultState {
    bool offline = false;
    std::uint64_t received = 0;
    std::uint64_t rejoin_at = 0;  // delivery tick; 0 = never
    std::size_t next_crash = 0;   // index into crashes (this node's specs)
    std::vector<CrashSpec> crashes;
  };

  const LinkFaults& faults_for(GridNodeId from, GridNodeId to) const;
  NodeFaultState* fault_state(std::uint32_t node);
  void enqueue(Pending pending, const LinkFaults& faults, Rng& rng);
  void recycle(Bytes payload);

  std::vector<GridNode*> nodes_;
  std::deque<Pending> queue_;
  std::vector<Pending> parked_;  // stalled frames, released at quiescence
  // Retired payload buffers, recycled through encode_message_into so
  // steady-state traffic stops allocating per message.
  std::vector<Bytes> buffer_pool_;
  NetworkStats stats_;

  FaultPlan plan_;
  bool faults_enabled_ = false;
  Rng fault_rng_{1};
  FaultStats fault_stats_;
  std::uint64_t delivery_ticks_ = 0;
  std::map<std::uint32_t, NodeFaultState> node_faults_;
};

// Historical name, kept so existing simulations/tests read naturally.
using SimNetwork = SimTransport;

}  // namespace ugc
