#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/types.h"
#include "wire/messages.h"

namespace ugc {

class SimNetwork;

// Per-link / per-node traffic counters.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

struct NetworkStats {
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  // Directed link (from, to) -> stats.
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkStats> links;
  std::map<std::uint32_t, LinkStats> sent_by;
  std::map<std::uint32_t, LinkStats> received_by;

  std::uint64_t bytes_sent(GridNodeId node) const {
    const auto it = sent_by.find(node.value);
    return it == sent_by.end() ? 0 : it->second.bytes;
  }
  std::uint64_t bytes_received(GridNodeId node) const {
    const auto it = received_by.find(node.value);
    return it == received_by.end() ? 0 : it->second.bytes;
  }
};

// A node in the simulated grid (supervisor, participant, or broker).
// Implementations react to decoded messages and may send further messages
// through the network they were handed.
class GridNode {
 public:
  virtual ~GridNode() = default;

  GridNode() = default;
  GridNode(const GridNode&) = delete;
  GridNode& operator=(const GridNode&) = delete;

  virtual void on_message(GridNodeId from, const Message& message,
                          SimNetwork& network) = 0;

  // Called by SimNetwork::run() whenever the delivery queue drains. Nodes
  // that buffer work across deliveries (the supervisor's parallel session
  // pump) process it here and return true; the default does nothing. run()
  // keeps alternating deliver/flush until both go quiet.
  virtual bool flush(SimNetwork& network) {
    (void)network;
    return false;
  }

  GridNodeId id() const { return id_; }

 private:
  friend class SimNetwork;
  GridNodeId id_{};
};

// Deterministic in-process message-passing network with exact byte metering.
//
// Every send() serializes the message through the wire codec, charges the
// directed link with the encoded size, and queues it FIFO; run() delivers
// until the grid goes quiet. Single-threaded and deterministic: the same
// seed-driven scenario always produces the same traffic.
class SimNetwork {
 public:
  // Registers a node and assigns its id. The node must outlive the network.
  GridNodeId add_node(GridNode& node);

  // Encodes, meters, and queues a message.
  void send(GridNodeId from, GridNodeId to, const Message& message);

  // Delivers the next queued message (decoding it back through the codec).
  // Returns false when the queue is empty.
  bool deliver_one();

  // Delivers until idle, flushing nodes (GridNode::flush, in node-id order)
  // each time the queue drains, until neither deliveries nor flushes make
  // progress; throws ugc::Error after `max_deliveries` as a protocol-loop
  // guard. Returns the number of messages delivered.
  std::size_t run(std::size_t max_deliveries = 1'000'000);

  const NetworkStats& stats() const { return stats_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Pending {
    GridNodeId from;
    GridNodeId to;
    Bytes payload;
  };

  std::vector<GridNode*> nodes_;
  std::deque<Pending> queue_;
  // Retired payload buffers, recycled through encode_message_into so
  // steady-state traffic stops allocating per message.
  std::vector<Bytes> buffer_pool_;
  NetworkStats stats_;
};

// Routing helper: the task a protocol message belongs to (used by the
// broker, which routes purely on task ids without understanding payloads).
TaskId task_of(const Message& message);

}  // namespace ugc
