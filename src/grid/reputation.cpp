#include "grid/reputation.h"

#include <algorithm>

#include "common/error.h"

namespace ugc {

ReputationLedger::ReputationLedger(Params params) : params_(params) {
  check(params_.prior_alpha > 0.0 && params_.prior_beta > 0.0,
        "ReputationLedger: Beta prior parameters must be positive");
  check(params_.ban_threshold > 0.0 && params_.ban_threshold < 1.0,
        "ReputationLedger: ban threshold must be in (0, 1)");
}

void ReputationLedger::record(std::size_t participant, bool accepted) {
  auto [it, inserted] = records_.try_emplace(
      participant, Record{params_.prior_alpha, params_.prior_beta, 0});
  if (accepted) {
    it->second.alpha += 1.0;
  } else {
    it->second.beta += 1.0;
  }
  ++it->second.observations;
}

double ReputationLedger::trust(std::size_t participant) const {
  const auto it = records_.find(participant);
  if (it == records_.end()) {
    return params_.prior_alpha / (params_.prior_alpha + params_.prior_beta);
  }
  return it->second.alpha / (it->second.alpha + it->second.beta);
}

std::size_t ReputationLedger::observations(std::size_t participant) const {
  const auto it = records_.find(participant);
  return it == records_.end() ? 0 : it->second.observations;
}

bool ReputationLedger::banned(std::size_t participant) const {
  return observations(participant) >= params_.min_observations &&
         trust(participant) < params_.ban_threshold;
}

TournamentResult run_reputation_tournament(const TournamentConfig& config) {
  check(config.rounds >= 1, "run_reputation_tournament: rounds must be >= 1");
  const std::size_t population = config.base.participant_count;
  check(population >= 1, "run_reputation_tournament: empty population");

  // Which original participants cheat (every round, same parameters).
  std::vector<const CheaterSpec*> cheater_of(population, nullptr);
  for (const CheaterSpec& cheater : config.base.cheaters) {
    check(cheater.participant_index < population,
          "run_reputation_tournament: cheater index out of range");
    cheater_of[cheater.participant_index] = &cheater;
  }
  // Policy-driven cheaters (adaptive/colluding/custom): the same policy
  // object persists across rounds, so stateful attackers carry their state
  // — and receive verdict feedback through HonestyPolicy::observe_verdict.
  std::vector<const PolicyCheaterSpec*> policy_of(population, nullptr);
  for (const PolicyCheaterSpec& spec : config.base.policy_cheaters) {
    check(spec.participant_index < population,
          "run_reputation_tournament: policy cheater index out of range");
    policy_of[spec.participant_index] = &spec;
  }
  const auto cheats = [&](std::size_t p) {
    return cheater_of[p] != nullptr || policy_of[p] != nullptr;
  };

  ReputationLedger ledger(config.reputation);
  TournamentResult result;
  result.cheaters_purged_after = config.rounds;

  for (std::size_t round = 0; round < config.rounds; ++round) {
    // Active roster this round.
    std::vector<std::size_t> active;  // active slot -> original index
    for (std::size_t p = 0; p < population; ++p) {
      if (!ledger.banned(p)) {
        active.push_back(p);
      }
    }
    check(!active.empty(),
          "run_reputation_tournament: every participant is banned");

    GridConfig round_config = config.base;
    round_config.participant_count = active.size();
    round_config.seed = config.base.seed + round * 7919;
    round_config.cheaters.clear();
    round_config.policy_cheaters.clear();
    round_config.crashes.clear();
    // Crash specs name original participants too: follow them to their
    // current slot, and drop specs whose target is already banned.
    for (const ParticipantCrash& crash : config.base.crashes) {
      for (std::size_t slot = 0; slot < active.size(); ++slot) {
        if (active[slot] == crash.participant_index) {
          ParticipantCrash remapped = crash;
          remapped.participant_index = slot;
          round_config.crashes.push_back(remapped);
        }
      }
    }
    for (std::size_t slot = 0; slot < active.size(); ++slot) {
      if (const CheaterSpec* spec = cheater_of[active[slot]]) {
        CheaterSpec remapped = *spec;
        remapped.participant_index = slot;
        // Fresh per-round seed: the cheater guesses anew every round.
        remapped.seed = round_config.seed ^ (active[slot] * 0x9e3779b9 + 1);
        round_config.cheaters.push_back(remapped);
      }
      if (const PolicyCheaterSpec* spec = policy_of[active[slot]]) {
        PolicyCheaterSpec remapped = *spec;
        remapped.participant_index = slot;
        round_config.policy_cheaters.push_back(remapped);
      }
    }

    const GridRunResult run = run_grid_simulation(round_config);

    TournamentRound summary;
    summary.active_participants = active.size();
    summary.cheater_tasks_rejected = run.cheater_tasks_rejected;
    summary.cheater_tasks_accepted = run.cheater_tasks_accepted;
    summary.honest_tasks_rejected = run.honest_tasks_rejected;
    for (const ParticipantOutcome& outcome : run.outcomes) {
      const std::size_t original = active[outcome.participant_index];
      if (outcome.status == VerdictStatus::kAborted) {
        continue;  // no protocol outcome — reputation must not move
      }
      ledger.record(original, outcome.accepted);
      if (const PolicyCheaterSpec* spec = policy_of[original]) {
        spec->policy->observe_verdict(outcome.accepted);
      }
      if (cheats(original)) {
        // Attribute this round's assignment as (eventually) wasted work if
        // the participant is a cheater — it should not have been trusted.
        summary.evaluations_by_eventually_banned +=
            config.base.domain_end - config.base.domain_begin > 0
                ? (config.base.domain_end - config.base.domain_begin) /
                      active.size()
                : 0;
      }
    }
    result.rounds.push_back(summary);

    const bool all_cheaters_banned = [&] {
      for (std::size_t p = 0; p < population; ++p) {
        if (cheats(p) && !ledger.banned(p)) {
          return false;
        }
      }
      return true;
    }();
    if (all_cheaters_banned &&
        result.cheaters_purged_after == config.rounds) {
      result.cheaters_purged_after = round + 1;
    }
  }

  result.final_trust.resize(population);
  result.final_banned.resize(population);
  for (std::size_t p = 0; p < population; ++p) {
    result.final_trust[p] = ledger.trust(p);
    result.final_banned[p] = ledger.banned(p);
  }
  return result;
}

}  // namespace ugc
