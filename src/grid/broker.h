#pragma once

#include <map>
#include <optional>
#include <vector>

#include "grid/transport.h"

namespace ugc {

// A GRACE-style Grid Resource Broker (GRB, §4): sits between the supervisor
// and the participants, assigns incoming tasks to its registered workers,
// and relays every subsequent protocol message in both directions. The
// supervisor never learns which worker holds which task — the architectural
// constraint that motivates non-interactive CBS.
class BrokerNode final : public GridNode {
 public:
  explicit BrokerNode(std::vector<GridNodeId> workers);

  void on_message(GridNodeId from, const Message& message,
                  Transport& transport) override;

  // How many tasks each worker received (round-robin order).
  const std::map<std::uint32_t, std::size_t>& assignments_per_worker() const {
    return assignments_;
  }

  // Messages relayed in each direction (excluding initial assignments).
  std::uint64_t relayed_downstream() const { return relayed_downstream_; }
  std::uint64_t relayed_upstream() const { return relayed_upstream_; }

  // The worker a task is currently routed to (its latest assignment), or
  // nullopt for tasks this broker never saw. Lets the simulation attribute
  // outcomes to participants even though the supervisor only sees the
  // broker.
  std::optional<GridNodeId> worker_of(TaskId task) const;

 private:
  struct Route {
    GridNodeId supervisor;
    GridNodeId worker;
  };

  std::vector<GridNodeId> workers_;
  std::size_t next_worker_ = 0;
  std::map<TaskId, Route> routes_;
  std::map<std::uint32_t, std::size_t> assignments_;
  std::uint64_t relayed_downstream_ = 0;
  std::uint64_t relayed_upstream_ = 0;
};

}  // namespace ugc
