#include "grid/broker.h"

#include "common/error.h"

namespace ugc {

BrokerNode::BrokerNode(std::vector<GridNodeId> workers)
    : workers_(std::move(workers)) {
  check(!workers_.empty(), "BrokerNode: at least one worker required");
}

void BrokerNode::on_message(GridNodeId from, const Message& message,
                            SimNetwork& network) {
  const TaskId task = task_of(message);

  if (std::holds_alternative<TaskAssignment>(message)) {
    // New work from a supervisor: schedule round-robin and remember the
    // route for the rest of this task's protocol.
    const GridNodeId worker = workers_[next_worker_];
    next_worker_ = (next_worker_ + 1) % workers_.size();
    routes_[task] = Route{from, worker};
    ++assignments_[worker.value];
    network.send(id(), worker, message);
    return;
  }

  const auto it = routes_.find(task);
  if (it == routes_.end()) {
    return;  // unroutable traffic is dropped
  }
  const Route& route = it->second;
  if (from == route.supervisor) {
    ++relayed_downstream_;
    network.send(id(), route.worker, message);
  } else if (from == route.worker) {
    ++relayed_upstream_;
    network.send(id(), route.supervisor, message);
  }
}

}  // namespace ugc
