#include "grid/broker.h"

#include "common/error.h"

namespace ugc {

BrokerNode::BrokerNode(std::vector<GridNodeId> workers)
    : workers_(std::move(workers)) {
  check(!workers_.empty(), "BrokerNode: at least one worker required");
}

std::optional<GridNodeId> BrokerNode::worker_of(TaskId task) const {
  const auto it = routes_.find(task);
  if (it == routes_.end()) {
    return std::nullopt;
  }
  return it->second.worker;
}

void BrokerNode::on_message(GridNodeId from, const Message& message,
                            Transport& transport) {
  const TaskId task = task_of(message);

  if (std::holds_alternative<TaskAssignment>(message)) {
    if (const auto existing = routes_.find(task); existing != routes_.end()) {
      // Duplicated assignment frame: relay to the worker that already holds
      // the task instead of re-routing it (which would strand the first
      // worker's upstream traffic and bill the work twice).
      ++relayed_downstream_;
      transport.send(id(), existing->second.worker, message);
      return;
    }
    // New work from a supervisor: schedule round-robin and remember the
    // route for the rest of this task's protocol.
    const GridNodeId worker = workers_[next_worker_];
    next_worker_ = (next_worker_ + 1) % workers_.size();
    routes_[task] = Route{from, worker};
    ++assignments_[worker.value];
    transport.send(id(), worker, message);
    return;
  }

  const auto it = routes_.find(task);
  if (it == routes_.end()) {
    return;  // unroutable traffic is dropped
  }
  const Route& route = it->second;
  if (from == route.supervisor) {
    ++relayed_downstream_;
    transport.send(id(), route.worker, message);
  } else if (from == route.worker) {
    ++relayed_upstream_;
    transport.send(id(), route.supervisor, message);
  }
}

}  // namespace ugc
