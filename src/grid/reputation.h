#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "grid/simulation.h"

namespace ugc {

// Long-horizon operation: a real grid runs verification round after round,
// and the supervisor should stop assigning work to participants it keeps
// catching. This module adds the standard Beta–Bernoulli reputation layer
// on top of per-round CBS verdicts — the piece SETI@home-era systems bolted
// on by hand and the paper's one-shot analysis abstracts away.
class ReputationLedger {
 public:
  struct Params {
    // Beta prior over "this participant's task is accepted".
    double prior_alpha = 1.0;
    double prior_beta = 1.0;
    // Participants whose posterior-mean trust falls below this (after at
    // least min_observations verdicts) stop receiving work.
    double ban_threshold = 0.5;
    std::size_t min_observations = 2;
  };

  explicit ReputationLedger(Params params);

  // Folds one verdict into the participant's posterior.
  void record(std::size_t participant, bool accepted);

  // Posterior mean acceptance probability.
  double trust(std::size_t participant) const;

  std::size_t observations(std::size_t participant) const;
  bool banned(std::size_t participant) const;

 private:
  struct Record {
    double alpha;
    double beta;
    std::size_t observations = 0;
  };

  Params params_;
  std::map<std::size_t, Record> records_;
};

// Multi-round simulation: re-runs the grid scenario `rounds` times, feeding
// verdicts into the ledger and excluding banned participants from later
// rounds.
struct TournamentConfig {
  GridConfig base;           // cheaters listed here cheat every round
  std::size_t rounds = 10;
  ReputationLedger::Params reputation;
};

struct TournamentRound {
  std::size_t active_participants = 0;
  std::size_t cheater_tasks_rejected = 0;
  std::size_t cheater_tasks_accepted = 0;
  std::size_t honest_tasks_rejected = 0;
  // Work performed this round by participants that end the tournament
  // banned (the "wasted" assignments reputation eventually prevents).
  std::uint64_t evaluations_by_eventually_banned = 0;
};

struct TournamentResult {
  std::vector<TournamentRound> rounds;
  std::vector<double> final_trust;   // per original participant index
  std::vector<bool> final_banned;    // per original participant index
  // Round after which every cheater was banned (rounds.size() if never).
  std::size_t cheaters_purged_after = 0;
};

TournamentResult run_reputation_tournament(const TournamentConfig& config);

}  // namespace ugc
