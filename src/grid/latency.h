#pragma once

#include <cstdint>

#include "grid/transport.h"

namespace ugc {

// First-order wall-clock model for grid traffic: each message pays one
// store-and-forward serialization delay (bytes / bandwidth) plus half an
// RTT. Crude, but enough to turn the byte counts the simulator measures
// into the paper's point that "very few networks can handle" an O(n)
// result upload.
struct LinkProfile {
  double bandwidth_bytes_per_second = 1.25e6;  // ~10 Mbit/s volunteer uplink
  double rtt_seconds = 0.05;

  // Time to move `bytes` as `messages` transfers over this link.
  double transfer_seconds(std::uint64_t bytes, std::uint64_t messages) const;
};

// Total transfer time for everything a node sent, from the metered stats.
double estimate_upload_seconds(const NetworkStats& stats, GridNodeId node,
                               const LinkProfile& profile);

// Transfer time for the whole run's traffic (sequentialized worst case).
double estimate_total_seconds(const NetworkStats& stats,
                              const LinkProfile& profile);

}  // namespace ugc
