#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace ugc {

// Runs fn(i) for i in [begin, end) across up to `threads` workers (0 = use
// hardware concurrency). Blocks until every index is processed. Indices are
// partitioned into contiguous chunks, so neighbouring work shares cache.
//
// Used by the Monte-Carlo benches to parallelize independent trials; the
// grid simulation itself stays single-threaded for determinism.
void parallel_for(std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& fn,
                  unsigned threads = 0);

}  // namespace ugc
