#pragma once

// parallel_for lives in common/ now that the crypto/merkle/core layers use
// it too; this forwarding header keeps grid-side includes working.
#include "common/parallel.h"
