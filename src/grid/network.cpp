#include "grid/network.h"

#include "common/error.h"

namespace ugc {

GridNodeId SimNetwork::add_node(GridNode& node) {
  const GridNodeId id{static_cast<std::uint32_t>(nodes_.size())};
  node.id_ = id;
  nodes_.push_back(&node);
  return id;
}

namespace {

// Retired-buffer pool cap: enough to absorb any realistic in-flight burst
// while bounding idle memory.
constexpr std::size_t kMaxPooledBuffers = 256;

}  // namespace

void SimNetwork::send(GridNodeId from, GridNodeId to, const Message& message) {
  check(from.value < nodes_.size(), "SimNetwork::send: unknown sender ",
        from.value);
  check(to.value < nodes_.size(), "SimNetwork::send: unknown recipient ",
        to.value);

  Bytes payload;
  if (!buffer_pool_.empty()) {
    payload = std::move(buffer_pool_.back());
    buffer_pool_.pop_back();
  }
  encode_message_into(message, payload);
  const std::uint64_t size = payload.size();

  ++stats_.total_messages;
  stats_.total_bytes += size;
  auto& link = stats_.links[{from.value, to.value}];
  ++link.messages;
  link.bytes += size;
  auto& sent = stats_.sent_by[from.value];
  ++sent.messages;
  sent.bytes += size;
  auto& received = stats_.received_by[to.value];
  ++received.messages;
  received.bytes += size;

  queue_.push_back(Pending{from, to, std::move(payload)});
}

bool SimNetwork::deliver_one() {
  if (queue_.empty()) {
    return false;
  }
  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  const Message message = decode_message(pending.payload);
  nodes_[pending.to.value]->on_message(pending.from, message, *this);
  if (buffer_pool_.size() < kMaxPooledBuffers) {
    buffer_pool_.push_back(std::move(pending.payload));
  }
  return true;
}

std::size_t SimNetwork::run(std::size_t max_deliveries) {
  std::size_t delivered = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    while (deliver_one()) {
      ++delivered;
      check(delivered <= max_deliveries,
            "SimNetwork::run: exceeded ", max_deliveries,
            " deliveries — protocol loop?");
      progressed = true;
    }
    for (GridNode* node : nodes_) {
      progressed |= node->flush(*this);
    }
  }
  return delivered;
}

TaskId task_of(const Message& message) {
  struct Visitor {
    TaskId operator()(const TaskAssignment& m) { return m.task; }
    TaskId operator()(const Commitment& m) { return m.task; }
    TaskId operator()(const SampleChallenge& m) { return m.task; }
    TaskId operator()(const ProofResponse& m) { return m.task; }
    TaskId operator()(const NiCbsProof& m) { return m.commitment.task; }
    TaskId operator()(const ResultsUpload& m) { return m.task; }
    TaskId operator()(const ScreenerReport& m) { return m.task; }
    TaskId operator()(const RingerReport& m) { return m.task; }
    TaskId operator()(const Verdict& m) { return m.task; }
    TaskId operator()(const BatchProofResponse& m) { return m.task; }
  };
  return std::visit(Visitor{}, message);
}

}  // namespace ugc
