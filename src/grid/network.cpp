#include "grid/network.h"

#include "common/error.h"

namespace ugc {

GridNodeId SimNetwork::add_node(GridNode& node) {
  const GridNodeId id{static_cast<std::uint32_t>(nodes_.size())};
  node.id_ = id;
  nodes_.push_back(&node);
  return id;
}

void SimNetwork::send(GridNodeId from, GridNodeId to, const Message& message) {
  check(from.value < nodes_.size(), "SimNetwork::send: unknown sender ",
        from.value);
  check(to.value < nodes_.size(), "SimNetwork::send: unknown recipient ",
        to.value);

  Bytes payload = encode_message(message);
  const std::uint64_t size = payload.size();

  ++stats_.total_messages;
  stats_.total_bytes += size;
  auto& link = stats_.links[{from.value, to.value}];
  ++link.messages;
  link.bytes += size;
  auto& sent = stats_.sent_by[from.value];
  ++sent.messages;
  sent.bytes += size;
  auto& received = stats_.received_by[to.value];
  ++received.messages;
  received.bytes += size;

  queue_.push_back(Pending{from, to, std::move(payload)});
}

bool SimNetwork::deliver_one() {
  if (queue_.empty()) {
    return false;
  }
  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  const Message message = decode_message(pending.payload);
  nodes_[pending.to.value]->on_message(pending.from, message, *this);
  return true;
}

std::size_t SimNetwork::run(std::size_t max_deliveries) {
  std::size_t delivered = 0;
  while (deliver_one()) {
    ++delivered;
    check(delivered <= max_deliveries,
          "SimNetwork::run: exceeded ", max_deliveries,
          " deliveries — protocol loop?");
  }
  return delivered;
}

TaskId task_of(const Message& message) {
  struct Visitor {
    TaskId operator()(const TaskAssignment& m) { return m.task; }
    TaskId operator()(const Commitment& m) { return m.task; }
    TaskId operator()(const SampleChallenge& m) { return m.task; }
    TaskId operator()(const ProofResponse& m) { return m.task; }
    TaskId operator()(const NiCbsProof& m) { return m.commitment.task; }
    TaskId operator()(const ResultsUpload& m) { return m.task; }
    TaskId operator()(const ScreenerReport& m) { return m.task; }
    TaskId operator()(const RingerReport& m) { return m.task; }
    TaskId operator()(const Verdict& m) { return m.task; }
    TaskId operator()(const BatchProofResponse& m) { return m.task; }
  };
  return std::visit(Visitor{}, message);
}

}  // namespace ugc
