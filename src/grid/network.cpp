#include "grid/network.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "wire/codec.h"

namespace ugc {

GridNodeId SimTransport::add_node(GridNode& node) {
  const GridNodeId id{static_cast<std::uint32_t>(nodes_.size())};
  assign_id(node, id);
  nodes_.push_back(&node);
  return id;
}

namespace {

// Retired-buffer pool cap: enough to absorb any realistic in-flight burst
// while bounding idle memory.
constexpr std::size_t kMaxPooledBuffers = 256;

}  // namespace

void SimTransport::set_fault_plan(const FaultPlan& plan) {
  check(stats_.total_messages == 0,
        "SimTransport::set_fault_plan: must be installed before any traffic");
  plan_ = plan;
  faults_enabled_ = plan_.any();
  fault_rng_ = Rng(plan_.seed);
  node_faults_.clear();
  for (const CrashSpec& crash : plan_.crashes) {
    node_faults_[crash.node].crashes.push_back(crash);
  }
  // Specs fire in threshold order regardless of listing order, and
  // after_messages == 0 means the node is offline from the very start.
  for (auto& [node, state] : node_faults_) {
    std::stable_sort(state.crashes.begin(), state.crashes.end(),
                     [](const CrashSpec& a, const CrashSpec& b) {
                       return a.after_messages < b.after_messages;
                     });
    while (state.next_crash < state.crashes.size() &&
           state.crashes[state.next_crash].after_messages == 0) {
      const CrashSpec& crash = state.crashes[state.next_crash];
      ++state.next_crash;
      state.offline = true;
      state.rejoin_at = crash.offline_for == 0 ? 0 : crash.offline_for;
      ++fault_stats_.crashes;
      if (node < nodes_.size()) {
        nodes_[node]->on_crash();
      }
    }
  }
}

const LinkFaults& SimTransport::faults_for(GridNodeId from, GridNodeId to) const {
  const auto it = plan_.link_overrides.find({from.value, to.value});
  return it != plan_.link_overrides.end() ? it->second : plan_.faults;
}

SimTransport::NodeFaultState* SimTransport::fault_state(std::uint32_t node) {
  const auto it = node_faults_.find(node);
  return it == node_faults_.end() ? nullptr : &it->second;
}

bool SimTransport::offline(GridNodeId node) const {
  const auto it = node_faults_.find(node.value);
  return it != node_faults_.end() && it->second.offline;
}

void SimTransport::recycle(Bytes payload) {
  if (buffer_pool_.size() < kMaxPooledBuffers) {
    buffer_pool_.push_back(std::move(payload));
  }
}

void SimTransport::enqueue(Pending pending, const LinkFaults& faults, Rng& rng) {
  if (rng.unit_real() < faults.stall) {
    ++fault_stats_.stalled;
    parked_.push_back(std::move(pending));
    return;
  }
  if (rng.unit_real() < faults.reorder && !queue_.empty()) {
    ++fault_stats_.reordered;
    const std::size_t position = rng.uniform(queue_.size() + 1);
    queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(position),
                  std::move(pending));
    return;
  }
  queue_.push_back(std::move(pending));
}

void SimTransport::send(GridNodeId from, GridNodeId to, const Message& message) {
  check(from.value < nodes_.size(), "SimTransport::send: unknown sender ",
        from.value);
  check(to.value < nodes_.size(), "SimTransport::send: unknown recipient ",
        to.value);

  Bytes payload;
  if (!buffer_pool_.empty()) {
    payload = std::move(buffer_pool_.back());
    buffer_pool_.pop_back();
  }
  encode_message_into(message, payload);
  const std::uint64_t size = payload.size();

  stats_.record(from, to, size);

  Pending pending{from, to, std::move(payload), false};
  if (!faults_enabled_) {
    queue_.push_back(std::move(pending));
    return;
  }

  const LinkFaults& faults = faults_for(from, to);
  if (!faults.any()) {
    queue_.push_back(std::move(pending));
    return;
  }

  if (fault_rng_.unit_real() < faults.drop) {
    ++fault_stats_.dropped;
    recycle(std::move(pending.payload));
    return;
  }
  if (fault_rng_.unit_real() < faults.corrupt && !pending.payload.empty()) {
    const std::uint64_t bit =
        fault_rng_.uniform(pending.payload.size() * std::uint64_t{8});
    pending.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    pending.corrupted = true;
    ++fault_stats_.corrupted;
  }
  if (fault_rng_.unit_real() < faults.duplicate) {
    ++fault_stats_.duplicated;
    // The duplicate crosses the wire too: meter it like any other frame.
    stats_.record(from, to, size);
    Pending copy{from, to, pending.payload, pending.corrupted};
    enqueue(std::move(copy), faults, fault_rng_);
  }
  enqueue(std::move(pending), faults, fault_rng_);
}

bool SimTransport::deliver_one() {
  if (queue_.empty()) {
    return false;
  }
  ++delivery_ticks_;
  // Rejoins come first so a message can reach a node the very tick it
  // returns.
  for (auto& [node, state] : node_faults_) {
    if (state.offline && state.rejoin_at != 0 &&
        state.rejoin_at < delivery_ticks_) {
      state.offline = false;
      state.rejoin_at = 0;
      ++fault_stats_.rejoins;
    }
  }

  Pending pending = std::move(queue_.front());
  queue_.pop_front();

  NodeFaultState* receiver = fault_state(pending.to.value);
  if (receiver != nullptr && receiver->offline) {
    ++fault_stats_.dropped_offline;
    recycle(std::move(pending.payload));
    return true;
  }
  if (pending.corrupted && !plan_.deliver_corrupt) {
    // The transport's integrity check (every real grid runs over
    // TCP/TLS) rejects the frame; the sender never learns.
    ++fault_stats_.corrupt_discarded;
    recycle(std::move(pending.payload));
    return true;
  }

  Message message;
  try {
    message = decode_message(pending.payload);
  } catch (const WireError&) {
    // Only reachable with deliver_corrupt: hostile bytes must reject
    // cleanly, never crash or escape the network.
    ++fault_stats_.corrupt_undecodable;
    recycle(std::move(pending.payload));
    return true;
  }
  nodes_[pending.to.value]->on_message(pending.from, message, *this);
  if (receiver != nullptr) {
    ++receiver->received;
    while (receiver->next_crash < receiver->crashes.size() &&
           receiver->received >=
               receiver->crashes[receiver->next_crash].after_messages) {
      const CrashSpec& crash = receiver->crashes[receiver->next_crash];
      ++receiver->next_crash;
      receiver->offline = true;
      receiver->rejoin_at =
          crash.offline_for == 0 ? 0 : delivery_ticks_ + crash.offline_for;
      ++fault_stats_.crashes;
      nodes_[pending.to.value]->on_crash();
    }
  }
  recycle(std::move(pending.payload));
  return true;
}

std::size_t SimTransport::run(std::size_t max_deliveries) {
  std::size_t delivered = 0;
  for (;;) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      while (deliver_one()) {
        ++delivered;
        check(delivered <= max_deliveries,
              "SimTransport::run: exceeded ", max_deliveries,
              " deliveries — protocol loop?");
        progressed = true;
      }
      for (GridNode* node : nodes_) {
        progressed |= node->flush(*this);
      }
    }
    if (!parked_.empty()) {
      // Stalled frames arrive late — after everything else went quiet, but
      // before any timeout fires.
      for (Pending& pending : parked_) {
        queue_.push_back(std::move(pending));
      }
      parked_.clear();
      continue;
    }
    bool timed_out = false;
    for (GridNode* node : nodes_) {
      timed_out |= node->on_quiescent(*this);
    }
    if (!timed_out) {
      break;
    }
  }
  return delivered;
}

}  // namespace ugc
