#include "grid/latency.h"

#include "common/error.h"

namespace ugc {

double LinkProfile::transfer_seconds(std::uint64_t bytes,
                                     std::uint64_t messages) const {
  check(bandwidth_bytes_per_second > 0.0,
        "LinkProfile: bandwidth must be positive");
  check(rtt_seconds >= 0.0, "LinkProfile: rtt must be non-negative");
  return static_cast<double>(bytes) / bandwidth_bytes_per_second +
         static_cast<double>(messages) * rtt_seconds / 2.0;
}

double estimate_upload_seconds(const NetworkStats& stats, GridNodeId node,
                               const LinkProfile& profile) {
  const auto it = stats.sent_by.find(node.value);
  if (it == stats.sent_by.end()) {
    return 0.0;
  }
  return profile.transfer_seconds(it->second.bytes, it->second.messages);
}

double estimate_total_seconds(const NetworkStats& stats,
                              const LinkProfile& profile) {
  return profile.transfer_seconds(stats.total_bytes, stats.total_messages);
}

}  // namespace ugc
