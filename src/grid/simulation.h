#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cheating.h"
#include "core/scheme_config.h"
#include "grid/network.h"
#include "scheme/registry.h"

namespace ugc {

// A participant that cheats in a simulated run.
struct CheaterSpec {
  std::size_t participant_index = 0;  // position among the participants
  double honesty_ratio = 0.5;         // r
  double guess_accuracy = 0.0;        // q
  std::uint64_t seed = 0;             // 0 = derived from the run seed
};

// A participant driven by an arbitrary HonestyPolicy — the hook that runs
// custom attackers (AdaptiveCheater, ColludingCheater, hand-written
// policies) through the full grid. Counted as a cheater in the outcome
// accounting.
struct PolicyCheaterSpec {
  std::size_t participant_index = 0;
  std::shared_ptr<const HonestyPolicy> policy;
};

// A participant exercising §2.2's malicious model: the f-work may be fully
// honest, but the screener channel is corrupted.
struct MaliciousSpec {
  std::size_t participant_index = 0;
  ScreenerConduct conduct = ScreenerConduct::kSuppress;
};

// A participant crash mid-run (see CrashSpec for the mechanics; here the
// target is named by participant index rather than node id).
struct ParticipantCrash {
  std::size_t participant_index = 0;
  std::uint64_t after_messages = 1;  // messages before crashing; 0 = at start
  std::uint64_t offline_for = 0;     // delivery ticks offline; 0 = forever
};

// One end-to-end grid scenario: a domain, a workload, a verification
// scheme, a set of participants (some possibly cheating), optionally a
// broker hiding the participants from the supervisor — and, for hostile
// grids, a fault model layered onto every link.
struct GridConfig {
  std::uint64_t domain_begin = 0;
  std::uint64_t domain_end = 1 << 10;
  std::string workload = "test";
  std::uint64_t workload_seed = 1;
  std::size_t participant_count = 4;
  SchemeConfig scheme;
  bool use_broker = false;
  std::uint64_t seed = 1;
  std::vector<CheaterSpec> cheaters;
  std::vector<PolicyCheaterSpec> policy_cheaters;
  std::vector<MaliciousSpec> malicious;
  // Hostile-grid knobs: per-link fault probabilities applied to every link,
  // plus participant crash/rejoin churn. All faults derive from fault_seed
  // (0 = derived from `seed`), so hostile runs stay bit-reproducible.
  LinkFaults faults;
  std::vector<ParticipantCrash> crashes;
  std::uint64_t fault_seed = 0;
  // Re-assignments per stalled group before its tasks abort (see
  // SupervisorNode::Plan::max_task_retries).
  std::size_t max_task_retries = 2;
  // Scheme resolution for every node in the run (null = global()); inject a
  // local registry to run custom schemes end-to-end.
  const SchemeRegistry* schemes = nullptr;
  // Supervisor-side hit validation (see SupervisorNode::Plan).
  bool validate_reported_hits = true;
  // Supervisor session-pump concurrency (see SupervisorNode::Plan): 1 =
  // serial inline verification, 0 = hardware concurrency, N = N workers.
  // Any value yields byte-identical verdicts, metrics, and reputation
  // inputs; only wall-clock changes.
  unsigned supervisor_pump_threads = 1;
};

struct ParticipantOutcome {
  TaskId task;
  std::size_t participant_index = 0;
  bool was_cheater = false;
  bool accepted = false;
  VerdictStatus status = VerdictStatus::kMalformed;
};

struct GridRunResult {
  std::vector<ParticipantOutcome> outcomes;
  // Confusion-matrix style counters over *tasks*. Aborted tasks (protocol
  // never completed — churn, loss) are counted separately: an abort is not
  // an accusation.
  std::size_t cheater_tasks_rejected = 0;  // true positives
  std::size_t cheater_tasks_accepted = 0;  // missed cheaters
  std::size_t honest_tasks_accepted = 0;
  std::size_t honest_tasks_rejected = 0;   // false accusations (must be 0)
  std::size_t tasks_aborted = 0;           // kAborted outcomes, either kind
  // Hostile-grid accounting.
  std::uint64_t tasks_reassigned = 0;
  FaultStats faults;
  // Screener hits from accepted tasks only.
  std::vector<ScreenerHit> hits;
  // Work accounting.
  std::uint64_t participant_evaluations = 0;  // genuine f evals, all nodes
  std::uint64_t supervisor_evaluations = 0;   // verification f evals
  std::uint64_t results_verified = 0;         // verifier invocations
  // Traffic.
  NetworkStats network;
  std::uint64_t messages_delivered = 0;
};

// Builds the scenario, runs the network to quiescence, and gathers results.
// Deterministic in `config.seed` (and `fault_seed` for hostile runs): two
// invocations of the same config produce byte-identical verdicts, metrics,
// traffic, and fault counters.
GridRunResult run_grid_simulation(const GridConfig& config);

}  // namespace ugc
