#include "grid/chaos.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "wire/codec.h"

namespace ugc {

namespace {

// Stream separation: each link's generator is seeded from the plan seed
// and the link index through distinct odd multipliers, so link 0 of seed
// S and link 1 of seed S share no prefix, and neither does link 0 of
// seed S+1.
std::uint64_t link_seed(std::uint64_t plan_seed, std::uint64_t link_index) {
  return (plan_seed * 0x9E3779B97F4A7C15ULL) ^
         ((link_index + 1) * 0xBF58476D1CE4E5B9ULL);
}

}  // namespace

ChaosPlan ChaosPlan::from_link_profile(const LinkProfile& profile,
                                       std::uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.base_rtt_ms = profile.rtt_seconds * 1000.0;
  plan.bandwidth_bytes_per_s = profile.bandwidth_bytes_per_second;
  return plan;
}

ChaosPlan make_chaos_plan(const std::string& level, std::uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  if (level == "off") {
    return ChaosPlan{};  // any() == false: no hooks armed at all
  }
  if (level == "light") {
    // A decent consumer link: tens of ms of latency, occasional hiccups.
    plan.base_rtt_ms = 30;
    plan.jitter_ms = 10;
    plan.bandwidth_bytes_per_s = 4e6;
    plan.partial_write_cap = 4096;
    plan.stall_rate = 0.02;
    plan.stall_ms = 80;
    plan.disconnect_rate = 0.002;
    plan.accept_reset_rate = 0.02;
    return plan;
  }
  if (level == "heavy") {
    // The paper's volunteer uplink (grid/latency.h defaults) plus
    // aggressive stalls and churn.
    plan.base_rtt_ms = 80;
    plan.jitter_ms = 40;
    plan.bandwidth_bytes_per_s = 1.25e6;
    plan.partial_write_cap = 512;
    plan.stall_rate = 0.1;
    plan.stall_ms = 250;
    plan.disconnect_rate = 0.01;
    plan.accept_reset_rate = 0.1;
    return plan;
  }
  check(false, "make_chaos_plan: unknown chaos level '", level,
        "' (want off|light|heavy)");
  return plan;  // unreachable
}

ChaosLink::ChaosLink(const ChaosPlan& plan, std::uint64_t link_index)
    : plan_(plan), rng_(link_seed(plan.seed, link_index)) {}

std::uint64_t ChaosLink::release_ms(std::size_t bytes, std::uint64_t now_ms) {
  // Serialization queues behind whatever this link is already moving.
  double start = std::max(static_cast<double>(now_ms), busy_until_ms_);
  if (plan_.bandwidth_bytes_per_s > 0) {
    busy_until_ms_ =
        start + 1000.0 * static_cast<double>(bytes) / plan_.bandwidth_bytes_per_s;
  } else {
    busy_until_ms_ = start;
  }
  double latency = plan_.base_rtt_ms / 2.0;
  if (plan_.jitter_ms > 0) {
    // Exponential tail: most frames near the base, a few much later —
    // the shape that actually trips fixed timeouts.
    latency += -plan_.jitter_ms * std::log(1.0 - rng_.unit_real());
  }
  const auto release =
      static_cast<std::uint64_t>(std::llround(busy_until_ms_ + latency));
  // A stream may be slowed, never reordered.
  last_release_ = std::max(release, last_release_);
  return last_release_;
}

bool ChaosLink::sample_disconnect() {
  return plan_.disconnect_rate > 0 && rng_.bernoulli(plan_.disconnect_rate);
}

bool ChaosLink::sample_accept_reset() {
  return plan_.accept_reset_rate > 0 && rng_.bernoulli(plan_.accept_reset_rate);
}

std::optional<std::uint64_t> ChaosLink::sample_stall_ms() {
  if (plan_.stall_rate <= 0 || plan_.stall_ms == 0 ||
      !rng_.bernoulli(plan_.stall_rate)) {
    return std::nullopt;
  }
  return rng_.uniform(plan_.stall_ms) + 1;
}

std::size_t ChaosLink::clamp_write(std::size_t n) const {
  if (plan_.partial_write_cap == 0) {
    return n;
  }
  return std::min(n, plan_.partial_write_cap);
}

void AdaptiveTimeout::record_gap(std::uint64_t gap_ms) {
  const double gap = static_cast<double>(gap_ms);
  if (samples_ == 0) {
    srtt_ms_ = gap;
    rttvar_ms_ = gap / 2.0;
  } else {
    // RFC 6298 weights (alpha = 1/8, beta = 1/4).
    rttvar_ms_ = 0.75 * rttvar_ms_ + 0.25 * std::abs(srtt_ms_ - gap);
    srtt_ms_ = 0.875 * srtt_ms_ + 0.125 * gap;
  }
  ++samples_;
}

std::uint64_t AdaptiveTimeout::timeout_ms(std::uint64_t fallback_ms) const {
  // Every path honors [floor_ms, ceiling_ms] — including the non-adaptive
  // one and the warm-up fallback. Previously the non-adaptive path returned
  // the configured fallback verbatim, so a fallback below the floor could
  // fire before a slow link's first frames landed (and one above the
  // ceiling could stall shutdown past the policy's own bound).
  double estimate = static_cast<double>(fallback_ms);
  if (policy_.adaptive && samples_ >= 4) {
    estimate = policy_.multiplier * (srtt_ms_ + 4.0 * rttvar_ms_);
  }
  estimate = std::max(estimate, static_cast<double>(policy_.floor_ms));
  estimate = std::min(estimate, static_cast<double>(policy_.ceiling_ms));
  return static_cast<std::uint64_t>(std::llround(estimate));
}

LatencyTransport::LatencyTransport(Options options)
    : options_(std::move(options)), estimator_(options_.quiescence) {}

GridNodeId LatencyTransport::add_node(GridNode& node) {
  const GridNodeId id{static_cast<std::uint32_t>(nodes_.size())};
  assign_id(node, id);
  nodes_.push_back(&node);
  return id;
}

ChaosLink& LatencyTransport::link(GridNodeId from, GridNodeId to) {
  const auto key = std::make_pair(from.value, to.value);
  auto it = links_.find(key);
  if (it == links_.end()) {
    // Directed-link index: stable under any send order.
    const std::uint64_t index =
        static_cast<std::uint64_t>(from.value) * 1000003ULL + to.value;
    it = links_.emplace(key, ChaosLink(options_.plan, index)).first;
  }
  return it->second;
}

void LatencyTransport::send(GridNodeId from, GridNodeId to,
                            const Message& message) {
  check(to.value < nodes_.size(), "LatencyTransport::send: unknown node ",
        to.value);
  encode_message_into(message, encode_scratch_);
  stats_.record(from, to, encode_scratch_.size());
  ChaosLink& l = link(from, to);
  if (l.sample_disconnect()) {
    // The connection died under this frame: in-flight traffic is lost.
    ++frames_dropped_;
    return;
  }
  const std::uint64_t release = l.release_ms(encode_scratch_.size(), vnow_ms_);
  if (release > vnow_ms_) {
    ++frames_delayed_;
  }
  queue_.emplace(std::make_pair(release, next_seq_++),
                 InFlight{from, to, encode_scratch_});
}

void LatencyTransport::deliver(const InFlight& frame) {
  if (delivered_any_) {
    estimator_.record_gap(vnow_ms_ - last_delivery_ms_);
  }
  delivered_any_ = true;
  last_delivery_ms_ = vnow_ms_;
  const Message message = decode_message(BytesView(frame.payload));
  nodes_[frame.to.value]->on_message(frame.from, message, *this);
}

std::size_t LatencyTransport::run(std::size_t max_steps) {
  std::size_t delivered = 0;
  std::size_t steps = 0;
  std::uint64_t last_activity = vnow_ms_;
  for (;;) {
    check(++steps <= max_steps,
          "LatencyTransport::run: exceeded ", max_steps,
          " steps (protocol livelock?)");
    bool progressed = false;
    while (!queue_.empty() && queue_.begin()->first.first <= vnow_ms_) {
      const InFlight frame = std::move(queue_.begin()->second);
      queue_.erase(queue_.begin());
      deliver(frame);
      ++delivered;
      progressed = true;
      last_activity = vnow_ms_;
    }
    for (GridNode* node : nodes_) {
      while (node->flush(*this)) {
        progressed = true;
        last_activity = vnow_ms_;
      }
    }
    if (progressed) {
      continue;  // replies sent at zero latency may already be due
    }
    const std::uint64_t timeout =
        estimator_.timeout_ms(options_.quiescence_timeout_ms);
    if (queue_.empty()) {
      // Dry and quiet: one quiescence cycle; stop when nobody reacts.
      vnow_ms_ = last_activity + timeout;
      ++quiescence_fires_;
      bool kept = false;
      for (GridNode* node : nodes_) {
        kept = node->on_quiescent(*this) || kept;
      }
      if (!kept && queue_.empty()) {
        return delivered;
      }
      last_activity = vnow_ms_;
      continue;
    }
    const std::uint64_t next = queue_.begin()->first.first;
    if (next > last_activity + timeout) {
      // The silence before the next frame lands outlasts the quiescence
      // timeout: the timeout wins the race, exactly as it would on the
      // real clock — the frame is still in flight when retries fire.
      vnow_ms_ = last_activity + timeout;
      ++quiescence_fires_;
      for (GridNode* node : nodes_) {
        node->on_quiescent(*this);
      }
      last_activity = vnow_ms_;
    } else {
      vnow_ms_ = next;
    }
  }
}

}  // namespace ugc
