#include "grid/thread_pool.h"

#include <algorithm>

#include "common/error.h"

namespace ugc {

void parallel_for(std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& fn,
                  unsigned threads) {
  check(begin <= end, "parallel_for: begin > end");
  check(fn != nullptr, "parallel_for: callable required");
  const std::uint64_t count = end - begin;
  if (count == 0) {
    return;
  }

  unsigned workers = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (workers == 0) {
    workers = 1;
  }
  workers = static_cast<unsigned>(
      std::min<std::uint64_t>(workers, count));

  if (workers == 1) {
    for (std::uint64_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }

  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::uint64_t chunk = count / workers;
  const std::uint64_t remainder = count % workers;
  std::uint64_t cursor = begin;
  for (unsigned w = 0; w < workers; ++w) {
    const std::uint64_t width = chunk + (w < remainder ? 1 : 0);
    const std::uint64_t lo = cursor;
    const std::uint64_t hi = cursor + width;
    cursor = hi;
    pool.emplace_back([lo, hi, &fn] {
      for (std::uint64_t i = lo; i < hi; ++i) {
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

}  // namespace ugc
