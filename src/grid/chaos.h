#pragma once

// Seeded, deterministic WAN chaos for the grid.
//
// The paper's guarantees only matter if honest workers are never
// misclassified, and the failure mode that converts latency into an
// accusation lives in the transport: a quiescence timeout tuned for
// loopback fires on real WAN jitter, the supervisor retries, and a slow
// but honest worker looks like a stalled one. This header is the fault
// model both transports share:
//
//   ChaosPlan — one seed plus parameterized WAN distributions (built on
//     the grid/latency.h cost model: serialization = bytes/bandwidth,
//     propagation = RTT/2, plus an exponential jitter tail) and fault
//     rates: partial writes, read stalls, mid-stream disconnects, and
//     accept-time connection resets.
//   ChaosLink — the per-connection sampler. Every draw is a pure function
//     of (plan.seed, link index, call sequence), so a whole chaotic run
//     replays from one seed. Release times are monotone per link: chaos
//     delays frames but never reorders a TCP stream.
//   AdaptiveTimeout / QuiescencePolicy — the RTO-style estimator
//     (SRTT + 4·RTTVAR over observed inter-message gaps, clamped to a
//     floor/ceiling) that turns the fixed quiescence timeout into one
//     calibrated by the traffic actually seen.
//   LatencyTransport — a deterministic Transport that delivers every
//     frame after a ChaosLink-sampled delay on a virtual clock, racing
//     delivery against the same quiescence policy the TCP stack runs.
//     SimTransport injects faults at zero delay; this is the sim-side
//     counterpart that replays the latency traces the net layer injects,
//     so property tests cover the timeout/latency race without sockets.
//
// Layering: this lives in src/grid so src/net (which may include grid/)
// can consume the same plan the simulator tests replay.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "grid/latency.h"
#include "grid/transport.h"

namespace ugc {

// One seed, one network's worth of misbehavior. Everything defaults off;
// a default-constructed plan is a no-op.
struct ChaosPlan {
  std::uint64_t seed = 1;

  // WAN latency distribution (grid/latency.h semantics): every frame pays
  // bytes/bandwidth serialization queued behind the link's earlier frames,
  // plus base_rtt_ms/2 propagation, plus an exponential jitter tail with
  // mean jitter_ms.
  double base_rtt_ms = 0.0;
  double jitter_ms = 0.0;
  double bandwidth_bytes_per_s = 0.0;  // 0 = unthrottled

  // Largest byte count a single socket write may move (0 = unlimited):
  // forces the short-write paths a fast loopback never exercises.
  std::size_t partial_write_cap = 0;

  // Read stalls: with probability stall_rate per readiness event the link
  // goes deaf for 1..stall_ms milliseconds (uniform).
  double stall_rate = 0.0;
  std::uint64_t stall_ms = 0;

  // Mid-stream disconnects, sampled per outbound frame released.
  double disconnect_rate = 0.0;

  // Accept-time connection resets, sampled once per accepted connection.
  double accept_reset_rate = 0.0;

  bool delays() const {
    return base_rtt_ms > 0 || jitter_ms > 0 || bandwidth_bytes_per_s > 0;
  }
  bool any() const {
    return delays() || partial_write_cap > 0 || stall_rate > 0 ||
           disconnect_rate > 0 || accept_reset_rate > 0;
  }

  // Latency-only plan matching the grid/latency.h cost model.
  static ChaosPlan from_link_profile(const LinkProfile& profile,
                                     std::uint64_t seed);
};

// Named profiles for the CLI surface (gridd --chaos, gridload --chaos):
// "off", "light" (mild WAN: tens of ms, rare faults), "heavy" (volunteer
// uplink with aggressive stalls/resets). Throws on anything else.
ChaosPlan make_chaos_plan(const std::string& level, std::uint64_t seed);

// Per-connection sampler over a ChaosPlan. Deterministic: two links built
// from the same (plan, link_index) produce identical draw sequences.
class ChaosLink {
 public:
  ChaosLink(const ChaosPlan& plan, std::uint64_t link_index);

  // Wall-clock (or virtual-clock) time at which a `bytes`-byte frame
  // enqueued at `now_ms` comes out the far end: serialization queued
  // behind the link's earlier frames, plus propagation and jitter,
  // clamped monotone so a stream never reorders.
  std::uint64_t release_ms(std::size_t bytes, std::uint64_t now_ms);

  // Per released frame: does the connection die under this one?
  bool sample_disconnect();
  // Once per accepted connection: reset before the handshake?
  bool sample_accept_reset();
  // Per read-readiness event: nullopt = read normally, else go deaf for
  // the returned number of milliseconds.
  std::optional<std::uint64_t> sample_stall_ms();
  // Caps one socket write (identity when partial_write_cap is 0).
  std::size_t clamp_write(std::size_t n) const;

  bool delays() const { return plan_.delays(); }
  const ChaosPlan& plan() const { return plan_; }

 private:
  ChaosPlan plan_;
  Rng rng_;
  double busy_until_ms_ = 0.0;     // serialization queue horizon
  std::uint64_t last_release_ = 0;  // monotonicity clamp
};

// How the quiescence timeout is chosen. `adaptive == false` keeps the
// configured fixed timeout; adaptive mode tracks the traffic's own gap
// distribution. Either way the result is clamped to [floor_ms,
// ceiling_ms] — the bounds are policy, not an adaptive-only detail.
struct QuiescencePolicy {
  bool adaptive = false;
  std::uint64_t floor_ms = 100;
  std::uint64_t ceiling_ms = 10000;
  double multiplier = 3.0;  // safety margin over the estimated gap
};

// TCP-RTO-shaped estimator (RFC 6298 weights) over inter-message gaps:
// timeout = clamp(multiplier * (SRTT + 4 * RTTVAR), floor, ceiling). The
// fallback timeout applies until enough samples accumulate, and always
// when the policy is not adaptive — clamped to [floor_ms, ceiling_ms] in
// every case.
class AdaptiveTimeout {
 public:
  AdaptiveTimeout() = default;
  explicit AdaptiveTimeout(QuiescencePolicy policy) : policy_(policy) {}

  void record_gap(std::uint64_t gap_ms);
  std::uint64_t timeout_ms(std::uint64_t fallback_ms) const;

  std::uint64_t samples() const { return samples_; }
  const QuiescencePolicy& policy() const { return policy_; }

 private:
  QuiescencePolicy policy_;
  double srtt_ms_ = 0.0;
  double rttvar_ms_ = 0.0;
  std::uint64_t samples_ = 0;
};

// Deterministic latency-replaying Transport: frames encode through the
// wire codec (byte metering matches the other transports), wait in a
// virtual-clock queue until their ChaosLink release time, and race the
// same quiescence policy TcpTransport runs. Single-threaded; run() is the
// protocol thread. Mid-stream disconnects drop the sampled frame — the
// sim-side image of a connection dying with traffic in flight.
class LatencyTransport final : public Transport {
 public:
  struct Options {
    ChaosPlan plan;
    QuiescencePolicy quiescence;
    std::uint64_t quiescence_timeout_ms = 1000;  // fixed/base timeout
  };

  explicit LatencyTransport(Options options);

  GridNodeId add_node(GridNode& node);

  void send(GridNodeId from, GridNodeId to, const Message& message) override;
  const NetworkStats& stats() const override { return stats_; }

  // Runs deliveries, flushes, and quiescence cycles until every node is
  // done reacting and the queue is dry. Returns delivered-frame count;
  // throws past `max_steps` (a protocol livelock, not a chaos effect).
  std::size_t run(std::size_t max_steps = 1000000);

  std::uint64_t now_ms() const { return vnow_ms_; }
  std::uint64_t quiescence_fires() const { return quiescence_fires_; }
  std::uint64_t frames_delayed() const { return frames_delayed_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t current_timeout_ms() const {
    return estimator_.timeout_ms(options_.quiescence_timeout_ms);
  }

 private:
  struct InFlight {
    GridNodeId from;
    GridNodeId to;
    Bytes payload;
  };

  ChaosLink& link(GridNodeId from, GridNodeId to);
  void deliver(const InFlight& frame);

  Options options_;
  AdaptiveTimeout estimator_;
  std::vector<GridNode*> nodes_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, ChaosLink> links_;
  // (release_ms, sequence) -> frame: release order, FIFO within a tick.
  std::map<std::pair<std::uint64_t, std::uint64_t>, InFlight> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t vnow_ms_ = 0;
  std::uint64_t last_delivery_ms_ = 0;
  bool delivered_any_ = false;
  NetworkStats stats_;
  Bytes encode_scratch_;
  std::uint64_t quiescence_fires_ = 0;
  std::uint64_t frames_delayed_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace ugc
