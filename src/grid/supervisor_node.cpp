#include "grid/supervisor_node.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "core/sampling.h"

namespace ugc {

SupervisorNode::SupervisorNode(Plan plan, std::vector<GridNodeId> slots)
    : plan_(std::move(plan)), slots_(std::move(slots)), rng_(plan_.seed) {
  check(!slots_.empty(), "SupervisorNode: at least one assignment slot");
  const WorkloadRegistry& registry =
      plan_.registry != nullptr ? *plan_.registry : WorkloadRegistry::global();
  bundle_ = registry.make(plan_.workload, plan_.workload_seed);

  // Route all verification work through a counting wrapper so the
  // supervisor's compute cost is measurable.
  counting_f_ = std::make_shared<CountingComputeFunction>(bundle_.f);
  if (bundle_.verifier != nullptr) {
    verifier_ = bundle_.verifier;  // cheap workload-specific verifier
  } else {
    verifier_ = std::make_shared<RecomputeVerifier>(counting_f_);
  }

  if (plan_.scheme.kind == SchemeKind::kDoubleCheck) {
    check(plan_.scheme.double_check.replicas >= 2,
          "SupervisorNode: double-check needs >= 2 replicas");
    check(slots_.size() % plan_.scheme.double_check.replicas == 0,
          "SupervisorNode: slot count ", slots_.size(),
          " not divisible by replica count ",
          plan_.scheme.double_check.replicas);
  }
}

Task SupervisorNode::task_for(TaskId id, const Domain& domain) const {
  return Task::make(id, domain, counting_f_, bundle_.screener);
}

void SupervisorNode::start(SimNetwork& network) {
  check(!started_, "SupervisorNode::start: already started");
  started_ = true;

  const std::size_t replicas = plan_.scheme.kind == SchemeKind::kDoubleCheck
                                   ? plan_.scheme.double_check.replicas
                                   : 1;
  const std::size_t group_count = slots_.size() / replicas;
  const std::vector<Domain> parts = plan_.domain.split(group_count);

  std::uint64_t next_task = 1;
  for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
    const std::size_t group = slot / replicas;
    const TaskId id{next_task++};
    const Domain& subdomain = parts[group];

    TaskState state;
    state.domain = subdomain;
    state.peer = slots_[slot];
    state.group = group;

    TaskAssignment assignment;
    assignment.task = id;
    assignment.domain_begin = subdomain.begin();
    assignment.domain_end = subdomain.end();
    assignment.workload = plan_.workload;
    assignment.workload_seed = plan_.workload_seed;
    assignment.scheme = plan_.scheme;

    if (plan_.scheme.kind == SchemeKind::kRinger) {
      RingerConfig config = plan_.scheme.ringer;
      config.seed = rng_.next();  // fresh secret ringers per task
      state.ringer = std::make_unique<RingerSupervisor>(
          task_for(id, subdomain), config);
      assignment.ringer_images = state.ringer->planted_images();
    }

    groups_[group].push_back(id);
    tasks_.emplace(id, std::move(state));
    network.send(this->id(), slots_[slot], assignment);
  }
}

void SupervisorNode::settle(TaskId, TaskState& state, Verdict verdict,
                            SimNetwork& network) {
  if (state.verdict.has_value()) {
    return;  // first verdict wins; late duplicates are dropped
  }
  state.verdict = verdict;
  network.send(this->id(), state.peer, verdict);
}

void SupervisorNode::on_message(GridNodeId from, const Message& message,
                                SimNetwork& network) {
  const TaskId id = task_of(message);
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return;  // stale or misrouted traffic
  }
  TaskState& state = it->second;

  if (const auto* commitment = std::get_if<Commitment>(&message)) {
    if (plan_.scheme.kind != SchemeKind::kCbs || state.cbs != nullptr) {
      return;
    }
    state.cbs = std::make_unique<CbsSupervisor>(
        task_for(id, state.domain), plan_.scheme.cbs, verifier_,
        Rng(rng_.next()));
    network.send(this->id(), state.peer, state.cbs->challenge(*commitment));

  } else if (const auto* response = std::get_if<ProofResponse>(&message)) {
    if (state.cbs == nullptr) {
      return;
    }
    Verdict verdict = state.cbs->verify(*response);
    results_verified_ += response->proofs.size();
    settle(id, state, std::move(verdict), network);

  } else if (const auto* proof = std::get_if<NiCbsProof>(&message)) {
    if (plan_.scheme.kind != SchemeKind::kNiCbs) {
      return;
    }
    NiCbsSupervisor supervisor(task_for(id, state.domain), plan_.scheme.nicbs,
                               verifier_);
    Verdict verdict = supervisor.verify(*proof);
    results_verified_ += supervisor.metrics().results_verified;
    settle(id, state, std::move(verdict), network);

  } else if (const auto* batched = std::get_if<BatchProofResponse>(&message)) {
    if (state.cbs == nullptr) {
      return;
    }
    Verdict verdict = state.cbs->verify_batched(*batched);
    results_verified_ += batched->results.size();
    settle(id, state, std::move(verdict), network);

  } else if (const auto* upload = std::get_if<ResultsUpload>(&message)) {
    handle_upload(id, state, *upload, network);

  } else if (const auto* ringer_report = std::get_if<RingerReport>(&message)) {
    if (state.ringer == nullptr) {
      return;
    }
    const RingerVerdict rv = state.ringer->verify(*ringer_report);
    Verdict verdict;
    verdict.task = id;
    verdict.status =
        rv.accepted ? VerdictStatus::kAccepted : VerdictStatus::kWrongResult;
    verdict.detail = concat("ringers found ", rv.ringers_found, "/",
                            rv.ringers_expected);
    settle(id, state, std::move(verdict), network);

  } else if (const auto* report = std::get_if<ScreenerReport>(&message)) {
    if (plan_.scheme.kind == SchemeKind::kDoubleCheck ||
        plan_.scheme.kind == SchemeKind::kNaiveSampling) {
      return;  // the supervisor screens the uploaded results itself
    }
    if (!plan_.validate_reported_hits) {
      state.hits.insert(state.hits.end(), report->hits.begin(),
                        report->hits.end());
      return;
    }
    for (const ScreenerHit& hit : report->hits) {
      if (!state.domain.contains(hit.x)) {
        continue;
      }
      // One f evaluation per reported hit: cheap, since hits are rare by
      // construction, and it reduces the screener channel to the same
      // trust level as a sampled result.
      const Bytes value = counting_f_->evaluate(hit.x);
      if (auto canonical = bundle_.screener->screen(hit.x, value)) {
        state.hits.push_back(ScreenerHit{hit.x, std::move(*canonical)});
      }
    }
  }
  (void)from;
}

Verdict SupervisorNode::check_naive_upload(TaskId id, const TaskState& state,
                                           const ResultsUpload& upload) {
  const std::uint64_t n = state.domain.size();
  Verdict verdict;
  verdict.task = id;
  if (upload.results.size() != n) {
    verdict.status = VerdictStatus::kMalformed;
    verdict.detail = concat("uploaded ", upload.results.size(),
                            " results for a domain of ", n);
    return verdict;
  }

  const std::size_t m =
      std::min<std::size_t>(plan_.scheme.naive.sample_count, n);
  const std::vector<LeafIndex> samples = sample_with_replacement(rng_, n, m);
  for (const LeafIndex index : samples) {
    ++results_verified_;
    const std::uint64_t x = state.domain.input(index);
    if (!verifier_->verify(x, upload.results[index.value])) {
      verdict.status = VerdictStatus::kWrongResult;
      verdict.failed_sample = index;
      verdict.detail = concat("spot-check failed at input ", x);
      return verdict;
    }
  }
  verdict.status = VerdictStatus::kAccepted;
  verdict.detail = concat(m, " spot-checks passed");
  return verdict;
}

void SupervisorNode::handle_upload(TaskId id, TaskState& state,
                                   const ResultsUpload& upload,
                                   SimNetwork& network) {
  switch (plan_.scheme.kind) {
    case SchemeKind::kNaiveSampling: {
      Verdict verdict = check_naive_upload(id, state, upload);
      const bool accepted = verdict.accepted();
      settle(id, state, std::move(verdict), network);
      if (accepted) {
        screen_upload(state, upload);
      }
      return;
    }
    case SchemeKind::kDoubleCheck:
      state.upload = upload;
      resolve_double_check_group(state.group, network);
      return;
    default:
      return;  // unexpected upload for this scheme
  }
}

void SupervisorNode::screen_upload(TaskState& state,
                                   const ResultsUpload& upload) {
  // With the full result vector in hand, the supervisor runs the (cheap)
  // screener itself — participant screener reports are irrelevant to
  // upload-based schemes, which neutralizes §2.2's malicious conduct.
  state.hits.clear();
  for (std::uint64_t i = 0; i < upload.results.size(); ++i) {
    const std::uint64_t x = state.domain.input(LeafIndex{i});
    if (auto hit = bundle_.screener->screen(x, upload.results[i])) {
      state.hits.push_back(ScreenerHit{x, std::move(*hit)});
    }
  }
}

void SupervisorNode::resolve_double_check_group(std::size_t group,
                                                SimNetwork& network) {
  const auto group_it = groups_.find(group);
  check(group_it != groups_.end(), "SupervisorNode: unknown replica group");
  const std::vector<TaskId>& members = group_it->second;

  // Wait until every replica reported.
  for (const TaskId member : members) {
    if (!tasks_.at(member).upload.has_value()) {
      return;
    }
  }

  const Domain& domain = tasks_.at(members.front()).domain;
  const std::uint64_t n = domain.size();

  // Structurally invalid uploads are settled as malformed and excluded from
  // comparison.
  std::vector<TaskId> valid;
  for (const TaskId member : members) {
    TaskState& state = tasks_.at(member);
    if (state.upload->results.size() != n) {
      Verdict verdict;
      verdict.task = member;
      verdict.status = VerdictStatus::kMalformed;
      verdict.detail = "wrong result count";
      settle(member, state, std::move(verdict), network);
    } else {
      valid.push_back(member);
    }
  }

  // Positions where any two valid replicas disagree get arbitrated by
  // recomputing the truth; a replica is rejected iff it is wrong at any
  // arbitrated position. Unanimous positions are accepted unverified —
  // double-check is blind to colluding (or identically-guessing) cheaters.
  std::vector<bool> wrong(valid.size(), false);
  std::size_t disagreements = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    bool all_equal = true;
    const Bytes& first =
        tasks_.at(valid.front()).upload->results[i];
    for (std::size_t v = 1; v < valid.size(); ++v) {
      if (!equal_bytes(tasks_.at(valid[v]).upload->results[i], first)) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) {
      continue;
    }
    ++disagreements;
    const Bytes truth = counting_f_->evaluate(domain.input(LeafIndex{i}));
    for (std::size_t v = 0; v < valid.size(); ++v) {
      if (!equal_bytes(tasks_.at(valid[v]).upload->results[i], truth)) {
        wrong[v] = true;
      }
    }
  }

  for (std::size_t v = 0; v < valid.size(); ++v) {
    TaskState& state = tasks_.at(valid[v]);
    Verdict verdict;
    verdict.task = valid[v];
    verdict.status =
        wrong[v] ? VerdictStatus::kWrongResult : VerdictStatus::kAccepted;
    verdict.detail = concat("double-check: ", disagreements,
                            " disagreeing positions");
    const bool accepted = verdict.status == VerdictStatus::kAccepted;
    settle(valid[v], state, std::move(verdict), network);
    if (accepted) {
      screen_upload(state, *state.upload);
    }
  }
}

bool SupervisorNode::done() const {
  return std::all_of(tasks_.begin(), tasks_.end(), [](const auto& entry) {
    return entry.second.verdict.has_value();
  });
}

std::vector<SupervisorNode::TaskOutcome> SupervisorNode::outcomes() const {
  std::vector<TaskOutcome> out;
  out.reserve(tasks_.size());
  for (const auto& [id, state] : tasks_) {
    TaskOutcome outcome;
    outcome.task = id;
    outcome.domain = state.domain;
    outcome.peer = state.peer;
    outcome.verdict = state.verdict.value_or(
        Verdict{id, VerdictStatus::kMalformed, std::nullopt, "no verdict"});
    out.push_back(std::move(outcome));
  }
  return out;
}

std::vector<ScreenerHit> SupervisorNode::accepted_hits() const {
  std::set<std::pair<std::uint64_t, std::string>> seen;
  std::vector<ScreenerHit> hits;
  for (const auto& [id, state] : tasks_) {
    if (!state.verdict.has_value() || !state.verdict->accepted()) {
      continue;
    }
    for (const ScreenerHit& hit : state.hits) {
      if (seen.insert({hit.x, hit.report}).second) {
        hits.push_back(hit);
      }
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const ScreenerHit& a, const ScreenerHit& b) {
              return a.x < b.x;
            });
  return hits;
}

}  // namespace ugc
