#include "grid/supervisor_node.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.h"
#include "common/parallel.h"

namespace ugc {

SupervisorNode::SupervisorNode(Plan plan, std::vector<GridNodeId> slots)
    : plan_(std::move(plan)), slots_(std::move(slots)), rng_(plan_.seed) {
  check(!slots_.empty(), "SupervisorNode: at least one assignment slot");
  const WorkloadRegistry& registry =
      plan_.registry != nullptr ? *plan_.registry : WorkloadRegistry::global();
  bundle_ = registry.make(plan_.workload, plan_.workload_seed);

  const SchemeRegistry& schemes =
      plan_.schemes != nullptr ? *plan_.schemes : SchemeRegistry::global();
  scheme_ = &schemes.resolve(plan_.scheme);

  // Route all verification work through a counting wrapper so the
  // supervisor's compute cost is measurable.
  counting_f_ = std::make_shared<CountingComputeFunction>(bundle_.f);
  if (bundle_.verifier != nullptr) {
    verifier_ = bundle_.verifier;  // cheap workload-specific verifier
  } else {
    verifier_ = std::make_shared<RecomputeVerifier>(counting_f_);
  }

  const std::size_t replicas = scheme_->replicas(plan_.scheme);
  check(replicas >= 1, "SupervisorNode: scheme reports zero replicas");
  check(slots_.size() % replicas == 0, "SupervisorNode: slot count ",
        slots_.size(), " not divisible by replica count ", replicas);
}

Task SupervisorNode::task_for(TaskId id, const Domain& domain) const {
  return Task::make(id, domain, counting_f_, bundle_.screener);
}

void SupervisorNode::assign_group(GroupState& group, Transport& transport) {
  const std::size_t replicas = group.slots.size();

  SupervisorContext context;
  context.config = plan_.scheme;
  context.verifier = verifier_;
  // Fresh sampling randomness per attempt: a re-assigned task must never
  // reuse challenge positions a previous (possibly colluding) holder saw.
  context.seed = rng_.next();
  group.tasks.clear();
  for (std::size_t replica = 0; replica < replicas; ++replica) {
    const TaskId id{next_task_++};
    group.tasks.push_back(id);
    context.tasks.push_back(task_for(id, group.domain));
  }

  auto session = scheme_->open_supervisor(std::move(context));
  const std::size_t session_index = sessions_.size();
  for (std::size_t replica = 0; replica < replicas; ++replica) {
    const TaskId id = group.tasks[replica];

    TaskState state;
    state.domain = group.domain;
    state.peer = slots_[group.slots[replica]];
    state.slot_index = group.slots[replica];
    state.session_index = session_index;
    tasks_.emplace(id, std::move(state));

    TaskAssignment assignment;
    assignment.task = id;
    assignment.domain_begin = group.domain.begin();
    assignment.domain_end = group.domain.end();
    assignment.workload = plan_.workload;
    assignment.workload_seed = plan_.workload_seed;
    assignment.scheme = plan_.scheme;
    assignment.ringer_images = session->planted_images(id);
    transport.send(this->id(), slots_[group.slots[replica]], assignment);
  }
  sessions_.push_back(SessionSlot{std::move(session), {}});
  // Some schemes speak first from the supervisor side; flush any opening
  // messages right behind the assignments.
  drain(*sessions_.back().session, transport);
}

void SupervisorNode::start(Transport& transport) {
  check(!started_, "SupervisorNode::start: already started");
  started_ = true;

  const std::size_t replicas = scheme_->replicas(plan_.scheme);
  const std::size_t group_count = slots_.size() / replicas;
  const std::vector<Domain> parts = plan_.domain.split(group_count);

  groups_.reserve(group_count);
  for (std::size_t g = 0; g < group_count; ++g) {
    GroupState group;
    group.domain = parts[g];
    for (std::size_t replica = 0; replica < replicas; ++replica) {
      group.slots.push_back(g * replicas + replica);
    }
    groups_.push_back(std::move(group));
  }
  for (GroupState& group : groups_) {
    assign_group(group, transport);
  }
}

void SupervisorNode::replace_slot(std::size_t slot_index, GridNodeId peer,
                                  Transport* transport) {
  check(slot_index < slots_.size(),
        "SupervisorNode::replace_slot: slot ", slot_index, " of ",
        slots_.size());
  slots_[slot_index] = peer;
  for (auto& [id, state] : tasks_) {
    if (state.superseded || state.verdict.has_value()) {
      continue;
    }
    if (state.slot_index != slot_index) {
      continue;
    }
    state.peer = peer;
    if (transport == nullptr) {
      continue;
    }
    // Pipelined re-entry: ship the resume point ahead of the re-built
    // assignment so the replacement attempt starts computing at the first
    // unverified epoch instead of redoing acknowledged work (or idling
    // until the quiescence retry re-assigns the whole group).
    const SessionSlot& slot = sessions_[state.session_index];
    const auto epoch = slot.session->resume_epoch(id);
    if (!epoch.has_value()) {
      continue;  // one-shot scheme: nothing to resume mid-protocol
    }
    transport->send(this->id(), peer, EpochResume{id, *epoch});
    TaskAssignment assignment;
    assignment.task = id;
    assignment.domain_begin = state.domain.begin();
    assignment.domain_end = state.domain.end();
    assignment.workload = plan_.workload;
    assignment.workload_seed = plan_.workload_seed;
    assignment.scheme = plan_.scheme;
    assignment.ringer_images = slot.session->planted_images(id);
    transport->send(this->id(), peer, assignment);
  }
}

void SupervisorNode::settle(TaskState& state, Verdict verdict,
                            Transport& transport) {
  if (state.verdict.has_value()) {
    return;  // first verdict wins; late duplicates are dropped
  }
  state.verdict = verdict;
  transport.send(this->id(), state.peer, verdict);
}

void SupervisorNode::drain(SupervisorSession& session, Transport& transport) {
  while (auto out = session.next_message()) {
    const auto it = tasks_.find(out->task);
    if (it == tasks_.end() || it->second.superseded) {
      continue;  // session addressed a task this node no longer runs
    }
    transport.send(this->id(), it->second.peer, to_message(out->message));
  }
  while (auto verdict = session.next_verdict()) {
    const auto it = tasks_.find(verdict->task);
    if (it == tasks_.end() || it->second.superseded) {
      continue;
    }
    settle(it->second, std::move(*verdict), transport);
  }
  while (auto hits = session.next_hits()) {
    const auto it = tasks_.find(hits->task);
    if (it == tasks_.end() || it->second.superseded) {
      continue;
    }
    std::vector<ScreenerHit>& sink = it->second.hits;
    sink.insert(sink.end(), std::make_move_iterator(hits->hits.begin()),
                std::make_move_iterator(hits->hits.end()));
  }
}

void SupervisorNode::handle_report(TaskState& state,
                                   const ScreenerReport& report) {
  if (!scheme_->trusts_screener_reports()) {
    return;  // the scheme's session screens results itself
  }
  if (!plan_.validate_reported_hits) {
    state.hits.insert(state.hits.end(), report.hits.begin(),
                      report.hits.end());
    return;
  }
  for (const ScreenerHit& hit : report.hits) {
    if (!state.domain.contains(hit.x)) {
      continue;
    }
    // One f evaluation per reported hit: cheap, since hits are rare by
    // construction, and it reduces the screener channel to the same
    // trust level as a sampled result.
    const Bytes value = counting_f_->evaluate(hit.x);
    if (auto canonical = bundle_.screener->screen(hit.x, value)) {
      state.hits.push_back(ScreenerHit{hit.x, std::move(*canonical)});
    }
  }
}

void SupervisorNode::on_message(GridNodeId from, const Message& message,
                                Transport& transport) {
  const TaskId id = task_of(message);
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    ++stale_frames_dropped_;  // stale or misrouted traffic
    return;
  }
  TaskState& state = it->second;
  if (state.superseded || from != state.peer) {
    // A superseded attempt's peer (or anyone spoofing one) cannot reach the
    // replacement session: duplicated or stalled frames from a pre-retry
    // attempt die here — counted, no longer silent.
    ++stale_frames_dropped_;
    return;
  }

  if (const auto* report = std::get_if<ScreenerReport>(&message)) {
    handle_report(state, *report);
    return;
  }
  auto scheme_message = to_scheme_message(message);
  if (!scheme_message.has_value()) {
    return;  // grid-only traffic a supervisor never consumes
  }
  SessionSlot& slot = sessions_[state.session_index];
  if (parallel_pump()) {
    // Defer into the session's shard; flush() verifies all shards
    // concurrently once the network queue drains.
    slot.inbox.emplace_back(id, std::move(*scheme_message));
    return;
  }
  slot.session->on_message(id, *scheme_message);
  drain(*slot.session, transport);
}

bool SupervisorNode::flush(Transport& transport) {
  if (!parallel_pump()) {
    return false;
  }
  pending_.clear();
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (!sessions_[i].inbox.empty()) {
      pending_.push_back(i);
    }
  }
  if (pending_.empty()) {
    return false;
  }
  // Sessions are independent (per-group state; the shared verifier counts
  // atomically), so shards verify concurrently. Each session consumes its
  // inbox in arrival order and queues outputs internally.
  parallel_for(
      0, pending_.size(),
      [this](std::uint64_t k) {
        SessionSlot& slot = sessions_[pending_[k]];
        for (auto& [task, message] : slot.inbox) {
          slot.session->on_message(task, message);
        }
      },
      plan_.pump_threads);
  // Serial, session-ordered merge keeps messages, verdicts, and hits
  // deterministic regardless of thread count.
  for (const std::size_t i : pending_) {
    sessions_[i].inbox.clear();
    drain(*sessions_[i].session, transport);
  }
  return true;
}

bool SupervisorNode::on_quiescent(Transport& transport) {
  if (!started_) {
    return false;
  }
  bool progressed = false;
  for (GroupState& group : groups_) {
    std::size_t unsettled = 0;
    for (const TaskId id : group.tasks) {
      if (!tasks_.at(id).verdict.has_value()) {
        ++unsettled;
      }
    }
    if (unsettled == 0) {
      continue;
    }

    // A partially settled group cannot be retried wholesale (its settled
    // verdicts are final); and a group out of retry budget stops here.
    // Either way the remainder aborts: no accusation, just a clean end.
    if (unsettled < group.tasks.size() ||
        group.retries >= plan_.max_task_retries) {
      for (const TaskId id : group.tasks) {
        TaskState& state = tasks_.at(id);
        if (!state.verdict.has_value()) {
          settle(state,
                 Verdict{id, VerdictStatus::kAborted, std::nullopt,
                         concat("aborted after ", group.retries, " retries")},
                 transport);
        }
      }
      progressed = true;
      continue;
    }

    // Full retry: retire this attempt, rotate every replica to the next
    // slot, and re-assign under fresh task ids and fresh sampling
    // randomness.
    ++group.retries;
    tasks_reassigned_ += group.tasks.size();
    for (const TaskId id : group.tasks) {
      TaskState& state = tasks_.at(id);
      state.superseded = true;
      state.verdict = Verdict{id, VerdictStatus::kAborted, std::nullopt,
                              concat("superseded by retry ", group.retries)};
      // Tell the (possibly slow-but-honest) old peer to drop the task.
      transport.send(this->id(), state.peer, *state.verdict);
    }
    for (std::size_t& slot : group.slots) {
      slot = (slot + 1) % slots_.size();
    }
    assign_group(group, transport);
    progressed = true;
  }
  return progressed;
}

bool SupervisorNode::done() const {
  return std::all_of(tasks_.begin(), tasks_.end(), [](const auto& entry) {
    return entry.second.superseded || entry.second.verdict.has_value();
  });
}

std::uint64_t SupervisorNode::results_verified() const {
  std::uint64_t total = 0;
  for (const SessionSlot& slot : sessions_) {
    total += slot.session->results_verified();
  }
  return total;
}

std::vector<SupervisorNode::TaskOutcome> SupervisorNode::outcomes() const {
  std::vector<TaskOutcome> out;
  out.reserve(tasks_.size());
  for (const auto& [id, state] : tasks_) {
    if (state.superseded) {
      continue;
    }
    TaskOutcome outcome;
    outcome.task = id;
    outcome.domain = state.domain;
    outcome.peer = state.peer;
    outcome.slot = state.slot_index;
    outcome.verdict = state.verdict.value_or(
        Verdict{id, VerdictStatus::kMalformed, std::nullopt, "no verdict"});
    out.push_back(std::move(outcome));
  }
  return out;
}

std::vector<ScreenerHit> SupervisorNode::accepted_hits() const {
  std::set<std::pair<std::uint64_t, std::string>> seen;
  std::vector<ScreenerHit> hits;
  for (const auto& [id, state] : tasks_) {
    if (state.superseded || !state.verdict.has_value() ||
        !state.verdict->accepted()) {
      continue;
    }
    for (const ScreenerHit& hit : state.hits) {
      if (seen.insert({hit.x, hit.report}).second) {
        hits.push_back(hit);
      }
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const ScreenerHit& a, const ScreenerHit& b) {
              return a.x < b.x;
            });
  return hits;
}

}  // namespace ugc
