#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/types.h"
#include "wire/messages.h"

namespace ugc {

class Transport;

// Per-link / per-node traffic counters.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

struct NetworkStats {
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  // Directed link (from, to) -> stats.
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkStats> links;
  std::map<std::uint32_t, LinkStats> sent_by;
  std::map<std::uint32_t, LinkStats> received_by;

  std::uint64_t bytes_sent(GridNodeId node) const {
    const auto it = sent_by.find(node.value);
    return it == sent_by.end() ? 0 : it->second.bytes;
  }
  std::uint64_t bytes_received(GridNodeId node) const {
    const auto it = received_by.find(node.value);
    return it == received_by.end() ? 0 : it->second.bytes;
  }

  // Folds one sent frame into every counter (helper shared by transports,
  // which must meter identically so cost studies carry over).
  void record(GridNodeId from, GridNodeId to, std::uint64_t bytes);
};

// A node in the grid (supervisor, participant, or broker). Implementations
// react to decoded messages and may send further messages through the
// transport they were handed. Protocol logic is written once against this
// interface and runs unchanged over the deterministic in-process transport
// (SimTransport) or real TCP sockets (TcpTransport in src/net/).
class GridNode {
 public:
  virtual ~GridNode() = default;

  GridNode() = default;
  GridNode(const GridNode&) = delete;
  GridNode& operator=(const GridNode&) = delete;

  virtual void on_message(GridNodeId from, const Message& message,
                          Transport& transport) = 0;

  // Called by the transport whenever its delivery queue drains. Nodes that
  // buffer work across deliveries (the supervisor's parallel session pump)
  // process it here and return true; the default does nothing. Transports
  // keep alternating deliver/flush until both go quiet.
  virtual bool flush(Transport& transport) {
    (void)transport;
    return false;
  }

  // Called when this node crashes (fault injection, or a real process
  // restart): all in-progress protocol state must be discarded.
  virtual void on_crash() {}

  // The transport's timeout signal: deliveries, flushes, and any delayed
  // frames are all exhausted (SimTransport), or the link has been idle past
  // the quiescence timeout (TcpTransport). Nodes with unresolved work (the
  // supervisor's retry/re-assignment logic) act here and return true to
  // keep the run going; returning false everywhere ends the run.
  virtual bool on_quiescent(Transport& transport) {
    (void)transport;
    return false;
  }

  GridNodeId id() const { return id_; }

 private:
  friend class Transport;
  GridNodeId id_{};
};

// The message-passing substrate the grid runs on. A transport owns the node
// id space, serializes every message through the wire codec (so byte
// metering reflects real traffic), and delivers decoded messages to
// GridNode::on_message. Two implementations ship:
//
//   SimTransport (grid/network.h) — deterministic, single-threaded,
//     in-process, with fault injection; the simulation/testing substrate.
//   TcpTransport (net/tcp_transport.h) — asynchronous non-blocking TCP with
//     length-prefixed frames; the production substrate gridd/gridworker run.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Encodes, meters, and queues a message from `from` to `to`. Delivery is
  // asynchronous: the message reaches the recipient's on_message later (or
  // never, on a faulty/disconnected link) — senders must not rely on
  // re-entrant delivery.
  virtual void send(GridNodeId from, GridNodeId to, const Message& message) = 0;

  // True when the transport knows `node` cannot currently receive (crashed
  // under a FaultPlan, or its connection is gone).
  virtual bool offline(GridNodeId node) const {
    (void)node;
    return false;
  }

  virtual const NetworkStats& stats() const = 0;

 protected:
  // Transports assign node ids (GridNode::id_ is private to keep protocol
  // code from forging sender identities).
  static void assign_id(GridNode& node, GridNodeId id) { node.id_ = id; }
};

// Routing helper: the task a protocol message belongs to (used by the
// broker, which routes purely on task ids without understanding payloads).
// Task-less control traffic (Hello) maps to the reserved TaskId 0, which no
// supervisor ever assigns.
TaskId task_of(const Message& message);

}  // namespace ugc
