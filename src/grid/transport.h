#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/types.h"
#include "wire/messages.h"

namespace ugc {

class Transport;

// Per-link / per-node traffic counters.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

struct NetworkStats {
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  // Directed link (from, to) -> stats.
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkStats> links;
  std::map<std::uint32_t, LinkStats> sent_by;
  std::map<std::uint32_t, LinkStats> received_by;

  std::uint64_t bytes_sent(GridNodeId node) const {
    const auto it = sent_by.find(node.value);
    return it == sent_by.end() ? 0 : it->second.bytes;
  }
  std::uint64_t bytes_received(GridNodeId node) const {
    const auto it = received_by.find(node.value);
    return it == received_by.end() ? 0 : it->second.bytes;
  }

  // Folds one sent frame into every counter (helper shared by transports,
  // which must meter identically so cost studies carry over).
  void record(GridNodeId from, GridNodeId to, std::uint64_t bytes);
};

// A node in the grid (supervisor, participant, or broker). Implementations
// react to decoded messages and may send further messages through the
// transport they were handed. Protocol logic is written once against this
// interface and runs unchanged over the deterministic in-process transport
// (SimTransport) or real TCP sockets (TcpTransport in src/net/).
class GridNode {
 public:
  virtual ~GridNode() = default;

  GridNode() = default;
  GridNode(const GridNode&) = delete;
  GridNode& operator=(const GridNode&) = delete;

  virtual void on_message(GridNodeId from, const Message& message,
                          Transport& transport) = 0;

  // Called by the transport whenever its delivery queue drains. Nodes that
  // buffer work across deliveries (the supervisor's parallel session pump)
  // process it here and return true; the default does nothing. Transports
  // keep alternating deliver/flush until both go quiet.
  virtual bool flush(Transport& transport) {
    (void)transport;
    return false;
  }

  // Called when this node crashes (fault injection, or a real process
  // restart): all in-progress protocol state must be discarded.
  virtual void on_crash() {}

  // The transport's timeout signal: deliveries, flushes, and any delayed
  // frames are all exhausted (SimTransport), or the link has been idle past
  // the quiescence timeout (TcpTransport). Nodes with unresolved work (the
  // supervisor's retry/re-assignment logic) act here and return true to
  // keep the run going; returning false everywhere ends the run.
  virtual bool on_quiescent(Transport& transport) {
    (void)transport;
    return false;
  }

  GridNodeId id() const { return id_; }

 private:
  friend class Transport;
  GridNodeId id_{};
};

// The message-passing substrate the grid runs on. A transport owns the node
// id space, serializes every message through the wire codec (so byte
// metering reflects real traffic), and delivers decoded messages to
// GridNode::on_message. Two implementations ship:
//
//   SimTransport (grid/network.h) — deterministic, single-threaded,
//     in-process, with fault injection; the simulation/testing substrate.
//   TcpTransport (net/tcp_transport.h) — asynchronous non-blocking TCP with
//     length-prefixed frames; the production substrate gridd/gridworker run.
//
// Threading contract (what protocol code may assume, what transports must
// guarantee):
//
//   1. Every GridNode callback — on_message, flush, on_quiescent, on_crash —
//      fires on ONE thread, the protocol thread (the caller of SimTransport's
//      delivery loop, or the thread inside TcpTransport::run()). Nodes never
//      need their own locking; a node's state is only ever touched from that
//      thread.
//   2. send() and stats() are protocol-thread-only. Calling send() from any
//      other thread is a contract violation, not a supported path: transports
//      are free to touch unsynchronized per-peer state (write queues, stats
//      maps) inside send(). Callbacks may call send() freely — they are
//      already on the protocol thread.
//   3. Transports MAY run I/O on other threads. TcpTransport in multi-loop
//      mode owns each accepted peer on exactly one of N event-loop threads
//      (reads, writes, and timers for that fd happen only there) and hands
//      decoded messages to the protocol thread through a mailbox; replies
//      queued by send() travel back to the owning loop the same way. Peer
//      ownership never migrates between loops for the life of a connection.
//      This holds for every readiness backend, io_uring included: a loop's
//      ring is single-owner like its epoll/poll set, submissions and
//      completions for a peer's fd are issued and reaped only on the owning
//      loop thread, and batched vectored writes flush on that thread — so
//      no completion, partial write, or buffer recycle ever touches a peer
//      from anywhere but its owner.
//   4. The narrow exception: TcpTransport::AuthOptions::is_banned runs on a
//      loop thread (it gates the handshake before a peer exists to the
//      protocol layer), so that callback must be thread-safe. Everything
//      else the grid layer supplies stays on the protocol thread.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Encodes, meters, and queues a message from `from` to `to`. Delivery is
  // asynchronous: the message reaches the recipient's on_message later (or
  // never, on a faulty/disconnected link) — senders must not rely on
  // re-entrant delivery.
  virtual void send(GridNodeId from, GridNodeId to, const Message& message) = 0;

  // True when the transport knows `node` cannot currently receive (crashed
  // under a FaultPlan, or its connection is gone).
  virtual bool offline(GridNodeId node) const {
    (void)node;
    return false;
  }

  virtual const NetworkStats& stats() const = 0;

 protected:
  // Transports assign node ids (GridNode::id_ is private to keep protocol
  // code from forging sender identities).
  static void assign_id(GridNode& node, GridNodeId id) { node.id_ = id; }
};

// Routing helper: the task a protocol message belongs to (used by the
// broker, which routes purely on task ids without understanding payloads).
// Task-less control traffic (Hello) maps to the reserved TaskId 0, which no
// supervisor ever assigns.
TaskId task_of(const Message& message);

}  // namespace ugc
