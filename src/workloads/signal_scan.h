#pragma once

#include <cstdint>

#include "core/task.h"

namespace ugc {

// SETI@home-style signal search over synthetic sky data.
//
// Each input x identifies a "sky block": a deterministic PRNG expands
// (x, noise_seed) into `block_samples` noise samples; roughly one block in
// `signal_period` carries an embedded chirp. f computes the best matched-
// filter correlation against a small template bank and returns the score
// (fixed-point) plus the best template id. The screener reports blocks whose
// score crosses the detection threshold.
//
// This preserves what matters for the paper's experiments: f is moderately
// expensive (O(block_samples × templates) arithmetic per input), outputs are
// hard to guess, and "interesting" results are rare.
class SignalScanFunction final : public ComputeFunction {
 public:
  static constexpr std::size_t kResultSize = 16;  // score u64 | template u64

  struct Params {
    std::uint32_t block_samples = 512;
    std::uint32_t templates = 4;
    std::uint64_t noise_seed = 0;
    // One block in `signal_period` gets an injected chirp.
    std::uint64_t signal_period = 64;
    // Injected signal amplitude, in 1/100ths of the noise deviation.
    std::uint32_t amplitude_centi = 300;
  };

  explicit SignalScanFunction(Params params);

  Bytes evaluate(std::uint64_t x) const override;
  std::size_t result_size() const override { return kResultSize; }
  std::string name() const override { return "signal-scan"; }

  // True when block x carries an injected signal (ground truth for tests).
  bool has_signal(std::uint64_t x) const;

  // Decodes the fixed-point score from a result.
  static std::uint64_t score_of(BytesView result);

  const Params& params() const { return params_; }

 private:
  Params params_;
};

// Reports blocks whose score is at least `threshold`.
class SignalScreener final : public Screener {
 public:
  explicit SignalScreener(std::uint64_t threshold) : threshold_(threshold) {}

  std::optional<std::string> screen(std::uint64_t x,
                                    BytesView fx) const override;
  std::string name() const override { return "signal-screener"; }

 private:
  std::uint64_t threshold_;
};

}  // namespace ugc
