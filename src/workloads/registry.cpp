#include "workloads/registry.h"

#include "common/error.h"
#include "crypto/sha256.h"
#include "workloads/factoring.h"
#include "workloads/keysearch.h"
#include "workloads/lucas_lehmer.h"
#include "workloads/molecule_screen.h"
#include "workloads/signal_scan.h"

namespace ugc {

namespace {

// Minimal cheap workload for protocol-focused experiments: f(x) = 16 bytes
// of SHA256(x || seed), no screener hits.
class CheapFunction final : public ComputeFunction {
 public:
  explicit CheapFunction(std::uint64_t seed) : seed_(seed) {}

  Bytes evaluate(std::uint64_t x) const override {
    Bytes block(16);
    for (int i = 0; i < 8; ++i) {
      block[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(x >> (8 * i));
      block[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(seed_ >> (8 * i));
    }
    const Bytes digest = Sha256::hash(block).to_bytes();
    return Bytes(digest.begin(), digest.begin() + 16);
  }
  std::size_t result_size() const override { return 16; }
  std::string name() const override { return "test"; }

 private:
  std::uint64_t seed_;
};

WorkloadBundle make_test_workload(std::uint64_t seed) {
  WorkloadBundle bundle;
  bundle.f = std::make_shared<CheapFunction>(seed);
  bundle.screener = std::make_shared<NullScreener>();
  return bundle;
}

WorkloadBundle make_keysearch_workload(std::uint64_t seed) {
  // The secret key is planted within the first 256 candidates so that any
  // grid domain covering [0, 256) contains it; scenarios needing full
  // control call make_keysearch_scenario directly.
  const KeySearchScenario scenario =
      make_keysearch_scenario(0, 256, seed, /*work_factor=*/8);
  WorkloadBundle bundle;
  bundle.f = scenario.f;
  bundle.screener = scenario.screener;
  return bundle;
}

WorkloadBundle make_signal_workload(std::uint64_t seed) {
  SignalScanFunction::Params params;
  params.noise_seed = seed;
  WorkloadBundle bundle;
  bundle.f = std::make_shared<SignalScanFunction>(params);
  // Threshold at 1.5 (fixed point): noise peaks sit well below, injected
  // chirps well above (see workloads_test for the calibration check).
  bundle.screener = std::make_shared<SignalScreener>(98304);
  return bundle;
}

WorkloadBundle make_molecule_workload(std::uint64_t seed) {
  MoleculeScreenFunction::Params params;
  params.receptor_seed = seed;
  WorkloadBundle bundle;
  bundle.f = std::make_shared<MoleculeScreenFunction>(params);
  // Score distribution tops out rarely; threshold picks the upper tail.
  bundle.screener = std::make_shared<BindingScreener>(36000);
  return bundle;
}

WorkloadBundle make_lucas_workload(std::uint64_t) {
  WorkloadBundle bundle;
  bundle.f = std::make_shared<LucasLehmerFunction>();
  bundle.screener = std::make_shared<MersenneScreener>();
  return bundle;
}

WorkloadBundle make_factoring_workload(std::uint64_t seed) {
  FactoringFunction::Params params;
  params.seed = seed;
  auto f = std::make_shared<FactoringFunction>(params);
  WorkloadBundle bundle;
  bundle.f = f;
  bundle.screener = std::make_shared<NullScreener>();
  bundle.verifier = std::make_shared<FactoringVerifier>(f);
  return bundle;
}

}  // namespace

std::shared_ptr<const ResultVerifier> WorkloadBundle::make_verifier() const {
  if (verifier != nullptr) {
    return verifier;
  }
  check(f != nullptr, "WorkloadBundle::make_verifier: no compute function");
  return std::make_shared<RecomputeVerifier>(f);
}

WorkloadRegistry& WorkloadRegistry::global() {
  static WorkloadRegistry registry = [] {
    WorkloadRegistry r;
    r.register_workload("test", make_test_workload);
    r.register_workload("keysearch", make_keysearch_workload);
    r.register_workload("signal-scan", make_signal_workload);
    r.register_workload("molecule-screen", make_molecule_workload);
    r.register_workload("lucas-lehmer", make_lucas_workload);
    r.register_workload("factoring", make_factoring_workload);
    return r;
  }();
  return registry;
}

void WorkloadRegistry::register_workload(std::string name,
                                         WorkloadFactory factory) {
  check(!name.empty(), "WorkloadRegistry: empty name");
  check(factory != nullptr, "WorkloadRegistry: factory required");
  factories_[std::move(name)] = std::move(factory);
}

bool WorkloadRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

WorkloadBundle WorkloadRegistry::make(const std::string& name,
                                      std::uint64_t seed) const {
  const auto it = factories_.find(name);
  check(it != factories_.end(), "WorkloadRegistry: unknown workload '", name,
        "'");
  WorkloadBundle bundle = it->second(seed);
  check(bundle.f != nullptr, "WorkloadRegistry: workload '", name,
        "' produced no compute function");
  if (bundle.screener == nullptr) {
    bundle.screener = std::make_shared<NullScreener>();
  }
  return bundle;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace ugc
