#include "workloads/lucas_lehmer.h"

namespace ugc {

namespace {

bool is_small_prime(std::uint64_t p) {
  if (p < 2) return false;
  for (std::uint64_t d = 2; d * d <= p; ++d) {
    if (p % d == 0) return false;
  }
  return true;
}

}  // namespace

bool LucasLehmerFunction::mersenne_is_prime(std::uint64_t p) {
  // The Lucas–Lehmer test applies to odd prime exponents; p = 2 (M = 3) is
  // the classical special case. Exponents above 63 overflow M_p in 64 bits
  // and composite exponents always yield composite M_p.
  if (p == 2) return true;
  if (p > 63 || !is_small_prime(p)) return false;

  const std::uint64_t m = (std::uint64_t{1} << p) - 1;
  unsigned __int128 s = 4 % m;
  for (std::uint64_t i = 0; i + 2 < p; ++i) {
    s = s * s;
    // Reduce mod 2^p − 1 by folding the high bits down until they vanish.
    while ((s >> p) != 0) {
      s = (s & m) + (s >> p);
    }
    if (s >= m) s -= m;
    s = s >= 2 ? s - 2 : s + m - 2;
  }
  return s == 0;
}

Bytes LucasLehmerFunction::evaluate(std::uint64_t x) const {
  return Bytes{static_cast<std::uint8_t>(mersenne_is_prime(x) ? 1 : 0)};
}

std::optional<std::string> MersenneScreener::screen(std::uint64_t x,
                                                    BytesView fx) const {
  if (!fx.empty() && fx[0] == 1) {
    return concat("mersenne-prime:p=", x);
  }
  return std::nullopt;
}

}  // namespace ugc
