#include "workloads/molecule_screen.h"

#include "common/bytes.h"
#include "common/error.h"
#include "common/rng.h"

namespace ugc {

namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 27);
}

}  // namespace

MoleculeScreenFunction::MoleculeScreenFunction(Params params)
    : params_(params) {
  check(params_.features >= 4, "MoleculeScreenFunction: need >= 4 features");
  check(params_.poses >= 1, "MoleculeScreenFunction: need >= 1 pose");
  Rng rng(params_.receptor_seed);
  receptor_.reserve(params_.features);
  for (std::uint32_t i = 0; i < params_.features; ++i) {
    receptor_.push_back(rng.next());
  }
}

Bytes MoleculeScreenFunction::evaluate(std::uint64_t x) const {
  // Expand the molecule id into a descriptor.
  Rng molecule_rng(x ^ 0x4d4f4c4543554c45ULL);
  std::vector<std::uint64_t> descriptor(params_.features);
  for (auto& feature : descriptor) {
    feature = molecule_rng.next();
  }

  // Try every pose: a pose rotates the descriptor and scores feature-by-
  // feature complementarity against the receptor (popcount of agreeing
  // bits, the usual bit-fingerprint Tanimoto-style surrogate).
  std::uint64_t best_score = 0;
  std::uint64_t best_pose = 0;
  for (std::uint32_t pose = 0; pose < params_.poses; ++pose) {
    std::uint64_t score = 0;
    for (std::uint32_t i = 0; i < params_.features; ++i) {
      const std::uint64_t rotated =
          descriptor[(i + pose) % params_.features];
      const std::uint64_t interaction = mix(rotated, receptor_[i]);
      // Count complementary bits, weighting rare high agreement strongly.
      const int agreement = __builtin_popcountll(~(interaction ^ receptor_[i]));
      score += static_cast<std::uint64_t>(agreement * agreement);
    }
    if (score > best_score) {
      best_score = score;
      best_pose = pose;
    }
  }

  Bytes out(kResultSize);
  put_u64_be(best_score, out.data());
  put_u64_be(best_pose, out.data() + 8);
  return out;
}

std::uint64_t MoleculeScreenFunction::score_of(BytesView result) {
  check(result.size() >= 8, "MoleculeScreenFunction::score_of: short result");
  return read_u64_be(result.data());
}

std::optional<std::string> BindingScreener::screen(std::uint64_t x,
                                                   BytesView fx) const {
  if (fx.size() < 8) {
    return std::nullopt;
  }
  const std::uint64_t score = read_u64_be(fx.data());
  if (score >= threshold_) {
    return concat("binder:molecule=", x, ",score=", score);
  }
  return std::nullopt;
}

}  // namespace ugc
