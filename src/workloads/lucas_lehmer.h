#pragma once

#include <cstdint>

#include "core/task.h"

namespace ugc {

// GIMPS-style Mersenne-prime hunting. Input x is a candidate exponent p;
// f runs the Lucas–Lehmer test on M_p = 2^p − 1 (valid for p up to 63 via
// 128-bit arithmetic) and returns a single byte: 1 when M_p is prime.
//
// This workload deliberately has a tiny, highly guessable result space —
// almost every answer is 0 — making it the library's worked example of a
// *high q* computation (Theorem 3's guess accuracy), where sampling alone
// needs many more samples.
class LucasLehmerFunction final : public ComputeFunction {
 public:
  static constexpr std::size_t kResultSize = 1;

  Bytes evaluate(std::uint64_t x) const override;
  std::size_t result_size() const override { return kResultSize; }
  std::string name() const override { return "lucas-lehmer"; }

  // Direct boolean form (used by tests and the screener).
  static bool mersenne_is_prime(std::uint64_t p);
};

// Reports exponents whose Mersenne number is prime.
class MersenneScreener final : public Screener {
 public:
  std::optional<std::string> screen(std::uint64_t x,
                                    BytesView fx) const override;
  std::string name() const override { return "mersenne-screener"; }
};

}  // namespace ugc
