#pragma once

#include <cstdint>

#include "core/task.h"

namespace ugc {

// Drug-candidate screening in the style of IBM's smallpox grid: each input x
// is a synthetic molecule id expanded into a feature descriptor, and f
// computes a docking-style binding score against a fixed receptor through
// several rounds of integer mixing (deterministic, moderately expensive,
// hard to guess). The screener reports strong binders.
class MoleculeScreenFunction final : public ComputeFunction {
 public:
  static constexpr std::size_t kResultSize = 16;  // score u64 | pose u64

  struct Params {
    std::uint32_t features = 32;     // descriptor length
    std::uint32_t poses = 16;        // docking poses tried per molecule
    std::uint64_t receptor_seed = 7; // defines the fixed receptor
  };

  explicit MoleculeScreenFunction(Params params);

  Bytes evaluate(std::uint64_t x) const override;
  std::size_t result_size() const override { return kResultSize; }
  std::string name() const override { return "molecule-screen"; }

  static std::uint64_t score_of(BytesView result);

 private:
  Params params_;
  std::vector<std::uint64_t> receptor_;
};

// Reports molecules whose binding score is at least `threshold`.
class BindingScreener final : public Screener {
 public:
  explicit BindingScreener(std::uint64_t threshold) : threshold_(threshold) {}

  std::optional<std::string> screen(std::uint64_t x,
                                    BytesView fx) const override;
  std::string name() const override { return "binding-screener"; }

 private:
  std::uint64_t threshold_;
};

}  // namespace ugc
