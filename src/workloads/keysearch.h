#pragma once

#include <cstdint>
#include <memory>

#include "core/task.h"

namespace ugc {

// Brute-force key search — the paper's running example ("break a 64-bit
// password"). f maps a candidate key x to a key-derivation image; the
// screener reports any candidate whose image equals the target. f is
// one-way, so this workload also suits the ringer baseline.
class KeySearchFunction final : public ComputeFunction {
 public:
  static constexpr std::size_t kResultSize = 16;

  // `work_factor` extra hash rounds emulate an expensive KDF, making the
  // cost of f tunable for the Eq. 5 experiments.
  explicit KeySearchFunction(std::uint32_t work_factor = 8,
                             std::uint64_t salt = 0);

  Bytes evaluate(std::uint64_t x) const override;
  std::size_t result_size() const override { return kResultSize; }
  std::string name() const override;

 private:
  std::uint32_t work_factor_;
  std::uint64_t salt_;
};

// Reports x when f(x) equals the target image (the cracked password).
class KeySearchScreener final : public Screener {
 public:
  explicit KeySearchScreener(Bytes target_image);

  std::optional<std::string> screen(std::uint64_t x,
                                    BytesView fx) const override;
  std::string name() const override { return "keysearch"; }

 private:
  Bytes target_image_;
};

// Builds a key-search scenario over [begin, end) with the secret key planted
// at a seed-determined position: returns {f, screener, secret_key}.
struct KeySearchScenario {
  std::shared_ptr<const ComputeFunction> f;
  std::shared_ptr<const Screener> screener;
  std::uint64_t secret_key = 0;
};

KeySearchScenario make_keysearch_scenario(std::uint64_t begin,
                                          std::uint64_t end,
                                          std::uint64_t seed,
                                          std::uint32_t work_factor = 8);

}  // namespace ugc
