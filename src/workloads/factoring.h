#pragma once

#include <cstdint>

#include "core/task.h"

namespace ugc {

// Integer factoring — the paper's example of a computation whose
// *verification* is much cheaper than the computation itself (§3.1, Step 4
// discussion). Each input x deterministically yields a semiprime
// N(x) = p·q; f factors it by trial division and returns (p, q). The
// FactoringVerifier checks a claimed factorization with two Miller–Rabin
// tests and one multiplication instead of re-factoring.
class FactoringFunction final : public ComputeFunction {
 public:
  static constexpr std::size_t kResultSize = 16;  // p u64 | q u64

  struct Params {
    // Prime factors are drawn from [2^(bits-1), 2^bits).
    std::uint32_t factor_bits = 20;
    std::uint64_t seed = 0;
  };

  explicit FactoringFunction(Params params);

  Bytes evaluate(std::uint64_t x) const override;
  std::size_t result_size() const override { return kResultSize; }
  std::string name() const override;

  // The semiprime assigned to input x.
  std::uint64_t modulus(std::uint64_t x) const;

  static std::pair<std::uint64_t, std::uint64_t> factors_of(BytesView result);

  const Params& params() const { return params_; }

 private:
  std::uint64_t draw_prime(std::uint64_t stream, std::uint64_t x) const;

  Params params_;
};

// Cheap verifier: claimed (p, q) is accepted iff p·q = N(x), 1 < p <= q, and
// both pass Miller–Rabin.
class FactoringVerifier final : public ResultVerifier {
 public:
  explicit FactoringVerifier(std::shared_ptr<const FactoringFunction> f);

  bool verify(std::uint64_t x, BytesView claimed_fx) const override;
  std::string name() const override { return "factoring-verifier"; }

 private:
  std::shared_ptr<const FactoringFunction> f_;
};

// Deterministic Miller–Rabin, exact for all 64-bit inputs.
bool is_prime_u64(std::uint64_t n);

}  // namespace ugc
