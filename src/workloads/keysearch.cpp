#include "workloads/keysearch.h"

#include "common/error.h"
#include "common/hex.h"
#include "common/rng.h"
#include "crypto/sha256.h"

namespace ugc {

KeySearchFunction::KeySearchFunction(std::uint32_t work_factor,
                                     std::uint64_t salt)
    : work_factor_(work_factor), salt_(salt) {
  check(work_factor_ >= 1, "KeySearchFunction: work factor must be >= 1");
}

Bytes KeySearchFunction::evaluate(std::uint64_t x) const {
  Bytes block(16);
  for (int i = 0; i < 8; ++i) {
    block[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x >> (8 * i));
    block[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(salt_ >> (8 * i));
  }
  Digest32 digest = Sha256::hash(block);
  for (std::uint32_t round = 1; round < work_factor_; ++round) {
    digest = Sha256::hash(digest.view());
  }
  const Bytes full = digest.to_bytes();
  return Bytes(full.begin(), full.begin() + kResultSize);
}

std::string KeySearchFunction::name() const {
  return concat("keysearch(w=", work_factor_, ")");
}

KeySearchScreener::KeySearchScreener(Bytes target_image)
    : target_image_(std::move(target_image)) {
  check(!target_image_.empty(), "KeySearchScreener: target image required");
}

std::optional<std::string> KeySearchScreener::screen(std::uint64_t x,
                                                     BytesView fx) const {
  if (equal_bytes(fx, target_image_)) {
    return concat("key-found:", x);
  }
  return std::nullopt;
}

KeySearchScenario make_keysearch_scenario(std::uint64_t begin,
                                          std::uint64_t end,
                                          std::uint64_t seed,
                                          std::uint32_t work_factor) {
  check(begin < end, "make_keysearch_scenario: empty key range");
  Rng rng(seed);
  KeySearchScenario scenario;
  scenario.secret_key = begin + rng.uniform(end - begin);
  auto f = std::make_shared<KeySearchFunction>(work_factor, seed);
  scenario.screener =
      std::make_shared<KeySearchScreener>(f->evaluate(scenario.secret_key));
  scenario.f = std::move(f);
  return scenario;
}

}  // namespace ugc
