#include "workloads/factoring.h"

#include "common/bytes.h"
#include "common/error.h"
#include "common/rng.h"

namespace ugc {

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) {
      result = mulmod(result, base, m);
    }
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

}  // namespace

bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Deterministic Miller–Rabin witness set for the full 64-bit range.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 1; i < r; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

FactoringFunction::FactoringFunction(Params params) : params_(params) {
  check(params_.factor_bits >= 4 && params_.factor_bits <= 31,
        "FactoringFunction: factor_bits must be in [4, 31]");
}

std::uint64_t FactoringFunction::draw_prime(std::uint64_t stream,
                                            std::uint64_t x) const {
  const std::uint64_t lo = std::uint64_t{1} << (params_.factor_bits - 1);
  const std::uint64_t width = lo;  // [lo, 2·lo)
  Rng rng(params_.seed ^ (stream * 0xd1342543de82ef95ULL) ^
          (x * 0x9e3779b97f4a7c15ULL));
  std::uint64_t candidate = lo + rng.uniform(width);
  candidate |= 1;  // odd
  while (!is_prime_u64(candidate)) {
    candidate += 2;
    if (candidate >= 2 * lo) {
      candidate = lo | 1;
    }
  }
  return candidate;
}

std::uint64_t FactoringFunction::modulus(std::uint64_t x) const {
  return draw_prime(1, x) * draw_prime(2, x);
}

Bytes FactoringFunction::evaluate(std::uint64_t x) const {
  const std::uint64_t n = modulus(x);
  // Trial division — deliberately the expensive way (the point of this
  // workload is the compute/verify asymmetry).
  std::uint64_t p = 0;
  if (n % 2 == 0) {
    p = 2;
  } else {
    for (std::uint64_t d = 3; d * d <= n; d += 2) {
      if (n % d == 0) {
        p = d;
        break;
      }
    }
  }
  check(p != 0, "FactoringFunction: modulus was prime — generator bug");
  const std::uint64_t q = n / p;

  Bytes out(kResultSize);
  put_u64_be(std::min(p, q), out.data());
  put_u64_be(std::max(p, q), out.data() + 8);
  return out;
}

std::string FactoringFunction::name() const {
  return concat("factoring(bits=", params_.factor_bits, ")");
}

std::pair<std::uint64_t, std::uint64_t> FactoringFunction::factors_of(
    BytesView result) {
  check(result.size() >= 16, "factors_of: short result");
  return {read_u64_be(result.data()), read_u64_be(result.data() + 8)};
}

FactoringVerifier::FactoringVerifier(
    std::shared_ptr<const FactoringFunction> f)
    : f_(std::move(f)) {
  check(f_ != nullptr, "FactoringVerifier: function required");
}

bool FactoringVerifier::verify(std::uint64_t x, BytesView claimed_fx) const {
  if (claimed_fx.size() != FactoringFunction::kResultSize) {
    return false;
  }
  const auto [p, q] = FactoringFunction::factors_of(claimed_fx);
  if (p <= 1 || q < p) {
    return false;
  }
  // Overflow-safe product check.
  const unsigned __int128 product =
      static_cast<unsigned __int128>(p) * q;
  if (product != f_->modulus(x)) {
    return false;
  }
  return is_prime_u64(p) && is_prime_u64(q);
}

}  // namespace ugc
