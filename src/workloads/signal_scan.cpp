#include "workloads/signal_scan.h"

#include <cmath>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "common/rng.h"

namespace ugc {

namespace {

// Fixed-point scale for scores: 1.0 of correlation = 2^16.
constexpr double kScoreScale = 65536.0;

}  // namespace

SignalScanFunction::SignalScanFunction(Params params) : params_(params) {
  check(params_.block_samples >= 8,
        "SignalScanFunction: need at least 8 samples per block");
  check(params_.templates >= 1, "SignalScanFunction: need >= 1 template");
  check(params_.signal_period >= 1,
        "SignalScanFunction: signal_period must be >= 1");
}

bool SignalScanFunction::has_signal(std::uint64_t x) const {
  Rng rng(x ^ (params_.noise_seed * 0x9e3779b97f4a7c15ULL) ^
          0x5157414c49545955ULL);
  return rng.uniform(params_.signal_period) == 0;
}

Bytes SignalScanFunction::evaluate(std::uint64_t x) const {
  const std::uint32_t n = params_.block_samples;

  // Deterministic noise for this block (sum of 4 uniforms ~ bell-shaped,
  // zero-mean, deviation ~1).
  Rng noise_rng(x ^ params_.noise_seed ^ 0x424c4f434bULL);
  std::vector<double> samples(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (int k = 0; k < 4; ++k) {
      s += noise_rng.unit_real() - 0.5;
    }
    samples[i] = s * 1.732;  // variance-normalize the Irwin–Hall sum
  }

  // Possibly inject a chirp whose template index is block-determined.
  Rng signal_rng(x ^ (params_.noise_seed * 0x9e3779b97f4a7c15ULL) ^
                 0x5157414c49545955ULL);
  const bool injected = signal_rng.uniform(params_.signal_period) == 0;
  const std::uint32_t injected_template =
      static_cast<std::uint32_t>(signal_rng.uniform(params_.templates));
  if (injected) {
    const double amplitude = params_.amplitude_centi / 100.0;
    const double base_freq = 2.0 * (injected_template + 1);
    for (std::uint32_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / n;
      samples[i] += amplitude * std::sin(2.0 * M_PI * base_freq * t * (1.0 + t));
    }
  }

  // Matched filter against every template; keep the best normalized score.
  double best_score = 0.0;
  std::uint64_t best_template = 0;
  for (std::uint32_t tmpl = 0; tmpl < params_.templates; ++tmpl) {
    const double base_freq = 2.0 * (tmpl + 1);
    double dot = 0.0;
    double norm = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / n;
      const double w = std::sin(2.0 * M_PI * base_freq * t * (1.0 + t));
      dot += samples[i] * w;
      norm += w * w;
    }
    const double score = std::fabs(dot) / std::sqrt(norm * n);
    if (score > best_score) {
      best_score = score;
      best_template = tmpl;
    }
  }

  Bytes out(kResultSize);
  put_u64_be(static_cast<std::uint64_t>(best_score * kScoreScale), out.data());
  put_u64_be(best_template, out.data() + 8);
  return out;
}

std::uint64_t SignalScanFunction::score_of(BytesView result) {
  check(result.size() >= 8, "SignalScanFunction::score_of: short result");
  return read_u64_be(result.data());
}

std::optional<std::string> SignalScreener::screen(std::uint64_t x,
                                                  BytesView fx) const {
  if (fx.size() < 8) {
    return std::nullopt;
  }
  const std::uint64_t score = read_u64_be(fx.data());
  if (score >= threshold_) {
    return concat("signal:block=", x, ",score=", score);
  }
  return std::nullopt;
}

}  // namespace ugc
