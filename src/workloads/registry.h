#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/task.h"

namespace ugc {

// Everything a grid node needs to run (or verify) one workload.
struct WorkloadBundle {
  std::shared_ptr<const ComputeFunction> f;
  std::shared_ptr<const Screener> screener;
  // Optional cheap verifier; when null, callers fall back to recomputation
  // (make_verifier() does this wrapping).
  std::shared_ptr<const ResultVerifier> verifier;

  // The verifier to use: `verifier` when present, else RecomputeVerifier(f).
  std::shared_ptr<const ResultVerifier> make_verifier() const;
};

using WorkloadFactory = std::function<WorkloadBundle(std::uint64_t seed)>;

// Name -> workload factory. Participants resolve TaskAssignment.workload
// here, the way a real grid client resolves a downloaded work-unit type.
// The built-in workloads ("test", "keysearch", "signal-scan",
// "molecule-screen", "lucas-lehmer", "factoring") are pre-registered on
// the global() instance.
class WorkloadRegistry {
 public:
  // Shared process-wide registry with the built-ins installed.
  static WorkloadRegistry& global();

  // Registers (or replaces) a factory under `name`.
  void register_workload(std::string name, WorkloadFactory factory);

  bool contains(const std::string& name) const;

  // Instantiates the named workload. Throws ugc::Error for unknown names.
  WorkloadBundle make(const std::string& name, std::uint64_t seed) const;

  std::vector<std::string> names() const;

 private:
  std::map<std::string, WorkloadFactory> factories_;
};

}  // namespace ugc
