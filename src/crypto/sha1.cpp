#include "crypto/sha1.h"

#include <cstring>

#include "crypto/sha_ni.h"

namespace ugc {

namespace {

std::uint32_t rotl32(std::uint32_t x, int s) {
  return (x << s) | (x >> (32 - s));
}

}  // namespace

Sha1::Sha1() {
  reset();
}

void Sha1::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::update(BytesView data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kBlockSize) {
      process_blocks(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  const std::size_t full_blocks = (data.size() - offset) / kBlockSize;
  if (full_blocks > 0) {
    process_blocks(data.data() + offset, full_blocks);
    offset += full_blocks * kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha1::process_blocks(const std::uint8_t* data, std::size_t blocks) {
  static const bool use_ni = sha_ni_available();
  if (use_ni) {
    sha1_process_blocks_ni(state_.data(), data, blocks);
    return;
  }
  for (std::size_t b = 0; b < blocks; ++b) {
    process_block(data + b * kBlockSize);
  }
}

Digest20 Sha1::finish() {
  Digest20 out;
  finish_into(out.data());
  return out;
}

void Sha1::finish_into(std::uint8_t* out) {
  const std::uint64_t bit_length = total_bytes_ * 8;

  std::array<std::uint8_t, kBlockSize> pad{};
  pad[0] = 0x80;
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(BytesView(pad.data(), pad_len));

  std::array<std::uint8_t, 8> length_be{};
  put_u64_be(bit_length, length_be.data());
  update(BytesView(length_be.data(), length_be.size()));

  for (int i = 0; i < 5; ++i) {
    put_u32_be(state_[static_cast<std::size_t>(i)],
               out + 4 * static_cast<std::size_t>(i));
  }
}

Digest20 Sha1::hash(BytesView data) {
  Sha1 sha;
  sha.update(data);
  return sha.finish();
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = read_u32_be(block + 4 * i);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

}  // namespace ugc
