#pragma once

#include <cstddef>
#include <cstdint>

namespace ugc {

// Hardware compression backends for the digest pipeline (x86 SHA-NI).
//
// Each function folds `blocks` consecutive 64-byte message blocks into
// `state` using the dedicated SHA instruction set. The results are
// bit-identical to the portable scalar rounds in sha256.cpp / sha1.cpp —
// callers dispatch on sha_ni_available() purely for speed. On non-x86
// builds the probes return false and the transform stubs abort, so the
// scalar path is always taken.

// True when the CPU executes the SHA-NI extension (checked once, cached).
// Setting the UGC_DISABLE_SHA_NI environment variable before first use
// forces false, pinning every digest to the scalar rounds — how CI covers
// both backends on one machine.
bool sha_ni_available();

// SHA-256: state is {a..h} as eight 32-bit words (FIPS 180-4 order).
void sha256_process_blocks_ni(std::uint32_t* state, const std::uint8_t* data,
                              std::size_t blocks);

// Two-stream SHA-256: folds one 64-byte block into each of two independent
// states with the round chains instruction-interleaved. A single stream is
// latency-bound on the serial sha256rnds2 dependency chain; interleaving a
// second independent chain fills the idle issue slots for ~1.5x combined
// throughput. Bit-identical to two sha256_process_blocks_ni calls. The
// Merkle verify/build folds use this for independent sibling pairs.
void sha256_process_block_x2_ni(std::uint32_t* state_a,
                                const std::uint8_t* block_a,
                                std::uint32_t* state_b,
                                const std::uint8_t* block_b);

// Fully fused two-stream interior-node digest:
// out_i = SHA-256(left_i || right_i) for 32-byte inputs and outputs. Loads
// the inputs directly (no concatenation buffer), interleaves both round
// chains, compresses the constant padding block off a precomputed schedule,
// and stores the big-endian digests — the complete Merkle pair hash with no
// buffering. Bit-identical to the generic path.
void sha256_pair_digest_x2_ni(const std::uint8_t* left0,
                              const std::uint8_t* right0, std::uint8_t* out0,
                              const std::uint8_t* left1,
                              const std::uint8_t* right1, std::uint8_t* out1);

// SHA-1: state is {a..e} as five 32-bit words.
void sha1_process_blocks_ni(std::uint32_t* state, const std::uint8_t* data,
                            std::size_t blocks);

}  // namespace ugc
