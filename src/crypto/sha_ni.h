#pragma once

#include <cstddef>
#include <cstdint>

namespace ugc {

// Hardware compression backends for the digest pipeline (x86 SHA-NI).
//
// Each function folds `blocks` consecutive 64-byte message blocks into
// `state` using the dedicated SHA instruction set. The results are
// bit-identical to the portable scalar rounds in sha256.cpp / sha1.cpp —
// callers dispatch on sha_ni_available() purely for speed. On non-x86
// builds the probes return false and the transform stubs abort, so the
// scalar path is always taken.

// True when the CPU executes the SHA-NI extension (checked once, cached).
// Setting the UGC_DISABLE_SHA_NI environment variable before first use
// forces false, pinning every digest to the scalar rounds — how CI covers
// both backends on one machine.
bool sha_ni_available();

// SHA-256: state is {a..h} as eight 32-bit words (FIPS 180-4 order).
void sha256_process_blocks_ni(std::uint32_t* state, const std::uint8_t* data,
                              std::size_t blocks);

// SHA-1: state is {a..e} as five 32-bit words.
void sha1_process_blocks_ni(std::uint32_t* state, const std::uint8_t* data,
                            std::size_t blocks);

}  // namespace ugc
