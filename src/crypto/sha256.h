#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace ugc {

// SHA-256 (FIPS 180-4), implemented from the specification. This is the
// library's default commitment hash.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  void update(BytesView data);
  Digest32 finish();
  // Completes the computation, writing the digest directly into `out`
  // (kDigestSize bytes) — the zero-allocation path.
  void finish_into(std::uint8_t* out);
  void reset();

  static Digest32 hash(BytesView data);

  // Digests left||right for two independent pairs at once, writing
  // kDigestSize bytes to each output. Routes through the two-stream SHA-NI
  // transform when available (the round chains interleave for ~1.5x
  // throughput); otherwise computes the two digests serially. Bit-identical
  // to two separate hashes either way.
  static void digest_pair_x2(BytesView left0, BytesView right0,
                             std::uint8_t* out0, BytesView left1,
                             BytesView right1, std::uint8_t* out1);

 private:
  // Folds `blocks` consecutive 64-byte blocks into the state, dispatching to
  // the SHA-NI backend when the CPU supports it.
  void process_blocks(const std::uint8_t* data, std::size_t blocks);
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace ugc
