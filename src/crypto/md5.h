#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace ugc {

// MD5 message digest (RFC 1321), implemented from the specification.
//
// MD5 is cryptographically broken for collision resistance; it is provided
// because the paper names it (the CBS commitment hash and the NI-CBS
// cost-tuned generator g = MD5^k) and because its speed makes it a useful
// baseline in the Eq. 5 cost analysis. Production deployments should prefer
// Sha256 (the library default).
class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  static constexpr std::size_t kBlockSize = 64;

  Md5();

  // Absorbs more input. May be called any number of times before finish().
  void update(BytesView data);

  // Completes the computation and returns the digest. The object must be
  // reset() before reuse.
  Digest16 finish();

  // Completes the computation, writing the digest directly into `out`
  // (kDigestSize bytes) — the zero-allocation path.
  void finish_into(std::uint8_t* out);

  void reset();

  // One-shot convenience.
  static Digest16 hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace ugc
