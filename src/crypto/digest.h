#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "common/hex.h"

namespace ugc {

// Fixed-size hash digest value type (rule-of-zero; freely copyable).
template <std::size_t N>
class DigestT {
 public:
  static constexpr std::size_t kSize = N;

  constexpr DigestT() = default;

  explicit DigestT(const std::array<std::uint8_t, N>& bytes) : bytes_(bytes) {}

  // Builds a digest from exactly N bytes; throws on size mismatch.
  static DigestT from_span(BytesView data) {
    check(data.size() == N, "Digest: expected ", N, " bytes, got ",
          data.size());
    DigestT d;
    for (std::size_t i = 0; i < N; ++i) {
      d.bytes_[i] = data[i];
    }
    return d;
  }

  static DigestT from_hex(std::string_view hex) {
    return from_span(ugc::from_hex(hex));
  }

  BytesView view() const { return BytesView(bytes_.data(), bytes_.size()); }
  Bytes to_bytes() const { return Bytes(bytes_.begin(), bytes_.end()); }
  std::string hex() const { return to_hex(view()); }

  std::uint8_t* data() { return bytes_.data(); }
  const std::uint8_t* data() const { return bytes_.data(); }
  static constexpr std::size_t size() { return N; }

  friend auto operator<=>(const DigestT&, const DigestT&) = default;

 private:
  std::array<std::uint8_t, N> bytes_{};
};

using Digest16 = DigestT<16>;  // MD5
using Digest20 = DigestT<20>;  // SHA-1
using Digest32 = DigestT<32>;  // SHA-256

}  // namespace ugc
