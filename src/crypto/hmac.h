#pragma once

#include "common/bytes.h"
#include "crypto/hash_function.h"

namespace ugc {

// HMAC (RFC 2104) over any block-oriented HashFunction in this library
// (MD5 / SHA-1 / SHA-256 all use a 64-byte block).
//
// Used by the malicious-model mitigation: participants key their screener
// reports so a broker relaying results cannot forge or strip them, and by
// tests as an independent consumer of the hash substrate.
Bytes hmac(const HashFunction& hash, BytesView key, BytesView message);

// HMAC-SHA256 convenience.
Bytes hmac_sha256(BytesView key, BytesView message);

}  // namespace ugc
