#include "crypto/hash_function.h"

#include <cstring>

#include "common/error.h"
#include "common/stopwatch.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace ugc {

namespace {

// Incremental context over one of the block-hash cores (Md5/Sha1/Sha256),
// which share the update / finish_into / reset shape.
template <typename Core>
class CoreContext final : public HashContext {
 public:
  void reset() override { core_.reset(); }
  void update(BytesView data) override { core_.update(data); }
  void finish(std::span<std::uint8_t> out) override {
    check(out.size() == Core::kDigestSize, "HashContext::finish: need ",
          Core::kDigestSize, " bytes, got ", out.size());
    core_.finish_into(out.data());
  }

 private:
  Core core_;
};

// HashFunction facade over a core: every entry point runs the compression
// directly into caller storage — no heap traffic besides `hash` itself.
template <typename Core>
class CoreHash final : public HashFunction {
 public:
  explicit CoreHash(const char* name) : name_(name) {}

  std::size_t digest_size() const noexcept override {
    return Core::kDigestSize;
  }

  Bytes hash(BytesView data) const override {
    Bytes out(Core::kDigestSize);
    hash_into(data, out);
    return out;
  }

  void hash_into(BytesView data, std::span<std::uint8_t> out) const override {
    check(out.size() == Core::kDigestSize, "hash_into: need ",
          Core::kDigestSize, " bytes, got ", out.size());
    Core core;
    core.update(data);
    core.finish_into(out.data());
  }

  void hash_pair(BytesView left, BytesView right,
                 std::span<std::uint8_t> out) const override {
    check(out.size() == Core::kDigestSize, "hash_pair: need ",
          Core::kDigestSize, " bytes, got ", out.size());
    Core core;
    core.update(left);
    core.update(right);
    core.finish_into(out.data());
  }

  void hash_pair_x2(BytesView left0, BytesView right0,
                    std::span<std::uint8_t> out0, BytesView left1,
                    BytesView right1,
                    std::span<std::uint8_t> out1) const override {
    if constexpr (requires(const std::uint8_t* p, std::uint8_t* q) {
                    Core::digest_pair_x2(BytesView{}, BytesView{}, q,
                                         BytesView{}, BytesView{}, q);
                  }) {
      check(out0.size() == Core::kDigestSize &&
                out1.size() == Core::kDigestSize,
            "hash_pair_x2: need ", Core::kDigestSize, " byte outputs");
      Core::digest_pair_x2(left0, right0, out0.data(), left1, right1,
                           out1.data());
    } else {
      hash_pair(left0, right0, out0);
      hash_pair(left1, right1, out1);
    }
  }

  std::unique_ptr<HashContext> new_context() const override {
    return std::make_unique<CoreContext<Core>>();
  }

  std::string name() const override { return name_; }

 private:
  const char* name_;
};

using Md5Hash = CoreHash<Md5>;
using Sha1Hash = CoreHash<Sha1>;
using Sha256Hash = CoreHash<Sha256>;

// Fallback context for HashFunction subclasses that only implement the
// one-shot `hash`: buffers the message and digests it at finish.
class BufferingContext final : public HashContext {
 public:
  explicit BufferingContext(const HashFunction& hash) : hash_(hash) {}

  void reset() override { buffer_.clear(); }
  void update(BytesView data) override { append(buffer_, data); }
  void finish(std::span<std::uint8_t> out) override {
    hash_.hash_into(buffer_, out);
  }

 private:
  const HashFunction& hash_;
  Bytes buffer_;
};

}  // namespace

void HashFunction::hash_into(BytesView data,
                             std::span<std::uint8_t> out) const {
  const Bytes digest = hash(data);
  check(out.size() == digest.size(), "hash_into: need ", digest.size(),
        " bytes, got ", out.size());
  std::memcpy(out.data(), digest.data(), digest.size());
}

void HashFunction::hash_pair(BytesView left, BytesView right,
                             std::span<std::uint8_t> out) const {
  hash_into(concat_bytes(left, right), out);
}

void HashFunction::hash_pair_x2(BytesView left0, BytesView right0,
                                std::span<std::uint8_t> out0, BytesView left1,
                                BytesView right1,
                                std::span<std::uint8_t> out1) const {
  hash_pair(left0, right0, out0);
  hash_pair(left1, right1, out1);
}

std::unique_ptr<HashContext> HashFunction::new_context() const {
  return std::make_unique<BufferingContext>(*this);
}

std::unique_ptr<HashFunction> make_hash(HashAlgorithm algorithm) {
  switch (algorithm) {
    case HashAlgorithm::kMd5:
      return std::make_unique<Md5Hash>("md5");
    case HashAlgorithm::kSha1:
      return std::make_unique<Sha1Hash>("sha1");
    case HashAlgorithm::kSha256:
      return std::make_unique<Sha256Hash>("sha256");
  }
  throw Error("make_hash: unknown algorithm");
}

HashAlgorithm parse_hash_algorithm(std::string_view name) {
  if (name == "md5") return HashAlgorithm::kMd5;
  if (name == "sha1") return HashAlgorithm::kSha1;
  if (name == "sha256") return HashAlgorithm::kSha256;
  throw Error(concat("parse_hash_algorithm: unknown algorithm '", name, "'"));
}

const char* to_string(HashAlgorithm algorithm) {
  switch (algorithm) {
    case HashAlgorithm::kMd5:
      return "md5";
    case HashAlgorithm::kSha1:
      return "sha1";
    case HashAlgorithm::kSha256:
      return "sha256";
  }
  return "unknown";
}

const HashFunction& default_hash() {
  static const Sha256Hash instance("sha256");
  return instance;
}

double measure_hash_cost_ns(const HashFunction& hash, std::size_t payload_size,
                            int repetitions) {
  check(repetitions > 0, "measure_hash_cost_ns: repetitions must be positive");
  Bytes payload(payload_size, 0xa5);
  // Warm-up, then a hash_into chain with a data dependency between
  // iterations (each input is the previous digest) so the loop measures
  // compression throughput, not allocator behaviour, and cannot be
  // optimized away or overlapped unrealistically.
  Bytes digest(hash.digest_size());
  hash.hash_into(payload, digest);
  Stopwatch timer;
  for (int i = 0; i < repetitions; ++i) {
    hash.hash_into(digest, digest);
  }
  const double total_ns = static_cast<double>(timer.elapsed_ns());
  // Keep the final digest observable.
  volatile std::uint8_t sink = digest.empty() ? 0 : digest[0];
  (void)sink;
  return total_ns / repetitions;
}

}  // namespace ugc
