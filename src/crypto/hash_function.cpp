#include "crypto/hash_function.h"

#include "common/error.h"
#include "common/stopwatch.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace ugc {

namespace {

class Md5Hash final : public HashFunction {
 public:
  std::size_t digest_size() const noexcept override { return Md5::kDigestSize; }
  Bytes hash(BytesView data) const override {
    return Md5::hash(data).to_bytes();
  }
  std::string name() const override { return "md5"; }
};

class Sha1Hash final : public HashFunction {
 public:
  std::size_t digest_size() const noexcept override {
    return Sha1::kDigestSize;
  }
  Bytes hash(BytesView data) const override {
    return Sha1::hash(data).to_bytes();
  }
  std::string name() const override { return "sha1"; }
};

class Sha256Hash final : public HashFunction {
 public:
  std::size_t digest_size() const noexcept override {
    return Sha256::kDigestSize;
  }
  Bytes hash(BytesView data) const override {
    return Sha256::hash(data).to_bytes();
  }
  std::string name() const override { return "sha256"; }
};

}  // namespace

std::unique_ptr<HashFunction> make_hash(HashAlgorithm algorithm) {
  switch (algorithm) {
    case HashAlgorithm::kMd5:
      return std::make_unique<Md5Hash>();
    case HashAlgorithm::kSha1:
      return std::make_unique<Sha1Hash>();
    case HashAlgorithm::kSha256:
      return std::make_unique<Sha256Hash>();
  }
  throw Error("make_hash: unknown algorithm");
}

HashAlgorithm parse_hash_algorithm(std::string_view name) {
  if (name == "md5") return HashAlgorithm::kMd5;
  if (name == "sha1") return HashAlgorithm::kSha1;
  if (name == "sha256") return HashAlgorithm::kSha256;
  throw Error(concat("parse_hash_algorithm: unknown algorithm '", name, "'"));
}

const char* to_string(HashAlgorithm algorithm) {
  switch (algorithm) {
    case HashAlgorithm::kMd5:
      return "md5";
    case HashAlgorithm::kSha1:
      return "sha1";
    case HashAlgorithm::kSha256:
      return "sha256";
  }
  return "unknown";
}

const HashFunction& default_hash() {
  static const Sha256Hash instance;
  return instance;
}

double measure_hash_cost_ns(const HashFunction& hash, std::size_t payload_size,
                            int repetitions) {
  check(repetitions > 0, "measure_hash_cost_ns: repetitions must be positive");
  Bytes payload(payload_size, 0xa5);
  // Warm-up and a data dependency between iterations so the loop cannot be
  // optimized away or overlapped unrealistically.
  Bytes digest = hash.hash(payload);
  Stopwatch timer;
  for (int i = 0; i < repetitions; ++i) {
    digest = hash.hash(digest);
  }
  const double total_ns = static_cast<double>(timer.elapsed_ns());
  // Keep the final digest observable.
  volatile std::uint8_t sink = digest.empty() ? 0 : digest[0];
  (void)sink;
  return total_ns / repetitions;
}

}  // namespace ugc
