#pragma once

#include <memory>
#include <string>

#include "common/bytes.h"

namespace ugc {

// Algorithms available for the Merkle commitment hash and for the NI-CBS
// sample generator.
enum class HashAlgorithm {
  kMd5,
  kSha1,
  kSha256,
};

// Type-erased one-way hash over byte strings.
//
// The Merkle tree, the CBS protocol, and the NI-CBS sample derivation are all
// parameterized on this interface so that the paper's "MD5 or SHA" choice —
// and the iterated g = H^k construction of §4.2 — plug in uniformly.
class HashFunction {
 public:
  virtual ~HashFunction() = default;

  HashFunction() = default;
  HashFunction(const HashFunction&) = delete;
  HashFunction& operator=(const HashFunction&) = delete;

  // Size of the digest in bytes.
  virtual std::size_t digest_size() const noexcept = 0;

  // Hashes `data` and returns the digest as a byte buffer.
  virtual Bytes hash(BytesView data) const = 0;

  // Human-readable algorithm name, e.g. "sha256" or "md5^1024".
  virtual std::string name() const = 0;
};

// Creates a concrete hash function for `algorithm`.
std::unique_ptr<HashFunction> make_hash(HashAlgorithm algorithm);

// Parses "md5" / "sha1" / "sha256" (throws ugc::Error otherwise).
HashAlgorithm parse_hash_algorithm(std::string_view name);

// Inverse of parse_hash_algorithm: the stable lowercase algorithm name.
const char* to_string(HashAlgorithm algorithm);

// Process-wide default commitment hash (SHA-256). The returned reference is
// valid for the lifetime of the program.
const HashFunction& default_hash();

// Measures the average cost of one `hash` call on a `payload_size`-byte input
// (used to calibrate Eq. 5's Cg and the bench reports). Returns nanoseconds.
double measure_hash_cost_ns(const HashFunction& hash, std::size_t payload_size,
                            int repetitions = 2000);

}  // namespace ugc
