#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/bytes.h"

namespace ugc {

// Algorithms available for the Merkle commitment hash and for the NI-CBS
// sample generator.
enum class HashAlgorithm {
  kMd5,
  kSha1,
  kSha256,
};

// Number of HashAlgorithm values — keep in sync when adding an algorithm
// (sizes per-algorithm caches like VerifyScratch's).
inline constexpr std::size_t kHashAlgorithmCount = 3;

// Incremental hashing context: begin (new_context / reset), update, finish.
//
// Contexts are reusable — after finish() call reset() to start a fresh
// message. They exist so multi-part inputs (HMAC pads, Merkle node pairs,
// iterated-hash chains) can be absorbed without materializing concatenated
// buffers.
class HashContext {
 public:
  virtual ~HashContext() = default;

  HashContext() = default;
  HashContext(const HashContext&) = delete;
  HashContext& operator=(const HashContext&) = delete;

  // Restarts the context for a new message.
  virtual void reset() = 0;

  // Absorbs the next span of the message.
  virtual void update(BytesView data) = 0;

  // Completes the digest into `out`, whose size must equal the digest size
  // of the hash that created the context. The context must be reset()
  // before reuse.
  virtual void finish(std::span<std::uint8_t> out) = 0;
};

// Type-erased one-way hash over byte strings.
//
// The Merkle tree, the CBS protocol, and the NI-CBS sample derivation are all
// parameterized on this interface so that the paper's "MD5 or SHA" choice —
// and the iterated g = H^k construction of §4.2 — plug in uniformly.
//
// The `hash_into` / `hash_pair` / `new_context` entry points form the
// zero-allocation digest pipeline: concrete algorithms write straight into
// caller-owned buffers and stream multi-part inputs through one compression
// context. The base-class defaults delegate to `hash`, so custom
// HashFunction subclasses only have to implement the one-shot form.
class HashFunction {
 public:
  virtual ~HashFunction() = default;

  HashFunction() = default;
  HashFunction(const HashFunction&) = delete;
  HashFunction& operator=(const HashFunction&) = delete;

  // Size of the digest in bytes.
  virtual std::size_t digest_size() const noexcept = 0;

  // Hashes `data` and returns the digest as a byte buffer.
  virtual Bytes hash(BytesView data) const = 0;

  // Hashes `data`, writing the digest into `out` (size must equal
  // digest_size()) without allocating. `out` may overlap `data`: the input
  // is fully consumed before the digest is written.
  virtual void hash_into(BytesView data, std::span<std::uint8_t> out) const;

  // Digest of left||right — what every interior Merkle node needs — fed
  // through a single streaming compression context, with no concatenation
  // temporary. `out` (digest_size() bytes) may overlap either input.
  virtual void hash_pair(BytesView left, BytesView right,
                         std::span<std::uint8_t> out) const;

  // Two independent left||right digests in one call, semantically identical
  // to two hash_pair calls. A single SHA round chain is latency-bound, so
  // backends with hardware compression (SHA-NI) interleave the two streams
  // for substantially higher combined throughput; the default simply calls
  // hash_pair twice. The Merkle batch-verify and level folds feed sibling
  // pairs through this. Outputs must not alias each other.
  virtual void hash_pair_x2(BytesView left0, BytesView right0,
                            std::span<std::uint8_t> out0, BytesView left1,
                            BytesView right1,
                            std::span<std::uint8_t> out1) const;

  // Begins an incremental computation. The returned context is reusable via
  // HashContext::reset(). The default buffers the whole message and runs
  // hash_into at finish; concrete algorithms stream block-by-block.
  virtual std::unique_ptr<HashContext> new_context() const;

  // Human-readable algorithm name, e.g. "sha256" or "md5^1024".
  virtual std::string name() const = 0;
};

// Creates a concrete hash function for `algorithm`.
std::unique_ptr<HashFunction> make_hash(HashAlgorithm algorithm);

// Parses "md5" / "sha1" / "sha256" (throws ugc::Error otherwise).
HashAlgorithm parse_hash_algorithm(std::string_view name);

// Inverse of parse_hash_algorithm: the stable lowercase algorithm name.
const char* to_string(HashAlgorithm algorithm);

// Process-wide default commitment hash (SHA-256). The returned reference is
// valid for the lifetime of the program.
const HashFunction& default_hash();

// Measures the average cost of one compression call on a `payload_size`-byte
// input via the allocation-free hash_into path, so the number reflects
// hashing work rather than allocator noise (used to calibrate Eq. 5's Cg and
// the bench reports). Returns nanoseconds.
double measure_hash_cost_ns(const HashFunction& hash, std::size_t payload_size,
                            int repetitions = 2000);

}  // namespace ugc
